package fsr

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"fsr/internal/wire"
	"fsr/transport"
	"fsr/transport/mem"
)

// durableClusterCfg is a small fast cluster template for session tests.
func durableClusterCfg(t *testing.T, n int) ClusterConfig {
	t.Helper()
	return ClusterConfig{
		N: n, T: 1,
		NodeConfig: Config{
			SegmentSize:       256,
			SnapshotEvery:     32,
			WALSegmentBytes:   4096,
			HeartbeatInterval: 15 * time.Millisecond,
			FailureTimeout:    300 * time.Millisecond,
			ChangeTimeout:     400 * time.Millisecond,
		},
	}.WithDurableDir(t.TempDir())
}

// TestSessionPublishSubscribe: the basic remote-session loop — a
// non-member client publishes through one member and a second client
// subscribes from offset 1, receiving everything in order.
func TestSessionPublishSubscribe(t *testing.T) {
	cluster, err := NewCluster(durableClusterCfg(t, 3), MemTransport(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	pub, err := cluster.Dial(SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	sub, err := cluster.Dial(SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const msgs = 20
	receipts := make([]*Receipt, msgs)
	for i := range msgs {
		r, err := pub.Publish(ctx, fmt.Appendf(nil, "m%d", i))
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		receipts[i] = r
	}
	for i, r := range receipts {
		if err := r.Wait(ctx); err != nil {
			t.Fatalf("publish %d not committed: %v", i, err)
		}
		if r.Seq() == 0 {
			t.Fatalf("publish %d committed without an offset", i)
		}
	}

	var got []string
	var offsets []Offset
	for off, m := range sub.Subscribe(ctx, 1) {
		if m.Snapshot {
			t.Fatalf("unexpected snapshot at offset %d", off)
		}
		if m.Origin < ClientIDBase {
			t.Fatalf("client publish delivered with member origin %d", m.Origin)
		}
		got = append(got, string(m.Payload))
		offsets = append(offsets, off)
		if len(got) == msgs {
			break
		}
	}
	for i, s := range got {
		if want := fmt.Sprintf("m%d", i); s != want {
			t.Fatalf("position %d: got %q want %q (offsets %v)", i, s, want, offsets)
		}
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] <= offsets[i-1] {
			t.Fatalf("offsets not increasing: %v", offsets)
		}
	}
}

// TestSessionPublishDuringRotation: publishes keep committing exactly once
// while the leadership rotates underneath the serving member (the engine
// backpressure gate parks client publishes during each view change).
func TestSessionPublishDuringRotation(t *testing.T) {
	cluster, err := NewCluster(durableClusterCfg(t, 3), MemTransport(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	s, err := cluster.Dial(SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(40 * time.Millisecond):
			}
			// Ask whichever member currently leads to rotate.
			for j := range 3 {
				n := cluster.Node(j)
				if len(n.CurrentView().Members) > 0 && n.CurrentView().Members[0] == n.Self() {
					n.RotateLeader()
					break
				}
			}
		}
	}()

	const msgs = 60
	receipts := make([]*Receipt, msgs)
	for i := range msgs {
		r, err := s.Publish(ctx, fmt.Appendf(nil, "rot%d", i))
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		receipts[i] = r
		time.Sleep(2 * time.Millisecond)
	}
	for i, r := range receipts {
		if err := r.Wait(ctx); err != nil {
			t.Fatalf("publish %d never committed across rotations: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	// Exactly once: stream the whole order and count every payload.
	seen := make(map[string]int)
	got := 0
	for _, m := range s.Subscribe(ctx, 1) {
		seen[string(m.Payload)]++
		if got++; got == msgs {
			break
		}
	}
	for i := range msgs {
		if c := seen[fmt.Sprintf("rot%d", i)]; c != 1 {
			t.Fatalf("message rot%d delivered %d times, want exactly once", i, c)
		}
	}
}

// recorderSM is a tiny state machine for snapshot tests: it records every
// applied payload and snapshots as JSON.
type recorderSM struct {
	mu  sync.Mutex
	Log []string `json:"log"`
}

func (r *recorderSM) Apply(m Message) {
	r.mu.Lock()
	r.Log = append(r.Log, string(m.Payload))
	r.mu.Unlock()
}

func (r *recorderSM) Snapshot() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return json.Marshal(r.Log)
}

func (r *recorderSM) Restore(data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return json.Unmarshal(data, &r.Log)
}

// TestSessionSubscribeBelowTruncation: a subscriber resuming from an
// offset older than the members' WAL truncation point first receives the
// application snapshot (Message.Snapshot), then the retained entries,
// gap-free to the live tail.
func TestSessionSubscribeBelowTruncation(t *testing.T) {
	cfg := durableClusterCfg(t, 3)
	cfg.NodeConfig.SnapshotEvery = 16
	cfg.NodeConfig.WALSegmentBytes = 512
	cfg = cfg.WithStateMachines(func(id ProcID) StateMachine { return &recorderSM{} })
	cluster, err := NewCluster(cfg, MemTransport(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	s, err := cluster.Dial(SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const msgs = 200 // >> SnapshotEvery: several snapshots, segments truncated
	for i := range msgs {
		r, err := s.Publish(ctx, fmt.Appendf(nil, "t%03d", i))
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		if err := r.Wait(ctx); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}

	// Every member must have truncated its WAL behind a snapshot by now.
	first, _ := cluster.Node(0).wlog.Bounds()
	if first <= 1 {
		t.Fatalf("WAL not truncated (first retained entry %d); test needs a truncated log", first)
	}

	var snap *Message
	var after []string
	for off, m := range s.Subscribe(ctx, 1) {
		if m.Snapshot {
			if snap != nil {
				t.Fatalf("second snapshot at offset %d", off)
			}
			c := m
			snap = &c
			continue
		}
		after = append(after, string(m.Payload))
		if len(after) > 0 && string(m.Payload) == fmt.Sprintf("t%03d", msgs-1) {
			break
		}
	}
	if snap == nil {
		t.Fatal("resume below the truncation point did not start with a snapshot")
	}
	var inSnap []string
	if err := json.Unmarshal(snap.Payload, &inSnap); err != nil {
		t.Fatalf("snapshot payload is not the application snapshot: %v", err)
	}
	// Snapshot + tail must cover all msgs exactly once, in order.
	all := append(inSnap, after...)
	if len(all) != msgs {
		t.Fatalf("snapshot(%d) + tail(%d) = %d messages, want %d", len(inSnap), len(after), len(all), msgs)
	}
	for i, p := range all {
		if want := fmt.Sprintf("t%03d", i); p != want {
			t.Fatalf("position %d: got %q want %q", i, p, want)
		}
	}
}

// TestSessionDuplicatePublishRetry drives the wire protocol by hand: a
// client whose PUBACK was lost retries the same PubID — once while the
// publish is still being committed, once long after — and the group
// commits the payload exactly once, re-acking with the original offset.
func TestSessionDuplicatePublishRetry(t *testing.T) {
	net := mem.NewNetwork(mem.Options{})
	cluster, err := NewCluster(durableClusterCfg(t, 3), MemTransport(net))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	const clientID = ClientIDBase + 999
	ep, err := net.Join(clientID)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	acks := make(chan *wire.ClientPubAck, 16)
	ep.SetHandler(func(from transport.ProcID, payload []byte) {
		if msg, err := wire.DecodeClient(payload); err == nil {
			if a, ok := msg.(*wire.ClientPubAck); ok {
				acks <- a
			}
		}
	})
	member := cluster.IDs()[0]
	send := func(m []byte) {
		t.Helper()
		if err := ep.Send(member, m); err != nil {
			t.Fatal(err)
		}
	}
	send(wire.EncodeClientHello(&wire.ClientHello{}))

	// Publish pubID 1 twice back to back: the in-flight dedup must collapse
	// them into one broadcast with one ack.
	pub := &wire.ClientPublish{PubID: 1, Payload: []byte("once-only")}
	send(wire.EncodeClientPublish(pub))
	send(wire.EncodeClientPublish(pub))
	var firstSeq uint64
	select {
	case a := <-acks:
		if a.PubID != 1 {
			t.Fatalf("ack for pub %d, want 1", a.PubID)
		}
		firstSeq = a.Seq
	case <-time.After(10 * time.Second):
		t.Fatal("publish never acked")
	}

	// Retry long after commit (the lost-ack case): must re-ack at the
	// original offset without re-broadcasting.
	send(wire.EncodeClientPublish(pub))
	select {
	case a := <-acks:
		if a.PubID != 1 || a.Seq != firstSeq {
			t.Fatalf("duplicate retry acked at (pub %d, seq %d), want (1, %d)", a.PubID, a.Seq, firstSeq)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("duplicate retry never re-acked")
	}

	// The order holds the payload exactly once.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	count := 0
	for _, m := range cluster.Node(1).Session().Subscribe(ctx, 1) {
		if string(m.Payload) == "once-only" {
			if m.Origin != clientID || m.LogicalID != 1 {
				t.Fatalf("delivered with identity (%d, %d), want (%d, 1)", m.Origin, m.LogicalID, clientID)
			}
			count++
		}
		if m.Seq >= cluster.Node(1).Applied() {
			break
		}
	}
	if count != 1 {
		t.Fatalf("payload committed %d times, want exactly once", count)
	}
	if d := cluster.Node(1).Metrics().SessionDuplicates; d > 0 {
		// Duplicates filtered at apply time would mean the in-flight or
		// index dedup failed to stop a re-broadcast.
		t.Fatalf("%d duplicate publishes reached the order (dedup happened too late)", d)
	}
}

// TestSessionFailover10k is the acceptance scenario: a remote session
// publishes 10k messages while the member serving it is crashed
// mid-stream; the session reconnects to another member and every message
// is committed exactly once, in total order, while a concurrent
// Subscribe(1) stream observes the whole order gap-free.
func TestSessionFailover10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-message failover run")
	}
	cfg := durableClusterCfg(t, 3)
	cfg.NodeConfig.SegmentSize = 0 // default 8 KiB: small messages, 1 segment each
	cfg.NodeConfig.SnapshotEvery = 0
	cfg.NodeConfig.WALSegmentBytes = 1 << 20
	cluster, err := NewCluster(cfg, MemTransport(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	s, err := cluster.Dial(SessionOptions{
		Window:       128,
		AckTimeout:   time.Second,
		ProbeTimeout: 1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Concurrent subscriber from offset 1, collecting the whole order.
	type got struct {
		off Offset
		m   Message
	}
	subCtx, subCancel := context.WithCancel(ctx)
	defer subCancel()
	collected := make(chan got, 16<<10)
	go func() {
		for off, m := range s.Subscribe(subCtx, 1) {
			collected <- got{off: off, m: m}
		}
		close(collected)
	}()

	const msgs = 10_000
	const crashAt = 2_000 // commit count at which the serving member dies
	receipts := make([]*Receipt, msgs)
	crashed := make(chan struct{})
	crashWhenDelivered := make(chan *Receipt, 1)
	go func() {
		// The session binds to members[0] first (rotation order), so that
		// is the serving member to kill mid-stream.
		<-(<-crashWhenDelivered).Delivered()
		cluster.Crash(0)
		close(crashed)
	}()
	for i := range msgs {
		r, err := s.Publish(ctx, fmt.Appendf(nil, "bulk-%05d", i))
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		receipts[i] = r
		if i == crashAt-1 {
			crashWhenDelivered <- r
		}
	}
	for i, r := range receipts {
		if err := r.Wait(ctx); err != nil {
			t.Fatalf("publish %d lost across the crash: %v", i, err)
		}
	}
	<-crashed

	// Every payload exactly once, in publish order, at increasing offsets.
	want := 0
	var lastOff Offset
	for g := range collected {
		if g.m.Snapshot {
			t.Fatalf("unexpected snapshot at offset %d", g.off)
		}
		if g.off <= lastOff {
			t.Fatalf("offsets not increasing: %d after %d", g.off, lastOff)
		}
		lastOff = g.off
		if payload := fmt.Sprintf("bulk-%05d", want); string(g.m.Payload) != payload {
			t.Fatalf("position %d: got %q want %q (duplicate, gap or reorder)", want, g.m.Payload, payload)
		}
		if want++; want == msgs {
			break
		}
	}
	if want != msgs {
		t.Fatalf("subscriber saw %d messages, want %d", want, msgs)
	}

	// Survivors agree and filtered exactly the duplicates the retries sent.
	m1 := cluster.Node(1).Metrics()
	m2 := cluster.Node(2).Metrics()
	if m1.Applied != m2.Applied {
		t.Fatalf("survivors disagree on applied frontier: %d vs %d", m1.Applied, m2.Applied)
	}
	t.Logf("applied frontier %d; duplicates filtered: %d (node1)", m1.Applied, m1.SessionDuplicates)
}

// TestClientPubFIFOGate pins the backpressure-drop FIFO invariant: once a
// member drops a client publish uncommitted (per-client bound, parked
// overflow, broadcast error), it must refuse every HIGHER pubID from that
// client until the dropped one commits or is re-offered. Without the gate
// a selective drop leaves an interior hole in the client's stream that
// the sorted retry later fills out of FIFO order — found by the wan-geo
// chaos profile at soak scale, where WAN ack latency keeps enough
// publishes in flight to trip the bounds (see
// TestChaosWanGeoSoakPinned in internal/harness).
func TestClientPubFIFOGate(t *testing.T) {
	s := newSessSrv(nil)
	const cid = ClientIDBase + 9
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.gateAllows(cid, 30) {
		t.Fatal("gate refused with nothing dropped")
	}
	s.gateDrop(cid, 29)
	if s.gateAllows(cid, 30) {
		t.Fatal("pub 30 admitted past dropped, uncommitted 29")
	}
	if !s.gateAllows(cid, 28) {
		t.Fatal("pub 28 refused: an ID below the gate is always FIFO-safe")
	}
	if !s.gateAllows(cid, 29) {
		t.Fatal("re-offered 29 refused")
	}
	if !s.gateAllows(cid, 30) {
		t.Fatal("pub 30 refused after the gate lifted")
	}
	// Dropping twice keeps the lowest hole as the gate.
	s.gateDrop(cid, 44)
	s.gateDrop(cid, 41)
	if s.gateAllows(cid, 42) {
		t.Fatal("pub 42 admitted past dropped 41")
	}
	// A gate also resolves when its publish commits through ANOTHER member
	// (the index is global state): the client will never re-offer it here.
	s.index.add(cid, 41, 107)
	if !s.gateAllows(cid, 42) {
		t.Fatal("pub 42 refused after 41 committed elsewhere")
	}
}

// TestNodeSessionInProcess: Node.Session gives the identical interface in
// process — publish through one member's session, subscribe on another's.
func TestNodeSessionInProcess(t *testing.T) {
	cluster, err := NewCluster(durableClusterCfg(t, 3), MemTransport(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s := cluster.Node(0).Session()
	const msgs = 10
	for i := range msgs {
		r, err := s.Publish(ctx, fmt.Appendf(nil, "p%d", i))
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		if err := r.Wait(ctx); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	var got []string
	for _, m := range cluster.Node(2).Session().Subscribe(ctx, 1) {
		got = append(got, string(m.Payload))
		if len(got) == msgs {
			break
		}
	}
	for i, sGot := range got {
		if want := fmt.Sprintf("p%d", i); sGot != want {
			t.Fatalf("position %d: got %q want %q", i, sGot, want)
		}
	}
	if err := ctx.Err(); err != nil {
		t.Fatal(err)
	}
}
