package fsr_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fsr"
	"fsr/transport/mem"
)

// awaitReady polls Ready until nil or the deadline.
func awaitReady(t *testing.T, ready func() error, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		err := ready()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never became ready: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReadyJoinerTransition: a joiner's readiness walks the full ladder —
// "no installed view" before the group admits it, not-ready through the
// catch-up, nil once it holds the history. This is exactly the window an
// orchestrator's readiness gate must keep traffic away from.
func TestReadyJoinerTransition(t *testing.T) {
	reg := newSMRegistry()
	base := t.TempDir()
	cfg := fsr.ClusterConfig{
		N: 3, T: 1,
		NodeConfig: durableConfig(),
	}.WithDurableDir(base).WithStateMachines(reg.factory)
	network := mem.NewNetwork(mem.Options{})
	cluster, err := fsr.NewCluster(cfg, fsr.MemTransport(network))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	ids := cluster.IDs()
	for i := range 3 {
		awaitReady(t, cluster.Node(i).Ready, 10*time.Second)
	}

	// History the joiner will have to fetch.
	writeBatch(t, cluster.Nodes(), 0, 100)

	ep, err := network.Join(9)
	if err != nil {
		t.Fatal(err)
	}
	jcfg := durableConfig()
	jcfg.Self = 9
	jcfg.Joiner = true
	jcfg.Members = ids
	jcfg = jcfg.WithDurableDir(base + "/node-9").WithStateMachine(reg.factory(9))
	joiner, err := fsr.NewNode(jcfg, ep)
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Stop()

	// Before the join round-trip: no view installed yet.
	if err := joiner.Ready(); err == nil || !strings.Contains(err.Error(), "no installed view") {
		t.Fatalf("pre-join Ready() = %v, want no-installed-view error", err)
	}
	if !joiner.Join(ids) {
		t.Fatal("join not accepted")
	}
	awaitReady(t, joiner.Ready, 20*time.Second)
	if m := joiner.Metrics(); m.CatchingUp {
		t.Fatal("ready while still catching up")
	}
	if joiner.Applied() < 100 {
		t.Fatalf("ready at applied=%d, want the full prefix (100)", joiner.Applied())
	}
}

// TestReadyWALDirGone: readiness must follow the durable directory — a
// yanked disk (simulated by renaming the WAL dir away; permission bits
// would be a no-op under root) flips Ready to an error, and restoring the
// directory flips it back.
func TestReadyWALDirGone(t *testing.T) {
	reg := newSMRegistry()
	base := t.TempDir()
	cfg := fsr.ClusterConfig{
		N: 3, T: 1,
		NodeConfig: durableConfig(),
	}.WithDurableDir(base).WithStateMachines(reg.factory)
	cluster, err := fsr.NewCluster(cfg, fsr.MemTransport(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	node := cluster.Node(1)
	awaitReady(t, node.Ready, 10*time.Second)

	dir := filepath.Join(base, "node-1")
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("expected per-node WAL dir: %v", err)
	}
	hidden := dir + ".gone"
	if err := os.Rename(dir, hidden); err != nil {
		t.Fatal(err)
	}
	if err := node.Ready(); err == nil || !strings.Contains(err.Error(), "not writable") {
		t.Fatalf("Ready() with WAL dir gone = %v, want not-writable error", err)
	}
	// Liveness is unaffected: the node itself has not failed.
	if err := node.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil while merely not ready", err)
	}
	if err := os.Rename(hidden, dir); err != nil {
		t.Fatal(err)
	}
	awaitReady(t, node.Ready, 5*time.Second)
}
