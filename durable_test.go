package fsr_test

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"fsr"
	"fsr/transport/mem"
)

// kvOp is the command vocabulary of the test state machine.
type kvOp struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// appliedRec is one applied message as the state machine saw it — the unit
// of the replication invariant.
type appliedRec struct {
	Seq     uint64     `json:"seq"`
	Origin  fsr.ProcID `json:"origin"`
	Payload string     `json:"payload"`
}

// kvSM is a replicated key-value store that also records the exact applied
// sequence, so tests can assert "no gap, no duplicate, no reorder" rather
// than just final-state equality. The applied log rides inside the
// snapshot: a replica rebuilt via state transfer still carries the full
// history for comparison.
type kvSM struct {
	mu       sync.Mutex
	store    map[string]string
	log      []appliedRec
	bad      []appliedRec // messages whose payload failed to parse (test diagnostics)
	restores int
}

func newKVSM() *kvSM { return &kvSM{store: make(map[string]string)} }

func (s *kvSM) Apply(m fsr.Message) {
	var op kvOp
	if err := json.Unmarshal(m.Payload, &op); err != nil {
		s.mu.Lock()
		s.bad = append(s.bad, appliedRec{Seq: m.Seq, Origin: m.Origin, Payload: string(m.Payload)})
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store[op.Key] = op.Value
	s.log = append(s.log, appliedRec{Seq: m.Seq, Origin: m.Origin, Payload: string(m.Payload)})
}

type kvSnap struct {
	Store map[string]string `json:"store"`
	Log   []appliedRec      `json:"log"`
}

func (s *kvSM) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return json.Marshal(kvSnap{Store: s.store, Log: s.log})
}

func (s *kvSM) Restore(data []byte) error {
	var snap kvSnap
	if err := json.Unmarshal(data, &snap); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store = snap.Store
	if s.store == nil {
		s.store = make(map[string]string)
	}
	s.log = snap.Log
	s.restores++
	return nil
}

func (s *kvSM) appliedLog() []appliedRec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]appliedRec(nil), s.log...)
}

func (s *kvSM) get(k string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store[k]
}

func (s *kvSM) badCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.bad)
}

func (s *kvSM) storeCopy() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.store))
	for k, v := range s.store {
		out[k] = v
	}
	return out
}

// smRegistry hands out state machines per member and remembers the latest
// instance (Cluster.Restart builds a fresh one for the new incarnation).
type smRegistry struct {
	mu  sync.Mutex
	sms map[fsr.ProcID]*kvSM
}

func newSMRegistry() *smRegistry { return &smRegistry{sms: make(map[fsr.ProcID]*kvSM)} }

func (r *smRegistry) factory(id fsr.ProcID) fsr.StateMachine {
	r.mu.Lock()
	defer r.mu.Unlock()
	sm := newKVSM()
	r.sms[id] = sm
	return sm
}

func (r *smRegistry) get(id fsr.ProcID) *kvSM {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sms[id]
}

// durableConfig is fastConfig plus aggressive durability settings: small
// protocol segments (so some writes are multi-part), frequent snapshots
// and tiny WAL segments (so truncation and state transfer actually
// happen in-test).
func durableConfig() fsr.Config {
	cfg := fastConfig()
	cfg.SegmentSize = 256
	cfg.SnapshotEvery = 48
	cfg.WALSegmentBytes = 2048
	return cfg
}

// write broadcasts one kv op from the given node and returns the receipt.
func write(t *testing.T, node *fsr.Node, key, value string) *fsr.Receipt {
	t.Helper()
	payload, err := json.Marshal(kvOp{Key: key, Value: value})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	r, err := node.Broadcast(ctx, payload)
	if err != nil {
		t.Fatalf("broadcast from %d: %v", node.Self(), err)
	}
	return r
}

// writeBatch issues writes round-robin across nodes and waits until all
// are uniformly delivered. Values longer than the protocol segment size
// exercise multi-part reassembly across crash/restart boundaries.
func writeBatch(t *testing.T, nodes []*fsr.Node, start, count int) {
	t.Helper()
	var receipts []*fsr.Receipt
	for i := start; i < start+count; i++ {
		node := nodes[i%len(nodes)]
		val := fmt.Sprintf("v%d", i)
		if i%7 == 0 {
			// ~600 bytes: three protocol segments at SegmentSize 256.
			val = fmt.Sprintf("long-%d-%s", i, string(make([]byte, 600)))
		}
		receipts = append(receipts, write(t, node, fmt.Sprintf("key-%d", i%13), val))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, r := range receipts {
		if err := r.Wait(ctx); err != nil {
			t.Fatalf("write %d not durable: %v", start+i, err)
		}
	}
}

// waitAppliedLogs polls until every listed state machine has applied
// exactly `want` messages, then returns their logs.
func waitAppliedLogs(t *testing.T, reg *smRegistry, ids []fsr.ProcID, want int) map[fsr.ProcID][]appliedRec {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		logs := make(map[fsr.ProcID][]appliedRec, len(ids))
		ready := true
		for _, id := range ids {
			l := reg.get(id).appliedLog()
			logs[id] = l
			if len(l) != want {
				ready = false
			}
		}
		if ready {
			for _, id := range ids {
				if bad := reg.get(id).badCount(); bad != 0 {
					t.Fatalf("node %d applied %d unparseable payloads (corrupt reassembly)", id, bad)
				}
			}
			return logs
		}
		if time.Now().After(deadline) {
			for _, id := range ids {
				t.Logf("node %d applied %d/%d", id, len(logs[id]), want)
			}
			t.Fatal("state machines never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertSameAppliedLog is the replication invariant: two replicas applied
// exactly the same messages in exactly the same order — no gap, no
// duplicate, no reorder — with strictly increasing sequence numbers.
func assertSameAppliedLog(t *testing.T, ref, got []appliedRec, who string) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s applied %d messages, reference %d", who, len(got), len(ref))
	}
	var prev uint64
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("%s diverged at %d: %+v vs %+v", who, i, got[i], ref[i])
		}
		if got[i].Seq <= prev {
			t.Fatalf("%s: seq not strictly increasing at %d: %d after %d", who, i, got[i].Seq, prev)
		}
		prev = got[i].Seq
	}
}

// TestClusterRestartCatchUpExactPrefix is the crash-restart invariant: a
// member killed mid-traffic and restarted from its WAL re-derives exactly
// the same applied sequence as a replica that never crashed — the
// pre-crash prefix from snapshot+WAL replay, the missed middle from
// catch-up, and the tail live.
func TestClusterRestartCatchUpExactPrefix(t *testing.T) {
	reg := newSMRegistry()
	cfg := fsr.ClusterConfig{
		N: 4, T: 1,
		NodeConfig: durableConfig(),
	}.WithDurableDir(t.TempDir()).WithStateMachines(reg.factory)
	cluster, err := fsr.NewCluster(cfg, fsr.MemTransport(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	ids := cluster.IDs()

	// Phase A: traffic with every member up.
	writeBatch(t, cluster.Nodes(), 0, 120)

	// Kill member 2 (fail-stop: endpoint dropped, in-flight traffic lost).
	cluster.Crash(2)
	if _, ok := cluster.WaitView(0, 3, 20*time.Second); !ok {
		t.Fatal("survivors never evicted the crashed member")
	}
	preCrash := len(reg.get(ids[2]).appliedLog())

	// Phase B: traffic the crashed member misses entirely.
	survivors := []*fsr.Node{cluster.Node(0), cluster.Node(1), cluster.Node(3)}
	writeBatch(t, survivors, 120, 120)

	// Restart in place from the durable directory.
	rn, err := cluster.Restart(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cluster.WaitView(2, 4, 30*time.Second); !ok {
		t.Fatal("restarted member never readmitted")
	}
	restartedSM := reg.get(ids[2])
	if got := len(restartedSM.appliedLog()); got < preCrash {
		t.Fatalf("WAL replay lost history: %d applied after restart, %d before crash", got, preCrash)
	}

	// Phase C: traffic with the restarted member participating again
	// (its own broadcasts block until catch-up completes, then flow).
	writeBatch(t, []*fsr.Node{cluster.Node(0), cluster.Node(1), rn, cluster.Node(3)}, 240, 60)

	logs := waitAppliedLogs(t, reg, ids, 300)
	ref := logs[ids[0]]
	for _, id := range ids[1:] {
		assertSameAppliedLog(t, ref, logs[id], fmt.Sprintf("node %d", id))
	}
	// And the store contents agree with the log agreement.
	for _, id := range ids[1:] {
		for k, v := range reg.get(ids[0]).storeCopy() {
			if got := reg.get(id).get(k); got != v {
				t.Fatalf("node %d: %s=%q, want %q", id, k, got, v)
			}
		}
	}
	if m := rn.Metrics(); m.Applied == 0 || m.CatchingUp {
		t.Fatalf("restarted node metrics: %+v", m)
	}
}

// TestJoinerFullStateTransfer: a brand-new durable member (empty WAL)
// joins a group whose members have long since snapshotted and truncated
// the history it needs; the catch-up must bridge the gap with a snapshot
// transfer and leave the joiner with the identical applied history.
func TestJoinerFullStateTransfer(t *testing.T) {
	reg := newSMRegistry()
	base := t.TempDir()
	cfg := fsr.ClusterConfig{
		N: 3, T: 1,
		NodeConfig: durableConfig(),
	}.WithDurableDir(base).WithStateMachines(reg.factory)
	network := mem.NewNetwork(mem.Options{})
	cluster, err := fsr.NewCluster(cfg, fsr.MemTransport(network))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	ids := cluster.IDs()

	// Enough traffic that every member snapshotted (SnapshotEvery 48) and
	// truncated WAL segments (2 KiB each) behind the snapshot.
	writeBatch(t, cluster.Nodes(), 0, 200)

	// A fresh durable member joins.
	ep, err := network.Join(9)
	if err != nil {
		t.Fatal(err)
	}
	jcfg := durableConfig()
	jcfg.Self = 9
	jcfg.Joiner = true
	jcfg.Members = ids
	jcfg = jcfg.WithDurableDir(base + "/node-9").WithStateMachine(reg.factory(9))
	joiner, err := fsr.NewNode(jcfg, ep)
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Stop()
	if !joiner.Join(ids) {
		t.Fatal("join not accepted")
	}

	logs := waitAppliedLogs(t, reg, append(ids, 9), 200)
	assertSameAppliedLog(t, logs[ids[0]], logs[9], "joiner")

	// More live traffic after the transfer keeps everyone in lockstep.
	writeBatch(t, cluster.Nodes(), 200, 40)
	logs = waitAppliedLogs(t, reg, append(ids, 9), 240)
	assertSameAppliedLog(t, logs[ids[0]], logs[9], "joiner (live)")
}

// TestRestartWithoutTraffic: restarting into a quiet group must converge
// (the catch-up has nothing to fetch) and keep the pre-crash state.
func TestRestartWithoutTraffic(t *testing.T) {
	reg := newSMRegistry()
	cfg := fsr.ClusterConfig{
		N: 3, T: 1,
		NodeConfig: durableConfig(),
	}.WithDurableDir(t.TempDir()).WithStateMachines(reg.factory)
	cluster, err := fsr.NewCluster(cfg, fsr.MemTransport(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	ids := cluster.IDs()

	writeBatch(t, cluster.Nodes(), 0, 60)
	cluster.Crash(1)
	if _, ok := cluster.WaitView(0, 2, 20*time.Second); !ok {
		t.Fatal("no eviction")
	}
	if _, err := cluster.Restart(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := cluster.WaitView(1, 3, 30*time.Second); !ok {
		t.Fatal("no readmission")
	}
	logs := waitAppliedLogs(t, reg, ids, 60)
	assertSameAppliedLog(t, logs[ids[0]], logs[ids[1]], "restarted node")
}

// TestRestartOverTCP runs the kill-and-restart cycle over real sockets:
// the restarted member binds a fresh ephemeral port, peers re-learn its
// address through the cluster transport, and the bounded dial retry
// bridges the window where connections are re-established.
func TestRestartOverTCP(t *testing.T) {
	reg := newSMRegistry()
	// Real sockets plus fsync-heavy pumps on a loaded (possibly single-CPU)
	// CI box can starve an event loop for longer than the mem-transport
	// tests tolerate; the failure timeout must stay above such stalls or
	// the perfect-failure-detector assumption breaks and the group splits.
	nc := durableConfig()
	nc.HeartbeatInterval = 20 * time.Millisecond
	nc.FailureTimeout = 600 * time.Millisecond
	nc.ChangeTimeout = 500 * time.Millisecond
	cfg := fsr.ClusterConfig{
		N: 3, T: 1,
		NodeConfig: nc,
	}.WithDurableDir(t.TempDir()).WithStateMachines(reg.factory)
	cluster, err := fsr.NewCluster(cfg, fsr.TCPTransport(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	ids := cluster.IDs()

	writeBatch(t, cluster.Nodes(), 0, 60)
	cluster.Crash(1)
	if _, ok := cluster.WaitView(0, 2, 20*time.Second); !ok {
		t.Fatal("no eviction")
	}
	writeBatch(t, []*fsr.Node{cluster.Node(0), cluster.Node(2)}, 60, 60)
	if _, err := cluster.Restart(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := cluster.WaitView(1, 3, 30*time.Second); !ok {
		t.Fatal("no readmission")
	}
	writeBatch(t, cluster.Nodes(), 120, 30)
	logs := waitAppliedLogs(t, reg, ids, 150)
	assertSameAppliedLog(t, logs[ids[0]], logs[ids[1]], "restarted node (tcp)")
}
