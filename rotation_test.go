package fsr_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"fsr"
	"fsr/transport/mem"
)

// TestRotateLeader exercises the paper's §4.3.1 latency-balancing device:
// the leader role moves to the next ring position via a view change, and
// ordered delivery continues seamlessly across the rotation.
func TestRotateLeader(t *testing.T) {
	c := newCluster(t, 4, 1)
	ctx := context.Background()
	if _, err := c.Node(1).Broadcast(ctx, []byte("before")); err != nil {
		t.Fatal(err)
	}
	c.Node(0).RotateLeader()
	deadline := time.After(10 * time.Second)
	var v fsr.ViewInfo
	for {
		select {
		case v = <-c.Node(2).Views():
		case <-deadline:
			t.Fatal("rotation view never installed")
		}
		if len(v.Members) == 4 && v.Members[0] == c.IDs()[1] {
			break
		}
	}
	if v.Members[3] != c.IDs()[0] {
		t.Fatalf("old leader not at the tail: %v", v.Members)
	}
	if _, err := c.Node(3).Broadcast(ctx, []byte("after")); err != nil {
		t.Fatal(err)
	}
	for i := range 4 {
		msgs := collect(t, c.Node(i), 2)
		if string(msgs[0].Payload) != "before" || string(msgs[1].Payload) != "after" {
			t.Fatalf("node %d: %q, %q", i, msgs[0].Payload, msgs[1].Payload)
		}
	}
}

// TestRotateLeaderFromFollowerIgnored: rotation is a leader prerogative.
func TestRotateLeaderFromFollowerIgnored(t *testing.T) {
	c := newCluster(t, 3, 1)
	c.Node(2).RotateLeader()
	select {
	case v := <-c.Node(0).Views():
		t.Fatalf("follower rotation installed view %d", v.ID)
	case <-time.After(500 * time.Millisecond):
	}
}

// TestRepeatedRotationRoundRobin rotates the leadership all the way around
// the ring while traffic flows, checking the ring order after each step.
func TestRepeatedRotationRoundRobin(t *testing.T) {
	const n = 3
	c := newCluster(t, n, 1)
	ctx := context.Background()
	ids := c.IDs()
	for round := 1; round <= n; round++ {
		// The current leader after `round-1` rotations.
		leaderIdx := (round - 1) % n
		if _, err := c.Node(leaderIdx).Broadcast(ctx, []byte(fmt.Sprintf("r%d", round))); err != nil {
			t.Fatal(err)
		}
		c.Node(leaderIdx).RotateLeader()
		wantLeader := ids[round%n]
		deadline := time.After(10 * time.Second)
		for {
			var v fsr.ViewInfo
			select {
			case v = <-c.Node((leaderIdx + 1) % n).Views():
			case <-deadline:
				t.Fatalf("rotation %d never installed", round)
			}
			if len(v.Members) == n && v.Members[0] == wantLeader {
				goto next
			}
		}
	next:
	}
	// All traffic delivered identically despite three leadership handoffs.
	ref := collect(t, c.Node(0), n)
	got := collect(t, c.Node(2), n)
	assertSameOrder(t, ref, got)
}

// TestBandwidthPacedNetwork runs a cluster on a rate-limited mem network —
// the configuration the fairness examples rely on — and checks that
// ordering survives the pacing.
func TestBandwidthPacedNetwork(t *testing.T) {
	network := mem.NewNetwork(mem.Options{Bandwidth: 200e6, Latency: 100 * time.Microsecond})
	c, err := fsr.NewCluster(fsr.ClusterConfig{N: 3, T: 1, NodeConfig: fastConfig()}, fsr.MemTransport(network))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	ctx := context.Background()
	const per = 15
	for i := range per {
		if _, err := c.Node(i%3).Broadcast(ctx, make([]byte, 2048+i)); err != nil {
			t.Fatal(err)
		}
	}
	a := collect(t, c.Node(0), per)
	b := collect(t, c.Node(2), per)
	assertSameOrder(t, a, b)
}
