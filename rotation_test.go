package fsr_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"fsr"
	"fsr/transport/mem"
)

// TestRotateLeader exercises the paper's §4.3.1 latency-balancing device:
// the leader role moves to the next ring position via a view change, and
// ordered delivery continues seamlessly across the rotation.
func TestRotateLeader(t *testing.T) {
	c := newCluster(t, 4, 1)
	ctx := context.Background()
	if _, err := c.Node(1).Broadcast(ctx, []byte("before")); err != nil {
		t.Fatal(err)
	}
	c.Node(0).RotateLeader()
	deadline := time.After(10 * time.Second)
	var v fsr.ViewInfo
	for {
		select {
		case v = <-c.Node(2).Views():
		case <-deadline:
			t.Fatal("rotation view never installed")
		}
		if len(v.Members) == 4 && v.Members[0] == c.IDs()[1] {
			break
		}
	}
	if v.Members[3] != c.IDs()[0] {
		t.Fatalf("old leader not at the tail: %v", v.Members)
	}
	if _, err := c.Node(3).Broadcast(ctx, []byte("after")); err != nil {
		t.Fatal(err)
	}
	for i := range 4 {
		msgs := collect(t, c.Node(i), 2)
		if string(msgs[0].Payload) != "before" || string(msgs[1].Payload) != "after" {
			t.Fatalf("node %d: %q, %q", i, msgs[0].Payload, msgs[1].Payload)
		}
	}
}

// TestRotateLeaderFromFollowerIgnored: rotation is a leader prerogative.
func TestRotateLeaderFromFollowerIgnored(t *testing.T) {
	c := newCluster(t, 3, 1)
	c.Node(2).RotateLeader()
	select {
	case v := <-c.Node(0).Views():
		t.Fatalf("follower rotation installed view %d", v.ID)
	case <-time.After(500 * time.Millisecond):
	}
}

// TestRepeatedRotationRoundRobin rotates the leadership all the way around
// the ring while traffic flows, checking the ring order after each step.
func TestRepeatedRotationRoundRobin(t *testing.T) {
	const n = 3
	c := newCluster(t, n, 1)
	ctx := context.Background()
	ids := c.IDs()
	for round := 1; round <= n; round++ {
		// The current leader after `round-1` rotations.
		leaderIdx := (round - 1) % n
		if _, err := c.Node(leaderIdx).Broadcast(ctx, []byte(fmt.Sprintf("r%d", round))); err != nil {
			t.Fatal(err)
		}
		c.Node(leaderIdx).RotateLeader()
		wantLeader := ids[round%n]
		deadline := time.After(10 * time.Second)
		for {
			var v fsr.ViewInfo
			select {
			case v = <-c.Node((leaderIdx + 1) % n).Views():
			case <-deadline:
				t.Fatalf("rotation %d never installed", round)
			}
			if len(v.Members) == n && v.Members[0] == wantLeader {
				goto next
			}
		}
	next:
	}
	// All traffic delivered identically despite three leadership handoffs.
	ref := collect(t, c.Node(0), n)
	got := collect(t, c.Node(2), n)
	assertSameOrder(t, ref, got)
}

// TestRotateLeaderUnderLoad rotates the sequencer repeatedly while several
// goroutines keep broadcasting from every member: each handoff must
// preserve in-flight messages (every issued receipt resolves Delivered or
// with a definite error — never hangs) and the survivors' total order
// stays identical and duplicate-free across all the epochs.
func TestRotateLeaderUnderLoad(t *testing.T) {
	const n, senders, per, rotations = 4, 4, 30, 3
	c := newCluster(t, n, 1)
	ids := c.IDs()

	var mu sync.Mutex
	var receipts []*fsr.Receipt
	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for g := range senders {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			node := c.Node(g % n)
			for j := range per {
				r, err := node.Broadcast(ctx, []byte(fmt.Sprintf("g%d-%d", g, j)))
				if err != nil {
					t.Errorf("sender %d broadcast %d: %v", g, j, err)
					return
				}
				mu.Lock()
				receipts = append(receipts, r)
				mu.Unlock()
			}
		}(g)
	}

	// Walk the leadership around the ring while the load is in flight.
	for round := 1; round <= rotations; round++ {
		wantLeader := ids[round%n]
		deadline := time.Now().Add(10 * time.Second)
		for { // the current leader is whoever the latest view says it is
			var rotated bool
			for i := range n {
				v := c.Node(i).CurrentView()
				if len(v.Members) > 0 && v.Members[0] == c.Node(i).Self() {
					rotated = c.Node(i).RotateLeader()
					break
				}
			}
			_ = rotated // a coalesced/dropped request is retried below
			if v := c.Node(0).CurrentView(); len(v.Members) > 0 && v.Members[0] == wantLeader {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("rotation %d never installed", round)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	wg.Wait()

	// Liveness half: every receipt resolves.
	total := senders * per
	if len(receipts) != total {
		t.Fatalf("only %d/%d broadcasts issued", len(receipts), total)
	}
	for i, r := range receipts {
		if err := r.Wait(ctx); err != nil {
			t.Fatalf("receipt %d did not survive rotation: %v", i, err)
		}
		if r.Seq() == 0 {
			t.Fatalf("receipt %d resolved without a sequence number", i)
		}
	}
	// Safety half: one gap-free duplicate-free order, identical everywhere.
	var streams [][]fsr.Message
	for i := range n {
		streams = append(streams, collect(t, c.Node(i), total))
	}
	for i := 1; i < n; i++ {
		assertSameOrder(t, streams[0], streams[i])
	}
	seen := make(map[string]bool, total)
	var prevSeq uint64
	for _, m := range streams[0] {
		if m.Seq <= prevSeq {
			t.Fatalf("sequence regressed: %d after %d", m.Seq, prevSeq)
		}
		prevSeq = m.Seq
		if seen[string(m.Payload)] {
			t.Fatalf("duplicate delivery of %q", m.Payload)
		}
		seen[string(m.Payload)] = true
	}
	for g := range senders {
		for j := range per {
			if p := fmt.Sprintf("g%d-%d", g, j); !seen[p] {
				t.Fatalf("message %s lost across rotations", p)
			}
		}
	}
}

// TestBandwidthPacedNetwork runs a cluster on a rate-limited mem network —
// the configuration the fairness examples rely on — and checks that
// ordering survives the pacing.
func TestBandwidthPacedNetwork(t *testing.T) {
	network := mem.NewNetwork(mem.Options{Bandwidth: 200e6, Latency: 100 * time.Microsecond})
	c, err := fsr.NewCluster(fsr.ClusterConfig{N: 3, T: 1, NodeConfig: fastConfig()}, fsr.MemTransport(network))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	ctx := context.Background()
	const per = 15
	for i := range per {
		if _, err := c.Node(i%3).Broadcast(ctx, make([]byte, 2048+i)); err != nil {
			t.Fatal(err)
		}
	}
	a := collect(t, c.Node(0), per)
	b := collect(t, c.Node(2), per)
	assertSameOrder(t, a, b)
}
