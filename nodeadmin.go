package fsr

import (
	"encoding/json"
	"time"

	"fsr/admin"
	"fsr/internal/wire"
)

// handleAdmin answers one KindAdmin request on the event loop. The reply
// travels back over the inbound connection the request arrived on (the same
// path serveCatchup uses), so it reaches dialed-in admin clients that have
// no listener of their own. All state is read through the same snapshot
// paths Metrics uses; nothing here touches the frame hot path.
func (n *Node) handleAdmin(from ProcID, payload []byte) {
	v, err := wire.DecodeAdmin(payload)
	if err != nil {
		return // garbage; no reply channel to speak of
	}
	req, ok := v.(*wire.AdminReq)
	if !ok {
		return // a stray response; nodes only serve
	}
	resp := wire.AdminResp{Op: req.Op}
	var body any
	switch req.Op {
	case wire.AdminStatus:
		view := n.CurrentView()
		s := admin.Status{
			Role:       "member",
			ID:         uint32(n.cfg.Self),
			Epoch:      view.ID,
			Applied:    n.Applied(),
			CatchingUp: n.catch != nil,
			IsLeader:   n.engine.IsLeader(),
		}
		if len(view.Members) > 0 {
			s.Leader = uint32(view.Members[0])
		}
		if err := n.Ready(); err != nil {
			s.ReadyErr = err.Error()
		} else {
			s.Ready = true
		}
		body = &s
	case wire.AdminMembers:
		view := n.CurrentView()
		m := admin.Members{Epoch: view.ID, T: view.T}
		for _, id := range view.Members {
			m.IDs = append(m.IDs, uint32(id))
		}
		if len(m.IDs) > 0 {
			m.Leader = m.IDs[0]
		}
		body = &m
	case wire.AdminWAL:
		w := admin.WALInfo{}
		if n.wlog != nil {
			ws := n.wlog.Stats()
			w = admin.WALInfo{
				Durable:     true,
				Segments:    ws.Segments,
				Bytes:       ws.Bytes,
				Appends:     ws.Appends,
				Fsyncs:      ws.Fsyncs,
				Rotations:   ws.Rotations,
				Snapshots:   ws.Snapshots,
				SnapshotSeq: ws.SnapshotSeq,
				Repairs:     ws.Repairs,
			}
			if !ws.SnapshotTime.IsZero() {
				w.SnapshotAgeMillis = time.Since(ws.SnapshotTime).Milliseconds()
			}
		}
		body = &w
	case wire.AdminSessions:
		n.sess.mu.Lock()
		s := admin.Sessions{
			Publishes:  n.sess.pubsAccepted,
			Duplicates: n.sess.dupsFiltered,
			Bounded:    n.sess.pubsBounded,
		}
		n.sess.mu.Unlock()
		st := n.srv.Stats()
		s.Subscribers = st.Subs
		s.TailAttached = st.TailAttached
		s.EdgeClients = st.EdgeClients
		s.TailFrames = st.TailFrames
		s.TailDetaches = st.TailDetaches
		body = &s
	case wire.AdminSnapshot:
		r := admin.SnapshotResult{Triggered: n.TriggerSnapshot()}
		if !r.Triggered {
			r.Reason = "no durable log or state machine"
		}
		body = &r
	case wire.AdminEvict:
		// Force a member out of the view — the operator override for a
		// wedged or half-partitioned process the detector has not (or
		// cannot) act on. handleAdmin runs on the event loop, so the
		// membership manager may be called directly; the request is
		// relayed to the coordinator when this node is not it, and
		// evicting ourselves degrades to a graceful departure.
		r := admin.EvictResult{Target: req.Target,
			Requested: n.mgr.RequestEvict(ProcID(req.Target), time.Now())}
		if !r.Requested {
			r.Reason = "no installed view, or target not a member of it"
		}
		body = &r
	case wire.AdminJoinHint:
		// Hand an unadmitted joiner a contact list to request admission
		// through — the operator nudge for a process that restarted with a
		// stale or empty member list.
		contacts := make([]ProcID, 0, len(req.Contacts))
		for _, c := range req.Contacts {
			contacts = append(contacts, ProcID(c))
		}
		var r admin.JoinHintResult
		n.mu.Lock()
		joined := n.joined
		n.mu.Unlock()
		switch {
		case len(contacts) == 0:
			r.Reason = "no contacts supplied"
		case joined:
			r.Reason = "already a member of an installed view"
		case n.Join(contacts):
			r.Accepted = true
		default:
			r.Reason = "a join request is already queued"
		}
		body = &r
	default:
		resp.Err = "unknown admin op"
	}
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Body = b
		}
	}
	_ = n.tr.Send(from, wire.EncodeAdminResp(&resp))
}
