package fsr

import (
	"encoding/json"
	"time"

	"fsr/admin"
	"fsr/internal/wire"
)

// handleAdmin answers one KindAdmin request on the event loop. The reply
// travels back over the inbound connection the request arrived on (the same
// path serveCatchup uses), so it reaches dialed-in admin clients that have
// no listener of their own. All state is read through the same snapshot
// paths Metrics uses; nothing here touches the frame hot path.
func (n *Node) handleAdmin(from ProcID, payload []byte) {
	v, err := wire.DecodeAdmin(payload)
	if err != nil {
		return // garbage; no reply channel to speak of
	}
	req, ok := v.(*wire.AdminReq)
	if !ok {
		return // a stray response; nodes only serve
	}
	resp := wire.AdminResp{Op: req.Op}
	var body any
	switch req.Op {
	case wire.AdminStatus:
		view := n.CurrentView()
		s := admin.Status{
			Role:       "member",
			ID:         uint32(n.cfg.Self),
			Epoch:      view.ID,
			Applied:    n.Applied(),
			CatchingUp: n.catch != nil,
			IsLeader:   n.engine.IsLeader(),
		}
		if len(view.Members) > 0 {
			s.Leader = uint32(view.Members[0])
		}
		if err := n.Ready(); err != nil {
			s.ReadyErr = err.Error()
		} else {
			s.Ready = true
		}
		body = &s
	case wire.AdminMembers:
		view := n.CurrentView()
		m := admin.Members{Epoch: view.ID, T: view.T}
		for _, id := range view.Members {
			m.IDs = append(m.IDs, uint32(id))
		}
		if len(m.IDs) > 0 {
			m.Leader = m.IDs[0]
		}
		body = &m
	case wire.AdminWAL:
		w := admin.WALInfo{}
		if n.wlog != nil {
			ws := n.wlog.Stats()
			w = admin.WALInfo{
				Durable:     true,
				Segments:    ws.Segments,
				Bytes:       ws.Bytes,
				Appends:     ws.Appends,
				Fsyncs:      ws.Fsyncs,
				Rotations:   ws.Rotations,
				Snapshots:   ws.Snapshots,
				SnapshotSeq: ws.SnapshotSeq,
				Repairs:     ws.Repairs,
			}
			if !ws.SnapshotTime.IsZero() {
				w.SnapshotAgeMillis = time.Since(ws.SnapshotTime).Milliseconds()
			}
		}
		body = &w
	case wire.AdminSessions:
		n.sess.mu.Lock()
		s := admin.Sessions{
			Publishes:  n.sess.pubsAccepted,
			Duplicates: n.sess.dupsFiltered,
			Bounded:    n.sess.pubsBounded,
		}
		n.sess.mu.Unlock()
		st := n.srv.Stats()
		s.Subscribers = st.Subs
		s.TailAttached = st.TailAttached
		s.EdgeClients = st.EdgeClients
		s.TailFrames = st.TailFrames
		s.TailDetaches = st.TailDetaches
		body = &s
	case wire.AdminSnapshot:
		r := admin.SnapshotResult{Triggered: n.TriggerSnapshot()}
		if !r.Triggered {
			r.Reason = "no durable log or state machine"
		}
		body = &r
	default:
		resp.Err = "unknown admin op"
	}
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Body = b
		}
	}
	_ = n.tr.Send(from, wire.EncodeAdminResp(&resp))
}
