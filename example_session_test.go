package fsr_test

import (
	"context"
	"fmt"
	"log"

	"fsr"
)

// In-process sessions: the same Session interface remote clients get from
// client.Dial, served by a member directly. Publish one message, then
// stream the order from the beginning.
func ExampleNode_Session() {
	cluster, err := fsr.NewCluster(fsr.ClusterConfig{N: 3, T: 1}, fsr.MemTransport(nil))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	ctx := context.Background()
	s := cluster.Node(0).Session()
	r, err := s.Publish(ctx, []byte("hello order"))
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Wait(ctx); err != nil {
		log.Fatal(err)
	}

	// Subscribe(ctx, 1): everything from the first offset, gap-free, then
	// the live tail. The same loop works on any member — the order is the
	// same everywhere.
	for off, m := range cluster.Node(2).Session().Subscribe(ctx, 1) {
		fmt.Printf("offset %d: %s\n", off, m.Payload)
		break
	}
	// Output:
	// offset 1: hello order
}

// A session client over the cluster's transport: not a ring member, fails
// over between members automatically. With TCPTransport the identical
// calls cross real sockets (see package client for standalone processes).
func ExampleCluster_Dial() {
	cluster, err := fsr.NewCluster(fsr.ClusterConfig{N: 3, T: 1}, fsr.MemTransport(nil))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	s, err := cluster.Dial(fsr.SessionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	ctx := context.Background()
	r, err := s.Publish(ctx, []byte("from outside the ring"))
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	for _, m := range s.Subscribe(ctx, 1) {
		fmt.Printf("%s (publisher %d >= ClientIDBase: %v)\n",
			m.Payload, m.Origin, m.Origin >= fsr.ClientIDBase)
		break
	}
	// Output:
	// from outside the ring (publisher 2147483648 >= ClientIDBase: true)
}
