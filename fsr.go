// Package fsr implements FSR, the uniform total order broadcast protocol of
// Guerraoui, Levy, Pochon and Quéma, "High Throughput Total Order Broadcast
// for Cluster Environments" (DSN 2006).
//
// FSR combines a fixed sequencer with ring dissemination: every process
// sends protocol traffic only to its ring successor, the ring leader
// assigns sequence numbers, and a small acknowledgment pass establishes
// uniform stability (a message is delivered only once it is stored by the
// leader and t backups, so it survives any t crashes). The protocol is
// throughput-efficient — one completed broadcast per round regardless of
// how many processes send — and fair: concurrent senders get equal shares
// of the ring's capacity.
//
// # Quick start
//
//	network := mem.NewNetwork(mem.Options{})
//	cluster, _ := fsr.NewLocalCluster(fsr.ClusterConfig{N: 5, T: 1}, network)
//	defer cluster.Stop()
//
//	cluster.Node(0).Broadcast(ctx, []byte("hello"))
//	msg := <-cluster.Node(3).Messages() // same order at every node
//
// Nodes can also run in separate processes over TCP (transport/tcp, see
// cmd/fsr-node) — the protocol stack is identical.
//
// The packages under internal/ hold the substrates: the protocol engine
// (internal/core), ring arithmetic, wire codec, heartbeat failure detector,
// the virtually synchronous membership layer, transports, the discrete-event
// cluster simulator used by the benchmarks, and the round-based analytical
// model with the paper's five baseline protocol classes.
package fsr

import (
	"fmt"
	"time"

	"fsr/internal/transport/mem"
)

// ClusterConfig parameterizes an in-process cluster (NewLocalCluster).
type ClusterConfig struct {
	// N is the number of nodes. Required.
	N int
	// T is the tolerated number of failures. Default 1.
	T int
	// FirstID numbers the members FirstID..FirstID+N-1. Default 0.
	FirstID ProcID
	// NodeConfig is the per-node template; Self and Members are filled in.
	NodeConfig Config
}

// Cluster is a set of in-process nodes on one mem.Network — the easiest way
// to run FSR in tests, examples and single-binary deployments.
type Cluster struct {
	network *mem.Network
	nodes   []*Node
	ids     []ProcID
}

// NewLocalCluster builds and starts N nodes on the given in-memory network.
func NewLocalCluster(cfg ClusterConfig, network *mem.Network) (*Cluster, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("fsr: cluster size %d", cfg.N)
	}
	if cfg.T == 0 {
		cfg.T = 1
	}
	ids := make([]ProcID, cfg.N)
	for i := range ids {
		ids[i] = cfg.FirstID + ProcID(i)
	}
	c := &Cluster{network: network, ids: ids}
	for _, id := range ids {
		ep, err := network.Join(id)
		if err != nil {
			c.Stop()
			return nil, err
		}
		nc := cfg.NodeConfig
		nc.Self = id
		nc.Members = ids
		nc.T = cfg.T
		node, err := NewNode(nc, ep)
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

// Node returns the i-th member (in initial ring order).
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Nodes returns all running members.
func (c *Cluster) Nodes() []*Node { return append([]*Node(nil), c.nodes...) }

// IDs returns the member IDs in initial ring order.
func (c *Cluster) IDs() []ProcID { return append([]ProcID(nil), c.ids...) }

// Crash fail-stops the i-th member: its endpoint drops off the network and
// the survivors' failure detectors trigger a view change.
func (c *Cluster) Crash(i int) {
	node := c.nodes[i]
	c.network.Crash(node.Self())
	node.Stop()
}

// Stop shuts down every node.
func (c *Cluster) Stop() {
	for _, n := range c.nodes {
		n.Stop()
	}
}

// WaitView blocks until node i installs a view with the given member count,
// or the timeout expires.
func (c *Cluster) WaitView(i int, members int, timeout time.Duration) (ViewInfo, bool) {
	deadline := time.After(timeout)
	for {
		select {
		case v := <-c.nodes[i].Views():
			if len(v.Members) == members {
				return v, true
			}
		case <-deadline:
			return ViewInfo{}, false
		}
	}
}
