// Package fsr implements FSR, the uniform total order broadcast protocol of
// Guerraoui, Levy, Pochon and Quéma, "High Throughput Total Order Broadcast
// for Cluster Environments" (DSN 2006).
//
// FSR combines a fixed sequencer with ring dissemination: every process
// sends protocol traffic only to its ring successor, the ring leader
// assigns sequence numbers, and a small acknowledgment pass establishes
// uniform stability (a message is delivered only once it is stored by the
// leader and t backups, so it survives any t crashes). The protocol is
// throughput-efficient — one completed broadcast per round regardless of
// how many processes send — and fair: concurrent senders get equal shares
// of the ring's capacity.
//
// # Quick start
//
//	cluster, _ := fsr.NewCluster(fsr.ClusterConfig{N: 5, T: 1}, fsr.MemTransport(nil))
//	defer cluster.Stop()
//
//	r, _ := cluster.Node(0).Broadcast(ctx, []byte("hello"))
//	<-r.Delivered()                    // uniform: survives any T crashes
//	msg := <-cluster.Node(3).Messages() // same order at every node
//
// # Consuming deliveries
//
// Every node exposes the agreed message stream twice: Node.Messages is a
// channel, Node.Subscribe registers a handler invoked in total order. A
// Broadcast returns a *Receipt whose Delivered channel closes only once the
// message is uniformly stable — the hook for request/reply and synchronous
// writes. Node.Metrics reports protocol counters, queue depths and a
// broadcast-latency summary.
//
// # Sessions: using the order without joining the ring
//
// The ring stays small — that is where its throughput comes from — and
// everything else connects as a client through the Session interface:
// pipelined exactly-once Publish and offset-resumable, gap-free
// Subscribe, surviving crashes of the serving member by failing over to
// another. Remote clients over TCP use package client (client.Dial);
// Cluster.Dial runs the same client sub-protocol over any cluster
// transport; Node.Session serves the identical interface in process.
//
//	s, _ := client.Dial(client.Config{Addrs: memberAddrs})
//	r, _ := s.Publish(ctx, []byte("order me"))
//	_ = r.Wait(ctx) // committed: durable at the member, uniformly ordered
//	for off, m := range s.Subscribe(ctx, 1) { ... }
//
// # Durable state machine replication
//
// Attach a StateMachine and a durable directory to turn the agreed order
// into replicated application state that survives crashes:
//
//	cfg := fsr.ClusterConfig{N: 5, T: 1}.
//		WithDurableDir(dir).
//		WithStateMachines(func(id fsr.ProcID) fsr.StateMachine { return newStore() })
//
// Every delivery is written to a write-ahead log (internal/wal) before it
// is dispatched, snapshots bound replay and truncate the log, and a member
// killed mid-traffic is brought back with Cluster.Restart: it rebuilds
// from snapshot + WAL, fetches the missed suffix of the order from its
// peers, and rejoins the live stream.
//
// # Transports and deployment
//
// The protocol stack runs over the transport.Transport interface; the
// module ships transport/mem (in-process) and transport/tcp (real sockets),
// and applications can bring their own. NewCluster drives any
// ClusterTransport — MemTransport for tests and single-binary deployments,
// TCPTransport for sockets on one host, or a custom implementation for a
// real fleet. Nodes can equally run one per process over TCP (see
// cmd/fsr-node); the stack is identical.
//
// The packages under internal/ hold the substrates: the protocol engine
// (internal/core), ring arithmetic, wire codec, heartbeat failure detector,
// the virtually synchronous membership layer, the discrete-event cluster
// simulator used by the benchmarks, and the round-based analytical model
// with the paper's five baseline protocol classes.
package fsr
