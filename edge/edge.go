// Package edge runs read-only edge replicas of an FSR group: non-member
// processes that replicate the committed total order through one client
// session and re-serve it to any number of local subscribers over the
// same wire protocol the members speak.
//
// The fixed-sequencer ring gets its throughput from staying tiny — every
// member is on the critical ordering path — so subscriber capacity must
// scale somewhere else. An edge replica is that somewhere: it tails the
// order from a member exactly like a catching-up subscriber (snapshot
// hand-over included), stores the tail in memory or a local WAL, and
// serves SUBSCRIBE from that replica with the identical encode-once
// fan-out members use (internal/serve). Each member thus carries one
// subscription per edge instead of one per end subscriber; edges are
// horizontally scalable and disposable, because every byte they hold is
// refetchable from the ring.
//
// Edges never take writes. A PUBLISH arriving at an edge answers a
// NOT-WRITABLE redirect naming the real members, and the fsr client
// session reconnects there transparently — so one address list mixing
// members and edges still gives publishers exactly-once semantics, while
// subscriber-only clients can stay pinned to edges.
//
//	e, err := edge.New(edge.Config{Listen: ":7200", Members: memberAddrs})
//	...
//	s, _ := client.Dial(client.Config{Addrs: []string{e.Addr()}})
//	for off, m := range s.Subscribe(ctx, 1) { ... }
package edge

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"sync"
	"time"

	"fsr"
	"fsr/client"
	"fsr/internal/serve"
	"fsr/internal/wire"
	"fsr/transport"
	"fsr/transport/tcp"
)

// syncEvery is how often the durable store flushes appended entries. An
// edge may lose this window on a crash; it refetches from upstream.
const syncEvery = 200 * time.Millisecond

// CoreConfig parameterizes NewCore, the transport-agnostic edge.
type CoreConfig struct {
	// Transport is the serving endpoint subscribers connect to. The core
	// owns it from here and closes it on Stop. Required.
	Transport transport.Transport
	// Upstream is the session the edge tails the order through — dial it
	// with the edge role (client.Config.Edge / SessionOptions.Edge) so
	// the serving member feeds it the shared tail. The core owns it from
	// here and closes it on Stop. Required.
	Upstream fsr.Session
	// Members and MemberAddrs are the group coordinates handed to
	// publishers in NOT-WRITABLE redirects: IDs for shared-transport
	// clients (Cluster.Dial, DialVia), addresses for socket clients
	// (client.Dial). Either may be empty if no such client publishes.
	Members     []fsr.ProcID
	MemberAddrs []string
	// DurableDir, when set, persists the replicated tail in a WAL so a
	// restarted edge serves history without refetching it. Otherwise the
	// tail lives in memory, bounded by TailCap.
	DurableDir string
	// TailCap bounds the in-memory tail, in entries (default 65536).
	// Subscribers below the horizon are redirected to the members.
	TailCap int
	// QueueCap overrides the per-subscriber transmit queue bound.
	QueueCap int
	// Logger receives structured edge events (tail reconnects, snapshot
	// hand-overs, slow-subscriber detaches). Nil discards them.
	Logger *slog.Logger
}

// Stats is a point-in-time census of one edge replica.
type Stats struct {
	// Applied is the highest offset replicated from upstream.
	Applied uint64
	// Clients, Subs and TailAttached mirror the serving layer: live
	// links, live subscriptions, and subscriptions on the shared tail.
	Clients, Subs, TailAttached int
	// TailFrames counts encode-once fan-out frames; TailDetaches slow
	// subscribers demoted to catch-up paging; NotWritable publishes
	// bounced to the members.
	TailFrames, TailDetaches, NotWritable uint64
}

// Edge is one running edge replica.
type Edge struct {
	cfg    CoreConfig
	log    *slog.Logger
	store  *store
	srv    *serve.Server
	addr   string // serving address, when TCP-backed
	cancel context.CancelFunc
	wg     sync.WaitGroup

	scratch [1]wire.ClientEventEntry // tail loop's reusable fan-out batch
}

// NewCore starts an edge replica on caller-provided plumbing. Use New for
// the common TCP deployment.
func NewCore(cfg CoreConfig) (*Edge, error) {
	if cfg.Transport == nil || cfg.Upstream == nil {
		return nil, fmt.Errorf("edge: Transport and Upstream are required")
	}
	if cfg.TailCap <= 0 {
		cfg.TailCap = 65536
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	log = log.With("edge", uint32(cfg.Transport.Self()))
	st, err := newStore(cfg.DurableDir, cfg.TailCap, log)
	if err != nil {
		return nil, err
	}
	e := &Edge{cfg: cfg, log: log, store: st}
	e.srv = serve.New(serve.Config{
		Transport: cfg.Transport,
		Source:    st,
		Publish:   nil, // read-only: publishes answer NOT-WRITABLE
		Redirect: func() ([]fsr.ProcID, []string, uint64) {
			return cfg.Members, cfg.MemberAddrs, st.Applied()
		},
		QueueCap: cfg.QueueCap,
		Logger:   log,
	})
	cfg.Transport.SetHandler(func(from transport.ProcID, payload []byte) {
		if len(payload) > 0 && payload[0] == wire.KindAdmin {
			e.handleAdmin(from, payload)
			return
		}
		e.srv.Handle(from, payload)
	})
	ctx, cancel := context.WithCancel(context.Background())
	e.cancel = cancel
	e.wg.Add(1)
	go e.tailLoop(ctx)
	if st.log != nil {
		e.wg.Add(1)
		go e.syncLoop(ctx)
	}
	return e, nil
}

// Config parameterizes New, the TCP edge replica.
type Config struct {
	// Listen is the address subscribers connect to. Required.
	Listen string
	// Members are the group members' listen addresses — the upstream the
	// edge replicates from and the redirect target for publishers.
	// Required.
	Members []string
	// ID is the edge's identity in the client ID space (its upstream
	// publishes dedup under it — edges never publish, but the ID also
	// names the edge on member metrics). Zero picks a random ID.
	ID fsr.ProcID
	// DurableDir, TailCap, QueueCap and Logger are as in CoreConfig.
	DurableDir string
	TailCap    int
	QueueCap   int
	Logger     *slog.Logger
	// DialTimeout bounds one upstream connection attempt (default 3s).
	DialTimeout time.Duration
}

// New starts a TCP edge replica: a listener for subscribers plus one
// upstream client session to the members.
func New(cfg Config) (*Edge, error) {
	if cfg.Listen == "" {
		return nil, fmt.Errorf("edge: Listen is required")
	}
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("edge: no member addresses")
	}
	if cfg.ID == 0 {
		cfg.ID = fsr.ClientIDBase + fsr.ProcID(rand.Uint32N(1<<31))
	}
	tr, err := tcp.New(tcp.Config{Self: cfg.ID, ListenAddr: cfg.Listen})
	if err != nil {
		return nil, err
	}
	up, err := client.Dial(client.Config{
		Addrs:       cfg.Members,
		ID:          cfg.ID,
		Edge:        true,
		DialTimeout: cfg.DialTimeout,
	})
	if err != nil {
		_ = tr.Close()
		return nil, err
	}
	e, err := NewCore(CoreConfig{
		Transport:   tr,
		Upstream:    up,
		MemberAddrs: cfg.Members,
		DurableDir:  cfg.DurableDir,
		TailCap:     cfg.TailCap,
		QueueCap:    cfg.QueueCap,
		Logger:      cfg.Logger,
	})
	if err != nil {
		_ = up.Close()
		_ = tr.Close()
		return nil, err
	}
	e.addr = tr.Addr()
	return e, nil
}

// Addr returns the serving listen address (resolving an ephemeral port)
// for a TCP edge, "" for a NewCore edge.
func (e *Edge) Addr() string { return e.addr }

// ID returns the edge's identity in the client ID space.
func (e *Edge) ID() fsr.ProcID { return fsr.ProcID(e.cfg.Transport.Self()) }

// Applied returns the highest offset replicated from upstream.
func (e *Edge) Applied() uint64 { return e.store.Applied() }

// Stats snapshots the edge's serving activity.
func (e *Edge) Stats() Stats {
	s := e.srv.Stats()
	return Stats{
		Applied:      e.store.Applied(),
		Clients:      s.Clients,
		Subs:         s.Subs,
		TailAttached: s.TailAttached,
		TailFrames:   s.TailFrames,
		TailDetaches: s.TailDetaches,
		NotWritable:  s.NotWritable,
	}
}

// Metrics is the edge-side parity of fsr.Metrics: replication position,
// what the store holds, upstream-tail health and the serving census.
type Metrics struct {
	// Applied is the highest offset replicated from upstream; StoreBase is
	// the horizon (offsets at or below it are not held as entries);
	// StoreEntries counts the retained entry tail; SnapshotSeq is the
	// offset the held application snapshot covers (0 when none).
	Applied      uint64
	StoreBase    uint64
	StoreEntries int
	SnapshotSeq  uint64

	// TailConnected reports that the upstream session has spoken at least
	// once; TailLag is how long ago it last did (keepalives arrive every
	// second on a healthy idle link, so seconds of lag mean trouble).
	TailConnected bool
	TailLag       time.Duration

	// Serving census, mirroring the member-side fields.
	Clients, Subs, TailAttached           int
	TailFrames, TailDetaches, NotWritable uint64

	// WAL is the durable store's counters; zero for a memory-only edge.
	WAL fsr.WALMetrics
}

// upstreamContact reports when the upstream session last spoke, when the
// session exposes it (every socket-backed session does).
func (e *Edge) upstreamContact() (time.Time, bool) {
	c, ok := e.cfg.Upstream.(interface{ LastContact() time.Time })
	if !ok {
		return time.Time{}, false
	}
	t := c.LastContact()
	return t, !t.IsZero()
}

// Metrics snapshots the edge for export.
func (e *Edge) Metrics() Metrics {
	s := e.srv.Stats()
	base, entries, snapSeq := e.store.held()
	m := Metrics{
		Applied:      e.store.Applied(),
		StoreBase:    base,
		StoreEntries: entries,
		SnapshotSeq:  snapSeq,
		Clients:      s.Clients,
		Subs:         s.Subs,
		TailAttached: s.TailAttached,
		TailFrames:   s.TailFrames,
		TailDetaches: s.TailDetaches,
		NotWritable:  s.NotWritable,
	}
	if t, ok := e.upstreamContact(); ok {
		m.TailConnected = true
		m.TailLag = time.Since(t)
	}
	if ws, ok := e.store.walStats(); ok {
		m.WAL = fsr.WALMetrics{
			Segments:    ws.Segments,
			Bytes:       ws.Bytes,
			Appends:     ws.Appends,
			Fsyncs:      ws.Fsyncs,
			Rotations:   ws.Rotations,
			Snapshots:   ws.Snapshots,
			SnapshotSeq: ws.SnapshotSeq,
			Repairs:     ws.Repairs,
			Poisoned:    ws.Poisoned,
		}
		if !ws.SnapshotTime.IsZero() {
			m.WAL.SnapshotAge = time.Since(ws.SnapshotTime)
		}
	}
	return m
}

// Ready reports nil when the edge can serve subscribers honestly: the
// upstream tail has connected and spoken within maxLag (0 picks 5s —
// five missed server keepalives), the upstream session has not died, and
// the durable store (if any) still accepts writes. The error names the
// first failing condition — the substance behind an edge /readyz probe.
func (e *Edge) Ready(maxLag time.Duration) error {
	if maxLag <= 0 {
		maxLag = 5 * time.Second
	}
	if err := e.cfg.Upstream.Err(); err != nil {
		return fmt.Errorf("edge: upstream session dead: %w", err)
	}
	t, ok := e.upstreamContact()
	if !ok {
		return fmt.Errorf("edge: upstream tail never connected")
	}
	if lag := time.Since(t); lag > maxLag {
		return fmt.Errorf("edge: upstream tail lagging %v (bound %v)", lag.Round(time.Millisecond), maxLag)
	}
	if err := e.store.writable(); err != nil {
		return err
	}
	return nil
}

// tailLoop replicates the committed order from upstream, forever: each
// session Subscribe streams gap-free from the store frontier; when one
// ends (upstream failover churn, member loss), the next resumes where the
// store stopped. Every appended offset is published to the local shared
// tail — the same encode-once fan-out path a member runs.
func (e *Edge) tailLoop(ctx context.Context) {
	defer e.wg.Done()
	for ctx.Err() == nil {
		from := e.store.Applied() + 1
		for _, m := range e.cfg.Upstream.Subscribe(ctx, from) {
			if m.Snapshot {
				// State transfer: the prefix has no entry stream, so
				// locally attached subscribers must page across the jump.
				e.store.setSnapshot(m.Seq, m.Payload)
				e.srv.DetachAll()
				continue
			}
			if e.store.append(m) {
				e.scratch[0] = wire.ClientEventEntry{
					Seq:     m.Seq,
					Origin:  m.Origin,
					Logical: m.LogicalID,
					Payload: m.Payload,
				}
				e.srv.PublishTail(e.scratch[:])
			}
		}
		if ctx.Err() == nil {
			e.log.Warn("upstream tail interrupted; re-subscribing",
				"applied", e.store.Applied(), "err", e.cfg.Upstream.Err())
			time.Sleep(50 * time.Millisecond) // upstream hiccup; re-subscribe
		}
	}
}

// syncLoop periodically flushes the durable store.
func (e *Edge) syncLoop(ctx context.Context) {
	defer e.wg.Done()
	ticker := time.NewTicker(syncEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			e.store.sync()
		}
	}
}

// Stop shuts the edge down: subscribers get a BYE redirect (they fail
// over to members or surviving edges), the upstream session closes, and
// the durable store is flushed.
func (e *Edge) Stop() {
	e.srv.NotifyAll(wire.RedirectBye)
	e.cancel()
	_ = e.cfg.Upstream.Close()
	e.wg.Wait()
	e.srv.Shutdown()
	_ = e.cfg.Transport.Close()
	e.srv.Wait()
	e.store.close()
}
