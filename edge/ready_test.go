package edge_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fsr"
	"fsr/transport/mem"
)

// TestEdgeReadyTransitions drives Edge.Ready through its states: ready
// once the upstream tail has spoken, not ready under an impossible lag
// bound, not ready with the durable store yanked, ready again when it
// returns, and finally dead-upstream once the members go away.
func TestEdgeReadyTransitions(t *testing.T) {
	net := mem.NewNetwork(mem.Options{})
	cluster, err := fsr.NewCluster(fsr.ClusterConfig{N: 3, T: 1}, fsr.MemTransport(net))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	dir := filepath.Join(t.TempDir(), "edge")
	e := startEdge(t, net, cluster, 600, dir)
	defer e.Stop()

	// Traffic proves the tail is live; Ready follows as contact arrives.
	if _, err := cluster.Node(0).Broadcast(context.Background(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err = e.Ready(0); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("edge never ready: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// An impossibly tight lag bound must report the edge as lagging —
	// the same check that fires when the upstream goes quiet for real.
	if err := e.Ready(time.Nanosecond); err == nil ||
		!strings.Contains(err.Error(), "lagging") {
		t.Fatalf("Ready(1ns) = %v, want lag-bound error", err)
	}

	// Yank the durable store directory; readiness must follow it down
	// and back (rename, not chmod — permission bits are no-ops as root).
	hidden := dir + ".gone"
	if err := os.Rename(dir, hidden); err != nil {
		t.Fatal(err)
	}
	if err := e.Ready(0); err == nil || !strings.Contains(err.Error(), "not writable") {
		t.Fatalf("Ready() with store dir gone = %v, want not-writable error", err)
	}
	if err := os.Rename(hidden, dir); err != nil {
		t.Fatal(err)
	}
	if err := e.Ready(0); err != nil {
		t.Fatalf("Ready() after store dir restored = %v", err)
	}

	// With every member gone the upstream session dies; an edge serving a
	// stale tail must say so rather than claim readiness.
	cluster.Stop()
	deadline = time.Now().Add(15 * time.Second)
	for {
		if err = e.Ready(0); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("edge still ready with no upstream members")
		}
		time.Sleep(50 * time.Millisecond)
	}
}
