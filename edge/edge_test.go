package edge_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"fsr"
	"fsr/edge"
	"fsr/transport/mem"
)

// startEdge attaches one edge replica to a mem-transport cluster: a
// serving endpoint subscribers dial, plus an upstream session to the
// members with the edge role.
func startEdge(t *testing.T, net *mem.Network, cluster *fsr.Cluster, serveID fsr.ProcID, durableDir string) *edge.Edge {
	t.Helper()
	serveTr, err := net.Join(serveID)
	if err != nil {
		t.Fatal(err)
	}
	upTr, err := net.Join(serveID + 1)
	if err != nil {
		t.Fatal(err)
	}
	up, err := fsr.DialVia(upTr, cluster.IDs(), fsr.SessionOptions{
		Edge:    true,
		OnClose: func() { _ = upTr.Close() },
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := edge.NewCore(edge.CoreConfig{
		Transport:  serveTr,
		Upstream:   up,
		Members:    cluster.IDs(),
		DurableDir: durableDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// dialThrough opens a client session pinned to the given serving IDs.
func dialThrough(t *testing.T, net *mem.Network, id fsr.ProcID, targets []fsr.ProcID) fsr.Session {
	t.Helper()
	tr, err := net.Join(id)
	if err != nil {
		t.Fatal(err)
	}
	s, err := fsr.DialVia(tr, targets, fsr.SessionOptions{
		OnClose: func() { _ = tr.Close() },
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func waitApplied(t *testing.T, e *edge.Edge, want uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for e.Applied() < want {
		if time.Now().After(deadline) {
			t.Fatalf("edge replicated to %d, want %d", e.Applied(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// readStream reads n messages starting at from, asserting the offsets are
// consecutive.
func readStream(t *testing.T, s fsr.Session, from uint64, n int) []fsr.Message {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var got []fsr.Message
	next := from
	for _, m := range s.Subscribe(ctx, from) {
		if m.Snapshot {
			next = m.Seq + 1
			continue
		}
		if m.Seq != next {
			t.Fatalf("stream gap: got seq %d, want %d", m.Seq, next)
		}
		next = m.Seq + 1
		got = append(got, m)
		if len(got) == n {
			break
		}
	}
	if len(got) != n {
		t.Fatalf("read %d of %d messages (session err: %v)", len(got), n, s.Err())
	}
	return got
}

const edgeServeID = fsr.ClientIDBase + 0x100000

// TestEdgeServesSubscribers: an edge replica tails the order from the
// ring and serves it to a subscriber — history from its store, then the
// live tail — without that subscriber ever touching a member.
func TestEdgeServesSubscribers(t *testing.T) {
	net := mem.NewNetwork(mem.Options{})
	cluster, err := fsr.NewCluster(fsr.ClusterConfig{N: 3, T: 1}, fsr.MemTransport(net))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	pub, err := cluster.Dial(fsr.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	ctx := context.Background()
	const history = 50
	for i := 0; i < history; i++ {
		r, err := pub.Publish(ctx, []byte(fmt.Sprintf("m-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}

	e := startEdge(t, net, cluster, edgeServeID, "")
	defer e.Stop()
	waitApplied(t, e, history)

	sub := dialThrough(t, net, fsr.ClientIDBase+0x200000, []fsr.ProcID{edgeServeID})
	defer sub.Close()
	got := readStream(t, sub, 1, history)
	if string(got[0].Payload) != "m-0" || string(got[history-1].Payload) != fmt.Sprintf("m-%d", history-1) {
		t.Fatalf("payload mismatch: first %q last %q", got[0].Payload, got[history-1].Payload)
	}

	// Live tail: messages published after the subscriber caught up flow
	// through the edge's encode-once fan-out.
	done := make(chan error, 1)
	go func() {
		subCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		n := uint64(history + 1)
		for _, m := range sub.Subscribe(subCtx, n) {
			if m.Seq != n {
				done <- fmt.Errorf("live tail gap: got %d want %d", m.Seq, n)
				return
			}
			if n++; n == history+11 {
				done <- nil
				return
			}
		}
		done <- fmt.Errorf("live tail ended early at %d", n)
	}()
	for i := 0; i < 10; i++ {
		if _, err := pub.Publish(ctx, []byte("live")); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.TailFrames == 0 {
		t.Fatalf("edge never used the shared tail: %+v", st)
	}
}

// TestEdgePublishRedirectsToMembers: a publisher whose session lands on a
// read-only edge is bounced to the writable members and its publish
// commits exactly once — the address list may freely mix edges and
// members.
func TestEdgePublishRedirectsToMembers(t *testing.T) {
	net := mem.NewNetwork(mem.Options{})
	cluster, err := fsr.NewCluster(fsr.ClusterConfig{N: 3, T: 1}, fsr.MemTransport(net))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	e := startEdge(t, net, cluster, edgeServeID, "")
	defer e.Stop()

	// Pinned to the edge only: the first publish must migrate the session
	// to a member via the NOT-WRITABLE redirect.
	pub := dialThrough(t, net, fsr.ClientIDBase+0x200000, []fsr.ProcID{edgeServeID})
	defer pub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	r, err := pub.Publish(ctx, []byte("via-edge"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatalf("publish through edge never committed: %v", err)
	}
	if r.Seq() != 1 {
		t.Fatalf("publish committed at %d, want 1", r.Seq())
	}
	if st := e.Stats(); st.NotWritable == 0 {
		t.Fatalf("edge accepted a publish: %+v", st)
	}
	// Exactly once despite the migration: offset 1 is the only committed
	// message, readable back through the edge.
	waitApplied(t, e, 1)
	sub := dialThrough(t, net, fsr.ClientIDBase+0x200002, []fsr.ProcID{edgeServeID})
	defer sub.Close()
	got := readStream(t, sub, 1, 1)
	if string(got[0].Payload) != "via-edge" {
		t.Fatalf("read back %q", got[0].Payload)
	}
}

// TestEdgeDurableRestart: a durable edge restarted on its store serves
// the replicated history immediately and resumes tailing where it left
// off, refetching only what it missed.
func TestEdgeDurableRestart(t *testing.T) {
	net := mem.NewNetwork(mem.Options{})
	cluster, err := fsr.NewCluster(fsr.ClusterConfig{N: 3, T: 1}, fsr.MemTransport(net))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	dir := t.TempDir()

	pub, err := cluster.Dial(fsr.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	ctx := context.Background()
	publish := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			r, err := pub.Publish(ctx, []byte("d"))
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Wait(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}

	publish(30)
	e := startEdge(t, net, cluster, edgeServeID, dir)
	waitApplied(t, e, 30)
	e.Stop()

	publish(10) // committed while the edge was down

	e2 := startEdge(t, net, cluster, edgeServeID+2, dir)
	defer e2.Stop()
	if got := e2.Applied(); got < 30 {
		t.Fatalf("restarted edge serves from %d, want the stored 30", got)
	}
	waitApplied(t, e2, 40)
	sub := dialThrough(t, net, fsr.ClientIDBase+0x200000, []fsr.ProcID{edgeServeID + 2})
	defer sub.Close()
	readStream(t, sub, 1, 40)
}
