package edge

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"

	"fsr"
	"fsr/internal/serve"
	"fsr/internal/wal"
	"fsr/internal/wire"
)

// store is the edge replica's copy of the committed order: a tail of
// entries above a horizon, optionally preceded by an application snapshot
// covering everything at or below it. It implements serve.Source, so the
// serving layer pages subscribers out of it exactly as a member pages its
// WAL.
//
// The order's sequence numbers may skip values — members filter duplicate
// client publishes out of the order while still consuming their slot — so
// entries are ascending in Seq but not dense, and paging searches by Seq
// rather than indexing. The upstream session stream is gap-free in ORDER
// (never in numbering): every message it yields extends the replica.
//
// Entries are append-only and payloads are never mutated after append, so
// ReadCommitted can hand out references; the serving layer encodes pages
// synchronously before returning to the pager loop.
type store struct {
	log     *wal.Log // nil for a memory-only tail
	tailCap int      // retained entries when memory-only

	mu      sync.Mutex
	base    uint64 // horizon: every entry's Seq is > base
	entries []wire.ClientEventEntry
	snap    []byte // application snapshot at snapSeq, nil if none
	snapSeq uint64
	signal  chan struct{} // closed and replaced when the frontier advances
}

// newStore builds the tail store, replaying a durable log when dir is
// non-empty. tailCap bounds the memory-only tail (entries beyond it fall
// below the horizon); a durable store retains everything the WAL does.
func newStore(dir string, tailCap int, logger *slog.Logger) (*store, error) {
	st := &store{tailCap: tailCap, signal: make(chan struct{})}
	if dir == "" {
		return st, nil
	}
	log, err := wal.Open(dir, wal.Options{Logger: logger})
	if err != nil {
		return nil, fmt.Errorf("edge: open store: %w", err)
	}
	st.log = log
	if snap, ok := log.LatestSnapshot(); ok {
		st.snap = snap.Data
		st.snapSeq = snap.Seq
		st.base = snap.Seq
	}
	err = log.Replay(st.base, func(e wal.Entry) error {
		if n := len(st.entries); n > 0 && e.Seq <= st.entries[n-1].Seq {
			return nil // torn rewrite overlap; keep the first copy
		}
		st.entries = append(st.entries, wire.ClientEventEntry{
			Seq:     e.Seq,
			Origin:  fsr.ProcID(e.Origin),
			Logical: e.LogicalID,
			Payload: e.Payload,
		})
		return nil
	})
	if err != nil {
		_ = log.Close()
		return nil, fmt.Errorf("edge: replay store: %w", err)
	}
	return st, nil
}

// appliedLocked is the highest replicated offset. Callers hold st.mu.
func (st *store) appliedLocked() uint64 {
	if n := len(st.entries); n > 0 {
		return st.entries[n-1].Seq
	}
	return st.base
}

// Applied implements serve.Source.
func (st *store) Applied() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.appliedLocked()
}

// Watch implements serve.Source.
func (st *store) Watch() <-chan struct{} {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.signal
}

// ReadCommitted implements serve.Source.
func (st *store) ReadCommitted(cursor, applied uint64, maxEntries, maxBytes int) (serve.Page, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if cursor < st.base {
		if st.snap != nil && st.snapSeq > cursor {
			// The needed prefix is gone; hand over the application state.
			return serve.Page{Snap: st.snap, SnapSeq: st.snapSeq, Cursor: st.snapSeq}, nil
		}
		return serve.Page{BelowHorizon: true}, nil
	}
	page := serve.Page{Cursor: applied}
	bytes := 0
	start := sort.Search(len(st.entries), func(i int) bool {
		return st.entries[i].Seq > cursor
	})
	for i := start; i < len(st.entries); i++ {
		e := &st.entries[i]
		if len(page.Entries) >= maxEntries || bytes+len(e.Payload) > maxBytes {
			page.Cursor = page.Entries[len(page.Entries)-1].Seq
			return page, nil
		}
		page.Entries = append(page.Entries, *e)
		bytes += len(e.Payload)
	}
	if n := len(page.Entries); n > 0 && page.Entries[n-1].Seq > page.Cursor {
		// The tail ran past the sampled frontier; never let the cursor
		// fall behind what was served.
		page.Cursor = page.Entries[n-1].Seq
	}
	return page, nil
}

// append folds one upstream message into the tail; stale duplicates (from
// an upstream re-subscribe) are skipped. It reports whether the frontier
// advanced.
func (st *store) append(m fsr.Message) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if m.Seq <= st.appliedLocked() {
		return false // duplicate from a restarted upstream stream
	}
	st.entries = append(st.entries, wire.ClientEventEntry{
		Seq:     m.Seq,
		Origin:  m.Origin,
		Logical: m.LogicalID,
		Payload: m.Payload,
	})
	if st.log != nil {
		// Loss here is acceptable — the edge refetches from upstream on
		// restart — so append errors only forfeit durability.
		_ = st.log.Append(wal.Entry{
			Seq:       m.Seq,
			Origin:    uint32(m.Origin),
			LogicalID: m.LogicalID,
			Payload:   m.Payload,
		})
	} else if st.tailCap > 0 && len(st.entries) > st.tailCap {
		// Advance the horizon; subscribers below it are redirected to
		// members (or served the snapshot, if one covers them).
		drop := len(st.entries) - st.tailCap
		st.base = st.entries[drop-1].Seq
		st.entries = append(st.entries[:0], st.entries[drop:]...)
	}
	st.advanceLocked()
	return true
}

// setSnapshot installs an upstream state transfer at seq: the order's
// prefix up to seq is now represented by the application snapshot, and the
// entry tail restarts above it.
func (st *store) setSnapshot(seq uint64, data []byte) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if seq <= st.appliedLocked() {
		return // stale: the tail already covers this prefix
	}
	st.snap = data
	st.snapSeq = seq
	st.base = seq
	st.entries = st.entries[:0]
	if st.log != nil {
		_ = st.log.WriteSnapshot(seq, data)
	}
	st.advanceLocked()
}

// advanceLocked wakes watchers after the frontier moved.
func (st *store) advanceLocked() {
	close(st.signal)
	st.signal = make(chan struct{})
}

// held reports what the store retains: the horizon, the entry count, and
// the seq covered by the held snapshot (0 when none).
func (st *store) held() (base uint64, entries int, snapSeq uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.base, len(st.entries), st.snapSeq
}

// walStats snapshots the durable log's counters; ok is false for a
// memory-only store.
func (st *store) walStats() (wal.Stats, bool) {
	if st.log == nil {
		return wal.Stats{}, false
	}
	return st.log.Stats(), true
}

// writable probes the durable directory; nil for a memory-only store.
func (st *store) writable() error {
	if st.log == nil {
		return nil
	}
	return st.log.Writable()
}

// sync flushes the durable log, if any.
func (st *store) sync() {
	if st.log != nil {
		_ = st.log.Sync()
	}
}

// close releases the durable log, if any.
func (st *store) close() {
	if st.log != nil {
		_ = st.log.Sync()
		_ = st.log.Close()
	}
}
