package edge

import (
	"encoding/json"
	"time"

	"fsr/admin"
	"fsr/internal/wire"
	"fsr/transport"
)

// handleAdmin answers one KindAdmin request over the serving transport.
// Edges answer the same op vocabulary members do — an operator sweeping a
// mixed address list gets a uniform view — with edge semantics: the view ops
// report what the replica knows, and snapshot triggers are refused (an
// edge's snapshot arrives from upstream, it is never cut locally).
func (e *Edge) handleAdmin(from transport.ProcID, payload []byte) {
	v, err := wire.DecodeAdmin(payload)
	if err != nil {
		return
	}
	req, ok := v.(*wire.AdminReq)
	if !ok {
		return
	}
	resp := wire.AdminResp{Op: req.Op}
	var body any
	switch req.Op {
	case wire.AdminStatus:
		s := admin.Status{
			Role:    "edge",
			ID:      uint32(e.cfg.Transport.Self()),
			Applied: e.store.Applied(),
		}
		if t, ok := e.upstreamContact(); ok {
			s.TailConnected = true
			s.TailLagMillis = time.Since(t).Milliseconds()
		}
		if err := e.Ready(0); err != nil {
			s.ReadyErr = err.Error()
		} else {
			s.Ready = true
		}
		body = &s
	case wire.AdminMembers:
		// An edge has no installed view; it knows the member IDs it was
		// configured to redirect publishers to.
		m := admin.Members{}
		for _, id := range e.cfg.Members {
			m.IDs = append(m.IDs, uint32(id))
		}
		body = &m
	case wire.AdminWAL:
		w := admin.WALInfo{}
		if ws, ok := e.store.walStats(); ok {
			w = admin.WALInfo{
				Durable:     true,
				Segments:    ws.Segments,
				Bytes:       ws.Bytes,
				Appends:     ws.Appends,
				Fsyncs:      ws.Fsyncs,
				Rotations:   ws.Rotations,
				Snapshots:   ws.Snapshots,
				SnapshotSeq: ws.SnapshotSeq,
				Repairs:     ws.Repairs,
			}
			if !ws.SnapshotTime.IsZero() {
				w.SnapshotAgeMillis = time.Since(ws.SnapshotTime).Milliseconds()
			}
		}
		body = &w
	case wire.AdminSessions:
		st := e.srv.Stats()
		body = &admin.Sessions{
			Subscribers:  st.Subs,
			TailAttached: st.TailAttached,
			EdgeClients:  st.EdgeClients,
			TailFrames:   st.TailFrames,
			TailDetaches: st.TailDetaches,
		}
	case wire.AdminSnapshot:
		body = &admin.SnapshotResult{
			Triggered: false,
			Reason:    "edges replicate snapshots from upstream",
		}
	default:
		resp.Err = "unknown admin op"
	}
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Body = b
		}
	}
	_ = e.cfg.Transport.Send(from, wire.EncodeAdminResp(&resp))
}
