package fsr_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"fsr"
	"fsr/transport/mem"
)

// waitReceipt blocks until r resolves or the test deadline trips.
func waitReceipt(t *testing.T, r *fsr.Receipt, timeout time.Duration) {
	t.Helper()
	select {
	case <-r.Delivered():
	case <-time.After(timeout):
		t.Fatal("receipt never resolved")
	}
}

// TestReceiptDeliveredOnUniformity: the receipt resolves, carries the
// sequence number the message was delivered at, and agrees with the
// delivery stream.
func TestReceiptDeliveredOnUniformity(t *testing.T) {
	c := newCluster(t, 4, 1)
	ctx := context.Background()
	r, err := c.Node(2).Broadcast(ctx, []byte("durable"))
	if err != nil {
		t.Fatal(err)
	}
	waitReceipt(t, r, 20*time.Second)
	if err := r.Err(); err != nil {
		t.Fatalf("receipt error: %v", err)
	}
	// The receipt resolved at the broadcaster, meaning the message is
	// stable at leader+backup; every node delivers it at the same seq.
	for i := range 4 {
		msgs := collect(t, c.Node(i), 1)
		if msgs[0].Seq != r.Seq() {
			t.Fatalf("node %d delivered at seq %d, receipt says %d", i, msgs[0].Seq, r.Seq())
		}
		if string(msgs[0].Payload) != "durable" {
			t.Fatalf("node %d payload %q", i, msgs[0].Payload)
		}
	}
}

// TestReceiptAcrossLeaderCrash is the acceptance scenario: the sequencer
// crashes while broadcasts are in flight, and every receipt still resolves
// — uniform delivery holds across the view change (survivors re-broadcast
// pending messages under the new leader, keeping their identities).
func TestReceiptAcrossLeaderCrash(t *testing.T) {
	const nodes = 5
	// Per-hop latency keeps the batch genuinely in flight when the leader
	// dies: a full ring pass takes ~nodes*latency, far longer than the gap
	// between the broadcasts and the crash below.
	network := mem.NewNetwork(mem.Options{Latency: 2 * time.Millisecond})
	c, err := fsr.NewCluster(fsr.ClusterConfig{N: nodes, T: 2, NodeConfig: fastConfig()},
		fsr.MemTransport(network))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	ctx := context.Background()
	const inflight = 15
	receipts := make([]*fsr.Receipt, inflight)
	for i := range inflight {
		r, err := c.Node(3).Broadcast(ctx, []byte(fmt.Sprintf("mid-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		receipts[i] = r
	}
	c.Crash(0) // the sequencer, mid-stream

	if _, ok := c.WaitView(3, nodes-1, 10*time.Second); !ok {
		t.Fatal("post-crash view never installed")
	}
	seqs := make(map[uint64]int, inflight)
	for i, r := range receipts {
		waitReceipt(t, r, 20*time.Second)
		if err := r.Err(); err != nil {
			t.Fatalf("receipt %d failed across leader crash: %v", i, err)
		}
		if r.Seq() == 0 {
			t.Fatalf("receipt %d resolved without a sequence number", i)
		}
		seqs[r.Seq()]++
	}
	if len(seqs) != inflight {
		t.Fatalf("receipts share sequence numbers: %v", seqs)
	}
	// Survivors actually delivered what the receipts promised.
	got := collect(t, c.Node(1), inflight)
	for i, m := range got {
		if want := fmt.Sprintf("mid-%d", i); string(m.Payload) != want {
			t.Fatalf("survivor delivery %d = %q, want %q", i, m.Payload, want)
		}
	}
}

// TestReceiptFailsOnStop: a broadcast that cannot complete resolves with
// ErrStopped when the node halts, instead of hanging its waiter forever.
func TestReceiptFailsOnStop(t *testing.T) {
	network := mem.NewNetwork(mem.Options{})
	c, err := fsr.NewCluster(fsr.ClusterConfig{N: 3, T: 1, NodeConfig: fastConfig()},
		fsr.MemTransport(network))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	// Sever node 2's outbound links: its broadcast can never leave.
	network.CutLink(c.IDs()[2], c.IDs()[0])
	network.CutLink(c.IDs()[2], c.IDs()[1])
	r, err := c.Node(2).Broadcast(context.Background(), []byte("stranded"))
	if err != nil {
		t.Fatal(err)
	}
	c.Node(2).Stop()
	waitReceipt(t, r, 10*time.Second)
	if r.Err() != fsr.ErrStopped {
		t.Fatalf("receipt err = %v, want ErrStopped", r.Err())
	}
	if r.Seq() != 0 {
		t.Fatalf("failed receipt carries seq %d", r.Seq())
	}
}

// TestReceiptOriginCrashesPreSequencing: the origin fail-stops before its
// broadcast could reach the sequencer (outbound links severed, then a full
// transport-level crash). The receipt must resolve with ErrStopped — the
// documented "node stopped, message may or may not survive" outcome — not
// hang waiting for a delivery that can never be observed.
func TestReceiptOriginCrashesPreSequencing(t *testing.T) {
	network := mem.NewNetwork(mem.Options{})
	c, err := fsr.NewCluster(fsr.ClusterConfig{N: 3, T: 1, NodeConfig: fastConfig()},
		fsr.MemTransport(network))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	// Stranded: nothing node 2 sends can leave it.
	network.CutLink(c.IDs()[2], c.IDs()[0])
	network.CutLink(c.IDs()[2], c.IDs()[1])
	r, err := c.Node(2).Broadcast(context.Background(), []byte("unsequenced"))
	if err != nil {
		t.Fatal(err)
	}
	c.Crash(2)
	waitReceipt(t, r, 10*time.Second)
	if r.Err() != fsr.ErrStopped {
		t.Fatalf("receipt err = %v, want ErrStopped", r.Err())
	}
	if r.Seq() != 0 {
		t.Fatalf("failed receipt carries seq %d", r.Seq())
	}
}

// TestReceiptOriginLeavesMidFlight: a node departs gracefully with its own
// broadcasts still in flight. Each receipt must resolve definitively —
// either Delivered (the group sequenced it before honoring the leave) or
// ErrStopped (the departure took the message with it) — and a Delivered
// receipt's message must actually reach the survivors.
func TestReceiptOriginLeavesMidFlight(t *testing.T) {
	// Latency keeps the batch genuinely in flight when the leave lands.
	network := mem.NewNetwork(mem.Options{Latency: 2 * time.Millisecond})
	c, err := fsr.NewCluster(fsr.ClusterConfig{N: 4, T: 1, NodeConfig: fastConfig()},
		fsr.MemTransport(network))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	ctx := context.Background()
	const inflight = 10
	receipts := make([]*fsr.Receipt, inflight)
	for i := range inflight {
		r, err := c.Node(3).Broadcast(ctx, []byte(fmt.Sprintf("leaving-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		receipts[i] = r
	}
	if !c.Node(3).Leave() {
		t.Fatal("leave not accepted")
	}
	if _, ok := c.WaitView(0, 3, 10*time.Second); !ok {
		t.Fatal("leave view never installed")
	}
	delivered := 0
	for i, r := range receipts {
		waitReceipt(t, r, 20*time.Second)
		switch err := r.Err(); err {
		case nil:
			delivered++
			if r.Seq() == 0 {
				t.Fatalf("receipt %d delivered without a sequence number", i)
			}
		case fsr.ErrStopped:
			// Definite: the departure preempted the broadcast.
		default:
			t.Fatalf("receipt %d resolved with undocumented error %v", i, err)
		}
	}
	// Survivors deliver exactly the messages whose receipts said Delivered.
	got := collect(t, c.Node(0), delivered)
	for _, m := range got {
		if m.Origin != c.IDs()[3] {
			t.Fatalf("unexpected origin %d", m.Origin)
		}
	}
}

// TestReceiptWaitAfterClusterStop: waiting on a receipt after the whole
// cluster was stopped must return ErrStopped immediately, not hang — the
// shutdown path fails every outstanding receipt before the node exits.
func TestReceiptWaitAfterClusterStop(t *testing.T) {
	network := mem.NewNetwork(mem.Options{})
	c, err := fsr.NewCluster(fsr.ClusterConfig{N: 3, T: 1, NodeConfig: fastConfig()},
		fsr.MemTransport(network))
	if err != nil {
		t.Fatal(err)
	}
	// Strand node 2's broadcast so it cannot resolve by delivery first.
	network.CutLink(c.IDs()[2], c.IDs()[0])
	network.CutLink(c.IDs()[2], c.IDs()[1])
	r, err := c.Node(2).Broadcast(context.Background(), []byte("orphaned"))
	if err != nil {
		t.Fatal(err)
	}
	c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Wait(ctx); err != fsr.ErrStopped {
		t.Fatalf("Wait after Cluster.Stop = %v, want ErrStopped", err)
	}
	// And the no-context accessors agree without blocking.
	if r.Err() != fsr.ErrStopped || r.Seq() != 0 {
		t.Fatalf("post-stop receipt: err=%v seq=%d", r.Err(), r.Seq())
	}
}

// TestReceiptWaitHonorsContext: Wait returns on ctx cancellation without
// resolving the receipt.
func TestReceiptWaitHonorsContext(t *testing.T) {
	network := mem.NewNetwork(mem.Options{})
	c, err := fsr.NewCluster(fsr.ClusterConfig{N: 3, T: 1, NodeConfig: fastConfig()},
		fsr.MemTransport(network))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	network.CutLink(c.IDs()[2], c.IDs()[0])
	network.CutLink(c.IDs()[2], c.IDs()[1])
	r, err := c.Node(2).Broadcast(context.Background(), []byte("stuck"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := r.Wait(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Wait = %v, want DeadlineExceeded", err)
	}
}

// TestMetricsSnapshot: counters move, roles are reported, and the latency
// summary reflects resolved receipts.
func TestMetricsSnapshot(t *testing.T) {
	c := newCluster(t, 3, 1)
	ctx := context.Background()
	const sends = 5
	for i := range sends {
		r, err := c.Node(1).Broadcast(ctx, []byte(fmt.Sprintf("m%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		waitReceipt(t, r, 20*time.Second)
	}
	leader, follower := c.Node(0).Metrics(), c.Node(1).Metrics()
	if !leader.IsLeader || follower.IsLeader {
		t.Fatalf("leader flags wrong: %v %v", leader.IsLeader, follower.IsLeader)
	}
	if leader.Sequenced < sends {
		t.Errorf("leader sequenced %d < %d", leader.Sequenced, sends)
	}
	if follower.Delivered < sends {
		t.Errorf("follower delivered %d < %d", follower.Delivered, sends)
	}
	if follower.BroadcastLatency.Count != sends {
		t.Errorf("latency samples %d, want %d", follower.BroadcastLatency.Count, sends)
	}
	if follower.PendingReceipts != 0 {
		t.Errorf("pending receipts %d after all resolved", follower.PendingReceipts)
	}
	if got := len(leader.View.Members); got != 3 {
		t.Errorf("metrics view has %d members", got)
	}
	c.Node(2).Stop()
	if m := c.Node(2).Metrics(); m.FramesIn != 0 || m.View.ID != 0 {
		t.Errorf("stopped node metrics not zero: %+v", m)
	}
}
