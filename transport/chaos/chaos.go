// Package chaos decorates a cluster transport with seeded, deterministic
// fault injection: per-link delay and jitter, geo latency matrices, link
// stalls, one-way blackholes, slow nodes and atomic crash purges, all
// derived from one integer seed. It is the traffic-shaping half of the
// repository's FoundationDB-style simulation testing (see internal/harness
// for the workload driver and the total-order property checker): a failing
// run prints its seed, and re-running with the same seed regenerates the
// identical injection schedule.
//
// # Determinism
//
// Every injected delay and stall is a pure function of (seed, link,
// per-link frame index): each directed link (from, to) counts the frames
// it has carried, and frame i's extra latency is computed by hashing the
// seed with the link identity and i (splitmix64). No shared RNG stream
// exists, so the schedule cannot be perturbed by goroutine interleaving —
// two runs with the same seed and the same logical traffic see byte-for-
// byte the same injection schedule, which is what makes a chaos failure
// replayable. (The protocol stack above still runs on real goroutines and
// real time; the seed pins the faults, not the scheduler.)
//
// The geo latency matrix (Options.Geo) is deterministic the same way:
// region placement hashes (seed, node), and every frame's one-way latency
// hashes (seed, link, frame index) within the profile's bounds.
//
// # FIFO preservation, and where loss is allowed
//
// The wrapped transports promise reliable per-link FIFO, and FSR depends
// on it, so injection must never reorder a link. Each link releases frames
// through one queue in send order: frame i becomes releasable at
// max(release(i-1), enqueue(i)+delay(i)), i.e. jitter stretches and bunches
// traffic but never overtakes. A stall simply pushes the link's release
// horizon forward, holding (not dropping) everything behind it.
//
// Loss exists only inside explicitly injected blackhole windows (CutLink,
// FlapLink): a directed link that is down swallows everything sent on it
// while the window lasts, modeling a one-way partition — A→B dead while
// B→A flows. This deliberately breaks the paper's reliable-channel
// assumption, which is the point: the protocol is expected to survive it
// the same way it survives a crash, via failure suspicion and a view
// change that excludes someone, and the harness's asym-partition profile
// holds it to that. Frames that ARE delivered still obey per-link FIFO;
// a link never reorders, it only ever has a hole where a window was.
//
// # Usage
//
//	inner := fsr.MemTransport(nil)
//	ct := chaos.New(inner, chaos.Options{Seed: seed, MaxDelay: 3 * time.Millisecond, StallEvery: 200, MaxStall: 50 * time.Millisecond})
//	cluster, err := fsr.NewCluster(cfg, ct)
//
// Crash, node slowdown and stall injection compose with the cluster-level
// fault plan driven by internal/harness (crash-restart, leader rotation,
// join/leave churn).
package chaos

import (
	"fmt"
	"sync"
	"time"

	"fsr/transport"
)

// Inner is the cluster-transport surface chaos decorates. It is satisfied
// by fsr.MemTransport and fsr.TCPTransport (and any other
// fsr.ClusterTransport); it is re-declared structurally here so the
// transport tree does not import the root package.
type Inner interface {
	Join(id transport.ProcID) (transport.Transport, error)
	Open() error
	Crash(id transport.ProcID)
	Close() error
}

// Options parameterizes the injection schedule. The zero value injects
// nothing (a transparent decorator).
type Options struct {
	// Seed pins the whole injection schedule; runs with equal seeds and
	// equal logical traffic inject identically.
	Seed int64

	// MinDelay/MaxDelay bound the uniform per-frame link delay. MaxDelay 0
	// disables delay injection.
	MinDelay, MaxDelay time.Duration

	// StallEvery, when positive, stalls a link on average once every
	// StallEvery frames (decided per frame from the seeded hash). A stall
	// pushes the link's release horizon forward by up to MaxStall,
	// simulating a GC pause, a routing flap or a full socket buffer.
	StallEvery int
	// MaxStall bounds one injected stall.
	MaxStall time.Duration

	// Geo, when set, lays a WAN latency matrix under the jitter above:
	// nodes are hashed into Geo.Regions regions and every frame pays the
	// profile's one-way intra- or inter-region latency for its link. Nil
	// models a LAN (no base latency).
	Geo *GeoProfile
}

// GeoProfile names one WAN geography: how many regions there are and what
// a round trip costs within and between them. Latencies are RTTs (what
// ping would print); each frame pays half, one way, plus a seeded jitter
// up to Jitter. Region placement is a pure hash of (seed, node), so one
// seed pins the whole geography.
type GeoProfile struct {
	Name     string
	Regions  int
	IntraRTT time.Duration
	InterRTT time.Duration
	Jitter   time.Duration
}

// Predefined geographies for the harness's wan-geo profile. RTTs are kept
// well under the protocol timeouts the harness runs with, so geography
// skews timing without starving the failure detector outright.
var (
	// Metro3 is three datacenters in one metro area: sub-millisecond
	// within a site, a few milliseconds across.
	Metro3 = GeoProfile{Name: "metro3", Regions: 3, IntraRTT: 500 * time.Microsecond, InterRTT: 4 * time.Millisecond, Jitter: 500 * time.Microsecond}
	// Continental3 is three regions on one continent: the inter-region
	// hop dominates every ring round trip.
	Continental3 = GeoProfile{Name: "continental3", Regions: 3, IntraRTT: time.Millisecond, InterRTT: 12 * time.Millisecond, Jitter: 2 * time.Millisecond}
)

// Transport is the fault-injecting decorator. It implements the
// fsr.ClusterTransport surface and hands nodes wrapped endpoints whose
// outbound frames pass through the seeded delay schedule.
type Transport struct {
	inner Inner
	opts  Options

	mu      sync.Mutex
	links   map[[2]transport.ProcID]*link
	nodeLag map[transport.ProcID]time.Duration  // extra per-frame delay, either direction
	stalled map[[2]transport.ProcID]time.Time   // explicit stall horizon per link
	cuts    map[[2]transport.ProcID][]cutWindow // blackhole windows per directed link
	crashed map[transport.ProcID]bool
	closed  bool
}

// cutWindow is one scheduled blackhole interval on a directed link.
type cutWindow struct{ start, end time.Time }

// New wraps inner with seeded fault injection.
func New(inner Inner, opts Options) *Transport {
	if opts.MaxDelay < opts.MinDelay {
		opts.MaxDelay = opts.MinDelay
	}
	return &Transport{
		inner:   inner,
		opts:    opts,
		links:   make(map[[2]transport.ProcID]*link),
		nodeLag: make(map[transport.ProcID]time.Duration),
		stalled: make(map[[2]transport.ProcID]time.Time),
		cuts:    make(map[[2]transport.ProcID][]cutWindow),
		crashed: make(map[transport.ProcID]bool),
	}
}

// Join implements the cluster-transport surface: the member's real endpoint
// is provisioned by the inner transport and wrapped. Joining an ID that was
// crashed earlier (the restart path) clears its crash mark and resets the
// frame counters of its links — a restarted process is a new traffic
// source, and the reset rule is itself deterministic.
func (t *Transport) Join(id transport.ProcID) (transport.Transport, error) {
	ep, err := t.inner.Join(id)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	delete(t.crashed, id)
	ls := t.detachLinksLocked(id, false)
	t.mu.Unlock()
	for _, l := range ls {
		l.stop()
	}
	return &endpoint{t: t, inner: ep}, nil
}

// Open implements the cluster-transport surface.
func (t *Transport) Open() error { return t.inner.Open() }

// Crash fail-stops id: every frame still queued in the injection layer to
// or from id is dropped atomically with the crash mark, then the inner
// transport's own crash purge runs. Composed with transport/mem's
// deterministic Crash this severs the node in both directions at one
// instant.
func (t *Transport) Crash(id transport.ProcID) {
	t.mu.Lock()
	t.crashed[id] = true
	ls := t.detachLinksLocked(id, false)
	t.mu.Unlock()
	// Stopping outside the lock keeps concurrent Sends unblocked; the crash
	// mark already prevents new links, and the inner transport's own crash
	// purge (after the stops) catches any frame a release goroutine was
	// holding mid-sleep.
	for _, l := range ls {
		l.stop()
	}
	t.inner.Crash(id)
}

// detachLinksLocked removes (and returns) every link touching id, or only
// its outbound links when outboundOnly is set. Callers hold t.mu and must
// stop the returned links after unlocking.
func (t *Transport) detachLinksLocked(id transport.ProcID, outboundOnly bool) []*link {
	var ls []*link
	for key, l := range t.links {
		if key[0] == id || (!outboundOnly && key[1] == id) {
			ls = append(ls, l)
			delete(t.links, key)
		}
	}
	if !outboundOnly {
		// A crash (or a restart's rejoin) tears the node's links down
		// entirely; pending stall horizons and blackhole windows die with
		// them — a restarted process gets fresh links, not old faults.
		for key := range t.stalled {
			if key[0] == id || key[1] == id {
				delete(t.stalled, key)
			}
		}
		for key := range t.cuts {
			if key[0] == id || key[1] == id {
				delete(t.cuts, key)
			}
		}
	}
	return ls
}

// Close releases the decorator and the inner transport.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	ls := make([]*link, 0, len(t.links))
	for _, l := range t.links {
		ls = append(ls, l)
	}
	t.links = make(map[[2]transport.ProcID]*link)
	t.mu.Unlock()
	for _, l := range ls {
		l.stop()
	}
	return t.inner.Close()
}

// SlowNode adds extra per-frame delay to every link touching id (0 restores
// full speed) — the "slow replica" fault. Takes effect for frames sent
// after the call; the decision of when to slow which node belongs to the
// (seeded) fault plan of the caller.
func (t *Transport) SlowNode(id transport.ProcID, extra time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if extra <= 0 {
		delete(t.nodeLag, id)
		return
	}
	t.nodeLag[id] = extra
}

// StallLink holds the directed link from->to for d: frames queue up and
// release, still in order, once the stall expires. Unlike mem.CutLink
// nothing is dropped, so the reliable-channel assumption holds.
func (t *Transport) StallLink(from, to transport.ProcID, d time.Duration) {
	t.mu.Lock()
	t.stalled[[2]transport.ProcID{from, to}] = time.Now().Add(d)
	l := t.links[[2]transport.ProcID{from, to}]
	t.mu.Unlock()
	if l != nil {
		l.bump(time.Now().Add(d))
	}
}

// CutLink blackholes the directed link from->to for d, starting now:
// everything sent on it while the window lasts is silently swallowed
// (the sender sees success — that is what a one-way partition looks
// like), while to->from keeps flowing. Windows compose: overlapping cuts
// union. See the package comment for why loss is legal here and nowhere
// else.
func (t *Transport) CutLink(from, to transport.ProcID, d time.Duration) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	key := [2]transport.ProcID{from, to}
	t.cuts[key] = append(t.cuts[key], cutWindow{start: now, end: now.Add(d)})
}

// FlapLink schedules cycles alternating down/up windows on from->to,
// starting down now — a flapping route. The whole flap schedule is laid
// out at call time, so it stays a pure function of when the (seeded)
// fault plan fired it.
func (t *Transport) FlapLink(from, to transport.ProcID, down, up time.Duration, cycles int) {
	at := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	key := [2]transport.ProcID{from, to}
	for range cycles {
		t.cuts[key] = append(t.cuts[key], cutWindow{start: at, end: at.Add(down)})
		at = at.Add(down + up)
	}
}

// HealLink cancels every pending blackhole window on from->to.
func (t *Transport) HealLink(from, to transport.ProcID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.cuts, [2]transport.ProcID{from, to})
}

// cutNow reports whether from->to is inside a blackhole window, pruning
// expired windows as it goes.
func (t *Transport) cutNow(from, to transport.ProcID) bool {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	key := [2]transport.ProcID{from, to}
	ws := t.cuts[key]
	if len(ws) == 0 {
		return false
	}
	i := 0
	for i < len(ws) && now.After(ws[i].end) {
		i++
	}
	if i > 0 {
		ws = ws[i:]
		if len(ws) == 0 {
			delete(t.cuts, key)
			return false
		}
		t.cuts[key] = ws
	}
	return !now.Before(ws[0].start)
}

// Region returns the geo region a node hashes into under Options.Geo
// (0 when no geo profile is set) — exposed so tests and the harness can
// reason about which ring hops cross regions.
func (t *Transport) Region(id transport.ProcID) int {
	g := t.opts.Geo
	if g == nil || g.Regions <= 0 {
		return 0
	}
	return int(mix(uint64(t.opts.Seed)^mix(uint64(id)^0x9e0c0de)) % uint64(g.Regions))
}

// Inner returns the wrapped transport, for callers that need backend
// specifics (e.g. the mem hub for CutLink).
func (t *Transport) Inner() Inner { return t.inner }

// delayFor computes frame i's injected delay on (from, to): the geo
// matrix's one-way base latency, the seeded jitter, any node slowdown,
// plus a seeded stall when the hash says so.
func (t *Transport) delayFor(from, to transport.ProcID, i uint64) time.Duration {
	t.mu.Lock()
	lag := t.nodeLag[from] + t.nodeLag[to]
	t.mu.Unlock()
	d := lag
	h := mix(uint64(t.opts.Seed) ^ mix(uint64(from)<<32|uint64(to)) ^ mix(i))
	if g := t.opts.Geo; g != nil && g.Regions > 0 {
		rtt := g.IntraRTT
		if t.Region(from) != t.Region(to) {
			rtt = g.InterRTT
		}
		d += rtt / 2
		if g.Jitter > 0 {
			d += time.Duration(mix(h^0x9e0aff5e7) % uint64(g.Jitter))
		}
	}
	if t.opts.MaxDelay > 0 {
		span := uint64(t.opts.MaxDelay - t.opts.MinDelay + 1)
		d += t.opts.MinDelay + time.Duration(h%span)
	}
	if t.opts.StallEvery > 0 && t.opts.MaxStall > 0 {
		roll := mix(h ^ 0x5ca1ab1e)
		if roll%uint64(t.opts.StallEvery) == 0 {
			d += time.Duration(mix(roll) % uint64(t.opts.MaxStall))
		}
	}
	return d
}

// Mix is splitmix64's finalizer — a fast, well-distributed 64-bit hash.
// It is the shared seeding primitive of the repository's fault injectors:
// this transport's delay/stall schedule and the storage-layer injector
// (internal/wal/walfault) both derive their schedules as pure functions of
// Mix(seed ^ Mix(identity) ^ Mix(op index)), so every injected fault is
// replayable from the one scenario seed.
func Mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix keeps the package-internal call sites short.
func mix(z uint64) uint64 { return Mix(z) }

// linkFor returns (creating if needed) the live link from->to.
func (t *Transport) linkFor(from, to transport.ProcID, send func(payload []byte) error) (*link, error) {
	key := [2]transport.ProcID{from, to}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.crashed[from] {
		return nil, transport.ErrClosed
	}
	if t.crashed[to] {
		return nil, fmt.Errorf("chaos: send to crashed %d: %w", to, transport.ErrUnknownPeer)
	}
	l, ok := t.links[key]
	if !ok {
		l = newLink(t, from, to, send)
		if horizon, stalled := t.stalled[key]; stalled && time.Now().Before(horizon) {
			l.horizon = horizon
		}
		t.links[key] = l
	}
	return l, nil
}

// endpoint wraps one member's transport endpoint, diverting outbound frames
// through the per-link injection queues. Inbound traffic is untouched —
// one-way injection on the send side is enough to shape every link, and
// keeps handler semantics identical to the inner transport.
type endpoint struct {
	t     *Transport
	inner transport.Transport
}

var (
	_ transport.Transport   = (*endpoint)(nil)
	_ transport.BatchSender = (*endpoint)(nil)
)

func (e *endpoint) Self() transport.ProcID         { return e.inner.Self() }
func (e *endpoint) SetHandler(h transport.Handler) { e.inner.SetHandler(h) }

// Send queues payload on the from->to injection link; the link's release
// goroutine forwards it to the inner transport after the scheduled delay,
// in FIFO order. Inside a blackhole window (CutLink/FlapLink) the payload
// is swallowed after the liveness checks: the sender sees success, nothing
// travels, and the drop does not advance the link's frame counter — the
// delay schedule of delivered frames is unperturbed by the cut.
func (e *endpoint) Send(to transport.ProcID, payload []byte) error {
	from := e.inner.Self()
	l, err := e.t.linkFor(from, to, func(p []byte) error { return e.inner.Send(to, p) })
	if err != nil {
		return err
	}
	if e.t.cutNow(from, to) {
		return nil
	}
	return l.enqueue(payload)
}

// SendBatch implements transport.BatchSender by looping over the injection
// queue, so every frame of a batch still gets its own seeded delay draw
// and the injection schedule stays a pure function of the per-link frame
// index. The link (and the inner transport behind it) retains payloads
// past the call, while the batch contract leaves the buffers with the
// caller — so each payload is copied here.
func (e *endpoint) SendBatch(to transport.ProcID, payloads [][]byte) error {
	for _, p := range payloads {
		if err := e.Send(to, append([]byte(nil), p...)); err != nil {
			return err
		}
	}
	return nil
}

// Close closes the member's outbound links and its inner endpoint.
func (e *endpoint) Close() error {
	id := e.inner.Self()
	e.t.mu.Lock()
	ls := e.t.detachLinksLocked(id, true)
	e.t.mu.Unlock()
	for _, l := range ls {
		l.stop()
	}
	return e.inner.Close()
}

// link is one directed injection queue. Frames release in enqueue order at
// max(previous release, enqueue time + scheduled delay), so jitter can
// bunch but never reorder.
type link struct {
	t        *Transport
	from, to transport.ProcID
	send     func(payload []byte) error

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []linkItem
	n       uint64    // frames carried; indexes the delay schedule
	horizon time.Time // release floor (stalls push it forward)
	stopped bool
	stopc   chan struct{} // closed by stop; interrupts a mid-delay sleep
	done    chan struct{}
}

type linkItem struct {
	payload []byte
	due     time.Time
}

func newLink(t *Transport, from, to transport.ProcID, send func([]byte) error) *link {
	l := &link{t: t, from: from, to: to, send: send,
		stopc: make(chan struct{}), done: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	go l.run()
	return l
}

func (l *link) enqueue(payload []byte) error {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return transport.ErrClosed
	}
	// The delay draw indexes the schedule by the frame counter, so it must
	// happen under the lock: session clients send on one link from several
	// goroutines (a member's event loop is single-threaded, a client is
	// not).
	d := l.t.delayFor(l.from, l.to, l.n)
	l.n++
	due := time.Now().Add(d)
	if due.Before(l.horizon) {
		due = l.horizon
	}
	l.horizon = due // FIFO: later frames release no earlier
	l.queue = append(l.queue, linkItem{payload: payload, due: due})
	l.cond.Signal()
	l.mu.Unlock()
	return nil
}

// bump raises the link's release horizon (an explicit stall).
func (l *link) bump(horizon time.Time) {
	l.mu.Lock()
	if horizon.After(l.horizon) {
		l.horizon = horizon
	}
	l.mu.Unlock()
}

// stop halts the release goroutine and drops queued frames (crash/close).
// A frame mid-delay is interrupted and dropped; stop returns once the
// goroutine has exited, so no send can follow it.
func (l *link) stop() {
	l.mu.Lock()
	if !l.stopped {
		l.stopped = true
		l.queue = nil
		close(l.stopc)
		l.cond.Broadcast()
	}
	l.mu.Unlock()
	<-l.done
}

// run releases frames in order at their due times.
func (l *link) run() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for !l.stopped && len(l.queue) == 0 {
			l.cond.Wait()
		}
		if l.stopped {
			l.mu.Unlock()
			return
		}
		it := l.queue[0]
		l.queue = l.queue[:copy(l.queue, l.queue[1:])]
		l.mu.Unlock()
		if d := time.Until(it.due); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-l.stopc:
				timer.Stop()
				return // crashed while the frame was sleeping: it dies here
			}
		}
		select {
		case <-l.stopc:
			return
		default:
		}
		_ = l.send(it.payload) // inner transport errors mean crash/close: frame dies
	}
}
