package chaos

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fsr/transport"
	"fsr/transport/mem"
)

// memInner adapts a mem.Network to the Inner surface without importing the
// root package (mirroring what fsr.MemTransport does).
type memInner struct{ net *mem.Network }

func (m *memInner) Join(id transport.ProcID) (transport.Transport, error) { return m.net.Join(id) }
func (m *memInner) Open() error                                           { return nil }
func (m *memInner) Crash(id transport.ProcID)                             { m.net.Crash(id) }
func (m *memInner) Close() error                                          { return nil }

func newChaos(t *testing.T, opts Options) (*Transport, map[transport.ProcID]transport.Transport) {
	t.Helper()
	ct := New(&memInner{net: mem.NewNetwork(mem.Options{})}, opts)
	eps := make(map[transport.ProcID]transport.Transport)
	for id := transport.ProcID(1); id <= 3; id++ {
		ep, err := ct.Join(id)
		if err != nil {
			t.Fatal(err)
		}
		eps[id] = ep
	}
	if err := ct.Open(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ct.Close() })
	return ct, eps
}

type sink struct {
	mu  sync.Mutex
	got []string
}

func (s *sink) handler(from transport.ProcID, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.got = append(s.got, fmt.Sprintf("%d:%s", from, payload))
}

func (s *sink) waitN(t *testing.T, n int) []string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		if len(s.got) >= n {
			out := append([]string(nil), s.got...)
			s.mu.Unlock()
			return out
		}
		s.mu.Unlock()
		if time.Now().After(deadline) {
			s.mu.Lock()
			defer s.mu.Unlock()
			t.Fatalf("timeout: have %d payloads, want %d", len(s.got), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestScheduleIsSeedDeterministic: the injected delay sequence of a link is
// a pure function of (seed, link, frame index) — identical across
// Transport instances with the same seed, different under another seed.
func TestScheduleIsSeedDeterministic(t *testing.T) {
	opts := Options{Seed: 42, MinDelay: time.Microsecond, MaxDelay: 5 * time.Millisecond,
		StallEvery: 7, MaxStall: 20 * time.Millisecond}
	a := New(&memInner{net: mem.NewNetwork(mem.Options{})}, opts)
	b := New(&memInner{net: mem.NewNetwork(mem.Options{})}, opts)
	optsOther := opts
	optsOther.Seed = 43
	c := New(&memInner{net: mem.NewNetwork(mem.Options{})}, optsOther)
	same, diff := true, false
	for i := uint64(0); i < 1000; i++ {
		da, db, dc := a.delayFor(1, 2, i), b.delayFor(1, 2, i), c.delayFor(1, 2, i)
		if da != db {
			same = false
		}
		if da != dc {
			diff = true
		}
		if da < opts.MinDelay {
			t.Fatalf("frame %d: delay %v below MinDelay", i, da)
		}
	}
	if !same {
		t.Fatal("equal seeds produced different schedules")
	}
	if !diff {
		t.Fatal("different seeds produced identical schedules")
	}
	// Distinct links get distinct schedules under one seed.
	if a.delayFor(1, 2, 0) == a.delayFor(2, 1, 0) && a.delayFor(1, 2, 1) == a.delayFor(2, 1, 1) &&
		a.delayFor(1, 2, 2) == a.delayFor(2, 1, 2) {
		t.Fatal("opposite link directions share a schedule")
	}
}

// TestFIFOPreservedUnderJitter: heavy jitter must never reorder a link.
func TestFIFOPreservedUnderJitter(t *testing.T) {
	_, eps := newChaos(t, Options{Seed: 7, MaxDelay: 2 * time.Millisecond,
		StallEvery: 10, MaxStall: 10 * time.Millisecond})
	s := &sink{}
	eps[2].SetHandler(s.handler)
	const n = 200
	for i := range n {
		if err := eps[1].Send(2, []byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := s.waitN(t, n)
	for i, g := range got {
		if want := fmt.Sprintf("1:m%03d", i); g != want {
			t.Fatalf("frame %d = %q, want %q (FIFO violated)", i, g, want)
		}
	}
}

// TestStallHoldsWithoutDropping: an explicit stall delays the whole link
// but every frame still arrives, in order.
func TestStallHoldsWithoutDropping(t *testing.T) {
	ct, eps := newChaos(t, Options{Seed: 1})
	s := &sink{}
	eps[2].SetHandler(s.handler)
	if err := eps[1].Send(2, []byte("before")); err != nil {
		t.Fatal(err)
	}
	s.waitN(t, 1)
	const stall = 80 * time.Millisecond
	ct.StallLink(1, 2, stall)
	start := time.Now()
	if err := eps[1].Send(2, []byte("held")); err != nil {
		t.Fatal(err)
	}
	got := s.waitN(t, 2)
	if el := time.Since(start); el < stall-10*time.Millisecond {
		t.Fatalf("stalled frame arrived after %v, want >= %v", el, stall)
	}
	if got[1] != "1:held" {
		t.Fatalf("got %v", got)
	}
}

// TestSlowNodeAddsLatency: SlowNode inflates the node's link delays until
// restored.
func TestSlowNodeAddsLatency(t *testing.T) {
	ct, eps := newChaos(t, Options{Seed: 1})
	s := &sink{}
	eps[2].SetHandler(s.handler)
	const lag = 60 * time.Millisecond
	ct.SlowNode(1, lag)
	start := time.Now()
	if err := eps[1].Send(2, []byte("sluggish")); err != nil {
		t.Fatal(err)
	}
	s.waitN(t, 1)
	if el := time.Since(start); el < lag-5*time.Millisecond {
		t.Fatalf("slow-node frame arrived after %v, want >= %v", el, lag)
	}
	ct.SlowNode(1, 0)
	start = time.Now()
	if err := eps[1].Send(2, []byte("recovered")); err != nil {
		t.Fatal(err)
	}
	s.waitN(t, 2)
	if el := time.Since(start); el > lag {
		t.Fatalf("restored node still slow: %v", el)
	}
}

// TestCrashDropsQueuedFrames: frames sitting in the injection queue die
// with the sender's crash; the crashed ID can rejoin and resume.
func TestCrashDropsQueuedFrames(t *testing.T) {
	ct, eps := newChaos(t, Options{Seed: 1})
	s := &sink{}
	eps[2].SetHandler(s.handler)
	ct.StallLink(1, 2, time.Hour) // park everything 1 sends
	for i := range 50 {
		if err := eps[1].Send(2, []byte(fmt.Sprintf("doomed%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ct.Crash(1)
	if err := eps[3].Send(2, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	got := s.waitN(t, 1)
	if len(got) != 1 || got[0] != "3:alive" {
		t.Fatalf("crashed sender's queued frames leaked: %v", got)
	}
	if err := eps[1].Send(2, []byte("ghost")); err == nil {
		t.Fatal("send from crashed endpoint succeeded")
	}
	// Restart path: rejoin provisions a fresh endpoint with fresh links.
	ep1, err := ct.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep1.Send(2, []byte("reborn")); err != nil {
		t.Fatal(err)
	}
	got = s.waitN(t, 2)
	if got[1] != "1:reborn" {
		t.Fatalf("got %v", got)
	}
}

// TestZeroOptionsTransparent: the zero-value decorator is pass-through.
func TestZeroOptionsTransparent(t *testing.T) {
	_, eps := newChaos(t, Options{})
	s := &sink{}
	eps[2].SetHandler(s.handler)
	start := time.Now()
	for i := range 100 {
		if err := eps[1].Send(2, []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.waitN(t, 100)
	if el := time.Since(start); el > time.Second {
		t.Fatalf("transparent decorator took %v for 100 frames", el)
	}
}
