package chaos

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fsr/transport"
	"fsr/transport/mem"
)

// memInner adapts a mem.Network to the Inner surface without importing the
// root package (mirroring what fsr.MemTransport does).
type memInner struct{ net *mem.Network }

func (m *memInner) Join(id transport.ProcID) (transport.Transport, error) { return m.net.Join(id) }
func (m *memInner) Open() error                                           { return nil }
func (m *memInner) Crash(id transport.ProcID)                             { m.net.Crash(id) }
func (m *memInner) Close() error                                          { return nil }

func newChaos(t *testing.T, opts Options) (*Transport, map[transport.ProcID]transport.Transport) {
	t.Helper()
	ct := New(&memInner{net: mem.NewNetwork(mem.Options{})}, opts)
	eps := make(map[transport.ProcID]transport.Transport)
	for id := transport.ProcID(1); id <= 3; id++ {
		ep, err := ct.Join(id)
		if err != nil {
			t.Fatal(err)
		}
		eps[id] = ep
	}
	if err := ct.Open(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ct.Close() })
	return ct, eps
}

type sink struct {
	mu  sync.Mutex
	got []string
}

func (s *sink) handler(from transport.ProcID, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.got = append(s.got, fmt.Sprintf("%d:%s", from, payload))
}

func (s *sink) waitN(t *testing.T, n int) []string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		if len(s.got) >= n {
			out := append([]string(nil), s.got...)
			s.mu.Unlock()
			return out
		}
		s.mu.Unlock()
		if time.Now().After(deadline) {
			s.mu.Lock()
			defer s.mu.Unlock()
			t.Fatalf("timeout: have %d payloads, want %d", len(s.got), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestScheduleIsSeedDeterministic: the injected delay sequence of a link is
// a pure function of (seed, link, frame index) — identical across
// Transport instances with the same seed, different under another seed.
func TestScheduleIsSeedDeterministic(t *testing.T) {
	opts := Options{Seed: 42, MinDelay: time.Microsecond, MaxDelay: 5 * time.Millisecond,
		StallEvery: 7, MaxStall: 20 * time.Millisecond}
	a := New(&memInner{net: mem.NewNetwork(mem.Options{})}, opts)
	b := New(&memInner{net: mem.NewNetwork(mem.Options{})}, opts)
	optsOther := opts
	optsOther.Seed = 43
	c := New(&memInner{net: mem.NewNetwork(mem.Options{})}, optsOther)
	same, diff := true, false
	for i := uint64(0); i < 1000; i++ {
		da, db, dc := a.delayFor(1, 2, i), b.delayFor(1, 2, i), c.delayFor(1, 2, i)
		if da != db {
			same = false
		}
		if da != dc {
			diff = true
		}
		if da < opts.MinDelay {
			t.Fatalf("frame %d: delay %v below MinDelay", i, da)
		}
	}
	if !same {
		t.Fatal("equal seeds produced different schedules")
	}
	if !diff {
		t.Fatal("different seeds produced identical schedules")
	}
	// Distinct links get distinct schedules under one seed.
	if a.delayFor(1, 2, 0) == a.delayFor(2, 1, 0) && a.delayFor(1, 2, 1) == a.delayFor(2, 1, 1) &&
		a.delayFor(1, 2, 2) == a.delayFor(2, 1, 2) {
		t.Fatal("opposite link directions share a schedule")
	}
}

// TestFIFOPreservedUnderJitter: heavy jitter must never reorder a link.
func TestFIFOPreservedUnderJitter(t *testing.T) {
	_, eps := newChaos(t, Options{Seed: 7, MaxDelay: 2 * time.Millisecond,
		StallEvery: 10, MaxStall: 10 * time.Millisecond})
	s := &sink{}
	eps[2].SetHandler(s.handler)
	const n = 200
	for i := range n {
		if err := eps[1].Send(2, []byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := s.waitN(t, n)
	for i, g := range got {
		if want := fmt.Sprintf("1:m%03d", i); g != want {
			t.Fatalf("frame %d = %q, want %q (FIFO violated)", i, g, want)
		}
	}
}

// TestStallHoldsWithoutDropping: an explicit stall delays the whole link
// but every frame still arrives, in order.
func TestStallHoldsWithoutDropping(t *testing.T) {
	ct, eps := newChaos(t, Options{Seed: 1})
	s := &sink{}
	eps[2].SetHandler(s.handler)
	if err := eps[1].Send(2, []byte("before")); err != nil {
		t.Fatal(err)
	}
	s.waitN(t, 1)
	const stall = 80 * time.Millisecond
	ct.StallLink(1, 2, stall)
	start := time.Now()
	if err := eps[1].Send(2, []byte("held")); err != nil {
		t.Fatal(err)
	}
	got := s.waitN(t, 2)
	if el := time.Since(start); el < stall-10*time.Millisecond {
		t.Fatalf("stalled frame arrived after %v, want >= %v", el, stall)
	}
	if got[1] != "1:held" {
		t.Fatalf("got %v", got)
	}
}

// TestSlowNodeAddsLatency: SlowNode inflates the node's link delays until
// restored.
func TestSlowNodeAddsLatency(t *testing.T) {
	ct, eps := newChaos(t, Options{Seed: 1})
	s := &sink{}
	eps[2].SetHandler(s.handler)
	const lag = 60 * time.Millisecond
	ct.SlowNode(1, lag)
	start := time.Now()
	if err := eps[1].Send(2, []byte("sluggish")); err != nil {
		t.Fatal(err)
	}
	s.waitN(t, 1)
	if el := time.Since(start); el < lag-5*time.Millisecond {
		t.Fatalf("slow-node frame arrived after %v, want >= %v", el, lag)
	}
	ct.SlowNode(1, 0)
	start = time.Now()
	if err := eps[1].Send(2, []byte("recovered")); err != nil {
		t.Fatal(err)
	}
	s.waitN(t, 2)
	if el := time.Since(start); el > lag {
		t.Fatalf("restored node still slow: %v", el)
	}
}

// TestCrashDropsQueuedFrames: frames sitting in the injection queue die
// with the sender's crash; the crashed ID can rejoin and resume.
func TestCrashDropsQueuedFrames(t *testing.T) {
	ct, eps := newChaos(t, Options{Seed: 1})
	s := &sink{}
	eps[2].SetHandler(s.handler)
	ct.StallLink(1, 2, time.Hour) // park everything 1 sends
	for i := range 50 {
		if err := eps[1].Send(2, []byte(fmt.Sprintf("doomed%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ct.Crash(1)
	if err := eps[3].Send(2, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	got := s.waitN(t, 1)
	if len(got) != 1 || got[0] != "3:alive" {
		t.Fatalf("crashed sender's queued frames leaked: %v", got)
	}
	if err := eps[1].Send(2, []byte("ghost")); err == nil {
		t.Fatal("send from crashed endpoint succeeded")
	}
	// Restart path: rejoin provisions a fresh endpoint with fresh links.
	ep1, err := ct.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep1.Send(2, []byte("reborn")); err != nil {
		t.Fatal(err)
	}
	got = s.waitN(t, 2)
	if got[1] != "1:reborn" {
		t.Fatalf("got %v", got)
	}
}

// TestCutLinkIsOneWay: a blackholed A→B swallows silently while B→A keeps
// flowing, and A→B resumes once the window expires — the asymmetric
// partition primitive.
func TestCutLinkIsOneWay(t *testing.T) {
	ct, eps := newChaos(t, Options{Seed: 1})
	s1, s2 := &sink{}, &sink{}
	eps[1].SetHandler(s1.handler)
	eps[2].SetHandler(s2.handler)

	const window = 150 * time.Millisecond
	ct.CutLink(1, 2, window)
	// Down direction: swallowed without error (that is what loss looks
	// like to a sender).
	if err := eps[1].Send(2, []byte("lost")); err != nil {
		t.Fatalf("send into blackhole errored: %v", err)
	}
	// Reverse direction unaffected.
	if err := eps[2].Send(1, []byte("upstream")); err != nil {
		t.Fatal(err)
	}
	got := s1.waitN(t, 1)
	if got[0] != "2:upstream" {
		t.Fatalf("reverse direction: got %v", got)
	}
	// After the window the link carries traffic again — with a hole, not a
	// reorder: "lost" must never surface.
	time.Sleep(window + 20*time.Millisecond)
	if err := eps[1].Send(2, []byte("after")); err != nil {
		t.Fatal(err)
	}
	got = s2.waitN(t, 1)
	if len(got) != 1 || got[0] != "1:after" {
		t.Fatalf("post-window traffic: got %v", got)
	}
}

// TestHealLinkCancelsWindows: HealLink lifts a long cut immediately.
func TestHealLinkCancelsWindows(t *testing.T) {
	ct, eps := newChaos(t, Options{Seed: 1})
	s := &sink{}
	eps[2].SetHandler(s.handler)
	ct.CutLink(1, 2, time.Hour)
	if err := eps[1].Send(2, []byte("gone")); err != nil {
		t.Fatal(err)
	}
	ct.HealLink(1, 2)
	if err := eps[1].Send(2, []byte("back")); err != nil {
		t.Fatal(err)
	}
	got := s.waitN(t, 1)
	if len(got) != 1 || got[0] != "1:back" {
		t.Fatalf("healed link: got %v", got)
	}
}

// TestFlapLinkAlternates: a flapping link drops during down windows and
// delivers during up windows.
func TestFlapLinkAlternates(t *testing.T) {
	ct, eps := newChaos(t, Options{Seed: 1})
	s := &sink{}
	eps[2].SetHandler(s.handler)
	const down, up = 60 * time.Millisecond, 60 * time.Millisecond
	ct.FlapLink(1, 2, down, up, 2)
	// Inside the first down window.
	if err := eps[1].Send(2, []byte("flap0")); err != nil {
		t.Fatal(err)
	}
	// Inside the first up window.
	time.Sleep(down + up/2)
	if err := eps[1].Send(2, []byte("up0")); err != nil {
		t.Fatal(err)
	}
	// Inside the second down window.
	time.Sleep(up/2 + down/2)
	if err := eps[1].Send(2, []byte("flap1")); err != nil {
		t.Fatal(err)
	}
	// After the whole flap schedule.
	time.Sleep(down/2 + up + 20*time.Millisecond)
	if err := eps[1].Send(2, []byte("done")); err != nil {
		t.Fatal(err)
	}
	got := s.waitN(t, 2)
	if len(got) != 2 || got[0] != "1:up0" || got[1] != "1:done" {
		t.Fatalf("flap schedule delivered %v, want [1:up0 1:done]", got)
	}
}

// TestCrashClearsCuts: a crash (and the rejoin after it) tears down the
// node's blackhole windows along with its links — a restarted process
// gets a fresh network, not stale faults.
func TestCrashClearsCuts(t *testing.T) {
	ct, eps := newChaos(t, Options{Seed: 1})
	s := &sink{}
	eps[2].SetHandler(s.handler)
	ct.CutLink(1, 2, time.Hour)
	ct.Crash(1)
	ep1, err := ct.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep1.Send(2, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	got := s.waitN(t, 1)
	if len(got) != 1 || got[0] != "1:fresh" {
		t.Fatalf("restarted sender still cut: %v", got)
	}
}

// TestStallLinkBeforeFirstFrame: a stall set before the link has carried
// anything still applies to the link's first frame (the pending-horizon
// path in linkFor).
func TestStallLinkBeforeFirstFrame(t *testing.T) {
	ct, eps := newChaos(t, Options{Seed: 1})
	s := &sink{}
	eps[2].SetHandler(s.handler)
	const stall = 80 * time.Millisecond
	ct.StallLink(1, 2, stall)
	start := time.Now()
	if err := eps[1].Send(2, []byte("first")); err != nil {
		t.Fatal(err)
	}
	s.waitN(t, 1)
	if el := time.Since(start); el < stall-10*time.Millisecond {
		t.Fatalf("pre-link stall ignored: first frame arrived after %v, want >= %v", el, stall)
	}
}

// TestGeoProfileShapesLatency: region placement is a pure function of
// (seed, node); intra-region hops are cheap, inter-region hops pay the
// profile's RTT — and the whole matrix is seed-deterministic.
func TestGeoProfileShapesLatency(t *testing.T) {
	geo := &GeoProfile{Name: "test2", Regions: 2, IntraRTT: time.Millisecond,
		InterRTT: 40 * time.Millisecond, Jitter: time.Millisecond}
	opts := Options{Seed: 11, Geo: geo}
	a := New(&memInner{net: mem.NewNetwork(mem.Options{})}, opts)
	b := New(&memInner{net: mem.NewNetwork(mem.Options{})}, opts)

	// Placement and schedule agree across instances with one seed.
	var intra, inter []transport.ProcID
	for id := transport.ProcID(1); id <= 16; id++ {
		if a.Region(id) != b.Region(id) {
			t.Fatalf("node %d: region differs across equal-seed instances", id)
		}
		if a.Region(id) == a.Region(1) {
			intra = append(intra, id)
		} else {
			inter = append(inter, id)
		}
		for i := uint64(0); i < 50; i++ {
			if a.delayFor(1, id, i) != b.delayFor(1, id, i) {
				t.Fatalf("link 1->%d frame %d: geo delay differs across equal-seed instances", id, i)
			}
		}
	}
	if len(intra) < 2 || len(inter) < 1 {
		t.Fatalf("degenerate placement for this seed: intra=%v inter=%v", intra, inter)
	}
	// An inter-region hop costs at least InterRTT/2; an intra-region hop
	// stays under IntraRTT/2 + Jitter.
	if d := a.delayFor(1, inter[0], 0); d < geo.InterRTT/2 {
		t.Fatalf("inter-region delay %v < one-way RTT %v", d, geo.InterRTT/2)
	}
	if d := a.delayFor(1, intra[1], 0); d >= geo.IntraRTT/2+geo.Jitter {
		t.Fatalf("intra-region delay %v >= bound %v", d, geo.IntraRTT/2+geo.Jitter)
	}
}

// TestZeroOptionsTransparent: the zero-value decorator is pass-through.
func TestZeroOptionsTransparent(t *testing.T) {
	_, eps := newChaos(t, Options{})
	s := &sink{}
	eps[2].SetHandler(s.handler)
	start := time.Now()
	for i := range 100 {
		if err := eps[1].Send(2, []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.waitN(t, 100)
	if el := time.Since(start); el > time.Second {
		t.Fatalf("transparent decorator took %v for 100 frames", el)
	}
}
