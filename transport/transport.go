// Package transport defines the point-to-point communication abstraction the
// FSR stack runs on: reliable FIFO unicast channels between every pair of
// processes (the paper's system model, Section 3: fully connected network,
// full duplex, separate collision domains).
//
// Two implementations ship with the module: transport/mem (in-process, for
// tests, examples and single-binary clusters) and transport/tcp (real
// sockets). Applications can supply their own Transport — anything providing
// reliable per-destination FIFO unicast runs the identical protocol stack.
// The discrete-event simulator in internal/netsim does not use this
// interface — it models link timing explicitly.
package transport

import (
	"errors"

	"fsr/internal/ring"
)

// ProcID identifies one process in the group. It is the same type as
// fsr.ProcID, re-exported here so transport implementations outside this
// module never need the internal ring package.
type ProcID = ring.ProcID

// Errors common to all transports.
var (
	// ErrClosed is returned by Send after Close.
	ErrClosed = errors.New("transport: closed")
	// ErrUnknownPeer is returned when the destination is not reachable.
	ErrUnknownPeer = errors.New("transport: unknown peer")
)

// Handler receives one inbound payload. Implementations preserve
// per-sender FIFO order but may invoke the handler concurrently for
// payloads from different senders; handlers must be goroutine-safe. The
// payload buffer is owned by the handler after the call.
type Handler func(from ProcID, payload []byte)

// BatchSender is an optional Transport capability for the hot frame path:
// SendBatch queues several payloads to one peer in order, as one network
// operation where the backend allows (transport/tcp turns a batch into a
// single vectored write). Two contract differences from Send:
//
//   - Ordering: the payloads are delivered in slice order, FIFO with
//     respect to every other Send/SendBatch to the same destination.
//   - Ownership: the payload buffers remain owned by the CALLER once
//     SendBatch returns — the implementation must have fully transmitted
//     or copied them. This is what lets the node recycle encode buffers.
//
// Runtimes type-assert for this interface and fall back to per-payload
// Send when it is absent, so custom transports need not implement it.
type BatchSender interface {
	SendBatch(to ProcID, payloads [][]byte) error
}

// Transport is one process's endpoint: asynchronous reliable FIFO unicast
// to any known peer.
type Transport interface {
	// Self returns the process ID this endpoint belongs to.
	Self() ProcID
	// Send queues payload for delivery to peer `to`. It does not block on
	// the network; delivery is asynchronous but reliable and FIFO per
	// destination as long as neither endpoint crashes.
	Send(to ProcID, payload []byte) error
	// SetHandler installs the inbound payload handler. It must be called
	// before any traffic arrives; implementations buffer until then.
	SetHandler(h Handler)
	// Close releases the endpoint. Pending outbound payloads may be lost
	// (crash semantics).
	Close() error
}
