// Package tcp implements the transport interface over real TCP sockets
// (stdlib net only): length-prefixed frames on one dialed connection per
// destination, which preserves per-destination FIFO exactly like the
// paper's point-to-point channels. Oversized payloads are chunked
// transparently (see chunkMore); receive paths drain every complete frame
// per syscall through one buffered reader.
//
// Topology is static: every endpoint knows the listen address of every
// peer. Outbound connections are dialed lazily on first Send and re-dialed
// after failures; inbound connections are identified by a 4-byte ProcID
// handshake — an ID outside the peer map marks a session client, whose
// inbound connection doubles as the reply path. A write failure surfaces
// as an error from Send — the failure detector above decides what it
// means.
package tcp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"fsr/transport"
)

// Chunked framing: each wire frame is [u32 length][bytes], and a length
// with chunkMore set announces that the payload continues in the next
// frame. Payloads larger than maxChunkSize are split transparently on
// send and reassembled on receive — a protocol payload has no size limit
// (a view-change sync message carrying in-flight 100 KiB message bodies
// legitimately reaches tens of MBs under saturation; a fixed cap treated
// as corruption wedges the view change forever), while a single forged
// length can still only make the receiver allocate maxChunkSize at a time
// up to MaxAssembledSize total.
const (
	chunkMore = 1 << 31
	// maxChunkSize bounds one wire frame's payload bytes; larger chunk
	// announcements are treated as protocol corruption and drop the
	// connection.
	maxChunkSize = 8 << 20
	// MaxAssembledSize bounds one reassembled payload (sanity bound
	// against a malicious unending chunk stream).
	MaxAssembledSize = 1 << 30
)

// MaxFrameSize is the largest single (unchunked) frame on the wire; kept
// as the historical name for the per-frame bound.
const MaxFrameSize = maxChunkSize

// Config describes one TCP endpoint.
type Config struct {
	// Self is this process's ID.
	Self transport.ProcID
	// ListenAddr is the local address to accept peers on, e.g.
	// "127.0.0.1:7001". Required.
	ListenAddr string
	// Peers maps every other process to its listen address.
	Peers map[transport.ProcID]string
	// DialTimeout bounds one connection attempt. Defaults to 3s.
	DialTimeout time.Duration
	// DialBackoff paces reconnection to an unreachable peer: after a
	// failed dial the peer enters backoff (doubling per consecutive
	// failure, capped at DialMaxBackoff) and Sends during the window fail
	// fast without touching the network. Callers that keep sending — the
	// protocol stack emits heartbeats every interval — therefore drive
	// the retry at a bounded rate, so a cluster forms when peers come up
	// out of order and a restarted member reconnects, while a Send never
	// sleeps (a blocking retry here would stall the caller's event loop
	// and starve the failure detector). Defaults to 25ms.
	DialBackoff time.Duration
	// DialMaxBackoff caps the backoff growth. Defaults to 1s.
	DialMaxBackoff time.Duration
}

// Transport is a TCP-backed transport endpoint.
type Transport struct {
	cfg Config
	ln  net.Listener

	mu      sync.Mutex
	handler transport.Handler
	conns   map[transport.ProcID]*peerConn    // outbound, dialed
	replies map[transport.ProcID]*peerConn    // inbound from non-peers (session clients)
	redial  map[transport.ProcID]*redialState // per-peer dial pacing
	inbound map[net.Conn]struct{}             // accepted, closed with the endpoint
	pending []pendingPayload                  // buffered inbound before SetHandler finishes replaying
	replay  bool                              // SetHandler is replaying pending; keep buffering
	closed  bool

	wg sync.WaitGroup
}

var (
	_ transport.Transport   = (*Transport)(nil)
	_ transport.BatchSender = (*Transport)(nil)
)

// peerConn is one dialed outbound connection plus its write state. Writes
// to one peer serialize on the peer's own mutex — never on the transport
// lock — so a slow or wedged successor cannot head-of-line-block traffic
// (catch-up serving, failure-detector heartbeats) to other peers.
type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
	// Write scratch, reused under mu: length prefixes and the vectored
	// write list. One batch of k payloads becomes 2k buffers (header,
	// payload, header, payload, ...) — more for payloads large enough to
	// chunk — flushed by a single net.Buffers write: one writev syscall
	// for any batch that fits the iovec limit, and no per-send header
	// allocation. iovs records how many write buffers each queued payload
	// occupies, for the partial-failure accounting in flush.
	hdrs []byte
	vecs net.Buffers
	iovs []int
}

// appendFrame queues one payload on the scratch write list, split into
// chunkMore-linked chunks when it exceeds maxChunkSize. Callers hold
// pc.mu.
func (pc *peerConn) appendFrame(payload []byte) {
	n := 0
	for len(payload) > maxChunkSize {
		pc.appendChunk(payload[:maxChunkSize], true)
		payload = payload[maxChunkSize:]
		n += 2
	}
	pc.appendChunk(payload, false)
	pc.iovs = append(pc.iovs, n+2)
}

func (pc *peerConn) appendChunk(chunk []byte, more bool) {
	length := uint32(len(chunk))
	if more {
		length |= chunkMore
	}
	off := len(pc.hdrs)
	pc.hdrs = binary.LittleEndian.AppendUint32(pc.hdrs, length)
	pc.vecs = append(pc.vecs, pc.hdrs[off:off+4], chunk)
}

// flush writes the queued (header, chunk) list as one vectored write and
// resets the scratch. On error it also reports how many payloads were
// fully consumed by the kernel before the failure, so a retry can skip
// them: a fully-consumed payload may already have reached the receiver,
// and re-sending it on a fresh connection would double-deliver (a
// duplicated ack for an already-pruned segment is a protocol error that
// halts the receiving node). A partially-consumed payload is safe to
// resend whole — the receiver discards the truncated tail of the dead
// connection's stream (a chunk sequence cut short never completes, so a
// partially-shipped chunked payload is never delivered). Callers hold
// pc.mu.
func (pc *peerConn) flush() (completedFrames int, err error) {
	v := pc.vecs // WriteTo consumes its receiver; keep pc.vecs for reuse
	_, err = v.WriteTo(pc.conn)
	if err != nil {
		// v retains the unwritten suffix (a partially-written buffer stays,
		// resliced); fully consumed buffers = total - remaining, and a
		// payload is complete only when every one of its header and chunk
		// buffers is.
		consumed := len(pc.vecs) - len(v)
		for _, n := range pc.iovs {
			if consumed < n {
				break
			}
			consumed -= n
			completedFrames++
		}
	}
	clear(pc.vecs) // drop payload references so pooled buffers are not pinned
	pc.vecs = pc.vecs[:0]
	pc.hdrs = pc.hdrs[:0]
	pc.iovs = pc.iovs[:0]
	return completedFrames, err
}

// New starts listening and returns the endpoint.
func New(cfg Config) (*Transport, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 25 * time.Millisecond
	}
	if cfg.DialMaxBackoff <= 0 {
		cfg.DialMaxBackoff = time.Second
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen %s: %w", cfg.ListenAddr, err)
	}
	t := &Transport{
		cfg:     cfg,
		ln:      ln,
		conns:   make(map[transport.ProcID]*peerConn),
		replies: make(map[transport.ProcID]*peerConn),
		redial:  make(map[transport.ProcID]*redialState),
		inbound: make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the actual listen address (useful with ":0").
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// SetPeers replaces the peer address map. Intended for bootstrap flows
// where endpoints bind ephemeral ports first and exchange addresses
// afterwards; existing connections are unaffected. A peer whose address
// changed (e.g. a member restarted on a fresh ephemeral port) leaves
// backoff immediately.
func (t *Transport) SetPeers(peers map[transport.ProcID]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, addr := range peers {
		if t.cfg.Peers[id] != addr {
			delete(t.redial, id)
		}
	}
	t.cfg.Peers = peers
}

// redialState paces dials to one currently-unreachable peer.
type redialState struct {
	until   time.Time     // no dial before this instant
	backoff time.Duration // next window length
	lastErr error         // what the last real attempt said
}

// Self implements transport.Transport.
func (t *Transport) Self() transport.ProcID { return t.cfg.Self }

// pendingPayload is one inbound payload buffered before SetHandler.
type pendingPayload struct {
	from    transport.ProcID
	payload []byte
}

// SetHandler implements transport.Transport. Payloads that arrive while
// the pre-handler backlog is being replayed keep queuing behind it, so the
// per-sender FIFO guarantee holds across handler installation.
func (t *Transport) SetHandler(h transport.Handler) {
	t.mu.Lock()
	t.handler = h
	t.replay = true
	t.mu.Unlock()
	for {
		t.mu.Lock()
		if len(t.pending) == 0 {
			t.replay = false
			t.mu.Unlock()
			return
		}
		batch := t.pending
		t.pending = nil
		t.mu.Unlock()
		for _, p := range batch {
			h(p.from, p.payload)
		}
	}
}

// Send implements transport.Transport: it frames payload and writes it on
// the (possibly freshly dialed) connection to the peer. Writes to one peer
// serialize on that peer's own lock; a failed write closes the connection
// and returns the error after one redial attempt.
func (t *Transport) Send(to transport.ProcID, payload []byte) error {
	return t.send(to, payload)
}

// SendBatch implements transport.BatchSender: the payloads go out in order
// as one length-prefixed vectored write — a single syscall for the whole
// batch on the common path. The buffers are fully written (or the batch has
// failed) by return, so the caller may reuse them immediately.
func (t *Transport) SendBatch(to transport.ProcID, payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	return t.send(to, payloads...)
}

func (t *Transport) send(to transport.ProcID, payloads ...[]byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return transport.ErrClosed
	}
	t.mu.Unlock()
	done, err := t.trySend(to, payloads)
	if err == nil {
		return nil
	}
	// One redial: the previous connection may have died idle. Only the
	// frames the kernel had not fully accepted are rewritten — anything
	// fully consumed before the failure may already be at the receiver,
	// and resending it would double-deliver. (Fully-consumed-but-lost
	// frames die with the connection, the same crash-loss semantics a
	// successful-then-reset single Send always had.)
	t.dropConn(to)
	_, err = t.trySend(to, payloads[done:])
	return err
}

func (t *Transport) trySend(to transport.ProcID, payloads [][]byte) (completedFrames int, err error) {
	pc, err := t.connTo(to)
	if err != nil {
		return 0, err
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for _, p := range payloads {
		pc.appendFrame(p)
	}
	done, err := pc.flush()
	if err != nil {
		return done, fmt.Errorf("tcp: write %d payload(s) to %d: %w", len(payloads), to, err)
	}
	return len(payloads), nil
}

// connTo returns (dialing if necessary) the outbound connection to a peer.
// Failed dials put the peer in a doubling backoff window during which
// further Sends fail fast without a network attempt — reconnection is
// paced, never blocking (see Config.DialBackoff).
func (t *Transport) connTo(to transport.ProcID) (*peerConn, error) {
	t.mu.Lock()
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.cfg.Peers[to]
	if !ok {
		// Not a configured peer: a session client is reachable only over
		// the inbound connection it dialed us on (clients have no
		// listener).
		pc, replyOK := t.replies[to]
		t.mu.Unlock()
		if replyOK {
			return pc, nil
		}
		return nil, fmt.Errorf("tcp: peer %d: %w", to, transport.ErrUnknownPeer)
	}
	if rs := t.redial[to]; rs != nil && time.Now().Before(rs.until) {
		err := rs.lastErr
		t.mu.Unlock()
		return nil, fmt.Errorf("tcp: peer %d in dial backoff: %w", to, err)
	}
	t.mu.Unlock()
	c, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
	if err != nil {
		err = fmt.Errorf("tcp: dial %d@%s: %w", to, addr, err)
		t.mu.Lock()
		rs := t.redial[to]
		if rs == nil {
			rs = &redialState{backoff: t.cfg.DialBackoff}
			t.redial[to] = rs
		} else {
			rs.backoff = min(rs.backoff*2, t.cfg.DialMaxBackoff)
		}
		rs.until = time.Now().Add(rs.backoff)
		rs.lastErr = err
		t.mu.Unlock()
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	// Handshake: announce who we are.
	id := make([]byte, 4)
	binary.LittleEndian.PutUint32(id, uint32(t.cfg.Self))
	if _, err := c.Write(id); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("tcp: handshake with %d: %w", to, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		_ = c.Close()
		return nil, transport.ErrClosed
	}
	delete(t.redial, to)
	if prev, ok := t.conns[to]; ok {
		_ = c.Close() // lost a dial race; reuse the existing connection
		return prev, nil
	}
	pc := &peerConn{conn: c}
	t.conns[to] = pc
	return pc, nil
}

func (t *Transport) dropConn(to transport.ProcID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if pc, ok := t.conns[to]; ok {
		_ = pc.conn.Close()
		delete(t.conns, to)
	}
	if pc, ok := t.replies[to]; ok {
		// A client's broken reply path is not redialable from here; the
		// client reconnects and re-registers.
		_ = pc.conn.Close()
		delete(t.replies, to)
	}
}

// acceptLoop accepts inbound peer connections until Close.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop consumes frames from one inbound connection. A sender outside
// the peer map — a session client, identified by its handshake ID — gets
// the connection registered as its reply path, so the member can push
// acks, events and redirects back without dialing (clients have no
// listener).
func (t *Transport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		_ = conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	var idBuf [4]byte
	if _, err := io.ReadFull(conn, idBuf[:]); err != nil {
		return
	}
	from := transport.ProcID(binary.LittleEndian.Uint32(idBuf[:]))
	t.mu.Lock()
	if _, isPeer := t.cfg.Peers[from]; !isPeer && !t.closed {
		t.replies[from] = &peerConn{conn: conn}
		defer t.dropReply(from, conn)
	}
	t.mu.Unlock()
	// Connection over (EOF, reset, or corrupt framing): drop it.
	_ = readFrames(conn, func(payload []byte) {
		t.dispatch(from, payload)
	})
}

// dropReply removes a client's reply path if conn still owns it.
func (t *Transport) dropReply(id transport.ProcID, conn net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if pc, ok := t.replies[id]; ok && pc.conn == conn {
		delete(t.replies, id)
	}
}

// readBufferSize is the per-connection receive buffer: large enough to
// drain a saturated sender's burst of 8 KiB-segment frames in one
// syscall.
const readBufferSize = 256 << 10

// readFrames drains length-prefixed frames from r, invoking fn with each
// reassembled payload (owned by fn). One buffered reader serves the whole
// stream, so a burst of frames arriving together costs one read syscall,
// not two per frame — the receive-side half of the transport's batching.
// Chunked payloads (chunkMore-linked frames) are reassembled here. It
// returns when the stream ends or a frame violates the chunk bounds.
func readFrames(r io.Reader, fn func(payload []byte)) error {
	br := bufio.NewReaderSize(r, readBufferSize)
	var hdr [4]byte
	var assembling []byte // nil unless mid-way through a chunked payload
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return err
		}
		length := binary.LittleEndian.Uint32(hdr[:])
		more := length&chunkMore != 0
		size := length &^ uint32(chunkMore)
		if size > maxChunkSize {
			return fmt.Errorf("tcp: chunk of %d bytes exceeds limit", size)
		}
		if len(assembling)+int(size) > MaxAssembledSize {
			return fmt.Errorf("tcp: chunked payload exceeds %d bytes", MaxAssembledSize)
		}
		if assembling == nil && !more {
			// Fast path: the single-frame payload every protocol message
			// but a giant view-change sync takes.
			payload := make([]byte, size)
			if _, err := io.ReadFull(br, payload); err != nil {
				return err
			}
			fn(payload)
			continue
		}
		off := len(assembling)
		assembling = append(assembling, make([]byte, size)...)
		if _, err := io.ReadFull(br, assembling[off:]); err != nil {
			return err
		}
		if !more {
			fn(assembling)
			assembling = nil
		}
	}
}

func (t *Transport) dispatch(from transport.ProcID, payload []byte) {
	t.mu.Lock()
	h := t.handler
	if h == nil || t.replay {
		t.pending = append(t.pending, pendingPayload{from: from, payload: payload})
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	h(from, payload)
}

// Close implements transport.Transport.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = map[transport.ProcID]*peerConn{}
	t.replies = map[transport.ProcID]*peerConn{} // closed via the inbound set
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()
	err := t.ln.Close()
	for _, pc := range conns {
		_ = pc.conn.Close()
	}
	for _, c := range inbound {
		_ = c.Close()
	}
	t.wg.Wait()
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}
