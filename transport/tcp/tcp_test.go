package tcp

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"fsr/transport"
)

// pair builds two endpoints that know each other on loopback.
func pair(t *testing.T) (*Transport, *Transport) {
	t.Helper()
	a, err := New(Config{Self: 1, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Self: 2, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	a.cfg.Peers = map[transport.ProcID]string{2: b.Addr()}
	b.cfg.Peers = map[transport.ProcID]string{1: a.Addr()}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

type sink struct {
	mu  sync.Mutex
	got []string
}

func (s *sink) handler(from transport.ProcID, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.got = append(s.got, fmt.Sprintf("%d:%s", from, payload))
}

func (s *sink) waitN(t *testing.T, n int) []string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		if len(s.got) >= n {
			out := append([]string(nil), s.got...)
			s.mu.Unlock()
			return out
		}
		s.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %d payloads", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSendReceiveFIFO(t *testing.T) {
	a, b := pair(t)
	var s sink
	b.SetHandler(s.handler)
	for i := range 200 {
		if err := a.Send(2, []byte(fmt.Sprintf("m%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := s.waitN(t, 200)
	for i, g := range got {
		if want := fmt.Sprintf("1:m%04d", i); g != want {
			t.Fatalf("frame %d = %q want %q", i, g, want)
		}
	}
}

func TestBidirectional(t *testing.T) {
	a, b := pair(t)
	var sa, sb sink
	a.SetHandler(sa.handler)
	b.SetHandler(sb.handler)
	if err := a.Send(2, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(1, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	if got := sb.waitN(t, 1); got[0] != "1:ping" {
		t.Fatalf("b got %v", got)
	}
	if got := sa.waitN(t, 1); got[0] != "2:pong" {
		t.Fatalf("a got %v", got)
	}
}

func TestLargeFrame(t *testing.T) {
	a, b := pair(t)
	var s sink
	b.SetHandler(s.handler)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	if err := a.Send(2, big); err != nil {
		t.Fatal(err)
	}
	got := s.waitN(t, 1)
	if len(got[0]) != len("2:")+len(big) {
		t.Fatalf("frame size %d, want %d", len(got[0]), len(big)+2)
	}
}

func TestSendToUnknownPeer(t *testing.T) {
	a, _ := pair(t)
	if err := a.Send(42, []byte("x")); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestSendAfterClose(t *testing.T) {
	a, _ := pair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("x")); err != transport.ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestReconnectAfterPeerRestart(t *testing.T) {
	a, b := pair(t)
	var s sink
	b.SetHandler(s.handler)
	if err := a.Send(2, []byte("one")); err != nil {
		t.Fatal(err)
	}
	s.waitN(t, 1)
	// Restart b on the same address.
	addr := b.Addr()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := New(Config{Self: 2, ListenAddr: addr, Peers: map[transport.ProcID]string{1: a.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	var s2 sink
	b2.SetHandler(s2.handler)
	// The stale connection will fail; Send must redial transparently
	// (possibly needing one retry while the OS tears the old socket down).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := a.Send(2, []byte("two")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Send never succeeded after peer restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s2.waitN(t, 1); got[0] != "1:two" {
		t.Fatalf("after restart got %v", got)
	}
}

func TestThreeNodeMesh(t *testing.T) {
	mk := func(id transport.ProcID) *Transport {
		tr, err := New(Config{Self: id, ListenAddr: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		return tr
	}
	ts := []*Transport{mk(0), mk(1), mk(2)}
	for _, tr := range ts {
		tr.cfg.Peers = map[transport.ProcID]string{}
		for _, other := range ts {
			if other.Self() != tr.Self() {
				tr.cfg.Peers[other.Self()] = other.Addr()
			}
		}
	}
	sinks := make([]*sink, 3)
	for i, tr := range ts {
		sinks[i] = &sink{}
		tr.SetHandler(sinks[i].handler)
	}
	// Ring traffic: i -> i+1.
	for i, tr := range ts {
		to := transport.ProcID((i + 1) % 3)
		for j := range 20 {
			if err := tr.Send(to, []byte(fmt.Sprintf("%d", j))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range sinks {
		got := sinks[i].waitN(t, 20)
		from := (i + 2) % 3
		for j, g := range got {
			if want := fmt.Sprintf("%d:%d", from, j); g != want {
				t.Fatalf("node %d frame %d = %q want %q", i, j, g, want)
			}
		}
	}
}

// TestDialBackoffConnectsWhenPeerComesUpLate: a caller that keeps sending
// (the way the protocol stack emits heartbeats) connects as soon as the
// late peer's listener appears, even though every individual Send is
// non-blocking — the paced redial bridges out-of-order startup and member
// restarts.
func TestDialBackoffConnectsWhenPeerComesUpLate(t *testing.T) {
	// Reserve a loopback address, then free it for the late peer.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	_ = probe.Close()

	a, err := New(Config{
		Self:        1,
		ListenAddr:  "127.0.0.1:0",
		Peers:       map[transport.ProcID]string{2: addr},
		DialBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if err := a.Send(2, []byte("early bird")); err == nil {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Bring the peer up only after the first dials have failed.
	time.Sleep(100 * time.Millisecond)
	b, err := New(Config{Self: 2, ListenAddr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	s := &sink{}
	b.SetHandler(s.handler)

	select {
	case <-done:
	case <-time.After(6 * time.Second):
		t.Fatal("sender loop never connected to the late peer")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.got)
		s.mu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("payload never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDialBackoffNeverBlocks: Sends to an absent peer must fail fast —
// both the attempt that dials and the ones landing inside the backoff
// window — because a sleeping Send would stall the caller's event loop
// and starve its failure detector.
func TestDialBackoffNeverBlocks(t *testing.T) {
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	_ = probe.Close()

	a, err := New(Config{
		Self:        1,
		ListenAddr:  "127.0.0.1:0",
		Peers:       map[transport.ProcID]string{2: addr},
		DialBackoff: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 10; i++ {
		start := time.Now()
		if err := a.Send(2, []byte("void")); err == nil {
			t.Fatal("Send to absent peer succeeded")
		}
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Fatalf("Send %d blocked for %v", i, elapsed)
		}
	}
	// The backoff is per-peer state, not a permanent ban: once the window
	// has passed, the next Send dials again.
	time.Sleep(250 * time.Millisecond)
	if err := a.Send(2, []byte("still void")); err == nil {
		t.Fatal("Send to absent peer succeeded after backoff")
	}
}
