package tcp

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"fsr/transport"
)

// pair builds two endpoints that know each other on loopback.
func pair(t *testing.T) (*Transport, *Transport) {
	t.Helper()
	a, err := New(Config{Self: 1, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Self: 2, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	a.cfg.Peers = map[transport.ProcID]string{2: b.Addr()}
	b.cfg.Peers = map[transport.ProcID]string{1: a.Addr()}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

type sink struct {
	mu  sync.Mutex
	got []string
}

func (s *sink) handler(from transport.ProcID, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.got = append(s.got, fmt.Sprintf("%d:%s", from, payload))
}

func (s *sink) waitN(t *testing.T, n int) []string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		if len(s.got) >= n {
			out := append([]string(nil), s.got...)
			s.mu.Unlock()
			return out
		}
		s.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %d payloads", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSendReceiveFIFO(t *testing.T) {
	a, b := pair(t)
	var s sink
	b.SetHandler(s.handler)
	for i := range 200 {
		if err := a.Send(2, []byte(fmt.Sprintf("m%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := s.waitN(t, 200)
	for i, g := range got {
		if want := fmt.Sprintf("1:m%04d", i); g != want {
			t.Fatalf("frame %d = %q want %q", i, g, want)
		}
	}
}

func TestBidirectional(t *testing.T) {
	a, b := pair(t)
	var sa, sb sink
	a.SetHandler(sa.handler)
	b.SetHandler(sb.handler)
	if err := a.Send(2, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(1, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	if got := sb.waitN(t, 1); got[0] != "1:ping" {
		t.Fatalf("b got %v", got)
	}
	if got := sa.waitN(t, 1); got[0] != "2:pong" {
		t.Fatalf("a got %v", got)
	}
}

func TestLargeFrame(t *testing.T) {
	a, b := pair(t)
	var s sink
	b.SetHandler(s.handler)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	if err := a.Send(2, big); err != nil {
		t.Fatal(err)
	}
	got := s.waitN(t, 1)
	if len(got[0]) != len("2:")+len(big) {
		t.Fatalf("frame size %d, want %d", len(got[0]), len(big)+2)
	}
}

func TestSendToUnknownPeer(t *testing.T) {
	a, _ := pair(t)
	if err := a.Send(42, []byte("x")); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestSendAfterClose(t *testing.T) {
	a, _ := pair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("x")); err != transport.ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestReconnectAfterPeerRestart(t *testing.T) {
	a, b := pair(t)
	var s sink
	b.SetHandler(s.handler)
	if err := a.Send(2, []byte("one")); err != nil {
		t.Fatal(err)
	}
	s.waitN(t, 1)
	// Restart b on the same address.
	addr := b.Addr()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := New(Config{Self: 2, ListenAddr: addr, Peers: map[transport.ProcID]string{1: a.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	var s2 sink
	b2.SetHandler(s2.handler)
	// The stale connection dies with the restart; a caller that keeps
	// sending (the way the protocol stack does) must get through once the
	// transport notices the dead socket and redials. A single Send may
	// report success for a frame the RST then eats — write success never
	// meant delivery — so the loop asserts eventual delivery, not the
	// first nil error.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_ = a.Send(2, []byte("two")) // errors drive the redial
		s2.mu.Lock()
		n := len(s2.got)
		s2.mu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no frame ever delivered after peer restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	s2.mu.Lock()
	first := s2.got[0]
	s2.mu.Unlock()
	if first != "1:two" {
		t.Fatalf("after restart got %q", first)
	}
}

func TestThreeNodeMesh(t *testing.T) {
	mk := func(id transport.ProcID) *Transport {
		tr, err := New(Config{Self: id, ListenAddr: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		return tr
	}
	ts := []*Transport{mk(0), mk(1), mk(2)}
	for _, tr := range ts {
		tr.cfg.Peers = map[transport.ProcID]string{}
		for _, other := range ts {
			if other.Self() != tr.Self() {
				tr.cfg.Peers[other.Self()] = other.Addr()
			}
		}
	}
	sinks := make([]*sink, 3)
	for i, tr := range ts {
		sinks[i] = &sink{}
		tr.SetHandler(sinks[i].handler)
	}
	// Ring traffic: i -> i+1.
	for i, tr := range ts {
		to := transport.ProcID((i + 1) % 3)
		for j := range 20 {
			if err := tr.Send(to, []byte(fmt.Sprintf("%d", j))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range sinks {
		got := sinks[i].waitN(t, 20)
		from := (i + 2) % 3
		for j, g := range got {
			if want := fmt.Sprintf("%d:%d", from, j); g != want {
				t.Fatalf("node %d frame %d = %q want %q", i, j, g, want)
			}
		}
	}
}

// TestDialBackoffConnectsWhenPeerComesUpLate: a caller that keeps sending
// (the way the protocol stack emits heartbeats) connects as soon as the
// late peer's listener appears, even though every individual Send is
// non-blocking — the paced redial bridges out-of-order startup and member
// restarts.
func TestDialBackoffConnectsWhenPeerComesUpLate(t *testing.T) {
	// Reserve a loopback address, then free it for the late peer.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	_ = probe.Close()

	a, err := New(Config{
		Self:        1,
		ListenAddr:  "127.0.0.1:0",
		Peers:       map[transport.ProcID]string{2: addr},
		DialBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if err := a.Send(2, []byte("early bird")); err == nil {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Bring the peer up only after the first dials have failed.
	time.Sleep(100 * time.Millisecond)
	b, err := New(Config{Self: 2, ListenAddr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	s := &sink{}
	b.SetHandler(s.handler)

	select {
	case <-done:
	case <-time.After(6 * time.Second):
		t.Fatal("sender loop never connected to the late peer")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.got)
		s.mu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("payload never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDialBackoffNeverBlocks: Sends to an absent peer must fail fast —
// both the attempt that dials and the ones landing inside the backoff
// window — because a sleeping Send would stall the caller's event loop
// and starve its failure detector.
func TestDialBackoffNeverBlocks(t *testing.T) {
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	_ = probe.Close()

	a, err := New(Config{
		Self:        1,
		ListenAddr:  "127.0.0.1:0",
		Peers:       map[transport.ProcID]string{2: addr},
		DialBackoff: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 10; i++ {
		start := time.Now()
		if err := a.Send(2, []byte("void")); err == nil {
			t.Fatal("Send to absent peer succeeded")
		}
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Fatalf("Send %d blocked for %v", i, elapsed)
		}
	}
	// The backoff is per-peer state, not a permanent ban: once the window
	// has passed, the next Send dials again.
	time.Sleep(250 * time.Millisecond)
	if err := a.Send(2, []byte("still void")); err == nil {
		t.Fatal("Send to absent peer succeeded after backoff")
	}
}

// TestSendBatchFIFO: one batch arrives as individual frames, in order,
// interleaved correctly with surrounding single Sends.
func TestSendBatchFIFO(t *testing.T) {
	a, b := pair(t)
	var s sink
	b.SetHandler(s.handler)
	if err := a.Send(2, []byte("pre")); err != nil {
		t.Fatal(err)
	}
	batch := make([][]byte, 50)
	for i := range batch {
		batch[i] = []byte(fmt.Sprintf("b%04d", i))
	}
	if err := a.SendBatch(2, batch); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("post")); err != nil {
		t.Fatal(err)
	}
	got := s.waitN(t, 52)
	if got[0] != "1:pre" || got[51] != "1:post" {
		t.Fatalf("batch not bracketed: first=%q last=%q", got[0], got[51])
	}
	for i := range batch {
		if want := fmt.Sprintf("1:b%04d", i); got[i+1] != want {
			t.Fatalf("batch frame %d = %q want %q", i, got[i+1], want)
		}
	}
}

// TestSendBatchCallerKeepsBuffers: the batch contract says the payload
// buffers are the caller's again once SendBatch returns — scribbling over
// them immediately must not corrupt what the receiver sees.
func TestSendBatchCallerKeepsBuffers(t *testing.T) {
	a, b := pair(t)
	var s sink
	b.SetHandler(s.handler)
	batch := [][]byte{[]byte("alpha"), []byte("beta!"), []byte("gamma")}
	want := []string{"1:alpha", "1:beta!", "1:gamma"}
	if err := a.SendBatch(2, batch); err != nil {
		t.Fatal(err)
	}
	for _, p := range batch {
		for i := range p {
			p[i] = 'X'
		}
	}
	got := s.waitN(t, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d = %q want %q (buffer reuse corrupted the wire)", i, got[i], want[i])
		}
	}
}

// TestSendBatchEmpty is a no-op, not an error.
func TestSendBatchEmpty(t *testing.T) {
	a, _ := pair(t)
	if err := a.SendBatch(2, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPerPeerWritersIndependent: a peer whose connection backs up (nobody
// reads, socket buffers sized down and full) must not block Sends to a
// different, healthy peer — the regression test for the old transport-wide
// write lock.
func TestPerPeerWritersIndependent(t *testing.T) {
	// Stuck peer: accepts and then never reads.
	stuck, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stuck.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := stuck.Accept()
		if err != nil {
			return
		}
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetReadBuffer(4096)
		}
		accepted <- c // held open, never read
	}()

	a, err := New(Config{Self: 1, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Self: 2, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.cfg.Peers = map[transport.ProcID]string{2: b.Addr(), 3: stuck.Addr().String()}

	// Wedge the writer to peer 3: pump large frames until a write blocks.
	wedged := make(chan struct{})
	go func() {
		defer close(wedged)
		payload := make([]byte, 1<<20)
		for i := 0; i < 64; i++ {
			if err := a.Send(3, payload); err != nil {
				return
			}
		}
	}()
	select {
	case <-wedged:
		t.Skip("could not wedge the stuck peer's socket on this kernel")
	case <-time.After(500 * time.Millisecond):
		// Writer to peer 3 is now blocked mid-write.
	}

	var s sink
	b.SetHandler(s.handler)
	done := make(chan error, 1)
	go func() {
		done <- a.Send(2, []byte("healthy"))
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("send to healthy peer failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send to healthy peer blocked behind a stuck peer (head-of-line blocking)")
	}
	if got := s.waitN(t, 1); got[0] != "1:healthy" {
		t.Fatalf("got %v", got)
	}
	if c, ok := <-accepted; ok && c != nil {
		_ = c.Close()
	}
}
