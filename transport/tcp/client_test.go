package tcp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"fsr/transport"
)

// countingReader counts Read calls — a stand-in for syscalls on a socket.
type countingReader struct {
	r     *bytes.Reader
	reads int
}

func (c *countingReader) Read(p []byte) (int, error) {
	c.reads++
	return c.r.Read(p)
}

// TestReadFramesBatchesReads: the receive path must drain every complete
// frame per underlying read instead of issuing two reads (header, payload)
// per frame — the regression guard for receive-side batching.
func TestReadFramesBatchesReads(t *testing.T) {
	const frames = 1000
	var stream []byte
	for i := range frames {
		payload := fmt.Appendf(nil, "frame-%d-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx", i)
		stream = binary.LittleEndian.AppendUint32(stream, uint32(len(payload)))
		stream = append(stream, payload...)
	}
	cr := &countingReader{r: bytes.NewReader(stream)}
	got := 0
	if err := readFrames(cr, func(payload []byte) { got++ }); err == nil {
		t.Fatal("expected EOF error at stream end")
	}
	if got != frames {
		t.Fatalf("delivered %d frames, want %d", got, frames)
	}
	// Pre-batching this was 2 reads per frame (2000). With a buffered
	// reader the whole burst should cost a handful of reads.
	if cr.reads > frames/10 {
		t.Fatalf("receive path issued %d reads for %d frames; batching regressed", cr.reads, frames)
	}
}

// TestReadFramesAllocsPerFrame: the receive path allocates the payload
// buffer (owned by the handler) and nothing else per frame.
func TestReadFramesAllocsPerFrame(t *testing.T) {
	const frames = 1000
	var stream []byte
	for range frames {
		payload := make([]byte, 64)
		stream = binary.LittleEndian.AppendUint32(stream, uint32(len(payload)))
		stream = append(stream, payload...)
	}
	allocs := testing.AllocsPerRun(5, func() {
		_ = readFrames(bytes.NewReader(stream), func([]byte) {})
	})
	// One payload alloc per frame plus the shared bufio buffer and
	// bytes.Reader; anything near two per frame means a per-frame buffer
	// crept back in.
	if perFrame := allocs / frames; perFrame > 1.5 {
		t.Fatalf("%.2f allocs per received frame, want ~1 (payload only)", perFrame)
	}
}

// TestClientConnReplyPath: a non-peer client dials a member with DialConn;
// the member replies over the same inbound connection via plain Send to
// the client's handshake ID.
func TestClientConnReplyPath(t *testing.T) {
	member, err := New(Config{Self: 1, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer member.Close()

	const clientID = transport.ProcID(1<<31 + 7)
	echoed := make(chan []byte, 16)
	member.SetHandler(func(from transport.ProcID, payload []byte) {
		if from != clientID {
			t.Errorf("member saw sender %d, want %d", from, clientID)
			return
		}
		// Reply path: the client is not in Peers, so this must ride the
		// inbound connection.
		if err := member.Send(from, append([]byte("re:"), payload...)); err != nil {
			t.Errorf("reply to client: %v", err)
		}
	})

	cc, err := DialConn(member.Addr(), clientID, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	cc.SetHandler(func(payload []byte) {
		echoed <- append([]byte(nil), payload...)
	})
	for i := range 5 {
		if err := cc.Send(fmt.Appendf(nil, "ping-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := range 5 {
		select {
		case got := <-echoed:
			if want := fmt.Sprintf("re:ping-%d", i); string(got) != want {
				t.Fatalf("reply %d: got %q want %q", i, got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("reply %d never arrived", i)
		}
	}

	// After the client hangs up, the reply path must be gone.
	_ = cc.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := member.Send(clientID, []byte("late")); err != nil {
			break // reply path dropped
		}
		if time.Now().After(deadline) {
			t.Fatal("member still has a reply path to a disconnected client")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLargePayloadChunking: payloads above the per-frame chunk bound must
// travel intact — chunked transparently on send, reassembled on receive.
// (A view-change sync message under a saturated 100 KiB workload
// legitimately reaches tens of MBs; before chunking it was dropped as
// corruption and the view change wedged forever.)
func TestLargePayloadChunking(t *testing.T) {
	a, err := New(Config{Self: 1, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Self: 2, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeers(map[transport.ProcID]string{2: b.Addr()})

	type rx struct {
		from    transport.ProcID
		payload []byte
	}
	got := make(chan rx, 8)
	b.SetHandler(func(from transport.ProcID, payload []byte) {
		got <- rx{from: from, payload: payload}
	})

	big := make([]byte, 20<<20) // 20 MiB: three chunks
	for i := range big {
		big[i] = byte(i * 7)
	}
	small := []byte("after the giant")
	if err := a.Send(2, big); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, small); err != nil {
		t.Fatal(err)
	}
	for i, want := range [][]byte{big, small} {
		select {
		case r := <-got:
			if r.from != 1 {
				t.Fatalf("payload %d from %d, want 1", i, r.from)
			}
			if !bytes.Equal(r.payload, want) {
				t.Fatalf("payload %d corrupted: %d bytes, want %d", i, len(r.payload), len(want))
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("payload %d never arrived", i)
		}
	}
}

// TestReadFramesRejectsOversizedChunk: a forged chunk length must kill the
// stream without a giant allocation.
func TestReadFramesRejectsOversizedChunk(t *testing.T) {
	var stream []byte
	stream = binary.LittleEndian.AppendUint32(stream, maxChunkSize+1)
	if err := readFrames(bytes.NewReader(stream), func([]byte) {
		t.Fatal("frame delivered from corrupt stream")
	}); err == nil {
		t.Fatal("oversized chunk accepted")
	}
}

// TestClientConnChunksLargeSend: the client side must chunk oversized
// payloads exactly like the member side, or the receiving member would
// kill every connection the session retries the payload on.
func TestClientConnChunksLargeSend(t *testing.T) {
	member, err := New(Config{Self: 1, ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer member.Close()
	got := make(chan int, 4)
	member.SetHandler(func(from transport.ProcID, payload []byte) {
		for _, b := range payload {
			if b != 0x5a {
				t.Errorf("corrupted byte %x", b)
				break
			}
		}
		got <- len(payload)
	})
	cc, err := DialConn(member.Addr(), 1<<31+1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	big := make([]byte, maxChunkSize+maxChunkSize/2) // 1.5 chunks
	for i := range big {
		big[i] = 0x5a
	}
	if err := cc.Send(big); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n != len(big) {
			t.Fatalf("member received %d bytes, want %d", n, len(big))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("oversized client payload never arrived (connection killed?)")
	}
}
