package tcp

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"fsr/transport"
)

// ClientConn is the client side of one connection to a group member: a
// session client has no listener and no peer map — it dials a member,
// handshakes with its client ID, and then exchanges length-prefixed
// payloads both ways on the one connection (the member replies on it; see
// Transport.readLoop's reply path).
//
// ClientConn carries opaque payloads only; the session layer above
// (fsr.DialSession via package client) owns retries and failover.
type ClientConn struct {
	conn net.Conn

	wmu  sync.Mutex
	hdrs []byte
	vecs net.Buffers

	mu      sync.Mutex
	handler func(payload []byte)
	started bool
	closed  bool

	wg sync.WaitGroup
}

// DialConn connects to a member's listen address, identifying as client
// id (which must be unique across live clients and disjoint from member
// IDs — see fsr.ClientIDBase). timeout bounds the connection attempt
// (0 = 3s).
func DialConn(addr string, id transport.ProcID, timeout time.Duration) (*ClientConn, error) {
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("tcp: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(id))
	if _, err := conn.Write(hello[:]); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("tcp: handshake with %s: %w", addr, err)
	}
	return &ClientConn{conn: conn}, nil
}

// SetHandler installs the inbound payload handler and starts the read
// loop. Must be called exactly once, before any reply is expected.
func (c *ClientConn) SetHandler(h func(payload []byte)) {
	c.mu.Lock()
	c.handler = h
	start := !c.started && !c.closed
	c.started = true
	c.mu.Unlock()
	if start {
		c.wg.Add(1)
		go c.readLoop()
	}
}

func (c *ClientConn) readLoop() {
	defer c.wg.Done()
	_ = readFrames(c.conn, func(payload []byte) {
		c.mu.Lock()
		h := c.handler
		c.mu.Unlock()
		if h != nil {
			h(payload)
		}
	})
	_ = c.conn.Close() // stream over: make writes fail fast too
}

// Send writes one payload, chunked like the member side when it exceeds
// the per-frame bound (an oversized single frame would be rejected as
// corruption by the receiving member, killing every connection the
// session retries on). An error means the connection is unusable (the
// caller fails over; there is no redial here).
func (c *ClientConn) Send(payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	for len(payload) > maxChunkSize {
		c.appendChunk(payload[:maxChunkSize], true)
		payload = payload[maxChunkSize:]
	}
	c.appendChunk(payload, false)
	v := c.vecs
	_, err := v.WriteTo(c.conn)
	clear(c.vecs)
	c.vecs = c.vecs[:0]
	c.hdrs = c.hdrs[:0]
	if err != nil {
		return fmt.Errorf("tcp: client write: %w", err)
	}
	return nil
}

// appendChunk queues one length-prefixed chunk. Callers hold c.wmu.
func (c *ClientConn) appendChunk(chunk []byte, more bool) {
	length := uint32(len(chunk))
	if more {
		length |= chunkMore
	}
	off := len(c.hdrs)
	c.hdrs = binary.LittleEndian.AppendUint32(c.hdrs, length)
	c.vecs = append(c.vecs, c.hdrs[off:off+4], chunk)
}

// Close tears the connection down (idempotent).
func (c *ClientConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.wg.Wait()
	return err
}
