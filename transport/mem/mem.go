// Package mem implements the transport interface in process memory: a
// Network hub connecting any number of endpoints with reliable FIFO
// unbounded queues, optional per-hop latency, and fault injection (crash,
// directed link cuts) for tests.
//
// Delivery model: each endpoint has one dispatch goroutine that invokes the
// installed handler serially, preserving global arrival order at that
// endpoint (and therefore per-sender FIFO). Send never blocks: queues grow
// as needed, mirroring kernel socket buffers plus sender-side user-space
// queues; flow control belongs to the layer above (the node applies
// backpressure on Broadcast).
//
// Crash semantics are deterministic: Crash(id) atomically — under the hub
// lock, with respect to every concurrent Send — detaches the endpoint,
// discards every frame still queued for it, and purges frames it had
// already sent from every other endpoint's queue. After Crash returns, no
// frame from or to the crashed endpoint will ever reach a handler, except
// frames the receiver's dispatch goroutine had already popped for delivery
// (the analogue of bytes the receiving process already read from its
// socket). Tests can therefore rely on a crash severing both directions at
// one instant instead of depending on goroutine scheduling. A plain Close
// (graceful stop) drops the endpoint's own inbound queue but lets frames it
// already sent drain normally.
package mem

import (
	"fmt"
	"sync"
	"time"

	"fsr/transport"
)

// Options configures a Network.
type Options struct {
	// Latency is an optional fixed one-way delivery delay applied to every
	// payload. Zero means immediate handoff.
	Latency time.Duration
	// Bandwidth, when positive, serializes each endpoint's outbound
	// payloads at this rate (bits per second): Send blocks while the
	// simulated NIC transmits, which is the backpressure a full kernel
	// socket buffer provides on a real network. Without it the protocol's
	// fairness machinery has nothing to arbitrate — queues drain
	// instantly.
	Bandwidth float64
}

// Network is the in-memory hub. Endpoints join and leave dynamically; the
// zero value is not usable, call NewNetwork.
type Network struct {
	opts Options

	mu    sync.Mutex
	peers map[transport.ProcID]*Endpoint
	cut   map[[2]transport.ProcID]bool // directed severed links
}

// NewNetwork creates an empty hub.
func NewNetwork(opts Options) *Network {
	return &Network{
		opts:  opts,
		peers: make(map[transport.ProcID]*Endpoint),
		cut:   make(map[[2]transport.ProcID]bool),
	}
}

// Join registers a new endpoint for id.
func (n *Network) Join(id transport.ProcID) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.peers[id]; dup {
		return nil, fmt.Errorf("mem: %w: duplicate join of %d", transport.ErrUnknownPeer, id)
	}
	ep := &Endpoint{net: n, id: id}
	ep.cond = sync.NewCond(&ep.mu)
	ep.wg.Add(1)
	go ep.dispatchLoop()
	n.peers[id] = ep
	return ep, nil
}

// Crash forcibly closes id's endpoint with fail-stop semantics: while
// holding the hub lock it detaches the endpoint and purges every frame
// still in flight to or from it, so no concurrent Send can slip a frame
// past the crash (see the package comment for the exact guarantee).
func (n *Network) Crash(id transport.ProcID) {
	n.mu.Lock()
	ep := n.peers[id]
	delete(n.peers, id)
	for _, other := range n.peers {
		other.purgeFrom(id)
	}
	n.mu.Unlock()
	if ep != nil {
		_ = ep.Close()
	}
}

// CutLink severs the directed link from -> to: subsequent sends vanish
// silently (the receiver-side FD notices the silence).
func (n *Network) CutLink(from, to transport.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[[2]transport.ProcID{from, to}] = true
}

// HealLink restores a severed directed link.
func (n *Network) HealLink(from, to transport.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, [2]transport.ProcID{from, to})
}

// route decides and performs one frame's delivery enqueue under the hub
// lock, which is what makes Crash atomic: between the sender-liveness check
// and the destination enqueue no crash can interleave. Lock order is
// Network.mu -> Endpoint.mu, everywhere.
func (n *Network) route(it item, to transport.ProcID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, live := n.peers[it.from]; !live {
		// The sender was crashed while this Send was in flight; the frame
		// dies with it (Crash already purged its queued siblings).
		return transport.ErrClosed
	}
	if n.cut[[2]transport.ProcID{it.from, to}] {
		return nil // link down: silent drop
	}
	dst, ok := n.peers[to]
	if !ok {
		return fmt.Errorf("mem: send to %d: %w", to, transport.ErrUnknownPeer)
	}
	dst.enqueue(it)
	return nil
}

// remove detaches a closed endpoint from the hub.
func (n *Network) remove(id transport.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.peers, id)
}

// Endpoint is one process's attachment to the Network.
type Endpoint struct {
	net *Network
	id  transport.ProcID

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []item
	handler transport.Handler
	closed  bool
	txFree  time.Time // simulated NIC availability (Bandwidth > 0)
	wg      sync.WaitGroup
}

type item struct {
	from    transport.ProcID
	payload []byte
	due     time.Time
}

var (
	_ transport.Transport   = (*Endpoint)(nil)
	_ transport.BatchSender = (*Endpoint)(nil)
)

// Self implements transport.Transport.
func (e *Endpoint) Self() transport.ProcID { return e.id }

// SetHandler implements transport.Transport. Payloads that arrived before
// the handler was installed are dispatched once it is.
func (e *Endpoint) SetHandler(h transport.Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
	e.cond.Broadcast()
}

// Send implements transport.Transport.
func (e *Endpoint) Send(to transport.ProcID, payload []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return transport.ErrClosed
	}
	e.mu.Unlock()
	now := time.Now()
	sent := now
	if bw := e.net.opts.Bandwidth; bw > 0 {
		tx := time.Duration(float64(len(payload)) * 8 / bw * float64(time.Second))
		e.mu.Lock()
		start := e.txFree
		if start.Before(now) {
			start = now
		}
		e.txFree = start.Add(tx)
		sent = e.txFree
		e.mu.Unlock()
		time.Sleep(time.Until(sent))
	}
	var due time.Time
	if e.net.opts.Latency > 0 {
		due = sent.Add(e.net.opts.Latency)
	}
	return e.net.route(item{from: e.id, payload: payload, due: due}, to)
}

// SendBatch implements transport.BatchSender by looping over Send. The
// receiver's queue retains payloads, while the batch contract leaves the
// buffers with the caller — so each payload is copied here; the in-memory
// hub pays one allocation per frame where real sockets pay a syscall.
func (e *Endpoint) SendBatch(to transport.ProcID, payloads [][]byte) error {
	for _, p := range payloads {
		if err := e.Send(to, append([]byte(nil), p...)); err != nil {
			return err
		}
	}
	return nil
}

func (e *Endpoint) enqueue(it item) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return // crashing receiver drops traffic
	}
	e.queue = append(e.queue, it)
	e.cond.Signal()
}

// purgeFrom drops every queued frame sent by id — the receive half of the
// atomic crash. Called with Network.mu held.
func (e *Endpoint) purgeFrom(id transport.ProcID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	kept := e.queue[:0]
	for _, it := range e.queue {
		if it.from != id {
			kept = append(kept, it)
		}
	}
	e.queue = kept
}

// dispatchLoop delivers queued payloads serially to the handler.
func (e *Endpoint) dispatchLoop() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for !e.closed && (len(e.queue) == 0 || e.handler == nil) {
			e.cond.Wait()
		}
		if e.closed {
			e.mu.Unlock()
			return
		}
		it := e.queue[0]
		e.queue = e.queue[:copy(e.queue, e.queue[1:])]
		h := e.handler
		e.mu.Unlock()

		if !it.due.IsZero() {
			if d := time.Until(it.due); d > 0 {
				time.Sleep(d)
			}
		}
		h(it.from, it.payload)
	}
}

// Close implements transport.Transport. It stops dispatch, discards queued
// payloads, and detaches from the hub. Safe to call twice.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.queue = nil
	e.cond.Broadcast()
	e.mu.Unlock()
	e.net.remove(e.id)
	e.wg.Wait()
	return nil
}
