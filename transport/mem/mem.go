// Package mem implements the transport interface in process memory: a
// Network hub connecting any number of endpoints with reliable FIFO
// unbounded queues, optional per-hop latency, and fault injection (crash,
// directed link cuts) for tests.
//
// Delivery model: each endpoint has one dispatch goroutine that invokes the
// installed handler serially, preserving global arrival order at that
// endpoint (and therefore per-sender FIFO). Send never blocks: queues grow
// as needed, mirroring kernel socket buffers plus sender-side user-space
// queues; flow control belongs to the layer above (the node applies
// backpressure on Broadcast).
package mem

import (
	"fmt"
	"sync"
	"time"

	"fsr/transport"
)

// Options configures a Network.
type Options struct {
	// Latency is an optional fixed one-way delivery delay applied to every
	// payload. Zero means immediate handoff.
	Latency time.Duration
	// Bandwidth, when positive, serializes each endpoint's outbound
	// payloads at this rate (bits per second): Send blocks while the
	// simulated NIC transmits, which is the backpressure a full kernel
	// socket buffer provides on a real network. Without it the protocol's
	// fairness machinery has nothing to arbitrate — queues drain
	// instantly.
	Bandwidth float64
}

// Network is the in-memory hub. Endpoints join and leave dynamically; the
// zero value is not usable, call NewNetwork.
type Network struct {
	opts Options

	mu    sync.Mutex
	peers map[transport.ProcID]*Endpoint
	cut   map[[2]transport.ProcID]bool // directed severed links
}

// NewNetwork creates an empty hub.
func NewNetwork(opts Options) *Network {
	return &Network{
		opts:  opts,
		peers: make(map[transport.ProcID]*Endpoint),
		cut:   make(map[[2]transport.ProcID]bool),
	}
}

// Join registers a new endpoint for id.
func (n *Network) Join(id transport.ProcID) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.peers[id]; dup {
		return nil, fmt.Errorf("mem: %w: duplicate join of %d", transport.ErrUnknownPeer, id)
	}
	ep := &Endpoint{net: n, id: id}
	ep.cond = sync.NewCond(&ep.mu)
	ep.wg.Add(1)
	go ep.dispatchLoop()
	n.peers[id] = ep
	return ep, nil
}

// Crash forcibly closes id's endpoint, dropping queued traffic — fail-stop
// semantics for fault-injection tests.
func (n *Network) Crash(id transport.ProcID) {
	n.mu.Lock()
	ep := n.peers[id]
	n.mu.Unlock()
	if ep != nil {
		_ = ep.Close()
	}
}

// CutLink severs the directed link from -> to: subsequent sends vanish
// silently (the receiver-side FD notices the silence).
func (n *Network) CutLink(from, to transport.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[[2]transport.ProcID{from, to}] = true
}

// HealLink restores a severed directed link.
func (n *Network) HealLink(from, to transport.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, [2]transport.ProcID{from, to})
}

// lookup returns the destination endpoint if the link is up.
func (n *Network) lookup(from, to transport.ProcID) (*Endpoint, bool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cut[[2]transport.ProcID{from, to}] {
		return nil, true, nil // link down: silent drop
	}
	ep, ok := n.peers[to]
	if !ok {
		return nil, false, fmt.Errorf("mem: send to %d: %w", to, transport.ErrUnknownPeer)
	}
	return ep, false, nil
}

// remove detaches a closed endpoint from the hub.
func (n *Network) remove(id transport.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.peers, id)
}

// Endpoint is one process's attachment to the Network.
type Endpoint struct {
	net *Network
	id  transport.ProcID

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []item
	handler transport.Handler
	closed  bool
	txFree  time.Time // simulated NIC availability (Bandwidth > 0)
	wg      sync.WaitGroup
}

type item struct {
	from    transport.ProcID
	payload []byte
	due     time.Time
}

var _ transport.Transport = (*Endpoint)(nil)

// Self implements transport.Transport.
func (e *Endpoint) Self() transport.ProcID { return e.id }

// SetHandler implements transport.Transport. Payloads that arrived before
// the handler was installed are dispatched once it is.
func (e *Endpoint) SetHandler(h transport.Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
	e.cond.Broadcast()
}

// Send implements transport.Transport.
func (e *Endpoint) Send(to transport.ProcID, payload []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return transport.ErrClosed
	}
	e.mu.Unlock()
	dst, linkDown, err := e.net.lookup(e.id, to)
	if err != nil {
		return err
	}
	if linkDown {
		return nil // partitioned: message lost on the wire
	}
	now := time.Now()
	sent := now
	if bw := e.net.opts.Bandwidth; bw > 0 {
		tx := time.Duration(float64(len(payload)) * 8 / bw * float64(time.Second))
		e.mu.Lock()
		start := e.txFree
		if start.Before(now) {
			start = now
		}
		e.txFree = start.Add(tx)
		sent = e.txFree
		e.mu.Unlock()
		time.Sleep(time.Until(sent))
	}
	var due time.Time
	if e.net.opts.Latency > 0 {
		due = sent.Add(e.net.opts.Latency)
	}
	dst.enqueue(item{from: e.id, payload: payload, due: due})
	return nil
}

func (e *Endpoint) enqueue(it item) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return // crashing receiver drops traffic
	}
	e.queue = append(e.queue, it)
	e.cond.Signal()
}

// dispatchLoop delivers queued payloads serially to the handler.
func (e *Endpoint) dispatchLoop() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for !e.closed && (len(e.queue) == 0 || e.handler == nil) {
			e.cond.Wait()
		}
		if e.closed {
			e.mu.Unlock()
			return
		}
		it := e.queue[0]
		e.queue = e.queue[:copy(e.queue, e.queue[1:])]
		h := e.handler
		e.mu.Unlock()

		if !it.due.IsZero() {
			if d := time.Until(it.due); d > 0 {
				time.Sleep(d)
			}
		}
		h(it.from, it.payload)
	}
}

// Close implements transport.Transport. It stops dispatch, discards queued
// payloads, and detaches from the hub. Safe to call twice.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.queue = nil
	e.cond.Broadcast()
	e.mu.Unlock()
	e.net.remove(e.id)
	e.wg.Wait()
	return nil
}
