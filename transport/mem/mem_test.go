package mem

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fsr/transport"
)

// collector buffers received payloads for assertions.
type collector struct {
	mu   sync.Mutex
	got  []string
	cond *sync.Cond
}

func newCollector() *collector {
	c := &collector{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collector) handler(from transport.ProcID, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, fmt.Sprintf("%d:%s", from, payload))
	c.cond.Broadcast()
}

func (c *collector) waitN(t *testing.T, n int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.got) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timeout: have %d payloads, want %d: %v", len(c.got), n, c.got)
		}
		c.mu.Unlock()
		time.Sleep(time.Millisecond)
		c.mu.Lock()
	}
	return append([]string(nil), c.got...)
}

func TestSendReceiveFIFO(t *testing.T) {
	n := NewNetwork(Options{})
	a, err := n.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Join(2)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	c := newCollector()
	b.SetHandler(c.handler)
	for i := range 100 {
		if err := a.Send(2, []byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := c.waitN(t, 100)
	for i, g := range got {
		if want := fmt.Sprintf("1:m%03d", i); g != want {
			t.Fatalf("payload %d = %q, want %q (FIFO violated)", i, g, want)
		}
	}
}

func TestHandlerInstalledLate(t *testing.T) {
	n := NewNetwork(Options{})
	a, _ := n.Join(1)
	b, _ := n.Join(2)
	defer a.Close()
	defer b.Close()
	if err := a.Send(2, []byte("early")); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	b.SetHandler(c.handler) // buffered payload must now flow
	got := c.waitN(t, 1)
	if got[0] != "1:early" {
		t.Fatalf("got %v", got)
	}
}

func TestDuplicateJoinRejected(t *testing.T) {
	n := NewNetwork(Options{})
	ep, _ := n.Join(7)
	defer ep.Close()
	if _, err := n.Join(7); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

func TestSendToUnknownPeer(t *testing.T) {
	n := NewNetwork(Options{})
	a, _ := n.Join(1)
	defer a.Close()
	if err := a.Send(99, []byte("x")); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestSendAfterClose(t *testing.T) {
	n := NewNetwork(Options{})
	a, _ := n.Join(1)
	b, _ := n.Join(2)
	defer b.Close()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, []byte("x")); err != transport.ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestCrashDropsTraffic(t *testing.T) {
	n := NewNetwork(Options{})
	a, _ := n.Join(1)
	b, _ := n.Join(2)
	defer a.Close()
	c := newCollector()
	b.SetHandler(c.handler)
	n.Crash(2)
	if err := a.Send(2, []byte("x")); err == nil {
		t.Fatal("send to crashed peer succeeded")
	}
	_ = b
}

// TestCrashPurgesInFlightFrames: the deterministic crash guarantee — after
// Crash(id) returns, frames id had already sent but that were still queued
// at their receivers are gone, regardless of goroutine scheduling. The
// receiver's handler is installed only after the crash, so every pre-crash
// frame is provably still "in flight" (queued) when the crash lands.
func TestCrashPurgesInFlightFrames(t *testing.T) {
	n := NewNetwork(Options{})
	a, _ := n.Join(1)
	c3, _ := n.Join(3)
	b, _ := n.Join(2)
	defer b.Close()
	defer c3.Close()
	_ = a
	for i := range 100 {
		if err := a.Send(2, []byte(fmt.Sprintf("doomed%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	n.Crash(1)
	col := newCollector()
	b.SetHandler(col.handler)
	if err := c3.Send(2, []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	got := col.waitN(t, 1)
	if len(got) != 1 || got[0] != "3:survivor" {
		t.Fatalf("frames from the crashed endpoint leaked past Crash: %v", got)
	}
}

// TestCrashAtomicAgainstConcurrentSends: a sender spamming frames while it
// is crashed can never land a frame after Crash returns — the liveness
// check and the enqueue happen under one hub lock.
func TestCrashAtomicAgainstConcurrentSends(t *testing.T) {
	n := NewNetwork(Options{})
	a, _ := n.Join(1)
	b, _ := n.Join(2)
	defer b.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if err := a.Send(2, []byte("x")); err != nil {
				return // crash observed
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	n.Crash(1)
	<-done // the spammer saw the crash as a send error
	// Everything queued before the crash was purged with it; nothing more
	// can arrive from 1.
	col := newCollector()
	b.SetHandler(col.handler)
	time.Sleep(20 * time.Millisecond)
	col.mu.Lock()
	leaked := len(col.got)
	col.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d frames from the crashed endpoint delivered after Crash returned", leaked)
	}
}

// TestCrashThenRejoin: a crashed ID can join again (the restart path) and
// traffic flows normally.
func TestCrashThenRejoin(t *testing.T) {
	n := NewNetwork(Options{})
	a, _ := n.Join(1)
	b, _ := n.Join(2)
	defer b.Close()
	_ = a
	n.Crash(1)
	a2, err := n.Join(1)
	if err != nil {
		t.Fatalf("rejoin after crash: %v", err)
	}
	defer a2.Close()
	col := newCollector()
	b.SetHandler(col.handler)
	if err := a2.Send(2, []byte("back")); err != nil {
		t.Fatal(err)
	}
	if got := col.waitN(t, 1); got[0] != "1:back" {
		t.Fatalf("got %v", got)
	}
}

func TestCutAndHealLink(t *testing.T) {
	n := NewNetwork(Options{})
	a, _ := n.Join(1)
	b, _ := n.Join(2)
	defer a.Close()
	defer b.Close()
	c := newCollector()
	b.SetHandler(c.handler)
	n.CutLink(1, 2)
	if err := a.Send(2, []byte("lost")); err != nil {
		t.Fatalf("send over cut link errored: %v", err)
	}
	n.HealLink(1, 2)
	if err := a.Send(2, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	got := c.waitN(t, 1)
	if got[0] != "1:alive" {
		t.Fatalf("got %v; cut-link payload leaked or order wrong", got)
	}
}

func TestCutLinkIsDirected(t *testing.T) {
	n := NewNetwork(Options{})
	a, _ := n.Join(1)
	b, _ := n.Join(2)
	defer a.Close()
	defer b.Close()
	ca, cb := newCollector(), newCollector()
	a.SetHandler(ca.handler)
	b.SetHandler(cb.handler)
	n.CutLink(1, 2)
	if err := b.Send(1, []byte("back")); err != nil {
		t.Fatal(err)
	}
	got := ca.waitN(t, 1)
	if got[0] != "2:back" {
		t.Fatalf("reverse direction affected by cut: %v", got)
	}
}

func TestLatencyApplied(t *testing.T) {
	const lat = 30 * time.Millisecond
	n := NewNetwork(Options{Latency: lat})
	a, _ := n.Join(1)
	b, _ := n.Join(2)
	defer a.Close()
	defer b.Close()
	c := newCollector()
	b.SetHandler(c.handler)
	start := time.Now()
	if err := a.Send(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.waitN(t, 1)
	if el := time.Since(start); el < lat {
		t.Errorf("delivered after %v, want >= %v", el, lat)
	}
}

func TestManyToOneConcurrent(t *testing.T) {
	n := NewNetwork(Options{})
	dst, _ := n.Join(0)
	defer dst.Close()
	c := newCollector()
	dst.SetHandler(c.handler)
	const senders, per = 8, 50
	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		ep, err := n.Join(transport.ProcID(s))
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		wg.Add(1)
		go func(ep *Endpoint) {
			defer wg.Done()
			for i := range per {
				if err := ep.Send(0, []byte(fmt.Sprintf("%04d", i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(ep)
	}
	wg.Wait()
	got := c.waitN(t, senders*per)
	// Per-sender FIFO must hold even under interleaving.
	next := map[string]int{}
	for _, g := range got {
		var from, seq int
		if _, err := fmt.Sscanf(g, "%d:%04d", &from, &seq); err != nil {
			t.Fatalf("bad payload %q", g)
		}
		key := fmt.Sprint(from)
		if seq != next[key] {
			t.Fatalf("sender %d out of order: got %d want %d", from, seq, next[key])
		}
		next[key]++
	}
}

func TestBandwidthPacing(t *testing.T) {
	// 1 Mb/s: a 12.5 KB payload occupies the simulated NIC for ~100ms, so
	// two back-to-back sends must take >= ~200ms end to end.
	n := NewNetwork(Options{Bandwidth: 1e6})
	a, _ := n.Join(1)
	b, _ := n.Join(2)
	defer a.Close()
	defer b.Close()
	c := newCollector()
	b.SetHandler(c.handler)
	payload := make([]byte, 12500)
	start := time.Now()
	if err := a.Send(2, payload); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, payload); err != nil {
		t.Fatal(err)
	}
	c.waitN(t, 2)
	if el := time.Since(start); el < 180*time.Millisecond {
		t.Errorf("two 100ms transmissions completed in %v; pacing not applied", el)
	}
}

func TestBandwidthZeroMeansUnlimited(t *testing.T) {
	n := NewNetwork(Options{})
	a, _ := n.Join(1)
	b, _ := n.Join(2)
	defer a.Close()
	defer b.Close()
	c := newCollector()
	b.SetHandler(c.handler)
	start := time.Now()
	for range 50 {
		if err := a.Send(2, make([]byte, 100000)); err != nil {
			t.Fatal(err)
		}
	}
	c.waitN(t, 50)
	if el := time.Since(start); el > time.Second {
		t.Errorf("unlimited network took %v for 50 sends", el)
	}
}
