// Command fsr-pub is a demo publisher: it dials the group through the
// client session (so it works against members and fails over between
// them) and publishes a counter payload at a fixed rate, printing each
// committed offset. The deploy/ example uses it as traffic.
//
//	fsr-pub -addrs 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 -every 100ms
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"fsr/client"
)

func main() {
	addrsFlag := flag.String("addrs", "", "comma-separated member addresses (required)")
	every := flag.Duration("every", 100*time.Millisecond, "publish interval")
	count := flag.Int("count", 0, "stop after this many publishes (0 = run until interrupted)")
	quiet := flag.Bool("quiet", false, "do not print per-publish offsets")
	flag.Parse()
	if err := run(*addrsFlag, *every, *count, *quiet); err != nil {
		fmt.Fprintf(os.Stderr, "fsr-pub: %v\n", err)
		os.Exit(1)
	}
}

func run(addrsFlag string, every time.Duration, count int, quiet bool) error {
	if addrsFlag == "" {
		return fmt.Errorf("-addrs is required")
	}
	var addrs []string
	for _, a := range strings.Split(addrsFlag, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	s, err := client.Dial(client.Config{Addrs: addrs})
	if err != nil {
		return err
	}
	defer s.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fmt.Printf("fsr-pub up: addrs=%v every=%v\n", addrs, every)

	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for i := 0; count == 0 || i < count; i++ {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
		payload := fmt.Sprintf("pub %d at %s", i, time.Now().Format(time.RFC3339Nano))
		r, err := s.Publish(ctx, []byte(payload))
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("publish %d: %w", i, err)
		}
		if !quiet {
			fmt.Printf("committed %d at seq %d\n", i, r.Seq())
		}
	}
	return nil
}
