// Command fsr-bench regenerates the tables and figures of the paper's
// evaluation section on the simulated cluster and the round model, printing
// each as a text series (see EXPERIMENTS.md for the recorded results).
//
// Usage:
//
//	fsr-bench -exp all
//	fsr-bench -exp figure8
//	fsr-bench -exp all -json BENCH_$(date +%F).json
//
// Experiments: table1, figure6, figure7, figure8, figure9, classes,
// tradeoff, latency, segsize, stall, all.
//
// With -json the results are also written as a machine-readable document,
// so successive runs (BENCH_<date>.json) accumulate the repository's
// performance trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"fsr/internal/bench"
	"fsr/internal/metrics"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1|figure6|figure7|figure8|figure9|classes|tradeoff|latency|segsize|stall|all)")
	jsonOut := flag.String("json", "", `also write the results as JSON to this file (e.g. "BENCH_2026-07-27.json")`)
	flag.Parse()
	if err := run(*exp, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "fsr-bench: %v\n", err)
		os.Exit(1)
	}
}

// benchDoc is the on-disk shape of one benchmark run.
type benchDoc struct {
	Date        string            `json:"date"`
	GoVersion   string            `json:"go_version"`
	Experiments []*metrics.Series `json:"experiments"`
}

func run(exp, jsonOut string) error {
	type experiment struct {
		name string
		fn   func() (*metrics.Series, error)
	}
	experiments := []experiment{
		{"table1", func() (*metrics.Series, error) { return bench.Table1(), nil }},
		{"figure6", func() (*metrics.Series, error) { return bench.Figure6([]int{2, 3, 4, 5, 6, 7, 8, 9, 10}) }},
		{"figure7", func() (*metrics.Series, error) {
			return bench.Figure7([]float64{10, 20, 30, 40, 50, 60, 70, 75, 80, 90, 100})
		}},
		{"figure8", func() (*metrics.Series, error) { return bench.Figure8([]int{2, 3, 4, 5, 6, 7, 8, 9, 10}) }},
		{"figure9", func() (*metrics.Series, error) { return bench.Figure9([]int{1, 2, 3, 4, 5}) }},
		{"classes", func() (*metrics.Series, error) { return bench.Classes(6, 3, 100) }},
		{"tradeoff", func() (*metrics.Series, error) { return bench.PrivilegeTradeoff(8, 150) }},
		{"latency", func() (*metrics.Series, error) { return bench.LatencyFormula(8, 2) }},
		{"segsize", func() (*metrics.Series, error) {
			return bench.AblationSegmentSize([]int{1024, 2048, 4096, 8192, 16384})
		}},
		{"stall", func() (*metrics.Series, error) { return bench.AblationSegmentationStall() }},
	}
	doc := benchDoc{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
	}
	ran := false
	for _, e := range experiments {
		if exp != "all" && exp != e.name {
			continue
		}
		ran = true
		s, err := e.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println(s.String())
		doc.Experiments = append(doc.Experiments, s)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	if jsonOut != "" {
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(out, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", jsonOut, err)
		}
	}
	return nil
}
