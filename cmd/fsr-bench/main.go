// Command fsr-bench regenerates the tables and figures of the paper's
// evaluation section on the simulated cluster and the round model, printing
// each as a text series (see EXPERIMENTS.md for the recorded results).
//
// Usage:
//
//	fsr-bench -exp all
//	fsr-bench -exp figure8
//	fsr-bench -exp all -json BENCH_$(date +%F).json
//	fsr-bench -exp figure7x -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Experiments: table1, figure6, figure7, figure7x, figure7tcp, figure7fan,
// figure8, figure9, classes, tradeoff, latency, segsize, stall, all.
// figure7x is the Figure 7 sweep on the modern testbed model (gigabit link,
// hot-path costs measured against this repository's batched zero-alloc
// stack); figure7tcp is its hardware counterpart — the real protocol stack
// over loopback TCP sockets, including a remote client-session sender;
// figure7fan measures subscriber fan-out scaling (aggregate delivery rate
// vs subscriber count, member-direct vs through a read-only edge replica);
// the others keep the paper calibration.
//
// With -json the results are also written as a machine-readable document,
// so successive runs (BENCH_<date>.json) accumulate the repository's
// performance trajectory. -cpuprofile/-memprofile write pprof profiles of
// the run (`go tool pprof <binary> cpu.pprof`) for hot-path work.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"fsr/internal/bench"
	"fsr/internal/metrics"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1|figure6|figure7|figure7x|figure7tcp|figure7fan|figure8|figure9|classes|tradeoff|latency|segsize|stall|all)")
	jsonOut := flag.String("json", "", `also write the results as JSON to this file (e.g. "BENCH_2026-07-27.json")`)
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile taken at exit to this file")
	flag.Parse()
	var cpuOut *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsr-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "fsr-bench: start cpu profile: %v\n", err)
			os.Exit(1)
		}
		cpuOut = f
	}
	err := run(*exp, *jsonOut)
	if cpuOut != nil { // stop explicitly: os.Exit below would skip defers
		pprof.StopCPUProfile()
		_ = cpuOut.Close()
	}
	if *memProfile != "" {
		f, merr := os.Create(*memProfile)
		if merr == nil {
			runtime.GC() // materialize the final live set
			merr = pprof.WriteHeapProfile(f)
			_ = f.Close()
		}
		if merr != nil {
			fmt.Fprintf(os.Stderr, "fsr-bench: mem profile: %v\n", merr)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsr-bench: %v\n", err)
		os.Exit(1)
	}
}

// benchDoc is the on-disk shape of one benchmark run.
type benchDoc struct {
	Date        string            `json:"date"`
	GoVersion   string            `json:"go_version"`
	Experiments []*metrics.Series `json:"experiments"`
}

func run(exp, jsonOut string) error {
	type experiment struct {
		name string
		fn   func() (*metrics.Series, error)
	}
	experiments := []experiment{
		{"table1", func() (*metrics.Series, error) { return bench.Table1(), nil }},
		{"figure6", func() (*metrics.Series, error) { return bench.Figure6([]int{2, 3, 4, 5, 6, 7, 8, 9, 10}) }},
		{"figure7", func() (*metrics.Series, error) {
			return bench.Figure7([]float64{10, 20, 30, 40, 50, 60, 70, 75, 80, 90, 100})
		}},
		{"figure7x", func() (*metrics.Series, error) {
			return bench.Figure7X([]float64{50, 100, 200, 300, 400, 500, 600, 700, 750, 800, 900})
		}},
		{"figure7tcp", func() (*metrics.Series, error) { return bench.Figure7TCP([]int{1, 2, 4}) }},
		{"figure7fan", func() (*metrics.Series, error) { return bench.Figure7Fan([]int{1, 8, 32, 64}) }},
		{"figure8", func() (*metrics.Series, error) { return bench.Figure8([]int{2, 3, 4, 5, 6, 7, 8, 9, 10}) }},
		{"figure9", func() (*metrics.Series, error) { return bench.Figure9([]int{1, 2, 3, 4, 5}) }},
		{"classes", func() (*metrics.Series, error) { return bench.Classes(6, 3, 100) }},
		{"tradeoff", func() (*metrics.Series, error) { return bench.PrivilegeTradeoff(8, 150) }},
		{"latency", func() (*metrics.Series, error) { return bench.LatencyFormula(8, 2) }},
		{"segsize", func() (*metrics.Series, error) {
			return bench.AblationSegmentSize([]int{1024, 2048, 4096, 8192, 16384})
		}},
		{"stall", func() (*metrics.Series, error) { return bench.AblationSegmentationStall() }},
	}
	doc := benchDoc{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
	}
	ran := false
	for _, e := range experiments {
		if exp != "all" && exp != e.name {
			continue
		}
		ran = true
		s, err := e.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println(s.String())
		doc.Experiments = append(doc.Experiments, s)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	if jsonOut != "" {
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(out, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", jsonOut, err)
		}
	}
	return nil
}
