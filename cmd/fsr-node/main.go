// Command fsr-node runs one FSR group member over real TCP — the
// multi-process deployment of the library. Start one process per member
// with the same -peers map; each delivers the same message stream in the
// same order.
//
// Example (three shells):
//
//	fsr-node -id 0 -peers '0=127.0.0.1:7100,1=127.0.0.1:7101,2=127.0.0.1:7102' -send 1s
//	fsr-node -id 1 -peers '0=127.0.0.1:7100,1=127.0.0.1:7101,2=127.0.0.1:7102'
//	fsr-node -id 2 -peers '0=127.0.0.1:7100,1=127.0.0.1:7101,2=127.0.0.1:7102' -send 2s
//
// Each node prints its deliveries: `[seq] origin=N payload`.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"slices"
	"strconv"
	"strings"
	"time"

	"fsr"
	"fsr/internal/obs"
	"fsr/transport/tcp"
)

func main() {
	id := flag.Uint("id", 0, "this process's ID (must appear in -peers)")
	peersFlag := flag.String("peers", "", "comma-separated id=host:port map for every member")
	tol := flag.Int("t", 1, "number of tolerated failures")
	send := flag.Duration("send", 0, "emit a demo broadcast this often (0 = silent)")
	durable := flag.String("durable", "", "directory for the durable log (empty = in-memory)")
	obsAddr := flag.String("obs", "", "HTTP address for /metrics, /healthz, /readyz (empty = off)")
	join := flag.Bool("join", false, "start outside the group and join through the peers (use when restarting a member the group may have evicted)")
	logFmt := flag.String("log", "text", "structured log format to stderr: text, json or off")
	flag.Parse()
	logger, err := buildLogger(*logFmt)
	if err == nil {
		err = run(fsr.ProcID(*id), *peersFlag, *tol, *send, *durable, *obsAddr, *join, logger)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsr-node: %v\n", err)
		os.Exit(1)
	}
}

func buildLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	case "off":
		return slog.New(slog.DiscardHandler), nil
	default:
		return nil, fmt.Errorf("unknown -log format %q (want text, json or off)", format)
	}
}

func parsePeers(spec string) (map[fsr.ProcID]string, []fsr.ProcID, error) {
	addrs := make(map[fsr.ProcID]string)
	var members []fsr.ProcID
	for _, part := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, nil, fmt.Errorf("bad peer entry %q (want id=host:port)", part)
		}
		n, err := strconv.ParseUint(id, 10, 32)
		if err != nil {
			return nil, nil, fmt.Errorf("bad peer id %q: %w", id, err)
		}
		addrs[fsr.ProcID(n)] = addr
		members = append(members, fsr.ProcID(n))
	}
	slices.Sort(members)
	return addrs, members, nil
}

func run(self fsr.ProcID, peersFlag string, tol int, send time.Duration, durable, obsAddr string, join bool, logger *slog.Logger) error {
	if peersFlag == "" {
		return fmt.Errorf("-peers is required")
	}
	addrs, members, err := parsePeers(peersFlag)
	if err != nil {
		return err
	}
	listen, ok := addrs[self]
	if !ok {
		return fmt.Errorf("id %d not present in -peers", self)
	}
	delete(addrs, self)
	tr, err := tcp.New(tcp.Config{Self: self, ListenAddr: listen, Peers: addrs})
	if err != nil {
		return err
	}
	node, err := fsr.NewNode(fsr.Config{
		Self:       self,
		Members:    members,
		T:          tol,
		DurableDir: durable,
		Joiner:     join,
		Logger:     logger,
	}, tr)
	if err != nil {
		_ = tr.Close()
		return err
	}
	defer node.Stop()
	if join {
		contacts := slices.DeleteFunc(slices.Clone(members), func(p fsr.ProcID) bool { return p == self })
		node.Join(contacts)
	}
	if obsAddr != "" {
		srv, err := obs.Serve(obs.Config{
			Addr: obsAddr,
			Metrics: func(w io.Writer) error {
				return obs.WriteNodeMetrics(w, uint32(self), node.Metrics())
			},
			Ready:  node.Ready,
			Health: node.Err,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("fsr-node %d obs: http://%s/metrics\n", self, srv.Addr())
	}
	fmt.Printf("fsr-node %d up: members=%v leader=%d listen=%s\n", self, members, members[0], listen)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if send > 0 {
		go func() {
			ticker := time.NewTicker(send)
			defer ticker.Stop()
			for i := 0; ; i++ {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					payload := fmt.Sprintf("hello %d from node %d", i, self)
					r, err := node.Broadcast(ctx, []byte(payload))
					if err != nil {
						return
					}
					go func() {
						if err := r.Wait(ctx); err == nil {
							fmt.Printf("broadcast uniform at seq %d\n", r.Seq())
						}
					}()
				}
			}
		}()
	}
	go func() {
		for v := range node.Views() {
			fmt.Printf("view %d installed: members=%v t=%d\n", v.ID, v.Members, v.T)
		}
	}()
	for {
		select {
		case <-ctx.Done():
			fmt.Println("shutting down")
			return nil
		case m, ok := <-node.Messages():
			if !ok {
				return node.Err()
			}
			fmt.Printf("[%d] origin=%d %s\n", m.Seq, m.Origin, m.Payload)
		}
	}
}
