// Command fsr-edge runs one read-only edge replica over real TCP: it
// tails the committed order from the group members and re-serves it to
// local subscribers, scaling fan-out without growing the ordering ring.
// Publishes arriving here are redirected to the members.
//
// Example, against a running three-member group:
//
//	fsr-edge -listen 127.0.0.1:7200 \
//	         -members 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102
//
// Clients then subscribe through the edge with the ordinary client
// package, listing the edge's address (alone or mixed with members).
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"time"

	"fsr"
	"fsr/edge"
	"fsr/internal/obs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7200", "address to serve subscribers on")
	members := flag.String("members", "", "comma-separated member addresses (required)")
	id := flag.Uint64("id", 0, "edge identity in the client ID space (0 = random)")
	durable := flag.String("durable", "", "directory for the durable tail store (empty = in-memory)")
	tailcap := flag.Int("tailcap", 0, "in-memory tail bound in entries (0 = default)")
	stats := flag.Duration("stats", 0, "print serving stats this often (0 = silent)")
	obsAddr := flag.String("obs", "", "HTTP address for /metrics, /healthz, /readyz (empty = off)")
	maxlag := flag.Duration("maxlag", 0, "upstream lag bound for /readyz (0 = 5s default)")
	logFmt := flag.String("log", "text", "structured log format to stderr: text, json or off")
	flag.Parse()
	logger, err := buildLogger(*logFmt)
	if err == nil {
		err = run(*listen, *members, fsr.ProcID(*id), *durable, *tailcap, *stats, *obsAddr, *maxlag, logger)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsr-edge: %v\n", err)
		os.Exit(1)
	}
}

func buildLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	case "off":
		return slog.New(slog.DiscardHandler), nil
	default:
		return nil, fmt.Errorf("unknown -log format %q (want text, json or off)", format)
	}
}

func run(listen, members string, id fsr.ProcID, durable string, tailcap int, stats time.Duration, obsAddr string, maxlag time.Duration, logger *slog.Logger) error {
	if members == "" {
		return fmt.Errorf("-members is required")
	}
	var addrs []string
	for _, a := range strings.Split(members, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	e, err := edge.New(edge.Config{
		Listen:     listen,
		Members:    addrs,
		ID:         id,
		DurableDir: durable,
		TailCap:    tailcap,
		Logger:     logger,
	})
	if err != nil {
		return err
	}
	defer e.Stop()
	if obsAddr != "" {
		srv, err := obs.Serve(obs.Config{
			Addr: obsAddr,
			Metrics: func(w io.Writer) error {
				return obs.WriteEdgeMetrics(w, uint32(e.ID()), e.Metrics())
			},
			Ready: func() error { return e.Ready(maxlag) },
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("fsr-edge obs: http://%s/metrics\n", srv.Addr())
	}
	fmt.Printf("fsr-edge up: listen=%s members=%v durable=%q\n", e.Addr(), addrs, durable)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	var tick <-chan time.Time
	if stats > 0 {
		ticker := time.NewTicker(stats)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-sig:
			fmt.Println("shutting down")
			return nil
		case <-tick:
			s := e.Stats()
			fmt.Printf("applied=%d clients=%d subs=%d attached=%d tail_frames=%d detaches=%d not_writable=%d\n",
				s.Applied, s.Clients, s.Subs, s.TailAttached, s.TailFrames, s.TailDetaches, s.NotWritable)
		}
	}
}
