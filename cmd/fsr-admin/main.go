// Command fsr-admin queries running FSR members and edges for operator
// state over the ordinary client transport (no HTTP endpoint required) and
// renders it across the whole cluster.
//
//	fsr-admin -addrs 127.0.0.1:7100,127.0.0.1:7101,127.0.0.1:7102 status
//	fsr-admin -addrs ... members     # installed view membership
//	fsr-admin -addrs ... wal         # durable-log counters
//	fsr-admin -addrs ... sessions    # publish traffic + subscriber census
//	fsr-admin -addrs ... snapshot    # trigger a state-machine snapshot
//	fsr-admin -addrs ... evict 3     # force member 3 out of the view
//	fsr-admin -addrs ... join-hint 0,1,2   # contacts for an unadmitted joiner
//
// status sweeps every address and reports each process's role, view,
// applied offset and lag behind the most-advanced process; the other ops
// sweep too, one row per answering process. -json emits the raw documents.
//
// evict asks every addressed member; each relays the request to the view
// coordinator, so duplicates converge on one view change. join-hint hands
// every addressed process the contact list; members already in a view
// refuse politely, an unadmitted joiner queues an admission request.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"fsr/admin"
)

func main() {
	addrsFlag := flag.String("addrs", "", "comma-separated member/edge addresses to query (required)")
	timeout := flag.Duration("timeout", 3*time.Second, "per-request timeout")
	asJSON := flag.Bool("json", false, "emit raw JSON documents instead of a table")
	flag.Parse()
	op := flag.Arg(0)
	if *addrsFlag == "" || op == "" {
		fmt.Fprintln(os.Stderr, "usage: fsr-admin -addrs host:port[,host:port...] {status|members|wal|sessions|snapshot|evict <id>|join-hint <id,...>}")
		os.Exit(2)
	}
	var addrs []string
	for _, a := range strings.Split(*addrsFlag, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if err := run(addrs, op, flag.Arg(1), *timeout, *asJSON); err != nil {
		fmt.Fprintf(os.Stderr, "fsr-admin: %v\n", err)
		os.Exit(1)
	}
}

// result pairs one address with what it answered (or the failure).
type result struct {
	addr string
	doc  any
	err  error
}

// sweep asks every address concurrently and returns the answers in input
// order.
func sweep(addrs []string, timeout time.Duration, ask func(*admin.Client) (any, error)) []result {
	results := make([]result, len(addrs))
	done := make(chan int)
	for i, a := range addrs {
		go func() {
			defer func() { done <- i }()
			results[i].addr = a
			c, err := admin.Dial(a, timeout)
			if err != nil {
				results[i].err = err
				return
			}
			defer c.Close()
			results[i].doc, results[i].err = ask(c)
		}()
	}
	for range addrs {
		<-done
	}
	return results
}

func run(addrs []string, op, arg string, timeout time.Duration, asJSON bool) error {
	var ask func(*admin.Client) (any, error)
	switch op {
	case "status":
		ask = func(c *admin.Client) (any, error) { return c.Status() }
	case "members":
		ask = func(c *admin.Client) (any, error) { return c.Members() }
	case "wal":
		ask = func(c *admin.Client) (any, error) { return c.WAL() }
	case "sessions":
		ask = func(c *admin.Client) (any, error) { return c.Sessions() }
	case "snapshot":
		ask = func(c *admin.Client) (any, error) { return c.Snapshot() }
	case "evict":
		target, err := strconv.ParseUint(arg, 10, 32)
		if err != nil {
			return fmt.Errorf("evict: want a member ID, got %q", arg)
		}
		ask = func(c *admin.Client) (any, error) { return c.Evict(uint32(target)) }
	case "join-hint":
		var contacts []uint32
		for _, s := range strings.Split(arg, ",") {
			if s = strings.TrimSpace(s); s == "" {
				continue
			}
			id, err := strconv.ParseUint(s, 10, 32)
			if err != nil {
				return fmt.Errorf("join-hint: want member IDs, got %q", s)
			}
			contacts = append(contacts, uint32(id))
		}
		if len(contacts) == 0 {
			return fmt.Errorf("join-hint: no contact IDs supplied")
		}
		ask = func(c *admin.Client) (any, error) { return c.JoinHint(contacts) }
	default:
		return fmt.Errorf("unknown op %q (want status, members, wal, sessions, snapshot, evict or join-hint)", op)
	}
	results := sweep(addrs, timeout, ask)
	if asJSON {
		out := make(map[string]any, len(results))
		for _, r := range results {
			if r.err != nil {
				out[r.addr] = map[string]string{"error": r.err.Error()}
			} else {
				out[r.addr] = r.doc
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	render(results, op)
	for _, r := range results {
		if r.err != nil {
			return fmt.Errorf("%d of %d processes did not answer", countErrs(results), len(results))
		}
	}
	return nil
}

func countErrs(results []result) int {
	n := 0
	for _, r := range results {
		if r.err != nil {
			n++
		}
	}
	return n
}

func render(results []result, op string) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()
	switch op {
	case "status":
		// Lag is measured against the most-advanced answering process.
		var max uint64
		for _, r := range results {
			if s, ok := r.doc.(*admin.Status); ok && s.Applied > max {
				max = s.Applied
			}
		}
		fmt.Fprintln(w, "ADDR\tROLE\tID\tEPOCH\tLEADER\tAPPLIED\tLAG\tREADY")
		for _, r := range results {
			if r.err != nil {
				fmt.Fprintf(w, "%s\t-\t-\t-\t-\t-\t-\terror: %v\n", r.addr, r.err)
				continue
			}
			s := r.doc.(*admin.Status)
			role := s.Role
			if s.IsLeader {
				role += "*"
			}
			if s.CatchingUp {
				role += " (catching up)"
			}
			ready := "yes"
			if !s.Ready {
				ready = "no: " + s.ReadyErr
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%s\n",
				r.addr, role, s.ID, s.Epoch, s.Leader, s.Applied, max-s.Applied, ready)
		}
	case "members":
		fmt.Fprintln(w, "ADDR\tEPOCH\tLEADER\tT\tMEMBERS")
		for _, r := range results {
			if r.err != nil {
				fmt.Fprintf(w, "%s\terror: %v\n", r.addr, r.err)
				continue
			}
			m := r.doc.(*admin.Members)
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%v\n", r.addr, m.Epoch, m.Leader, m.T, m.IDs)
		}
	case "wal":
		fmt.Fprintln(w, "ADDR\tDURABLE\tSEGS\tBYTES\tAPPENDS\tFSYNCS\tROTATIONS\tSNAPSHOTS\tSNAP_SEQ\tSNAP_AGE\tREPAIRS")
		for _, r := range results {
			if r.err != nil {
				fmt.Fprintf(w, "%s\terror: %v\n", r.addr, r.err)
				continue
			}
			i := r.doc.(*admin.WALInfo)
			age := "-"
			if i.SnapshotAgeMillis > 0 {
				age = (time.Duration(i.SnapshotAgeMillis) * time.Millisecond).String()
			}
			fmt.Fprintf(w, "%s\t%v\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%d\n",
				r.addr, i.Durable, i.Segments, i.Bytes, i.Appends, i.Fsyncs,
				i.Rotations, i.Snapshots, i.SnapshotSeq, age, i.Repairs)
		}
	case "sessions":
		fmt.Fprintln(w, "ADDR\tPUBLISHES\tDUPS\tBOUNDED\tSUBS\tTAIL_ATTACHED\tEDGES\tTAIL_FRAMES\tDETACHES")
		for _, r := range results {
			if r.err != nil {
				fmt.Fprintf(w, "%s\terror: %v\n", r.addr, r.err)
				continue
			}
			s := r.doc.(*admin.Sessions)
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				r.addr, s.Publishes, s.Duplicates, s.Bounded, s.Subscribers,
				s.TailAttached, s.EdgeClients, s.TailFrames, s.TailDetaches)
		}
	case "snapshot":
		fmt.Fprintln(w, "ADDR\tTRIGGERED\tREASON")
		for _, r := range results {
			if r.err != nil {
				fmt.Fprintf(w, "%s\terror: %v\n", r.addr, r.err)
				continue
			}
			s := r.doc.(*admin.SnapshotResult)
			fmt.Fprintf(w, "%s\t%v\t%s\n", r.addr, s.Triggered, s.Reason)
		}
	case "evict":
		fmt.Fprintln(w, "ADDR\tTARGET\tREQUESTED\tREASON")
		for _, r := range results {
			if r.err != nil {
				fmt.Fprintf(w, "%s\terror: %v\n", r.addr, r.err)
				continue
			}
			e := r.doc.(*admin.EvictResult)
			fmt.Fprintf(w, "%s\t%d\t%v\t%s\n", r.addr, e.Target, e.Requested, e.Reason)
		}
	case "join-hint":
		fmt.Fprintln(w, "ADDR\tACCEPTED\tREASON")
		for _, r := range results {
			if r.err != nil {
				fmt.Fprintf(w, "%s\terror: %v\n", r.addr, r.err)
				continue
			}
			j := r.doc.(*admin.JoinHintResult)
			fmt.Fprintf(w, "%s\t%v\t%s\n", r.addr, j.Accepted, j.Reason)
		}
	}
}
