package fsr

import (
	"fmt"
	"path/filepath"
	"slices"
	"sync"
	"time"

	"fsr/internal/wal"
	"fsr/transport"
	"fsr/transport/mem"
	"fsr/transport/tcp"
)

// ClusterConfig parameterizes a Cluster (NewCluster).
type ClusterConfig struct {
	// N is the number of nodes. Required.
	N int
	// T is the tolerated number of failures. Default 1.
	T int
	// FirstID numbers the members FirstID..FirstID+N-1. Default 0.
	FirstID ProcID
	// NodeConfig is the per-node template; Self and Members are filled in.
	// Leave its DurableDir and StateMachine empty — they are per-member
	// and set through the fields below.
	NodeConfig Config
	// DurableDir, when set, gives every member a write-ahead log under
	// <DurableDir>/node-<id>, enabling Restart.
	DurableDir string
	// StateMachines, when set, builds each member's replica of the
	// application state machine (one instance per member — replicas must
	// not share state outside the protocol).
	StateMachines func(id ProcID) StateMachine
	// WALFS, when set, supplies a per-member filesystem for the write-ahead
	// log — the storage fault-injection seam. Returning nil for a member
	// gives it the real filesystem. A returned FS models one disk: the
	// cluster reuses it across that member's restarts, never across
	// members.
	WALFS func(id ProcID) wal.FS
	// WireVersion, when set, supplies a per-member wire protocol version —
	// the version-skew seam for rolling-upgrade tests. Returning 0 for a
	// member gives it wire.CurrentVersion. Consulted again on Restart, so a
	// test can flip a member's version across a restart (the upgrade).
	WireVersion func(id ProcID) byte
}

// WithDurableDir returns a copy of cfg with the per-member durable base
// directory set.
func (cfg ClusterConfig) WithDurableDir(dir string) ClusterConfig {
	cfg.DurableDir = dir
	return cfg
}

// WithStateMachines returns a copy of cfg with the per-member state
// machine factory set.
func (cfg ClusterConfig) WithStateMachines(factory func(id ProcID) StateMachine) ClusterConfig {
	cfg.StateMachines = factory
	return cfg
}

// memberConfig instantiates the node template for one member.
func (cfg ClusterConfig) memberConfig(id ProcID) Config {
	nc := cfg.NodeConfig
	nc.Self = id
	nc.T = cfg.T
	if cfg.DurableDir != "" {
		nc.DurableDir = filepath.Join(cfg.DurableDir, fmt.Sprintf("node-%d", id))
	}
	if cfg.StateMachines != nil {
		nc.StateMachine = cfg.StateMachines(id)
	}
	if cfg.WALFS != nil {
		nc.WALFS = cfg.WALFS(id)
	}
	if cfg.WireVersion != nil {
		nc.WireVersion = cfg.WireVersion(id)
	}
	return nc
}

// ClusterTransport provisions the per-member endpoints a Cluster runs on.
// It decouples the cluster harness from any one transport: the same harness
// drives in-process tests (MemTransport), loopback or LAN deployments
// (TCPTransport), and custom fabrics (implement this interface).
//
// NewCluster calls Join once per member, then Open once after every member
// has an endpoint — the hook for wiring that needs the full roster, such as
// exchanging ephemeral listen addresses.
type ClusterTransport interface {
	// Join provisions the endpoint for one member.
	Join(id ProcID) (transport.Transport, error)
	// Open finalizes wiring once every member has joined.
	Open() error
	// Crash fail-stops id's endpoint: in-flight and queued traffic is
	// dropped, and peers observe silence (their failure detectors react).
	Crash(id ProcID)
	// Close releases any shared resources after the nodes have stopped.
	Close() error
}

// MemClusterTransport runs a cluster on one in-memory network hub.
type MemClusterTransport struct {
	network *mem.Network
}

// MemTransport wraps an in-memory network as a ClusterTransport. A nil
// network gets a fresh default hub; pass an explicit mem.NewNetwork to
// configure latency, bandwidth pacing, or to share the hub with nodes
// created outside the cluster (e.g. joiners).
func MemTransport(network *mem.Network) *MemClusterTransport {
	if network == nil {
		network = mem.NewNetwork(mem.Options{})
	}
	return &MemClusterTransport{network: network}
}

// Network returns the underlying hub, for fault injection (CutLink) or for
// attaching extra endpoints.
func (m *MemClusterTransport) Network() *mem.Network { return m.network }

// Join implements ClusterTransport.
func (m *MemClusterTransport) Join(id ProcID) (transport.Transport, error) {
	return m.network.Join(id)
}

// Open implements ClusterTransport. The hub needs no post-join wiring.
func (m *MemClusterTransport) Open() error { return nil }

// Crash implements ClusterTransport.
func (m *MemClusterTransport) Crash(id ProcID) { m.network.Crash(id) }

// Close implements ClusterTransport. Endpoints are owned (and closed) by
// their nodes; the hub itself holds no other resources.
func (m *MemClusterTransport) Close() error { return nil }

// TCPClusterTransport runs a cluster over real TCP sockets, one endpoint
// per member in this process. It is the single-binary form of the
// multi-process deployment (cmd/fsr-node): identical protocol stack and
// wire traffic, convenient for integration tests and benchmarks.
type TCPClusterTransport struct {
	addrs map[ProcID]string
	eps   map[ProcID]*tcp.Transport
}

// TCPTransport builds a TCP-backed ClusterTransport. addrs maps each member
// to its listen address; a nil map (or a missing entry) binds that member
// to an ephemeral loopback port, with addresses exchanged automatically in
// Open.
func TCPTransport(addrs map[ProcID]string) *TCPClusterTransport {
	return &TCPClusterTransport{addrs: addrs, eps: make(map[ProcID]*tcp.Transport)}
}

// Join implements ClusterTransport.
func (t *TCPClusterTransport) Join(id ProcID) (transport.Transport, error) {
	listen := t.addrs[id]
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ep, err := tcp.New(tcp.Config{Self: id, ListenAddr: listen})
	if err != nil {
		return nil, err
	}
	t.eps[id] = ep
	return ep, nil
}

// Addrs returns the members' actual listen addresses (resolving ephemeral
// ports) in member-ID order — what a remote client.Dial needs.
func (t *TCPClusterTransport) Addrs() []string {
	ids := make([]ProcID, 0, len(t.eps))
	for id := range t.eps {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	addrs := make([]string, 0, len(ids))
	for _, id := range ids {
		addrs = append(addrs, t.eps[id].Addr())
	}
	return addrs
}

// Open implements ClusterTransport: every endpoint learns every other's
// actual listen address (resolving ephemeral ports).
func (t *TCPClusterTransport) Open() error {
	for self, ep := range t.eps {
		peers := make(map[ProcID]string, len(t.eps)-1)
		for id, other := range t.eps {
			if id != self {
				peers[id] = other.Addr()
			}
		}
		ep.SetPeers(peers)
	}
	return nil
}

// Crash implements ClusterTransport: closing the endpoint drops its
// connections, so peers see silence.
func (t *TCPClusterTransport) Crash(id ProcID) {
	if ep := t.eps[id]; ep != nil {
		_ = ep.Close()
	}
}

// Close implements ClusterTransport. Endpoint Close is idempotent, so
// closing after the nodes already did is safe.
func (t *TCPClusterTransport) Close() error {
	for _, ep := range t.eps {
		_ = ep.Close()
	}
	return nil
}

// Cluster is a set of in-process nodes on one ClusterTransport — the
// easiest way to run FSR in tests, examples and single-binary deployments.
type Cluster struct {
	cfg   ClusterConfig
	ct    ClusterTransport
	nodes []*Node
	ids   []ProcID

	mu         sync.Mutex
	nextClient ProcID // client IDs handed out by Dial
}

// NewCluster builds and starts N nodes on the given cluster transport.
func NewCluster(cfg ClusterConfig, ct ClusterTransport) (*Cluster, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("fsr: cluster size %d", cfg.N)
	}
	if cfg.T == 0 {
		cfg.T = 1
	}
	if cfg.NodeConfig.DurableDir != "" {
		return nil, fmt.Errorf("fsr: set ClusterConfig.DurableDir, not NodeConfig.DurableDir (one directory per member)")
	}
	if cfg.NodeConfig.StateMachine != nil {
		return nil, fmt.Errorf("fsr: set ClusterConfig.StateMachines, not NodeConfig.StateMachine (one replica per member)")
	}
	ids := make([]ProcID, cfg.N)
	for i := range ids {
		ids[i] = cfg.FirstID + ProcID(i)
	}
	c := &Cluster{cfg: cfg, ct: ct, ids: ids}
	trs := make([]transport.Transport, 0, cfg.N)
	closeUnowned := func() {
		// Endpoints not yet handed to a node are closed directly; nodes
		// close their own in Stop.
		for _, tr := range trs[len(c.nodes):] {
			_ = tr.Close()
		}
	}
	for _, id := range ids {
		tr, err := ct.Join(id)
		if err != nil {
			closeUnowned()
			c.Stop()
			return nil, err
		}
		trs = append(trs, tr)
	}
	if err := ct.Open(); err != nil {
		closeUnowned()
		c.Stop()
		return nil, err
	}
	for i, id := range ids {
		nc := cfg.memberConfig(id)
		nc.Members = ids
		node, err := NewNode(nc, trs[i])
		if err != nil {
			closeUnowned()
			c.Stop()
			return nil, err
		}
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

// Node returns the i-th member (in initial ring order).
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Nodes returns all running members.
func (c *Cluster) Nodes() []*Node { return append([]*Node(nil), c.nodes...) }

// IDs returns the member IDs in initial ring order.
func (c *Cluster) IDs() []ProcID { return append([]ProcID(nil), c.ids...) }

// Crash fail-stops the i-th member: its endpoint drops off the transport
// and the survivors' failure detectors trigger a view change.
func (c *Cluster) Crash(i int) {
	node := c.nodes[i]
	c.ct.Crash(node.Self())
	node.Stop()
}

// Restart brings a crashed member back in place: it re-provisions the
// member's transport endpoint, starts a fresh node on the member's durable
// directory (rebuilding its state machine from snapshot + WAL), and asks
// the group for readmission; the node then catches up on the suffix of the
// total order it missed before resuming live traffic. The returned node
// replaces Node(i).
//
// Restart requires that the member was stopped (Crash). Without a
// ClusterConfig.DurableDir the member comes back empty-handed, like any
// fresh joiner.
func (c *Cluster) Restart(i int) (*Node, error) {
	if i < 0 || i >= len(c.nodes) {
		return nil, fmt.Errorf("fsr: restart of member %d of %d", i, len(c.nodes))
	}
	id := c.ids[i]
	tr, err := c.ct.Join(id)
	if err != nil {
		return nil, fmt.Errorf("fsr: restart %d: %w", id, err)
	}
	if err := c.ct.Open(); err != nil {
		_ = tr.Close()
		return nil, fmt.Errorf("fsr: restart %d: %w", id, err)
	}
	contacts := slices.Delete(slices.Clone(c.ids), i, i+1)
	nc := c.cfg.memberConfig(id)
	nc.Joiner = true
	nc.Members = contacts
	node, err := NewNode(nc, tr)
	if err != nil {
		_ = tr.Close()
		return nil, err
	}
	node.Join(contacts)
	c.nodes[i] = node
	return node, nil
}

// Dial connects a new session client to the cluster: a non-member
// publisher/subscriber speaking the client sub-protocol to one member at a
// time over the cluster's own transport, with automatic failover when the
// serving member crashes or leaves. It is the transport-agnostic sibling
// of client.Dial — over TCPTransport the frames cross real sockets, over
// MemTransport (optionally wrapped in chaos) they stay in process.
//
// The returned Session lives independently of the member nodes; close it
// when done. Options' zero values select the defaults.
func (c *Cluster) Dial(opts SessionOptions) (Session, error) {
	c.mu.Lock()
	id := ClientIDBase + c.nextClient
	c.nextClient++
	c.mu.Unlock()
	tr, err := c.ct.Join(id)
	if err != nil {
		return nil, fmt.Errorf("fsr: dial session: %w", err)
	}
	if err := c.ct.Open(); err != nil {
		_ = tr.Close()
		return nil, fmt.Errorf("fsr: dial session: %w", err)
	}
	inner := opts.OnClose
	opts.OnClose = func() {
		_ = tr.Close()
		if inner != nil {
			inner()
		}
	}
	s, err := DialSession(&clusterLinkDialer{tr: tr, members: c.IDs()}, opts)
	if err != nil {
		_ = tr.Close()
		return nil, err
	}
	return s, nil
}

// DialVia opens a session over an existing transport endpoint, rotating
// across the given target process IDs. It is the building block under
// Cluster.Dial, exported for topologies the Cluster doesn't know about:
// edge replicas dialing their upstream members, or clients pinned to a set
// of edge nodes on a shared hub. The endpoint stays owned by the caller
// unless opts.OnClose closes it.
//
// The dialer implements WritableAdvertiser: when a read-only target
// redirects a publish with the writable member set, the rotation switches
// to those members.
func DialVia(tr transport.Transport, targets []ProcID, opts SessionOptions) (Session, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("fsr: dial via empty target set")
	}
	d := &clusterLinkDialer{tr: tr, members: append([]ProcID(nil), targets...)}
	return DialSession(d, opts)
}

// clusterLinkDialer rotates a session client across the cluster members,
// all reached through the client's one transport endpoint.
type clusterLinkDialer struct {
	tr      transport.Transport
	members []ProcID

	mu   sync.Mutex
	next int
}

// Dial implements LinkDialer: bind to the next member in rotation. Liveness
// is probed by the session's HELLO — a dead member fails the first send
// (or times out) and the rotation moves on.
func (d *clusterLinkDialer) Dial(h func(payload []byte)) (SessionLink, error) {
	d.tr.SetHandler(func(from transport.ProcID, payload []byte) { h(payload) })
	d.mu.Lock()
	member := d.members[d.next%len(d.members)]
	d.next++
	d.mu.Unlock()
	return clusterLink{tr: d.tr, to: member}, nil
}

// NeedWritable implements WritableAdvertiser: a read-only target bounced a
// publish and named the writable members, so the rotation moves to them.
// Addresses are for socket-level dialers; on a shared transport the IDs
// are directly reachable.
func (d *clusterLinkDialer) NeedWritable(members []ProcID, addrs []string) {
	if len(members) == 0 {
		return
	}
	d.mu.Lock()
	d.members = append([]ProcID(nil), members...)
	d.next = 0
	d.mu.Unlock()
}

// clusterLink is one client-to-member binding on the shared endpoint.
type clusterLink struct {
	tr transport.Transport
	to ProcID
}

func (l clusterLink) Send(payload []byte) error { return l.tr.Send(l.to, payload) }

// Close implements SessionLink; the endpoint is shared across bindings and
// owned by the session's OnClose.
func (l clusterLink) Close() error { return nil }

// Stop shuts down every node and releases the cluster transport.
func (c *Cluster) Stop() {
	for _, n := range c.nodes {
		n.Stop()
	}
	_ = c.ct.Close()
}

// WaitView blocks until node i reports an installed view with the given
// member count, or the timeout expires. It observes CurrentView rather than
// the Views channel, so it never races an application consumer of Views.
func (c *Cluster) WaitView(i int, members int, timeout time.Duration) (ViewInfo, bool) {
	deadline := time.Now().Add(timeout)
	for {
		v := c.nodes[i].CurrentView()
		if len(v.Members) == members {
			return v, true
		}
		if time.Now().After(deadline) {
			return ViewInfo{}, false
		}
		time.Sleep(time.Millisecond)
	}
}
