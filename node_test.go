package fsr_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"fsr"
	"fsr/transport/mem"
)

// fastConfig keeps failure detection snappy for tests.
func fastConfig() fsr.Config {
	return fsr.Config{
		HeartbeatInterval: 10 * time.Millisecond,
		FailureTimeout:    150 * time.Millisecond,
		ChangeTimeout:     300 * time.Millisecond,
	}
}

func newCluster(t *testing.T, n, tol int) *fsr.Cluster {
	t.Helper()
	c, err := fsr.NewCluster(fsr.ClusterConfig{N: n, T: tol, NodeConfig: fastConfig()},
		fsr.MemTransport(nil))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// collect reads exactly want messages from node i (with a deadline).
func collect(t *testing.T, node *fsr.Node, want int) []fsr.Message {
	t.Helper()
	var out []fsr.Message
	deadline := time.After(20 * time.Second)
	for len(out) < want {
		select {
		case m, ok := <-node.Messages():
			if !ok {
				t.Fatalf("node %d: message stream closed after %d/%d", node.Self(), len(out), want)
			}
			out = append(out, m)
		case <-deadline:
			t.Fatalf("node %d: timeout after %d/%d messages", node.Self(), len(out), want)
		}
	}
	return out
}

func assertSameOrder(t *testing.T, a, b []fsr.Message) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Origin != b[i].Origin || a[i].LogicalID != b[i].LogicalID ||
			!bytes.Equal(a[i].Payload, b[i].Payload) {
			t.Fatalf("order mismatch at %d: %v/%d vs %v/%d",
				i, a[i].Origin, a[i].LogicalID, b[i].Origin, b[i].LogicalID)
		}
	}
}

func TestClusterBasicBroadcast(t *testing.T) {
	c := newCluster(t, 5, 1)
	ctx := context.Background()
	const per = 10
	for i := range 5 {
		for j := range per {
			payload := []byte(fmt.Sprintf("n%d-m%d", i, j))
			if _, err := c.Node(i).Broadcast(ctx, payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	var streams [][]fsr.Message
	for i := range 5 {
		streams = append(streams, collect(t, c.Node(i), 5*per))
	}
	for i := 1; i < 5; i++ {
		assertSameOrder(t, streams[0], streams[i])
	}
}

func TestClusterLargeMessage(t *testing.T) {
	c := newCluster(t, 4, 1)
	payload := make([]byte, 300*1024) // ~37 segments at the default size
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if _, err := c.Node(2).Broadcast(context.Background(), payload); err != nil {
		t.Fatal(err)
	}
	for i := range 4 {
		msgs := collect(t, c.Node(i), 1)
		if !bytes.Equal(msgs[0].Payload, payload) {
			t.Fatalf("node %d: payload corrupted (len %d vs %d)", i, len(msgs[0].Payload), len(payload))
		}
		if msgs[0].Origin != c.Node(2).Self() {
			t.Fatalf("node %d: origin %d", i, msgs[0].Origin)
		}
	}
}

func TestClusterConcurrentBroadcasters(t *testing.T) {
	c := newCluster(t, 3, 1)
	ctx := context.Background()
	const goroutines, per = 4, 25
	var wg sync.WaitGroup
	for g := range goroutines {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			node := c.Node(g % 3)
			for j := range per {
				payload := []byte(fmt.Sprintf("g%d-%d", g, j))
				if _, err := node.Broadcast(ctx, payload); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	total := goroutines * per
	a := collect(t, c.Node(0), total)
	b := collect(t, c.Node(2), total)
	assertSameOrder(t, a, b)
}

func TestClusterSingleNode(t *testing.T) {
	c := newCluster(t, 1, 0)
	if _, err := c.Node(0).Broadcast(context.Background(), []byte("solo")); err != nil {
		t.Fatal(err)
	}
	msgs := collect(t, c.Node(0), 1)
	if string(msgs[0].Payload) != "solo" {
		t.Fatalf("got %q", msgs[0].Payload)
	}
}

func TestBroadcastContextCancel(t *testing.T) {
	c := newCluster(t, 2, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Node(0).Broadcast(ctx, []byte("x"))
	if err == nil {
		// Accepted before cancellation noticed — legal but unlikely; the
		// canceled context must at least not wedge the node.
		t.Log("broadcast accepted despite canceled context")
	} else if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
}

func TestBroadcastAfterStop(t *testing.T) {
	c := newCluster(t, 2, 1)
	c.Node(0).Stop()
	_, err := c.Node(0).Broadcast(context.Background(), []byte("x"))
	if err != fsr.ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

func TestCrashStandardMemberContinues(t *testing.T) {
	c := newCluster(t, 5, 2)
	ctx := context.Background()
	if _, err := c.Node(0).Broadcast(ctx, []byte("before")); err != nil {
		t.Fatal(err)
	}
	c.Crash(4) // standard process
	if _, ok := c.WaitView(0, 4, 10*time.Second); !ok {
		t.Fatal("view excluding the crashed member never installed")
	}
	if _, err := c.Node(1).Broadcast(ctx, []byte("after")); err != nil {
		t.Fatal(err)
	}
	for i := range 4 {
		msgs := collect(t, c.Node(i), 2)
		if string(msgs[0].Payload) != "before" || string(msgs[1].Payload) != "after" {
			t.Fatalf("node %d got %q, %q", i, msgs[0].Payload, msgs[1].Payload)
		}
	}
}

func TestCrashLeaderContinues(t *testing.T) {
	c := newCluster(t, 5, 2)
	ctx := context.Background()
	const preload = 20
	for j := range preload {
		if _, err := c.Node(3).Broadcast(ctx, []byte(fmt.Sprintf("pre%d", j))); err != nil {
			t.Fatal(err)
		}
	}
	c.Crash(0) // the sequencer itself
	if _, ok := c.WaitView(1, 4, 10*time.Second); !ok {
		t.Fatal("post-crash view never installed")
	}
	if _, err := c.Node(2).Broadcast(ctx, []byte("post")); err != nil {
		t.Fatal(err)
	}
	// Survivors agree on one order that contains all of node 3's preloaded
	// messages and the post-crash message.
	want := preload + 1
	var streams [][]fsr.Message
	for i := 1; i < 5; i++ {
		streams = append(streams, collect(t, c.Node(i), want))
	}
	for i := 1; i < len(streams); i++ {
		assertSameOrder(t, streams[0], streams[i])
	}
	seen := map[string]bool{}
	for _, m := range streams[0] {
		seen[string(m.Payload)] = true
	}
	for j := range preload {
		if !seen[fmt.Sprintf("pre%d", j)] {
			t.Fatalf("pre-crash message pre%d lost", j)
		}
	}
	if !seen["post"] {
		t.Fatal("post-crash message lost")
	}
	for i := 1; i < 5; i++ {
		if err := c.Node(i).Err(); err != nil {
			t.Fatalf("node %d failed: %v", i, err)
		}
	}
}

func TestGracefulLeave(t *testing.T) {
	c := newCluster(t, 4, 1)
	ctx := context.Background()
	c.Node(3).Leave()
	if _, ok := c.WaitView(0, 3, 10*time.Second); !ok {
		t.Fatal("leave view never installed")
	}
	if _, err := c.Node(1).Broadcast(ctx, []byte("still going")); err != nil {
		t.Fatal(err)
	}
	for i := range 3 {
		msgs := collect(t, c.Node(i), 1)
		if string(msgs[0].Payload) != "still going" {
			t.Fatalf("node %d got %q", i, msgs[0].Payload)
		}
	}
}

func TestDynamicJoin(t *testing.T) {
	mt := fsr.MemTransport(mem.NewNetwork(mem.Options{}))
	c, err := fsr.NewCluster(fsr.ClusterConfig{N: 3, T: 1, NodeConfig: fastConfig()}, mt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	ctx := context.Background()
	if _, err := c.Node(0).Broadcast(ctx, []byte("old world")); err != nil {
		t.Fatal(err)
	}
	// Let every member deliver the pre-join message, so the join's flush
	// provably starts the newcomer after it (a joiner receives exactly the
	// history some survivor still needed — nothing older).
	for i := range 3 {
		if got := collect(t, c.Node(i), 1); string(got[0].Payload) != "old world" {
			t.Fatalf("node %d got %q", i, got[0].Payload)
		}
	}
	// Bring up a joiner on the same hub.
	ep, err := mt.Network().Join(9)
	if err != nil {
		t.Fatal(err)
	}
	jc := fastConfig()
	jc.Self = 9
	jc.Joiner = true
	joiner, err := fsr.NewNode(jc, ep)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(joiner.Stop)
	joiner.Join(c.IDs())
	deadline := time.After(10 * time.Second)
	for {
		select {
		case v := <-joiner.Views():
			if len(v.Members) == 4 {
				goto joined
			}
		case <-deadline:
			t.Fatal("joiner never admitted")
		}
	}
joined:
	if _, err := joiner.Broadcast(ctx, []byte("new blood")); err != nil {
		t.Fatal(err)
	}
	msgs := collect(t, joiner, 1)
	if string(msgs[0].Payload) != "new blood" {
		t.Fatalf("joiner got %q", msgs[0].Payload)
	}
	// An old member sees it too.
	old := collect(t, c.Node(1), 1)
	if string(old[0].Payload) != "new blood" {
		t.Fatalf("old member got %q", old[0].Payload)
	}
}

func TestViewInfoContents(t *testing.T) {
	c := newCluster(t, 3, 2)
	c.Crash(2)
	v, ok := c.WaitView(0, 2, 10*time.Second)
	if !ok {
		t.Fatal("no view")
	}
	if v.T != 1 { // min(T=2, n-1=1)
		t.Errorf("view T = %d, want 1", v.T)
	}
	if v.Members[0] != c.IDs()[0] {
		t.Errorf("leader changed unexpectedly: %v", v.Members)
	}
}
