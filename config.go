package fsr

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"fsr/internal/core"
	"fsr/internal/ring"
	"fsr/internal/wal"
	"fsr/internal/wire"
)

// ProcID identifies one process in the group.
type ProcID = ring.ProcID

// Config parameterizes a Node.
type Config struct {
	// Self is this process's ID. Required.
	Self ProcID

	// Members is the initial view in ring order: Members[0] is the leader
	// (fixed sequencer), Members[1..T] the backups. Required unless Joiner
	// is set.
	Members []ProcID

	// T is the number of process failures to tolerate; the T ring
	// positions after the leader act as backups. Each installed view uses
	// min(T, n-1). Default 1.
	T int

	// SegmentSize caps one segment's payload bytes; larger broadcasts are
	// split so uniform frame sizes keep large messages from stalling small
	// ones (paper §4.1). Default core.DefaultSegmentSize (8 KiB).
	SegmentSize int

	// MaxPiggyback bounds acknowledgments piggybacked per frame
	// (paper §4.2.2). Default core.DefaultMaxPiggyback.
	MaxPiggyback int

	// MaxFrameData bounds how many data segments one transport frame
	// batches. Relayed traffic fills frames up to this bound (amortizing
	// per-frame headers, syscalls and per-hop processing), while own
	// broadcasts stay paced at one segment per frame so the paper's
	// fairness rule keeps its guarantees. 1 restores the paper's strict
	// one-segment-per-frame behavior. Default core.DefaultMaxFrameData.
	MaxFrameData int

	// MaxPendingOwn bounds own segments queued for initiation before
	// Broadcast blocks (backpressure). Default 1024.
	MaxPendingOwn int

	// HeartbeatInterval is the failure-detector beat period. Default 50ms.
	HeartbeatInterval time.Duration

	// FailureTimeout is the silence threshold before a peer is declared
	// crashed. Must exceed HeartbeatInterval. Default 500ms.
	FailureTimeout time.Duration

	// ChangeTimeout restarts a stalled view change. Default 1s.
	ChangeTimeout time.Duration

	// Joiner starts the node outside the group; call Node.Join to enter.
	// Members is then the contact list rather than an initial view.
	Joiner bool

	// DurableDir, when set, makes the delivered total order survive a
	// process restart: the node keeps a write-ahead log (and, with a
	// StateMachine, periodic snapshots) in this directory, persists every
	// delivery before dispatching it, and on startup rebuilds its position
	// from snapshot + WAL. A restarted node (start it as a Joiner on the
	// same directory; see Cluster.Restart) then fetches the suffix of the
	// order it missed from its peers before resuming. One directory
	// belongs to exactly one member.
	DurableDir string

	// StateMachine, when set, receives every delivered message via Apply
	// in total order. With DurableDir it is checkpointed and restored
	// across restarts; without it, it is simply a convenient consumer.
	StateMachine StateMachine

	// SnapshotEvery is how many applied messages separate state-machine
	// snapshots (which also truncate the WAL behind them). Only meaningful
	// with both DurableDir and StateMachine. Default 4096.
	SnapshotEvery int

	// WALSegmentBytes caps one write-ahead-log segment file (the unit of
	// truncation behind a snapshot). Default 4 MiB.
	WALSegmentBytes int

	// WALFS overrides the filesystem the write-ahead log runs on — the
	// storage fault-injection seam (internal/wal/walfault; the chaos
	// harness's hostile-disk profile runs durable members on it). Nil, the
	// production value, selects the real filesystem.
	WALFS wal.FS

	// WireVersion overrides the protocol version this node stamps on its
	// outbound ring frames — the version-skew seam for rolling-upgrade
	// tests (the chaos harness runs mixed old/new rings on it). Zero, the
	// production value, selects wire.CurrentVersion. Must share
	// wire.ProtoMajor: a node cannot speak a major it does not implement.
	WireVersion byte

	// Logger receives structured events — view installs, catch-up
	// progress, WAL rotation and repair, slow-subscriber detaches — each
	// tagged with the node ID. Default discards them. Logging happens off
	// the frame hot path only.
	Logger *slog.Logger
}

// WithLogger returns a copy of c with the structured logger set.
func (c Config) WithLogger(l *slog.Logger) Config {
	c.Logger = l
	return c
}

// WithDurableDir returns a copy of c with the durable directory set —
// chainable sugar for building configs:
//
//	cfg := fsr.Config{...}.WithDurableDir(dir).WithStateMachine(sm)
func (c Config) WithDurableDir(dir string) Config {
	c.DurableDir = dir
	return c
}

// WithStateMachine returns a copy of c with the replicated state machine
// set.
func (c Config) WithStateMachine(sm StateMachine) Config {
	c.StateMachine = sm
	return c
}

// ErrStopped is returned by Broadcast after Stop or eviction from the group.
var ErrStopped = errors.New("fsr: node stopped")

func (c Config) withDefaults() (Config, error) {
	if c.T == 0 {
		c.T = 1
	}
	if c.T < 0 {
		return c, fmt.Errorf("fsr: negative T %d", c.T)
	}
	if c.MaxPendingOwn <= 0 {
		c.MaxPendingOwn = 1024
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 50 * time.Millisecond
	}
	if c.FailureTimeout <= 0 {
		c.FailureTimeout = 500 * time.Millisecond
	}
	if c.FailureTimeout <= c.HeartbeatInterval {
		return c, fmt.Errorf("fsr: FailureTimeout %v must exceed HeartbeatInterval %v",
			c.FailureTimeout, c.HeartbeatInterval)
	}
	if c.ChangeTimeout <= 0 {
		c.ChangeTimeout = time.Second
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 4096
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.WireVersion == 0 {
		c.WireVersion = wire.CurrentVersion
	}
	if wire.VersionMajor(c.WireVersion) != wire.ProtoMajor {
		return c, fmt.Errorf("fsr: WireVersion %d.%d: this build implements major %d",
			wire.VersionMajor(c.WireVersion), wire.VersionMinor(c.WireVersion), wire.ProtoMajor)
	}
	if !c.Joiner && len(c.Members) == 0 {
		return c, fmt.Errorf("fsr: empty initial membership")
	}
	return c, nil
}

// initialView builds the first view from the config.
func (c Config) initialView() (core.View, error) {
	if c.Joiner {
		r, err := ring.New([]ring.ProcID{c.Self}, 0)
		if err != nil {
			return core.View{}, err
		}
		return core.View{ID: 0, Ring: r}, nil
	}
	r, err := ring.New(c.Members, min(c.T, len(c.Members)-1))
	if err != nil {
		return core.View{}, fmt.Errorf("fsr: invalid membership: %w", err)
	}
	return core.View{ID: 1, Ring: r}, nil
}
