package fsr

import (
	"bytes"
	"testing"

	"fsr/internal/core"
	"fsr/internal/wire"
)

func TestAssemblerSinglePart(t *testing.T) {
	a := newAssembler()
	msg, res := a.add(core.Delivery{
		Seq: 7, ID: wire.MsgID{Origin: 2, Local: 5}, Part: 0, Parts: 1, Body: []byte("x"),
	})
	if res != asmComplete || msg.Seq != 7 || msg.Origin != 2 || msg.LogicalID != 5 || string(msg.Payload) != "x" {
		t.Fatalf("got %+v res=%v", msg, res)
	}
	if len(a.partial) != 0 {
		t.Error("partial state leaked")
	}
}

func TestAssemblerMultiPart(t *testing.T) {
	a := newAssembler()
	parts := [][]byte{[]byte("aa"), []byte("bb"), []byte("c")}
	for i, p := range parts[:2] {
		if _, res := a.add(core.Delivery{
			Seq: uint64(10 + i), ID: wire.MsgID{Origin: 1, Local: uint64(20 + i)},
			Part: uint32(i), Parts: 3, Body: p,
		}); res != asmPending {
			t.Fatalf("completed early at part %d", i)
		}
	}
	msg, res := a.add(core.Delivery{
		Seq: 12, ID: wire.MsgID{Origin: 1, Local: 22}, Part: 2, Parts: 3, Body: parts[2],
	})
	if res != asmComplete {
		t.Fatal("not completed on final part")
	}
	if msg.Seq != 12 || msg.Origin != 1 || msg.LogicalID != 20 {
		t.Fatalf("header: %+v", msg)
	}
	if !bytes.Equal(msg.Payload, []byte("aabbc")) {
		t.Fatalf("payload %q", msg.Payload)
	}
	if len(a.partial) != 0 {
		t.Error("partial state leaked")
	}
}

func TestAssemblerInterleavedOrigins(t *testing.T) {
	a := newAssembler()
	// Segments of two origins interleave in the total order; each must
	// reassemble independently.
	seq := uint64(1)
	add := func(origin ProcID, local uint64, part, parts uint32, body string) (Message, asmResult) {
		d := core.Delivery{
			Seq: seq, ID: wire.MsgID{Origin: origin, Local: local},
			Part: part, Parts: parts, Body: []byte(body),
		}
		seq++
		return a.add(d)
	}
	if _, res := add(1, 0, 0, 2, "1a"); res != asmPending {
		t.Fatal("early")
	}
	if _, res := add(2, 0, 0, 2, "2a"); res != asmPending {
		t.Fatal("early")
	}
	m1, res := add(1, 1, 1, 2, "1b")
	if res != asmComplete || string(m1.Payload) != "1a1b" || m1.Origin != 1 {
		t.Fatalf("m1: %+v", m1)
	}
	m2, res := add(2, 1, 1, 2, "2b")
	if res != asmComplete || string(m2.Payload) != "2a2b" || m2.Origin != 2 {
		t.Fatalf("m2: %+v", m2)
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	if _, err := (Config{Self: 1}).withDefaults(); err == nil {
		t.Error("empty members accepted")
	}
	if _, err := (Config{Self: 1, Members: []ProcID{1, 2}, T: -1}).withDefaults(); err == nil {
		t.Error("negative T accepted")
	}
	c, err := (Config{Self: 1, Members: []ProcID{1, 2, 3}}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.T != 1 || c.MaxPendingOwn != 1024 {
		t.Errorf("defaults: %+v", c)
	}
	if _, err := (Config{Self: 1, Members: []ProcID{1}, HeartbeatInterval: 50, FailureTimeout: 10}).withDefaults(); err == nil {
		t.Error("timeout below heartbeat accepted")
	}
	v, err := (Config{Self: 9, Joiner: true}).initialView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Ring.N() != 1 || v.ID != 0 {
		t.Errorf("joiner view: %+v", v)
	}
}

func TestAssemblerDropsHeadlessMessage(t *testing.T) {
	// A process that joins mid-message sees only the tail parts of a
	// straddling broadcast; the assembler must drop it cleanly (reporting
	// the final segment's seq so a durable node can fetch the message via
	// catch-up) instead of emitting a corrupt payload.
	a := newAssembler()
	if _, res := a.add(core.Delivery{
		Seq: 50, ID: wire.MsgID{Origin: 3, Local: 11}, Part: 1, Parts: 3, Body: []byte("mid"),
	}); res != asmPending {
		t.Fatalf("tail part res = %v", res)
	}
	msg, res := a.add(core.Delivery{
		Seq: 51, ID: wire.MsgID{Origin: 3, Local: 12}, Part: 2, Parts: 3, Body: []byte("end"),
	})
	if res != asmDropped || msg.Seq != 51 {
		t.Fatalf("final part of headless message: res=%v msg=%+v", res, msg)
	}
	if len(a.partial) != 0 || len(a.poisoned) != 0 {
		t.Error("poison state leaked")
	}
	// A final-only sighting is dropped immediately.
	if msg, res := a.add(core.Delivery{
		Seq: 60, ID: wire.MsgID{Origin: 4, Local: 9}, Part: 1, Parts: 2, Body: []byte("z"),
	}); res != asmDropped || msg.Seq != 60 {
		t.Fatalf("final-only sighting: res=%v", res)
	}
	// Later messages from the same origin reassemble normally.
	if _, res := a.add(core.Delivery{
		Seq: 70, ID: wire.MsgID{Origin: 3, Local: 13}, Part: 0, Parts: 2, Body: []byte("a"),
	}); res != asmPending {
		t.Fatal("fresh head not pending")
	}
	if m, res := a.add(core.Delivery{
		Seq: 71, ID: wire.MsgID{Origin: 3, Local: 14}, Part: 1, Parts: 2, Body: []byte("b"),
	}); res != asmComplete || string(m.Payload) != "ab" {
		t.Fatalf("fresh message after drop: res=%v payload=%q", res, m.Payload)
	}
}
