package fsr

import (
	"bytes"
	"testing"

	"fsr/internal/core"
	"fsr/internal/wire"
)

func TestAssemblerSinglePart(t *testing.T) {
	a := newAssembler()
	msg, done := a.add(core.Delivery{
		Seq: 7, ID: wire.MsgID{Origin: 2, Local: 5}, Part: 0, Parts: 1, Body: []byte("x"),
	})
	if !done || msg.Seq != 7 || msg.Origin != 2 || msg.LogicalID != 5 || string(msg.Payload) != "x" {
		t.Fatalf("got %+v done=%v", msg, done)
	}
	if len(a.partial) != 0 {
		t.Error("partial state leaked")
	}
}

func TestAssemblerMultiPart(t *testing.T) {
	a := newAssembler()
	parts := [][]byte{[]byte("aa"), []byte("bb"), []byte("c")}
	for i, p := range parts[:2] {
		if _, done := a.add(core.Delivery{
			Seq: uint64(10 + i), ID: wire.MsgID{Origin: 1, Local: uint64(20 + i)},
			Part: uint32(i), Parts: 3, Body: p,
		}); done {
			t.Fatalf("completed early at part %d", i)
		}
	}
	msg, done := a.add(core.Delivery{
		Seq: 12, ID: wire.MsgID{Origin: 1, Local: 22}, Part: 2, Parts: 3, Body: parts[2],
	})
	if !done {
		t.Fatal("not completed on final part")
	}
	if msg.Seq != 12 || msg.Origin != 1 || msg.LogicalID != 20 {
		t.Fatalf("header: %+v", msg)
	}
	if !bytes.Equal(msg.Payload, []byte("aabbc")) {
		t.Fatalf("payload %q", msg.Payload)
	}
	if len(a.partial) != 0 {
		t.Error("partial state leaked")
	}
}

func TestAssemblerInterleavedOrigins(t *testing.T) {
	a := newAssembler()
	// Segments of two origins interleave in the total order; each must
	// reassemble independently.
	seq := uint64(1)
	add := func(origin ProcID, local uint64, part, parts uint32, body string) (Message, bool) {
		d := core.Delivery{
			Seq: seq, ID: wire.MsgID{Origin: origin, Local: local},
			Part: part, Parts: parts, Body: []byte(body),
		}
		seq++
		return a.add(d)
	}
	if _, done := add(1, 0, 0, 2, "1a"); done {
		t.Fatal("early")
	}
	if _, done := add(2, 0, 0, 2, "2a"); done {
		t.Fatal("early")
	}
	m1, done := add(1, 1, 1, 2, "1b")
	if !done || string(m1.Payload) != "1a1b" || m1.Origin != 1 {
		t.Fatalf("m1: %+v", m1)
	}
	m2, done := add(2, 1, 1, 2, "2b")
	if !done || string(m2.Payload) != "2a2b" || m2.Origin != 2 {
		t.Fatalf("m2: %+v", m2)
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	if _, err := (Config{Self: 1}).withDefaults(); err == nil {
		t.Error("empty members accepted")
	}
	if _, err := (Config{Self: 1, Members: []ProcID{1, 2}, T: -1}).withDefaults(); err == nil {
		t.Error("negative T accepted")
	}
	c, err := (Config{Self: 1, Members: []ProcID{1, 2, 3}}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.T != 1 || c.MaxPendingOwn != 1024 {
		t.Errorf("defaults: %+v", c)
	}
	if _, err := (Config{Self: 1, Members: []ProcID{1}, HeartbeatInterval: 50, FailureTimeout: 10}).withDefaults(); err == nil {
		t.Error("timeout below heartbeat accepted")
	}
	v, err := (Config{Self: 9, Joiner: true}).initialView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Ring.N() != 1 || v.ID != 0 {
		t.Errorf("joiner view: %+v", v)
	}
}
