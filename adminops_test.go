package fsr_test

import (
	"encoding/json"
	"testing"
	"time"

	"fsr"
	"fsr/admin"
	"fsr/internal/wire"
	"fsr/transport"
	"fsr/transport/mem"
)

// adminAsk sends one AdminReq to a process over a raw transport endpoint
// and returns the decoded response body.
func adminAsk(t *testing.T, ep transport.Transport, resp <-chan *wire.AdminResp,
	to fsr.ProcID, req *wire.AdminReq, out any) {
	t.Helper()
	if err := ep.Send(to, wire.EncodeAdminReq(req)); err != nil {
		t.Fatalf("admin send to %d: %v", to, err)
	}
	select {
	case p := <-resp:
		if p.Op != req.Op {
			t.Fatalf("admin response op %d, want %d", p.Op, req.Op)
		}
		if p.Err != "" {
			t.Fatalf("admin op %d refused: %s", req.Op, p.Err)
		}
		if err := json.Unmarshal(p.Body, out); err != nil {
			t.Fatalf("admin op %d body: %v", req.Op, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("admin op %d: no response from %d", req.Op, to)
	}
}

// TestAdminEvictAndJoinHint drives the operator membership ops end to end:
// evict relayed through a non-coordinator forces a live member out of the
// view (and the evictee fail-stops), and a contact-less joiner sits idle
// until a join-hint hands it members to request admission through.
func TestAdminEvictAndJoinHint(t *testing.T) {
	network := mem.NewNetwork(mem.Options{})
	cluster, err := fsr.NewCluster(
		fsr.ClusterConfig{N: 3, T: 1, NodeConfig: fastConfig()},
		fsr.MemTransport(network))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Stop)
	awaitView := func(n *fsr.Node, want int) fsr.ViewInfo {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			v := n.CurrentView()
			if len(v.Members) == want {
				return v
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d stuck with view %v, want %d members", n.Self(), v.Members, want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	awaitView(cluster.Node(0), 3)

	// A raw admin endpoint in the client ID space, as fsr-admin would dial.
	ep, err := network.Join(fsr.ClientIDBase + 0x500)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	resp := make(chan *wire.AdminResp, 4)
	ep.SetHandler(func(from transport.ProcID, payload []byte) {
		if len(payload) == 0 || payload[0] != wire.KindAdmin {
			return
		}
		v, err := wire.DecodeAdmin(payload)
		if err != nil {
			return
		}
		if p, ok := v.(*wire.AdminResp); ok {
			p.Body = append([]byte(nil), p.Body...)
			resp <- p
		}
	})

	// Evicting a non-member is refused outright.
	var ev admin.EvictResult
	adminAsk(t, ep, resp, 1, &wire.AdminReq{Op: wire.AdminEvict, Target: 77}, &ev)
	if ev.Requested {
		t.Fatalf("evict of non-member 77 accepted: %+v", ev)
	}

	// Evict member 2 through member 1 — not the coordinator, so the
	// request must be relayed — and watch the view shrink to {0, 1}.
	adminAsk(t, ep, resp, 1, &wire.AdminReq{Op: wire.AdminEvict, Target: 2}, &ev)
	if !ev.Requested {
		t.Fatalf("evict of member 2 refused: %+v", ev)
	}
	v := awaitView(cluster.Node(0), 2)
	for _, m := range v.Members {
		if m == 2 {
			t.Fatalf("member 2 still in view %v after evict", v.Members)
		}
	}

	// A joiner booted with no contacts has no one to ask for admission;
	// the join-hint hands it the membership and it joins.
	jcfg := fastConfig()
	jcfg.Self = 7
	jcfg.Joiner = true
	jep, err := network.Join(7)
	if err != nil {
		t.Fatal(err)
	}
	joiner, err := fsr.NewNode(jcfg, jep)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(joiner.Stop)
	var jh admin.JoinHintResult
	adminAsk(t, ep, resp, 7, &wire.AdminReq{Op: wire.AdminJoinHint, Contacts: []uint32{0, 1}}, &jh)
	if !jh.Accepted {
		t.Fatalf("join hint refused: %+v", jh)
	}
	v = awaitView(joiner, 3)
	found := false
	for _, m := range v.Members {
		found = found || m == 7
	}
	if !found {
		t.Fatalf("joiner 7 not in its installed view %v", v.Members)
	}
	// A second hint against the now-admitted member is refused politely.
	adminAsk(t, ep, resp, 7, &wire.AdminReq{Op: wire.AdminJoinHint, Contacts: []uint32{0, 1}}, &jh)
	if jh.Accepted {
		t.Fatal("join hint accepted by an admitted member")
	}
}
