// Package admin queries running FSR members and edge replicas for operator
// state over the ordinary client transport.
//
// Every process that listens for clients also answers the KindAdmin
// sub-protocol: one request byte selects an op (status, members, wal,
// sessions, snapshot) and the reply carries a JSON body with a fixed schema
// per op — the types in this package. The cmd/fsr-admin CLI renders these
// across a whole cluster; programs embed Client directly for the same data.
//
// Admin queries are answered on the node's event loop from already-snapshotted
// state, so they are safe to run against a loaded cluster, and they work
// against any member or edge — including one that is catching up or read-only,
// which is precisely when an operator wants to look.
package admin

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"fsr/internal/wire"
	"fsr/transport"
	"fsr/transport/tcp"
)

// clientIDBase mirrors fsr.ClientIDBase (this package sits below fsr so the
// node can marshal these body types without an import cycle): admin
// connections identify themselves in the client ID space.
const clientIDBase transport.ProcID = 1 << 31

// Status is the per-process headline: who it is, what view it follows, how
// far it has applied, and whether it would pass a readiness probe.
type Status struct {
	// Role is "member" or "edge".
	Role string `json:"role"`
	// ID is the process ID (member ID, or the edge's client-space ID).
	ID uint32 `json:"id"`
	// Epoch and Leader describe the installed view (members) or the view
	// observed through the upstream session (edges, 0 when unknown).
	Epoch    uint64 `json:"epoch"`
	Leader   uint32 `json:"leader"`
	IsLeader bool   `json:"is_leader,omitempty"`
	// Applied is the highest sequence number folded into local state.
	Applied    uint64 `json:"applied"`
	CatchingUp bool   `json:"catching_up,omitempty"`
	// Ready mirrors the /readyz probe; ReadyErr says why when false.
	Ready    bool   `json:"ready"`
	ReadyErr string `json:"ready_err,omitempty"`
	// TailConnected/TailLagMillis are edge-only: upstream tail health.
	TailConnected bool  `json:"tail_connected,omitempty"`
	TailLagMillis int64 `json:"tail_lag_millis,omitempty"`
}

// Members is the installed view membership as one process sees it.
type Members struct {
	Epoch  uint64   `json:"epoch"`
	Leader uint32   `json:"leader"`
	T      int      `json:"t"`
	IDs    []uint32 `json:"ids"`
}

// WALInfo is the durable-log counter snapshot (see fsr.WALMetrics).
type WALInfo struct {
	Durable           bool   `json:"durable"`
	Segments          int    `json:"segments,omitempty"`
	Bytes             int64  `json:"bytes,omitempty"`
	Appends           uint64 `json:"appends,omitempty"`
	Fsyncs            uint64 `json:"fsyncs,omitempty"`
	Rotations         uint64 `json:"rotations,omitempty"`
	Snapshots         uint64 `json:"snapshots,omitempty"`
	SnapshotSeq       uint64 `json:"snapshot_seq,omitempty"`
	SnapshotAgeMillis int64  `json:"snapshot_age_millis,omitempty"`
	Repairs           uint64 `json:"repairs,omitempty"`
}

// Sessions is the client-serving surface: publish traffic and the subscriber
// population this process currently feeds.
type Sessions struct {
	Publishes    uint64 `json:"publishes"`
	Duplicates   uint64 `json:"duplicates"`
	Bounded      uint64 `json:"bounded"`
	Subscribers  int    `json:"subscribers"`
	TailAttached int    `json:"tail_attached"`
	EdgeClients  int    `json:"edge_clients"`
	TailFrames   uint64 `json:"tail_frames"`
	TailDetaches uint64 `json:"tail_detaches"`
}

// SnapshotResult answers a snapshot trigger.
type SnapshotResult struct {
	Triggered bool   `json:"triggered"`
	Reason    string `json:"reason,omitempty"`
}

// EvictResult answers an eviction request. Requested means the membership
// layer accepted the request (relaying to the coordinator if needed); the
// eviction itself completes asynchronously with the next view change.
type EvictResult struct {
	Target    uint32 `json:"target"`
	Requested bool   `json:"requested"`
	Reason    string `json:"reason,omitempty"`
}

// JoinHintResult answers a join hint. Accepted means the process queued an
// admission request through the supplied contacts; admission itself
// completes asynchronously with a view change that includes the process.
type JoinHintResult struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

// Client is one admin connection to a member or edge. It is safe for
// concurrent use; requests are serialized over the single connection.
type Client struct {
	cc      *tcp.ClientConn
	timeout time.Duration

	mu   sync.Mutex // serializes request/response pairs
	resp chan *wire.AdminResp
}

// Dial connects the admin client to one process's client listener. timeout
// bounds the dial and each subsequent request (default 3s).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	id := clientIDBase + transport.ProcID(rand.Uint32N(1<<31))
	cc, err := tcp.DialConn(addr, id, timeout)
	if err != nil {
		return nil, fmt.Errorf("admin: dial %s: %w", addr, err)
	}
	c := &Client{cc: cc, timeout: timeout, resp: make(chan *wire.AdminResp, 1)}
	cc.SetHandler(func(payload []byte) {
		if len(payload) == 0 || payload[0] != wire.KindAdmin {
			return // keepalives or other sub-protocol traffic; not ours
		}
		v, err := wire.DecodeAdmin(payload)
		if err != nil {
			return
		}
		p, ok := v.(*wire.AdminResp)
		if !ok {
			return
		}
		// Copy the body out of the transport's buffer before handing off.
		if p.Body != nil {
			p.Body = append([]byte(nil), p.Body...)
		}
		select {
		case c.resp <- p:
		default: // no request outstanding; drop
		}
	})
	return c, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.cc.Close() }

func (c *Client) do(req *wire.AdminReq, out any) error {
	op := req.Op
	c.mu.Lock()
	defer c.mu.Unlock()
	// Drain a stale reply from an earlier timed-out request.
	select {
	case <-c.resp:
	default:
	}
	if err := c.cc.Send(wire.EncodeAdminReq(req)); err != nil {
		return fmt.Errorf("admin: send: %w", err)
	}
	t := time.NewTimer(c.timeout)
	defer t.Stop()
	for {
		select {
		case p := <-c.resp:
			if p.Op != op {
				continue // stale reply to a superseded request
			}
			if p.Err != "" {
				return fmt.Errorf("admin: remote: %s", p.Err)
			}
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(p.Body, out); err != nil {
				return fmt.Errorf("admin: decode op %d body: %w", op, err)
			}
			return nil
		case <-t.C:
			return fmt.Errorf("admin: op %d: timeout after %v", op, c.timeout)
		}
	}
}

// Status fetches the process headline.
func (c *Client) Status() (*Status, error) {
	var s Status
	if err := c.do(&wire.AdminReq{Op: wire.AdminStatus}, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Members fetches the installed view membership.
func (c *Client) Members() (*Members, error) {
	var m Members
	if err := c.do(&wire.AdminReq{Op: wire.AdminMembers}, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// WAL fetches the durable-log counters.
func (c *Client) WAL() (*WALInfo, error) {
	var w WALInfo
	if err := c.do(&wire.AdminReq{Op: wire.AdminWAL}, &w); err != nil {
		return nil, err
	}
	return &w, nil
}

// Sessions fetches the client-serving counters.
func (c *Client) Sessions() (*Sessions, error) {
	var s Sessions
	if err := c.do(&wire.AdminReq{Op: wire.AdminSessions}, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Snapshot asks the process to take a state-machine snapshot now.
func (c *Client) Snapshot() (*SnapshotResult, error) {
	var r SnapshotResult
	if err := c.do(&wire.AdminReq{Op: wire.AdminSnapshot}, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Evict asks the process to force member target out of the view — the
// operator override for a wedged or half-partitioned member the failure
// detector has not acted on. Any member accepts the request and relays it
// to the coordinator; the eviction completes with the next view change.
func (c *Client) Evict(target uint32) (*EvictResult, error) {
	var r EvictResult
	if err := c.do(&wire.AdminReq{Op: wire.AdminEvict, Target: target}, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// JoinHint hands the process a contact list (member IDs) to request
// admission through — the nudge for a joiner that restarted with a stale
// or empty member list. A process already in a view refuses politely.
func (c *Client) JoinHint(contacts []uint32) (*JoinHintResult, error) {
	var r JoinHintResult
	if err := c.do(&wire.AdminReq{Op: wire.AdminJoinHint, Contacts: contacts}, &r); err != nil {
		return nil, err
	}
	return &r, nil
}
