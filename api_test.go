package fsr_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"fsr"
)

// TestSubscribeMatchesMessagesOrder: a handler-consuming node observes the
// exact total order a channel-consuming node does.
func TestSubscribeMatchesMessagesOrder(t *testing.T) {
	c := newCluster(t, 3, 1)
	ctx := context.Background()

	var mu sync.Mutex
	var viaHandler []fsr.Message
	got := make(chan struct{}, 1)
	const total = 30
	c.Node(0).Subscribe(func(m fsr.Message) {
		mu.Lock()
		viaHandler = append(viaHandler, m)
		if len(viaHandler) == total {
			got <- struct{}{}
		}
		mu.Unlock()
	})

	for i := range total {
		if _, err := c.Node(i%3).Broadcast(ctx, []byte(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	viaChannel := collect(t, c.Node(2), total)
	select {
	case <-got:
	case <-time.After(20 * time.Second):
		mu.Lock()
		n := len(viaHandler)
		mu.Unlock()
		t.Fatalf("handler saw %d/%d messages", n, total)
	}
	mu.Lock()
	defer mu.Unlock()
	assertSameOrder(t, viaHandler, viaChannel)
}

// TestSubscribeCancelRevertsToChannel: canceling the last handler routes
// subsequent deliveries back to the Messages channel, with nothing lost.
func TestSubscribeCancelRevertsToChannel(t *testing.T) {
	c := newCluster(t, 3, 1)
	ctx := context.Background()

	first := make(chan fsr.Message, 8)
	cancel := c.Node(1).Subscribe(func(m fsr.Message) { first <- m })
	if _, err := c.Node(0).Broadcast(ctx, []byte("to-handler")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-first:
		if string(m.Payload) != "to-handler" {
			t.Fatalf("handler got %q", m.Payload)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("handler never invoked")
	}
	cancel()

	if _, err := c.Node(0).Broadcast(ctx, []byte("to-channel")); err != nil {
		t.Fatal(err)
	}
	msgs := collect(t, c.Node(1), 1)
	if string(msgs[0].Payload) != "to-channel" {
		t.Fatalf("channel got %q after cancel", msgs[0].Payload)
	}
}

// TestSubscribeMultipleHandlers: every registered handler sees every
// message.
func TestSubscribeMultipleHandlers(t *testing.T) {
	c := newCluster(t, 2, 1)
	a := make(chan string, 4)
	b := make(chan string, 4)
	c.Node(1).Subscribe(func(m fsr.Message) { a <- string(m.Payload) })
	c.Node(1).Subscribe(func(m fsr.Message) { b <- string(m.Payload) })
	if _, err := c.Node(0).Broadcast(context.Background(), []byte("fanout")); err != nil {
		t.Fatal(err)
	}
	for name, ch := range map[string]chan string{"a": a, "b": b} {
		select {
		case got := <-ch:
			if got != "fanout" {
				t.Fatalf("handler %s got %q", name, got)
			}
		case <-time.After(20 * time.Second):
			t.Fatalf("handler %s never invoked", name)
		}
	}
}

// TestWaitViewDoesNotStealViews: WaitView and an application consumer of
// Views observe the same view change — WaitView no longer drains the
// channel out from under the application.
func TestWaitViewDoesNotStealViews(t *testing.T) {
	c := newCluster(t, 4, 1)
	seen := make(chan fsr.ViewInfo, 64)
	go func() {
		for v := range c.Node(0).Views() {
			seen <- v
		}
	}()
	c.Crash(3)
	if _, ok := c.WaitView(0, 3, 10*time.Second); !ok {
		t.Fatal("WaitView never observed the 3-member view")
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case v := <-seen:
			if len(v.Members) == 3 {
				return // the application consumer saw it too
			}
		case <-deadline:
			t.Fatal("application Views consumer never saw the 3-member view")
		}
	}
}

// TestCurrentViewTracksInstall: CurrentView starts at the initial view and
// follows view changes without consuming Views.
func TestCurrentViewTracksInstall(t *testing.T) {
	c := newCluster(t, 3, 2)
	v := c.Node(1).CurrentView()
	if len(v.Members) != 3 || v.ID != 1 {
		t.Fatalf("initial view: %+v", v)
	}
	c.Crash(2)
	if _, ok := c.WaitView(1, 2, 10*time.Second); !ok {
		t.Fatal("post-crash view never installed")
	}
	v = c.Node(1).CurrentView()
	if len(v.Members) != 2 || v.ID <= 1 {
		t.Fatalf("post-crash view: %+v", v)
	}
}

// TestRequestAcceptedBooleans: Join/Leave/RotateLeader report whether the
// event loop accepted the request — true on a live node with an empty
// request slot, false once the node has halted (the loop will never
// process the request, so pretending acceptance would strand the caller).
func TestRequestAcceptedBooleans(t *testing.T) {
	c := newCluster(t, 3, 1)
	live := c.Node(0)
	if !live.RotateLeader() {
		t.Error("live RotateLeader not accepted")
	}
	n := c.Node(2)
	n.Stop()
	if n.RotateLeader() {
		t.Error("RotateLeader accepted on stopped node")
	}
	if n.Leave() {
		t.Error("Leave accepted on stopped node")
	}
	if n.Join(c.IDs()) {
		t.Error("Join accepted on stopped node")
	}
}
