// Benchmarks regenerating the paper's evaluation (DSN 2006, Section 5).
// One benchmark per table/figure; each reports the paper's metric through
// b.ReportMetric so `go test -bench` output reads like the figure:
//
//	BenchmarkTable1RawNetwork            tcp_mbps / udp_mbps
//	BenchmarkFigure6Latency              ms per point, n = 2..10
//	BenchmarkFigure7LatencyVsThroughput  latency at low load and past the knee
//	BenchmarkFigure8Throughput           Mb/s per n
//	BenchmarkFigure9Senders              Mb/s per k
//	BenchmarkRoundModelClasses           broadcasts/round per protocol class
//
// cmd/fsr-bench prints the full series for EXPERIMENTS.md.
//
// External test package: internal/bench itself imports fsr (the loopback
// TCP experiments run the real cluster), so these benchmarks must sit
// outside package fsr to avoid an import cycle.
package fsr_test

import (
	"fmt"
	"testing"

	"fsr/internal/bench"
)

func BenchmarkTable1RawNetwork(b *testing.B) {
	var tcp, udp float64
	for range b.N {
		s := bench.Table1()
		tcp, udp = s.Points[0].Y, s.Points[1].Y
	}
	b.ReportMetric(tcp, "tcp_mbps")
	b.ReportMetric(udp, "udp_mbps")
}

func BenchmarkFigure6Latency(b *testing.B) {
	ns := []int{2, 4, 6, 8, 10}
	var last map[int]float64
	for range b.N {
		s, err := bench.Figure6(ns)
		if err != nil {
			b.Fatal(err)
		}
		last = map[int]float64{}
		for _, p := range s.Points {
			last[int(p.X)] = p.Y
		}
	}
	for _, n := range ns {
		b.ReportMetric(last[n], fmt.Sprintf("ms_n%d", n))
	}
}

func BenchmarkFigure7LatencyVsThroughput(b *testing.B) {
	var low, over float64
	for range b.N {
		s, err := bench.Figure7([]float64{30, 95})
		if err != nil {
			b.Fatal(err)
		}
		low, over = s.Points[0].Y, s.Points[1].Y
	}
	b.ReportMetric(low, "ms_at_30mbps")
	b.ReportMetric(over, "ms_past_knee")
}

func BenchmarkFigure8Throughput(b *testing.B) {
	ns := []int{2, 5, 10}
	var last map[int]float64
	for range b.N {
		s, err := bench.Figure8(ns)
		if err != nil {
			b.Fatal(err)
		}
		last = map[int]float64{}
		for _, p := range s.Points {
			last[int(p.X)] = p.Y
		}
	}
	for _, n := range ns {
		b.ReportMetric(last[n], fmt.Sprintf("mbps_n%d", n))
	}
}

func BenchmarkFigure9Senders(b *testing.B) {
	ks := []int{1, 3, 5}
	var last map[int]float64
	for range b.N {
		s, err := bench.Figure9(ks)
		if err != nil {
			b.Fatal(err)
		}
		last = map[int]float64{}
		for _, p := range s.Points {
			last[int(p.X)] = p.Y
		}
	}
	for _, k := range ks {
		b.ReportMetric(last[k], fmt.Sprintf("mbps_k%d", k))
	}
}

func BenchmarkRoundModelClasses(b *testing.B) {
	var series map[string]float64
	for range b.N {
		s, err := bench.Classes(6, 3, 60)
		if err != nil {
			b.Fatal(err)
		}
		series = map[string]float64{}
		for _, p := range s.Points {
			series[p.Label] = p.Y
		}
	}
	for label, y := range series {
		b.ReportMetric(y, label+"_bpr")
	}
}

func BenchmarkPrivilegeTradeoff(b *testing.B) {
	var series map[string]float64
	for range b.N {
		s, err := bench.PrivilegeTradeoff(8, 100)
		if err != nil {
			b.Fatal(err)
		}
		series = map[string]float64{}
		for _, p := range s.Points {
			series[p.Label] = p.Y
		}
	}
	for label, y := range series {
		b.ReportMetric(y, label+"_bpr")
	}
}
