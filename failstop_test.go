package fsr

import (
	"context"
	"testing"
	"time"

	"fsr/internal/wire"
	"fsr/transport/mem"
)

// TestNodeFailStopIsTerminal: a fatal protocol error (corrupt frame from
// the ring predecessor) must actually halt the node — fail-stop — not just
// record the error: Messages closes, pending receipts fail, Err surfaces
// the cause, and further Broadcasts are rejected.
func TestNodeFailStopIsTerminal(t *testing.T) {
	network := mem.NewNetwork(mem.Options{})
	ep0, err := network.Join(0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := network.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ep1.Close()
	cfg := Config{
		Self:              0,
		Members:           []ProcID{0, 1},
		HeartbeatInterval: 10 * time.Millisecond,
		FailureTimeout:    time.Minute, // keep the FD quiet; only the corruption matters
		ChangeTimeout:     time.Minute,
	}
	n, err := NewNode(cfg, ep0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)

	// A broadcast that cannot complete (peer 1 runs no node), so its
	// receipt is pending when the fatal error hits.
	r, err := n.Broadcast(context.Background(), []byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt ring traffic: KindFSR prefix, truncated body.
	if err := ep1.Send(0, []byte{wire.KindFSR, 0x01}); err != nil {
		t.Fatal(err)
	}

	// The node halts: the message stream closes...
	select {
	case _, ok := <-n.Messages():
		if ok {
			t.Fatal("unexpected delivery")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Messages never closed after fatal error")
	}
	// ...the error is surfaced...
	if n.Err() == nil {
		t.Fatal("Err() nil after fatal frame")
	}
	// ...the pending receipt resolves with the failure...
	select {
	case <-r.Delivered():
	case <-time.After(10 * time.Second):
		t.Fatal("pending receipt never resolved on fail-stop")
	}
	if r.Err() == nil {
		t.Fatal("pending receipt resolved without error on fail-stop")
	}
	// ...and the node accepts no further work.
	if _, err := n.Broadcast(context.Background(), []byte("late")); err != ErrStopped {
		t.Fatalf("Broadcast after fail-stop = %v, want ErrStopped", err)
	}
}

// TestConfigValidationErrors covers withDefaults rejections beyond the
// basics in assembler_test.go.
func TestConfigValidationErrors(t *testing.T) {
	base := func() Config {
		return Config{Self: 1, Members: []ProcID{1, 2, 3}}
	}
	t.Run("defaults filled", func(t *testing.T) {
		c, err := base().withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		if c.HeartbeatInterval != 50*time.Millisecond ||
			c.FailureTimeout != 500*time.Millisecond ||
			c.ChangeTimeout != time.Second {
			t.Errorf("timer defaults: %+v", c)
		}
	})
	t.Run("failure timeout equal to heartbeat rejected", func(t *testing.T) {
		c := base()
		c.HeartbeatInterval = 100 * time.Millisecond
		c.FailureTimeout = 100 * time.Millisecond
		if _, err := c.withDefaults(); err == nil {
			t.Error("FailureTimeout == HeartbeatInterval accepted")
		}
	})
	t.Run("joiner needs no members", func(t *testing.T) {
		if _, err := (Config{Self: 7, Joiner: true}).withDefaults(); err != nil {
			t.Errorf("joiner rejected: %v", err)
		}
	})
	t.Run("negative T rejected with members", func(t *testing.T) {
		c := base()
		c.T = -2
		if _, err := c.withDefaults(); err == nil {
			t.Error("negative T accepted")
		}
	})
}
