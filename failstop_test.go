package fsr

import (
	"context"
	"testing"
	"time"

	"fsr/internal/wire"
	"fsr/transport/mem"
)

// TestNodeFailStopIsTerminal: a fatal protocol error (corrupt frame from
// the ring predecessor) must actually halt the node — fail-stop — not just
// record the error: Messages closes, pending receipts fail, Err surfaces
// the cause, and further Broadcasts are rejected.
func TestNodeFailStopIsTerminal(t *testing.T) {
	network := mem.NewNetwork(mem.Options{})
	ep0, err := network.Join(0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := network.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ep1.Close()
	cfg := Config{
		Self:              0,
		Members:           []ProcID{0, 1},
		HeartbeatInterval: 10 * time.Millisecond,
		FailureTimeout:    time.Minute, // keep the FD quiet; only the corruption matters
		ChangeTimeout:     time.Minute,
	}
	n, err := NewNode(cfg, ep0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)

	// A broadcast that cannot complete (peer 1 runs no node), so its
	// receipt is pending when the fatal error hits.
	r, err := n.Broadcast(context.Background(), []byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt ring traffic: KindFSR prefix, valid version, truncated body.
	// (A wrong-VERSION frame is deliberately non-fatal — see
	// TestNodeSkipsForeignPayloads — so the version byte here must be ours
	// for the truncation to count as same-major corruption.)
	if err := ep1.Send(0, []byte{wire.KindFSR, wire.CurrentVersion, 0x01}); err != nil {
		t.Fatal(err)
	}

	// The node halts: the message stream closes...
	select {
	case _, ok := <-n.Messages():
		if ok {
			t.Fatal("unexpected delivery")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Messages never closed after fatal error")
	}
	// ...the error is surfaced...
	if n.Err() == nil {
		t.Fatal("Err() nil after fatal frame")
	}
	// ...the pending receipt resolves with the failure...
	select {
	case <-r.Delivered():
	case <-time.After(10 * time.Second):
		t.Fatal("pending receipt never resolved on fail-stop")
	}
	if r.Err() == nil {
		t.Fatal("pending receipt resolved without error on fail-stop")
	}
	// ...and the node accepts no further work.
	if _, err := n.Broadcast(context.Background(), []byte("late")); err != ErrStopped {
		t.Fatalf("Broadcast after fail-stop = %v, want ErrStopped", err)
	}
}

// TestNodeSkipsForeignPayloads: payloads a future release might send — a
// whole new channel kind, a frame stamped with a foreign protocol major, a
// view-change message of an unknown type — must be skipped and counted,
// never treated as corruption. This is the receiving half of the upgrade
// story: a mixed-version ring survives because old nodes shrug at what
// they cannot parse instead of fail-stopping on it.
func TestNodeSkipsForeignPayloads(t *testing.T) {
	network := mem.NewNetwork(mem.Options{})
	ep0, err := network.Join(0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := network.Join(1)
	if err != nil {
		t.Fatal(err)
	}
	defer ep1.Close()
	cfg := Config{
		Self:              0,
		Members:           []ProcID{0, 1},
		HeartbeatInterval: 10 * time.Millisecond,
		FailureTimeout:    time.Minute,
		ChangeTimeout:     time.Minute,
	}
	n, err := NewNode(cfg, ep0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)

	// A channel kind this build has never heard of...
	if err := ep1.Send(0, []byte{0xEE, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	// ...a well-formed frame from a foreign protocol major...
	alien := wire.EncodeFrame(&wire.Frame{
		Ver:    wire.MakeVersion(wire.ProtoMajor+1, 0),
		ViewID: 1,
	})
	if err := ep1.Send(0, alien); err != nil {
		t.Fatal(err)
	}
	// ...and a view-change control message of an unknown type.
	if err := ep1.Send(0, []byte{wire.KindVSC, 0xEF, 0x01}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		m := n.Metrics()
		if m.SkippedVersion == 1 && m.SkippedUnknown == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("skip counters never settled: version=%d unknown=%d (want 1, 2)",
				m.SkippedVersion, m.SkippedUnknown)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The node shrugged: no fail-stop, stream open, still taking work.
	if err := n.Err(); err != nil {
		t.Fatalf("node halted on foreign payloads: %v", err)
	}
	select {
	case _, ok := <-n.Messages():
		if !ok {
			t.Fatal("Messages closed after foreign payloads")
		}
		t.Fatal("unexpected delivery")
	default:
	}
	if _, err := n.Broadcast(context.Background(), []byte("still alive")); err != nil {
		t.Fatalf("Broadcast refused after foreign payloads: %v", err)
	}
}

// TestConfigValidationErrors covers withDefaults rejections beyond the
// basics in assembler_test.go.
func TestConfigValidationErrors(t *testing.T) {
	base := func() Config {
		return Config{Self: 1, Members: []ProcID{1, 2, 3}}
	}
	t.Run("defaults filled", func(t *testing.T) {
		c, err := base().withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		if c.HeartbeatInterval != 50*time.Millisecond ||
			c.FailureTimeout != 500*time.Millisecond ||
			c.ChangeTimeout != time.Second {
			t.Errorf("timer defaults: %+v", c)
		}
	})
	t.Run("failure timeout equal to heartbeat rejected", func(t *testing.T) {
		c := base()
		c.HeartbeatInterval = 100 * time.Millisecond
		c.FailureTimeout = 100 * time.Millisecond
		if _, err := c.withDefaults(); err == nil {
			t.Error("FailureTimeout == HeartbeatInterval accepted")
		}
	})
	t.Run("joiner needs no members", func(t *testing.T) {
		if _, err := (Config{Self: 7, Joiner: true}).withDefaults(); err != nil {
			t.Errorf("joiner rejected: %v", err)
		}
	})
	t.Run("negative T rejected with members", func(t *testing.T) {
		c := base()
		c.T = -2
		if _, err := c.withDefaults(); err == nil {
			t.Error("negative T accepted")
		}
	})
}
