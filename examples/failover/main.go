// Failover: crash the leader (the fixed sequencer itself) in the middle of
// a broadcast stream and watch the group reconfigure — the failure
// detector fires, the view change promotes the first backup to leader, the
// new leader re-disseminates the undelivered sequenced messages, and the
// stream continues with uniform total order intact. Nothing delivered
// anywhere before the crash is lost.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"fsr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "failover: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const nodes = 5
	cluster, err := fsr.NewCluster(fsr.ClusterConfig{
		N: nodes, T: 2,
		NodeConfig: fsr.Config{
			HeartbeatInterval: 20 * time.Millisecond,
			FailureTimeout:    200 * time.Millisecond,
			ChangeTimeout:     400 * time.Millisecond,
		},
	}, fsr.MemTransport(nil))
	if err != nil {
		return err
	}
	defer cluster.Stop()

	ctx := context.Background()
	// Pre-crash traffic from node 3, still in flight when the leader dies.
	// The receipts resolve even though the sequencer is about to crash:
	// uniformity holds across the view change.
	const preCrash = 12
	receipts := make([]*fsr.Receipt, preCrash)
	for i := range preCrash {
		r, err := cluster.Node(3).Broadcast(ctx, []byte(fmt.Sprintf("pre-%d", i)))
		if err != nil {
			return err
		}
		receipts[i] = r
	}

	fmt.Println("crashing the leader (node 0, the sequencer)...")
	cluster.Crash(0)

	v, ok := cluster.WaitView(1, nodes-1, 10*time.Second)
	if !ok {
		return fmt.Errorf("survivors never installed the post-crash view")
	}
	fmt.Printf("view %d installed: members=%v — new leader is %d\n", v.ID, v.Members, v.Members[0])

	// Post-crash traffic through the new leader.
	const postCrash = 5
	for i := range postCrash {
		if _, err := cluster.Node(2).Broadcast(ctx, []byte(fmt.Sprintf("post-%d", i))); err != nil {
			return err
		}
	}

	// Every pre-crash broadcast still reaches uniform delivery.
	for i, r := range receipts {
		if err := r.Wait(ctx); err != nil {
			return fmt.Errorf("pre-crash broadcast %d never became uniform: %w", i, err)
		}
	}
	fmt.Printf("all %d pre-crash receipts resolved across the leader crash ✔\n", preCrash)

	// All survivors deliver all 17 messages in the same order.
	want := preCrash + postCrash
	var ref []string
	for i := 1; i < nodes; i++ {
		var got []string
		for len(got) < want {
			m := <-cluster.Node(i).Messages()
			got = append(got, fmt.Sprintf("%d:%s", m.Origin, m.Payload))
		}
		if ref == nil {
			ref = got
			continue
		}
		for j := range got {
			if got[j] != ref[j] {
				return fmt.Errorf("node %d disagrees at %d: %s vs %s", i, j, got[j], ref[j])
			}
		}
	}
	fmt.Printf("all %d survivors delivered %d messages in one agreed order across the crash ✔\n",
		nodes-1, want)
	return nil
}
