// Failover: crash the member serving a client session — which is also the
// leader, the fixed sequencer itself — in the middle of a publish stream
// and watch both layers recover: the group reconfigures (the failure
// detector fires, the view change promotes the first backup, the new
// leader re-disseminates undelivered sequenced messages), and the session
// fails over to another member, retrying its unacked publishes
// idempotently. Every publish commits exactly once and a subscriber
// resumes the stream gap-free — nothing delivered anywhere before the
// crash is lost, nothing is duplicated.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"fsr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "failover: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const nodes = 5
	dir, err := os.MkdirTemp("", "fsr-failover-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cluster, err := fsr.NewCluster(fsr.ClusterConfig{
		N: nodes, T: 2,
		NodeConfig: fsr.Config{
			HeartbeatInterval: 20 * time.Millisecond,
			FailureTimeout:    200 * time.Millisecond,
			ChangeTimeout:     400 * time.Millisecond,
		},
	}.WithDurableDir(dir), fsr.MemTransport(nil))
	if err != nil {
		return err
	}
	defer cluster.Stop()

	// A session client bound (by rotation order) to node 0 — the leader.
	sess, err := cluster.Dial(fsr.SessionOptions{AckTimeout: time.Second})
	if err != nil {
		return err
	}
	defer sess.Close()

	ctx := context.Background()
	// Pre-crash publishes, still in flight when the serving member dies.
	const preCrash = 12
	receipts := make([]*fsr.Receipt, 0, preCrash)
	for i := range preCrash {
		r, err := sess.Publish(ctx, fmt.Appendf(nil, "pre-%d", i))
		if err != nil {
			return err
		}
		receipts = append(receipts, r)
	}

	fmt.Println("crashing the serving member (node 0 — also the sequencer)...")
	cluster.Crash(0)

	v, ok := cluster.WaitView(1, nodes-1, 10*time.Second)
	if !ok {
		return fmt.Errorf("survivors never installed the post-crash view")
	}
	fmt.Printf("view %d installed: members=%v — new leader is %d\n", v.ID, v.Members, v.Members[0])

	// The session keeps publishing: it has already redialed a survivor.
	const postCrash = 5
	for i := range postCrash {
		r, err := sess.Publish(ctx, fmt.Appendf(nil, "post-%d", i))
		if err != nil {
			return err
		}
		receipts = append(receipts, r)
	}

	// Every publish — including the ones in flight when their serving
	// member crashed — commits: the session retried them idempotently
	// against a survivor, and the dedup filter guarantees exactly once.
	for i, r := range receipts {
		if err := r.Wait(ctx); err != nil {
			return fmt.Errorf("publish %d never committed across the crash: %w", i, err)
		}
	}
	fmt.Printf("all %d receipts resolved across the serving-member crash ✔\n", len(receipts))

	// The same session streams the order back from offset 1 — gap-free,
	// exactly once, even though the member that first served it is gone.
	want := preCrash + postCrash
	seen := make(map[string]int, want)
	got := 0
	for _, m := range sess.Subscribe(ctx, 1) {
		seen[string(m.Payload)]++
		if got++; got == want {
			break
		}
	}
	for i := range preCrash {
		if c := seen[fmt.Sprintf("pre-%d", i)]; c != 1 {
			return fmt.Errorf("pre-%d delivered %d times, want exactly once", i, c)
		}
	}
	for i := range postCrash {
		if c := seen[fmt.Sprintf("post-%d", i)]; c != 1 {
			return fmt.Errorf("post-%d delivered %d times, want exactly once", i, c)
		}
	}
	fmt.Printf("subscriber replayed all %d messages exactly once across the crash ✔\n", want)
	return nil
}
