// Quickstart: a five-process FSR group in one binary, showing the two
// guarantees that matter — every process delivers the same messages in the
// same order (uniform total order broadcast), no matter who sends — through
// the Session API: publish into the order, then stream it back from offset
// 1. The same Session interface serves remote clients (client.Dial) and
// in-process members (Node.Session) identically.
package main

import (
	"context"
	"fmt"
	"os"

	"fsr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// Five nodes on an in-memory network; node 0 is the leader
	// (sequencer), node 1 the backup (T = 1 tolerated failure).
	cluster, err := fsr.NewCluster(fsr.ClusterConfig{N: 5, T: 1}, fsr.MemTransport(nil))
	if err != nil {
		return err
	}
	defer cluster.Stop()

	// Concurrent publishes from three different members' sessions.
	ctx := context.Background()
	sends := []struct {
		node    int
		payload string
	}{
		{2, "first from node 2"},
		{4, "first from node 4"},
		{0, "first from the leader"},
		{2, "second from node 2"},
		{4, "second from node 4"},
	}
	receipts := make([]*fsr.Receipt, len(sends))
	for i, s := range sends {
		r, err := cluster.Node(s.node).Session().Publish(ctx, []byte(s.payload))
		if err != nil {
			return err
		}
		receipts[i] = r
	}
	// Each receipt resolves once its message is uniformly stable — stored
	// by the leader and backup, so it survives any tolerated crash.
	for i, r := range receipts {
		if err := r.Wait(ctx); err != nil {
			return fmt.Errorf("publish %d: %w", i, err)
		}
	}
	fmt.Println("all publishes uniformly delivered (receipts resolved)")

	// Every member streams the same five messages at the same offsets.
	// Subscribe(ctx, 1) replays the order from the first offset — a late
	// consumer misses nothing.
	fmt.Println("the order (identical at every node):")
	var refOffsets []fsr.Offset
	for i := range 5 {
		var offsets []fsr.Offset
		for off, m := range cluster.Node(i).Session().Subscribe(ctx, 1) {
			if i == 0 {
				fmt.Printf("  offset=%d origin=%d %q\n", off, m.Origin, m.Payload)
			}
			offsets = append(offsets, off)
			if len(offsets) == len(sends) {
				break
			}
		}
		if i == 0 {
			refOffsets = offsets
			continue
		}
		for j := range offsets {
			if offsets[j] != refOffsets[j] {
				return fmt.Errorf("node %d disagrees at position %d", i, j)
			}
		}
	}
	fmt.Println("all 5 nodes agreed on the total order ✔")
	return nil
}
