// Quickstart: a five-process FSR group in one binary, showing the two
// guarantees that matter — every process delivers the same messages in the
// same order (uniform total order broadcast), no matter who sends.
package main

import (
	"context"
	"fmt"
	"os"

	"fsr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// Five nodes on an in-memory network; node 0 is the leader
	// (sequencer), node 1 the backup (T = 1 tolerated failure).
	cluster, err := fsr.NewCluster(fsr.ClusterConfig{N: 5, T: 1}, fsr.MemTransport(nil))
	if err != nil {
		return err
	}
	defer cluster.Stop()

	// Concurrent broadcasts from three different senders.
	ctx := context.Background()
	sends := []struct {
		node    int
		payload string
	}{
		{2, "first from node 2"},
		{4, "first from node 4"},
		{0, "first from the leader"},
		{2, "second from node 2"},
		{4, "second from node 4"},
	}
	receipts := make([]*fsr.Receipt, len(sends))
	for i, s := range sends {
		r, err := cluster.Node(s.node).Broadcast(ctx, []byte(s.payload))
		if err != nil {
			return err
		}
		receipts[i] = r
	}
	// Each receipt resolves once its message is uniformly stable — stored
	// by the leader and backup, so it survives any tolerated crash.
	for i, r := range receipts {
		if err := r.Wait(ctx); err != nil {
			return fmt.Errorf("broadcast %d: %w", i, err)
		}
	}
	fmt.Println("all broadcasts uniformly delivered (receipts resolved)")

	// Every node receives the same five messages in the same global order.
	fmt.Println("deliveries (identical at every node):")
	var reference []fsr.Message
	for i := 0; i < 5; i++ {
		node := cluster.Node(i)
		var got []fsr.Message
		for len(got) < len(sends) {
			got = append(got, <-node.Messages())
		}
		if i == 0 {
			reference = got
			for _, m := range got {
				fmt.Printf("  seq=%d origin=%d %q\n", m.Seq, m.Origin, m.Payload)
			}
			continue
		}
		for j, m := range got {
			if m.Seq != reference[j].Seq || m.Origin != reference[j].Origin {
				return fmt.Errorf("node %d disagrees at position %d", i, j)
			}
		}
	}
	fmt.Println("all 5 nodes agreed on the total order ✔")
	return nil
}
