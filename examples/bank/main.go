// Replicated bank: demonstrates FSR's fairness under the workload from the
// paper's §2.3 — two heavy senders on opposite sides of the ring. Each node
// runs a full replica of a ledger; transfers are TO-broadcast. The example
// checks (1) conservation: the total balance never changes at any replica,
// despite concurrent transfers, and (2) fairness: the two flooding senders
// get interleaved ~1:1 in the delivery order instead of one starving the
// other (the failure mode of privilege/token protocols).
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"time"

	"fsr"
	"fsr/transport/mem"
)

const (
	accounts       = 8
	initialBalance = 1000
	perSender      = 50
	recordPad      = 4096 // audit payload per transfer: realistic record size
)

// transfer moves amount from one account to another.
type transfer struct {
	From, To uint32
	Amount   uint32
}

func (t transfer) encode() []byte {
	buf := make([]byte, 12+recordPad)
	binary.LittleEndian.PutUint32(buf[0:], t.From)
	binary.LittleEndian.PutUint32(buf[4:], t.To)
	binary.LittleEndian.PutUint32(buf[8:], t.Amount)
	return buf
}

func decodeTransfer(b []byte) (transfer, bool) {
	if len(b) != 12+recordPad {
		return transfer{}, false
	}
	return transfer{
		From:   binary.LittleEndian.Uint32(b[0:]),
		To:     binary.LittleEndian.Uint32(b[4:]),
		Amount: binary.LittleEndian.Uint32(b[8:]),
	}, true
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "bank: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const nodes = 6
	// A per-hop link latency keeps both tellers backlogged concurrently —
	// on an instantaneous network one teller's queue would drain before
	// the other even filled, and there would be no contention for the
	// fairness mechanism to arbitrate.
	network := mem.NewNetwork(mem.Options{
		Latency:   500 * time.Microsecond,
		Bandwidth: 100e6, // Fast Ethernet, as in the paper's testbed
	})
	cluster, err := fsr.NewCluster(fsr.ClusterConfig{N: nodes, T: 1}, fsr.MemTransport(network))
	if err != nil {
		return err
	}
	defer cluster.Stop()

	// Two flooding tellers on opposite sides of the ring.
	tellers := []int{2, 5}
	ctx := context.Background()
	var wg sync.WaitGroup
	for _, teller := range tellers {
		wg.Add(1)
		go func(teller int) {
			defer wg.Done()
			for i := range perSender {
				tr := transfer{
					From:   uint32((teller + i) % accounts),
					To:     uint32((teller + i + 1) % accounts),
					Amount: 1 + uint32(i%7),
				}
				if _, err := cluster.Node(teller).Session().Publish(ctx, tr.encode()); err != nil {
					fmt.Fprintf(os.Stderr, "publish: %v\n", err)
					return
				}
			}
		}(teller)
	}
	wg.Wait()

	total := len(tellers) * perSender
	// Apply the ledger at every replica and verify conservation plus
	// identical order; track interleaving at replica 0. Each replica
	// streams the order through its session from offset 1 — the same
	// consumption a remote client would use.
	var firstOrder []fsr.ProcID
	for node := 0; node < nodes; node++ {
		balances := make([]int64, accounts)
		for i := range balances {
			balances[i] = initialBalance
		}
		var order []fsr.ProcID
		for _, m := range cluster.Node(node).Session().Subscribe(ctx, 1) {
			tr, ok := decodeTransfer(m.Payload)
			if !ok {
				return fmt.Errorf("bad payload at node %d", node)
			}
			balances[tr.From] -= int64(tr.Amount)
			balances[tr.To] += int64(tr.Amount)
			order = append(order, m.Origin)
			if len(order) == total {
				break
			}
		}
		var sum int64
		for _, b := range balances {
			sum += b
		}
		if sum != accounts*initialBalance {
			return fmt.Errorf("node %d: total balance %d, want %d", node, sum, accounts*initialBalance)
		}
		if node == 0 {
			firstOrder = order
			continue
		}
		for i := range order {
			if order[i] != firstOrder[i] {
				return fmt.Errorf("node %d: order diverges at %d", node, i)
			}
		}
	}
	fmt.Printf("%d transfers from tellers %v applied; total balance conserved at all %d replicas ✔\n",
		total, tellers, nodes)

	// Fairness: in every prefix of the common order, the two tellers'
	// counts stay within a small constant of each other.
	counts := map[fsr.ProcID]int{}
	maxGap := 0
	for _, origin := range firstOrder {
		counts[origin]++
		gap := counts[fsr.ProcID(tellers[0])] - counts[fsr.ProcID(tellers[1])]
		if gap < 0 {
			gap = -gap
		}
		if gap > maxGap {
			maxGap = gap
		}
	}
	// The engine's fairness tests pin the exact interleaving; this bound
	// only has to separate FSR (gap stays a small constant) from a
	// privilege/token protocol (gap reaches perSender) while tolerating
	// wall-clock scheduling noise — the two tellers race real goroutines.
	if maxGap > perSender*3/5 {
		return fmt.Errorf("fairness violated: interleaving gap %d of %d", maxGap, perSender)
	}
	fmt.Printf("fairness: teller interleaving gap never exceeded %d (perSender=%d) ✔\n", maxGap, perSender)
	return nil
}
