// TCP cluster: the same FSR stack the other examples run in memory, but
// over real sockets — three nodes on loopback TCP, each in its own
// goroutine with its own transport, exchanging broadcasts exactly as three
// separate processes would (see cmd/fsr-node for the multi-process form).
package main

import (
	"context"
	"fmt"
	"os"
	"sync"

	"fsr"
	"fsr/internal/ring"
	"fsr/internal/transport/tcp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tcpcluster: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 3
	members := []fsr.ProcID{0, 1, 2}

	// Bind each endpoint on an ephemeral loopback port, then exchange the
	// resulting addresses — the bootstrap a deployment tool would do.
	transports := make([]*tcp.Transport, n)
	for i := range transports {
		tr, err := tcp.New(tcp.Config{Self: members[i], ListenAddr: "127.0.0.1:0"})
		if err != nil {
			return err
		}
		defer tr.Close()
		transports[i] = tr
	}
	addrs := make(map[ring.ProcID]string, n)
	for i, tr := range transports {
		addrs[members[i]] = tr.Addr()
	}
	nodes := make([]*fsr.Node, n)
	for i, tr := range transports {
		peers := make(map[ring.ProcID]string)
		for id, addr := range addrs {
			if id != members[i] {
				peers[id] = addr
			}
		}
		tr.SetPeers(peers)
		node, err := fsr.NewNode(fsr.Config{Self: members[i], Members: members, T: 1}, tr)
		if err != nil {
			return err
		}
		defer node.Stop()
		nodes[i] = node
	}

	ctx := context.Background()
	const per = 5
	var wg sync.WaitGroup
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node *fsr.Node) {
			defer wg.Done()
			for j := range per {
				payload := fmt.Sprintf("node%d msg%d", i, j)
				if err := node.Broadcast(ctx, []byte(payload)); err != nil {
					fmt.Fprintf(os.Stderr, "broadcast: %v\n", err)
					return
				}
			}
		}(i, node)
	}
	wg.Wait()

	total := n * per
	var ref []string
	for i, node := range nodes {
		var got []string
		for len(got) < total {
			m := <-node.Messages()
			got = append(got, fmt.Sprintf("[%d]%d:%s", m.Seq, m.Origin, m.Payload))
		}
		if i == 0 {
			ref = got
			for _, line := range got {
				fmt.Println(line)
			}
			continue
		}
		for j := range got {
			if got[j] != ref[j] {
				return fmt.Errorf("node %d disagrees at %d: %s vs %s", i, j, got[j], ref[j])
			}
		}
	}
	fmt.Printf("%d broadcasts over real TCP, identical order at all %d nodes ✔\n", total, n)
	return nil
}
