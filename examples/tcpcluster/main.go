// TCP cluster: the same FSR stack the other examples run in memory, but
// over real sockets — three nodes on loopback TCP, each with its own
// transport endpoint, exchanging broadcasts exactly as three separate
// processes would (see cmd/fsr-node for the multi-process form).
// TCPTransport binds each member to an ephemeral loopback port and
// exchanges the addresses automatically — the bootstrap a deployment tool
// would do.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"

	"fsr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tcpcluster: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 3
	cluster, err := fsr.NewCluster(fsr.ClusterConfig{N: n, T: 1}, fsr.TCPTransport(nil))
	if err != nil {
		return err
	}
	defer cluster.Stop()

	ctx := context.Background()
	const per = 5
	var wg sync.WaitGroup
	for i := range n {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			node := cluster.Node(i)
			for j := range per {
				payload := fmt.Sprintf("node%d msg%d", i, j)
				r, err := node.Broadcast(ctx, []byte(payload))
				if err != nil {
					fmt.Fprintf(os.Stderr, "broadcast: %v\n", err)
					return
				}
				if err := r.Wait(ctx); err != nil {
					fmt.Fprintf(os.Stderr, "broadcast not delivered: %v\n", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	total := n * per
	var ref []string
	for i := range n {
		node := cluster.Node(i)
		var got []string
		for len(got) < total {
			m := <-node.Messages()
			got = append(got, fmt.Sprintf("[%d]%d:%s", m.Seq, m.Origin, m.Payload))
		}
		if i == 0 {
			ref = got
			for _, line := range got {
				fmt.Println(line)
			}
			continue
		}
		for j := range got {
			if got[j] != ref[j] {
				return fmt.Errorf("node %d disagrees at %d: %s vs %s", i, j, got[j], ref[j])
			}
		}
	}
	m := cluster.Node(0).Metrics()
	fmt.Printf("%d broadcasts over real TCP, identical order at all %d nodes ✔\n", total, n)
	fmt.Printf("leader metrics: frames in/out %d/%d, sequenced %d, delivered %d, p99 latency %v\n",
		m.FramesIn, m.FramesOut, m.Sequenced, m.Delivered, m.BroadcastLatency.P99)
	return nil
}
