// TCP cluster: the same FSR stack the other examples run in memory, but
// over real sockets — three members on loopback TCP plus a NON-MEMBER
// client (package client) publishing and subscribing through them. The
// ordering core stays a fixed three-process ring; the client uses the
// total order over the wire without joining it, which is how this stack
// scales past the ring: any number of clients, a small ordering core (see
// cmd/fsr-node for the multi-process form).
package main

import (
	"context"
	"fmt"
	"os"
	"sync"

	"fsr"
	"fsr/client"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tcpcluster: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 3
	ct := fsr.TCPTransport(nil)
	cluster, err := fsr.NewCluster(fsr.ClusterConfig{N: n, T: 1}, ct)
	if err != nil {
		return err
	}
	defer cluster.Stop()

	// Two remote clients dial the members' listen addresses. Each gets a
	// random client identity; publishes are pipelined and idempotent.
	ctx := context.Background()
	addrs := ct.Addrs()
	publishers := make([]fsr.Session, 2)
	for i := range publishers {
		s, err := client.Dial(client.Config{Addrs: addrs})
		if err != nil {
			return err
		}
		defer s.Close()
		publishers[i] = s
	}

	const per = 5
	var wg sync.WaitGroup
	errs := make(chan error, len(publishers))
	for i, s := range publishers {
		wg.Add(1)
		go func(i int, s fsr.Session) {
			defer wg.Done()
			for j := range per {
				r, err := s.Publish(ctx, fmt.Appendf(nil, "client%d msg%d", i, j))
				if err != nil {
					errs <- fmt.Errorf("publish: %w", err)
					return
				}
				if err := r.Wait(ctx); err != nil {
					errs <- fmt.Errorf("publish not committed: %w", err)
					return
				}
			}
		}(i, s)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}

	// A third client streams the whole order back — every message exactly
	// once, tagged with its publisher's client identity.
	sub, err := client.Dial(client.Config{Addrs: addrs})
	if err != nil {
		return err
	}
	defer sub.Close()
	total := per * len(publishers)
	got := 0
	for off, m := range sub.Subscribe(ctx, 1) {
		fmt.Printf("offset=%d publisher=%d %q\n", off, m.Origin, m.Payload)
		if got++; got == total {
			break
		}
	}
	fmt.Printf("%d messages from %d non-member clients, one total order over real TCP ✔\n",
		total, len(publishers))
	return nil
}
