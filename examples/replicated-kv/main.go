// Replicated key-value store: the paper's motivating use case (§1) —
// software-based fault tolerance by state machine replication. Every
// replica holds a full copy of the store; every write is TO-broadcast, so
// all replicas apply the same operations in the same order and stay
// identical, with no locks and no cross-replica coordination beyond FSR.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"fsr"
)

// op is one state machine command.
type op struct {
	Kind  string `json:"kind"` // "set" or "del"
	Key   string `json:"key"`
	Value string `json:"value,omitempty"`
}

// replica is one copy of the store driven by a node's delivery stream.
type replica struct {
	mu      sync.Mutex
	store   map[string]string
	applied int
	done    chan struct{} // closed when `expect` ops are applied
	expect  int
}

func newReplica(node *fsr.Node, expect int) *replica {
	r := &replica{
		store:  make(map[string]string),
		expect: expect,
		done:   make(chan struct{}),
	}
	// Subscribe is the whole replication protocol from the application's
	// point of view: the handler runs once per delivery, in total order.
	node.Subscribe(r.apply)
	return r
}

func (r *replica) apply(m fsr.Message) {
	var o op
	if err := json.Unmarshal(m.Payload, &o); err != nil {
		return // not ours
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch o.Kind {
	case "set":
		r.store[o.Key] = o.Value
	case "del":
		delete(r.store, o.Key)
	}
	r.applied++
	if r.applied == r.expect {
		close(r.done)
	}
}

// fingerprint renders the store deterministically for comparison.
func (r *replica) fingerprint() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.store))
	for k := range r.store {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%s;", k, r.store[k])
	}
	return out
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "replicated-kv: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const replicas = 4
	cluster, err := fsr.NewCluster(fsr.ClusterConfig{N: replicas, T: 1}, fsr.MemTransport(nil))
	if err != nil {
		return err
	}
	defer cluster.Stop()

	// Writes arrive at different replicas concurrently — including
	// conflicting writes to the same key from different clients. The total
	// order decides the winner identically everywhere.
	ops := []struct {
		at int
		op op
	}{
		{0, op{Kind: "set", Key: "color", Value: "red"}},
		{1, op{Kind: "set", Key: "color", Value: "blue"}},
		{2, op{Kind: "set", Key: "shape", Value: "circle"}},
		{3, op{Kind: "set", Key: "size", Value: "xl"}},
		{1, op{Kind: "del", Key: "size"}},
		{2, op{Kind: "set", Key: "color", Value: "green"}},
		{0, op{Kind: "set", Key: "count", Value: "42"}},
	}
	rs := make([]*replica, replicas)
	for i := range rs {
		rs[i] = newReplica(cluster.Node(i), len(ops))
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for _, o := range ops {
		wg.Add(1)
		go func(at int, o op) {
			defer wg.Done()
			payload, err := json.Marshal(o)
			if err != nil {
				panic(err)
			}
			// A synchronous write: the receipt resolves once the op is
			// uniformly stable, i.e. durable in the group.
			r, err := cluster.Node(at).Broadcast(ctx, payload)
			if err != nil {
				fmt.Fprintf(os.Stderr, "broadcast: %v\n", err)
				return
			}
			if err := r.Wait(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "write not durable: %v\n", err)
			}
		}(o.at, o.op)
	}
	wg.Wait()
	for _, r := range rs {
		<-r.done
	}
	ref := rs[0].fingerprint()
	fmt.Printf("replica state: %s\n", ref)
	for i, r := range rs[1:] {
		if got := r.fingerprint(); got != ref {
			return fmt.Errorf("replica %d diverged: %s", i+1, got)
		}
	}
	fmt.Printf("all %d replicas identical after %d concurrent writes ✔\n", replicas, len(ops))
	return nil
}
