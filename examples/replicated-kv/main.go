// Replicated key-value store: the paper's motivating use case (§1) —
// software-based fault tolerance by state machine replication. Every
// replica holds a full copy of the store; every write is TO-broadcast, so
// all replicas apply the same operations in the same order and stay
// identical, with no locks and no cross-replica coordination beyond FSR.
//
// This version runs on the durable StateMachine API: each replica keeps a
// write-ahead log and snapshots under a durable directory, one member is
// killed mid-traffic (fail-stop: its endpoint drops, in-flight state is
// lost) and later restarted in place — it rebuilds the store from
// snapshot + WAL, fetches the writes it missed from its peers (catch-up),
// and rejoins the live total order.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"fsr"
)

// op is one state machine command.
type op struct {
	Kind  string `json:"kind"` // "set" or "del"
	Key   string `json:"key"`
	Value string `json:"value,omitempty"`
}

// kvStore is the replicated state machine: a map plus an applied counter.
// Apply runs on the node's delivery goroutine in total order; Snapshot and
// Restore make it durable across crash-restarts.
type kvStore struct {
	mu      sync.Mutex
	Store   map[string]string `json:"store"`
	Applied int               `json:"applied"`
}

func newKVStore() *kvStore { return &kvStore{Store: make(map[string]string)} }

func (s *kvStore) Apply(m fsr.Message) {
	var o op
	if err := json.Unmarshal(m.Payload, &o); err != nil {
		return // not ours
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch o.Kind {
	case "set":
		s.Store[o.Key] = o.Value
	case "del":
		delete(s.Store, o.Key)
	}
	s.Applied++
}

func (s *kvStore) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return json.Marshal(s)
}

func (s *kvStore) Restore(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := json.Unmarshal(data, s); err != nil {
		return err
	}
	if s.Store == nil {
		s.Store = make(map[string]string)
	}
	return nil
}

func (s *kvStore) appliedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Applied
}

// fingerprint renders the store deterministically for comparison.
func (s *kvStore) fingerprint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.Store))
	for k := range s.Store {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%s;", k, s.Store[k])
	}
	return out
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "replicated-kv: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const replicas = 4
	dir, err := os.MkdirTemp("", "replicated-kv-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// One kvStore replica per member; the registry survives restarts so we
	// can inspect the fresh incarnation's store afterwards.
	var mu sync.Mutex
	stores := make(map[fsr.ProcID]*kvStore)
	factory := func(id fsr.ProcID) fsr.StateMachine {
		mu.Lock()
		defer mu.Unlock()
		s := newKVStore()
		stores[id] = s
		return s
	}
	storeOf := func(id fsr.ProcID) *kvStore {
		mu.Lock()
		defer mu.Unlock()
		return stores[id]
	}

	cfg := fsr.ClusterConfig{
		N: replicas,
		T: 1,
		NodeConfig: fsr.Config{
			HeartbeatInterval: 10 * time.Millisecond,
			FailureTimeout:    150 * time.Millisecond,
			ChangeTimeout:     300 * time.Millisecond,
			SnapshotEvery:     32, // small, so the demo actually snapshots
		},
	}.WithDurableDir(dir).WithStateMachines(factory)
	cluster, err := fsr.NewCluster(cfg, fsr.MemTransport(nil))
	if err != nil {
		return err
	}
	defer cluster.Stop()
	ids := cluster.IDs()

	ctx := context.Background()
	writeAll := func(nodes []*fsr.Node, from, to int) error {
		var receipts []*fsr.Receipt
		for i := from; i < to; i++ {
			payload, err := json.Marshal(op{
				Kind: "set", Key: fmt.Sprintf("key-%d", i%11), Value: fmt.Sprintf("v%d", i),
			})
			if err != nil {
				return err
			}
			// A synchronous write: the receipt resolves once the op is
			// uniformly stable, i.e. stored by leader + T backups.
			r, err := nodes[i%len(nodes)].Session().Publish(ctx, payload)
			if err != nil {
				return err
			}
			receipts = append(receipts, r)
		}
		for _, r := range receipts {
			if err := r.Wait(ctx); err != nil {
				return fmt.Errorf("write not durable: %w", err)
			}
		}
		return nil
	}

	// Phase 1: writes with every replica up.
	if err := writeAll(cluster.Nodes(), 0, 100); err != nil {
		return err
	}
	fmt.Println("phase 1: 100 writes committed on 4 replicas")

	// Kill replica 2 — fail-stop, like SIGKILL: its endpoint drops off the
	// network and whatever it had in memory is gone. Its WAL and
	// snapshots stay on disk.
	cluster.Crash(2)
	if _, ok := cluster.WaitView(0, replicas-1, 10*time.Second); !ok {
		return fmt.Errorf("survivors never evicted the crashed replica")
	}
	fmt.Printf("replica %d killed; survivors continue\n", ids[2])

	// Phase 2: writes the dead replica misses entirely.
	survivors := []*fsr.Node{cluster.Node(0), cluster.Node(1), cluster.Node(3)}
	if err := writeAll(survivors, 100, 200); err != nil {
		return err
	}
	fmt.Println("phase 2: 100 writes committed while one replica is down")

	// Restart it in place: snapshot + WAL replay, then catch-up.
	rn, err := cluster.Restart(2)
	if err != nil {
		return err
	}
	if _, ok := cluster.WaitView(2, replicas, 15*time.Second); !ok {
		return fmt.Errorf("restarted replica never readmitted")
	}
	fmt.Printf("replica %d restarted: recovered from WAL, catching up\n", ids[2])

	// Phase 3: live writes with the restarted replica participating.
	if err := writeAll(cluster.Nodes(), 200, 240); err != nil {
		return err
	}

	// Wait for every replica — including the restarted one — to apply all
	// 240 writes, then compare stores.
	deadline := time.Now().Add(15 * time.Second)
	for {
		done := true
		for _, id := range ids {
			if storeOf(id).appliedCount() != 240 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replicas never converged (restarted at %d/240)",
				storeOf(ids[2]).appliedCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ref := storeOf(ids[0]).fingerprint()
	for _, id := range ids[1:] {
		if got := storeOf(id).fingerprint(); got != ref {
			return fmt.Errorf("replica %d diverged: %s", id, got)
		}
	}
	fmt.Printf("restarted replica applied all 240 writes (metrics: applied=%d)\n",
		rn.Metrics().Applied)
	fmt.Printf("all %d replicas identical after kill-and-restart ✔\n", replicas)

	// Offset-resumable consumption: a fresh subscriber asking for the
	// order from offset 1 is far below the WAL truncation point by now
	// (SnapshotEvery is small), so the stream starts with a state
	// snapshot — the kvStore covering everything up to its offset — and
	// continues with the retained tail, gap-free.
	sawSnapshot := false
	replayed := 0
	var snapAt fsr.Offset
	for off, m := range cluster.Node(0).Session().Subscribe(ctx, 1) {
		if m.Snapshot {
			restored := newKVStore()
			if err := restored.Restore(m.Payload); err != nil {
				return fmt.Errorf("subscription snapshot at %d: %w", off, err)
			}
			sawSnapshot, snapAt = true, off
			replayed = restored.appliedCount()
			continue
		}
		replayed++
		if replayed == 240 {
			break
		}
	}
	if !sawSnapshot {
		return fmt.Errorf("resume below truncation did not start with a snapshot")
	}
	fmt.Printf("late subscriber: snapshot at offset %d, then the tail — all 240 writes covered ✔\n", snapAt)
	return nil
}
