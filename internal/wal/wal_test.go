package wal

import (
	"bytes"
	"fmt"
	"os"

	"strings"
	"testing"
	"time"
)

func entry(seq uint64) Entry {
	return Entry{
		Seq:       seq,
		Origin:    uint32(seq % 5),
		LogicalID: seq * 7,
		Payload:   []byte(fmt.Sprintf("payload-%d", seq)),
	}
}

func appendN(t *testing.T, l *Log, from, to uint64) {
	t.Helper()
	for seq := from; seq <= to; seq++ {
		if err := l.Append(entry(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func replayAll(t *testing.T, l *Log, after uint64) []Entry {
	t.Helper()
	var out []Entry
	if err := l.Replay(after, func(e Entry) error {
		out = append(out, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 100)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != 100 {
		t.Fatalf("LastSeq = %d, want 100", got)
	}
	out := replayAll(t, l2, 0)
	if len(out) != 100 {
		t.Fatalf("replayed %d entries, want 100", len(out))
	}
	for i, e := range out {
		want := entry(uint64(i + 1))
		if e.Seq != want.Seq || e.Origin != want.Origin || e.LogicalID != want.LogicalID ||
			!bytes.Equal(e.Payload, want.Payload) {
			t.Fatalf("entry %d mismatch: %+v", i, e)
		}
	}
	if got := replayAll(t, l2, 60); len(got) != 40 || got[0].Seq != 61 {
		t.Fatalf("Replay(60): %d entries starting at %d", len(got), got[0].Seq)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 200)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := scanDir(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if out := replayAll(t, l2, 0); len(out) != 200 {
		t.Fatalf("replayed %d entries across segments, want 200", len(out))
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop bytes off the active segment.
	segs, _, err := scanDir(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	path := segs[len(segs)-1].path
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := replayAll(t, l2, 0)
	if len(out) != 9 || out[len(out)-1].Seq != 9 {
		t.Fatalf("after torn tail: %d entries, last %d; want 9 ending at 9", len(out), out[len(out)-1].Seq)
	}
	// The log must accept appends at the healed position.
	if err := l2.Append(entry(10)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if out := replayAll(t, l3, 0); len(out) != 10 {
		t.Fatalf("after heal+append: %d entries, want 10", len(out))
	}
}

func TestSnapshotTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 200)
	before, _, err := scanDir(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(150, []byte("state@150")); err != nil {
		t.Fatal(err)
	}
	first, last := l.Bounds()
	if first == 0 || first > 151 || last != 200 {
		t.Fatalf("Bounds after snapshot = (%d, %d)", first, last)
	}
	after, _, err := scanDir(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Fatalf("snapshot kept %d of %d segments; truncation did not run", len(after), len(before))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	snap, ok := l2.LatestSnapshot()
	if !ok || snap.Seq != 150 || string(snap.Data) != "state@150" {
		t.Fatalf("LatestSnapshot = %+v ok=%v", snap, ok)
	}
	// Replay behind the snapshot: only the retained suffix is available.
	out := replayAll(t, l2, snap.Seq)
	if len(out) == 0 || out[0].Seq > 151 || out[len(out)-1].Seq != 200 {
		t.Fatalf("replay after snapshot: %d entries [%d..%d]",
			len(out), out[0].Seq, out[len(out)-1].Seq)
	}
}

func TestReadFromPaging(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 1, 100)

	var got []Entry
	after := uint64(20)
	for {
		page, more, err := l.ReadFrom(after, 80, 16, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page...)
		if len(page) > 0 {
			after = page[len(page)-1].Seq
		}
		if !more {
			break
		}
		if len(page) == 0 {
			t.Fatal("more=true with empty page")
		}
	}
	if len(got) != 60 || got[0].Seq != 21 || got[len(got)-1].Seq != 80 {
		t.Fatalf("paged read: %d entries [%d..%d], want 60 [21..80]",
			len(got), got[0].Seq, got[len(got)-1].Seq)
	}
	// Byte-capped pages behave the same way.
	page, more, err := l.ReadFrom(0, 100, 1000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) == 0 || !more {
		t.Fatalf("byte-capped page: %d entries, more=%v", len(page), more)
	}
}

func TestGenerationMonotone(t *testing.T) {
	dir := t.TempDir()
	var prev uint64
	for i := 0; i < 3; i++ {
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if g := l.Generation(); g <= prev {
			t.Fatalf("generation %d not above previous %d", g, prev)
		} else {
			prev = g
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if prev != 3 {
		t.Fatalf("generation after three opens = %d, want 3", prev)
	}
}

// TestReplay10kUnderOneSecond is the acceptance bound: rebuilding state
// from a 10k-message log must be fast enough to make restarts routine.
func TestReplay10kUnderOneSecond(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(strings.Repeat("x", 128))
	for seq := uint64(1); seq <= 10_000; seq++ {
		if err := l.Append(Entry{Seq: seq, Origin: 1, LogicalID: seq, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n := 0
	if err := l2.Replay(0, func(Entry) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("open+replay of %d entries took %v, want < 1s", n, elapsed)
	}
	if n != 10_000 {
		t.Fatalf("replayed %d entries, want 10000", n)
	}
}

// TestSnapshotJumpLeavesNoInteriorGap: a snapshot installed PAST the local
// tail (a catch-up state transfer) must reset the segment chain — appends
// continue far above the old entries, and a segment holding both sides of
// the jump would be served to catching-up peers as if it were contiguous,
// silently skipping the middle.
func TestSnapshotJumpLeavesNoInteriorGap(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 100)
	// State transfer: the group is at 500, everything local is stale.
	if err := l.WriteSnapshot(500, []byte("state@500")); err != nil {
		t.Fatal(err)
	}
	if first, _ := l.Bounds(); first != 0 {
		t.Fatalf("entries below the snapshot survived: first=%d", first)
	}
	appendN(t, l, 501, 520)

	first, last := l.Bounds()
	if first != 501 || last != 520 {
		t.Fatalf("Bounds after jump = (%d, %d), want (501, 520)", first, last)
	}
	// A peer asking for the pre-jump range must NOT be served a gap: the
	// retained entries start at 501, so serving code sees first > after+1
	// and falls back to the snapshot.
	page, _, err := l.ReadFrom(90, 520, 1000, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 20 || page[0].Seq != 501 {
		t.Fatalf("ReadFrom after jump: %d entries starting at %d", len(page), page[0].Seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// And the reset survives a reopen.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	out := replayAll(t, l2, 500)
	if len(out) != 20 || out[0].Seq != 501 || out[len(out)-1].Seq != 520 {
		t.Fatalf("replay after jump: %d entries [%d..%d]", len(out), out[0].Seq, out[len(out)-1].Seq)
	}
}

// TestReadFromPagingWithHint: paged reads resume mid-segment (the hint
// path) and still return every entry exactly once.
func TestReadFromPagingWithHint(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 1 << 20}) // one big segment
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 1, 500)
	var got []Entry
	after := uint64(0)
	pages := 0
	for {
		page, more, err := l.ReadFrom(after, 500, 64, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page...)
		pages++
		if len(page) > 0 {
			after = page[len(page)-1].Seq
		}
		if !more {
			break
		}
	}
	if len(got) != 500 || pages < 8 {
		t.Fatalf("paged read with hint: %d entries over %d pages", len(got), pages)
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
	}
}
