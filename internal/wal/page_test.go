package wal

import (
	"strings"
	"testing"
)

// Mimic the failing serve pattern: small segments, mixed record sizes,
// concurrent-ish snapshots, paged reads.
func TestReadFromCompleteness(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	long := []byte(strings.Repeat("x", 3700))
	seq := uint64(0)
	for i := 0; i < 150; i++ {
		seq++
		p := []byte("short-payload-json-ish-0123456789")
		if i%7 == 0 {
			p = long
		}
		if err := l.Append(Entry{Seq: seq, Origin: 1, LogicalID: seq, Payload: p}); err != nil {
			t.Fatal(err)
		}
		if i == 60 {
			if err := l.WriteSnapshot(30, []byte("snap")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	after := uint64(30)
	got := map[uint64]bool{}
	for {
		page, more, err := l.ReadFrom(after, 150, 256, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range page {
			got[e.Seq] = true
		}
		if len(page) > 0 {
			after = page[len(page)-1].Seq
		}
		if !more {
			break
		}
	}
	var missing []uint64
	for s := uint64(31); s <= 150; s++ {
		if !got[s] {
			missing = append(missing, s)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("missing %d seqs: %v", len(missing), missing)
	}
}
