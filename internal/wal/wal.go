// Package wal implements the durability substrate of an FSR node: a
// segmented, CRC-framed, append-only write-ahead log of the uniformly
// delivered total order, plus state-machine snapshots that bound replay and
// let old segments be truncated.
//
// Layout of a durable directory:
//
//	gen                incarnation counter, bumped by every Open
//	wal-<seq>.seg      log segments; the hex name is the sequence number
//	                   of the first entry the segment holds
//	snap-<seq>.snap    state-machine snapshots; the hex name is the last
//	                   sequence number folded into the snapshot
//
// Record framing follows the hand-rolled little-endian style of the wire
// codec: each entry is [length u32][crc32c u32][body] with body = seq u64,
// origin u32, logicalID u64, payload length u32, payload. Appends go
// through one buffered writer and are fsynced in batches (every
// Options.SyncEvery records, plus whenever the owner calls Sync before
// externalizing a delivery). A torn tail — the partial record a crash can
// leave mid-write — is detected by the length/CRC check on Open and
// truncated away; everything before it is intact because records are
// written sequentially.
//
// # Failure model
//
// A failed write, flush or fsync permanently poisons the log: every later
// Append/Sync/WriteSnapshot/Replay/ReadFrom returns the same sticky error
// (ErrPoisoned) and the owner is expected to fail-stop. Two disk realities
// force this. First, fsyncgate: after a failed fsync the kernel may drop
// the dirty pages yet let a *retried* fsync succeed, so a log that shrugs
// off one fsync error can later claim durability for records that never
// hit the platter. Second, a short append leaves a partial record in the
// buffered writer; any further append would flush garbage into the
// segment's interior, turning a recoverable torn tail into ErrCorrupt on
// the next open. Freezing the log at the first failure keeps everything
// below the failure point recoverable: the next incarnation's Open truncates
// the torn tail and replays the intact prefix.
//
// The log is safe for concurrent use: the delivery goroutine appends while
// the protocol loop serves catch-up reads to restarted peers.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Entry is one record of the delivered total order: a reassembled
// application message identified by its final segment's global sequence
// number.
type Entry struct {
	Seq       uint64
	Origin    uint32
	LogicalID uint64
	Payload   []byte
}

// Snapshot is a state-machine snapshot: the serialized application state
// with every message up to and including Seq applied.
type Snapshot struct {
	Seq  uint64
	Data []byte
}

// Options tune a Log. Zero values select the defaults.
type Options struct {
	// SegmentBytes caps one segment file; appends past it rotate to a new
	// segment (the unit of truncation). Default 4 MiB.
	SegmentBytes int
	// SyncEvery bounds how many appended records may precede an automatic
	// fsync. The owner still calls Sync explicitly before externalizing a
	// batch; this cap just limits the window inside huge batches.
	// Default 256.
	SyncEvery int
	// FS overrides the filesystem the log runs on — the fault-injection
	// seam (internal/wal/walfault). Nil selects the real filesystem.
	FS FS
	// Logger receives structured events for segment rotation, torn-tail
	// repair, and snapshots. Nil discards them.
	Logger *slog.Logger
}

// Stats is a point-in-time snapshot of the log's durability counters —
// the storage-layer slice of the node's metrics surface.
type Stats struct {
	Segments     int    // on-disk segment files (including the active one)
	Bytes        int64  // total bytes across all retained segments
	Appends      uint64 // entries appended this incarnation
	Fsyncs       uint64 // fsync calls on the active segment
	Rotations    uint64 // segment rotations this incarnation
	Snapshots    uint64 // snapshots written this incarnation
	SnapshotSeq  uint64 // seq covered by the latest snapshot (0 if none)
	SnapshotTime time.Time
	Repairs      uint64 // torn tails truncated at Open
	Poisoned     bool   // a write/flush/fsync failed; the log is frozen
}

const (
	defaultSegmentBytes = 4 << 20
	defaultSyncEvery    = 256

	// maxRecordBytes rejects absurd record lengths, which on the last
	// segment indicates a torn tail rather than corruption.
	maxRecordBytes = 64 << 20

	recordHeader   = 8  // length + crc
	entryFixedSize = 24 // seq + origin + logicalID + payload length
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a log whose interior (not its tail) fails validation.
var ErrCorrupt = errors.New("wal: corrupt log")

// ErrPoisoned is the sticky error a failed write, flush or fsync leaves
// behind: the log refuses all further mutation and serving, so the owner
// fail-stops instead of acking records whose durability the disk already
// betrayed (see the package comment's failure model).
var ErrPoisoned = errors.New("wal: poisoned by storage failure")

// errTorn marks a record cut short at the end of the newest segment — the
// expected shape of a crash mid-append, healed by truncation.
var errTorn = errors.New("wal: torn tail")

// segment is one on-disk log file.
type segment struct {
	path  string
	first uint64 // seq of the first entry (0 while empty)
	last  uint64 // seq of the last entry (0 while empty)
}

// Log is one process's write-ahead log plus snapshot store.
type Log struct {
	mu   sync.Mutex
	dir  string
	opts Options
	fsys FS
	gen  uint64

	segs     []segment // ascending by first seq; the final one is active
	f        File      // active segment
	w        *bufio.Writer
	size     int64 // bytes in the active segment (including buffered)
	unsynced int
	lastSeq  uint64 // highest entry or snapshot seq ever recorded
	err      error  // sticky poison; non-nil freezes the log

	snap *Snapshot // latest snapshot, kept in memory for serving
	hint readHint  // resume point for paged catch-up reads

	log      *slog.Logger
	appends  uint64
	fsyncs   uint64
	rotates  uint64
	snaps    uint64
	snapTime time.Time
	repairs  uint64
}

// readHint remembers where the last ReadFrom page ended, so a paged
// catch-up transfer resumes scanning mid-segment instead of re-reading
// (and re-CRC-checking) the segment from byte 0 for every page.
type readHint struct {
	path  string
	after uint64
	off   int64
}

// Open recovers (or creates) the log in dir, validating every record,
// truncating a torn tail, loading the latest intact snapshot, and bumping
// the incarnation counter.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = defaultSyncEvery
	}
	if opts.FS == nil {
		opts.FS = OS
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, fsys: opts.FS, log: opts.Logger}
	if l.log == nil {
		l.log = slog.New(slog.DiscardHandler)
	}
	if err := l.bumpGeneration(); err != nil {
		return nil, err
	}
	segs, snaps, err := scanDir(l.fsys, dir)
	if err != nil {
		return nil, err
	}
	if err := l.loadSnapshot(snaps); err != nil {
		return nil, err
	}
	if l.snap != nil {
		l.lastSeq = l.snap.Seq
	}
	for i := range segs {
		if err := l.recoverSegment(&segs[i], i == len(segs)-1); err != nil {
			return nil, err
		}
		l.segs = append(l.segs, segs[i])
	}
	if err := l.openActive(); err != nil {
		return nil, err
	}
	return l, nil
}

// bumpGeneration increments the on-disk incarnation counter. Each Open is
// one process incarnation; the owner derives collision-free ID bands from
// it.
func (l *Log) bumpGeneration() error {
	path := filepath.Join(l.dir, "gen")
	prev := uint64(0)
	if b, err := l.fsys.ReadFile(path); err == nil {
		if v, perr := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64); perr == nil {
			prev = v
		}
	}
	l.gen = prev + 1
	return writeFileAtomic(l.fsys, path, []byte(strconv.FormatUint(l.gen, 10)))
}

// scanDir classifies the directory contents.
func scanDir(fsys FS, dir string) (segs []segment, snapSeqs []uint64, err error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	for _, name := range names {
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg"):
			if _, perr := strconv.ParseUint(name[4:len(name)-4], 16, 64); perr == nil {
				segs = append(segs, segment{path: filepath.Join(dir, name)})
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if seq, perr := strconv.ParseUint(name[5:len(name)-5], 16, 64); perr == nil {
				snapSeqs = append(snapSeqs, seq)
			}
		}
	}
	slices.SortFunc(segs, func(a, b segment) int { return strings.Compare(a.path, b.path) })
	slices.Sort(snapSeqs)
	return segs, snapSeqs, nil
}

// loadSnapshot loads the newest intact snapshot and removes broken ones.
func (l *Log) loadSnapshot(seqs []uint64) error {
	for i := len(seqs) - 1; i >= 0; i-- {
		path := l.snapPath(seqs[i])
		snap, err := readSnapshotFile(l.fsys, path)
		if err != nil {
			// A half-written snapshot (crash during WriteSnapshot before
			// the rename... cannot happen; after a partial disk write it
			// can): ignore it and fall back to the previous one.
			_ = l.fsys.Remove(path)
			continue
		}
		l.snap = &snap
		return nil
	}
	return nil
}

// recoverSegment validates one segment, truncating a torn tail on the last
// one and recording its entry bounds.
func (l *Log) recoverSegment(s *segment, isLast bool) error {
	f, err := l.fsys.Open(s.path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	valid, err := scanRecords(f, func(e Entry) error {
		if s.first == 0 {
			s.first = e.Seq
		}
		s.last = e.Seq
		if e.Seq > l.lastSeq {
			l.lastSeq = e.Seq
		}
		return nil
	})
	if err == nil {
		return nil
	}
	if !errors.Is(err, errTorn) {
		return err
	}
	if !isLast {
		return fmt.Errorf("%w: torn record inside interior segment %s", ErrCorrupt, s.path)
	}
	l.repairs++
	l.log.Info("wal repair", "segment", filepath.Base(s.path), "valid_bytes", valid, "last_seq", s.last)
	return l.fsys.Truncate(s.path, valid)
}

// openActive opens the newest segment for appending, creating the first
// one if the directory is fresh (or fully truncated).
func (l *Log) openActive() error {
	if len(l.segs) == 0 {
		return l.createSegment(l.lastSeq + 1)
	}
	s := &l.segs[len(l.segs)-1]
	f, err := l.fsys.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.size = size
	return nil
}

// createSegment starts a fresh active segment whose first entry will be
// seq. Callers hold the lock (or run before the log is shared).
func (l *Log) createSegment(seq uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("wal-%016x.seg", seq))
	f, err := l.fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.segs = append(l.segs, segment{path: path})
	l.f = f
	l.w = bufio.NewWriter(f)
	l.size = 0
	return nil
}

// Generation returns this incarnation's counter (1 for the first Open of a
// directory).
func (l *Log) Generation() uint64 { return l.gen }

// LastSeq returns the highest sequence number recorded (entry or
// snapshot), 0 for an empty log.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Bounds returns the sequence numbers of the earliest and latest retained
// entries; first is 0 when no entries are retained (fresh log, or all
// truncated behind a snapshot).
func (l *Log) Bounds() (first, last uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.segs {
		if l.segs[i].first != 0 {
			return l.segs[i].first, l.lastSeq
		}
	}
	return 0, l.lastSeq
}

// LatestSnapshot returns the newest snapshot. The returned Data is shared;
// callers must treat it as read-only.
func (l *Log) LatestSnapshot() (Snapshot, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.snap == nil {
		return Snapshot{}, false
	}
	return *l.snap, true
}

// poisonLocked records the first storage failure and freezes the log: the
// same sticky error comes back from every later mutation or read. Callers
// hold the lock.
func (l *Log) poisonLocked(err error) error {
	if l.err == nil {
		l.err = fmt.Errorf("%w: %w", ErrPoisoned, err)
		l.log.Error("wal poisoned", "err", err)
	}
	return l.err
}

// Append writes one entry, rotating segments as they fill. The entry is
// durable only after the next Sync (explicit or batched).
func (l *Log) Append(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.f == nil {
		return fmt.Errorf("wal: log closed")
	}
	if l.size >= int64(l.opts.SegmentBytes) {
		if err := l.rotate(e.Seq); err != nil {
			return err
		}
	}
	rec := appendRecord(nil, e)
	if _, err := l.w.Write(rec); err != nil {
		// A short write leaves a partial record in the buffer (and maybe
		// on disk). Poisoning here means no later append can flush bytes
		// after the garbage: what is on disk stays a torn TAIL, which the
		// next incarnation's Open truncates — never interior corruption.
		return l.poisonLocked(fmt.Errorf("wal: append: %w", err))
	}
	l.size += int64(len(rec))
	s := &l.segs[len(l.segs)-1]
	if s.first == 0 {
		s.first = e.Seq
	}
	s.last = e.Seq
	if e.Seq > l.lastSeq {
		l.lastSeq = e.Seq
	}
	l.appends++
	l.unsynced++
	if l.unsynced >= l.opts.SyncEvery {
		return l.syncLocked()
	}
	return nil
}

// rotate seals the active segment and opens a new one starting at seq.
func (l *Log) rotate(seq uint64) error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return l.poisonLocked(fmt.Errorf("wal: rotate: %w", err))
	}
	l.rotates++
	l.log.Info("wal rotate", "first_seq", seq, "segments", len(l.segs)+1, "sealed_bytes", l.size)
	if err := l.createSegment(seq); err != nil {
		return l.poisonLocked(err)
	}
	return nil
}

// Sync flushes buffered appends and fsyncs the active segment — the
// durability point the delivery pump hits before dispatching a batch.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

// syncLocked is the durability point — and the fsyncgate guard. A failed
// flush or fsync must not be retried: the kernel may already have dropped
// the dirty pages, so a retried fsync that "succeeds" would claim
// durability for records that are gone. The first failure poisons the log
// permanently; the owner fail-stops and the next incarnation recovers the
// prefix that truly reached the disk.
func (l *Log) syncLocked() error {
	if l.err != nil {
		return l.err
	}
	if l.f == nil {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return l.poisonLocked(fmt.Errorf("wal: flush: %w", err))
	}
	if err := l.f.Sync(); err != nil {
		return l.poisonLocked(fmt.Errorf("wal: fsync: %w", err))
	}
	l.fsyncs++
	l.unsynced = 0
	return nil
}

// WriteSnapshot records a state-machine snapshot covering everything up to
// and including seq, then truncates segments made redundant by it. The
// caller hands over ownership of data.
//
// Crash atomicity: entries are fsynced first, the snapshot file lands via
// write-temp/fsync/rename/dir-sync, and only then are covered segments
// removed — so at every intermediate crash point the directory holds
// either the old snapshot with all its segments or the new snapshot
// (possibly with now-redundant segments, which replay harmlessly). Any
// failure mid-sequence poisons the log: a half-truncated directory must
// not accept further appends, but reopening it recovers every entry above
// the last durable snapshot.
func (l *Log) WriteSnapshot(seq uint64, data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.syncLocked(); err != nil {
		return err
	}
	body := make([]byte, 0, 12+len(data))
	body = binary.LittleEndian.AppendUint64(body, seq)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(data)))
	body = append(body, data...)
	file := make([]byte, 0, 4+len(body))
	file = binary.LittleEndian.AppendUint32(file, crc32.Checksum(body, crcTable))
	file = append(file, body...)
	if err := writeFileAtomic(l.fsys, l.snapPath(seq), file); err != nil {
		return l.poisonLocked(err)
	}
	prev := l.snap
	l.snap = &Snapshot{Seq: seq, Data: data}
	l.snaps++
	l.snapTime = time.Now()
	l.log.Info("wal snapshot", "seq", seq, "bytes", len(data))
	l.hint = readHint{} // segment set is about to change
	if seq > l.lastSeq {
		l.lastSeq = seq
	}
	if prev != nil && prev.Seq != seq {
		_ = l.fsys.Remove(l.snapPath(prev.Seq))
	}
	// Truncation: a non-active segment whose entries are all covered by
	// the snapshot will never be replayed or served again.
	for len(l.segs) > 1 && l.segs[0].last <= seq {
		if err := l.fsys.Remove(l.segs[0].path); err != nil && !os.IsNotExist(err) {
			return l.poisonLocked(fmt.Errorf("wal: truncate: %w", err))
		}
		l.segs = l.segs[1:]
	}
	// When the snapshot covers the active segment too — always true for
	// the cadence snapshot at the current cursor, and for a state
	// transfer that jumped past the local tail — reset to a fresh empty
	// segment based above it. Without this, appends after a jump would
	// land in a segment holding entries far below them, and catch-up
	// serving (which treats a segment as seq-contiguous) would silently
	// skip the interior gap.
	if last := &l.segs[len(l.segs)-1]; last.last <= seq {
		if err := l.f.Close(); err != nil {
			return l.poisonLocked(fmt.Errorf("wal: %w", err))
		}
		for _, s := range l.segs {
			if err := l.fsys.Remove(s.path); err != nil && !os.IsNotExist(err) {
				return l.poisonLocked(fmt.Errorf("wal: truncate: %w", err))
			}
		}
		l.segs = nil
		if err := l.createSegment(seq + 1); err != nil {
			return l.poisonLocked(err)
		}
	}
	return nil
}

func (l *Log) snapPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("snap-%016x.snap", seq))
}

// Stats snapshots the durability counters. Bytes counts the active
// segment's buffered-but-unflushed tail too, so it tracks what Append has
// accepted rather than what has hit the disk.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Segments:     len(l.segs),
		Appends:      l.appends,
		Fsyncs:       l.fsyncs,
		Rotations:    l.rotates,
		Snapshots:    l.snaps,
		SnapshotTime: l.snapTime,
		Repairs:      l.repairs,
		Poisoned:     l.err != nil,
	}
	if l.snap != nil {
		st.SnapshotSeq = l.snap.Seq
	}
	for i := range l.segs[:max(len(l.segs)-1, 0)] {
		if size, err := l.fsys.FileSize(l.segs[i].path); err == nil {
			st.Bytes += size
		}
	}
	if len(l.segs) > 0 {
		st.Bytes += l.size
	}
	return st
}

// Writable probes whether the durable directory still accepts writes —
// the readiness check for a disk yanked out from under a running node. It
// creates and removes a marker file rather than testing permission bits,
// so remounted-read-only and ENOSPC failures are caught too. A poisoned
// log reports its sticky error without touching the disk: whatever the
// probe would say now, the log already refused to trust this disk.
func (l *Log) Writable() error {
	l.mu.Lock()
	dir, err := l.dir, l.err
	l.mu.Unlock()
	if err != nil {
		return err
	}
	f, err := l.fsys.CreateTemp(dir, ".probe-*")
	if err != nil {
		return fmt.Errorf("wal: not writable: %w", err)
	}
	name := f.Name()
	_ = f.Close()
	if err := l.fsys.Remove(name); err != nil {
		return fmt.Errorf("wal: not writable: %w", err)
	}
	return nil
}

// Replay streams every retained entry with Seq > after, in order — the
// restart path that rebuilds the state machine behind the latest snapshot.
func (l *Log) Replay(after uint64, fn func(Entry) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.w != nil {
		if err := l.w.Flush(); err != nil {
			return l.poisonLocked(fmt.Errorf("wal: flush: %w", err))
		}
	}
	for i := range l.segs {
		s := &l.segs[i]
		if s.first == 0 || s.last <= after {
			continue
		}
		f, err := l.fsys.Open(s.path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		_, err = scanRecords(f, func(e Entry) error {
			if e.Seq <= after {
				return nil
			}
			return fn(e)
		})
		_ = f.Close()
		if err != nil && !errors.Is(err, errTorn) {
			return err
		}
	}
	return nil
}

// ReadFrom returns retained entries with after < Seq <= upTo, bounded by
// maxEntries and maxBytes of payload — one page of a catch-up transfer.
// more reports whether entries in range remain beyond the page.
func (l *Log) ReadFrom(after, upTo uint64, maxEntries, maxBytes int) (entries []Entry, more bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		// A poisoned member must not serve catch-up: its buffered tail
		// never flushed, and flushing it now could write a partial record
		// into the interior. Peers rotate to another server.
		return nil, false, l.err
	}
	if l.w != nil {
		if err := l.w.Flush(); err != nil {
			return nil, false, l.poisonLocked(fmt.Errorf("wal: flush: %w", err))
		}
	}
	bytes := 0
	for i := range l.segs {
		s := &l.segs[i]
		if s.first == 0 || s.last <= after || s.first > upTo {
			continue
		}
		start := int64(0)
		if l.hint.path == s.path && l.hint.after == after {
			start = l.hint.off
		}
		f, err := l.fsys.Open(s.path)
		if err != nil {
			return nil, false, fmt.Errorf("wal: %w", err)
		}
		valid, serr := scanRecordsAt(f, start, func(e Entry) error {
			if e.Seq <= after || e.Seq > upTo {
				return nil
			}
			if len(entries) >= maxEntries || bytes >= maxBytes {
				more = true
				return errPageFull
			}
			entries = append(entries, e)
			bytes += len(e.Payload)
			return nil
		})
		_ = f.Close()
		if serr != nil && !errors.Is(serr, errTorn) && !errors.Is(serr, errPageFull) {
			return nil, false, serr
		}
		if more {
			if len(entries) > 0 {
				l.hint = readHint{path: s.path, after: entries[len(entries)-1].Seq, off: start + valid}
			}
			return entries, true, nil
		}
	}
	return entries, false, nil
}

// errPageFull stops a ReadFrom scan once the page limits are hit.
var errPageFull = errors.New("wal: page full")

// Close flushes, fsyncs and releases the active segment. A poisoned log
// releases the file handle without flushing (the buffer may hold a partial
// record) and returns the sticky error.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.err
	}
	err := l.err
	if err == nil {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	l.w = nil
	return err
}

// appendRecord frames one entry onto buf.
func appendRecord(buf []byte, e Entry) []byte {
	bodyLen := entryFixedSize + len(e.Payload)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(bodyLen))
	crcAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // crc placeholder
	bodyAt := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, e.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, e.Origin)
	buf = binary.LittleEndian.AppendUint64(buf, e.LogicalID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Payload)))
	buf = append(buf, e.Payload...)
	binary.LittleEndian.PutUint32(buf[crcAt:], crc32.Checksum(buf[bodyAt:], crcTable))
	return buf
}

// scanRecords streams every intact record of one segment to fn. It returns
// the byte offset of the end of the last intact record; a short or
// corrupt tail is reported as errTorn (the caller decides whether that is
// legal), any error from fn is passed through.
func scanRecords(f File, fn func(Entry) error) (int64, error) {
	return scanRecordsAt(f, 0, fn)
}

// scanRecordsAt is scanRecords starting at byte offset off; the returned
// offset is relative to off.
func scanRecordsAt(f File, off int64, fn func(Entry) error) (int64, error) {
	if off > 0 {
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			return 0, fmt.Errorf("wal: %w", err)
		}
	}
	r := bufio.NewReader(f)
	var valid int64
	hdr := make([]byte, recordHeader)
	var body []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if errors.Is(err, io.EOF) {
				return valid, nil
			}
			return valid, errTorn // io.ErrUnexpectedEOF: partial header
		}
		length := binary.LittleEndian.Uint32(hdr)
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if length < entryFixedSize || length > maxRecordBytes {
			return valid, errTorn
		}
		if cap(body) < int(length) {
			body = make([]byte, length)
		}
		body = body[:length]
		if _, err := io.ReadFull(r, body); err != nil {
			return valid, errTorn
		}
		if crc32.Checksum(body, crcTable) != crc {
			return valid, errTorn
		}
		var e Entry
		e.Seq = binary.LittleEndian.Uint64(body)
		e.Origin = binary.LittleEndian.Uint32(body[8:])
		e.LogicalID = binary.LittleEndian.Uint64(body[12:])
		plen := binary.LittleEndian.Uint32(body[20:])
		if int(plen) != len(body)-entryFixedSize {
			return valid, errTorn
		}
		e.Payload = slices.Clone(body[entryFixedSize:])
		if err := fn(e); err != nil {
			return valid, err
		}
		valid += recordHeader + int64(length)
	}
}

// readSnapshotFile loads and validates one snapshot file.
func readSnapshotFile(fsys FS, path string) (Snapshot, error) {
	b, err := fsys.ReadFile(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("wal: %w", err)
	}
	if len(b) < 16 {
		return Snapshot{}, fmt.Errorf("%w: short snapshot %s", ErrCorrupt, path)
	}
	crc := binary.LittleEndian.Uint32(b)
	body := b[4:]
	if crc32.Checksum(body, crcTable) != crc {
		return Snapshot{}, fmt.Errorf("%w: snapshot crc %s", ErrCorrupt, path)
	}
	seq := binary.LittleEndian.Uint64(body)
	n := binary.LittleEndian.Uint32(body[8:])
	if int(n) != len(body)-12 {
		return Snapshot{}, fmt.Errorf("%w: snapshot length %s", ErrCorrupt, path)
	}
	return Snapshot{Seq: seq, Data: body[12:]}, nil
}

// writeFileAtomic writes data via a temp file, fsync and rename, then
// fsyncs the directory so the rename survives a crash.
func writeFileAtomic(fsys FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer fsys.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	_ = fsys.SyncDir(dir)
	return nil
}
