package wal_test

// Storage-fault regression tests: each exercises one of the WAL durability
// bugs through the walfault injection layer. The injected schedules here
// use precise one-shot indices so every test is deterministic on its own;
// the seeded statistical schedules run under the chaos harness's
// hostile-disk profile (internal/harness, FSR_SEED-replayable).

import (
	"errors"
	"fmt"
	"testing"

	"fsr/internal/wal"
	"fsr/internal/wal/walfault"
)

func fe(seq uint64) wal.Entry {
	return wal.Entry{Seq: seq, Origin: 7, LogicalID: seq, Payload: []byte(fmt.Sprintf("m-%04d", seq))}
}

// replaySeqs reopens nothing — it replays the given log above `after` and
// returns the recovered sequence numbers.
func replaySeqs(t *testing.T, l *wal.Log, after uint64) []uint64 {
	t.Helper()
	var seqs []uint64
	if err := l.Replay(after, func(e wal.Entry) error {
		seqs = append(seqs, e.Seq)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return seqs
}

func wantSeqs(t *testing.T, got []uint64, want ...uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered seqs %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered seqs %v, want %v", got, want)
		}
	}
}

// TestFsyncErrorPoisonsLog is the fsyncgate regression: a failed fsync
// must freeze the log permanently — a retried fsync that "succeeds" after
// the kernel dropped the dirty pages would otherwise claim durability for
// lost records. The log must return the same sticky error forever after,
// and reopening the directory must recover an intact prefix.
func TestFsyncErrorPoisonsLog(t *testing.T) {
	dir := t.TempDir()
	fopts := walfault.NoOneShots()
	fopts.FailFsyncAt = 0
	ffs := walfault.New(nil, fopts)

	l, err := wal.Open(dir, wal.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := l.Append(fe(seq)); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
	if err := l.Sync(); !errors.Is(err, wal.ErrPoisoned) {
		t.Fatalf("Sync after injected fsync error = %v, want ErrPoisoned", err)
	}
	// Sticky: every later operation returns the poison, none mutate disk.
	if err := l.Append(fe(6)); !errors.Is(err, wal.ErrPoisoned) {
		t.Fatalf("Append on poisoned log = %v, want ErrPoisoned", err)
	}
	if err := l.Sync(); !errors.Is(err, wal.ErrPoisoned) {
		t.Fatalf("second Sync = %v, want ErrPoisoned", err)
	}
	if !l.Stats().Poisoned {
		t.Fatal("Stats().Poisoned = false after fsync failure")
	}
	if err := l.Writable(); !errors.Is(err, wal.ErrPoisoned) {
		t.Fatalf("Writable on poisoned log = %v, want ErrPoisoned", err)
	}
	if err := l.Close(); !errors.Is(err, wal.ErrPoisoned) {
		t.Fatalf("Close on poisoned log = %v, want ErrPoisoned", err)
	}

	// Next incarnation on an honest disk: the flushed prefix survived the
	// reported-then-poisoned fsync, and the log is usable again.
	l2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if l2.Stats().Poisoned {
		t.Fatal("poison leaked across reopen")
	}
	wantSeqs(t, replaySeqs(t, l2, 0), 1, 2, 3, 4, 5)
	if err := l2.Append(fe(6)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatalf("sync after recovery: %v", err)
	}
}

// TestShortWritePoisonsAndRecovers is the partial-append regression: a
// short write leaves garbage mid-segment, and the old code would happily
// append after it — turning a repairable torn tail into interior
// corruption that bricks the next Open with ErrCorrupt. With the fix, the
// first failed write poisons the log, the garbage stays a tail, and the
// next incarnation truncates it and recovers the pre-fault prefix.
func TestShortWritePoisonsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	fopts := walfault.NoOneShots()
	fopts.FailWriteAt = 3 // flushes 0..2 land; the 4th tears
	ffs := walfault.New(nil, fopts)

	l, err := wal.Open(dir, wal.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(fe(seq)); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("sync %d: %v", seq, err)
		}
	}
	if err := l.Append(fe(4)); err != nil {
		t.Fatalf("append 4 buffers only, must not fail: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, wal.ErrPoisoned) {
		t.Fatalf("Sync over torn write = %v, want ErrPoisoned", err)
	}
	if err := l.Append(fe(5)); !errors.Is(err, wal.ErrPoisoned) {
		t.Fatalf("Append after torn write = %v, want ErrPoisoned (would write after garbage)", err)
	}
	_ = l.Close()

	// Reopen on an honest disk: the partial record is a torn TAIL —
	// truncated by recovery, never ErrCorrupt — and entries 1..3 survive.
	l2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer l2.Close()
	wantSeqs(t, replaySeqs(t, l2, 0), 1, 2, 3)
	if err := l2.Append(fe(4)); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatalf("sync after repair: %v", err)
	}
}

// TestLyingFsyncCrashLosesOnlyCleanSuffix models fsyncgate's worst case:
// the fsync *reports success* but the kernel already dropped the pages.
// The WAL cannot detect this — the loss only shows at the next power cut —
// so the guarantee under test is recovery-shaped: the crash loses exactly
// the unflushed suffix (a clean prefix survives), and the reopened log is
// consistent and usable. Cluster-level acked⇒durable over lying fsyncs is
// the hostile-disk chaos profile's job, where peers re-supply the suffix.
func TestLyingFsyncCrashLosesOnlyCleanSuffix(t *testing.T) {
	dir := t.TempDir()
	fopts := walfault.NoOneShots()
	fopts.LieFsyncAt = 1 // fsync 0 honest; fsync 1 (and all later) lie
	ffs := walfault.New(nil, fopts)

	l, err := wal.Open(dir, wal.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(fe(seq)); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("sync %d: %v", seq, err) // the lie: reports success
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Power cut: everything past the last HONEST fsync evaporates.
	if err := ffs.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if got := ffs.Injected()["lying-fsync"]; got != 1 {
		t.Fatalf("lying-fsync injections = %d, want 1 (sticky lies count once)", got)
	}

	l2, err := wal.Open(dir, wal.Options{FS: ffs})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer l2.Close()
	wantSeqs(t, replaySeqs(t, l2, 0), 1)
	if l2.LastSeq() != 1 {
		t.Fatalf("LastSeq = %d, want 1", l2.LastSeq())
	}
	// The disk is honest again post-crash; the node can rebuild from here.
	if err := l2.Append(fe(2)); err != nil {
		t.Fatalf("append after crash-recovery: %v", err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatalf("sync after crash-recovery: %v", err)
	}
}

// TestSnapshotCrashAtomicity injects a failure at each stage of
// WriteSnapshot — temp-file creation, rename, segment truncation — and
// asserts the invariant the atomic sequence exists for: a reopened log
// never loses entries above the last *durable* snapshot.
func TestSnapshotCrashAtomicity(t *testing.T) {
	t.Run("enospc-at-tmp-create", func(t *testing.T) {
		dir := t.TempDir()
		fopts := walfault.NoOneShots()
		fopts.FailCreateAt = 2 // 0: gen tmp, 1: first segment, 2: snapshot tmp
		ffs := walfault.New(nil, fopts)
		l, err := wal.Open(dir, wal.Options{FS: ffs})
		if err != nil {
			t.Fatal(err)
		}
		for seq := uint64(1); seq <= 5; seq++ {
			if err := l.Append(fe(seq)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := l.WriteSnapshot(3, []byte("state@3")); !errors.Is(err, wal.ErrPoisoned) {
			t.Fatalf("WriteSnapshot over ENOSPC = %v, want ErrPoisoned", err)
		}
		_ = l.Close()

		l2, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		if _, ok := l2.LatestSnapshot(); ok {
			t.Fatal("phantom snapshot after failed tmp create")
		}
		wantSeqs(t, replaySeqs(t, l2, 0), 1, 2, 3, 4, 5)
	})

	t.Run("enospc-at-rename", func(t *testing.T) {
		dir := t.TempDir()
		fopts := walfault.NoOneShots()
		fopts.FailRenameAt = 1 // 0: gen install at Open; 1: snapshot install
		ffs := walfault.New(nil, fopts)
		l, err := wal.Open(dir, wal.Options{FS: ffs})
		if err != nil {
			t.Fatal(err)
		}
		for seq := uint64(1); seq <= 5; seq++ {
			if err := l.Append(fe(seq)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := l.WriteSnapshot(3, []byte("state@3")); !errors.Is(err, wal.ErrPoisoned) {
			t.Fatalf("WriteSnapshot over rename failure = %v, want ErrPoisoned", err)
		}
		_ = l.Close()

		l2, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		if _, ok := l2.LatestSnapshot(); ok {
			t.Fatal("phantom snapshot after failed rename")
		}
		wantSeqs(t, replaySeqs(t, l2, 0), 1, 2, 3, 4, 5)
	})

	t.Run("eio-mid-truncation", func(t *testing.T) {
		dir := t.TempDir()
		fopts := walfault.NoOneShots()
		fopts.FailRemoveAt = 3 // 0: gen tmp defer, 1: snap tmp defer, 2: first covered seg, 3: second
		ffs := walfault.New(nil, fopts)
		// ~40-byte records, 64-byte segments: two entries per segment.
		l, err := wal.Open(dir, wal.Options{FS: ffs, SegmentBytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		for seq := uint64(1); seq <= 10; seq++ {
			if err := l.Append(fe(seq)); err != nil {
				t.Fatal(err)
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		// Snapshot is durably installed, then truncation dies halfway.
		if err := l.WriteSnapshot(8, []byte("state@8")); !errors.Is(err, wal.ErrPoisoned) {
			t.Fatalf("WriteSnapshot over truncation EIO = %v, want ErrPoisoned", err)
		}
		_ = l.Close()

		// The directory holds the new snapshot plus leftover covered
		// segments; those replay harmlessly and nothing above the durable
		// snapshot is lost.
		l2, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatalf("reopen with leftover segments: %v", err)
		}
		defer l2.Close()
		snap, ok := l2.LatestSnapshot()
		if !ok || snap.Seq != 8 {
			t.Fatalf("snapshot = %+v ok=%v, want durable snapshot at seq 8", snap, ok)
		}
		wantSeqs(t, replaySeqs(t, l2, 8), 9, 10)
		if l2.LastSeq() != 10 {
			t.Fatalf("LastSeq = %d, want 10", l2.LastSeq())
		}
	})
}

// TestENOSPCMidRotatePoisons: a full disk striking the rotation path (new
// segment creation) must poison, not leave a half-rotated log; the synced
// prefix reopens cleanly.
func TestENOSPCMidRotatePoisons(t *testing.T) {
	dir := t.TempDir()
	fopts := walfault.NoOneShots()
	fopts.FailCreateAt = 2 // 0: gen tmp, 1: first segment, 2: rotation's segment
	ffs := walfault.New(nil, fopts)

	l, err := wal.Open(dir, wal.Options{FS: ffs, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(fe(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(fe(2)); !errors.Is(err, wal.ErrPoisoned) {
		t.Fatalf("Append across ENOSPC rotation = %v, want ErrPoisoned", err)
	}
	if err := l.Append(fe(3)); !errors.Is(err, wal.ErrPoisoned) {
		t.Fatalf("Append after poisoned rotation = %v, want ErrPoisoned", err)
	}
	_ = l.Close()

	l2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	wantSeqs(t, replaySeqs(t, l2, 0), 1)
}

// TestBitFlipInteriorFailsLoud: read corruption inside an interior segment
// must surface as ErrCorrupt at Open — fail loud, never serve a log with a
// silent interior gap. (A flip in the *last* record is indistinguishable
// from a torn tail and heals by truncation; the cluster re-supplies the
// entry, which the hostile-disk profile asserts.)
func TestBitFlipInteriorFailsLoud(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 6; seq++ {
		if err := l.Append(fe(seq)); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	fopts := walfault.NoOneShots()
	fopts.FlipReadAt = 0 // first segment read during recovery
	ffs := walfault.New(nil, fopts)
	if _, err := wal.Open(dir, wal.Options{FS: ffs}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("Open over interior bit-flip = %v, want ErrCorrupt", err)
	}
}

// TestFaultScheduleDeterminism: two injectors with the same seed fire the
// same faults over the same operation sequence — the property FSR_SEED
// replay rests on.
func TestFaultScheduleDeterminism(t *testing.T) {
	run := func(seed int64) (map[string]uint64, error) {
		dir := t.TempDir()
		fopts := walfault.NoOneShots()
		fopts.Seed = seed
		fopts.TornEvery = 5
		fopts.FsyncErrEvery = 7
		fopts.ENOSPCEvery = 9
		ffs := walfault.New(nil, fopts)
		l, err := wal.Open(dir, wal.Options{FS: ffs, SegmentBytes: 128})
		if err != nil {
			return ffs.Injected(), nil
		}
		for seq := uint64(1); seq <= 40; seq++ {
			if err := l.Append(fe(seq)); err != nil {
				break
			}
			if err := l.Sync(); err != nil {
				break
			}
		}
		_ = l.Close()
		return ffs.Injected(), nil
	}
	a, _ := run(42)
	b, _ := run(42)
	if len(a) != len(b) {
		t.Fatalf("schedules diverged: %v vs %v", a, b)
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("schedules diverged at %q: %v vs %v", k, a, b)
		}
	}
	total := uint64(0)
	for _, v := range a {
		total += v
	}
	if total == 0 {
		t.Fatal("seed 42 injected no faults over 40 synced appends; schedule too sparse for the test")
	}
}
