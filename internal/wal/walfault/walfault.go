// Package walfault is a fault-injecting wal.FS: the storage-side twin of
// transport/chaos. It wraps a real (or in-memory) filesystem and, driven by
// a deterministic schedule hashed from (seed, operation kind, op index),
// injects the disk failures the WAL's failure model must survive:
//
//   - short/torn writes — a write persists a prefix and then fails
//     (ENOSPC or EIO), leaving a partial record on disk;
//   - fsync errors, and *lying* fsyncs — the fsync reports success but the
//     unflushed bytes are silently dropped at the next Crash, modelling
//     fsyncgate-class kernels that clear the error state after one report;
//   - ENOSPC on file creation (mid-rotate, mid-snapshot) and on rename;
//   - single-bit corruption on read, modelling latent sector rot.
//
// The schedule is a pure function of the seed: every fault a scenario
// injects is replayable from the one FSR_SEED that generated it. (As with
// the transport's schedule, *which operation* gets index i depends on the
// node's own goroutine interleaving, so replays are statistically — not
// bit-for-bit — identical.)
//
// Crash semantics: the layer tracks a durable watermark per tracked file
// (advanced by honest fsyncs, frozen once a file's fsync has lied) and
// Crash() truncates every tracked file back to its watermark — the
// power-cut that reveals which acks the disk actually honored.
//
// Scope restrictions keep the injected faults realistic rather than
// adversarial beyond the model: lying fsyncs and read bit-flips target only
// log segments (*.seg) and snapshots (*.snap); the one-line gen file is
// exempt so incarnations stay monotone, as a real store would guarantee
// with its own O_SYNC metadata write.
package walfault

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"

	"fsr/internal/wal"
	"fsr/transport/chaos"
)

// Options configure the fault schedule. "Every" fields are mean periods:
// roughly one in every N operations of that kind faults, chosen by hashing
// (Seed, kind, op index) — 0 disables that fault. "At" fields are precise
// one-shots for unit tests: the fault fires on exactly that 0-based op
// index of its kind (-1, the zero value via NoOneShots, disables them; a
// plain zero Options therefore fires every "At" fault on op 0, so tests
// constructing Options piecemeal should start from NoOneShots()).
type Options struct {
	Seed int64

	TornEvery     int // short write then error, on segment appends
	FsyncErrEvery int // honest fsync error (reported, bytes kept)
	LieEvery      int // lying fsync: reports nil, watermark frozen
	ENOSPCEvery   int // create/rename failures (rotate & snapshot paths)
	FlipEvery     int // one-bit corruption on .seg/.snap reads

	FailWriteAt  int // one-shot torn write on the Nth tracked write
	FailFsyncAt  int // one-shot honest fsync error on the Nth fsync
	LieFsyncAt   int // one-shot lying fsync on the Nth fsync
	FailCreateAt int // one-shot ENOSPC on the Nth create (OpenFile|CreateTemp)
	FailRenameAt int // one-shot ENOSPC on the Nth rename
	FailRemoveAt int // one-shot EIO on the Nth remove
	FlipReadAt   int // one-shot bit-flip on the Nth read op
}

// NoOneShots returns Options with every one-shot index disabled; callers
// then enable the faults they want.
func NoOneShots() Options {
	return Options{
		FailWriteAt:  -1,
		FailFsyncAt:  -1,
		LieFsyncAt:   -1,
		FailCreateAt: -1,
		FailRenameAt: -1,
		FailRemoveAt: -1,
		FlipReadAt:   -1,
	}
}

// Op-kind salts for the schedule hash, so each fault family draws an
// independent stream from the same seed.
const (
	saltWrite  = 0x7052_11ad
	saltFsync  = 0xf5a6_c6a7
	saltLie    = 0x11e5_11e5
	saltCreate = 0xe205_bc01
	saltRename = 0x2e6a_3ed1
	saltRemove = 0x2e30_4ed1
	saltFlip   = 0xb17f_11b5
)

// fileState tracks what the fake platter holds for one file.
type fileState struct {
	size    int64 // bytes the file-layer has accepted
	durable int64 // bytes an honest fsync has committed
	lying   bool  // fsync has lied once; watermark frozen forever
}

// FS is the injecting filesystem. One instance models one disk: share it
// across the incarnations of a single node, never across nodes.
type FS struct {
	inner wal.FS
	opts  Options

	mu      sync.Mutex
	files   map[string]*fileState // tracked (fault-eligible) files, by path
	writes  uint64                // op counters, one per fault family
	fsyncs  uint64
	creates uint64
	renames uint64
	removes uint64
	reads   uint64

	injected map[string]uint64 // fault tally by kind, for logs/tests
	disarmed bool              // faults suspended; tracking stays live
}

// New wraps inner (nil selects the real filesystem) with the fault layer.
func New(inner wal.FS, opts Options) *FS {
	if inner == nil {
		inner = wal.OS
	}
	return &FS{inner: inner, opts: opts, files: map[string]*fileState{}, injected: map[string]uint64{}}
}

// Disarm suspends fault injection: every operation passes straight
// through (op counters still advance, and segment size/durability
// tracking stays live, so a later Crash() remains accurate). Arm
// re-enables the schedule. The chaos harness boots members disarmed —
// the cluster must come up before the weather starts — and disarms again
// for the final recovery, so the checker judges what the faults left on
// the platter rather than fighting fresh ones.
func (f *FS) Disarm() {
	f.mu.Lock()
	f.disarmed = true
	f.mu.Unlock()
}

// Arm (re-)enables the fault schedule. A new FS starts armed.
func (f *FS) Arm() {
	f.mu.Lock()
	f.disarmed = false
	f.mu.Unlock()
}

// roll decides whether op index n of the family (salt, every, at) faults.
// Callers hold f.mu (which the disarmed check relies on).
func (f *FS) roll(salt uint64, n uint64, every int, at int) bool {
	if f.disarmed {
		return false
	}
	if at >= 0 && n == uint64(at) {
		return true
	}
	if every <= 0 {
		return false
	}
	return chaos.Mix(uint64(f.opts.Seed)^chaos.Mix(salt)^chaos.Mix(n))%uint64(every) == 0
}

// hash gives deterministic per-op entropy beyond the yes/no roll (torn
// lengths, bit positions, errno choice).
func (f *FS) hash(salt uint64, n uint64) uint64 {
	return chaos.Mix(uint64(f.opts.Seed) ^ chaos.Mix(salt^0x5ca1ab1e) ^ chaos.Mix(n))
}

func (f *FS) note(kind string) {
	f.injected[kind]++
}

// Injected reports how many faults of each kind have fired.
func (f *FS) Injected() map[string]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]uint64, len(f.injected))
	for k, v := range f.injected {
		out[k] = v
	}
	return out
}

// segFile reports whether path is a log segment (the torn-write /
// lying-fsync target set).
func segFile(path string) bool { return strings.HasSuffix(path, ".seg") }

// flipTarget reports whether path's reads may be bit-flipped.
func flipTarget(path string) bool {
	return strings.HasSuffix(path, ".seg") || strings.HasSuffix(path, ".snap")
}

// Crash simulates a power cut: every tracked file is truncated back to its
// durable watermark, dropping bytes that were written — and possibly
// "fsynced" by a lying fsync — but never honestly committed. Lying state
// resets: the next incarnation's disk starts honest. Call between Stop and
// Restart of the node that owns this disk.
func (f *FS) Crash() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var firstErr error
	for path, st := range f.files {
		if st.durable < st.size {
			if err := f.inner.Truncate(path, st.durable); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			st.size = st.durable
		}
		st.lying = false
	}
	return firstErr
}

// --- wal.FS ---

func (f *FS) MkdirAll(path string, perm fs.FileMode) error { return f.inner.MkdirAll(path, perm) }
func (f *FS) ReadDir(dir string) ([]string, error)         { return f.inner.ReadDir(dir) }

func (f *FS) ReadFile(path string) ([]byte, error) {
	b, err := f.inner.ReadFile(path)
	if err != nil || !flipTarget(path) {
		return b, err
	}
	f.mu.Lock()
	n := f.reads
	f.reads++
	flip := len(b) > 0 && f.roll(saltFlip, n, f.opts.FlipEvery, f.opts.FlipReadAt)
	if flip {
		f.note("flip")
	}
	f.mu.Unlock()
	if flip {
		bit := f.hash(saltFlip, n) % uint64(len(b)*8)
		b[bit/8] ^= 1 << (bit % 8)
	}
	return b, err
}

func (f *FS) Open(path string) (wal.File, error) {
	inner, err := f.inner.Open(path)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner, path: path, readOnly: true}, nil
}

func (f *FS) OpenFile(path string, flag int, perm fs.FileMode) (wal.File, error) {
	if flag&os.O_CREATE != 0 {
		f.mu.Lock()
		n := f.creates
		f.creates++
		fail := f.roll(saltCreate, n, f.opts.ENOSPCEvery, f.opts.FailCreateAt)
		if fail {
			f.note("enospc-create")
		}
		f.mu.Unlock()
		if fail {
			return nil, &fs.PathError{Op: "open", Path: path, Err: syscall.ENOSPC}
		}
	}
	inner, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	fl := &file{fs: f, inner: inner, path: path}
	if segFile(path) {
		size, serr := inner.Size()
		if serr != nil {
			_ = inner.Close()
			return nil, serr
		}
		f.track(path, size)
	}
	return fl, nil
}

// track registers a fault-eligible file; existing bytes are assumed
// durable (they survived at least one earlier honest lifecycle).
func (f *FS) track(path string, size int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.files[path]; !ok {
		f.files[path] = &fileState{size: size, durable: size}
	}
}

func (f *FS) CreateTemp(dir, pattern string) (wal.File, error) {
	f.mu.Lock()
	n := f.creates
	f.creates++
	fail := f.roll(saltCreate, n, f.opts.ENOSPCEvery, f.opts.FailCreateAt)
	if fail {
		f.note("enospc-create")
	}
	f.mu.Unlock()
	if fail {
		return nil, &fs.PathError{Op: "createtemp", Path: filepath.Join(dir, pattern), Err: syscall.ENOSPC}
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner, path: inner.Name()}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	n := f.renames
	f.renames++
	fail := f.roll(saltRename, n, f.opts.ENOSPCEvery, f.opts.FailRenameAt)
	if fail {
		f.note("enospc-rename")
	}
	f.mu.Unlock()
	if fail {
		return &fs.PathError{Op: "rename", Path: newpath, Err: syscall.ENOSPC}
	}
	if err := f.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.mu.Lock()
	if st, ok := f.files[oldpath]; ok {
		delete(f.files, oldpath)
		f.files[newpath] = st
	}
	f.mu.Unlock()
	return nil
}

func (f *FS) Remove(path string) error {
	f.mu.Lock()
	n := f.removes
	f.removes++
	fail := f.roll(saltRemove, n, 0, f.opts.FailRemoveAt)
	if fail {
		f.note("eio-remove")
	}
	f.mu.Unlock()
	if fail {
		return &fs.PathError{Op: "remove", Path: path, Err: syscall.EIO}
	}
	if err := f.inner.Remove(path); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.files, path)
	f.mu.Unlock()
	return nil
}

func (f *FS) Truncate(path string, size int64) error {
	if err := f.inner.Truncate(path, size); err != nil {
		return err
	}
	f.mu.Lock()
	if st, ok := f.files[path]; ok {
		if st.size > size {
			st.size = size
		}
		if st.durable > size {
			st.durable = size
		}
	}
	f.mu.Unlock()
	return nil
}

func (f *FS) FileSize(path string) (int64, error) { return f.inner.FileSize(path) }
func (f *FS) SyncDir(dir string) error            { return f.inner.SyncDir(dir) }

// file wraps one open file with the per-op fault rolls.
type file struct {
	fs       *FS
	inner    wal.File
	path     string
	readOnly bool
}

func (fl *file) Name() string         { return fl.inner.Name() }
func (fl *file) Size() (int64, error) { return fl.inner.Size() }
func (fl *file) Close() error         { return fl.inner.Close() }
func (fl *file) Seek(off int64, whence int) (int64, error) {
	return fl.inner.Seek(off, whence)
}

func (fl *file) Read(p []byte) (int, error) {
	n, err := fl.inner.Read(p)
	if n == 0 || !flipTarget(fl.path) {
		return n, err
	}
	f := fl.fs
	f.mu.Lock()
	i := f.reads
	f.reads++
	flip := f.roll(saltFlip, i, f.opts.FlipEvery, f.opts.FlipReadAt)
	if flip {
		f.note("flip")
	}
	f.mu.Unlock()
	if flip {
		bit := f.hash(saltFlip, i) % uint64(n*8)
		p[bit/8] ^= 1 << (bit % 8)
	}
	return n, err
}

// Write injects torn writes on tracked segment files: a deterministic
// prefix of p reaches the platter, then the write reports failure — the
// shape a full disk or an I/O error leaves behind a buffered flush.
func (fl *file) Write(p []byte) (int, error) {
	f := fl.fs
	tracked := segFile(fl.path)
	var (
		i    uint64
		fail bool
	)
	if tracked {
		f.mu.Lock()
		i = f.writes
		f.writes++
		fail = f.roll(saltWrite, i, f.opts.TornEvery, f.opts.FailWriteAt)
		if fail {
			f.note("torn-write")
		}
		f.mu.Unlock()
	}
	if !fail {
		n, err := fl.inner.Write(p)
		if tracked && n > 0 {
			f.mu.Lock()
			if st, ok := f.files[fl.path]; ok {
				st.size += int64(n)
			}
			f.mu.Unlock()
		}
		return n, err
	}
	h := f.hash(saltWrite, i)
	keep := 0
	if len(p) > 1 {
		keep = int(h % uint64(len(p))) // strict prefix: at least one byte lost
	}
	n, _ := fl.inner.Write(p[:keep])
	if n > 0 {
		f.mu.Lock()
		if st, ok := f.files[fl.path]; ok {
			st.size += int64(n)
		}
		f.mu.Unlock()
	}
	errno := syscall.ENOSPC
	if h&(1<<40) != 0 {
		errno = syscall.EIO
	}
	return n, &fs.PathError{Op: "write", Path: fl.path, Err: errno}
}

// Sync injects the two fsync pathologies on tracked segment files. An
// honest injected error reports failure while keeping bytes (the caller
// must treat them as un-durable — which the poisoned WAL does). A lying
// fsync reports success without advancing the durable watermark, and lies
// forever after on this file: fsyncgate semantics, where the first
// (unreported) failure clears the kernel's dirty state so no later fsync
// on the handle can truly commit the lost range.
func (fl *file) Sync() error {
	f := fl.fs
	if !segFile(fl.path) {
		return fl.inner.Sync()
	}
	f.mu.Lock()
	i := f.fsyncs
	f.fsyncs++
	st := f.files[fl.path]
	lie := (st != nil && st.lying) || f.roll(saltLie, i, f.opts.LieEvery, f.opts.LieFsyncAt)
	fail := !lie && f.roll(saltFsync, i, f.opts.FsyncErrEvery, f.opts.FailFsyncAt)
	if lie && st != nil && !st.lying {
		st.lying = true
		f.note("lying-fsync")
	}
	if fail {
		f.note("fsync-error")
	}
	f.mu.Unlock()
	if lie {
		return nil // watermark frozen; bytes vanish at the next Crash
	}
	if fail {
		return &fs.PathError{Op: "fsync", Path: fl.path, Err: syscall.EIO}
	}
	if err := fl.inner.Sync(); err != nil {
		return err
	}
	f.mu.Lock()
	if st := f.files[fl.path]; st != nil && !st.lying {
		st.durable = st.size
	}
	f.mu.Unlock()
	return nil
}

var _ wal.FS = (*FS)(nil)

// String summarizes the configured schedule for scenario logs.
func (o Options) String() string {
	return fmt.Sprintf("walfault{seed:%d torn:%d fsync:%d lie:%d enospc:%d flip:%d}",
		o.Seed, o.TornEvery, o.FsyncErrEvery, o.LieEvery, o.ENOSPCEvery, o.FlipEvery)
}
