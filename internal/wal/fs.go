package wal

import (
	"io"
	"io/fs"
	"os"
)

// FS abstracts every filesystem operation the log performs. It exists for
// one consumer: fault injection (internal/wal/walfault wraps the real
// filesystem with a seeded schedule of torn writes, lying fsyncs, ENOSPC
// and read corruption, and the chaos harness's hostile-disk profile runs
// members on it). Production code leaves Options.FS nil and gets the real
// filesystem; the seam costs one interface indirection per filesystem
// call, none of which sit on the frame hot path.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir returns the names (not paths) of dir's entries.
	ReadDir(dir string) ([]string, error)
	ReadFile(path string) ([]byte, error)
	// Open opens an existing file for reading.
	Open(path string) (File, error)
	// OpenFile generalizes Open with os.OpenFile semantics.
	OpenFile(path string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp mirrors os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	Truncate(path string, size int64) error
	// FileSize returns the size of the named file.
	FileSize(path string) (int64, error)
	// SyncDir fsyncs a directory, making renames within it durable.
	SyncDir(dir string) error
}

// File is the per-file surface the log needs from an FS.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Name() string
	// Size returns the file's current size.
	Size() (int64, error)
}

// OS is the real-filesystem FS — the default when Options.FS is nil.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Open(path string) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }
func (osFS) Truncate(path string, size int64) error {
	return os.Truncate(path, size)
}

func (osFS) FileSize(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

type osFile struct {
	*os.File
}

func (f osFile) Size() (int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
