// Package harness is the deterministic chaos harness: it drives the real
// fsr/transport stack (no protocol mocks) through seeded randomized
// workloads with mid-stream fault injection, then checks the paper's
// correctness claims after quiescence — uniform total order surviving up
// to t crashes, identity-preserving rebroadcast across leader failure,
// FIFO per sender, receipt/delivery consistency and applied-state equality
// across crash-restart.
//
// One integer seed pins a whole scenario: the cluster shape, the workload
// (senders, message counts, payload sizes), the chaos transport's per-link
// delay/stall schedule (transport/chaos) and the fault plan (crashes,
// restarts, leader rotations, membership churn, slow nodes, link stalls).
// A failing scenario prints a one-line repro of the form
//
//	FSR_SEED=<seed> go test -race -run 'TestChaos/seed-<seed>' ./internal/harness
//
// and re-running it regenerates the identical scenario plan and injection
// schedule byte-for-byte (the goroutine scheduler still interleaves the
// stack freely — the seed pins every injected fault, not the scheduler).
package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"math/rand"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fsr"
	"fsr/edge"
	"fsr/internal/wal"
	"fsr/internal/wal/walfault"
	"fsr/internal/wire"
	"fsr/transport/chaos"
	"fsr/transport/mem"
)

// Transport IDs for harness-attached processes, spread through the client
// ID space so Cluster.Dial's sequential IDs (ClientIDBase+0, +1, ...)
// never collide with them.
const (
	edgeIDBase   = fsr.ClientIDBase + 0x100000 // 2 per edge: serving, upstream
	clientIDBase = fsr.ClientIDBase + 0x200000 // 2 per client: publisher, subscriber
)

// multiSegFrames accumulates, across every scenario this process ran, how
// many outbound frames batched more than one data segment. The chaos suite
// asserts it is non-zero over a run of scenarios: the hot-path batching
// must actually be exercised by chaos traffic (frames with len(Data) > 1
// flowing through encode, decode, chaos injection and the engine), not
// just by unit tests.
var multiSegFrames atomic.Uint64

// MultiSegFramesObserved reports the accumulated count (see above).
func MultiSegFramesObserved() uint64 { return multiSegFrames.Load() }

// The chaos decorator composes with every cluster transport: it is itself
// a ClusterTransport, and both shipped backends satisfy its Inner surface.
var (
	_ fsr.ClusterTransport = (*chaos.Transport)(nil)
	_ chaos.Inner          = (*fsr.MemClusterTransport)(nil)
	_ chaos.Inner          = (*fsr.TCPClusterTransport)(nil)
)

// EventKind enumerates the fault plan's vocabulary.
type EventKind int

const (
	// EvCrashLeader fail-stops the current leader (sequencer).
	EvCrashLeader EventKind = iota
	// EvCrashFollower fail-stops a live non-leader member.
	EvCrashFollower
	// EvRestart restarts the most recently crashed member from its durable
	// directory (crash-restart with catch-up).
	EvRestart
	// EvRotate asks the current leader for a ring rotation (§4.3.1).
	EvRotate
	// EvJoin admits a brand-new durable member mid-run.
	EvJoin
	// EvLeave makes a live non-leader member depart gracefully.
	EvLeave
	// EvSlowNode adds per-frame delay to one member's links; EvHealNode
	// removes it.
	EvSlowNode
	EvHealNode
	// EvStallLink holds one directed link (frames queue, none drop).
	EvStallLink
	// EvCrashEdge fail-stops one edge replica (Node selects which);
	// EvRestartEdge brings it back on its durable store.
	EvCrashEdge
	EvRestartEdge
	// EvCrashDisk power-cuts the scenario's hostile-disk member (Scenario
	// .DiskNode): the process fail-stops (if storage poison has not already
	// fail-stopped it) and its fault-layer disk drops every byte not
	// honestly fsynced — including bytes a lying fsync claimed durable.
	EvCrashDisk
	// EvCutLink one-way blackholes the ring edge ids[Node] -> ids[Node+1]
	// for Dur: frames vanish silently in that direction only, the reverse
	// keeps flowing. The successor's FD must suspect its silent predecessor
	// and the relayed suspicion must drive a view change (the asymmetric-
	// partition trap: only the coordinator acts on suspicions it holds).
	EvCutLink
	// EvFlapLink flaps the same directed edge: down Dur, up Dur/3, twice.
	EvFlapLink
	// EvUpgrade is one step of a rolling upgrade: fail-stop member Node,
	// flip its wire version from the previous release's to the current
	// build's, and restart it from its durable state. The mixed-version
	// ring must keep serving throughout.
	EvUpgrade
)

var kindNames = map[EventKind]string{
	EvCrashLeader: "crash-leader", EvCrashFollower: "crash-follower",
	EvRestart: "restart", EvRotate: "rotate", EvJoin: "join",
	EvLeave: "leave", EvSlowNode: "slow-node", EvHealNode: "heal-node",
	EvStallLink: "stall-link", EvCrashEdge: "crash-edge", EvRestartEdge: "restart-edge",
	EvCrashDisk: "crash-disk", EvCutLink: "cut-link", EvFlapLink: "flap-link",
	EvUpgrade: "upgrade",
}

// Event is one scheduled fault: Kind fires At after the workload starts.
type Event struct {
	At   time.Duration
	Kind EventKind
	// Node selects a target by cluster index where the kind needs one
	// (slow/heal/stall); crash/leave targets are resolved at fire time
	// against the live membership.
	Node int
	// Dur parameterizes slow-node lag and link stalls.
	Dur time.Duration
}

// Scenario is one fully derived chaos run. Everything in it is a pure
// function of Seed, so logging the seed is logging the scenario.
type Scenario struct {
	Seed     int64
	N        int // initial members
	T        int // tolerated concurrent crashes
	Senders  int
	Messages int // per sender
	MaxPay   int // payload size bound (SegmentSize*1.5 exercises reassembly)
	Gap      time.Duration
	// Clients are non-member session clients (Cluster.Dial): each runs a
	// pipelined publisher of ClientMsgs messages and an offset-1
	// subscriber, both surviving member crashes via session failover. The
	// checker then requires publish-exactly-once (every client receipt
	// resolves delivered; no (client, pubID) twice) and
	// subscribe-gap-freedom (each subscriber saw exactly the reference
	// history).
	Clients    int
	ClientMsgs int // per client
	// Edges runs read-only edge replicas tailing the order from the ring.
	// With edges present the clients route through the edge tier instead
	// of the members: subscribers stay pinned to the edges (surviving
	// edge crashes via failover between them), publishers start on an
	// edge and migrate to a writable member through the NOT-WRITABLE
	// redirect.
	Edges int
	// Disk, when non-nil, runs member DiskNode's write-ahead log on a
	// seeded fault-injecting filesystem (internal/wal/walfault): torn
	// writes, honest and lying fsync failures, ENOSPC and read bit-flips,
	// all derived from Seed. Exactly one member per scenario takes storage
	// faults, so the cluster always retains a durable majority. The member
	// is expected to poison its WAL and fail-stop at some point; the
	// harness reaps it like a crash and the EvCrashDisk/EvRestart pair
	// (plus a final revival before quiescence) exercises recovery — a
	// corrupt WAL at restart is wiped for a state-transfer rejoin.
	Disk     *walfault.Options
	DiskNode int
	// Rolling runs a version-skew rolling upgrade: every member boots
	// speaking the previous wire release (wire.PrevVersion) and EvUpgrade
	// events restart them one at a time onto wire.CurrentVersion, so the
	// ring spends most of the scenario mixed-version.
	Rolling bool
	// ReviveAll restarts every member still down — crashed by schedule or
	// fail-stopped after eviction — before final quiescence, so the checker
	// holds the whole original membership to uniformity. The hostile-network
	// profiles set it: an asymmetric cut routinely gets its victim evicted,
	// and an evicted member's documented recovery is restart + state
	// transfer, which these profiles must actually exercise.
	ReviveAll bool
	Net       chaos.Options
	Events    []Event
}

// String renders the plan — two runs of one seed must render identically
// (asserted by TestScenarioDeterminism).
func (s Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d n=%d t=%d senders=%d msgs=%d maxpay=%d gap=%v clients=%dx%d edges=%d net{delay=[%v,%v] stallEvery=%d maxStall=%v}",
		s.Seed, s.N, s.T, s.Senders, s.Messages, s.MaxPay, s.Gap,
		s.Clients, s.ClientMsgs, s.Edges,
		s.Net.MinDelay, s.Net.MaxDelay, s.Net.StallEvery, s.Net.MaxStall)
	if s.Net.Geo != nil {
		fmt.Fprintf(&b, " geo=%s", s.Net.Geo.Name)
	}
	if s.Rolling {
		b.WriteString(" rolling")
	}
	if s.Disk != nil {
		fmt.Fprintf(&b, " disk{node=%d torn=%d fsync=%d lie=%d enospc=%d flip=%d}",
			s.DiskNode, s.Disk.TornEvery, s.Disk.FsyncErrEvery, s.Disk.LieEvery,
			s.Disk.ENOSPCEvery, s.Disk.FlipEvery)
	}
	for _, e := range s.Events {
		fmt.Fprintf(&b, " @%v:%s", e.At.Round(time.Millisecond), kindNames[e.Kind])
		switch e.Kind {
		case EvSlowNode, EvHealNode, EvStallLink, EvCrashEdge, EvRestartEdge,
			EvCutLink, EvFlapLink, EvUpgrade:
			fmt.Fprintf(&b, "(%d)", e.Node)
		}
		if e.Dur > 0 {
			fmt.Fprintf(&b, "/%v", e.Dur.Round(time.Millisecond))
		}
	}
	return b.String()
}

// Profile classes guarantee coverage across a seed range: every tenth
// seed crashes the leader, every tenth crash-restarts a follower, every
// tenth churns membership, every tenth drives non-member client
// sessions through a serving-member crash, every tenth crash-restarts an
// edge replica under client traffic routed through the edge tier, every
// tenth runs one durable member on a hostile disk (storage fault
// injection with a power-cut crash-restart), every tenth hits a ring edge
// with a one-way blackhole or a flapping link (asymmetric partition),
// every tenth runs the whole ring on a WAN-shaped geo latency matrix,
// every tenth performs a version-skew rolling upgrade under traffic; the
// rest stress timing only. Extra faults (rotations, slow nodes, stalls)
// sprinkle into all classes.
const profiles = 10

// Generate derives the scenario for a seed. Soak scales the workload up.
func Generate(seed int64, soak bool) Scenario {
	rng := rand.New(rand.NewSource(seed))
	s := Scenario{
		Seed:     seed,
		N:        3 + rng.Intn(3), // 3..5
		T:        1,
		Senders:  2 + rng.Intn(3), // 2..4
		Messages: 12 + rng.Intn(18),
		MaxPay:   384, // SegmentSize is 256: ~40% of messages are multi-part
		Gap:      time.Duration(rng.Intn(4)) * time.Millisecond,
		Net: chaos.Options{
			Seed:       seed,
			MaxDelay:   time.Duration(1+rng.Intn(2)) * time.Millisecond,
			StallEvery: 150,
			MaxStall:   40 * time.Millisecond,
		},
	}
	if s.N >= 5 && rng.Intn(2) == 0 {
		s.T = 2
	}
	if soak {
		s.Messages *= 3
	}

	profile := int(((seed % profiles) + profiles) % profiles)
	base := 150*time.Millisecond + time.Duration(rng.Intn(200))*time.Millisecond
	switch profile {
	case 1: // leader crash, then crash-restart with catch-up
		s.Events = append(s.Events,
			Event{At: base, Kind: EvCrashLeader},
			Event{At: base + 500*time.Millisecond + time.Duration(rng.Intn(300))*time.Millisecond, Kind: EvRestart},
		)
	case 2: // follower crash-restart with catch-up
		s.Events = append(s.Events,
			Event{At: base, Kind: EvCrashFollower},
			Event{At: base + 400*time.Millisecond + time.Duration(rng.Intn(300))*time.Millisecond, Kind: EvRestart},
		)
		if s.T == 2 { // a second overlapping crash stays within tolerance
			s.Events = append(s.Events, Event{At: base + 150*time.Millisecond, Kind: EvCrashFollower},
				Event{At: base + 900*time.Millisecond, Kind: EvRestart})
		}
	case 3: // membership churn: admit a newcomer, lose a veteran
		s.Events = append(s.Events,
			Event{At: base, Kind: EvJoin},
			Event{At: base + 300*time.Millisecond + time.Duration(rng.Intn(200))*time.Millisecond, Kind: EvLeave},
		)
	case 4: // client sessions across a serving-member crash
		s.Clients = 1 + rng.Intn(2)
		s.ClientMsgs = 10 + rng.Intn(15)
		if soak {
			s.ClientMsgs *= 3
		}
		// Sessions bind to the first member of the rotation — initially
		// the leader — so a leader crash is a serving-member crash: the
		// clients fail over mid-stream and retry their unacked publishes.
		s.Events = append(s.Events,
			Event{At: base, Kind: EvCrashLeader},
			Event{At: base + 500*time.Millisecond + time.Duration(rng.Intn(300))*time.Millisecond, Kind: EvRestart},
		)
	case 5: // edge-replica crash/restart with clients on the edge tier
		s.Edges = 2
		s.Clients = 1 + rng.Intn(2)
		s.ClientMsgs = 10 + rng.Intn(15)
		if soak {
			s.ClientMsgs *= 3
		}
		// Crash one of the two edges mid-stream: its subscribers resume
		// through the surviving edge, and the crashed one later returns
		// from its durable store and re-tails the order.
		idx := rng.Intn(2)
		s.Events = append(s.Events,
			Event{At: base, Kind: EvCrashEdge, Node: idx},
			Event{At: base + 500*time.Millisecond + time.Duration(rng.Intn(300))*time.Millisecond, Kind: EvRestartEdge, Node: idx},
		)
	case 6: // hostile-disk: one durable member on a fault-injecting filesystem
		s.Clients = 1 + rng.Intn(2)
		s.ClientMsgs = 10 + rng.Intn(15)
		if soak {
			s.ClientMsgs *= 3
		}
		// Mean fault periods sized against the scenario's WAL op volume (a
		// few hundred appends/flushes, tens of fsyncs): most seeds inject a
		// handful of storage faults, some none, some several — coverage
		// across clean runs, single-fault poisons and compound failures.
		d := walfault.NoOneShots()
		d.Seed = seed
		d.TornEvery = 40 + rng.Intn(80)
		d.FsyncErrEvery = 30 + rng.Intn(60)
		d.LieEvery = 30 + rng.Intn(60)
		d.ENOSPCEvery = 25 + rng.Intn(50)
		d.FlipEvery = 60 + rng.Intn(120)
		s.Disk = &d
		s.DiskNode = rng.Intn(s.N)
		// A deterministic power cut + restart on top of whatever the fault
		// schedule does: the crash reveals lying-fsync losses, the restart
		// exercises torn-tail repair, corrupt-WAL wipe and catch-up.
		s.Events = append(s.Events,
			Event{At: base, Kind: EvCrashDisk},
			Event{At: base + 500*time.Millisecond + time.Duration(rng.Intn(300))*time.Millisecond, Kind: EvRestart},
		)
	case 7: // asymmetric partition: one-way blackhole or flapping ring edge
		s.Clients = 1 + rng.Intn(2)
		s.ClientMsgs = 10 + rng.Intn(15)
		if soak {
			s.ClientMsgs *= 3
		}
		s.ReviveAll = true
		// Fault one directed ring edge, chosen by seed. The window outlasts
		// FailureTimeout (300ms) so the successor's detector must fire; what
		// follows — relayed suspicion, view change, eviction of a perfectly
		// live member, its restart and state-transfer rejoin — is the
		// scenario under test. Rotation may remap the edge mid-run; it stays
		// a ring edge either way.
		k := rng.Intn(s.N)
		window := 450*time.Millisecond + time.Duration(rng.Intn(200))*time.Millisecond
		if rng.Intn(2) == 0 {
			s.Events = append(s.Events, Event{At: base, Kind: EvCutLink, Node: k, Dur: window})
		} else {
			// Flap: down long enough to be suspected, up briefly, down again.
			s.Events = append(s.Events, Event{At: base, Kind: EvFlapLink, Node: k,
				Dur: 350*time.Millisecond + time.Duration(rng.Intn(150))*time.Millisecond})
		}
		s.Events = append(s.Events,
			Event{At: base + window + 700*time.Millisecond, Kind: EvRestart})
	case 8: // wan-geo: the whole ring on a per-link geo latency matrix
		s.Clients = 1 + rng.Intn(2)
		s.ClientMsgs = 10 + rng.Intn(15)
		if soak {
			s.ClientMsgs *= 3
		}
		if rng.Intn(2) == 0 {
			s.Net.Geo = &chaos.Metro3
		} else {
			s.Net.Geo = &chaos.Continental3
		}
		// Geo latency is pure timing stress: no scheduled faults beyond the
		// sprinkles, the matrix itself is the adversary (cross-region RTT is
		// close to the heartbeat interval under Continental3).
	case 9: // rolling upgrade: restart every member once, old wire -> new
		s.Rolling = true
		s.ReviveAll = true
		s.Clients = 1 + rng.Intn(2)
		s.ClientMsgs = 12 + rng.Intn(12)
		if soak {
			s.ClientMsgs *= 3
		}
		for i := range s.N {
			s.Events = append(s.Events, Event{
				At:   base + time.Duration(i)*(700*time.Millisecond+time.Duration(rng.Intn(150))*time.Millisecond),
				Kind: EvUpgrade, Node: i,
			})
		}
	}
	// Timing faults for everyone; rotation for half.
	if rng.Intn(2) == 0 {
		s.Events = append(s.Events, Event{At: base / 2, Kind: EvRotate})
	}
	if rng.Intn(2) == 0 {
		idx := rng.Intn(s.N)
		s.Events = append(s.Events,
			Event{At: base / 3, Kind: EvSlowNode, Node: idx, Dur: time.Duration(5+rng.Intn(20)) * time.Millisecond},
			Event{At: base + 300*time.Millisecond, Kind: EvHealNode, Node: idx},
		)
	}
	if rng.Intn(2) == 0 {
		s.Events = append(s.Events, Event{
			At: base * 2 / 3, Kind: EvStallLink,
			Node: rng.Intn(s.N), Dur: time.Duration(20+rng.Intn(60)) * time.Millisecond,
		})
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return s
}

// --- Recording state machine ---------------------------------------------

// Rec is one applied message as a replica saw it — the unit every checker
// invariant is phrased over. Payloads are kept as a 64-bit FNV-1a hash plus
// length, so a scenario's whole history stays cheap to snapshot and
// transfer.
type Rec struct {
	Seq     uint64     `json:"s"`
	Origin  fsr.ProcID `json:"o"`
	Logical uint64     `json:"l"`
	Hash    uint64     `json:"h"`
	Len     int        `json:"n"`
}

func hashPayload(p []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(p)
	return h.Sum64()
}

// Recorder is the harness's replicated state machine: it records the exact
// applied sequence and carries it inside snapshots, so a replica rebuilt
// via state transfer still exposes its full history to the checker.
type Recorder struct {
	mu  sync.Mutex
	log []Rec
}

func (r *Recorder) Apply(m fsr.Message) {
	rec := Rec{Seq: m.Seq, Origin: m.Origin, Logical: m.LogicalID,
		Hash: hashPayload(m.Payload), Len: len(m.Payload)}
	r.mu.Lock()
	r.log = append(r.log, rec)
	r.mu.Unlock()
}

func (r *Recorder) Snapshot() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return json.Marshal(r.log)
}

func (r *Recorder) Restore(data []byte) error {
	var log []Rec
	if err := json.Unmarshal(data, &log); err != nil {
		return err
	}
	r.mu.Lock()
	r.log = log
	r.mu.Unlock()
	return nil
}

// Log returns a copy of the applied history.
func (r *Recorder) Log() []Rec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Rec(nil), r.log...)
}

// registry tracks the latest Recorder incarnation per member (a restart
// builds a fresh instance that rebuilds its log from snapshot + WAL).
type registry struct {
	mu  sync.Mutex
	sms map[fsr.ProcID]*Recorder
}

func (g *registry) factory(id fsr.ProcID) fsr.StateMachine {
	sm := &Recorder{}
	g.mu.Lock()
	g.sms[id] = sm
	g.mu.Unlock()
	return sm
}

func (g *registry) get(id fsr.ProcID) *Recorder {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sms[id]
}

// --- Runner ---------------------------------------------------------------

// sent pairs one issued broadcast with its receipt for the checker.
type sent struct {
	origin  fsr.ProcID
	hash    uint64
	length  int
	receipt *fsr.Receipt
	// mustDeliver marks a session-client publish: the session survives
	// member crashes by failing over, so a receipt that resolves with an
	// error (rather than a commit) is an invariant violation.
	mustDeliver bool
}

// TB is the subset of testing.TB the harness reports through.
type TB interface {
	Helper()
	Logf(format string, args ...any)
	Errorf(format string, args ...any)
	FailNow()
	Failed() bool
	TempDir() string
}

// tbWriter adapts TB.Logf into an io.Writer so the scenario's structured
// events (view installs, catch-ups, WAL repairs — everything the stack
// emits through slog) land in the test log: a failing seed's artifact then
// carries the machine-parsable event stream alongside the repro line.
type tbWriter struct {
	t TB
}

func (w tbWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// newTBLogger builds the slog handler chaos scenarios run under. The time
// attribute is dropped: the test log timestamps lines already, and seed
// replays diff cleaner without wall-clock noise.
func newTBLogger(t TB) *slog.Logger {
	return slog.New(slog.NewTextHandler(tbWriter{t: t}, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		},
	}))
}

// failf reports one invariant violation with the replayable repro line.
func failf(t TB, seed int64, format string, args ...any) {
	t.Helper()
	t.Errorf("%s\nreplay: FSR_SEED=%d go test -race -run 'TestChaos/seed-%d' ./internal/harness",
		fmt.Sprintf(format, args...), seed, seed)
}

// Run executes one seeded scenario end to end and checks every invariant.
func Run(t TB, seed int64, soak bool) {
	RunScenario(t, Generate(seed, soak))
}

// RunScenario executes one explicit scenario (Run derives it from the
// seed; tests may tweak a generated one).
func RunScenario(t TB, sc Scenario) {
	logger := newTBLogger(t)
	logger.Info("chaos scenario", "seed", sc.Seed, "n", sc.N, "t", sc.T,
		"profile", ((sc.Seed%profiles)+profiles)%profiles, "plan", sc.String())

	reg := &registry{sms: make(map[fsr.ProcID]*Recorder)}
	ct := chaos.New(fsr.MemTransport(mem.NewNetwork(mem.Options{})), sc.Net)
	nodeCfg := fsr.Config{
		SegmentSize:       256,
		SnapshotEvery:     32,
		WALSegmentBytes:   4096,
		HeartbeatInterval: 15 * time.Millisecond,
		FailureTimeout:    300 * time.Millisecond,
		ChangeTimeout:     400 * time.Millisecond,
		Logger:            logger,
	}
	durBase := t.TempDir()
	ccfg := fsr.ClusterConfig{N: sc.N, T: sc.T, NodeConfig: nodeCfg}.
		WithDurableDir(durBase).WithStateMachines(reg.factory)
	// Rolling upgrade: every member boots on the previous wire release;
	// EvUpgrade flips its entry here before restarting it, and Restart
	// re-consults this callback — the version shim the real deployment
	// flips by installing a new binary.
	var verMu sync.Mutex
	upgraded := make(map[fsr.ProcID]bool)
	if sc.Rolling {
		ccfg.WireVersion = func(id fsr.ProcID) byte {
			verMu.Lock()
			defer verMu.Unlock()
			if upgraded[id] {
				return wire.CurrentVersion
			}
			return wire.PrevVersion
		}
	}
	var diskFS *walfault.FS
	if sc.Disk != nil {
		// One fault-injecting disk for the scenario's hostile member,
		// shared across its incarnations (FirstID is 0, so cluster index
		// == ProcID). Everyone else runs on the real filesystem.
		diskFS = walfault.New(nil, *sc.Disk)
		diskFS.Disarm() // boot on a calm disk; armed once the cluster is up
		ccfg.WALFS = func(id fsr.ProcID) wal.FS {
			if id == fsr.ProcID(sc.DiskNode) {
				return diskFS
			}
			return nil
		}
	}
	cluster, err := fsr.NewCluster(ccfg, ct)
	if err != nil {
		failf(t, sc.Seed, "cluster: %v", err)
		t.FailNow()
	}
	defer cluster.Stop()

	run := &runner{t: t, sc: sc, reg: reg, ct: ct, cluster: cluster,
		base: t.TempDir(), durBase: durBase, diskFS: diskFS,
		nodeCfg: nodeCfg, log: logger,
		markUpgraded: func(id fsr.ProcID) {
			verMu.Lock()
			upgraded[id] = true
			verMu.Unlock()
		}}
	run.alive = make(map[fsr.ProcID]*fsr.Node, sc.N)
	for i, id := range cluster.IDs() {
		run.alive[id] = cluster.Node(i)
	}
	run.startEdges()
	defer run.stopEdges()
	if t.Failed() {
		return
	}
	if diskFS != nil {
		diskFS.Arm() // the cluster is up; let the weather begin
	}
	defer func() {
		// Members admitted mid-run are not owned by the Cluster.
		run.mu.Lock()
		extras := append([]*fsr.Node(nil), run.extras...)
		run.mu.Unlock()
		for _, n := range extras {
			n.Stop()
		}
	}()

	var wg sync.WaitGroup
	stopEvents := make(chan struct{})
	wg.Add(1)
	go func() { defer wg.Done(); run.driveEvents(stopEvents) }()

	// Non-member session clients: pipelined publishers and offset-1
	// subscribers riding through the fault plan on session failover.
	subCtx, subCancel := context.WithCancel(context.Background())
	defer subCancel()
	collectors := run.startClients(subCtx)
	defer func() {
		for _, c := range collectors {
			c.sess.Close()
			if c.subSess != c.sess {
				c.subSess.Close()
			}
		}
	}()

	var senders sync.WaitGroup
	for sdr := range sc.Senders {
		senders.Add(1)
		go func(sdr int) { defer senders.Done(); run.sender(sdr) }(sdr)
	}
	for _, c := range collectors {
		senders.Add(1)
		go func(c *clientRun) { defer senders.Done(); run.clientPublisher(c) }(c)
	}
	senders.Wait()
	close(stopEvents)
	wg.Wait()

	run.awaitReceipts()
	run.reviveDisk()
	run.reviveDown()
	live := run.quiesce()
	run.recordBatching()
	if t.Failed() {
		return
	}
	logs := run.collectLogs()
	run.checkSubscribers(logs, collectors)
	subCancel()
	if t.Failed() {
		return
	}
	check(t, sc, logs, live, run.sentCopy())
}

// clientRun is one session client: its publishing session, identity, and
// the subscriber's collected stream. With edges in the scenario the
// subscriber runs on its own session pinned to the edge tier (subSess);
// otherwise subSess is sess.
type clientRun struct {
	idx     int
	id      fsr.ProcID
	sess    fsr.Session
	subSess fsr.Session

	mu   sync.Mutex
	recs []Rec
	err  error
}

// startClients dials the scenario's session clients and starts their
// offset-1 subscribers. With edges present, both the publisher and the
// subscriber sessions target the edge tier only: the publisher's first
// publish is bounced by NOT-WRITABLE and migrates to a member, the
// subscriber stays on the edges for its whole life, failing over between
// them as they crash and return.
func (r *runner) startClients(subCtx context.Context) []*clientRun {
	collectors := make([]*clientRun, 0, r.sc.Clients)
	opts := fsr.SessionOptions{
		Window:       32,
		AckTimeout:   time.Second,
		ProbeTimeout: 1500 * time.Millisecond,
	}
	for i := range r.sc.Clients {
		var c *clientRun
		if r.sc.Edges > 0 {
			pubID := clientIDBase + fsr.ProcID(2*i)
			pub, err := r.dialVia(pubID, r.edgeServeIDs(), opts)
			if err == nil {
				var sub fsr.Session
				sub, err = r.dialVia(pubID+1, r.edgeServeIDs(), opts)
				if err != nil {
					pub.Close()
				} else {
					c = &clientRun{idx: i, id: pubID, sess: pub, subSess: sub}
				}
			}
			if err != nil {
				failf(r.t, r.sc.Seed, "client %d: dial via edges: %v", i, err)
				r.t.FailNow()
			}
		} else {
			sess, err := r.cluster.Dial(opts)
			if err != nil {
				failf(r.t, r.sc.Seed, "client %d: dial session: %v", i, err)
				r.t.FailNow()
			}
			// Cluster.Dial hands out client IDs in call order from
			// ClientIDBase; these are the first (and only) dials on this
			// cluster.
			c = &clientRun{idx: i, id: fsr.ClientIDBase + fsr.ProcID(i), sess: sess, subSess: sess}
		}
		collectors = append(collectors, c)
		go c.subscribe(subCtx)
	}
	return collectors
}

// dialVia opens one session on a fresh chaos-wrapped endpoint, pinned to
// the given serving processes.
func (r *runner) dialVia(id fsr.ProcID, targets []fsr.ProcID, opts fsr.SessionOptions) (fsr.Session, error) {
	tr, err := r.ct.Join(id)
	if err != nil {
		return nil, err
	}
	if err := r.ct.Open(); err != nil {
		_ = tr.Close()
		return nil, err
	}
	opts.OnClose = func() { _ = tr.Close() }
	return fsr.DialVia(tr, targets, opts)
}

// subscribe streams the whole order from offset 1 into the collector. A
// state snapshot (the stream resumed below a member's truncation point)
// replaces the collected prefix — the Recorder's snapshot IS its history.
func (c *clientRun) subscribe(ctx context.Context) {
	for _, m := range c.subSess.Subscribe(ctx, 1) {
		if m.Snapshot {
			var log []Rec
			if err := json.Unmarshal(m.Payload, &log); err != nil {
				c.mu.Lock()
				c.err = fmt.Errorf("undecodable snapshot at %d: %v", m.Seq, err)
				c.mu.Unlock()
				return
			}
			c.mu.Lock()
			c.recs = log
			c.mu.Unlock()
			continue
		}
		rec := Rec{Seq: m.Seq, Origin: m.Origin, Logical: m.LogicalID,
			Hash: hashPayload(m.Payload), Len: len(m.Payload)}
		c.mu.Lock()
		c.recs = append(c.recs, rec)
		c.mu.Unlock()
	}
}

// clientPublisher issues one client's pipelined publish workload.
func (r *runner) clientPublisher(c *clientRun) {
	rng := rand.New(rand.NewSource(r.sc.Seed ^ int64(0xc11e47+c.idx)))
	for i := range r.sc.ClientMsgs {
		n := 1 + rng.Intn(r.sc.MaxPay)
		payload := make([]byte, 0, n+32)
		payload = fmt.Appendf(payload, "cc%d/c%d/m%d/", r.sc.Seed, c.idx, i)
		for len(payload) < n {
			payload = append(payload, byte('a'+rng.Intn(26)))
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		rcpt, err := c.sess.Publish(ctx, payload)
		cancel()
		if err != nil {
			// The session retries internally; Publish only fails on
			// timeout (window never opened) or Close — both findings here.
			failf(r.t, r.sc.Seed, "client %d: publish %d failed: %v", c.idx, i, err)
			return
		}
		r.mu.Lock()
		r.sent = append(r.sent, sent{origin: c.id, hash: hashPayload(payload),
			length: len(payload), receipt: rcpt, mustDeliver: true})
		r.mu.Unlock()
		if r.sc.Gap > 0 {
			time.Sleep(time.Duration(rng.Int63n(int64(r.sc.Gap))))
		}
	}
}

// checkSubscribers enforces subscribe-gap-freedom: after quiescence every
// client subscriber catches up to the reference history exactly — no gap,
// duplicate or reorder anywhere in its stream, across every failover it
// performed.
func (r *runner) checkSubscribers(logs map[fsr.ProcID][]Rec, collectors []*clientRun) {
	if len(collectors) == 0 {
		return
	}
	var ref []Rec
	for _, log := range logs {
		if len(log) > len(ref) {
			ref = log
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for _, c := range collectors {
		for {
			c.mu.Lock()
			recs, err := c.recs, c.err
			c.mu.Unlock()
			if err != nil {
				failf(r.t, r.sc.Seed, "client %d subscriber: %v", c.idx, err)
				return
			}
			if len(recs) >= len(ref) {
				if len(recs) > len(ref) {
					failf(r.t, r.sc.Seed, "client %d subscriber saw %d messages, reference has %d (duplicate delivery)",
						c.idx, len(recs), len(ref))
					return
				}
				for i := range ref {
					if recs[i] != ref[i] {
						failf(r.t, r.sc.Seed, "client %d subscriber diverges at %d: got %+v want %+v (gap or reorder)",
							c.idx, i, recs[i], ref[i])
						return
					}
				}
				break
			}
			if time.Now().After(deadline) {
				failf(r.t, r.sc.Seed, "client %d subscriber stuck at %d/%d messages; session err=%v; group: %s",
					c.idx, len(recs), len(ref), c.subSess.Err(), r.groupState())
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// recordBatching folds every live node's multi-segment frame count into
// the process-wide counter (halted nodes report zero metrics).
func (r *runner) recordBatching() {
	r.mu.Lock()
	nodes := make([]*fsr.Node, 0, len(r.alive))
	for _, n := range r.alive {
		nodes = append(nodes, n)
	}
	r.mu.Unlock()
	for _, n := range nodes {
		multiSegFrames.Add(n.Metrics().MultiSegFrames)
	}
}

type runner struct {
	t       TB
	sc      Scenario
	reg     *registry
	ct      *chaos.Transport
	cluster *fsr.Cluster
	base    string
	durBase string       // ClusterConfig.DurableDir (member WALs live under node-<id>)
	diskFS  *walfault.FS // the hostile member's disk; nil outside profile 6
	nodeCfg fsr.Config
	log     *slog.Logger
	// markUpgraded records a member as running the current wire version;
	// the cluster's WireVersion callback (consulted on Restart) reads the
	// same map. Only meaningful under Scenario.Rolling.
	markUpgraded func(fsr.ProcID)

	mu      sync.Mutex
	alive   map[fsr.ProcID]*fsr.Node // nodes believed running (crashed/left removed)
	extras  []*fsr.Node              // members admitted mid-run (EvJoin)
	crashed []int                    // cluster indexes crashed and not yet restarted
	nextID  fsr.ProcID
	sent    []sent
	edges   []*edgeRun
}

// edgeRun is one edge replica's slot: its fixed transport identities, its
// durable store directory, and the running instance (nil while crashed).
type edgeRun struct {
	serveID fsr.ProcID // the ID subscribers dial
	upID    fsr.ProcID // the ID of its upstream client session
	dir     string
	e       *edge.Edge // guarded by runner.mu
}

// startEdges launches the scenario's edge replicas (before any client
// dials them).
func (r *runner) startEdges() {
	for j := range r.sc.Edges {
		er := &edgeRun{
			serveID: edgeIDBase + fsr.ProcID(2*j),
			upID:    edgeIDBase + fsr.ProcID(2*j+1),
			dir:     fmt.Sprintf("%s/edge-%d", r.base, j),
		}
		if err := r.launchEdge(er); err != nil {
			failf(r.t, r.sc.Seed, "edge %d: %v", j, err)
			return
		}
		r.edges = append(r.edges, er)
	}
}

// launchEdge (re)starts one edge replica on its slot: fresh chaos-wrapped
// endpoints under the slot's fixed IDs, the durable store replayed from
// its directory.
func (r *runner) launchEdge(er *edgeRun) error {
	serveTr, err := r.ct.Join(er.serveID)
	if err != nil {
		return err
	}
	upTr, err := r.ct.Join(er.upID)
	if err != nil {
		_ = serveTr.Close()
		return err
	}
	if err := r.ct.Open(); err != nil {
		_ = serveTr.Close()
		_ = upTr.Close()
		return err
	}
	up, err := fsr.DialVia(upTr, r.cluster.IDs(), fsr.SessionOptions{
		Edge:         true,
		AckTimeout:   time.Second,
		ProbeTimeout: 1500 * time.Millisecond,
		OnClose:      func() { _ = upTr.Close() },
	})
	if err != nil {
		_ = serveTr.Close()
		_ = upTr.Close()
		return err
	}
	e, err := edge.NewCore(edge.CoreConfig{
		Transport:  serveTr,
		Upstream:   up,
		Members:    r.cluster.IDs(),
		DurableDir: er.dir,
		Logger:     r.log,
	})
	if err != nil {
		_ = up.Close()
		_ = serveTr.Close()
		return err
	}
	r.mu.Lock()
	er.e = e
	r.mu.Unlock()
	return nil
}

// crashEdge fail-stops one edge replica: both its endpoints drop off the
// transport (clients and the upstream member observe silence), then the
// instance is reaped.
func (r *runner) crashEdge(idx int) {
	r.mu.Lock()
	if idx >= len(r.edges) {
		r.mu.Unlock()
		return
	}
	er := r.edges[idx]
	e := er.e
	er.e = nil
	r.mu.Unlock()
	if e == nil {
		return
	}
	r.ct.Crash(er.serveID)
	r.ct.Crash(er.upID)
	e.Stop()
}

// restartEdge brings a crashed edge back on its durable store.
func (r *runner) restartEdge(idx int) {
	r.mu.Lock()
	if idx >= len(r.edges) || r.edges[idx].e != nil {
		r.mu.Unlock()
		return
	}
	er := r.edges[idx]
	r.mu.Unlock()
	if err := r.launchEdge(er); err != nil {
		failf(r.t, r.sc.Seed, "edge %d restart: %v", idx, err)
	}
}

// stopEdges reaps every edge still running at scenario end.
func (r *runner) stopEdges() {
	r.mu.Lock()
	edges := append([]*edgeRun(nil), r.edges...)
	r.mu.Unlock()
	for _, er := range edges {
		r.mu.Lock()
		e := er.e
		er.e = nil
		r.mu.Unlock()
		if e != nil {
			e.Stop()
		}
	}
}

// edgeServeIDs returns the serving IDs clients rotate across.
func (r *runner) edgeServeIDs() []fsr.ProcID {
	ids := make([]fsr.ProcID, 0, len(r.edges))
	for _, er := range r.edges {
		ids = append(ids, er.serveID)
	}
	return ids
}

// sender issues this sender's share of the workload against a home node,
// re-homing (at most once per message) if the home crashes or leaves.
func (r *runner) sender(sdr int) {
	// Per-sender RNG: the workload stream is independent of scheduling.
	rng := rand.New(rand.NewSource(r.sc.Seed ^ int64(0x5eed+sdr)))
	ids := r.cluster.IDs()
	home := ids[sdr%len(ids)]
	for i := range r.sc.Messages {
		payload := r.payload(rng, sdr, i)
		node := r.nodeFor(home)
		if node == nil {
			if node, home = r.anyAlive(); node == nil {
				return // nothing left to send through
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		rcpt, err := node.Broadcast(ctx, payload)
		cancel()
		if err != nil {
			// The home died mid-broadcast (ErrStopped) — legal under chaos;
			// re-home and keep going. Context timeouts are findings.
			if err == context.DeadlineExceeded {
				failf(r.t, r.sc.Seed, "sender %d: broadcast %d wedged >30s (backpressure never released)", sdr, i)
				return
			}
			home = ^fsr.ProcID(0) // sentinel outside the ID space: re-home next loop
			continue
		}
		r.mu.Lock()
		r.sent = append(r.sent, sent{origin: node.Self(), hash: hashPayload(payload),
			length: len(payload), receipt: rcpt})
		r.mu.Unlock()
		if r.sc.Gap > 0 {
			time.Sleep(time.Duration(rng.Int63n(int64(r.sc.Gap))))
		}
	}
}

// payload renders one workload message: a tag binding (seed, sender, index)
// plus deterministic filler sized to sometimes span protocol segments.
func (r *runner) payload(rng *rand.Rand, sdr, i int) []byte {
	n := 1 + rng.Intn(r.sc.MaxPay)
	p := make([]byte, 0, n+32)
	p = fmt.Appendf(p, "c%d/s%d/m%d/", r.sc.Seed, sdr, i)
	for len(p) < n {
		p = append(p, byte('a'+rng.Intn(26)))
	}
	return p
}

func (r *runner) nodeFor(id fsr.ProcID) *fsr.Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.alive[id]
}

func (r *runner) anyAlive() (*fsr.Node, fsr.ProcID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, n := range r.alive {
		return n, id
	}
	return nil, 0
}

// driveEvents fires the scenario's fault plan on schedule.
func (r *runner) driveEvents(stop <-chan struct{}) {
	start := time.Now()
	for _, ev := range r.sc.Events {
		wait := time.Until(start.Add(ev.At))
		if wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-stop:
				// Workload already over: fire the remaining plan immediately
				// (restarts especially must still happen so the checker sees
				// the catch-up) .
				timer.Stop()
			}
		}
		r.fire(ev)
	}
}

// fire applies one fault against the current cluster state. Events whose
// target no longer exists degrade to no-ops — the plan is generated before
// the run, the membership evolves during it.
func (r *runner) fire(ev Event) {
	switch ev.Kind {
	case EvCrashLeader, EvCrashFollower:
		r.crash(ev.Kind == EvCrashLeader)
	case EvRestart:
		r.restart()
	case EvRotate:
		if n := r.leader(); n != nil {
			n.RotateLeader()
		}
	case EvJoin:
		r.join()
	case EvLeave:
		r.leave()
	case EvSlowNode:
		r.ct.SlowNode(r.cluster.IDs()[ev.Node], ev.Dur)
	case EvHealNode:
		r.ct.SlowNode(r.cluster.IDs()[ev.Node], 0)
	case EvStallLink:
		ids := r.cluster.IDs()
		from := ids[ev.Node]
		to := ids[(ev.Node+1)%len(ids)]
		r.ct.StallLink(from, to, ev.Dur)
	case EvCrashEdge:
		r.crashEdge(ev.Node)
	case EvRestartEdge:
		r.restartEdge(ev.Node)
	case EvCrashDisk:
		r.crashDisk()
	case EvCutLink:
		ids := r.cluster.IDs()
		r.ct.CutLink(ids[ev.Node], ids[(ev.Node+1)%len(ids)], ev.Dur)
	case EvFlapLink:
		ids := r.cluster.IDs()
		r.ct.FlapLink(ids[ev.Node], ids[(ev.Node+1)%len(ids)], ev.Dur, ev.Dur/3, 2)
	case EvUpgrade:
		r.upgradeMember(ev.Node)
	}
}

// reapHalted books any member that fail-stopped on its own — typically
// evicted after an (asymmetric-partition-induced) false suspicion — as a
// crash, so restart/reviveDown can bring it back. The hostile-disk member
// is left to reapPoisoned, which additionally asserts the fail-stop
// contract on poisoning.
func (r *runner) reapHalted() {
	ids := r.cluster.IDs()
	type down struct {
		id  fsr.ProcID
		idx int
		err error
	}
	var reap []down
	r.mu.Lock()
	for id, n := range r.alive {
		if r.diskFS != nil && id == fsr.ProcID(r.sc.DiskNode) {
			continue
		}
		if n.Err() == nil {
			continue
		}
		idx := slices.Index(ids, id)
		if idx < 0 {
			continue // mid-run joiner; not restartable through the Cluster
		}
		reap = append(reap, down{id, idx, n.Err()})
	}
	for _, d := range reap {
		delete(r.alive, d.id)
		if !slices.Contains(r.crashed, d.idx) {
			r.crashed = append(r.crashed, d.idx)
		}
	}
	r.mu.Unlock()
	for _, d := range reap {
		r.log.Info("chaos: reaping halted member", "node", uint32(d.id), "err", d.err)
		// The process already halted itself; Crash severs its transport
		// endpoint so peers observe clean silence.
		r.cluster.Crash(d.idx)
	}
}

// reviveDown restarts every member still down before final quiescence —
// see Scenario.ReviveAll.
func (r *runner) reviveDown() {
	if !r.sc.ReviveAll {
		return
	}
	r.reapHalted()
	for {
		r.mu.Lock()
		if len(r.crashed) == 0 {
			r.mu.Unlock()
			return
		}
		idx := r.crashed[0]
		r.crashed = r.crashed[1:]
		r.mu.Unlock()
		r.restartMember(idx)
	}
}

// upgradeMember is one EvUpgrade step: fail-stop the member, flip its wire
// version to the current build's, restart it from its durable state. If an
// earlier fault already took the member down it is simply restarted
// upgraded.
func (r *runner) upgradeMember(idx int) {
	r.reapHalted()
	ids := r.cluster.IDs()
	if idx >= len(ids) {
		return
	}
	id := ids[idx]
	r.mu.Lock()
	_, isAlive := r.alive[id]
	if isAlive {
		delete(r.alive, id)
	} else {
		pos := slices.Index(r.crashed, idx)
		if pos < 0 {
			r.mu.Unlock()
			return // departed membership; nothing to upgrade
		}
		r.crashed = slices.Delete(r.crashed, pos, pos+1)
	}
	r.mu.Unlock()
	if isAlive {
		r.cluster.Crash(idx)
	}
	if r.markUpgraded != nil {
		r.markUpgraded(id)
	}
	r.log.Info("rolling upgrade: restarting member on current wire version",
		"node", uint32(id))
	// A beat of downtime, as a real binary swap has; the rest of the ring
	// keeps serving around the hole.
	time.Sleep(250 * time.Millisecond)
	r.restartMember(idx)
	// One at a time means one at a time: wait for the member to be
	// readmitted and serving before the plan may take down the next one.
	// Crashing member k+1 while member k is still an unadmitted joiner
	// shrinks the installed group below recovery, and a full rolling pass
	// done that way strands the whole ring as singleton joiners with no
	// group left to admit them.
	r.mu.Lock()
	n := r.alive[id]
	r.mu.Unlock()
	if n == nil {
		return // restart failed; restartMember already reported
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if n.Ready() == nil {
			if v := n.CurrentView(); len(v.Members) > 1 {
				return
			}
		}
		if time.Now().After(deadline) {
			failf(r.t, r.sc.Seed, "upgraded member %d never rejoined; group: %s",
				idx, r.groupState())
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// reapPoisoned notices a hostile-disk member that fail-stopped on its own
// (WAL poisoned by a storage fault, or evicted while degraded) and books it
// as a crash so EvRestart/reviveDisk can bring it back. It also enforces
// the fail-stop contract: a poisoned member must report not-ready and must
// never keep serving.
func (r *runner) reapPoisoned() {
	if r.diskFS == nil {
		return
	}
	id := fsr.ProcID(r.sc.DiskNode)
	r.mu.Lock()
	n, isAlive := r.alive[id]
	r.mu.Unlock()
	if !isAlive || n.Err() == nil {
		return
	}
	if errors.Is(n.Err(), wal.ErrPoisoned) {
		if n.Ready() == nil {
			failf(r.t, r.sc.Seed, "poisoned member %d still reports ready", id)
		}
		r.log.Info("hostile disk: reaping poisoned member", "node", uint32(id), "err", n.Err())
	} else {
		r.log.Info("hostile disk: reaping halted member", "node", uint32(id), "err", n.Err())
	}
	r.mu.Lock()
	delete(r.alive, id)
	if !slices.Contains(r.crashed, r.sc.DiskNode) {
		r.crashed = append(r.crashed, r.sc.DiskNode)
	}
	r.mu.Unlock()
	// The process already halted itself; Crash additionally severs its
	// transport endpoint so peers observe clean silence.
	r.cluster.Crash(r.sc.DiskNode)
}

// crashDisk is the scheduled power cut of the hostile-disk member: the
// process fail-stops (unless storage poison already took it down) and the
// fault-layer disk drops every byte not honestly fsynced — the moment a
// lying fsync's durability claim is put to the test.
func (r *runner) crashDisk() {
	if r.diskFS == nil {
		return
	}
	r.reapPoisoned()
	id := fsr.ProcID(r.sc.DiskNode)
	r.mu.Lock()
	_, isAlive := r.alive[id]
	if isAlive {
		if len(r.crashed) >= r.sc.T {
			r.mu.Unlock()
			return // budget exhausted; leave the member running, disk intact
		}
		delete(r.alive, id)
		r.crashed = append(r.crashed, r.sc.DiskNode)
	}
	r.mu.Unlock()
	if isAlive {
		r.cluster.Crash(r.sc.DiskNode)
	}
	if err := r.diskFS.Crash(); err != nil {
		r.log.Info("hostile disk: power-cut truncation", "err", err)
	}
}

// reviveDisk runs after the workload: if the hostile-disk member is down —
// by schedule or by poison — bring it back for the final quiescence so the
// checker can hold it to prefix agreement and uniformity. Its disk takes a
// final power cut first, so recovery starts from what was honestly
// durable.
func (r *runner) reviveDisk() {
	if r.diskFS == nil {
		return
	}
	r.reapPoisoned()
	r.mu.Lock()
	pos := slices.Index(r.crashed, r.sc.DiskNode)
	if pos >= 0 {
		r.crashed = slices.Delete(r.crashed, pos, pos+1)
	}
	r.mu.Unlock()
	if pos < 0 {
		return
	}
	// Final power cut, then calm weather: recovery is judged on what the
	// faults left behind, not hampered by fresh ones.
	_ = r.diskFS.Crash()
	r.diskFS.Disarm()
	r.restartMember(r.sc.DiskNode)
}

// leader returns the live node currently coordinating the group.
func (r *runner) leader() *fsr.Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range r.alive {
		v := n.CurrentView()
		if len(v.Members) > 0 {
			if ldr, ok := r.alive[v.Members[0]]; ok {
				return ldr
			}
		}
	}
	return nil
}

// crash fail-stops the leader or a follower, respecting the concurrent
// crash budget T.
func (r *runner) crash(leader bool) {
	target := -1
	ldr := r.leader()
	r.mu.Lock()
	if len(r.crashed) >= r.sc.T {
		r.mu.Unlock()
		return // budget exhausted; plan generation should prevent this
	}
	ids := r.cluster.IDs()
	for i, id := range ids {
		n, ok := r.alive[id]
		if !ok {
			continue
		}
		isLdr := ldr != nil && n == ldr
		if leader == isLdr {
			target = i
			break
		}
	}
	if target < 0 {
		r.mu.Unlock()
		return
	}
	delete(r.alive, ids[target])
	r.crashed = append(r.crashed, target)
	r.mu.Unlock()
	r.cluster.Crash(target)
}

// restart brings the oldest crashed member back from its durable dir.
func (r *runner) restart() {
	r.reapHalted()
	r.mu.Lock()
	if len(r.crashed) == 0 {
		r.mu.Unlock()
		return
	}
	idx := r.crashed[0]
	r.crashed = r.crashed[1:]
	r.mu.Unlock()
	r.restartMember(idx)
}

// restartMember brings one crashed member back from its durable dir. For
// the hostile-disk member the recovery contract is looser: injected open
// faults may abort a few attempts (retried), and a corrupt log means the
// member must NOT serve from it — it wipes local state and re-joins via
// state transfer instead. Any other member failing to restart is a bug.
func (r *runner) restartMember(idx int) {
	hostile := r.diskFS != nil && idx == r.sc.DiskNode
	for attempt := 0; ; attempt++ {
		node, err := r.cluster.Restart(idx)
		if err == nil {
			r.mu.Lock()
			r.alive[node.Self()] = node
			r.mu.Unlock()
			return
		}
		if !hostile || attempt >= 4 {
			failf(r.t, r.sc.Seed, "restart of member %d: %v", idx, err)
			return
		}
		if errors.Is(err, wal.ErrCorrupt) {
			r.log.Info("hostile disk: corrupt log on restart, wiping for state transfer",
				"node", idx, "err", err)
			r.wipeDisk(idx)
			continue
		}
		r.log.Info("hostile disk: restart attempt failed, retrying",
			"node", idx, "attempt", attempt, "err", err)
	}
}

// wipeDisk discards the hostile-disk member's log and snapshots (keeping
// the gen incarnation file, so the member still re-joins as a fresh
// incarnation of itself). Removal goes through the fault layer so its
// per-file tracking stays consistent with the directory contents.
func (r *runner) wipeDisk(idx int) {
	dir := filepath.Join(r.durBase, fmt.Sprintf("node-%d", r.cluster.IDs()[idx]))
	names, err := r.diskFS.ReadDir(dir)
	if err != nil {
		failf(r.t, r.sc.Seed, "wiping hostile disk %d: %v", idx, err)
		return
	}
	for _, name := range names {
		if strings.HasSuffix(name, ".seg") || strings.HasSuffix(name, ".snap") {
			if err := r.diskFS.Remove(filepath.Join(dir, name)); err != nil {
				failf(r.t, r.sc.Seed, "wiping hostile disk %d: %v", idx, err)
			}
		}
	}
}

// join admits a brand-new durable member mid-run.
func (r *runner) join() {
	r.mu.Lock()
	if r.nextID == 0 {
		r.nextID = r.cluster.IDs()[len(r.cluster.IDs())-1] + 1
	}
	id := r.nextID
	r.nextID++
	var contacts []fsr.ProcID
	for cid := range r.alive {
		contacts = append(contacts, cid)
	}
	r.mu.Unlock()
	if len(contacts) == 0 {
		return
	}
	ep, err := r.ct.Join(id)
	if err != nil {
		failf(r.t, r.sc.Seed, "join transport endpoint for %d: %v", id, err)
		return
	}
	cfg := r.nodeCfg
	cfg.Self = id
	cfg.Joiner = true
	cfg.Members = contacts
	cfg = cfg.WithDurableDir(fmt.Sprintf("%s/node-%d", r.base, id)).
		WithStateMachine(r.reg.factory(id))
	node, err := fsr.NewNode(cfg, ep)
	if err != nil {
		failf(r.t, r.sc.Seed, "join node %d: %v", id, err)
		return
	}
	node.Join(contacts)
	r.mu.Lock()
	r.alive[id] = node
	r.extras = append(r.extras, node)
	r.mu.Unlock()
}

// leave departs a live non-leader veteran gracefully.
func (r *runner) leave() {
	ldr := r.leader()
	r.mu.Lock()
	var node *fsr.Node
	for _, id := range r.cluster.IDs() {
		if n, ok := r.alive[id]; ok && n != ldr {
			node = n
			break
		}
	}
	if node == nil || len(r.alive) <= 2 {
		r.mu.Unlock()
		return // keep a workable group
	}
	delete(r.alive, node.Self())
	r.mu.Unlock()
	node.Leave()
}

func (r *runner) sentCopy() []sent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]sent(nil), r.sent...)
}

// awaitReceipts enforces the liveness half of the receipt contract: every
// issued receipt resolves — uniform delivery or a definite error — inside
// the deadline. A hung receipt is an invariant violation, not a timeout.
func (r *runner) awaitReceipts() {
	deadline := time.Now().Add(60 * time.Second)
	for i, s := range r.sentCopy() {
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		err := s.receipt.Wait(ctx)
		cancel()
		if err == context.DeadlineExceeded {
			failf(r.t, r.sc.Seed, "receipt %d (origin %d, %d bytes) never resolved; group: %s",
				i, s.origin, s.length, r.groupState())
			r.t.FailNow()
		}
	}
}

// groupState renders every live node's vitals for failure diagnostics.
func (r *runner) groupState() string {
	r.mu.Lock()
	nodes := make(map[fsr.ProcID]*fsr.Node, len(r.alive))
	for id, n := range r.alive {
		nodes[id] = n
	}
	r.mu.Unlock()
	var state []string
	for id, n := range nodes {
		m := n.Metrics()
		state = append(state, fmt.Sprintf("%d{view=%d%v ldr=%v applied=%d catch=%v own=%d relay=%d rcpt=%d err=%v}",
			id, m.View.ID, m.View.Members, m.IsLeader, n.Applied(), m.CatchingUp, m.OwnQueue, m.RelayQueue, m.PendingReceipts, n.Err()))
	}
	sort.Strings(state)
	return strings.Join(state, " ")
}

// quiesce waits until the group is drained: every live node reports no
// pending work and all live nodes agree on the applied frontier, stably.
// Returns the IDs of the members live at the end.
func (r *runner) quiesce() []fsr.ProcID {
	r.mu.Lock()
	nodes := make(map[fsr.ProcID]*fsr.Node, len(r.alive))
	for id, n := range r.alive {
		nodes[id] = n
	}
	r.mu.Unlock()

	deadline := time.Now().Add(45 * time.Second)
	stableSince := time.Time{}
	var lastFrontier uint64
	for {
		frontier, settled := uint64(0), true
		first := true
		for id, n := range nodes {
			m := n.Metrics()
			if m.View.ID == 0 {
				// The node halted (a halted node reports zero metrics) —
				// e.g. it was evicted after a false suspicion under heavy
				// load and fail-stopped, which is the documented outcome.
				// It is no longer a live member; its history stays subject
				// to the prefix checks via collectLogs.
				delete(nodes, id)
				continue
			}
			if m.CatchingUp || m.OwnQueue > 0 || m.RelayQueue > 0 || m.PendingReceipts > 0 {
				settled = false
			}
			a := n.Applied()
			if first {
				frontier, first = a, false
			} else if a != frontier {
				settled = false
				frontier = max(frontier, a)
			}
		}
		now := time.Now()
		if settled && frontier == lastFrontier {
			if stableSince.IsZero() {
				stableSince = now
			} else if now.Sub(stableSince) > 250*time.Millisecond {
				ids := make([]fsr.ProcID, 0, len(nodes))
				for id := range nodes {
					ids = append(ids, id)
				}
				return ids
			}
		} else {
			stableSince = time.Time{}
		}
		lastFrontier = frontier
		if now.After(deadline) {
			failf(r.t, r.sc.Seed, "group never quiesced: %s", r.groupState())
			r.t.FailNow()
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// collectLogs snapshots every member's applied history (latest incarnation
// per member, including crashed and departed ones — their prefixes are
// checked too).
func (r *runner) collectLogs() map[fsr.ProcID][]Rec {
	r.reg.mu.Lock()
	ids := make([]fsr.ProcID, 0, len(r.reg.sms))
	for id := range r.reg.sms {
		ids = append(ids, id)
	}
	r.reg.mu.Unlock()
	logs := make(map[fsr.ProcID][]Rec, len(ids))
	for _, id := range ids {
		logs[id] = r.reg.get(id).Log()
	}
	return logs
}
