package harness

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"
)

// seedBase picks where this run's seed range starts: FSR_SEED pins a single
// scenario for replay; otherwise every run explores a fresh range (the
// FoundationDB discipline — new schedules every CI run, any failure
// replayable from its printed seed).
func seedBase(t *testing.T) (base int64, pinned bool) {
	if v := os.Getenv("FSR_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("FSR_SEED=%q: %v", v, err)
		}
		return n, true
	}
	return time.Now().UnixNano(), false
}

// TestScenarioDeterminism: a seed fully determines the scenario — the plan
// renders byte-for-byte identically across generations, and the chaos
// transport's injection schedule is likewise seed-pure (covered by
// transport/chaos tests). This is what makes the printed repro line honest.
func TestScenarioDeterminism(t *testing.T) {
	for seed := int64(-3); seed < 40; seed++ {
		a, b := Generate(seed, false).String(), Generate(seed, false).String()
		if a != b {
			t.Fatalf("seed %d generated two different scenarios:\n%s\n%s", seed, a, b)
		}
		if c := Generate(seed+1, false).String(); a == c {
			t.Fatalf("seeds %d and %d generated identical scenarios", seed, seed+1)
		}
		if soak := Generate(seed, true); soak.Messages <= Generate(seed, false).Messages {
			t.Fatalf("seed %d: soak scenario not scaled up", seed)
		}
	}
}

// TestScenarioCoverage: any window of `profiles` consecutive seeds covers
// every coverage class, so the default 50-scenario run always includes
// leader crashes, crash-restarts with catch-up and membership churn.
func TestScenarioCoverage(t *testing.T) {
	base := time.Now().UnixNano()
	classes := make(map[string]bool)
	for i := int64(0); i < profiles; i++ {
		classes[profileName(Generate(base+i, false))] = true
	}
	for _, want := range []string{"timing-only", "leader-crash+restart", "follower-crash+restart", "membership-churn", "client-sessions", "edge-replicas", "hostile-disk"} {
		if !classes[want] {
			t.Fatalf("class %q missing from %d consecutive seeds (base %d)", want, profiles, base)
		}
	}
}

// TestChaos is the short chaos pass: 50 seeded scenarios (FSR_CHAOS_COUNT
// overrides; -short trims) against the real mem-transport stack. Replay a
// failure with the FSR_SEED line it prints.
func TestChaos(t *testing.T) {
	base, pinned := seedBase(t)
	count := 50
	if v := os.Getenv("FSR_CHAOS_COUNT"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("FSR_CHAOS_COUNT=%q", v)
		}
		count = n
	} else if testing.Short() {
		count = 8
	}
	if pinned {
		count = 1
	}
	for i := range count {
		seed := base + int64(i)
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			Run(t, seed, false)
		})
	}
	// Coverage guard for the hot-path batching: across a full scenario run
	// the stack must have exercised frames carrying more than one data
	// segment end to end (engine batching -> codec -> chaos injection ->
	// engine). A single pinned replay or a heavily trimmed run is exempt —
	// one scenario's traffic may legitimately never bunch.
	if !pinned && count >= 10 && MultiSegFramesObserved() == 0 {
		t.Errorf("no multi-segment frame observed across %d scenarios: engine batching is not being exercised by chaos traffic", count)
	}
}

// TestChaosHostileDiskPinned replays a fixed set of hostile-disk scenarios
// (seeds ≡ 6 mod profiles) every run: a durable member rides a seeded
// fault-injecting filesystem — torn writes, failing and lying fsyncs,
// ENOSPC, bit flips — under client traffic, crashes, and restarts, and the
// checker holds the cluster to acked⇒durable. Pinned seeds keep known-
// nasty schedules in every CI run; TestChaos layers fresh random ones on
// top. The name contains "Chaos" so CI's -run Chaos selects it.
func TestChaosHostileDiskPinned(t *testing.T) {
	if _, pinned := seedBase(t); pinned {
		t.Skip("FSR_SEED replay runs through TestChaos")
	}
	for _, seed := range []int64{6, 13, 20, 27, 34, 41, 48, 55} {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			sc := Generate(seed, false)
			if got := profileName(sc); got != "hostile-disk" {
				t.Fatalf("seed %d generated profile %q, want hostile-disk", seed, got)
			}
			RunScenario(t, sc)
		})
	}
}

// TestChaosSoak runs scenarios until the FSR_CHAOS_SOAK budget (a Go
// duration) is spent — the nightly unbounded mode. Failing seeds are also
// appended to FSR_CHAOS_LOG when set, so CI can upload them as artifacts.
func TestChaosSoak(t *testing.T) {
	budget := os.Getenv("FSR_CHAOS_SOAK")
	if budget == "" {
		t.Skip("set FSR_CHAOS_SOAK=<duration> (e.g. 30m) to run the soak")
	}
	d, err := time.ParseDuration(budget)
	if err != nil {
		t.Fatalf("FSR_CHAOS_SOAK=%q: %v", budget, err)
	}
	base, pinned := seedBase(t)
	deadline := time.Now().Add(d)
	ran := 0
	for i := int64(0); time.Now().Before(deadline); i++ {
		seed := base + i
		ok := t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			Run(t, seed, true)
		})
		ran++
		if !ok {
			if path := os.Getenv("FSR_CHAOS_LOG"); path != "" {
				f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
				if err == nil {
					fmt.Fprintf(f, "FSR_SEED=%d go test -race -run 'TestChaos/seed-%d' ./internal/harness\n", seed, seed)
					_ = f.Close()
				}
			}
		}
		if pinned {
			break // replaying one seed, not exploring
		}
	}
	t.Logf("soak: %d scenarios in %v (base seed %d)", ran, d, base)
}
