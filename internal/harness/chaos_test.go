package harness

import (
	"fmt"
	"os"
	"runtime"
	"slices"
	"strconv"
	"testing"
	"time"
)

// heapWatermark forces a collection and reports the live heap — the
// number the soak's leak check watches between scenarios.
func heapWatermark() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// seedBase picks where this run's seed range starts: FSR_SEED pins a single
// scenario for replay; otherwise every run explores a fresh range (the
// FoundationDB discipline — new schedules every CI run, any failure
// replayable from its printed seed).
func seedBase(t *testing.T) (base int64, pinned bool) {
	if v := os.Getenv("FSR_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("FSR_SEED=%q: %v", v, err)
		}
		return n, true
	}
	return time.Now().UnixNano(), false
}

// TestScenarioDeterminism: a seed fully determines the scenario — the plan
// renders byte-for-byte identically across generations, and the chaos
// transport's injection schedule is likewise seed-pure (covered by
// transport/chaos tests). This is what makes the printed repro line honest.
func TestScenarioDeterminism(t *testing.T) {
	for seed := int64(-3); seed < 40; seed++ {
		a, b := Generate(seed, false).String(), Generate(seed, false).String()
		if a != b {
			t.Fatalf("seed %d generated two different scenarios:\n%s\n%s", seed, a, b)
		}
		if c := Generate(seed+1, false).String(); a == c {
			t.Fatalf("seeds %d and %d generated identical scenarios", seed, seed+1)
		}
		if soak := Generate(seed, true); soak.Messages <= Generate(seed, false).Messages {
			t.Fatalf("seed %d: soak scenario not scaled up", seed)
		}
	}
}

// TestScenarioCoverage: any window of `profiles` consecutive seeds covers
// every coverage class, so the default 50-scenario run always includes
// leader crashes, crash-restarts with catch-up and membership churn.
func TestScenarioCoverage(t *testing.T) {
	base := time.Now().UnixNano()
	classes := make(map[string]bool)
	for i := int64(0); i < profiles; i++ {
		classes[profileName(Generate(base+i, false))] = true
	}
	for _, want := range []string{"timing-only", "leader-crash+restart", "follower-crash+restart", "membership-churn", "client-sessions", "edge-replicas", "hostile-disk", "asym-partition", "wan-geo", "rolling-upgrade"} {
		if !classes[want] {
			t.Fatalf("class %q missing from %d consecutive seeds (base %d)", want, profiles, base)
		}
	}
}

// TestChaos is the short chaos pass: 50 seeded scenarios (FSR_CHAOS_COUNT
// overrides; -short trims) against the real mem-transport stack. Replay a
// failure with the FSR_SEED line it prints.
func TestChaos(t *testing.T) {
	base, pinned := seedBase(t)
	count := 50
	if v := os.Getenv("FSR_CHAOS_COUNT"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("FSR_CHAOS_COUNT=%q", v)
		}
		count = n
	} else if testing.Short() {
		count = 8
	}
	if pinned {
		count = 1
	}
	for i := range count {
		seed := base + int64(i)
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			Run(t, seed, false)
		})
	}
	// Coverage guard for the hot-path batching: across a full scenario run
	// the stack must have exercised frames carrying more than one data
	// segment end to end (engine batching -> codec -> chaos injection ->
	// engine). A single pinned replay or a heavily trimmed run is exempt —
	// one scenario's traffic may legitimately never bunch.
	if !pinned && count >= 10 && MultiSegFramesObserved() == 0 {
		t.Errorf("no multi-segment frame observed across %d scenarios: engine batching is not being exercised by chaos traffic", count)
	}
}

// TestChaosHostileDiskPinned replays a fixed set of hostile-disk scenarios
// (seeds ≡ 6 mod profiles) every run: a durable member rides a seeded
// fault-injecting filesystem — torn writes, failing and lying fsyncs,
// ENOSPC, bit flips — under client traffic, crashes, and restarts, and the
// checker holds the cluster to acked⇒durable. Pinned seeds keep known-
// nasty schedules in every CI run; TestChaos layers fresh random ones on
// top. The name contains "Chaos" so CI's -run Chaos selects it.
func TestChaosHostileDiskPinned(t *testing.T) {
	if _, pinned := seedBase(t); pinned {
		t.Skip("FSR_SEED replay runs through TestChaos")
	}
	for _, seed := range []int64{6, 16, 26, 36, 46, 56, 66, 76} {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			sc := Generate(seed, false)
			if got := profileName(sc); got != "hostile-disk" {
				t.Fatalf("seed %d generated profile %q, want hostile-disk", seed, got)
			}
			RunScenario(t, sc)
		})
	}
}

// TestChaosHostileNetPinned replays a fixed set of hostile-network
// scenarios every run: asymmetric partitions (seeds ≡ 7 mod profiles,
// one-way blackholes and flapping ring edges driving false suspicion,
// eviction and rejoin), WAN geo latency matrices (≡ 8), and version-skew
// rolling upgrades (≡ 9, every member restarted one at a time under
// traffic with the wire version flipped old→new). Pinned seeds keep
// known-nasty schedules in every CI run; TestChaos layers fresh random
// ones on top. The name contains "Chaos" so CI's -run Chaos selects it.
func TestChaosHostileNetPinned(t *testing.T) {
	if _, pinned := seedBase(t); pinned {
		t.Skip("FSR_SEED replay runs through TestChaos")
	}
	for _, tc := range []struct {
		profile string
		seeds   []int64
	}{
		{"asym-partition", []int64{7, 17, 27}},
		{"wan-geo", []int64{8, 18}},
		{"rolling-upgrade", []int64{9, 19, 29}},
	} {
		for _, seed := range tc.seeds {
			t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
				sc := Generate(seed, false)
				if got := profileName(sc); got != tc.profile {
					t.Fatalf("seed %d generated profile %q, want %s", seed, got, tc.profile)
				}
				RunScenario(t, sc)
			})
		}
	}
}

// TestChaosWanGeoSoakPinned replays, at soak workload scale, the wan-geo
// scenario that exposed the client-publish FIFO gate bug (bug #17): under
// continental ack latency enough publishes stay in flight that a member's
// backpressure bounds drop one publish while accepting its successors —
// the client's sorted retry then committed the dropped one BEHIND them,
// an interior hole in the per-origin FIFO stream. Fixed by sessSrv's
// per-client gate (see TestClientPubFIFOGate in the root package); this
// seed is the end-to-end regression. The name contains "Chaos" so CI's
// -run Chaos selects it.
func TestChaosWanGeoSoakPinned(t *testing.T) {
	if _, pinned := seedBase(t); pinned {
		t.Skip("FSR_SEED replay runs through TestChaos/TestChaosSoak")
	}
	const seed = 1786170100913705138
	sc := Generate(seed, true)
	if got := profileName(sc); got != "wan-geo" {
		t.Fatalf("seed %d generated profile %q, want wan-geo", seed, got)
	}
	RunScenario(t, sc)
}

// TestChaosSoak runs scenarios until the FSR_CHAOS_SOAK budget (a Go
// duration) is spent — the nightly unbounded mode. Failing seeds are also
// appended to FSR_CHAOS_LOG when set, so CI can upload them as artifacts.
// FSR_CHAOS_PROFILE restricts the sweep to one coverage class by name
// (e.g. asym-partition), for the nightly matrix. Between scenarios the
// soak also watches the post-GC heap watermark and fails on monotone
// growth — a leak across thousands of scenarios would otherwise pass
// every correctness check and still take the nightly host down.
func TestChaosSoak(t *testing.T) {
	budget := os.Getenv("FSR_CHAOS_SOAK")
	if budget == "" {
		t.Skip("set FSR_CHAOS_SOAK=<duration> (e.g. 30m) to run the soak")
	}
	d, err := time.ParseDuration(budget)
	if err != nil {
		t.Fatalf("FSR_CHAOS_SOAK=%q: %v", budget, err)
	}
	base, pinned := seedBase(t)
	wantProfile := os.Getenv("FSR_CHAOS_PROFILE")
	deadline := time.Now().Add(d)
	ran := 0
	var heap []uint64
	for i := int64(0); time.Now().Before(deadline); i++ {
		seed := base + i
		if wantProfile != "" && profileName(Generate(seed, true)) != wantProfile {
			continue
		}
		ok := t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			Run(t, seed, true)
		})
		ran++
		heap = append(heap, heapWatermark())
		if n := len(heap); n >= 12 {
			// Steady state is reached quickly; after that the post-GC heap
			// must not keep climbing. Allow generous slack over the first
			// half's peak — scenario sizes vary — but monotone growth past
			// it is a leak.
			peak := slices.Max(heap[:n/2])
			limit := peak + peak/2 + 48<<20
			if heap[n-1] > limit {
				t.Errorf("soak heap watermark climbing: %d MiB after %d scenarios, limit %d MiB (history %v)",
					heap[n-1]>>20, ran, limit>>20, heap)
			}
		}
		if !ok {
			if path := os.Getenv("FSR_CHAOS_LOG"); path != "" {
				f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
				if err == nil {
					fmt.Fprintf(f, "FSR_SEED=%d go test -race -run 'TestChaos/seed-%d' ./internal/harness\n", seed, seed)
					_ = f.Close()
				}
			}
		}
		if pinned {
			break // replaying one seed, not exploring
		}
	}
	t.Logf("soak: %d scenarios in %v (base seed %d)", ran, d, base)
}
