package harness

import (
	"fmt"

	"fsr"
)

// check enforces the paper's correctness claims over the recorded applied
// histories after quiescence:
//
//   - Agreement / prefix consistency: every member's applied history —
//     including crashed and departed members' — is an exact prefix of one
//     reference history (no gap, no duplicate, no reorder anywhere).
//   - Uniformity across ≤ t crashes: any message applied by ANY member
//     (even one that crashed right after) is applied by every member live
//     at the end; live members end with identical full histories.
//   - Total order sanity: sequence numbers strictly increase and no
//     (origin, logical ID) pair is ever applied twice, across views,
//     leader failures and identity-preserving rebroadcasts.
//   - FIFO per sender: one origin's messages appear in logical-ID order
//     (incarnation banding keeps this monotone across restarts).
//   - Receipt consistency: a receipt that resolved Delivered names a
//     sequence number at which every live member applied exactly the
//     broadcast's payload; a failed receipt carries a definite error (the
//     liveness half — every receipt resolves — is enforced by the runner).
//   - Crash-restart state equality: restarted members rebuilt from
//     snapshot + WAL + catch-up are bit-identical to replicas that never
//     crashed (subsumed by live-history equality, since the Recorder's
//     state IS its applied history).
func check(t TB, sc Scenario, logs map[fsr.ProcID][]Rec, live []fsr.ProcID, sents []sent) {
	t.Helper()
	seed := sc.Seed

	// Reference: the longest applied history anywhere.
	var ref []Rec
	var refID fsr.ProcID
	for id, log := range logs {
		if len(log) > len(ref) {
			ref, refID = log, id
		}
	}

	// Per-log internal sanity: strictly increasing seqs, no duplicate
	// logical identity, FIFO per origin.
	for id, log := range logs {
		var prevSeq uint64
		seen := make(map[[2]uint64]int, len(log))
		lastLogical := make(map[fsr.ProcID]uint64)
		for i, rec := range log {
			if rec.Seq <= prevSeq {
				failf(t, seed, "node %d: seq not strictly increasing at %d: %d after %d (reorder or duplicate delivery)",
					id, i, rec.Seq, prevSeq)
				return
			}
			prevSeq = rec.Seq
			key := [2]uint64{uint64(rec.Origin), rec.Logical}
			if j, dup := seen[key]; dup {
				failf(t, seed, "node %d: message origin=%d logical=%d applied twice (positions %d and %d)",
					id, rec.Origin, rec.Logical, j, i)
				return
			}
			seen[key] = i
			if last, ok := lastLogical[rec.Origin]; ok && rec.Logical <= last {
				failf(t, seed, "node %d: FIFO violation for origin %d at %d: logical %d after %d",
					id, rec.Origin, i, rec.Logical, last)
				return
			}
			lastLogical[rec.Origin] = rec.Logical
		}
	}

	// Agreement: every history is an exact prefix of the reference.
	for id, log := range logs {
		if len(log) > len(ref) {
			continue // impossible by construction
		}
		for i, rec := range log {
			if rec != ref[i] {
				failf(t, seed, "agreement violated: node %d position %d has %+v, node %d has %+v",
					id, i, rec, refID, ref[i])
				return
			}
		}
	}

	// Uniformity: members live at the end hold the full reference history —
	// anything any member ever applied, the survivors all applied.
	for _, id := range live {
		log, ok := logs[id]
		if !ok {
			failf(t, seed, "live member %d recorded no history", id)
			return
		}
		if len(log) != len(ref) {
			failf(t, seed, "uniformity violated: live member %d applied %d messages, member %d applied %d",
				id, len(log), refID, len(ref))
			return
		}
	}

	// Receipt consistency against the reference order.
	bySeq := make(map[uint64]Rec, len(ref))
	for _, rec := range ref {
		bySeq[rec.Seq] = rec
	}
	delivered := 0
	for i, s := range sents {
		if err := s.receipt.Err(); err != nil {
			if s.mustDeliver {
				// Session publishes survive member crashes by failover —
				// exactly-once means exactly once, not at-most-once.
				failf(t, seed, "client publish %d (origin %d, %d bytes) failed instead of committing: %v",
					i, s.origin, s.length, err)
				return
			}
			continue // member broadcast on a crashed node; may or may not appear
		}
		delivered++
		seq := s.receipt.Seq()
		rec, ok := bySeq[seq]
		if !ok {
			failf(t, seed, "receipt %d resolved Delivered at seq %d but no member applied that seq", i, seq)
			return
		}
		if rec.Origin != s.origin || rec.Hash != s.hash || rec.Len != s.length {
			failf(t, seed, "receipt %d (origin %d, %d bytes, hash %x) disagrees with applied record at seq %d: %+v",
				i, s.origin, s.length, s.hash, seq, rec)
			return
		}
	}
	if len(sents) > 0 && delivered == 0 && len(ref) == 0 {
		failf(t, seed, "no broadcast was ever delivered (%d issued)", len(sents))
		return
	}
	t.Logf("checked: %d members (%d live), %d applied, %d/%d receipts delivered%s",
		len(logs), len(live), len(ref), delivered, len(sents),
		fmt.Sprintf(" [%s]", profileName(sc)))
}

// profileName labels the scenario's coverage class for the run log.
func profileName(sc Scenario) string {
	switch ((sc.Seed % profiles) + profiles) % profiles {
	case 1:
		return "leader-crash+restart"
	case 2:
		return "follower-crash+restart"
	case 3:
		return "membership-churn"
	case 4:
		return "client-sessions"
	case 5:
		return "edge-replicas"
	case 6:
		return "hostile-disk"
	case 7:
		return "asym-partition"
	case 8:
		return "wan-geo"
	case 9:
		return "rolling-upgrade"
	default:
		return "timing-only"
	}
}
