// Package serve implements the serving half of the KindClient session
// protocol — HELLO/PUBLISH/SUBSCRIBE in, PUBACK/EVENT/REDIRECT out — as a
// host-independent engine shared by ring members (fsr.Node) and read-only
// edge replicas (package edge). The host supplies the committed order
// through the Source interface and decides what a PUBLISH means (members
// dedup and broadcast; edges redirect to a writable member); everything
// else — subscription paging, snapshot fallback, redirects, keepalives,
// per-client transmit queues — is served here, identically on both hosts.
//
// # Encode-once fan-out
//
// Historically every subscriber cost a private pager and a private EVENT
// encode: fan-out was O(subscribers × bytes) of marshaling per committed
// offset, all funneled through blocking transport writes. This package
// splits serving into two regimes:
//
//   - Catch-up: a per-subscription pager goroutine pages the host's
//     committed order (WAL or in-memory tail) from the subscription's
//     cursor. This is the cold path — it exists only while a subscriber
//     is behind.
//   - Tail: once a pager reaches the applied frontier it ATTACHes its
//     subscription to the shared tail. From then on each committed batch
//     is marshaled exactly once into a pooled EVENT frame whose bytes are
//     enqueued to every attached client — O(1) encode + O(subscribers)
//     queue pushes per offset, with the frame buffer refcounted back into
//     the pool after the last writer drains it.
//
// # Slow-subscriber isolation
//
// Every client owns a bounded transmit queue drained by a dedicated
// writer goroutine, so one stalled socket never blocks the host's event
// loop, the delivery pump, or any other subscriber. When a tail push
// finds the queue full the client is DETACHed: it keeps the frames
// already queued (the stream stays gap-free), reverts to pager catch-up,
// and re-attaches when it is caught up again. Acks, redirects and
// keepalives are dropped on overflow instead (the client's retry/probe
// machinery is the backpressure); protocol markers (attach/detach) are
// never dropped.
package serve

import (
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"fsr/internal/deque"
	"fsr/internal/ring"
	"fsr/internal/wire"
	"fsr/transport"
)

// ProcID identifies one process, re-exported so hosts don't need the
// internal ring package spelled out.
type ProcID = ring.ProcID

// Paging and pacing bounds (mirroring the catch-up transfer's).
const (
	maxPageEntries = 256
	maxPageBytes   = 1 << 20
	keepalive      = time.Second
	// defaultQueueCap bounds one client's transmit queue, in frames. At
	// the default page bounds that is plenty of runway for a healthy
	// client and a firm cap on what a stalled one can pin.
	defaultQueueCap = 256
	// writerBatch is how many queued frames one writer drains per
	// transport operation (a single vectored write on TCP).
	writerBatch = 32
)

// Page is one page of a subscription stream read from the host.
type Page struct {
	// Snap, when non-nil, is an application snapshot at SnapSeq replacing
	// the truncated prefix of the order.
	Snap    []byte
	SnapSeq uint64
	// Entries are committed messages in seq order.
	Entries []wire.ClientEventEntry
	// Cursor is the subscription cursor after consuming the page.
	Cursor uint64
	// BelowHorizon reports that the host cannot serve offsets this old.
	BelowHorizon bool
}

// Source is the host's committed order as the serving layer consumes it.
// All methods must be safe from any goroutine.
type Source interface {
	// Applied returns the applied frontier (highest servable offset).
	Applied() uint64
	// ReadCommitted pages the order in (cursor, applied].
	ReadCommitted(cursor, applied uint64, maxEntries, maxBytes int) (Page, error)
	// Watch returns a channel closed when the frontier next advances.
	Watch() <-chan struct{}
}

// Config wires a Server to its host.
type Config struct {
	// Transport sends frames to clients (by their transport ProcID).
	Transport transport.Transport
	// Source is the committed order being served.
	Source Source
	// Publish, when non-nil, handles one PUBLISH frame; it runs on
	// whatever goroutine called Handle and must not block. When nil the
	// host is read-only: publishes answer RedirectNotWritable.
	Publish func(from ProcID, p *wire.ClientPublish)
	// Redirect supplies the group coordinates for REDIRECT frames: the
	// current members (leader first), optionally their dialable
	// addresses, and the applied frontier.
	Redirect func() (members []ProcID, addrs []string, applied uint64)
	// QueueCap overrides the per-client transmit queue bound (frames).
	QueueCap int
	// Logger receives structured serving events (slow-subscriber
	// detaches). Nil discards them.
	Logger *slog.Logger
}

// Stats is a point-in-time census of the serving layer.
type Stats struct {
	Clients      int    // live client links
	EdgeClients  int    // links that announced RoleEdge
	Subs         int    // live subscriptions (paging + attached)
	TailAttached int    // subscriptions fed by the shared tail
	TailFrames   uint64 // encode-once tail frames published
	TailDetaches uint64 // clients demoted to catch-up by a full queue
	NotWritable  uint64 // publishes answered with RedirectNotWritable
}

// Server serves the client sub-protocol for one host.
type Server struct {
	cfg      Config
	batcher  transport.BatchSender // non-nil when Transport supports batches
	queueCap int
	stopc    chan struct{}
	wg       sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	clients  map[ProcID]*clientOut
	subs     map[subKey]*sub
	tails    map[ProcID]*clientOut // clients with >= 1 attached subscription
	frontier uint64                // highest offset published to the shared tail

	tailFrames   uint64
	tailDetaches uint64
	notWritable  uint64

	log *slog.Logger
}

type subKey struct {
	cid ProcID
	sub uint64
}

// New builds a Server and starts its keepalive ticker. The host must call
// Shutdown (then Wait) to release it.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg,
		queueCap: cfg.QueueCap,
		stopc:    make(chan struct{}),
		clients:  make(map[ProcID]*clientOut),
		subs:     make(map[subKey]*sub),
		tails:    make(map[ProcID]*clientOut),
		log:      cfg.Logger,
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	if s.queueCap <= 0 {
		s.queueCap = defaultQueueCap
	}
	s.batcher, _ = cfg.Transport.(transport.BatchSender)
	s.wg.Add(1)
	go s.keepaliveLoop()
	return s
}

// --- Per-client transmit queue --------------------------------------------

// outItem is one queued frame: either an exclusive payload or a shared
// refcounted tail frame.
type outItem struct {
	payload []byte
	tail    *tailFrame
}

// tailFrame is one encode-once EVENT frame shared by every attached
// client. The pooled buffer returns to the pool when the last holder
// releases it.
type tailFrame struct {
	buf  *wire.Buf
	last uint64 // highest Seq in the frame
	refs atomic.Int32
}

func (f *tailFrame) release() {
	if f.refs.Add(-1) == 0 {
		wire.PutBuf(f.buf)
		f.buf = nil
	}
}

// clientOut is one client link: a bounded frame queue drained by a
// dedicated writer goroutine, so a stalled socket stalls only itself.
type clientOut struct {
	s  *Server
	id ProcID

	mu       sync.Mutex
	cond     *sync.Cond
	q        deque.Deque[outItem]
	dead     bool
	tailSent uint64 // highest tail offset ever enqueued on this link
	edge     bool   // announced RoleEdge in HELLO
	ver      byte   // wire version the client announced (0 before HELLO)

	attached map[uint64]*sub // subscriptions fed by the tail (guarded by Server.mu)
}

// pushDrop enqueues a best-effort frame (ack, redirect, keepalive),
// dropping it when the queue is full — the client's retry and probe
// machinery is the backpressure.
func (o *clientOut) pushDrop(payload []byte) {
	o.mu.Lock()
	if !o.dead && o.q.Len() < o.s.queueCap {
		o.q.PushBack(outItem{payload: payload})
		o.cond.Broadcast()
	}
	o.mu.Unlock()
}

// pushForced enqueues a protocol frame that must not be dropped
// (attach/detach markers, cannot-serve). The queue cap is soft for these:
// marker volume is bounded by the protocol itself. False means the link
// is dead.
func (o *clientOut) pushForced(payload []byte) bool {
	o.mu.Lock()
	if o.dead {
		o.mu.Unlock()
		return false
	}
	o.q.PushBack(outItem{payload: payload})
	o.cond.Broadcast()
	o.mu.Unlock()
	return true
}

// pushTail enqueues one shared tail frame. False means the link is dead
// or the queue is full — the caller detaches the client. Called with
// Server.mu held.
func (o *clientOut) pushTail(f *tailFrame) bool {
	o.mu.Lock()
	if o.dead || o.q.Len() >= o.s.queueCap {
		o.mu.Unlock()
		return false
	}
	f.refs.Add(1)
	o.q.PushBack(outItem{tail: f})
	o.tailSent = f.last
	o.cond.Broadcast()
	o.mu.Unlock()
	return true
}

// pushWait enqueues a pager page, blocking while the queue is full. False
// means the link died or the subscription was cancelled while waiting.
func (o *clientOut) pushWait(payload []byte, cancel <-chan struct{}) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	for {
		if o.dead || chanClosed(cancel) || chanClosed(o.s.stopc) {
			return false
		}
		if o.q.Len() < o.s.queueCap {
			o.q.PushBack(outItem{payload: payload})
			o.cond.Broadcast()
			return true
		}
		o.cond.Wait()
	}
}

func chanClosed(c <-chan struct{}) bool {
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// writer drains the queue to the transport. It is the only goroutine that
// writes to this client, so a blocking socket write delays exactly one
// subscriber. A failed write declares the link dead (the client redials
// and re-homes its session).
func (o *clientOut) writer() {
	defer o.s.wg.Done()
	var (
		items    []outItem
		payloads [][]byte
		copies   [][]byte // tail copies for non-batch transports
	)
	for {
		o.mu.Lock()
		for o.q.Len() == 0 && !o.dead {
			o.cond.Wait()
		}
		if o.dead {
			for o.q.Len() > 0 {
				if it := o.q.PopFront(); it.tail != nil {
					it.tail.release()
				}
			}
			o.mu.Unlock()
			return
		}
		items = items[:0]
		for o.q.Len() > 0 && len(items) < writerBatch {
			items = append(items, o.q.PopFront())
		}
		o.cond.Broadcast() // space freed: wake blocked pagers
		o.mu.Unlock()

		var err error
		if o.s.batcher != nil {
			// Batch contract: buffers stay ours after the call, so the
			// pooled tail frames are shared with zero copies.
			payloads = payloads[:0]
			for _, it := range items {
				if it.tail != nil {
					payloads = append(payloads, it.tail.buf.B)
				} else {
					payloads = append(payloads, it.payload)
				}
			}
			err = o.s.batcher.SendBatch(o.id, payloads)
		} else {
			// Send passes buffer ownership to the transport: hand shared
			// tail bytes over as copies.
			for _, it := range items {
				p := it.payload
				if it.tail != nil {
					p = append([]byte(nil), it.tail.buf.B...)
					copies = append(copies, p)
				}
				if err = o.s.cfg.Transport.Send(o.id, p); err != nil {
					break
				}
			}
			copies = copies[:0]
		}
		for _, it := range items {
			if it.tail != nil {
				it.tail.release()
			}
		}
		if err != nil {
			o.s.dropClient(o)
			return
		}
	}
}

// --- Frame dispatch --------------------------------------------------------

// Handle serves one inbound KindClient payload. It never blocks on a
// client: every reply is queued for the client's writer. Safe from any
// goroutine; malformed input is dropped (clients are outside the trust
// boundary).
func (s *Server) Handle(from ProcID, payload []byte) {
	msg, err := wire.DecodeClient(payload)
	if err != nil {
		return
	}
	switch v := msg.(type) {
	case *wire.ClientHello:
		o := s.getClient(from)
		if o == nil {
			return
		}
		if !wire.CompatibleVersion(v.Version) {
			// Major-incompatible client: refuse the session outright. The
			// BYE still decodes on any version (the redirect envelope is
			// stable across majors by policy), so the client learns why.
			s.log.Warn("serve: rejected incompatible-version client",
				"client", from,
				"major", wire.VersionMajor(v.Version), "minor", wire.VersionMinor(v.Version))
			o.pushDrop(s.redirect(wire.RedirectBye, 0))
			return
		}
		o.mu.Lock()
		o.ver = v.Version
		o.edge = o.edge || v.Role == wire.RoleEdge
		o.mu.Unlock()
		o.pushDrop(s.redirect(wire.RedirectWelcome, 0))
	case *wire.ClientPublish:
		o := s.getClient(from)
		if o == nil {
			return
		}
		if s.cfg.Publish == nil {
			s.mu.Lock()
			s.notWritable++
			s.mu.Unlock()
			o.pushDrop(s.redirect(wire.RedirectNotWritable, 0))
			return
		}
		s.cfg.Publish(from, v)
	case *wire.ClientSubscribe:
		s.handleSubscribe(from, v)
	}
}

// getClient returns the link state for a client, creating it (and its
// writer) on first contact. Nil after shutdown.
func (s *Server) getClient(from ProcID) *clientOut {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	o := s.clients[from]
	if o == nil {
		o = &clientOut{s: s, id: from, attached: make(map[uint64]*sub)}
		o.cond = sync.NewCond(&o.mu)
		s.clients[from] = o
		s.wg.Add(1)
		go o.writer()
	}
	return o
}

// Ack queues one PUBACK (dropped if the client's queue is full or the
// link is gone — the client's ack-timeout retry is the backpressure).
func (s *Server) Ack(cid ProcID, pubID, seq uint64) {
	s.mu.Lock()
	o := s.clients[cid]
	s.mu.Unlock()
	if o != nil {
		o.pushDrop(wire.EncodeClientPubAck(&wire.ClientPubAck{PubID: pubID, Seq: seq}))
	}
}

// NotifyAll queues a session-wide redirect to every client (view change,
// goodbye).
func (s *Server) NotifyAll(reason byte) {
	s.mu.Lock()
	clients := make([]*clientOut, 0, len(s.clients))
	for _, o := range s.clients {
		clients = append(clients, o)
	}
	s.mu.Unlock()
	for _, o := range clients {
		payload := s.redirect(reason, 0)
		if reason == wire.RedirectBye {
			o.pushForced(payload)
		} else {
			o.pushDrop(payload)
		}
	}
}

// redirect builds one REDIRECT frame from the host's current coordinates.
func (s *Server) redirect(reason byte, sub uint64) []byte {
	members, addrs, applied := s.cfg.Redirect()
	return wire.EncodeClientRedirect(&wire.ClientRedirect{
		Reason:  reason,
		Applied: applied,
		Members: members,
		Addrs:   addrs,
		Sub:     sub,
	})
}

// dropClient forgets a dead link: its subscriptions are cancelled, queued
// frames released, blocked pagers woken. The client re-HELLOs on redial.
func (s *Server) dropClient(o *clientOut) {
	s.mu.Lock()
	if s.clients[o.id] == o {
		delete(s.clients, o.id)
		delete(s.tails, o.id)
		for key, u := range s.subs {
			if key.cid == o.id {
				u.cancelLocked()
				delete(s.subs, key)
			}
		}
	}
	s.mu.Unlock()
	o.mu.Lock()
	o.dead = true
	for o.q.Len() > 0 {
		if it := o.q.PopFront(); it.tail != nil {
			it.tail.release()
		}
	}
	o.cond.Broadcast()
	o.mu.Unlock()
}

// --- Subscriptions ---------------------------------------------------------

// sub is one remote subscription. Until it catches up it is served by a
// pager goroutine; once caught up it attaches to the shared tail and the
// goroutine retires. attached and cursor-at-rest are guarded by
// Server.mu; cursor is otherwise private to the pager goroutine.
type sub struct {
	s        *Server
	key      subKey
	out      *clientOut
	cursor   uint64
	cancel   chan struct{}
	attached bool // fed by the tail (guarded by Server.mu)
	done     bool // cancel already closed (guarded by Server.mu)
}

func (u *sub) cancelLocked() {
	if !u.done {
		u.done = true
		close(u.cancel)
	}
	if u.attached {
		u.attached = false
		delete(u.out.attached, u.key.sub)
		if len(u.out.attached) == 0 {
			delete(u.s.tails, u.out.id)
		}
	}
	// Wake a pager blocked in pushWait on this link.
	u.out.mu.Lock()
	u.out.cond.Broadcast()
	u.out.mu.Unlock()
}

// handleSubscribe starts, re-homes or cancels one subscription.
func (s *Server) handleSubscribe(from ProcID, v *wire.ClientSubscribe) {
	o := s.getClient(from)
	if o == nil {
		return
	}
	key := subKey{cid: from, sub: v.SubID}
	s.mu.Lock()
	if old := s.subs[key]; old != nil {
		old.cancelLocked()
		delete(s.subs, key)
	}
	if v.Cancel {
		s.mu.Unlock()
		return
	}
	u := &sub{s: s, key: key, out: o, cancel: make(chan struct{})}
	if v.From == 0 {
		u.cursor = s.cfg.Source.Applied()
	} else {
		u.cursor = v.From - 1
	}
	s.subs[key] = u
	s.mu.Unlock()
	s.wg.Add(1)
	go u.run()
}

// run pages the committed order from the subscription's cursor until the
// subscription is cancelled, the link dies — or the pager reaches the
// applied frontier and hands the subscription to the shared tail.
func (u *sub) run() {
	defer u.s.wg.Done()
	defer u.unregister()
	src := u.s.cfg.Source
	for {
		if chanClosed(u.cancel) || chanClosed(u.s.stopc) {
			return
		}
		applied := src.Applied()
		if u.cursor >= applied {
			if u.tryAttach() {
				return // the shared tail owns the subscription now
			}
			watch := src.Watch()
			select {
			case <-watch:
			case <-time.After(keepalive):
				u.out.pushDrop(wire.EncodeClientEvent(&wire.ClientEvent{Sub: u.key.sub}))
			case <-u.cancel:
				return
			case <-u.s.stopc:
				return
			}
			continue
		}
		page, err := src.ReadCommitted(u.cursor, applied, maxPageEntries, maxPageBytes)
		if err != nil {
			return // the host is failing (disk); the client fails over
		}
		if page.BelowHorizon {
			u.out.pushForced(u.s.redirect(wire.RedirectCannotServe, u.key.sub))
			return
		}
		ev := &wire.ClientEvent{Sub: u.key.sub, Entries: page.Entries}
		if page.Snap != nil {
			ev.HasSnapshot = true
			ev.SnapSeq = page.SnapSeq
			ev.Snapshot = page.Snap
		}
		if !u.out.pushWait(wire.EncodeClientEvent(ev), u.cancel) {
			return
		}
		u.cursor = page.Cursor
	}
}

// tryAttach promotes a caught-up subscription to the shared tail: an
// ATTACH marker is queued and from then on the client folds tail frames
// into this subscription. Attachment requires the tail frontier to be at
// or behind the pager's cursor — checked under Server.mu, the same lock
// PublishTail holds — so the first tail frame after the marker is
// contiguous with (or overlaps, deduped by cursor client-side) the paged
// prefix.
func (u *sub) tryAttach() bool {
	s := u.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.subs[u.key] != u || u.done {
		return false
	}
	if s.frontier > u.cursor {
		return false // the tail ran ahead; page the gap first
	}
	if !u.out.pushForced(wire.EncodeClientEvent(&wire.ClientEvent{Sub: u.key.sub, Attach: true})) {
		return false // link dead; dropClient cancels us shortly
	}
	u.attached = true
	u.out.attached[u.key.sub] = u
	s.tails[u.out.id] = u.out
	return true
}

// unregister removes the subscription if this pager still owns it (an
// attached subscription belongs to the tail and stays registered).
func (u *sub) unregister() {
	s := u.s
	s.mu.Lock()
	if s.subs[u.key] == u && !u.attached {
		delete(s.subs, u.key)
	}
	s.mu.Unlock()
}

// --- The shared tail -------------------------------------------------------

// PublishTail fans one committed batch (entries in seq order, contiguous
// with every previous call) out to all attached clients: one encode into
// a pooled frame, one queue push per client. A client whose queue is full
// is detached — it keeps what is queued, gets a DETACH marker, and its
// subscriptions resume as pagers from the last offset enqueued, so the
// stream stays gap-free while the slow link catches up at its own pace.
//
// The host must call PublishTail from a single goroutine (the delivery
// pump / tail loop), in frontier order, after the batch is covered by
// Source.Applied.
func (s *Server) PublishTail(entries []wire.ClientEventEntry) {
	if len(entries) == 0 {
		return
	}
	last := entries[len(entries)-1].Seq
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frontier = last
	if len(s.tails) == 0 || s.closed {
		return
	}
	s.tailFrames++
	buf := wire.GetBuf()
	buf.B = wire.AppendClientEvent(buf.B[:0], &wire.ClientEvent{Tail: true, Entries: entries})
	f := &tailFrame{buf: buf, last: last}
	f.refs.Store(1) // our hold, released below
	for _, o := range s.tails {
		if !o.pushTail(f) {
			s.detachLocked(o)
		}
	}
	f.release()
}

// DetachAll demotes every attached client to pager catch-up. The host
// calls it when the committed order advanced without an entry stream (a
// snapshot transfer): the pagers serve the snapshot, then re-attach.
func (s *Server) DetachAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, o := range s.tails {
		s.detachLocked(o)
	}
}

// detachLocked demotes a client from the tail to pager catch-up. Called
// with Server.mu held.
func (s *Server) detachLocked(o *clientOut) {
	s.tailDetaches++
	delete(s.tails, o.id)
	// The DETACH marker is forced: FIFO ordering means every tail frame
	// already queued (<= tailSent) reaches the client before it, so
	// resuming the pagers from tailSent leaves no gap.
	alive := o.pushForced(wire.EncodeClientEvent(&wire.ClientEvent{Detach: true}))
	o.mu.Lock()
	resume := o.tailSent
	o.mu.Unlock()
	s.log.Warn("slow subscriber detached",
		"client", uint32(o.id), "resume_seq", resume, "subs", len(o.attached))
	for _, u := range o.attached {
		u.attached = false
		u.cursor = max(u.cursor, resume)
		delete(o.attached, u.key.sub)
		if alive {
			s.wg.Add(1)
			go u.run()
		}
	}
}

// --- Keepalive -------------------------------------------------------------

// keepaliveLoop proves liveness to attached clients: pager-served
// subscriptions get keepalives from their pager, but an attached client
// on an idle order would otherwise hear nothing and probe out.
func (s *Server) keepaliveLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(keepalive)
	defer tick.Stop()
	frame := wire.EncodeClientEvent(&wire.ClientEvent{Tail: true})
	for {
		select {
		case <-tick.C:
		case <-s.stopc:
			return
		}
		s.mu.Lock()
		outs := make([]*clientOut, 0, len(s.tails))
		for _, o := range s.tails {
			outs = append(outs, o)
		}
		s.mu.Unlock()
		for _, o := range outs {
			o.pushDrop(frame)
		}
	}
}

// --- Lifecycle & stats -----------------------------------------------------

// Shutdown stops serving: subscriptions are cancelled, writers told to
// die, queued frames dropped. It does not wait — writers may be blocked
// in a transport write; close the transport, then Wait.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.stopc)
	for _, u := range s.subs {
		u.cancelLocked()
	}
	clients := make([]*clientOut, 0, len(s.clients))
	for _, o := range s.clients {
		clients = append(clients, o)
	}
	s.mu.Unlock()
	for _, o := range clients {
		o.mu.Lock()
		o.dead = true
		for o.q.Len() > 0 {
			if it := o.q.PopFront(); it.tail != nil {
				it.tail.release()
			}
		}
		o.cond.Broadcast()
		o.mu.Unlock()
	}
}

// Wait joins the server's goroutines. Call after Shutdown — and after
// closing the transport, which unblocks writers stuck in socket writes.
func (s *Server) Wait() { s.wg.Wait() }

// Stats returns a point-in-time census.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Clients:      len(s.clients),
		Subs:         len(s.subs),
		TailFrames:   s.tailFrames,
		TailDetaches: s.tailDetaches,
		NotWritable:  s.notWritable,
	}
	for _, o := range s.clients {
		st.TailAttached += len(o.attached)
		o.mu.Lock()
		if o.edge {
			st.EdgeClients++
		}
		o.mu.Unlock()
	}
	return st
}
