package serve

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"fsr/internal/wire"
	"fsr/transport"
)

// fakeSource is an in-memory committed order for driving the server.
type fakeSource struct {
	mu      sync.Mutex
	applied uint64
	entries []wire.ClientEventEntry // seqs 1..applied
	watch   chan struct{}
}

func newFakeSource() *fakeSource {
	return &fakeSource{watch: make(chan struct{})}
}

func (f *fakeSource) Applied() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

func (f *fakeSource) Watch() <-chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.watch
}

func (f *fakeSource) ReadCommitted(cursor, applied uint64, maxEntries, maxBytes int) (Page, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	page := Page{Cursor: applied}
	for i := int(cursor); i < len(f.entries) && len(page.Entries) < maxEntries; i++ {
		page.Entries = append(page.Entries, f.entries[i])
	}
	if n := len(page.Entries); n > 0 && page.Entries[n-1].Seq > page.Cursor {
		page.Cursor = page.Entries[n-1].Seq
	}
	return page, nil
}

// add commits n new entries and returns them (for PublishTail).
func (f *fakeSource) add(n int, payload []byte) []wire.ClientEventEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	start := len(f.entries)
	for i := 0; i < n; i++ {
		f.entries = append(f.entries, wire.ClientEventEntry{
			Seq:     uint64(len(f.entries) + 1),
			Origin:  1,
			Logical: uint64(len(f.entries) + 1),
			Payload: payload,
		})
	}
	f.applied = uint64(len(f.entries))
	close(f.watch)
	f.watch = make(chan struct{})
	return f.entries[start:]
}

// fakeTransport records every frame per destination (copies, since batch
// buffers are pooled) and can block writes to chosen destinations.
type fakeTransport struct {
	batch bool // expose SendBatch

	mu     sync.Mutex
	frames map[ProcID][][]byte
	gate   map[ProcID]chan struct{} // writes to this dest block until closed
}

func newFakeTransport(batch bool) *fakeTransport {
	return &fakeTransport{
		batch:  batch,
		frames: make(map[ProcID][][]byte),
		gate:   make(map[ProcID]chan struct{}),
	}
}

func (t *fakeTransport) Self() ProcID                 { return 0 }
func (t *fakeTransport) SetHandler(transport.Handler) {}
func (t *fakeTransport) Close() error                 { return nil }
func (t *fakeTransport) block(to ProcID) chan struct{} {
	ch := make(chan struct{})
	t.mu.Lock()
	t.gate[to] = ch
	t.mu.Unlock()
	return ch
}

func (t *fakeTransport) record(to ProcID, payload []byte) {
	t.mu.Lock()
	gate := t.gate[to]
	t.mu.Unlock()
	if gate != nil {
		<-gate
	}
	t.mu.Lock()
	t.frames[to] = append(t.frames[to], append([]byte(nil), payload...))
	t.mu.Unlock()
}

func (t *fakeTransport) Send(to ProcID, payload []byte) error {
	t.record(to, payload)
	return nil
}

func (t *fakeTransport) sent(to ProcID) [][]byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([][]byte(nil), t.frames[to]...)
}

// batchTransport adds SendBatch (the zero-copy hot path).
type batchTransport struct{ *fakeTransport }

func (t batchTransport) SendBatch(to ProcID, payloads [][]byte) error {
	for _, p := range payloads {
		t.record(to, p)
	}
	return nil
}

func newServer(t *testing.T, tr transport.Transport, src Source, queueCap int) *Server {
	t.Helper()
	s := New(Config{
		Transport: tr,
		Source:    src,
		Publish:   func(from ProcID, p *wire.ClientPublish) {},
		Redirect:  func() ([]ProcID, []string, uint64) { return []ProcID{0, 1, 2}, nil, src.Applied() },
		QueueCap:  queueCap,
	})
	t.Cleanup(func() {
		s.Shutdown()
		s.Wait()
	})
	return s
}

func subscribe(s *Server, cid ProcID, from uint64) {
	s.Handle(cid, wire.EncodeClientHello(&wire.ClientHello{}))
	s.Handle(cid, wire.EncodeClientSubscribe(&wire.ClientSubscribe{SubID: 1, From: from}))
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// tailFrames filters a client's recorded frames down to non-empty shared
// tail batches.
func tailFramesOf(t *testing.T, frames [][]byte) [][]byte {
	t.Helper()
	var out [][]byte
	for _, f := range frames {
		msg, err := wire.DecodeClient(f)
		if err != nil {
			t.Fatalf("recorded frame does not decode: %v", err)
		}
		if ev, ok := msg.(*wire.ClientEvent); ok && ev.Tail && len(ev.Entries) > 0 {
			out = append(out, f)
		}
	}
	return out
}

// TestTailFramesByteIdentical is the encode-once contract: every attached
// subscriber receives the exact same frame bytes for each committed batch.
func TestTailFramesByteIdentical(t *testing.T) {
	for _, batch := range []bool{true, false} {
		t.Run(fmt.Sprintf("batch=%v", batch), func(t *testing.T) {
			ft := newFakeTransport(batch)
			var tr transport.Transport = ft
			if batch {
				tr = batchTransport{ft}
			}
			src := newFakeSource()
			s := newServer(t, tr, src, 0)

			clients := []ProcID{101, 102, 103, 104}
			for _, cid := range clients {
				subscribe(s, cid, 1)
			}
			waitFor(t, "all subscribers attached", func() bool {
				return s.Stats().TailAttached == len(clients)
			})
			const batches = 5
			for i := 0; i < batches; i++ {
				s.PublishTail(src.add(3, []byte("payload-of-the-batch")))
			}
			waitFor(t, "all tail frames delivered", func() bool {
				for _, cid := range clients {
					if len(tailFramesOf(t, ft.sent(cid))) < batches {
						return false
					}
				}
				return true
			})
			ref := tailFramesOf(t, ft.sent(clients[0]))
			for _, cid := range clients[1:] {
				got := tailFramesOf(t, ft.sent(cid))
				if len(got) != len(ref) {
					t.Fatalf("client %d: %d tail frames, want %d", cid, len(got), len(ref))
				}
				for i := range ref {
					if !bytes.Equal(ref[i], got[i]) {
						t.Fatalf("client %d: tail frame %d differs from client %d's", cid, i, clients[0])
					}
				}
			}
		})
	}
}

// discardTransport supports batches and drops everything — the alloc
// measurement must not count recording overhead.
type discardTransport struct{}

func (discardTransport) Self() ProcID                     { return 0 }
func (discardTransport) Send(ProcID, []byte) error        { return nil }
func (discardTransport) SendBatch(ProcID, [][]byte) error { return nil }
func (discardTransport) SetHandler(transport.Handler)     {}
func (discardTransport) Close() error                     { return nil }

// measureTailAllocs reports allocations per PublishTail call with k
// attached subscribers.
func measureTailAllocs(t *testing.T, k int) float64 {
	t.Helper()
	src := newFakeSource()
	s := newServer(t, discardTransport{}, src, 1<<16)
	for i := 0; i < k; i++ {
		subscribe(s, ProcID(200+i), 1)
	}
	waitFor(t, "subscribers attached", func() bool { return s.Stats().TailAttached == k })
	payload := bytes.Repeat([]byte("x"), 256)
	// Warm the pools, the per-client deques and the writers' scratch.
	for i := 0; i < 64; i++ {
		s.PublishTail(src.add(1, payload))
	}
	time.Sleep(50 * time.Millisecond) // let writers drain and retire buffers
	return testing.AllocsPerRun(200, func() {
		s.PublishTail(src.add(1, payload))
	})
}

// TestTailFanoutAllocs is the regression gate for the encode-once hot
// path: the allocations per committed offset must not grow with the
// number of attached subscribers (the per-subscriber cost is one queue
// push into a preallocated deque).
func TestTailFanoutAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement")
	}
	one := measureTailAllocs(t, 1)
	eight := measureTailAllocs(t, 8)
	t.Logf("allocs per offset: 1 subscriber=%.1f, 8 subscribers=%.1f", one, eight)
	// Slack of 2 covers scheduler noise from the concurrent writers; the
	// failure mode being guarded (per-subscriber encode or copy) would
	// add at least 7.
	if eight > one+2 {
		t.Fatalf("fan-out allocates per subscriber: %.1f allocs with 8 subs vs %.1f with 1", eight, one)
	}
}

// TestSlowSubscriberIsolation: a subscriber whose socket stalls is
// detached once its bounded queue fills, without delaying PublishTail or
// the other subscribers — and catches back up gap-free when it drains.
func TestSlowSubscriberIsolation(t *testing.T) {
	ft := newFakeTransport(false)
	src := newFakeSource()
	s := newServer(t, ft, src, 8)

	const fast, slow = ProcID(301), ProcID(302)
	subscribe(s, fast, 1)
	subscribe(s, slow, 1)
	waitFor(t, "both subscribers attached", func() bool { return s.Stats().TailAttached == 2 })

	gate := ft.block(slow)
	const total = 64
	for i := 0; i < total; i++ {
		start := time.Now()
		s.PublishTail(src.add(1, []byte("steady-stream")))
		if d := time.Since(start); d > time.Second {
			t.Fatalf("PublishTail blocked %v behind a stalled subscriber", d)
		}
	}
	// The fast subscriber streams on while the slow one is wedged...
	waitFor(t, "fast subscriber fully served", func() bool {
		return lastSeq(t, ft.sent(fast)) == total
	})
	// ...and the slow one has been demoted rather than buffered forever.
	if st := s.Stats(); st.TailDetaches == 0 {
		t.Fatalf("stalled subscriber was never detached: %+v", st)
	}
	// Unblock it: pager catch-up must close the gap and re-attach.
	close(gate)
	waitFor(t, "slow subscriber caught up", func() bool {
		return lastSeq(t, ft.sent(slow)) == total
	})
	assertGapFree(t, ft.sent(slow), total)
	waitFor(t, "slow subscriber re-attached", func() bool { return s.Stats().TailAttached == 2 })
}

// lastSeq returns the highest entry seq across a client's recorded EVENT
// frames.
func lastSeq(t *testing.T, frames [][]byte) uint64 {
	t.Helper()
	var last uint64
	for _, f := range frames {
		msg, err := wire.DecodeClient(f)
		if err != nil {
			t.Fatalf("recorded frame does not decode: %v", err)
		}
		if ev, ok := msg.(*wire.ClientEvent); ok {
			for i := range ev.Entries {
				last = max(last, ev.Entries[i].Seq)
			}
		}
	}
	return last
}

// assertGapFree folds a client's frames the way the session client does —
// cursor dedup across tail and pager streams — and requires every offset
// 1..total exactly once.
func assertGapFree(t *testing.T, frames [][]byte, total uint64) {
	t.Helper()
	var cursor uint64
	for _, f := range frames {
		msg, err := wire.DecodeClient(f)
		if err != nil {
			t.Fatalf("recorded frame does not decode: %v", err)
		}
		ev, ok := msg.(*wire.ClientEvent)
		if !ok {
			continue
		}
		for i := range ev.Entries {
			seq := ev.Entries[i].Seq
			if seq <= cursor {
				continue // overlap, deduped by the client's cursor
			}
			if seq != cursor+1 {
				t.Fatalf("gap in subscriber stream: cursor %d, next entry %d", cursor, seq)
			}
			cursor = seq
		}
	}
	if cursor != total {
		t.Fatalf("subscriber stream ends at %d, want %d", cursor, total)
	}
}
