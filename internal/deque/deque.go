// Package deque provides a growable ring-buffer double-ended queue.
//
// It replaces the append/copy slice queues on the protocol hot path: both
// PushBack and PopFront are amortized O(1) with no per-element allocation
// and no O(n) splice, and the backing array is reused across fill/drain
// cycles, so a steady-state queue allocates nothing at all.
package deque

// Deque is a FIFO/LIFO queue over a power-of-two ring buffer. The zero
// value is an empty, ready-to-use deque.
type Deque[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // number of elements
}

const minCap = 8

// Len returns the number of queued elements.
func (d *Deque[T]) Len() int { return d.n }

// PushBack appends v at the tail.
func (d *Deque[T]) PushBack(v T) {
	d.grow()
	d.buf[(d.head+d.n)&(len(d.buf)-1)] = v
	d.n++
}

// PushFront prepends v at the head.
func (d *Deque[T]) PushFront(v T) {
	d.grow()
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = v
	d.n++
}

// PopFront removes and returns the front element. It panics on an empty
// deque (protocol queues are always length-checked first).
func (d *Deque[T]) PopFront() T {
	if d.n == 0 {
		panic("deque: PopFront on empty deque")
	}
	v := d.buf[d.head]
	var zero T
	d.buf[d.head] = zero // release references for the GC
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	return v
}

// Front returns a pointer to the front element without removing it. It
// panics on an empty deque.
func (d *Deque[T]) Front() *T {
	if d.n == 0 {
		panic("deque: Front on empty deque")
	}
	return &d.buf[d.head]
}

// At returns a pointer to the i-th element from the front (0 = front).
func (d *Deque[T]) At(i int) *T {
	if i < 0 || i >= d.n {
		panic("deque: index out of range")
	}
	return &d.buf[(d.head+i)&(len(d.buf)-1)]
}

// Clear empties the deque, zeroing the stored elements (so held references
// are released) while keeping the backing array for reuse.
func (d *Deque[T]) Clear() {
	var zero T
	for i := 0; i < d.n; i++ {
		d.buf[(d.head+i)&(len(d.buf)-1)] = zero
	}
	d.head, d.n = 0, 0
}

// grow doubles the ring when full (or allocates the first buffer).
func (d *Deque[T]) grow() {
	if d.n < len(d.buf) {
		return
	}
	c := len(d.buf) * 2
	if c < minCap {
		c = minCap
	}
	buf := make([]T, c)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)&(len(d.buf)-1)]
	}
	d.buf, d.head = buf, 0
}
