package deque

import (
	"math/rand"
	"testing"
)

func TestFIFO(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 1000; i++ {
		d.PushBack(i)
	}
	if d.Len() != 1000 {
		t.Fatalf("len = %d", d.Len())
	}
	for i := 0; i < 1000; i++ {
		if got := d.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("len after drain = %d", d.Len())
	}
}

func TestPushFront(t *testing.T) {
	var d Deque[int]
	d.PushBack(2)
	d.PushFront(1)
	d.PushBack(3)
	d.PushFront(0)
	for i := 0; i < 4; i++ {
		if got := d.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
}

func TestWrapAround(t *testing.T) {
	var d Deque[int]
	// Interleave pushes and pops so head walks around the ring many times.
	next, expect := 0, 0
	for round := 0; round < 500; round++ {
		for i := 0; i < 3; i++ {
			d.PushBack(next)
			next++
		}
		for i := 0; i < 2; i++ {
			if got := d.PopFront(); got != expect {
				t.Fatalf("round %d: PopFront = %d, want %d", round, got, expect)
			}
			expect++
		}
	}
	for d.Len() > 0 {
		if got := d.PopFront(); got != expect {
			t.Fatalf("drain: PopFront = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d, pushed %d", expect, next)
	}
}

func TestFrontAt(t *testing.T) {
	var d Deque[string]
	d.PushBack("a")
	d.PushBack("b")
	d.PushBack("c")
	if *d.Front() != "a" {
		t.Fatalf("Front = %q", *d.Front())
	}
	if *d.At(2) != "c" {
		t.Fatalf("At(2) = %q", *d.At(2))
	}
	*d.At(1) = "B"
	if got := d.PopFront(); got != "a" {
		t.Fatalf("PopFront = %q", got)
	}
	if got := d.PopFront(); got != "B" {
		t.Fatalf("in-place edit lost: %q", got)
	}
}

func TestClearKeepsCapacity(t *testing.T) {
	var d Deque[*int]
	x := 7
	for i := 0; i < 100; i++ {
		d.PushBack(&x)
	}
	capBefore := len(d.buf)
	d.Clear()
	if d.Len() != 0 {
		t.Fatalf("len after Clear = %d", d.Len())
	}
	for _, p := range d.buf {
		if p != nil {
			t.Fatal("Clear left a live reference in the ring")
		}
	}
	d.PushBack(&x)
	if len(d.buf) != capBefore {
		t.Fatalf("Clear dropped the backing array: cap %d -> %d", capBefore, len(d.buf))
	}
}

func TestAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var d Deque[int]
	var ref []int
	for op := 0; op < 20000; op++ {
		switch r := rng.Intn(4); {
		case r == 0 && len(ref) > 0:
			got, want := d.PopFront(), ref[0]
			ref = ref[1:]
			if got != want {
				t.Fatalf("op %d: PopFront = %d, want %d", op, got, want)
			}
		case r == 1:
			v := rng.Int()
			d.PushFront(v)
			ref = append([]int{v}, ref...)
		default:
			v := rng.Int()
			d.PushBack(v)
			ref = append(ref, v)
		}
		if d.Len() != len(ref) {
			t.Fatalf("op %d: len %d != ref %d", op, d.Len(), len(ref))
		}
	}
	for i, want := range ref {
		if got := d.PopFront(); got != want {
			t.Fatalf("drain %d: %d != %d", i, got, want)
		}
	}
}

func TestEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PopFront on empty deque did not panic")
		}
	}()
	var d Deque[int]
	d.PopFront()
}

func BenchmarkPushPop(b *testing.B) {
	var d Deque[[16]byte]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushBack([16]byte{})
		d.PopFront()
	}
}
