package wire

import (
	"bytes"
	"testing"

	"fsr/internal/ring"
)

// FuzzDecodeFrame throws arbitrary bytes at every decoder the node routes
// transport payloads to — ring frames and the catch-up request/response
// codec. Decoding untrusted input must never panic (errors are fine); a
// crash here would let one corrupt peer take down the whole group.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(EncodeFrame(sampleFrame()))
	f.Add(EncodeFrame(&Frame{ViewID: 1}))
	// A batched hot-path frame as the live engine now emits it: several
	// data segments per frame (relayed pass-B traffic of distinct origins,
	// a multi-part message straddling the batch, one pass-A segment) plus
	// piggybacked acks. Before engine-side batching the corpus never saw a
	// frame with more than one DataItem coming from real traffic.
	f.Add(EncodeFrame(&Frame{
		ViewID: 4,
		Data: []DataItem{
			{ID: MsgID{Origin: 2, Local: 11}, Seq: 31, Part: 0, Parts: 1, Body: []byte("relay-b")},
			{ID: MsgID{Origin: 3, Local: 7}, Seq: 32, Part: 0, Parts: 3, Body: []byte("part-0")},
			{ID: MsgID{Origin: 3, Local: 8}, Seq: 33, Part: 1, Parts: 3, Body: []byte("part-1")},
			{ID: MsgID{Origin: 3, Local: 9}, Seq: 34, Part: 2, Parts: 3, Body: []byte("part-2")},
			{ID: MsgID{Origin: 5, Local: 0}, Seq: 0, Part: 0, Parts: 1, Body: []byte("pass-a")},
		},
		Acks: []AckItem{
			{ID: MsgID{Origin: 2, Local: 10}, Seq: 30, Hops: 4, Stable: true},
			{ID: MsgID{Origin: 4, Local: 2}, Seq: 29, Hops: 1, Stable: false},
		},
	}))
	f.Add(EncodeCatchupReq(&CatchupReq{After: 10, UpTo: 500}))
	f.Add(EncodeCatchupResp(&CatchupResp{Unavailable: true}))
	f.Add(EncodeCatchupResp(&CatchupResp{
		HasSnapshot: true,
		SnapSeq:     77,
		Snapshot:    []byte("snapshot-bytes"),
		More:        true,
		Entries: []CatchupEntry{
			{Seq: 78, Origin: 4, LogicalID: 12, Payload: []byte("entry")},
		},
	}))
	// Client sub-protocol corpus: every message type a member or client
	// routes through DecodeClient, plus forged-count shapes.
	f.Add(EncodeClientHello(&ClientHello{MaxEventBytes: 1 << 16}))
	f.Add(EncodeClientPublish(&ClientPublish{PubID: 3, Payload: []byte("pub")}))
	f.Add(EncodeClientPubAck(&ClientPubAck{PubID: 3, Seq: 41}))
	f.Add(EncodeClientSubscribe(&ClientSubscribe{SubID: 1, From: 7}))
	f.Add(EncodeClientEvent(&ClientEvent{Sub: 1, Entries: []ClientEventEntry{
		{Seq: 8, Origin: 1<<31 + 9, Logical: 2, Payload: []byte("ev")},
	}}))
	f.Add(EncodeClientEvent(&ClientEvent{Sub: 1, HasSnapshot: true, SnapSeq: 6, Snapshot: []byte("snap")}))
	f.Add(EncodeClientRedirect(&ClientRedirect{Reason: RedirectView, Applied: 10, Members: []ring.ProcID{1, 2, 3}}))
	f.Add([]byte{KindClient, clientEvent, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{KindFSR})
	f.Add([]byte{KindCatchup, 2, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})
	// Version-skew corpus: frames stamped with a future minor (must decode)
	// and a future major (must be refused as ErrVersion, not crash), plus
	// the bare two-byte prefix of each.
	futureMinor := EncodeFrame(sampleFrame())
	futureMinor[1] = MakeVersion(ProtoMajor, 15)
	f.Add(futureMinor)
	futureMajor := EncodeFrame(sampleFrame())
	futureMajor[1] = MakeVersion(ProtoMajor+1, 0)
	f.Add(futureMajor)
	f.Add([]byte{KindFSR, MakeVersion(ProtoMajor+1, 3)})
	// A 1.0-era HELLO and welcome: no trailing version byte.
	oldHello := EncodeClientHello(&ClientHello{MaxEventBytes: 1 << 16})
	f.Add(oldHello[:len(oldHello)-1])
	oldWelcome := EncodeClientRedirect(&ClientRedirect{Reason: RedirectWelcome, Applied: 5})
	f.Add(oldWelcome[:len(oldWelcome)-1])
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := DecodeFrame(b)
		if err == nil && fr == nil {
			t.Fatal("DecodeFrame: nil frame without error")
		}
		// The pooled decoder must agree with the allocating one on both
		// acceptance and content, including when reusing a dirty frame.
		reused := GetFrame()
		err2 := DecodeFrameInto(reused, b)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("DecodeFrame err=%v, DecodeFrameInto err=%v", err, err2)
		}
		if err == nil {
			if fr.ViewID != reused.ViewID || len(fr.Data) != len(reused.Data) || len(fr.Acks) != len(reused.Acks) {
				t.Fatalf("decoders disagree: %+v vs %+v", fr, reused)
			}
			// Compare item contents too: the dirty-frame-reuse bugs
			// DecodeFrameInto risks are exactly stale fields/bodies
			// surviving with matching counts.
			for i := range fr.Data {
				a, c := &fr.Data[i], &reused.Data[i]
				if a.ID != c.ID || a.Seq != c.Seq || a.Part != c.Part ||
					a.Parts != c.Parts || !bytes.Equal(a.Body, c.Body) {
					t.Fatalf("data[%d] disagree: %+v vs %+v", i, a, c)
				}
			}
			for i := range fr.Acks {
				if fr.Acks[i] != reused.Acks[i] {
					t.Fatalf("ack[%d] disagree: %+v vs %+v", i, fr.Acks[i], reused.Acks[i])
				}
			}
		}
		PutFrame(reused)
		if m, err := DecodeCatchup(b); err == nil && m == nil {
			t.Fatal("DecodeCatchup: nil message without error")
		}
		if m, err := DecodeClient(b); err == nil && m == nil {
			t.Fatal("DecodeClient: nil message without error")
		}
	})
}
