package wire

import "testing"

// FuzzDecodeFrame throws arbitrary bytes at every decoder the node routes
// transport payloads to — ring frames and the catch-up request/response
// codec. Decoding untrusted input must never panic (errors are fine); a
// crash here would let one corrupt peer take down the whole group.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(EncodeFrame(sampleFrame()))
	f.Add(EncodeFrame(&Frame{ViewID: 1}))
	f.Add(EncodeCatchupReq(&CatchupReq{After: 10, UpTo: 500}))
	f.Add(EncodeCatchupResp(&CatchupResp{Unavailable: true}))
	f.Add(EncodeCatchupResp(&CatchupResp{
		HasSnapshot: true,
		SnapSeq:     77,
		Snapshot:    []byte("snapshot-bytes"),
		More:        true,
		Entries: []CatchupEntry{
			{Seq: 78, Origin: 4, LogicalID: 12, Payload: []byte("entry")},
		},
	}))
	f.Add([]byte{KindFSR})
	f.Add([]byte{KindCatchup, 2, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		if fr, err := DecodeFrame(b); err == nil && fr == nil {
			t.Fatal("DecodeFrame: nil frame without error")
		}
		if m, err := DecodeCatchup(b); err == nil && m == nil {
			t.Fatal("DecodeCatchup: nil message without error")
		}
	})
}
