package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Admin sub-protocol (KindAdmin).
//
// Operators query members and edges over the same transport clients use: an
// fsr-admin process dials a node with a client-space ID, sends one AdminReq,
// and reads one AdminResp. The envelope is the usual hand-rolled framing —
// kind byte, message type, op — but the response body is JSON: admin traffic
// is rare, human-initiated, and schema-evolving, so self-describing bodies
// beat another fixed binary layout. The envelope keeps dispatch allocation-
// free on the node side; the JSON is only ever built off the frame hot path.

// Admin operations (the Op field of AdminReq/AdminResp).
const (
	AdminStatus   byte = iota + 1 // node/edge role, view, applied seq, readiness
	AdminMembers                  // installed view membership
	AdminWAL                      // durable-log stats
	AdminSessions                 // client-session and subscriber counts
	AdminSnapshot                 // trigger a state-machine snapshot
	AdminEvict                    // force a member out of the view (Target)
	AdminJoinHint                 // hand an unadmitted joiner contacts to join through
)

// Admin message types (second byte of a KindAdmin payload).
const (
	adminReq byte = iota + 1
	adminResp
)

// ErrBadAdmin reports an undecodable admin payload.
var ErrBadAdmin = errors.New("wire: bad admin payload")

// AdminReq asks the receiving process for one piece of operator state, or
// (AdminEvict, AdminJoinHint) one membership action.
type AdminReq struct {
	Op byte
	// Target is the member to force out (AdminEvict only).
	Target uint32
	// Contacts are member IDs a joiner should request admission through
	// (AdminJoinHint only).
	Contacts []uint32
}

// AdminResp answers one AdminReq. Body is a JSON document whose schema is
// fixed per Op (package admin defines the Go types); Err carries a refusal
// (unknown op, unsupported on this role) instead of a body.
type AdminResp struct {
	Op   byte
	Err  string
	Body []byte
}

// EncodeAdminReq serializes q, prefixed with KindAdmin. Requests without a
// target or contacts keep the original three-byte form, so the common query
// ops stay byte-identical to what 1.0-era processes expect; the membership
// ops carry a tail only those builds that know the ops can decode anyway.
func EncodeAdminReq(q *AdminReq) []byte {
	if q.Target == 0 && len(q.Contacts) == 0 {
		return []byte{KindAdmin, adminReq, q.Op}
	}
	buf := make([]byte, 0, 3+4+2+4*len(q.Contacts))
	buf = append(buf, KindAdmin, adminReq, q.Op)
	buf = binary.LittleEndian.AppendUint32(buf, q.Target)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(q.Contacts)))
	for _, c := range q.Contacts {
		buf = binary.LittleEndian.AppendUint32(buf, c)
	}
	return buf
}

// EncodeAdminResp serializes p, prefixed with KindAdmin.
func EncodeAdminResp(p *AdminResp) []byte {
	buf := make([]byte, 0, 3+4+len(p.Err)+4+len(p.Body))
	buf = append(buf, KindAdmin, adminResp, p.Op)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Err)))
	buf = append(buf, p.Err...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Body)))
	buf = append(buf, p.Body...)
	return buf
}

// DecodeAdmin parses a KindAdmin payload into *AdminReq or *AdminResp. Like
// the other decoders it never panics on arbitrary bytes; the response body
// aliases buf.
func DecodeAdmin(buf []byte) (any, error) {
	r := reader{buf: buf}
	kind, err := r.u8()
	if err != nil {
		return nil, err
	}
	if kind != KindAdmin {
		return nil, fmt.Errorf("%w: kind %d", ErrBadAdmin, kind)
	}
	typ, err := r.u8()
	if err != nil {
		return nil, err
	}
	switch typ {
	case adminReq:
		var q AdminReq
		if q.Op, err = r.u8(); err != nil {
			return nil, err
		}
		if r.rem() == 0 {
			return &q, nil // the original three-byte request
		}
		if q.Target, err = r.u32(); err != nil {
			return nil, err
		}
		n, err := r.u16()
		if err != nil {
			return nil, err
		}
		for range n {
			c, err := r.u32()
			if err != nil {
				return nil, err
			}
			q.Contacts = append(q.Contacts, c)
		}
		if r.rem() != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadAdmin, r.rem())
		}
		return &q, nil
	case adminResp:
		var p AdminResp
		if p.Op, err = r.u8(); err != nil {
			return nil, err
		}
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		es, err := r.bytes(int(n))
		if err != nil {
			return nil, err
		}
		p.Err = string(es)
		if n, err = r.u32(); err != nil {
			return nil, err
		}
		if p.Body, err = r.bytes(int(n)); err != nil {
			return nil, err
		}
		if r.rem() != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadAdmin, r.rem())
		}
		return &p, nil
	default:
		return nil, fmt.Errorf("%w: type %d", ErrBadAdmin, typ)
	}
}
