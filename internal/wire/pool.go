package wire

import "sync"

// Pooled frames and scratch buffers for the hot frame path. One ring hop
// costs one decode (inbound) and one encode (outbound); both run through
// these pools so a steady-state node allocates nothing per frame:
//
//	inbound:  f := GetFrame(); DecodeFrameInto(f, payload); ...; PutFrame(f)
//	outbound: b := GetBuf();   b.B = AppendFrame(b.B, f); send; PutBuf(b)
//
// Only the Frame struct, its item slices and the encode scratch space are
// pooled — the payload buffer backing decoded bodies is owned by the
// protocol layer for as long as any segment body lives (the engine retains
// bodies until delivery and recovery-buffer eviction), so inbound payloads
// are never recycled here.

var framePool = sync.Pool{New: func() any { return &Frame{} }}

// GetFrame returns an empty frame whose Data/Acks capacity is reused from
// earlier decodes.
func GetFrame() *Frame {
	return framePool.Get().(*Frame)
}

// PutFrame recycles f. The caller must not retain f or its item slices;
// body references are dropped here so pooling never pins payload buffers.
func PutFrame(f *Frame) {
	clear(f.Data)
	clear(f.Acks)
	f.Data = f.Data[:0]
	f.Acks = f.Acks[:0]
	f.ViewID = 0
	f.Ver = 0
	framePool.Put(f)
}

// Buf is one pooled encode buffer. It wraps the slice so growing it inside
// AppendFrame updates the pooled object in place and the Get/Put round
// trip allocates nothing.
type Buf struct{ B []byte }

var bufPool = sync.Pool{New: func() any { return &Buf{B: make([]byte, 0, 4096)} }}

// GetBuf returns a pooled buffer with empty length and reusable capacity.
func GetBuf() *Buf {
	b := bufPool.Get().(*Buf)
	b.B = b.B[:0]
	return b
}

// PutBuf recycles a buffer. The caller must not use b (or aliases of b.B)
// afterwards.
func PutBuf(b *Buf) {
	bufPool.Put(b)
}
