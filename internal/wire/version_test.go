package wire

import (
	"errors"
	"testing"
)

func TestVersionHelpers(t *testing.T) {
	if v := MakeVersion(1, 1); VersionMajor(v) != 1 || VersionMinor(v) != 1 {
		t.Fatalf("MakeVersion(1,1) = %#x", v)
	}
	if v := MakeVersion(15, 15); VersionMajor(v) != 15 || VersionMinor(v) != 15 {
		t.Fatalf("MakeVersion(15,15) = %#x", v)
	}
	if CurrentVersion != MakeVersion(ProtoMajor, ProtoMinor) {
		t.Fatalf("CurrentVersion %#x does not match ProtoMajor/ProtoMinor", CurrentVersion)
	}
	// Zero is the pre-versioning wildcard: encoders stamp it to Current,
	// decoders accept it.
	if !CompatibleVersion(0) {
		t.Fatal("version 0 must be compatible")
	}
	// Any minor under our major interops, both directions.
	for minor := 0; minor <= 15; minor++ {
		if !CompatibleVersion(MakeVersion(ProtoMajor, minor)) {
			t.Fatalf("same-major minor %d rejected", minor)
		}
	}
	// A different major does not.
	if CompatibleVersion(MakeVersion(ProtoMajor+1, 0)) {
		t.Fatal("future major accepted")
	}
}

// TestFrameVersionNegotiation pins the frame-level compat policy: the
// version byte rides every frame, same-major frames of any minor decode
// (future minors included — their senders only add optional behavior),
// and a foreign major is refused with ErrVersion so the receiving node
// can skip the frame instead of fail-stopping on "corruption".
func TestFrameVersionNegotiation(t *testing.T) {
	fr := &Frame{ViewID: 3, Data: []DataItem{
		{ID: MsgID{Origin: 1, Local: 2}, Seq: 9, Parts: 1, Body: []byte("x")},
	}}
	buf := EncodeFrame(fr)

	// Encoders stamp the zero Ver to CurrentVersion on the wire.
	if buf[1] != CurrentVersion {
		t.Fatalf("encoded version byte %#x, want %#x", buf[1], CurrentVersion)
	}
	got, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ver != CurrentVersion {
		t.Fatalf("decoded Ver %#x, want %#x", got.Ver, CurrentVersion)
	}

	// An explicit previous-minor version is preserved, not normalized: the
	// receiver may want to know what its peer actually speaks.
	fr.Ver = PrevVersion
	got, err = DecodeFrame(EncodeFrame(fr))
	if err != nil {
		t.Fatal(err)
	}
	if got.Ver != PrevVersion {
		t.Fatalf("decoded Ver %#x, want %#x", got.Ver, PrevVersion)
	}

	// A future minor of our major decodes fine.
	future := append([]byte(nil), buf...)
	future[1] = MakeVersion(ProtoMajor, 15)
	if _, err := DecodeFrame(future); err != nil {
		t.Fatalf("future minor rejected: %v", err)
	}

	// A foreign major is ErrVersion — from both decoders.
	alien := append([]byte(nil), buf...)
	alien[1] = MakeVersion(ProtoMajor+1, 0)
	if _, err := DecodeFrame(alien); !errors.Is(err, ErrVersion) {
		t.Fatalf("foreign major: err = %v, want ErrVersion", err)
	}
	reused := GetFrame()
	defer PutFrame(reused)
	if err := DecodeFrameInto(reused, alien); !errors.Is(err, ErrVersion) {
		t.Fatalf("foreign major (pooled): err = %v, want ErrVersion", err)
	}
}

// TestLegacyClientHelloDecodes drives the 1.0 client handshake by hand:
// those encoders predate the trailing version byte, so the decoder must
// treat its absence as wire version 1.0 — an old fsr-pub against a new
// member keeps working, and a new client can spot an old server from its
// welcome.
func TestLegacyClientHelloDecodes(t *testing.T) {
	// A current HELLO minus its trailing version byte is byte-identical to
	// what a 1.0 client sends.
	h := &ClientHello{MaxEventBytes: 1 << 20, Role: RoleEdge}
	legacy := EncodeClientHello(h)
	legacy = legacy[:len(legacy)-1]
	v, err := DecodeClient(legacy)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*ClientHello)
	if !ok {
		t.Fatalf("decoded %T", v)
	}
	if got.Version != MakeVersion(1, 0) {
		t.Fatalf("legacy HELLO decoded as version %#x, want 1.0", got.Version)
	}
	if got.MaxEventBytes != h.MaxEventBytes || got.Role != h.Role {
		t.Fatalf("legacy HELLO fields lost: %+v", got)
	}

	// Same for the server's welcome/redirect.
	r := &ClientRedirect{Reason: RedirectWelcome, Applied: 7}
	legacyR := EncodeClientRedirect(r)
	legacyR = legacyR[:len(legacyR)-1]
	v, err = DecodeClient(legacyR)
	if err != nil {
		t.Fatal(err)
	}
	gotR, ok := v.(*ClientRedirect)
	if !ok {
		t.Fatalf("decoded %T", v)
	}
	if gotR.Version != MakeVersion(1, 0) {
		t.Fatalf("legacy redirect decoded as version %#x, want 1.0", gotR.Version)
	}
}
