package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"fsr/internal/ring"
)

// Client sub-protocol (KindClient payloads).
//
// Clients are NOT ring members: they use the total order without being part
// of the ordering core. A client speaks this small request/response
// vocabulary to any one group member over the ordinary transport; the
// member broadcasts on the client's behalf and streams the committed order
// back. The client's transport identity (the ProcID it handshakes with) IS
// its client ID — frames therefore never repeat it.
//
// Message types (second byte of a KindClient payload):
//
//	HELLO     client → member  announce/refresh a session
//	PUBLISH   client → member  submit one payload, client-assigned PubID
//	PUBACK    member → client  the publish is committed (durable) at Seq
//	SUBSCRIBE client → member  stream the committed order from an offset
//	EVENT     member → client  one page of the order (or snapshot/keepalive)
//	REDIRECT  member → client  welcome / view changed / cannot serve
//
// PubIDs are assigned by the client, consecutively from 1, so a publish
// retried across a member crash or redirect is idempotent: members dedup
// against the committed order before broadcasting, and every member filters
// duplicate (client, PubID) pairs out of the delivered order at apply time
// — the same deterministic decision everywhere, since it is a pure
// function of the order itself.
const (
	clientHello byte = iota + 1
	clientPublish
	clientPubAck
	clientSubscribe
	clientEvent
	clientRedirect
)

// ErrBadClient reports an undecodable client-channel payload.
var ErrBadClient = errors.New("wire: bad client payload")

// Session roles announced in HELLO. An edge replica is a read-only
// fan-out node tailing the log through an ordinary session; members use
// the role for metrics/diagnostics only — the protocol is identical.
const (
	RoleClient byte = 0
	RoleEdge   byte = 1
)

// ClientHello opens or refreshes a session with the serving member. The
// member answers with a ClientRedirect carrying the current view and its
// applied frontier (RedirectWelcome).
type ClientHello struct {
	// MaxEventBytes caps one EVENT frame's payload bytes (0 = server
	// default); lets constrained clients bound their buffers.
	MaxEventBytes uint32
	// Role distinguishes ordinary clients from edge replicas (RoleEdge).
	Role byte
	// Version is the wire protocol version the client speaks (see
	// version.go). Encoders stamp CurrentVersion when it is 0; 1.0 clients
	// predate the field and the decoder fills in MakeVersion(1, 0) when the
	// trailing byte is absent.
	Version byte
}

// ClientPublish submits one payload for total order broadcast on the
// client's behalf.
type ClientPublish struct {
	// PubID is the client-assigned identity of this publish (consecutive
	// from 1). Retries reuse the PubID; commits dedup on it.
	PubID   uint64
	Payload []byte
}

// ClientPubAck confirms that a publish is committed: persisted by the
// serving member at sequence number Seq of the total order. Seq can be 0
// when the publish was a duplicate of one committed long ago whose position
// the member no longer remembers (it is committed either way).
type ClientPubAck struct {
	PubID uint64
	Seq   uint64
}

// ClientSubscribe starts (or re-homes, after a reconnect) one subscription.
type ClientSubscribe struct {
	// SubID distinguishes concurrent subscriptions of one client; a
	// SUBSCRIBE with a known SubID replaces that subscription's cursor.
	SubID uint64
	// From is the first offset wanted (messages with Seq >= From). 0 means
	// "live tail": start at whatever commits next.
	From uint64
	// Cancel tears the subscription down instead of (re)starting it.
	Cancel bool
}

// ClientEventEntry is one committed message of the order.
type ClientEventEntry struct {
	Seq     uint64
	Origin  ring.ProcID
	Logical uint64
	Payload []byte
}

// ClientEvent carries one page of a subscription's stream: either a batch
// of committed messages in seq order, or (first, when the subscription
// resumed below the member's WAL truncation point) a state snapshot at
// SnapSeq, or nothing at all — an idle keepalive proving the subscription
// is still being served.
//
// Three flag bits extend the per-subscription stream with the shared
// encode-once tail (see internal/serve):
//
//   - Attach (Sub = subscription): from here on, this subscription is fed
//     by the link's shared tail frames instead of private pages.
//   - Tail (Sub = 0): one batch of the shared tail, folded into EVERY
//     attached subscription of the link (offset dedup per subscription).
//     With no entries it doubles as the attached-mode keepalive.
//   - Detach (Sub = 0): every attached subscription of the link reverts
//     to private paging (the server fell behind for this link and will
//     re-page it up to date before re-attaching).
type ClientEvent struct {
	// Sub names the subscription this page belongs to (0 for Tail/Detach
	// frames, which are link-wide).
	Sub         uint64
	HasSnapshot bool
	Tail        bool
	Attach      bool
	Detach      bool
	SnapSeq     uint64
	Snapshot    []byte
	Entries     []ClientEventEntry
}

// Redirect reasons.
const (
	// RedirectWelcome acknowledges a HELLO.
	RedirectWelcome byte = iota + 1
	// RedirectView announces an installed view change; the member keeps
	// serving, the client may prefer members of the new view.
	RedirectView
	// RedirectBye announces that the member stops serving (leaving or
	// evicted); the client should fail over now.
	RedirectBye
	// RedirectCannotServe answers a SUBSCRIBE the member cannot satisfy
	// (offset below its horizon and no snapshot); try another member.
	RedirectCannotServe
	// RedirectNotWritable answers a PUBLISH sent to a read-only edge
	// replica: the session must move publishes to a real ring member
	// (Members/Addrs say which).
	RedirectNotWritable
)

// ClientRedirect points the client at the group: the current view members
// (Members[0] is the leader) and the member's applied frontier.
type ClientRedirect struct {
	Reason  byte
	Applied uint64
	Members []ring.ProcID
	// Addrs optionally carries dialable addresses for Members (same order)
	// for deployments where transport IDs alone are not dialable (TCP
	// clients behind an edge learn the ring members' listen addresses from
	// a RedirectNotWritable).
	Addrs []string
	// Sub names the subscription a RedirectCannotServe answers; 0 for
	// session-wide redirects.
	Sub uint64
	// Version is the serving member's wire protocol version, echoed in the
	// RedirectWelcome so a client can refuse a major-incompatible server.
	// Same encode/decode defaulting as ClientHello.Version.
	Version byte
}

// EncodeClientHello serializes h, prefixed with KindClient.
func EncodeClientHello(h *ClientHello) []byte {
	buf := make([]byte, 0, 2+4+1+1)
	buf = append(buf, KindClient, clientHello)
	buf = binary.LittleEndian.AppendUint32(buf, h.MaxEventBytes)
	ver := h.Version
	if ver == 0 {
		ver = CurrentVersion
	}
	buf = append(buf, h.Role, ver)
	return buf
}

// EncodeClientPublish serializes p, prefixed with KindClient.
func EncodeClientPublish(p *ClientPublish) []byte {
	buf := make([]byte, 0, 2+8+4+len(p.Payload))
	buf = append(buf, KindClient, clientPublish)
	buf = binary.LittleEndian.AppendUint64(buf, p.PubID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Payload)))
	buf = append(buf, p.Payload...)
	return buf
}

// EncodeClientPubAck serializes a, prefixed with KindClient.
func EncodeClientPubAck(a *ClientPubAck) []byte {
	buf := make([]byte, 0, 2+16)
	buf = append(buf, KindClient, clientPubAck)
	buf = binary.LittleEndian.AppendUint64(buf, a.PubID)
	buf = binary.LittleEndian.AppendUint64(buf, a.Seq)
	return buf
}

// EncodeClientSubscribe serializes s, prefixed with KindClient.
func EncodeClientSubscribe(s *ClientSubscribe) []byte {
	buf := make([]byte, 0, 2+17)
	buf = append(buf, KindClient, clientSubscribe)
	buf = binary.LittleEndian.AppendUint64(buf, s.SubID)
	buf = binary.LittleEndian.AppendUint64(buf, s.From)
	var c byte
	if s.Cancel {
		c = 1
	}
	buf = append(buf, c)
	return buf
}

// clientEventEntryFixed is the encoded size of an entry minus its payload.
const clientEventEntryFixed = 8 + 4 + 8 + 4

// EncodeClientEvent serializes e, prefixed with KindClient.
func EncodeClientEvent(e *ClientEvent) []byte {
	n := 2 + 8 + 1 + 4
	if e.HasSnapshot {
		n += 8 + 4 + len(e.Snapshot)
	}
	for i := range e.Entries {
		n += clientEventEntryFixed + len(e.Entries[i].Payload)
	}
	return AppendClientEvent(make([]byte, 0, n), e)
}

// AppendClientEvent appends e's encoding to buf and returns the extended
// slice. The fan-out hot path encodes into pooled buffers with it; the
// encoding is identical to EncodeClientEvent.
func AppendClientEvent(buf []byte, e *ClientEvent) []byte {
	buf = append(buf, KindClient, clientEvent)
	buf = binary.LittleEndian.AppendUint64(buf, e.Sub)
	var flags byte
	if e.HasSnapshot {
		flags |= 1
	}
	if e.Tail {
		flags |= 2
	}
	if e.Attach {
		flags |= 4
	}
	if e.Detach {
		flags |= 8
	}
	buf = append(buf, flags)
	if e.HasSnapshot {
		buf = binary.LittleEndian.AppendUint64(buf, e.SnapSeq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Snapshot)))
		buf = append(buf, e.Snapshot...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Entries)))
	for i := range e.Entries {
		en := &e.Entries[i]
		buf = binary.LittleEndian.AppendUint64(buf, en.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(en.Origin))
		buf = binary.LittleEndian.AppendUint64(buf, en.Logical)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(en.Payload)))
		buf = append(buf, en.Payload...)
	}
	return buf
}

// EncodeClientRedirect serializes r, prefixed with KindClient.
func EncodeClientRedirect(r *ClientRedirect) []byte {
	n := 2 + 1 + 8 + 8 + 2 + 4*len(r.Members) + 2 + 1
	for _, a := range r.Addrs {
		n += 2 + len(a)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, KindClient, clientRedirect)
	buf = append(buf, r.Reason)
	buf = binary.LittleEndian.AppendUint64(buf, r.Applied)
	buf = binary.LittleEndian.AppendUint64(buf, r.Sub)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Members)))
	for _, m := range r.Members {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Addrs)))
	for _, a := range r.Addrs {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(a)))
		buf = append(buf, a...)
	}
	ver := r.Version
	if ver == 0 {
		ver = CurrentVersion
	}
	buf = append(buf, ver)
	return buf
}

// DecodeClient parses a KindClient payload into one of the *Client types.
// Like the other decoders it never panics on arbitrary bytes and byte
// slices in the result alias buf.
func DecodeClient(buf []byte) (any, error) {
	r := reader{buf: buf}
	kind, err := r.u8()
	if err != nil {
		return nil, err
	}
	if kind != KindClient {
		return nil, fmt.Errorf("%w: kind %d", ErrBadClient, kind)
	}
	typ, err := r.u8()
	if err != nil {
		return nil, err
	}
	switch typ {
	case clientHello:
		var h ClientHello
		if h.MaxEventBytes, err = r.u32(); err != nil {
			return nil, err
		}
		if h.Role, err = r.u8(); err != nil {
			return nil, err
		}
		if h.Version, err = versionTail(&r); err != nil {
			return nil, err
		}
		return &h, trailing(&r)
	case clientPublish:
		var p ClientPublish
		if p.PubID, err = r.u64(); err != nil {
			return nil, err
		}
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		if p.Payload, err = r.bytes(int(n)); err != nil {
			return nil, err
		}
		return &p, trailing(&r)
	case clientPubAck:
		var a ClientPubAck
		if a.PubID, err = r.u64(); err != nil {
			return nil, err
		}
		if a.Seq, err = r.u64(); err != nil {
			return nil, err
		}
		return &a, trailing(&r)
	case clientSubscribe:
		var s ClientSubscribe
		if s.SubID, err = r.u64(); err != nil {
			return nil, err
		}
		if s.From, err = r.u64(); err != nil {
			return nil, err
		}
		c, err := r.u8()
		if err != nil {
			return nil, err
		}
		s.Cancel = c != 0
		return &s, trailing(&r)
	case clientEvent:
		var e ClientEvent
		if e.Sub, err = r.u64(); err != nil {
			return nil, err
		}
		flags, err := r.u8()
		if err != nil {
			return nil, err
		}
		e.HasSnapshot = flags&1 != 0
		e.Tail = flags&2 != 0
		e.Attach = flags&4 != 0
		e.Detach = flags&8 != 0
		if e.HasSnapshot {
			if e.SnapSeq, err = r.u64(); err != nil {
				return nil, err
			}
			n, err := r.u32()
			if err != nil {
				return nil, err
			}
			if e.Snapshot, err = r.bytes(int(n)); err != nil {
				return nil, err
			}
		}
		count, err := r.u32()
		if err != nil {
			return nil, err
		}
		if uint64(count)*clientEventEntryFixed > uint64(r.rem()) {
			return nil, ErrTruncated // forged count; refuse to allocate
		}
		if count > 0 {
			e.Entries = make([]ClientEventEntry, count)
		}
		for i := range e.Entries {
			en := &e.Entries[i]
			if en.Seq, err = r.u64(); err != nil {
				return nil, err
			}
			origin, err := r.u32()
			if err != nil {
				return nil, err
			}
			en.Origin = ring.ProcID(origin)
			if en.Logical, err = r.u64(); err != nil {
				return nil, err
			}
			n, err := r.u32()
			if err != nil {
				return nil, err
			}
			if en.Payload, err = r.bytes(int(n)); err != nil {
				return nil, err
			}
		}
		return &e, trailing(&r)
	case clientRedirect:
		var rd ClientRedirect
		if rd.Reason, err = r.u8(); err != nil {
			return nil, err
		}
		if rd.Applied, err = r.u64(); err != nil {
			return nil, err
		}
		if rd.Sub, err = r.u64(); err != nil {
			return nil, err
		}
		count, err := r.u16()
		if err != nil {
			return nil, err
		}
		if int(count)*4 > r.rem() {
			return nil, ErrTruncated
		}
		for i := 0; i < int(count); i++ {
			m, err := r.u32()
			if err != nil {
				return nil, err
			}
			rd.Members = append(rd.Members, ring.ProcID(m))
		}
		acount, err := r.u16()
		if err != nil {
			return nil, err
		}
		if int(acount)*2 > r.rem() {
			return nil, ErrTruncated
		}
		for i := 0; i < int(acount); i++ {
			n, err := r.u16()
			if err != nil {
				return nil, err
			}
			b, err := r.bytes(int(n))
			if err != nil {
				return nil, err
			}
			rd.Addrs = append(rd.Addrs, string(b))
		}
		if rd.Version, err = versionTail(&r); err != nil {
			return nil, err
		}
		return &rd, trailing(&r)
	default:
		return nil, fmt.Errorf("%w: type %d", ErrBadClient, typ)
	}
}

// trailing rejects leftover bytes after a complete client message.
func trailing(r *reader) error {
	if r.rem() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadClient, r.rem())
	}
	return nil
}

// versionTail reads the optional trailing version byte of a handshake
// message. Messages from 1.0 speakers end before it; their absence means
// "version 1.0", which keeps old clients decodable forever.
func versionTail(r *reader) (byte, error) {
	if r.rem() == 0 {
		return MakeVersion(1, 0), nil
	}
	return r.u8()
}
