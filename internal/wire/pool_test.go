package wire

import (
	"bytes"
	"testing"
)

// TestAppendFrameMatchesEncode: AppendFrame into an arbitrary prefix must
// produce exactly EncodeFrame's bytes after the prefix.
func TestAppendFrameMatchesEncode(t *testing.T) {
	f := sampleFrame()
	want := EncodeFrame(f)
	for _, prefix := range [][]byte{nil, {}, []byte("prefix")} {
		got := AppendFrame(append([]byte(nil), prefix...), f)
		if !bytes.Equal(got[:len(prefix)], prefix) {
			t.Fatalf("prefix clobbered: %q", got[:len(prefix)])
		}
		if !bytes.Equal(got[len(prefix):], want) {
			t.Fatalf("AppendFrame after %q diverges from EncodeFrame", prefix)
		}
	}
}

// TestDecodeFrameIntoReuse decodes different frames through one reused
// Frame and checks no state leaks between decodes.
func TestDecodeFrameIntoReuse(t *testing.T) {
	big := benchFrame(5)
	small := &Frame{ViewID: 9, Acks: []AckItem{{ID: MsgID{Origin: 1, Local: 2}, Seq: 3, Hops: 1}}}
	var f Frame
	if err := DecodeFrameInto(&f, EncodeFrame(big)); err != nil {
		t.Fatal(err)
	}
	if len(f.Data) != 5 || len(f.Acks) != 8 {
		t.Fatalf("big decode: %d data, %d acks", len(f.Data), len(f.Acks))
	}
	if err := DecodeFrameInto(&f, EncodeFrame(small)); err != nil {
		t.Fatal(err)
	}
	if f.ViewID != 9 || len(f.Data) != 0 || len(f.Acks) != 1 {
		t.Fatalf("reused decode leaked state: %+v", f)
	}
	if f.Acks[0] != small.Acks[0] {
		t.Fatalf("ack mismatch: %+v", f.Acks[0])
	}
}

// TestDecodeFrameIntoForgedCounts: a header announcing more items than the
// buffer can hold must fail before any large allocation.
func TestDecodeFrameIntoForgedCounts(t *testing.T) {
	buf := EncodeFrame(&Frame{ViewID: 1})
	// Patch nData (offset 9..10, little-endian u16) to 65535.
	buf[9], buf[10] = 0xFF, 0xFF
	var f Frame
	if err := DecodeFrameInto(&f, buf); err == nil {
		t.Fatal("forged data count accepted")
	}
}

// TestFramePoolRoundTrip: a recycled frame comes back empty and body
// references do not survive PutFrame.
func TestFramePoolRoundTrip(t *testing.T) {
	f := GetFrame()
	if err := DecodeFrameInto(f, EncodeFrame(sampleFrame())); err != nil {
		t.Fatal(err)
	}
	data := f.Data
	PutFrame(f)
	for i := range data[:cap(data)] {
		if data[:cap(data)][i].Body != nil {
			t.Fatal("PutFrame kept a body reference alive")
		}
	}
	g := GetFrame()
	if len(g.Data) != 0 || len(g.Acks) != 0 || g.ViewID != 0 {
		t.Fatalf("pooled frame not cleared: %+v", g)
	}
	PutFrame(g)
}

// TestBufPoolRoundTrip: buffers come back empty and are reusable.
func TestBufPoolRoundTrip(t *testing.T) {
	b := GetBuf()
	b.B = AppendFrame(b.B, sampleFrame())
	if len(b.B) == 0 {
		t.Fatal("nothing encoded")
	}
	PutBuf(b)
	c := GetBuf()
	if len(c.B) != 0 {
		t.Fatalf("pooled buffer not reset: %d bytes", len(c.B))
	}
	PutBuf(c)
}
