package wire

import (
	"testing"

	"fsr/internal/ring"
)

// benchFrame is a realistic hot-path frame: a few 8 KiB data segments plus
// piggybacked acks — what a loaded ring hop actually carries after the
// engine's multi-segment batching.
func benchFrame(nData int) *Frame {
	f := &Frame{ViewID: 3}
	body := make([]byte, 8192)
	for i := 0; i < nData; i++ {
		f.Data = append(f.Data, DataItem{
			ID: MsgID{Origin: ring.ProcID(i % 5), Local: uint64(i)}, Seq: uint64(100 + i),
			Part: 0, Parts: 1, Body: body,
		})
	}
	for i := 0; i < 8; i++ {
		f.Acks = append(f.Acks, AckItem{
			ID: MsgID{Origin: 2, Local: uint64(i)}, Seq: uint64(50 + i), Hops: 3, Stable: i%2 == 0,
		})
	}
	return f
}

// BenchmarkEncodeFrame measures the pooled outbound path (AppendFrame into
// a reused buffer). Pre-change baseline (EncodeFrame, fresh buffer per
// frame): 4838 ns/op, 40960 B/op, 1 alloc/op.
func BenchmarkEncodeFrame(b *testing.B) {
	f := benchFrame(4)
	buf := GetBuf()
	b.ReportAllocs()
	b.SetBytes(int64(f.EncodedSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.B = AppendFrame(buf.B[:0], f)
	}
	b.StopTimer()
	PutBuf(buf)
}

// BenchmarkDecodeFrame measures the pooled inbound path (DecodeFrameInto a
// reused frame; bodies alias the wire buffer). Pre-change baseline
// (DecodeFrame, fresh frame + item slices per frame): 258 ns/op, 544 B/op,
// 3 allocs/op.
func BenchmarkDecodeFrame(b *testing.B) {
	buf := EncodeFrame(benchFrame(4))
	f := GetFrame()
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeFrameInto(f, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	PutFrame(f)
}

// TestFramePathZeroAlloc hard-asserts what the benchmarks report: at steady
// state the pooled encode and decode paths allocate nothing per frame, so
// an alloc regression fails plain `go test`, not just a bench run.
func TestFramePathZeroAlloc(t *testing.T) {
	src := benchFrame(6)
	wirebuf := EncodeFrame(src)
	buf := GetBuf()
	f := GetFrame()
	defer PutBuf(buf)
	defer PutFrame(f)
	// Warm the capacities once before measuring.
	buf.B = AppendFrame(buf.B[:0], src)
	if err := DecodeFrameInto(f, wirebuf); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		buf.B = AppendFrame(buf.B[:0], src)
	}); n != 0 {
		t.Errorf("AppendFrame: %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodeFrameInto(f, wirebuf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DecodeFrameInto: %.1f allocs/op, want 0", n)
	}
}
