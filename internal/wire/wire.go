// Package wire defines the on-the-wire message vocabulary of the FSR stack
// and its binary codec.
//
// Three subsystems share the transport; every transport payload starts with
// a one-byte channel kind so the node dispatcher can route it:
//
//	KindFSR     — a Frame: ring traffic (data segments + piggybacked acks)
//	KindVSC     — a view-change control message (encoded by package vsc)
//	KindFD      — a failure-detector heartbeat (encoded by package fd)
//	KindCatchup — a durable-log catch-up request/response (crash recovery)
//	KindClient  — the client sub-protocol (non-member publish/subscribe)
//	KindAdmin   — the operator sub-protocol (status/introspection queries)
//
// Ring frames additionally carry a protocol version byte right after the
// kind, and the client HELLO handshake negotiates a session version — see
// version.go for the compat policy (same-major interop; unknown kinds and
// incompatible-version frames are skipped by receivers, never fatal).
//
// The codec is hand-rolled little-endian (stdlib encoding/binary): the frame
// encoder sits on the hot path of every hop, so it avoids reflection and
// allocates exactly one buffer per frame.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"fsr/internal/ring"
)

// Channel kinds (first byte of every transport payload).
const (
	KindFSR byte = iota + 1
	KindVSC
	KindFD
	KindCatchup
	KindClient
	KindAdmin
)

// ErrTruncated is returned when a buffer ends before a complete value.
var ErrTruncated = errors.New("wire: truncated buffer")

// MsgID uniquely identifies one broadcast segment system-wide: the origin
// process plus an origin-local counter.
type MsgID struct {
	Origin ring.ProcID
	Local  uint64
}

func (id MsgID) String() string { return fmt.Sprintf("%d/%d", id.Origin, id.Local) }

// DataItem is one message segment traveling clockwise around the ring.
//
// Seq == 0 marks pass A (the raw body heading for the sequencer); Seq > 0
// marks pass B (the sequenced body emitted by the leader). Part/Parts carry
// the segmentation of the logical application message: the segment is one
// independent TO-broadcast, and the logical message is delivered when its
// last segment is TO-delivered.
type DataItem struct {
	ID    MsgID
	Seq   uint64
	Part  uint32
	Parts uint32
	Body  []byte
}

// AckItem is the small pass-C acknowledgment: it carries the sequence number
// to pass-A holders, the uniform-stability flag, and its remaining hop
// budget (number of receptions left before the ack dies).
type AckItem struct {
	ID     MsgID
	Seq    uint64
	Hops   uint32
	Stable bool
}

// Frame is one transport frame between ring neighbors: at most a handful of
// data segments plus piggybacked acks, all tagged with the sender's view
// epoch so stale traffic from a previous view is discarded.
type Frame struct {
	// Ver is the protocol version the frame was encoded under (see
	// version.go). Zero means "this build's CurrentVersion" on encode; the
	// decoder records what the peer actually sent.
	Ver    byte
	ViewID uint64
	Data   []DataItem
	Acks   []AckItem
}

// Encoded sizes of the fixed parts, used by EncodedSize and the decoder.
const (
	frameHeaderSize = 1 + 8 + 2 + 2         // version + viewID + nData + nAcks
	dataFixedSize   = 4 + 8 + 8 + 4 + 4 + 4 // origin local seq part parts bodyLen
	ackSize         = 4 + 8 + 8 + 4 + 1     // origin local seq hops stable
)

// EncodedSize returns the exact number of bytes EncodeFrame will produce,
// including the leading channel-kind byte. The network simulator uses it to
// model link occupancy without materializing buffers.
func (f *Frame) EncodedSize() int {
	n := 1 + frameHeaderSize
	for i := range f.Data {
		n += dataFixedSize + len(f.Data[i].Body)
	}
	n += ackSize * len(f.Acks)
	return n
}

// EncodeFrame serializes f, prefixed with KindFSR, into a fresh buffer.
// The hot path uses AppendFrame with a pooled buffer instead.
func EncodeFrame(f *Frame) []byte {
	return AppendFrame(make([]byte, 0, f.EncodedSize()), f)
}

// AppendFrame appends the serialized form of f (prefixed with KindFSR) to
// dst and returns the extended slice. With a dst of sufficient capacity it
// performs no allocation; the frame encoder runs on every ring hop, so the
// node drives it with pooled buffers (GetBuf/PutBuf).
func AppendFrame(dst []byte, f *Frame) []byte {
	buf := dst
	if rem := cap(buf) - len(buf); rem < f.EncodedSize() {
		grown := make([]byte, len(buf), len(buf)+f.EncodedSize())
		copy(grown, buf)
		buf = grown
	}
	ver := f.Ver
	if ver == 0 {
		ver = CurrentVersion
	}
	buf = append(buf, KindFSR, ver)
	buf = binary.LittleEndian.AppendUint64(buf, f.ViewID)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(f.Data)))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(f.Acks)))
	for i := range f.Data {
		d := &f.Data[i]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.ID.Origin))
		buf = binary.LittleEndian.AppendUint64(buf, d.ID.Local)
		buf = binary.LittleEndian.AppendUint64(buf, d.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, d.Part)
		buf = binary.LittleEndian.AppendUint32(buf, d.Parts)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d.Body)))
		buf = append(buf, d.Body...)
	}
	for i := range f.Acks {
		a := &f.Acks[i]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(a.ID.Origin))
		buf = binary.LittleEndian.AppendUint64(buf, a.ID.Local)
		buf = binary.LittleEndian.AppendUint64(buf, a.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, a.Hops)
		var st byte
		if a.Stable {
			st = 1
		}
		buf = append(buf, st)
	}
	return buf
}

// DecodeFrame parses a buffer produced by EncodeFrame. The buffer must
// include the leading KindFSR byte. Body slices alias buf; callers that
// retain bodies beyond the life of buf must copy them.
func DecodeFrame(buf []byte) (*Frame, error) {
	var f Frame
	if err := DecodeFrameInto(&f, buf); err != nil {
		return nil, err
	}
	return &f, nil
}

// DecodeFrameInto parses buf into f, reusing f's Data and Acks capacity —
// the pooled-decoder half of the zero-alloc frame path (see GetFrame).
// All item bodies alias buf (the decoder materializes nothing: every body
// is a view into the one backing buffer the transport handed over), so buf
// is owned by the protocol layer from here on. On error f's contents are
// unspecified.
func DecodeFrameInto(f *Frame, buf []byte) error {
	r := reader{buf: buf}
	kind, err := r.u8()
	if err != nil {
		return err
	}
	if kind != KindFSR {
		return fmt.Errorf("wire: frame kind %d, want %d", kind, KindFSR)
	}
	ver, err := r.u8()
	if err != nil {
		return err
	}
	if !CompatibleVersion(ver) {
		return fmt.Errorf("%w: frame version %d.%d, this build speaks %d.x",
			ErrVersion, VersionMajor(ver), VersionMinor(ver), ProtoMajor)
	}
	f.Ver = ver
	f.Data = f.Data[:0]
	f.Acks = f.Acks[:0]
	if f.ViewID, err = r.u64(); err != nil {
		return err
	}
	nData, err := r.u16()
	if err != nil {
		return err
	}
	nAcks, err := r.u16()
	if err != nil {
		return err
	}
	// Bound the counts by the remaining bytes before growing any slice, so
	// a forged header cannot force a large allocation.
	if int(nData)*dataFixedSize+int(nAcks)*ackSize > r.rem() {
		return ErrTruncated
	}
	for i := 0; i < int(nData); i++ {
		var d DataItem
		if err := decodeDataInto(&r, &d); err != nil {
			return err
		}
		f.Data = append(f.Data, d)
	}
	for i := 0; i < int(nAcks); i++ {
		var a AckItem
		if err := decodeAckInto(&r, &a); err != nil {
			return err
		}
		f.Acks = append(f.Acks, a)
	}
	if r.rem() != 0 {
		return fmt.Errorf("wire: %d trailing bytes after frame", r.rem())
	}
	return nil
}

func decodeDataInto(r *reader, d *DataItem) error {
	origin, err := r.u32()
	if err != nil {
		return err
	}
	d.ID.Origin = ring.ProcID(origin)
	if d.ID.Local, err = r.u64(); err != nil {
		return err
	}
	if d.Seq, err = r.u64(); err != nil {
		return err
	}
	if d.Part, err = r.u32(); err != nil {
		return err
	}
	if d.Parts, err = r.u32(); err != nil {
		return err
	}
	bodyLen, err := r.u32()
	if err != nil {
		return err
	}
	if d.Body, err = r.bytes(int(bodyLen)); err != nil {
		return err
	}
	return nil
}

func decodeAckInto(r *reader, a *AckItem) error {
	origin, err := r.u32()
	if err != nil {
		return err
	}
	a.ID.Origin = ring.ProcID(origin)
	if a.ID.Local, err = r.u64(); err != nil {
		return err
	}
	if a.Seq, err = r.u64(); err != nil {
		return err
	}
	if a.Hops, err = r.u32(); err != nil {
		return err
	}
	st, err := r.u8()
	if err != nil {
		return err
	}
	a.Stable = st != 0
	return nil
}

// reader is a bounds-checked little-endian cursor over a byte slice.
type reader struct {
	buf []byte
	off int
}

func (r *reader) rem() int { return len(r.buf) - r.off }

func (r *reader) u8() (byte, error) {
	if r.rem() < 1 {
		return 0, ErrTruncated
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if r.rem() < 2 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.rem() < 4 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.rem() < 8 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.rem() < n {
		return nil, ErrTruncated
	}
	v := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return v, nil
}

// Catch-up message types (second byte of a KindCatchup payload).
//
// Catch-up is the crash-recovery companion of the durable log: a restarted
// process, after rebuilding from its own snapshot + WAL, asks a peer for
// the suffix of the delivered total order it missed while down. Entries are
// reassembled application messages keyed by the global sequence number of
// their final segment — exactly what the WAL stores — so the response can
// be applied to the state machine directly, without re-running the
// protocol.
const (
	catchupReq byte = iota + 1
	catchupResp
)

// ErrBadCatchup reports an undecodable catch-up payload.
var ErrBadCatchup = errors.New("wire: bad catch-up payload")

// CatchupReq asks a peer for the delivered messages in (After, UpTo].
type CatchupReq struct {
	// After is the requester's last applied sequence number.
	After uint64
	// UpTo bounds the transfer: the requester needs nothing beyond it
	// (messages past it arrive through live ring traffic).
	UpTo uint64
}

// CatchupEntry is one recovered message of the total order.
type CatchupEntry struct {
	Seq       uint64
	Origin    ring.ProcID
	LogicalID uint64
	Payload   []byte
}

// CatchupResp carries one page of a catch-up transfer.
type CatchupResp struct {
	// Unavailable means the peer keeps no durable log and cannot serve.
	Unavailable bool
	// HasSnapshot marks a state-transfer response: the requester is so far
	// behind that the peer has truncated the entries it needs, so it hands
	// over its latest state-machine snapshot (taken at SnapSeq) instead,
	// followed by the entries after it.
	HasSnapshot bool
	SnapSeq     uint64
	Snapshot    []byte
	// UpTo echoes the request's range bound, so the requester can tell
	// which of its (possibly superseded) requests this page answers:
	// More=false and Ceiling only speak about the range up to UpTo.
	UpTo uint64
	// More reports that entries in the requested range remain beyond this
	// page; the requester asks again from the last entry it received.
	More bool
	// Ceiling is the server's authority bound: every entry of the total
	// order with sequence number <= Ceiling that will EVER exist is already
	// in the server's log. A server whose delivery pipeline is fully
	// drained can vouch for everything below its engine cursor; one with
	// deliveries still in flight vouches only for what it has applied.
	// With More unset, a requester whose target lies at or below Ceiling
	// knows the absent sequence numbers in its range are dead — consumed
	// by segments of broadcasts that never completed (e.g. the origin
	// crashed mid-message) — and stops waiting for them.
	Ceiling uint64
	Entries []CatchupEntry
}

// catchupEntryFixed is the encoded size of an entry minus its payload;
// used to reject forged counts before allocating.
const catchupEntryFixed = 8 + 4 + 8 + 4

// EncodeCatchupReq serializes q, prefixed with KindCatchup.
func EncodeCatchupReq(q *CatchupReq) []byte {
	buf := make([]byte, 0, 2+16)
	buf = append(buf, KindCatchup, catchupReq)
	buf = binary.LittleEndian.AppendUint64(buf, q.After)
	buf = binary.LittleEndian.AppendUint64(buf, q.UpTo)
	return buf
}

// EncodeCatchupResp serializes p, prefixed with KindCatchup.
func EncodeCatchupResp(p *CatchupResp) []byte {
	n := 2 + 1 + 8 + 8 + 4
	if p.HasSnapshot {
		n += 8 + 4 + len(p.Snapshot)
	}
	for i := range p.Entries {
		n += catchupEntryFixed + len(p.Entries[i].Payload)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, KindCatchup, catchupResp)
	var flags byte
	if p.Unavailable {
		flags |= 1
	}
	if p.HasSnapshot {
		flags |= 2
	}
	if p.More {
		flags |= 4
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, p.UpTo)
	buf = binary.LittleEndian.AppendUint64(buf, p.Ceiling)
	if p.HasSnapshot {
		buf = binary.LittleEndian.AppendUint64(buf, p.SnapSeq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Snapshot)))
		buf = append(buf, p.Snapshot...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Entries)))
	for i := range p.Entries {
		e := &p.Entries[i]
		buf = binary.LittleEndian.AppendUint64(buf, e.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Origin))
		buf = binary.LittleEndian.AppendUint64(buf, e.LogicalID)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Payload)))
		buf = append(buf, e.Payload...)
	}
	return buf
}

// DecodeCatchup parses a KindCatchup payload into *CatchupReq or
// *CatchupResp. Like DecodeFrame it never panics on arbitrary bytes, and
// byte slices in the result alias buf.
func DecodeCatchup(buf []byte) (any, error) {
	r := reader{buf: buf}
	kind, err := r.u8()
	if err != nil {
		return nil, err
	}
	if kind != KindCatchup {
		return nil, fmt.Errorf("%w: kind %d", ErrBadCatchup, kind)
	}
	typ, err := r.u8()
	if err != nil {
		return nil, err
	}
	switch typ {
	case catchupReq:
		var q CatchupReq
		if q.After, err = r.u64(); err != nil {
			return nil, err
		}
		if q.UpTo, err = r.u64(); err != nil {
			return nil, err
		}
		if r.rem() != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCatchup, r.rem())
		}
		return &q, nil
	case catchupResp:
		var p CatchupResp
		flags, err := r.u8()
		if err != nil {
			return nil, err
		}
		p.Unavailable = flags&1 != 0
		p.HasSnapshot = flags&2 != 0
		p.More = flags&4 != 0
		if p.UpTo, err = r.u64(); err != nil {
			return nil, err
		}
		if p.Ceiling, err = r.u64(); err != nil {
			return nil, err
		}
		if p.HasSnapshot {
			if p.SnapSeq, err = r.u64(); err != nil {
				return nil, err
			}
			n, err := r.u32()
			if err != nil {
				return nil, err
			}
			if p.Snapshot, err = r.bytes(int(n)); err != nil {
				return nil, err
			}
		}
		count, err := r.u32()
		if err != nil {
			return nil, err
		}
		if uint64(count)*catchupEntryFixed > uint64(r.rem()) {
			return nil, ErrTruncated // forged count; refuse to allocate
		}
		if count > 0 {
			p.Entries = make([]CatchupEntry, count)
		}
		for i := range p.Entries {
			e := &p.Entries[i]
			if e.Seq, err = r.u64(); err != nil {
				return nil, err
			}
			origin, err := r.u32()
			if err != nil {
				return nil, err
			}
			e.Origin = ring.ProcID(origin)
			if e.LogicalID, err = r.u64(); err != nil {
				return nil, err
			}
			n, err := r.u32()
			if err != nil {
				return nil, err
			}
			if e.Payload, err = r.bytes(int(n)); err != nil {
				return nil, err
			}
		}
		if r.rem() != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCatchup, r.rem())
		}
		return &p, nil
	default:
		return nil, fmt.Errorf("%w: type %d", ErrBadCatchup, typ)
	}
}
