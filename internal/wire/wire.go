// Package wire defines the on-the-wire message vocabulary of the FSR stack
// and its binary codec.
//
// Three subsystems share the transport; every transport payload starts with
// a one-byte channel kind so the node dispatcher can route it:
//
//	KindFSR — a Frame: ring traffic (data segments + piggybacked acks)
//	KindVSC — a view-change control message (encoded by package vsc)
//	KindFD  — a failure-detector heartbeat (encoded by package fd)
//
// The codec is hand-rolled little-endian (stdlib encoding/binary): the frame
// encoder sits on the hot path of every hop, so it avoids reflection and
// allocates exactly one buffer per frame.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"fsr/internal/ring"
)

// Channel kinds (first byte of every transport payload).
const (
	KindFSR byte = iota + 1
	KindVSC
	KindFD
)

// ErrTruncated is returned when a buffer ends before a complete value.
var ErrTruncated = errors.New("wire: truncated buffer")

// MsgID uniquely identifies one broadcast segment system-wide: the origin
// process plus an origin-local counter.
type MsgID struct {
	Origin ring.ProcID
	Local  uint64
}

func (id MsgID) String() string { return fmt.Sprintf("%d/%d", id.Origin, id.Local) }

// DataItem is one message segment traveling clockwise around the ring.
//
// Seq == 0 marks pass A (the raw body heading for the sequencer); Seq > 0
// marks pass B (the sequenced body emitted by the leader). Part/Parts carry
// the segmentation of the logical application message: the segment is one
// independent TO-broadcast, and the logical message is delivered when its
// last segment is TO-delivered.
type DataItem struct {
	ID    MsgID
	Seq   uint64
	Part  uint32
	Parts uint32
	Body  []byte
}

// AckItem is the small pass-C acknowledgment: it carries the sequence number
// to pass-A holders, the uniform-stability flag, and its remaining hop
// budget (number of receptions left before the ack dies).
type AckItem struct {
	ID     MsgID
	Seq    uint64
	Hops   uint32
	Stable bool
}

// Frame is one transport frame between ring neighbors: at most a handful of
// data segments plus piggybacked acks, all tagged with the sender's view
// epoch so stale traffic from a previous view is discarded.
type Frame struct {
	ViewID uint64
	Data   []DataItem
	Acks   []AckItem
}

// Encoded sizes of the fixed parts, used by EncodedSize and the decoder.
const (
	frameHeaderSize = 8 + 2 + 2             // viewID + nData + nAcks
	dataFixedSize   = 4 + 8 + 8 + 4 + 4 + 4 // origin local seq part parts bodyLen
	ackSize         = 4 + 8 + 8 + 4 + 1     // origin local seq hops stable
)

// EncodedSize returns the exact number of bytes EncodeFrame will produce,
// including the leading channel-kind byte. The network simulator uses it to
// model link occupancy without materializing buffers.
func (f *Frame) EncodedSize() int {
	n := 1 + frameHeaderSize
	for i := range f.Data {
		n += dataFixedSize + len(f.Data[i].Body)
	}
	n += ackSize * len(f.Acks)
	return n
}

// EncodeFrame serializes f, prefixed with KindFSR.
func EncodeFrame(f *Frame) []byte {
	buf := make([]byte, 0, f.EncodedSize())
	buf = append(buf, KindFSR)
	buf = binary.LittleEndian.AppendUint64(buf, f.ViewID)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(f.Data)))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(f.Acks)))
	for i := range f.Data {
		d := &f.Data[i]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.ID.Origin))
		buf = binary.LittleEndian.AppendUint64(buf, d.ID.Local)
		buf = binary.LittleEndian.AppendUint64(buf, d.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, d.Part)
		buf = binary.LittleEndian.AppendUint32(buf, d.Parts)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d.Body)))
		buf = append(buf, d.Body...)
	}
	for i := range f.Acks {
		a := &f.Acks[i]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(a.ID.Origin))
		buf = binary.LittleEndian.AppendUint64(buf, a.ID.Local)
		buf = binary.LittleEndian.AppendUint64(buf, a.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, a.Hops)
		var st byte
		if a.Stable {
			st = 1
		}
		buf = append(buf, st)
	}
	return buf
}

// DecodeFrame parses a buffer produced by EncodeFrame. The buffer must
// include the leading KindFSR byte. Body slices alias buf; callers that
// retain bodies beyond the life of buf must copy them.
func DecodeFrame(buf []byte) (*Frame, error) {
	r := reader{buf: buf}
	kind, err := r.u8()
	if err != nil {
		return nil, err
	}
	if kind != KindFSR {
		return nil, fmt.Errorf("wire: frame kind %d, want %d", kind, KindFSR)
	}
	var f Frame
	if f.ViewID, err = r.u64(); err != nil {
		return nil, err
	}
	nData, err := r.u16()
	if err != nil {
		return nil, err
	}
	nAcks, err := r.u16()
	if err != nil {
		return nil, err
	}
	if nData > 0 {
		f.Data = make([]DataItem, nData)
	}
	for i := range f.Data {
		d := &f.Data[i]
		if err := decodeDataInto(&r, d); err != nil {
			return nil, err
		}
	}
	if nAcks > 0 {
		f.Acks = make([]AckItem, nAcks)
	}
	for i := range f.Acks {
		a := &f.Acks[i]
		if err := decodeAckInto(&r, a); err != nil {
			return nil, err
		}
	}
	if r.rem() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after frame", r.rem())
	}
	return &f, nil
}

func decodeDataInto(r *reader, d *DataItem) error {
	origin, err := r.u32()
	if err != nil {
		return err
	}
	d.ID.Origin = ring.ProcID(origin)
	if d.ID.Local, err = r.u64(); err != nil {
		return err
	}
	if d.Seq, err = r.u64(); err != nil {
		return err
	}
	if d.Part, err = r.u32(); err != nil {
		return err
	}
	if d.Parts, err = r.u32(); err != nil {
		return err
	}
	bodyLen, err := r.u32()
	if err != nil {
		return err
	}
	if d.Body, err = r.bytes(int(bodyLen)); err != nil {
		return err
	}
	return nil
}

func decodeAckInto(r *reader, a *AckItem) error {
	origin, err := r.u32()
	if err != nil {
		return err
	}
	a.ID.Origin = ring.ProcID(origin)
	if a.ID.Local, err = r.u64(); err != nil {
		return err
	}
	if a.Seq, err = r.u64(); err != nil {
		return err
	}
	if a.Hops, err = r.u32(); err != nil {
		return err
	}
	st, err := r.u8()
	if err != nil {
		return err
	}
	a.Stable = st != 0
	return nil
}

// reader is a bounds-checked little-endian cursor over a byte slice.
type reader struct {
	buf []byte
	off int
}

func (r *reader) rem() int { return len(r.buf) - r.off }

func (r *reader) u8() (byte, error) {
	if r.rem() < 1 {
		return 0, ErrTruncated
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if r.rem() < 2 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.rem() < 4 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.rem() < 8 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.rem() < n {
		return nil, ErrTruncated
	}
	v := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return v, nil
}
