package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"slices"
	"testing"
	"testing/quick"

	"fsr/internal/ring"
)

func sampleFrame() *Frame {
	return &Frame{
		ViewID: 7,
		Data: []DataItem{
			{ID: MsgID{Origin: 3, Local: 42}, Seq: 0, Part: 0, Parts: 3, Body: []byte("hello")},
			{ID: MsgID{Origin: 1, Local: 1}, Seq: 99, Part: 2, Parts: 3, Body: []byte{}},
		},
		Acks: []AckItem{
			{ID: MsgID{Origin: 2, Local: 5}, Seq: 17, Hops: 4, Stable: true},
			{ID: MsgID{Origin: 9, Local: 0}, Seq: 18, Hops: 0, Stable: false},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := sampleFrame()
	buf := EncodeFrame(f)
	if buf[0] != KindFSR {
		t.Fatalf("kind byte = %d, want %d", buf[0], KindFSR)
	}
	got, err := DecodeFrame(buf)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if got.ViewID != f.ViewID || len(got.Data) != 2 || len(got.Acks) != 2 {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range f.Data {
		if got.Data[i].ID != f.Data[i].ID || got.Data[i].Seq != f.Data[i].Seq ||
			got.Data[i].Part != f.Data[i].Part || got.Data[i].Parts != f.Data[i].Parts ||
			!bytes.Equal(got.Data[i].Body, f.Data[i].Body) {
			t.Errorf("data[%d] mismatch: got %+v want %+v", i, got.Data[i], f.Data[i])
		}
	}
	if !reflect.DeepEqual(got.Acks, f.Acks) {
		t.Errorf("acks mismatch: got %+v want %+v", got.Acks, f.Acks)
	}
}

func TestEncodedSizeExact(t *testing.T) {
	frames := []*Frame{
		{},
		{ViewID: 1},
		sampleFrame(),
		{Acks: []AckItem{{ID: MsgID{1, 2}, Seq: 3, Hops: 4}}},
		{Data: []DataItem{{ID: MsgID{1, 2}, Body: make([]byte, 8192)}}},
	}
	for i, f := range frames {
		if got, want := len(EncodeFrame(f)), f.EncodedSize(); got != want {
			t.Errorf("frame %d: len(encode)=%d EncodedSize=%d", i, got, want)
		}
	}
}

func TestDecodeEmptyFrame(t *testing.T) {
	f := &Frame{ViewID: 12}
	got, err := DecodeFrame(EncodeFrame(f))
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if got.ViewID != 12 || len(got.Data) != 0 || len(got.Acks) != 0 {
		t.Errorf("got %+v", got)
	}
}

func TestDecodeRejectsWrongKind(t *testing.T) {
	buf := EncodeFrame(sampleFrame())
	buf[0] = KindVSC
	if _, err := DecodeFrame(buf); err == nil {
		t.Error("wrong kind accepted")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	buf := EncodeFrame(sampleFrame())
	// Every proper prefix must fail cleanly, never panic.
	for i := 0; i < len(buf); i++ {
		if _, err := DecodeFrame(buf[:i]); err == nil {
			t.Fatalf("truncated prefix of %d bytes accepted", i)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	buf := append(EncodeFrame(sampleFrame()), 0xAB)
	if _, err := DecodeFrame(buf); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestDecodeRejectsOverlongBodyLen(t *testing.T) {
	f := &Frame{Data: []DataItem{{Body: []byte("abc")}}}
	buf := EncodeFrame(f)
	// Patch bodyLen (last u32 before the body) to a huge value.
	bodyLenOff := len(buf) - 3 - 4
	buf[bodyLenOff] = 0xFF
	buf[bodyLenOff+1] = 0xFF
	buf[bodyLenOff+2] = 0xFF
	buf[bodyLenOff+3] = 0x7F
	if _, err := DecodeFrame(buf); err == nil {
		t.Error("overlong body length accepted")
	}
}

func randFrame(rng *rand.Rand) *Frame {
	f := &Frame{ViewID: rng.Uint64()}
	for range rng.Intn(4) {
		body := make([]byte, rng.Intn(64))
		rng.Read(body)
		f.Data = append(f.Data, DataItem{
			ID:    MsgID{Origin: ring.ProcID(rng.Uint32()), Local: rng.Uint64()},
			Seq:   rng.Uint64(),
			Part:  rng.Uint32(),
			Parts: rng.Uint32(),
			Body:  body,
		})
	}
	for range rng.Intn(6) {
		f.Acks = append(f.Acks, AckItem{
			ID:     MsgID{Origin: ring.ProcID(rng.Uint32()), Local: rng.Uint64()},
			Seq:    rng.Uint64(),
			Hops:   rng.Uint32(),
			Stable: rng.Intn(2) == 1,
		})
	}
	return f
}

// TestRoundTripQuick property-checks encode/decode identity on random frames.
func TestRoundTripQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randFrame(rng)
		got, err := DecodeFrame(EncodeFrame(f))
		if err != nil {
			return false
		}
		if got.ViewID != f.ViewID || len(got.Data) != len(f.Data) || len(got.Acks) != len(f.Acks) {
			return false
		}
		for i := range f.Data {
			if got.Data[i].ID != f.Data[i].ID || got.Data[i].Seq != f.Data[i].Seq ||
				got.Data[i].Part != f.Data[i].Part || got.Data[i].Parts != f.Data[i].Parts ||
				!bytes.Equal(got.Data[i].Body, f.Data[i].Body) {
				return false
			}
		}
		for i := range f.Acks {
			if got.Acks[i] != f.Acks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDecodeRandomGarbage feeds random bytes to the decoder; it must never
// panic (errors are fine).
func TestDecodeRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for range 2000 {
		buf := make([]byte, rng.Intn(128))
		rng.Read(buf)
		if len(buf) > 0 {
			buf[0] = KindFSR // get past the kind check sometimes
		}
		_, _ = DecodeFrame(buf) //nolint:errcheck // asserting no panic only
	}
}

func BenchmarkEncodeFrame8K(b *testing.B) {
	f := &Frame{
		ViewID: 1,
		Data:   []DataItem{{ID: MsgID{1, 1}, Seq: 5, Parts: 13, Body: make([]byte, 8192)}},
		Acks:   []AckItem{{ID: MsgID{2, 9}, Seq: 4, Hops: 3, Stable: true}},
	}
	b.ReportAllocs()
	b.SetBytes(int64(f.EncodedSize()))
	for range b.N {
		EncodeFrame(f)
	}
}

func BenchmarkDecodeFrame8K(b *testing.B) {
	f := &Frame{
		ViewID: 1,
		Data:   []DataItem{{ID: MsgID{1, 1}, Seq: 5, Parts: 13, Body: make([]byte, 8192)}},
	}
	buf := EncodeFrame(f)
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for range b.N {
		if _, err := DecodeFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCatchupReqRoundTrip(t *testing.T) {
	q := &CatchupReq{After: 41, UpTo: 977}
	got, err := DecodeCatchup(EncodeCatchupReq(q))
	if err != nil {
		t.Fatal(err)
	}
	dq, ok := got.(*CatchupReq)
	if !ok {
		t.Fatalf("decoded %T, want *CatchupReq", got)
	}
	if *dq != *q {
		t.Fatalf("round trip: %+v != %+v", dq, q)
	}
}

func TestCatchupRespRoundTrip(t *testing.T) {
	cases := []*CatchupResp{
		{Unavailable: true},
		{More: true, Entries: []CatchupEntry{
			{Seq: 7, Origin: 2, LogicalID: 99, Payload: []byte("abc")},
			{Seq: 9, Origin: 3, LogicalID: 100, Payload: nil},
		}},
		{HasSnapshot: true, SnapSeq: 500, Snapshot: []byte("kv-state"),
			Entries: []CatchupEntry{{Seq: 501, Origin: 1, LogicalID: 4, Payload: []byte("x")}}},
		{},
	}
	for i, p := range cases {
		got, err := DecodeCatchup(EncodeCatchupResp(p))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		dp, ok := got.(*CatchupResp)
		if !ok {
			t.Fatalf("case %d: decoded %T", i, got)
		}
		if dp.Unavailable != p.Unavailable || dp.HasSnapshot != p.HasSnapshot ||
			dp.More != p.More || dp.SnapSeq != p.SnapSeq ||
			!bytes.Equal(dp.Snapshot, p.Snapshot) || len(dp.Entries) != len(p.Entries) {
			t.Fatalf("case %d: %+v != %+v", i, dp, p)
		}
		for j := range p.Entries {
			w, g := p.Entries[j], dp.Entries[j]
			if g.Seq != w.Seq || g.Origin != w.Origin || g.LogicalID != w.LogicalID ||
				!bytes.Equal(g.Payload, w.Payload) {
				t.Fatalf("case %d entry %d: %+v != %+v", i, j, g, w)
			}
		}
	}
}

func TestCatchupDecodeRejectsMalformed(t *testing.T) {
	good := EncodeCatchupResp(&CatchupResp{Entries: []CatchupEntry{
		{Seq: 1, Origin: 1, LogicalID: 1, Payload: []byte("p")},
	}})
	// Every strict prefix must fail cleanly, never panic.
	for i := 0; i < len(good); i++ {
		if _, err := DecodeCatchup(good[:i]); err == nil {
			t.Fatalf("prefix of %d bytes decoded", i)
		}
	}
	if _, err := DecodeCatchup(append(slices.Clone(good), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, err := DecodeCatchup([]byte{KindFSR, 1}); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if _, err := DecodeCatchup([]byte{KindCatchup, 9}); err == nil {
		t.Fatal("unknown type accepted")
	}
	// A forged entry count must not cause a giant allocation or a panic.
	forged := []byte{KindCatchup, 2, 0}
	forged = binary.LittleEndian.AppendUint32(forged, 0xFFFFFFFF)
	if _, err := DecodeCatchup(forged); err == nil {
		t.Fatal("forged count accepted")
	}
}
