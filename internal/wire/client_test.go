package wire

import (
	"bytes"
	"testing"

	"fsr/internal/ring"
)

func TestClientCodecRoundTrip(t *testing.T) {
	msgs := []any{
		&ClientHello{MaxEventBytes: 1 << 20, Version: CurrentVersion},
		&ClientHello{Version: PrevVersion},
		&ClientPublish{PubID: 7, Payload: []byte("payload")},
		&ClientPublish{PubID: 1},
		&ClientPubAck{PubID: 7, Seq: 1234},
		&ClientPubAck{PubID: 9},
		&ClientSubscribe{SubID: 3, From: 42},
		&ClientSubscribe{SubID: 3, Cancel: true},
		&ClientEvent{Sub: 3},
		&ClientEvent{Sub: 3, HasSnapshot: true, SnapSeq: 90, Snapshot: []byte("state")},
		&ClientEvent{Sub: 1, Entries: []ClientEventEntry{
			{Seq: 91, Origin: 1<<31 + 5, Logical: 1, Payload: []byte("a")},
			{Seq: 93, Origin: 2, Logical: 17, Payload: []byte("bb")},
		}},
		&ClientRedirect{Reason: RedirectWelcome, Applied: 55, Members: []ring.ProcID{1, 2, 3}, Version: CurrentVersion},
		&ClientRedirect{Reason: RedirectCannotServe, Sub: 3, Version: PrevVersion},
	}
	for _, m := range msgs {
		var enc []byte
		switch v := m.(type) {
		case *ClientHello:
			enc = EncodeClientHello(v)
		case *ClientPublish:
			enc = EncodeClientPublish(v)
		case *ClientPubAck:
			enc = EncodeClientPubAck(v)
		case *ClientSubscribe:
			enc = EncodeClientSubscribe(v)
		case *ClientEvent:
			enc = EncodeClientEvent(v)
		case *ClientRedirect:
			enc = EncodeClientRedirect(v)
		}
		if enc[0] != KindClient {
			t.Fatalf("%T: missing KindClient prefix", m)
		}
		got, err := DecodeClient(enc)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if !clientEqual(m, got) {
			t.Fatalf("round trip mismatch:\nsent %#v\ngot  %#v", m, got)
		}
	}
}

// clientEqual compares two client messages structurally (nil and empty
// byte slices are interchangeable on the wire).
func clientEqual(a, b any) bool {
	switch x := a.(type) {
	case *ClientHello:
		y, ok := b.(*ClientHello)
		return ok && *x == *y
	case *ClientPublish:
		y, ok := b.(*ClientPublish)
		return ok && x.PubID == y.PubID && bytes.Equal(x.Payload, y.Payload)
	case *ClientPubAck:
		y, ok := b.(*ClientPubAck)
		return ok && *x == *y
	case *ClientSubscribe:
		y, ok := b.(*ClientSubscribe)
		return ok && *x == *y
	case *ClientEvent:
		y, ok := b.(*ClientEvent)
		if !ok || x.Sub != y.Sub || x.HasSnapshot != y.HasSnapshot ||
			x.SnapSeq != y.SnapSeq || !bytes.Equal(x.Snapshot, y.Snapshot) ||
			len(x.Entries) != len(y.Entries) {
			return false
		}
		for i := range x.Entries {
			ex, ey := &x.Entries[i], &y.Entries[i]
			if ex.Seq != ey.Seq || ex.Origin != ey.Origin ||
				ex.Logical != ey.Logical || !bytes.Equal(ex.Payload, ey.Payload) {
				return false
			}
		}
		return true
	case *ClientRedirect:
		y, ok := b.(*ClientRedirect)
		if !ok || x.Reason != y.Reason || x.Applied != y.Applied ||
			x.Sub != y.Sub || x.Version != y.Version || len(x.Members) != len(y.Members) {
			return false
		}
		for i := range x.Members {
			if x.Members[i] != y.Members[i] {
				return false
			}
		}
		return true
	}
	return false
}

func TestClientDecodeRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		{},
		{KindClient},
		{KindClient, 0},
		{KindClient, 99},
		{KindFSR, clientHello, 0, 0, 0, 0},
		// Publish announcing more payload than present.
		{KindClient, clientPublish, 1, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF},
		// Event with a forged entry count.
		{KindClient, clientEvent, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF},
		// Redirect with a forged member count.
		{KindClient, clientRedirect, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF},
		// Trailing garbage after a valid pub ack.
		append(EncodeClientPubAck(&ClientPubAck{PubID: 1, Seq: 2}), 0),
	}
	for i, c := range cases {
		if _, err := DecodeClient(c); err == nil {
			t.Errorf("case %d: malformed payload decoded without error: %x", i, c)
		}
	}
}
