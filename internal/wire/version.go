// Wire protocol versioning.
//
// Every ring frame (KindFSR) carries a one-byte protocol version right
// after the channel kind, and the client HELLO/REDIRECT handshake carries
// the speaker's version, so a mixed-version membership (a rolling upgrade)
// is expressible and testable.
//
// Compat policy, stated once and enforced everywhere:
//
//   - Same-major versions interoperate. A frame whose major matches ours
//     must decode (minor bumps only ever append optional trailing fields,
//     which same-major decoders tolerate).
//   - A different major is rejected with ErrVersion. Receivers SKIP such
//     frames (count them, drop them) rather than failing the process: a
//     too-new peer must not crash an old member, it must merely not be
//     understood.
//   - Unknown channel kinds are skipped, not fatal, for the same reason —
//     a future minor may introduce new kinds.
//   - HELLOs and REDIRECTs without a trailing version byte are legacy 1.0
//     speakers; decoders treat absence as Version(1, 0).

package wire

import "errors"

// Protocol version of this build. The minor is bumped when the envelope
// gains optional fields (1.1 added the version byte itself and the HELLO
// negotiation); the major is bumped only for incompatible changes.
const (
	ProtoMajor = 1
	ProtoMinor = 1
)

// MakeVersion packs a (major, minor) pair into the wire's version byte:
// high nibble major, low nibble minor.
func MakeVersion(major, minor int) byte {
	return byte(major&0xf)<<4 | byte(minor&0xf)
}

// CurrentVersion is the version this build stamps on outbound frames by
// default; PrevVersion is the previous release's version, kept addressable
// so upgrade tests (and the harness's rolling-upgrade profile) can simulate
// an old member.
var (
	CurrentVersion = MakeVersion(ProtoMajor, ProtoMinor)
	PrevVersion    = MakeVersion(ProtoMajor, ProtoMinor-1)
)

// VersionMajor and VersionMinor unpack a wire version byte.
func VersionMajor(v byte) int { return int(v >> 4) }
func VersionMinor(v byte) int { return int(v & 0xf) }

// CompatibleVersion reports whether a peer speaking v can interoperate
// with this build: same major. (v == 0 — "unspecified" — is compatible;
// encoders never emit 0.)
func CompatibleVersion(v byte) bool {
	return v == 0 || VersionMajor(v) == ProtoMajor
}

// ErrVersion reports a frame from an incompatible (different-major) peer.
// Receivers must treat it as "skip this frame", never as a process fault.
var ErrVersion = errors.New("wire: incompatible protocol version")
