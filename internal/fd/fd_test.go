package fd

import (
	"sync"
	"testing"
	"time"

	"fsr/internal/ring"
)

type recorder struct {
	mu        sync.Mutex
	sent      map[ring.ProcID]int
	suspected []ring.ProcID
}

func newRecorder() *recorder {
	return &recorder{sent: map[ring.ProcID]int{}}
}

func (r *recorder) send(to ring.ProcID, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sent[to]++
}

func (r *recorder) suspect(p ring.ProcID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.suspected = append(r.suspected, p)
}

func newDetector(t *testing.T, rec *recorder) *Detector {
	t.Helper()
	d, err := New(Config{
		Self:     0,
		Interval: 10 * time.Millisecond,
		Timeout:  35 * time.Millisecond,
		Send:     rec.send,
		Suspect:  rec.suspect,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	rec := newRecorder()
	if _, err := New(Config{Interval: 10, Timeout: 5, Send: rec.send, Suspect: rec.suspect}); err == nil {
		t.Error("timeout <= interval accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("missing callbacks accepted")
	}
	if _, err := New(Config{Send: rec.send, Suspect: rec.suspect}); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

func TestHeartbeatsEmitted(t *testing.T) {
	rec := newRecorder()
	d := newDetector(t, rec)
	t0 := time.Unix(0, 0)
	d.SetPeers([]ring.ProcID{1, 2, 0}, t0) // self filtered out
	d.Tick(t0)
	d.Tick(t0.Add(time.Millisecond)) // below interval: no second beat
	d.Tick(t0.Add(12 * time.Millisecond))
	if rec.sent[1] != 2 || rec.sent[2] != 2 {
		t.Errorf("beats = %v, want 2 each", rec.sent)
	}
	if rec.sent[0] != 0 {
		t.Error("heartbeat sent to self")
	}
}

func TestSilentPeerSuspected(t *testing.T) {
	rec := newRecorder()
	d := newDetector(t, rec)
	t0 := time.Unix(100, 0)
	d.SetPeers([]ring.ProcID{1, 2}, t0)
	// Peer 1 keeps beating, peer 2 goes silent.
	for ms := 0; ms <= 60; ms += 5 {
		now := t0.Add(time.Duration(ms) * time.Millisecond)
		d.HandleHeartbeat(1, now)
		d.Tick(now)
	}
	if d.Suspected(1) {
		t.Error("live peer suspected (accuracy violated)")
	}
	if !d.Suspected(2) {
		t.Error("silent peer not suspected (completeness violated)")
	}
	if len(rec.suspected) != 1 || rec.suspected[0] != 2 {
		t.Errorf("suspect callbacks: %v", rec.suspected)
	}
}

func TestSuspicionIsPermanent(t *testing.T) {
	rec := newRecorder()
	d := newDetector(t, rec)
	t0 := time.Unix(0, 0)
	d.SetPeers([]ring.ProcID{1}, t0)
	d.Tick(t0.Add(50 * time.Millisecond))
	if !d.Suspected(1) {
		t.Fatal("not suspected")
	}
	// A late heartbeat must not resurrect it, and no duplicate callback.
	d.HandleHeartbeat(1, t0.Add(51*time.Millisecond))
	d.Tick(t0.Add(100 * time.Millisecond))
	if !d.Suspected(1) {
		t.Error("suspicion revised")
	}
	if len(rec.suspected) != 1 {
		t.Errorf("suspect callback fired %d times", len(rec.suspected))
	}
}

func TestSetPeersResetsGrace(t *testing.T) {
	rec := newRecorder()
	d := newDetector(t, rec)
	t0 := time.Unix(0, 0)
	d.SetPeers([]ring.ProcID{1}, t0)
	d.HandleHeartbeat(1, t0.Add(5*time.Millisecond))
	// New view adds peer 3 at t=30; it must not be instantly timed out.
	d.SetPeers([]ring.ProcID{1, 3}, t0.Add(30*time.Millisecond))
	d.Tick(t0.Add(40 * time.Millisecond))
	if d.Suspected(3) {
		t.Error("fresh peer suspected without a grace period")
	}
	// But existing silence history carries over for peer 1.
	d.Tick(t0.Add(45 * time.Millisecond))
	if !d.Suspected(1) {
		t.Error("stale peer not suspected after SetPeers")
	}
}

func TestHeartbeatFromUnmonitoredIgnored(t *testing.T) {
	rec := newRecorder()
	d := newDetector(t, rec)
	t0 := time.Unix(0, 0)
	d.SetPeers([]ring.ProcID{1}, t0)
	d.HandleHeartbeat(99, t0) // must not start monitoring 99
	d.Tick(t0.Add(time.Hour))
	for _, s := range rec.suspected {
		if s == 99 {
			t.Error("unmonitored peer suspected")
		}
	}
}

func TestEncodeDecode(t *testing.T) {
	payload := Encode(1234)
	got, err := Decode(payload)
	if err != nil || got != 1234 {
		t.Fatalf("Decode = %d, %v", got, err)
	}
	if _, err := Decode([]byte{1, 2}); err == nil {
		t.Error("short payload accepted")
	}
	payload[0] = 0x7F
	if _, err := Decode(payload); err == nil {
		t.Error("wrong kind accepted")
	}
}

func TestRunnerRealTime(t *testing.T) {
	rec := newRecorder()
	d, err := New(Config{
		Self:     0,
		Interval: 5 * time.Millisecond,
		Timeout:  40 * time.Millisecond,
		Send:     rec.send,
		Suspect:  rec.suspect,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(d)
	r.SetPeers([]ring.ProcID{1, 2})
	r.Start()
	defer r.Stop()
	// Keep peer 1 alive from another goroutine; let 2 time out.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				r.HandleHeartbeat(1)
			}
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !r.Suspected(2) {
		if time.Now().After(deadline) {
			t.Fatal("peer 2 never suspected")
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if r.Suspected(1) {
		t.Error("live peer suspected under real-time runner")
	}
	r.Stop() // double stop must be safe
}
