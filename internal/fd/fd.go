// Package fd implements the failure detection module of the paper's system
// model (Section 3): each process has access to a Perfect failure detector P
// (Chandra & Toueg). In the cluster environments the paper targets —
// fail-stop processes on a synchronous switched LAN — a heartbeat detector
// with a generous timeout implements P: it is complete (a crashed process
// stops heartbeating and is eventually suspected) and accurate (a live
// process's heartbeats keep arriving before the timeout).
//
// The detector core is a pure state machine advanced by Tick(now) and
// HandleHeartbeat(from, now), so tests control time exactly; Runner wraps it
// with a real-time goroutine for production use.
package fd

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"fsr/internal/ring"
	"fsr/internal/wire"
)

// Defaults for Config fields left zero.
const (
	DefaultInterval = 50 * time.Millisecond
	DefaultTimeout  = 500 * time.Millisecond
)

// Config parameterizes a Detector.
type Config struct {
	// Self is this process's ID (never monitored, never suspected).
	Self ring.ProcID
	// Interval is the heartbeat emission period.
	Interval time.Duration
	// Timeout is the silence threshold after which a peer is suspected.
	// Must be comfortably above Interval plus worst-case scheduling jitter
	// for the accuracy half of P to hold.
	Timeout time.Duration
	// Send emits one heartbeat payload to a peer. Errors are ignored: a
	// dead link is exactly what the timeout detects.
	Send func(to ring.ProcID, payload []byte)
	// Suspect is invoked exactly once per peer when it is declared
	// crashed. Called from Tick's goroutine.
	Suspect func(p ring.ProcID)
}

// Detector is the pure failure-detector state machine. Not goroutine-safe;
// Runner adds locking for real-time use.
type Detector struct {
	cfg      Config
	lastSeen map[ring.ProcID]time.Time
	suspects map[ring.ProcID]bool
	lastBeat time.Time
}

// New builds a detector with no monitored peers yet.
func New(cfg Config) (*Detector, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.Timeout <= cfg.Interval {
		return nil, fmt.Errorf("fd: timeout %v must exceed interval %v", cfg.Timeout, cfg.Interval)
	}
	if cfg.Send == nil || cfg.Suspect == nil {
		return nil, fmt.Errorf("fd: Send and Suspect callbacks are required")
	}
	return &Detector{
		cfg:      cfg,
		lastSeen: make(map[ring.ProcID]time.Time),
		suspects: make(map[ring.ProcID]bool),
	}, nil
}

// SetPeers replaces the monitored peer set (typically on view change). New
// peers get a fresh grace period starting at now; suspicions of processes
// no longer in the set are forgotten.
func (d *Detector) SetPeers(peers []ring.ProcID, now time.Time) {
	seen := make(map[ring.ProcID]time.Time, len(peers))
	susp := make(map[ring.ProcID]bool)
	for _, p := range peers {
		if p == d.cfg.Self {
			continue
		}
		if t, ok := d.lastSeen[p]; ok {
			seen[p] = t
		} else {
			seen[p] = now
		}
		if d.suspects[p] {
			susp[p] = true
		}
	}
	d.lastSeen = seen
	d.suspects = susp
}

// HandleHeartbeat records proof of life from a peer. Heartbeats from
// processes already suspected are ignored: P never revises a suspicion
// (strong accuracy makes that sound in the fail-stop model).
func (d *Detector) HandleHeartbeat(from ring.ProcID, now time.Time) {
	if d.suspects[from] {
		return
	}
	if _, monitored := d.lastSeen[from]; monitored {
		d.lastSeen[from] = now
	}
}

// Tick advances time: it emits heartbeats on the configured cadence and
// declares silent peers crashed.
func (d *Detector) Tick(now time.Time) {
	if d.lastBeat.IsZero() || now.Sub(d.lastBeat) >= d.cfg.Interval {
		d.lastBeat = now
		hb := Encode(d.cfg.Self)
		for p := range d.lastSeen {
			if !d.suspects[p] {
				d.cfg.Send(p, hb)
			}
		}
	}
	for p, last := range d.lastSeen {
		if !d.suspects[p] && now.Sub(last) > d.cfg.Timeout {
			d.suspects[p] = true
			d.cfg.Suspect(p)
		}
	}
}

// Suspected reports whether p is currently suspected.
func (d *Detector) Suspected(p ring.ProcID) bool { return d.suspects[p] }

// Encode builds the heartbeat payload for a sender (KindFD + ProcID).
func Encode(self ring.ProcID) []byte {
	buf := make([]byte, 5)
	buf[0] = wire.KindFD
	binary.LittleEndian.PutUint32(buf[1:], uint32(self))
	return buf
}

// Decode parses a heartbeat payload.
func Decode(payload []byte) (ring.ProcID, error) {
	if len(payload) != 5 || payload[0] != wire.KindFD {
		return 0, fmt.Errorf("fd: bad heartbeat payload (%d bytes)", len(payload))
	}
	return ring.ProcID(binary.LittleEndian.Uint32(payload[1:])), nil
}

// Runner drives a Detector in real time with an internal goroutine. All
// Detector access is serialized by the Runner's lock, so HandleHeartbeat may
// be called from transport goroutines.
type Runner struct {
	mu   sync.Mutex
	d    *Detector
	done chan struct{}
	wg   sync.WaitGroup
}

// NewRunner wraps a detector. Call Start to begin ticking.
func NewRunner(d *Detector) *Runner {
	return &Runner{d: d, done: make(chan struct{})}
}

// Start launches the ticking goroutine.
func (r *Runner) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		ticker := time.NewTicker(r.d.cfg.Interval / 2)
		defer ticker.Stop()
		for {
			select {
			case <-r.done:
				return
			case now := <-ticker.C:
				r.mu.Lock()
				r.d.Tick(now)
				r.mu.Unlock()
			}
		}
	}()
}

// HandleHeartbeat forwards a heartbeat to the detector, thread-safely.
func (r *Runner) HandleHeartbeat(from ring.ProcID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.d.HandleHeartbeat(from, time.Now())
}

// SetPeers forwards to the detector, thread-safely.
func (r *Runner) SetPeers(peers []ring.ProcID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.d.SetPeers(peers, time.Now())
}

// Suspected forwards to the detector, thread-safely.
func (r *Runner) Suspected(p ring.ProcID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.d.Suspected(p)
}

// Stop halts the ticking goroutine and waits for it.
func (r *Runner) Stop() {
	select {
	case <-r.done:
	default:
		close(r.done)
	}
	r.wg.Wait()
}
