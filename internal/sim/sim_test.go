package sim

import (
	"testing"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	var l Loop
	var got []int
	l.At(30*time.Millisecond, func() { got = append(got, 3) })
	l.At(10*time.Millisecond, func() { got = append(got, 1) })
	l.At(20*time.Millisecond, func() { got = append(got, 2) })
	l.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order: %v", got)
	}
	if l.Now() != 30*time.Millisecond {
		t.Errorf("now = %v", l.Now())
	}
}

func TestEqualTimestampsAreFIFO(t *testing.T) {
	var l Loop
	var got []int
	for i := range 10 {
		i := i
		l.At(time.Millisecond, func() { got = append(got, i) })
	}
	l.Run(0)
	for i, g := range got {
		if g != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestAfterIsRelative(t *testing.T) {
	var l Loop
	var at time.Duration
	l.At(5*time.Millisecond, func() {
		l.After(7*time.Millisecond, func() { at = l.Now() })
	})
	l.Run(0)
	if at != 12*time.Millisecond {
		t.Errorf("fired at %v, want 12ms", at)
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	var l Loop
	fired := time.Duration(-1)
	l.At(10*time.Millisecond, func() {
		l.At(time.Millisecond, func() { fired = l.Now() }) // in the past
	})
	l.Run(0)
	if fired != 10*time.Millisecond {
		t.Errorf("past event fired at %v", fired)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	var l Loop
	count := 0
	for i := 1; i <= 10; i++ {
		l.At(time.Duration(i)*time.Second, func() { count++ })
	}
	n := l.Run(5 * time.Second)
	if n != 5 || count != 5 {
		t.Fatalf("executed %d/%d, want 5", n, count)
	}
	if l.Now() != 5*time.Second {
		t.Errorf("now = %v", l.Now())
	}
	if l.Pending() != 5 {
		t.Errorf("pending = %d", l.Pending())
	}
	// Resuming picks the remaining events up.
	l.Run(0)
	if count != 10 {
		t.Errorf("after resume count = %d", count)
	}
}

func TestStepEmpty(t *testing.T) {
	var l Loop
	if l.Step() {
		t.Error("Step on empty loop returned true")
	}
}

func TestCascadingEvents(t *testing.T) {
	// An event chain where each event schedules the next: simulates the
	// usual netsim pattern. 1000 hops of 1ms each.
	var l Loop
	hops := 0
	var hop func()
	hop = func() {
		hops++
		if hops < 1000 {
			l.After(time.Millisecond, hop)
		}
	}
	l.After(time.Millisecond, hop)
	l.Run(0)
	if hops != 1000 {
		t.Fatalf("hops = %d", hops)
	}
	if l.Now() != time.Second {
		t.Errorf("now = %v, want 1s", l.Now())
	}
}

func BenchmarkEventLoop(b *testing.B) {
	var l Loop
	var next func()
	i := 0
	next = func() {
		i++
		if i < b.N {
			l.After(time.Microsecond, next)
		}
	}
	l.After(time.Microsecond, next)
	b.ResetTimer()
	l.Run(0)
}
