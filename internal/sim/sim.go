// Package sim provides a minimal discrete-event simulation loop with a
// virtual clock: events fire in timestamp order (FIFO among equal
// timestamps), and time jumps instantaneously between events. It underpins
// internal/netsim, which models the paper's cluster testbed.
package sim

import (
	"container/heap"
	"time"
)

// Loop is a single-threaded discrete-event executor. The zero value is
// ready to use.
type Loop struct {
	pq  eventHeap
	now time.Duration
	seq uint64
}

type event struct {
	at  time.Duration
	seq uint64 // insertion order: stable tiebreak for equal timestamps
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Now returns the current virtual time.
func (l *Loop) Now() time.Duration { return l.now }

// Pending returns the number of scheduled events.
func (l *Loop) Pending() int { return len(l.pq) }

// At schedules fn at absolute virtual time t (clamped to now if in the
// past).
func (l *Loop) At(t time.Duration, fn func()) {
	if t < l.now {
		t = l.now
	}
	l.seq++
	heap.Push(&l.pq, event{at: t, seq: l.seq, fn: fn})
}

// After schedules fn d after the current virtual time.
func (l *Loop) After(d time.Duration, fn func()) { l.At(l.now+d, fn) }

// Step executes the next event; it reports false when none remain.
func (l *Loop) Step() bool {
	if len(l.pq) == 0 {
		return false
	}
	e := heap.Pop(&l.pq).(event)
	l.now = e.at
	e.fn()
	return true
}

// Run executes events until the queue drains or virtual time would exceed
// until (0 means no limit). It returns the number of events executed.
func (l *Loop) Run(until time.Duration) int {
	n := 0
	for len(l.pq) > 0 {
		if until > 0 && l.pq[0].at > until {
			l.now = until
			return n
		}
		l.Step()
		n++
	}
	return n
}
