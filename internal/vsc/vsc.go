// Package vsc implements the virtually synchronous communication layer the
// paper builds FSR on (Birman & Joseph [6]; paper §3 and §4.2.1): group
// membership organized as a sequence of views, with a coordinator-driven
// view-change protocol that flushes protocol state so that TO-broadcast
// uniformity holds across membership changes.
//
// Protocol (DESIGN.md §3, "view change"):
//
//  1. A trigger — failure-detector suspicion, join request, leave request,
//     or leader rotation — reaches the coordinator: the first live member
//     in the current view order.
//  2. The coordinator proposes epoch e (strictly above anything seen) with
//     PREPARE(e, members). Every proposed member freezes its engine and
//     replies STATE(e, recovery snapshot).
//  3. When all proposed members answered, the coordinator merges the
//     snapshots (core.MergeRecovery) and broadcasts NEWVIEW(e, members,
//     sync). Members install the view, re-broadcast their pending own
//     messages that the sync dropped, and resume.
//
// Fault tolerance during the change itself: any stall (coordinator crash,
// lost STATE) is healed by a timeout that restarts the change with a higher
// epoch and the shrunken live set; with a perfect failure detector and
// fail-stop crashes this terminates. Competing PREPAREs are ordered by
// (epoch, coordinator position), lower coordinator winning ties.
//
// The Manager is a pure state machine: the owning node serializes calls and
// supplies time through Tick.
package vsc

import (
	"fmt"
	"log/slog"
	"slices"
	"time"

	"fsr/internal/core"
	"fsr/internal/ring"
)

// DefaultChangeTimeout is how long a member waits for an in-flight view
// change to finish before the (possibly new) coordinator restarts it.
const DefaultChangeTimeout = time.Second

// Callbacks connect the Manager to the node runtime.
type Callbacks struct {
	// Send transmits one control payload to a peer (best effort).
	Send func(to ring.ProcID, payload []byte)
	// Snapshot freezes the engine (the node stops draining its outbound
	// queue) and returns its recovery state.
	Snapshot func() core.RecoveryState
	// Install applies an agreed view: the node installs it into the
	// engine, re-broadcasts the dropped own segments, points the failure
	// detector at the new membership, and resumes the engine.
	Install func(v core.View, sync *core.Sync, rebroadcast []core.PendingMsg)
	// Evicted tells a node it was excluded from the group (its leave was
	// honored, or it was wrongly suspected — impossible under a perfect
	// FD, but surfaced rather than hidden).
	Evicted func()
}

// Config parameterizes a Manager.
type Config struct {
	// Self is this process's ID.
	Self ring.ProcID
	// T is the target fault tolerance; each view uses min(T, n-1).
	T int
	// ChangeTimeout restarts a stalled view change. Defaults to
	// DefaultChangeTimeout.
	ChangeTimeout time.Duration
	// Joiner marks a process that starts outside the group and must not
	// contribute recovery state to the first merge.
	Joiner bool
	// Incarnation distinguishes successive lives of the same process ID
	// across crash-restarts (a durable node passes its log generation, an
	// ephemeral one a boot timestamp). It rides on JoinReq so the
	// coordinator can tell a restarted member from a duplicate join
	// request: a JoinReq from an ID that is still in the view with a
	// HIGHER incarnation proves the old process is dead (fail-stop) even
	// though the failure detector has not noticed — the new incarnation's
	// heartbeats keep the ID alive — and triggers the resynchronizing
	// view change the new incarnation needs.
	Incarnation uint64
	// Callbacks wire the manager to the runtime. All required.
	Callbacks Callbacks
	// Logger receives structured membership events (change proposals,
	// evictions). Nil discards them.
	Logger *slog.Logger
}

// Manager runs the view-change protocol for one process.
type Manager struct {
	cfg  Config
	log  *slog.Logger
	view core.View

	alive        map[ring.ProcID]bool   // current-view members not suspected
	joiners      map[ring.ProcID]bool   // pending admissions (coordinator)
	leavers      map[ring.ProcID]bool   // pending exclusions (coordinator)
	rotate       bool                   // pending leader rotation (coordinator)
	incarnations map[ring.ProcID]uint64 // highest incarnation seen per joiner

	// Member-side prepare bookkeeping.
	hiEpoch   uint64
	hiCoord   int // ring position of the coordinator of hiEpoch's prepare
	snapshot  *core.RecoveryState
	changing  bool
	changeDue time.Time
	// halfDeferred marks that this member held back one even-split proposal
	// (it kept exactly half the view but not its lowest-ID member — see the
	// tie-break in startChange) and may proceed at the next retry.
	halfDeferred bool
	// suspFwdDue schedules the next re-forward of pending suspicions to the
	// coordinator (see OnSuspect): forwards are best-effort sends, so a
	// non-coordinator repeats them until some view change settles the
	// membership.
	suspFwdDue time.Time

	// Coordinator-side collection state.
	myEpoch   uint64
	proposed  []ring.ProcID
	proposedT int
	collected map[ring.ProcID]*State

	installed bool // at least one real view installed (joiners start false)
}

// NewManager builds a manager for an initial view. A joiner passes its
// solo bootstrap view and Joiner: true; it acquires a real view via the
// coordinator's next change.
func NewManager(cfg Config, initial core.View) (*Manager, error) {
	if cfg.ChangeTimeout <= 0 {
		cfg.ChangeTimeout = DefaultChangeTimeout
	}
	cb := cfg.Callbacks
	if cb.Send == nil || cb.Snapshot == nil || cb.Install == nil {
		return nil, fmt.Errorf("vsc: Send, Snapshot and Install callbacks are required")
	}
	m := &Manager{
		cfg:          cfg,
		log:          cfg.Logger,
		view:         initial,
		alive:        make(map[ring.ProcID]bool),
		joiners:      make(map[ring.ProcID]bool),
		leavers:      make(map[ring.ProcID]bool),
		incarnations: make(map[ring.ProcID]uint64),
	}
	if m.log == nil {
		m.log = slog.New(slog.DiscardHandler)
	}
	for _, p := range initial.Ring.Members() {
		m.alive[p] = true
	}
	m.hiEpoch = initial.ID
	m.installed = !cfg.Joiner
	return m, nil
}

// View returns the current view.
func (m *Manager) View() core.View { return m.view }

// Changing reports whether a view change is in flight (engine frozen).
func (m *Manager) Changing() bool { return m.changing }

// coordinator returns the first live member in current view order and
// whether that is self.
func (m *Manager) coordinator() (ring.ProcID, bool) {
	for _, p := range m.view.Ring.Members() {
		if m.alive[p] {
			return p, p == m.cfg.Self
		}
	}
	return m.cfg.Self, true // everyone else gone: we are it
}

// OnSuspect feeds a failure-detector suspicion (local, or relayed by a
// Suspicion message). Only the coordinator can act on one; a
// non-coordinator forwards it to whoever it believes coordinates, so that
// an asymmetric fault — the suspect silent toward us but audible to the
// coordinator — still reaches the one process that can fix the ring
// (bug #16; Tick re-forwards until a view change resolves it). Safety does
// not rest on the reporter being right: the quorum guard in startChange
// still applies, and a falsely evicted live member fail-stops on the
// NEWVIEW and rejoins.
func (m *Manager) OnSuspect(p ring.ProcID, now time.Time) {
	if p == m.cfg.Self || !m.alive[p] {
		return
	}
	m.alive[p] = false
	delete(m.joiners, p)
	if coord, isCoord := m.coordinator(); isCoord {
		m.startChange(now)
	} else {
		m.cfg.Callbacks.Send(coord, EncodeSuspicion(&Suspicion{ID: p}))
		m.suspFwdDue = now.Add(m.cfg.ChangeTimeout)
	}
}

// RequestJoin is called by a joiner to ask admission; contact is any known
// member (typically all of them, so a crashed contact cannot block entry).
func (m *Manager) RequestJoin(contact []ring.ProcID) {
	req := EncodeJoinReq(&JoinReq{ID: m.cfg.Self, Incarnation: m.cfg.Incarnation})
	for _, c := range contact {
		if c != m.cfg.Self {
			m.cfg.Callbacks.Send(c, req)
		}
	}
}

// RequestLeave announces this process's graceful departure.
func (m *Manager) RequestLeave() {
	if !m.installed {
		// Not admitted yet: there is no membership to leave. Fail-stop
		// directly, matching Leave's contract that the node halts.
		if m.cfg.Callbacks.Evicted != nil {
			m.cfg.Callbacks.Evicted()
		}
		return
	}
	req := EncodeLeaveReq(&LeaveReq{ID: m.cfg.Self})
	if coord, isSelf := m.coordinator(); !isSelf {
		m.cfg.Callbacks.Send(coord, req)
		return
	}
	m.leavers[m.cfg.Self] = true
	m.startChange(time.Time{})
}

// RequestEvict asks the group to exclude target — the operator-driven
// membership op behind `fsr-admin evict`, for removing a partitioned-but-
// alive member without waiting for suspicion. Routed like a LeaveReq on
// target's behalf: handled directly when self coordinates, forwarded to
// the coordinator otherwise. Evicting self degenerates to a graceful
// leave. Returns false when target is not a current member (nothing to
// evict).
func (m *Manager) RequestEvict(target ring.ProcID, now time.Time) bool {
	if !m.installed || !m.view.Ring.Contains(target) {
		return false
	}
	if target == m.cfg.Self {
		m.RequestLeave()
		return true
	}
	m.log.Info("evict requested", "target", uint32(target))
	if coord, isSelf := m.coordinator(); !isSelf {
		m.cfg.Callbacks.Send(coord, EncodeLeaveReq(&LeaveReq{ID: target}))
		return true
	}
	m.leavers[target] = true
	m.startChange(now)
	return true
}

// RotateLeader triggers a view change whose only effect is shifting the
// member order by one — the paper's §4.3.1 latency-balancing device ("the
// role of the leader can be periodically moved to the next process").
// Only the coordinator honors it.
func (m *Manager) RotateLeader(now time.Time) {
	if _, isSelf := m.coordinator(); !isSelf {
		return
	}
	m.rotate = true
	m.startChange(now)
}

// Tick drives timeouts: a member stuck in a change asks the coordinator
// role to restart it (it may BE the new coordinator), and a
// non-coordinator with unresolved suspicions re-forwards them (the
// forward is a best-effort send that the fault being reported may itself
// have eaten).
func (m *Manager) Tick(now time.Time) {
	if m.changing && now.After(m.changeDue) {
		if _, isSelf := m.coordinator(); isSelf {
			m.startChange(now)
		} else {
			m.changeDue = now.Add(m.cfg.ChangeTimeout)
		}
	}
	if !m.changing && m.installed && !m.suspFwdDue.IsZero() && now.After(m.suspFwdDue) {
		coord, isCoord := m.coordinator()
		if isCoord {
			// Deaths since the last tick made us coordinator: act directly.
			m.suspFwdDue = time.Time{}
			m.startChange(now)
			return
		}
		forwarded := false
		for _, p := range m.view.Ring.Members() {
			if !m.alive[p] && p != m.cfg.Self {
				m.cfg.Callbacks.Send(coord, EncodeSuspicion(&Suspicion{ID: p}))
				forwarded = true
			}
		}
		if forwarded {
			m.suspFwdDue = now.Add(m.cfg.ChangeTimeout)
		} else {
			m.suspFwdDue = time.Time{}
		}
	}
}

// nextMembers computes the proposed membership: live current members in
// view order (rotated if requested), minus leavers, plus joiners in ID
// order.
func (m *Manager) nextMembers() []ring.ProcID {
	var out []ring.ProcID
	members := m.view.Ring.Members()
	if m.rotate && len(members) > 1 {
		members = append(members[1:], members[0])
	}
	for _, p := range members {
		if m.alive[p] && !m.leavers[p] {
			out = append(out, p)
		}
	}
	var js []ring.ProcID
	for j := range m.joiners {
		if !slices.Contains(out, j) {
			js = append(js, j)
		}
	}
	slices.Sort(js)
	return append(out, js...)
}

// hasQuorum reports whether a proposed membership retains a primary
// component of the current view: at least half of its members. This is
// the split-brain guard for the case the perfect-failure-detector model
// excludes but an overloaded host manufactures anyway: asymmetric false
// suspicion, where a small live faction believes the rest crashed and
// would otherwise install a rump view carrying the same epoch as the
// majority's next view, after which each side drops the other's NEWVIEW
// as stale and the histories diverge forever (found by the chaos harness,
// seed 1785168074707084626, where a 2-of-5 faction installed a private
// view). A strict-minority side now never proposes: either the majority's
// NEWVIEW arrives and evicts it (fail-stop, the documented
// false-suspicion outcome), or — if its suspicions were transient — it
// rejoins the majority's next view.
//
// Exactly half still qualifies: losing half the view at once (e.g. the
// old coordinator and another member crashing together mid-change) is a
// recovery the protocol supports, and the survivors cannot distinguish it
// from a symmetric partition. A perfectly even split under MUTUAL false
// suspicion — n even, both halves suspecting each other within one view —
// would let both halves qualify simultaneously, so startChange adds a
// deterministic tie-break on top of this test: at exactly half, only the
// half retaining the lowest-ID current-view member proposes immediately;
// the other half defers one ChangeTimeout (see the halfDeferred branch),
// giving the favored half's NEWVIEW time to arrive and evict it. The
// deferred half does proceed after the timeout — silence for a full
// ChangeTimeout is the protocol's definition of a dead peer, and wedging
// forever on a half that really did crash (the coordinator-crash-mid-
// change recovery) is not acceptable — so a partition that outlasts the
// timeout AND suppresses every NEWVIEW can still fork an even split. That
// residual requires the model violation to persist past the failure
// detector's own horizon, strictly narrower than the simultaneous-mint
// race the tie-break removes.
func (m *Manager) hasQuorum(proposed []ring.ProcID) bool {
	return 2*m.keptOfCurrent(proposed) >= len(m.view.Ring.Members())
}

// keptOfCurrent counts current-view members the proposal retains.
func (m *Manager) keptOfCurrent(proposed []ring.ProcID) int {
	kept := 0
	for _, p := range m.view.Ring.Members() {
		// A registered graceful leaver counts as support: it is a live,
		// cooperating member that asked to be excluded — unlike a
		// suspected member, it cannot be the other side of a partition
		// (it evicts itself on the NEWVIEW). Without this, a leave
		// overlapping a tolerated crash would push the retained count
		// below half and wedge the change forever.
		if slices.Contains(proposed, p) || m.leavers[p] {
			kept++
		}
	}
	return kept
}

// startChange (re)starts a view change with a fresh epoch, self as
// coordinator.
func (m *Manager) startChange(now time.Time) {
	if !m.installed {
		// A pre-admission joiner never coordinates. Its bootstrap view
		// makes it "coordinator" of a group of one, so every trigger that
		// reaches a joiner — a JoinReq from a fellow restarted member, a
		// change-timeout Tick while frozen on a real prepare — would
		// otherwise let two restarted processes mint a rump view of their
		// own, colliding with (and diverging from) the real group's next
		// epoch. Found by the chaos harness (seed 1785168074707084626:
		// two crash-restarted members installed a private two-member view
		// carrying the same epoch as the survivors' view). Admission is
		// always driven by a real member's coordinator.
		return
	}
	members := m.nextMembers()
	if len(members) == 0 {
		return
	}
	cur := m.view.Ring.Members()
	kept := m.keptOfCurrent(members)
	if 2*kept < len(cur) {
		return // minority side of a (suspected) partition: must not propose
	}
	if 2*kept == len(cur) && !m.halfDeferred {
		// Even-split tie-break (see hasQuorum): when a view splits exactly
		// in half under mutual false suspicion, both halves pass the
		// half-quorum test and would mint colliding same-epoch views. Break
		// the tie deterministically: the half retaining the lowest-ID
		// current-view member proposes now; the other half defers one
		// ChangeTimeout, during which the favored half's NEWVIEW evicts it
		// (false suspicion) or admits it (transient suspicion). Only if the
		// favored half stays silent for the full timeout — the failure
		// detector's own crash horizon — does the deferred half proceed,
		// which keeps recovery alive when half the view genuinely died.
		lowest := slices.Min(cur)
		if !slices.Contains(members, lowest) && !m.leavers[lowest] {
			m.halfDeferred = true
			m.changing = true
			m.changeDue = now.Add(m.cfg.ChangeTimeout)
			m.log.Info("view change deferred: even split without lowest member",
				"lowest", uint32(lowest), "kept", kept, "view_n", len(cur))
			return
		}
	}
	m.halfDeferred = false
	m.myEpoch = max(m.hiEpoch, m.myEpoch) + 1
	m.proposed = members
	m.proposedT = min(m.cfg.T, len(members)-1)
	m.collected = make(map[ring.ProcID]*State)
	m.log.Info("view change start",
		"epoch", m.myEpoch, "coordinator", uint32(m.cfg.Self),
		"members", len(members), "t", m.proposedT)
	prep := &Prepare{Epoch: m.myEpoch, Coord: m.cfg.Self, Members: members, T: m.proposedT}
	payload := EncodePrepare(prep)
	for _, p := range members {
		if p != m.cfg.Self {
			m.cfg.Callbacks.Send(p, payload)
		}
	}
	// Handle our own prepare directly.
	m.handlePrepare(prep, now)
}

// HandlePayload decodes and dispatches one KindVSC payload.
func (m *Manager) HandlePayload(from ring.ProcID, payload []byte, now time.Time) error {
	msg, err := Decode(payload)
	if err != nil {
		return err
	}
	switch v := msg.(type) {
	case *Prepare:
		m.handlePrepare(v, now)
	case *State:
		m.handleState(v)
	case *NewView:
		m.handleNewView(v, now)
	case *JoinReq:
		m.handleJoinReq(v, now)
	case *LeaveReq:
		m.handleLeaveReq(v, now)
	case *Suspicion:
		m.handleSuspicion(v, now)
	default:
		return fmt.Errorf("vsc: unhandled control message %T", msg)
	}
	return nil
}

// handleSuspicion folds a relayed suspicion in as if the local detector
// had raised it. A report about self is ignored — we cannot fail-stop on
// hearsay; if the group agrees, its NEWVIEW will exclude us and THAT is
// the eviction signal. OnSuspect's own routing then applies: act if we
// coordinate, forward along if someone earlier in the view is still alive
// by our books (the report may race our own detector's view of the
// coordinator).
func (m *Manager) handleSuspicion(s *Suspicion, now time.Time) {
	if s.ID == m.cfg.Self || !m.view.Ring.Contains(s.ID) {
		return
	}
	m.log.Info("suspicion relayed", "suspect", uint32(s.ID))
	m.OnSuspect(s.ID, now)
}

// prepareWins orders competing prepares: higher epoch wins; at equal epoch
// the coordinator earlier in the current view order wins (it is the
// rightful successor).
func (m *Manager) prepareWins(epoch uint64, coord ring.ProcID) bool {
	if epoch != m.hiEpoch {
		return epoch > m.hiEpoch
	}
	pos, ok := m.view.Ring.Position(coord)
	if !ok {
		return false
	}
	return pos < m.hiCoord
}

func (m *Manager) handlePrepare(p *Prepare, now time.Time) {
	if !slices.Contains(p.Members, m.cfg.Self) {
		return // not part of that future; ignore
	}
	if p.Epoch <= m.view.ID || !m.prepareWins(p.Epoch, p.Coord) {
		return
	}
	m.hiEpoch = p.Epoch
	if pos, ok := m.view.Ring.Position(p.Coord); ok {
		m.hiCoord = pos
	} else {
		m.hiCoord = 0
	}
	m.changing = true
	m.changeDue = now.Add(m.cfg.ChangeTimeout)
	// Freeze once per change: the snapshot taken for the highest prepare
	// is the one that counts; a restarted change snapshots again (the
	// engine is frozen, so the state is unchanged since the last one).
	snap := m.cfg.Callbacks.Snapshot()
	m.snapshot = &snap
	st := &State{Epoch: p.Epoch, From: m.cfg.Self, Joiner: !m.installed, Recovery: snap}
	if p.Coord == m.cfg.Self {
		m.handleState(st)
		return
	}
	m.cfg.Callbacks.Send(p.Coord, EncodeState(st))
}

func (m *Manager) handleState(s *State) {
	if s.Epoch != m.myEpoch || m.collected == nil {
		return // stale or not coordinating
	}
	if !slices.Contains(m.proposed, s.From) {
		return
	}
	m.collected[s.From] = s
	if len(m.collected) < len(m.proposed) {
		return
	}
	// Everyone answered: merge non-joiner states and finalize.
	var states []core.RecoveryState
	for _, st := range m.collected {
		if !st.Joiner {
			states = append(states, st.Recovery)
		}
	}
	if len(states) == 0 {
		// A brand-new group (all joiners, e.g. bootstrap): empty history.
		states = append(states, core.RecoveryState{NextDeliver: 1})
	}
	sync, err := core.MergeRecovery(states)
	if err != nil {
		// Impossible under the protocol; treat as fatal for this change
		// and let the timeout retry with fresh snapshots.
		m.collected = nil
		return
	}
	nv := &NewView{
		Epoch:   m.myEpoch,
		Coord:   m.cfg.Self,
		Members: m.proposed,
		T:       m.proposedT,
		Sync:    *sync,
	}
	payload := EncodeNewView(nv)
	for _, p := range m.proposed {
		if p != m.cfg.Self {
			m.cfg.Callbacks.Send(p, payload)
		}
	}
	// Graceful leavers are outside the new membership but still deserve to
	// learn the change went through (they evict themselves on receipt).
	for p := range m.leavers {
		if p != m.cfg.Self && !slices.Contains(m.proposed, p) {
			m.cfg.Callbacks.Send(p, payload)
		}
	}
	// Best-effort notification to every other excluded old-view member.
	// Under a perfect failure detector they are dead and the send costs
	// nothing; if one is actually alive (suspicion provoked by overload —
	// a model violation), receiving the NEWVIEW makes it evict itself and
	// fail-stop. Without this, a live evictee never learns the group moved
	// on: it keeps its stale view, its failure detector eventually
	// "suspects" the silent majority, and it drifts into a rump group that
	// can absorb rejoining members — a partition that P promises cannot
	// form but an overloaded host can still manufacture.
	for _, p := range m.view.Ring.Members() {
		if p != m.cfg.Self && !slices.Contains(m.proposed, p) && !m.leavers[p] {
			m.cfg.Callbacks.Send(p, payload)
		}
	}
	m.handleNewView(nv, time.Time{})
}

func (m *Manager) handleNewView(nv *NewView, now time.Time) {
	if nv.Epoch <= m.view.ID {
		return // stale
	}
	if !slices.Contains(nv.Members, m.cfg.Self) {
		if !m.installed {
			// A joiner awaiting admission can see the view that evicted its
			// crashed previous incarnation (the coordinator notifies
			// excluded old-view members best-effort, and the restarted
			// process answers on the same transport identity). It was never
			// a member of that view, so this is not its eviction.
			return
		}
		// Excluded: graceful leave honored (or false suspicion — cannot
		// happen with P, but do not silently diverge).
		m.changing = false
		m.halfDeferred = false
		m.log.Warn("excluded from view", "epoch", nv.Epoch, "members", len(nv.Members))
		if m.cfg.Callbacks.Evicted != nil {
			m.cfg.Callbacks.Evicted()
		}
		return
	}
	r, err := ring.New(nv.Members, min(nv.T, len(nv.Members)-1))
	if err != nil {
		return // malformed; timeout will retry
	}
	v := core.View{ID: nv.Epoch, Ring: r}
	var rebroadcast []core.PendingMsg
	if m.snapshot != nil && m.installed {
		rebroadcast = m.snapshot.Rebroadcast(&nv.Sync)
	}
	m.view = v
	m.alive = make(map[ring.ProcID]bool, len(nv.Members))
	for _, p := range nv.Members {
		m.alive[p] = true
	}
	m.joiners = make(map[ring.ProcID]bool)
	m.leavers = make(map[ring.ProcID]bool)
	m.rotate = false
	m.changing = false
	m.halfDeferred = false
	m.suspFwdDue = time.Time{}
	m.snapshot = nil
	m.collected = nil
	m.hiEpoch = nv.Epoch
	m.hiCoord = 0
	m.installed = true
	m.cfg.Callbacks.Install(v, &nv.Sync, rebroadcast)
	_ = now
}

func (m *Manager) handleJoinReq(j *JoinReq, now time.Time) {
	if _, isSelf := m.coordinator(); !isSelf {
		return // joiner contacts everyone; only the coordinator acts
	}
	if m.alive[j.ID] && m.view.Ring.Contains(j.ID) {
		// A JoinReq from a current member is a restarted incarnation: the
		// old process died and came back (fail-stop, possibly before the
		// failure detector reacted — the new incarnation's heartbeats keep
		// the ID looking alive). The new incarnation's engine sits in its
		// bootstrap view, discarding ring traffic as stale, so without
		// intervention the group would wedge. A membership-preserving view
		// change resynchronizes it: the flush treats it as a joiner (its
		// Manager reports Joiner state until it installs a view) and
		// re-bases its engine on the survivors' merged recovery state.
		// Incarnation numbers deduplicate retransmitted requests from the
		// same life, which would otherwise churn views forever.
		if j.Incarnation <= m.incarnations[j.ID] {
			return
		}
		m.incarnations[j.ID] = j.Incarnation
		m.startChange(now)
		return
	}
	if m.joiners[j.ID] {
		return
	}
	m.joiners[j.ID] = true
	if j.Incarnation > m.incarnations[j.ID] {
		m.incarnations[j.ID] = j.Incarnation
	}
	m.startChange(now)
}

func (m *Manager) handleLeaveReq(l *LeaveReq, now time.Time) {
	if _, isSelf := m.coordinator(); !isSelf {
		return
	}
	if !m.view.Ring.Contains(l.ID) {
		return
	}
	m.leavers[l.ID] = true
	m.startChange(now)
}
