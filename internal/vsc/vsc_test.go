package vsc

import (
	"reflect"
	"testing"
	"time"

	"fsr/internal/core"
	"fsr/internal/ring"
	"fsr/internal/wire"
)

// harness wires a set of Managers through a synchronous in-memory router
// with crash injection. Callbacks record installs; snapshots are canned.
type harness struct {
	t        *testing.T
	managers map[ring.ProcID]*Manager
	inboxes  map[ring.ProcID][][2]any // {from, payload}
	crashed  map[ring.ProcID]bool
	installs map[ring.ProcID][]core.View
	snaps    map[ring.ProcID]core.RecoveryState
	rebro    map[ring.ProcID][]core.PendingMsg
	evicted  map[ring.ProcID]bool
	now      time.Time
}

func newHarness(t *testing.T) *harness {
	return &harness{
		t:        t,
		managers: map[ring.ProcID]*Manager{},
		inboxes:  map[ring.ProcID][][2]any{},
		crashed:  map[ring.ProcID]bool{},
		installs: map[ring.ProcID][]core.View{},
		snaps:    map[ring.ProcID]core.RecoveryState{},
		rebro:    map[ring.ProcID][]core.PendingMsg{},
		evicted:  map[ring.ProcID]bool{},
		now:      time.Unix(1000, 0),
	}
}

func (h *harness) add(id ring.ProcID, initial core.View, joiner bool) *Manager {
	return h.addInc(id, initial, joiner, 1)
}

// addInc is add with an explicit incarnation number, for restart tests.
func (h *harness) addInc(id ring.ProcID, initial core.View, joiner bool, inc uint64) *Manager {
	h.t.Helper()
	h.snaps[id] = core.RecoveryState{NextDeliver: 1}
	cfg := Config{
		Self:          id,
		T:             2,
		ChangeTimeout: 100 * time.Millisecond,
		Joiner:        joiner,
		Incarnation:   inc,
		Callbacks: Callbacks{
			Send: func(to ring.ProcID, payload []byte) {
				if !h.crashed[to] && !h.crashed[id] {
					h.inboxes[to] = append(h.inboxes[to], [2]any{id, payload})
				}
			},
			Snapshot: func() core.RecoveryState { return h.snaps[id] },
			Install: func(v core.View, sync *core.Sync, rb []core.PendingMsg) {
				h.installs[id] = append(h.installs[id], v)
				h.rebro[id] = append(h.rebro[id], rb...)
			},
			Evicted: func() { h.evicted[id] = true },
		},
	}
	m, err := NewManager(cfg, initial)
	if err != nil {
		h.t.Fatal(err)
	}
	h.managers[id] = m
	return m
}

// pump delivers queued control messages until quiescence.
func (h *harness) pump() {
	for range 10000 {
		moved := false
		for id, mgr := range h.managers {
			if h.crashed[id] || len(h.inboxes[id]) == 0 {
				continue
			}
			msg := h.inboxes[id][0]
			h.inboxes[id] = h.inboxes[id][1:]
			if err := mgr.HandlePayload(msg[0].(ring.ProcID), msg[1].([]byte), h.now); err != nil {
				h.t.Fatalf("HandlePayload at %d: %v", id, err)
			}
			moved = true
		}
		if !moved {
			return
		}
	}
	h.t.Fatal("control traffic never quiesced")
}

func (h *harness) crash(id ring.ProcID) {
	h.crashed[id] = true
	h.inboxes[id] = nil
}

func (h *harness) suspectEverywhere(dead ring.ProcID) {
	for id, mgr := range h.managers {
		if !h.crashed[id] {
			mgr.OnSuspect(dead, h.now)
		}
	}
}

func (h *harness) lastView(id ring.ProcID) core.View {
	vs := h.installs[id]
	if len(vs) == 0 {
		h.t.Fatalf("node %d installed no view", id)
	}
	return vs[len(vs)-1]
}

func groupView(t *testing.T, ids []ring.ProcID, tol int) core.View {
	t.Helper()
	return core.View{ID: 1, Ring: ring.MustNew(ids, tol)}
}

func bootstrap(t *testing.T, h *harness, ids []ring.ProcID) {
	t.Helper()
	v := groupView(t, ids, min(2, len(ids)-1))
	for _, id := range ids {
		h.add(id, v, false)
	}
}

func TestCrashOfStandardMember(t *testing.T) {
	h := newHarness(t)
	ids := []ring.ProcID{10, 11, 12, 13, 14}
	bootstrap(t, h, ids)
	h.crash(13)
	h.suspectEverywhere(13)
	h.pump()
	want := []ring.ProcID{10, 11, 12, 14}
	for _, id := range want {
		v := h.lastView(id)
		if !reflect.DeepEqual(v.Ring.Members(), want) {
			t.Fatalf("node %d view members %v, want %v", id, v.Ring.Members(), want)
		}
		if v.ID <= 1 {
			t.Fatalf("node %d epoch not advanced: %d", id, v.ID)
		}
	}
	// All survivors agree on the epoch.
	e := h.lastView(10).ID
	for _, id := range want {
		if h.lastView(id).ID != e {
			t.Fatalf("epoch disagreement: %d vs %d", h.lastView(id).ID, e)
		}
	}
}

func TestCrashOfLeaderPromotesNext(t *testing.T) {
	h := newHarness(t)
	ids := []ring.ProcID{10, 11, 12, 13}
	bootstrap(t, h, ids)
	h.crash(10)
	h.suspectEverywhere(10)
	h.pump()
	for _, id := range []ring.ProcID{11, 12, 13} {
		v := h.lastView(id)
		if v.Ring.Leader() != 11 {
			t.Fatalf("node %d: leader %d, want 11", id, v.Ring.Leader())
		}
	}
}

func TestJoin(t *testing.T) {
	h := newHarness(t)
	ids := []ring.ProcID{20, 21, 22}
	bootstrap(t, h, ids)
	solo := core.View{ID: 0, Ring: ring.MustNew([]ring.ProcID{25}, 0)}
	j := h.add(25, solo, true)
	j.RequestJoin([]ring.ProcID{20, 21, 22})
	h.pump()
	want := []ring.ProcID{20, 21, 22, 25}
	for _, id := range want {
		if got := h.lastView(id).Ring.Members(); !reflect.DeepEqual(got, want) {
			t.Fatalf("node %d members %v, want %v", id, got, want)
		}
	}
	// The joiner contributed no recovery state: sync must not regress.
	if len(h.rebro[25]) != 0 {
		t.Errorf("joiner asked to rebroadcast %v", h.rebro[25])
	}
}

func TestLeave(t *testing.T) {
	h := newHarness(t)
	ids := []ring.ProcID{30, 31, 32, 33}
	bootstrap(t, h, ids)
	h.managers[32].RequestLeave()
	h.pump()
	want := []ring.ProcID{30, 31, 33}
	for _, id := range want {
		if got := h.lastView(id).Ring.Members(); !reflect.DeepEqual(got, want) {
			t.Fatalf("node %d members %v, want %v", id, got, want)
		}
	}
	if !h.evicted[32] {
		t.Error("leaver not notified of eviction")
	}
}

func TestLeaderLeaveIsRotation(t *testing.T) {
	// The paper's leader-rotation device: the leader executes a leave
	// followed by a join. Here we use RotateLeader directly.
	h := newHarness(t)
	ids := []ring.ProcID{40, 41, 42}
	bootstrap(t, h, ids)
	h.managers[40].RotateLeader(h.now)
	h.pump()
	want := []ring.ProcID{41, 42, 40}
	for _, id := range ids {
		if got := h.lastView(id).Ring.Members(); !reflect.DeepEqual(got, want) {
			t.Fatalf("node %d members %v, want %v", id, got, want)
		}
	}
	if h.lastView(41).Ring.Leader() != 41 {
		t.Error("rotation did not promote the successor")
	}
}

func TestRotateIgnoredFromNonCoordinator(t *testing.T) {
	h := newHarness(t)
	ids := []ring.ProcID{50, 51, 52}
	bootstrap(t, h, ids)
	h.managers[51].RotateLeader(h.now)
	h.pump()
	for _, id := range ids {
		if len(h.installs[id]) != 0 {
			t.Fatalf("non-coordinator rotation installed a view at %d", id)
		}
	}
}

func TestCoordinatorCrashMidChangeRecoversByTimeout(t *testing.T) {
	h := newHarness(t)
	ids := []ring.ProcID{60, 61, 62, 63}
	bootstrap(t, h, ids)
	// 63 crashes; coordinator 60 starts a change (its PREPARE for epoch 2
	// lands in 61/62's inboxes) and then crashes itself before collecting
	// any STATE. 61 takes over with its own epoch-2 PREPARE, but 60's
	// competing PREPARE wins the tie-break (earlier ring position), so the
	// survivors freeze toward a dead coordinator: only the change timeout
	// can recover the group.
	h.crash(63)
	h.suspectEverywhere(63) // 60 starts change epoch 2; 61/62 defer to it
	h.crash(60)
	h.suspectEverywhere(60) // 61 starts its own epoch-2 change
	h.pump()
	if !h.managers[62].Changing() || h.managers[61].installed && len(h.installs[61]) > 0 {
		t.Fatal("expected the group to stall on the dead coordinator's prepare")
	}
	// Fire the change timeout at the survivors: 61 restarts with epoch 3.
	h.now = h.now.Add(time.Second)
	for _, id := range []ring.ProcID{61, 62} {
		h.managers[id].Tick(h.now)
	}
	h.pump()
	want := []ring.ProcID{61, 62}
	for _, id := range want {
		v := h.lastView(id)
		if !reflect.DeepEqual(v.Ring.Members(), want) {
			t.Fatalf("node %d members %v, want %v", id, v.Ring.Members(), want)
		}
		if h.managers[id].Changing() {
			t.Fatalf("node %d still changing", id)
		}
	}
}

func TestStalePrepareIgnored(t *testing.T) {
	h := newHarness(t)
	ids := []ring.ProcID{70, 71}
	bootstrap(t, h, ids)
	p := &Prepare{Epoch: 1, Coord: 71, Members: ids, T: 1} // epoch == view.ID: stale
	if err := h.managers[70].HandlePayload(71, EncodePrepare(p), h.now); err != nil {
		t.Fatal(err)
	}
	if h.managers[70].Changing() {
		t.Error("stale prepare froze the member")
	}
}

func TestEqualEpochTieBreak(t *testing.T) {
	h := newHarness(t)
	ids := []ring.ProcID{80, 81, 82}
	bootstrap(t, h, ids)
	m := h.managers[82]
	// Two competing prepares with the same epoch: the coordinator earlier
	// in view order must win even if it arrives second.
	late := &Prepare{Epoch: 5, Coord: 81, Members: []ring.ProcID{81, 82}, T: 1}
	early := &Prepare{Epoch: 5, Coord: 80, Members: []ring.ProcID{80, 82}, T: 1}
	if err := m.HandlePayload(81, EncodePrepare(late), h.now); err != nil {
		t.Fatal(err)
	}
	if err := m.HandlePayload(80, EncodePrepare(early), h.now); err != nil {
		t.Fatal(err)
	}
	// 82's state must have gone to 80 (the winner) with epoch 5: check the
	// last message in 80's inbox is a State addressed from 82.
	msgs := h.inboxes[80]
	if len(msgs) == 0 {
		t.Fatal("winner received no state")
	}
	last := msgs[len(msgs)-1]
	dec, err := Decode(last[1].([]byte))
	if err != nil {
		t.Fatal(err)
	}
	st, ok := dec.(*State)
	if !ok || st.From != 82 || st.Epoch != 5 {
		t.Fatalf("winner got %T %+v", dec, dec)
	}
}

func TestRebroadcastComputedFromSnapshot(t *testing.T) {
	h := newHarness(t)
	ids := []ring.ProcID{90, 91, 92}
	bootstrap(t, h, ids)
	// 91 has an own pending segment that no sync will preserve.
	h.snaps[91] = core.RecoveryState{
		NextDeliver: 1,
		OwnPending: []core.PendingMsg{
			{ID: wire.MsgID{Origin: 91, Local: 7}, Parts: 1, Body: []byte("mine")},
		},
	}
	h.crash(92)
	h.suspectEverywhere(92)
	h.pump()
	if len(h.rebro[91]) != 1 || h.rebro[91][0].ID.Local != 7 {
		t.Fatalf("rebroadcast at 91 = %v", h.rebro[91])
	}
	if len(h.rebro[90]) != 0 {
		t.Errorf("unexpected rebroadcast at 90: %v", h.rebro[90])
	}
}

func TestManagerConfigValidation(t *testing.T) {
	v := groupView(t, []ring.ProcID{1}, 0)
	if _, err := NewManager(Config{Self: 1}, v); err == nil {
		t.Error("missing callbacks accepted")
	}
}

func TestCodecRoundTrips(t *testing.T) {
	prep := &Prepare{Epoch: 9, Coord: 3, Members: []ring.ProcID{3, 4, 5}, T: 2}
	got, err := Decode(EncodePrepare(prep))
	if err != nil || !reflect.DeepEqual(got, prep) {
		t.Fatalf("prepare: %+v, %v", got, err)
	}
	st := &State{
		Epoch: 4, From: 8, Joiner: true,
		Recovery: core.RecoveryState{
			NextDeliver: 11,
			Sequenced: []core.SequencedMsg{
				{ID: wire.MsgID{Origin: 1, Local: 2}, Seq: 11, Part: 0, Parts: 2, Body: []byte("abc")},
			},
			OwnPending: []core.PendingMsg{
				{ID: wire.MsgID{Origin: 8, Local: 3}, Part: 1, Parts: 2, Body: []byte("xy")},
			},
		},
	}
	got, err = Decode(EncodeState(st))
	if err != nil || !reflect.DeepEqual(got, st) {
		t.Fatalf("state: %+v, %v", got, err)
	}
	nv := &NewView{
		Epoch: 12, Coord: 1, Members: []ring.ProcID{1, 2}, T: 1,
		Sync: core.Sync{StartSeq: 5, Sequenced: []core.SequencedMsg{
			{ID: wire.MsgID{Origin: 2, Local: 0}, Seq: 5, Parts: 1, Body: []byte("b")},
		}},
	}
	got, err = Decode(EncodeNewView(nv))
	if err != nil || !reflect.DeepEqual(got, nv) {
		t.Fatalf("newview: %+v, %v", got, err)
	}
	jr := &JoinReq{ID: 77}
	got, err = Decode(EncodeJoinReq(jr))
	if err != nil || !reflect.DeepEqual(got, jr) {
		t.Fatalf("join: %+v, %v", got, err)
	}
	lr := &LeaveReq{ID: 78}
	got, err = Decode(EncodeLeaveReq(lr))
	if err != nil || !reflect.DeepEqual(got, lr) {
		t.Fatalf("leave: %+v, %v", got, err)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := Decode([]byte{wire.KindVSC, 99}); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := Decode([]byte{wire.KindFSR, msgPrepare}); err == nil {
		t.Error("wrong kind accepted")
	}
	buf := EncodePrepare(&Prepare{Epoch: 1, Coord: 2, Members: []ring.ProcID{1, 2, 3}})
	for i := range buf {
		if _, err := Decode(buf[:i]); err == nil {
			t.Fatalf("truncated prefix %d accepted", i)
		}
	}
}

// TestRestartedMemberResync: a member that crashes and restarts so fast
// that no survivor ever suspects it (its new incarnation's heartbeats keep
// the ID alive) rejoins by sending a JoinReq with a higher incarnation.
// The coordinator must answer with a membership-preserving view change so
// the new incarnation resynchronizes; without it the group wedges, the
// restarted engine discarding all ring traffic as stale.
func TestRestartedMemberResync(t *testing.T) {
	h := newHarness(t)
	ids := []ring.ProcID{1, 2, 3}
	bootstrap(t, h, ids)
	// Let the group settle in its initial view (no change yet).
	h.pump()

	// Node 2 "restarts": its manager is replaced by a fresh joiner in the
	// solo bootstrap view, with a bumped incarnation. No survivor ever
	// suspected it.
	solo := core.View{ID: 0, Ring: ring.MustNew([]ring.ProcID{2}, 0)}
	restarted := h.addInc(2, solo, true, 2)
	restarted.RequestJoin([]ring.ProcID{1, 3})
	h.pump()

	// Everyone — including the restarted incarnation — must have installed
	// a new epoch with the same three members.
	for _, id := range ids {
		v := h.lastView(id)
		if !reflect.DeepEqual(v.Ring.Members(), ids) {
			t.Fatalf("node %d members %v after resync, want %v", id, v.Ring.Members(), ids)
		}
		if v.ID <= 1 {
			t.Fatalf("node %d still in epoch %d; no resynchronizing change ran", id, v.ID)
		}
	}
	epoch := h.lastView(1).ID
	installs := len(h.installs[1])

	// A duplicate JoinReq from the same incarnation must NOT churn views.
	restarted.RequestJoin([]ring.ProcID{1, 3})
	h.pump()
	if got := len(h.installs[1]); got != installs {
		t.Fatalf("duplicate JoinReq produced %d extra view changes", got-installs)
	}

	// A second restart (higher incarnation still) must resync again.
	solo2 := core.View{ID: 0, Ring: ring.MustNew([]ring.ProcID{2}, 0)}
	again := h.addInc(2, solo2, true, 3)
	again.RequestJoin([]ring.ProcID{1, 3})
	h.pump()
	if got := h.lastView(1).ID; got <= epoch {
		t.Fatalf("second restart left epoch at %d (was %d)", got, epoch)
	}
}

// TestSymmetricFalseSuspicionNoSplitBrain: when two live factions each
// falsely suspect the other (the overload case the perfect-FD model
// excludes), only a faction holding a primary component of the current
// view may propose; the minority installs nothing of its own and halts
// when the majority's NEWVIEW evicts it — so two disjoint views can never
// carry the same epoch. Found by the chaos harness (seed
// 1785168074707084626).
func TestSymmetricFalseSuspicionNoSplitBrain(t *testing.T) {
	ids := []ring.ProcID{0, 1, 2, 3, 4}
	v := groupView(t, ids, 2)
	h := newHarness(t)
	for _, id := range ids {
		h.add(id, v, false)
	}
	// Factions {0,1,2} and {3,4} suspect each other. Node 3 only becomes
	// coordinator of its faction once it has suspected 0, 1 and 2 — at
	// which point its candidate view {3,4} holds 2 of 5 members: no
	// primary component, so it must propose nothing at all.
	for _, b := range []ring.ProcID{3, 4} {
		for _, a := range []ring.ProcID{0, 1, 2} {
			h.managers[b].OnSuspect(a, h.now)
		}
	}
	for _, a := range []ring.ProcID{0, 1, 2} {
		for _, b := range []ring.ProcID{3, 4} {
			h.managers[a].OnSuspect(b, h.now)
		}
	}
	h.pump()
	// The majority faction installs the next view without 3 and 4.
	for _, a := range []ring.ProcID{0, 1, 2} {
		got := h.lastView(a)
		if got.ID <= v.ID {
			t.Fatalf("majority member %d stuck in view %d", a, got.ID)
		}
		if want := []ring.ProcID{0, 1, 2}; !reflect.DeepEqual(got.Ring.Members(), want) {
			t.Fatalf("majority member %d installed %v, want %v", a, got.Ring.Members(), want)
		}
	}
	// The minority proposed nothing (no install of its own) and was
	// evicted by the majority's best-effort NEWVIEW instead of diverging.
	for _, b := range []ring.ProcID{3, 4} {
		for _, inst := range h.installs[b] {
			if !inst.Ring.Contains(0) {
				t.Fatalf("minority member %d installed a rump view %v", b, inst.Ring.Members())
			}
		}
		if !h.evicted[b] {
			t.Fatalf("minority member %d never evicted itself", b)
		}
	}
}

// TestMinoritySurvivorBlocks: a strict minority of the current view (one
// survivor of three here) holds no primary component and must not found a
// rump view, no matter how long its timeouts fire; exactly half (one
// survivor of two) remains a supported recovery.
func TestMinoritySurvivorBlocks(t *testing.T) {
	ids := []ring.ProcID{7, 8, 9}
	v := groupView(t, ids, 1)
	h := newHarness(t)
	for _, id := range ids {
		h.add(id, v, false)
	}
	// 7 and 8 really are down: were they alive, 9's relayed suspicion
	// would let them form the legitimate majority view without 9.
	h.crash(7)
	h.crash(8)
	h.managers[9].OnSuspect(7, h.now)
	h.managers[9].OnSuspect(8, h.now)
	h.pump()
	h.now = h.now.Add(time.Second)
	h.managers[9].Tick(h.now)
	h.pump()
	if len(h.installs[9]) != 0 {
		t.Fatalf("minority survivor installed %v", h.installs[9])
	}

	// Exactly half: a 2-member group evicting its crashed second member.
	ids2 := []ring.ProcID{7, 9}
	v2 := groupView(t, ids2, 1)
	h2 := newHarness(t)
	h2.add(7, v2, false)
	h2.add(9, v2, false)
	h2.crash(9)
	h2.managers[7].OnSuspect(9, h2.now)
	h2.pump()
	got := h2.lastView(7)
	if want := []ring.ProcID{7}; !reflect.DeepEqual(got.Ring.Members(), want) {
		t.Fatalf("survivor installed %v, want %v", got.Ring.Members(), want)
	}
}

// TestJoinersNeverCoordinate: two pre-admission joiners that learn of each
// other (restart storms cross-send JoinReqs to every known contact) must
// not assemble a private view among themselves; admission only ever comes
// from a real member's coordinator.
func TestJoinersNeverCoordinate(t *testing.T) {
	h := newHarness(t)
	a := h.add(20, core.View{ID: 0, Ring: ring.MustNew([]ring.ProcID{20}, 0)}, true)
	b := h.add(21, core.View{ID: 0, Ring: ring.MustNew([]ring.ProcID{21}, 0)}, true)
	a.RequestJoin([]ring.ProcID{21})
	b.RequestJoin([]ring.ProcID{20})
	h.pump()
	if len(h.installs[20]) != 0 || len(h.installs[21]) != 0 {
		t.Fatalf("joiners installed views among themselves: %v / %v",
			h.installs[20], h.installs[21])
	}
	// A change-timeout tick on a frozen joiner must not mint a view either.
	h.now = h.now.Add(time.Second)
	a.Tick(h.now)
	b.Tick(h.now)
	h.pump()
	if len(h.installs[20]) != 0 || len(h.installs[21]) != 0 {
		t.Fatalf("joiner tick minted a view: %v / %v", h.installs[20], h.installs[21])
	}
}

// TestLeaveOverlappingCrashStillCompletes: a graceful leaver counts as
// quorum support (it is live and cooperating), so a leave announced just
// before a tolerated crash must not push the retained count below half
// and wedge the group — the coordinator still installs the shrunken view
// and the leaver still learns of its departure.
func TestLeaveOverlappingCrashStillCompletes(t *testing.T) {
	ids := []ring.ProcID{0, 1, 2}
	h := newHarness(t)
	bootstrap(t, h, ids)
	// Member 1 asks to leave; its request reaches coordinator 0 but member
	// 2 crashes before the change completes.
	h.managers[1].RequestLeave()
	h.crash(2)
	h.suspectEverywhere(2)
	h.pump()
	h.now = h.now.Add(time.Second)
	for _, id := range []ring.ProcID{0, 1} {
		if !h.crashed[id] {
			h.managers[id].Tick(h.now)
		}
	}
	h.pump()
	got := h.lastView(0)
	if want := []ring.ProcID{0}; !reflect.DeepEqual(got.Ring.Members(), want) {
		t.Fatalf("survivor installed %v, want %v", got.Ring.Members(), want)
	}
	if !h.evicted[1] {
		t.Fatal("leaver never learned its departure completed")
	}
}

// TestSymmetricEvenSplitTieBreak: a perfectly even split under MUTUAL
// false suspicion — the residual split-brain hole left by the half-quorum
// guard. Both halves retain exactly half the view and would, without the
// tie-break, mint colliding same-epoch views. The deterministic tie-break
// lets only the half retaining the lowest-ID current-view member propose
// immediately; the other half defers, receives the favored half's NEWVIEW
// within the deferral window, and evicts itself instead of diverging.
func TestSymmetricEvenSplitTieBreak(t *testing.T) {
	ids := []ring.ProcID{10, 11, 12, 13}
	v := groupView(t, ids, 2)
	h := newHarness(t)
	for _, id := range ids {
		h.add(id, v, false)
	}
	// Halves {10,11} and {12,13} suspect each other. Feed the unfavored
	// half first so its coordinator (12) reaches the exactly-half state
	// and must decide before any traffic from the favored half arrives.
	for _, b := range []ring.ProcID{12, 13} {
		for _, a := range []ring.ProcID{10, 11} {
			h.managers[b].OnSuspect(a, h.now)
		}
	}
	for _, a := range []ring.ProcID{10, 11} {
		for _, b := range []ring.ProcID{12, 13} {
			h.managers[a].OnSuspect(b, h.now)
		}
	}
	h.pump()
	// The half with the lowest-ID member (10) installs the next view.
	for _, a := range []ring.ProcID{10, 11} {
		got := h.lastView(a)
		if got.ID <= v.ID {
			t.Fatalf("favored member %d stuck in view %d", a, got.ID)
		}
		if want := []ring.ProcID{10, 11}; !reflect.DeepEqual(got.Ring.Members(), want) {
			t.Fatalf("favored member %d installed %v, want %v", a, got.Ring.Members(), want)
		}
	}
	// The unfavored half deferred its proposal, never installed a rump
	// view, and fail-stopped on the favored half's NEWVIEW.
	for _, b := range []ring.ProcID{12, 13} {
		if len(h.installs[b]) != 0 {
			t.Fatalf("unfavored member %d installed %v, want nothing", b, h.installs[b])
		}
		if !h.evicted[b] {
			t.Fatalf("unfavored member %d never evicted itself", b)
		}
	}
}

// TestEvenSplitWithoutLowestRecoversByTimeout: the liveness side of the
// tie-break. When the half holding the lowest-ID member genuinely crashed,
// the surviving (unfavored) half must not wedge forever: it defers one
// ChangeTimeout, hears nothing, and then completes the change itself.
func TestEvenSplitWithoutLowestRecoversByTimeout(t *testing.T) {
	ids := []ring.ProcID{10, 11, 12, 13}
	v := groupView(t, ids, 2)
	h := newHarness(t)
	for _, id := range ids {
		h.add(id, v, false)
	}
	h.crash(10)
	h.crash(11)
	h.suspectEverywhere(10)
	h.suspectEverywhere(11)
	h.pump()
	// Deferral window: the survivors hold back (no lowest-ID member).
	for _, b := range []ring.ProcID{12, 13} {
		if len(h.installs[b]) != 0 {
			t.Fatalf("survivor %d proposed during the deferral window: %v", b, h.installs[b])
		}
	}
	h.now = h.now.Add(time.Second)
	for _, b := range []ring.ProcID{12, 13} {
		h.managers[b].Tick(h.now)
	}
	h.pump()
	for _, b := range []ring.ProcID{12, 13} {
		got := h.lastView(b)
		if want := []ring.ProcID{12, 13}; !reflect.DeepEqual(got.Ring.Members(), want) {
			t.Fatalf("survivor %d installed %v, want %v", b, got.Ring.Members(), want)
		}
	}
}
