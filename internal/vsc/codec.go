// Binary codec for the view-change control messages (KindVSC payloads).
// Same hand-rolled little-endian style as package wire; control traffic is
// rare (membership changes only), so clarity wins over micro-optimization,
// but the format still round-trips recovery bodies without re-encoding.

package vsc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"fsr/internal/core"
	"fsr/internal/ring"
	"fsr/internal/wire"
)

// Control message types.
const (
	msgPrepare byte = iota + 1
	msgState
	msgNewView
	msgJoinReq
	msgLeaveReq
	msgSuspicion
)

// ErrBadControl reports an undecodable control payload.
var ErrBadControl = errors.New("vsc: bad control payload")

// ErrUnknownType reports a structurally sound control payload whose type
// byte this build does not know — a newer-minor peer's message. Receivers
// skip these (wire version policy: unknown kinds/types are not fatal).
var ErrUnknownType = errors.New("vsc: unknown control message type")

// Prepare opens a view change: the coordinator asks every proposed member
// to freeze and report its recovery state.
type Prepare struct {
	Epoch   uint64
	Coord   ring.ProcID
	Members []ring.ProcID // proposed new-view order
	T       int
}

// State is one member's flush contribution.
type State struct {
	Epoch    uint64
	From     ring.ProcID
	Joiner   bool // true: exclude Recovery from the merge (fresh process)
	Recovery core.RecoveryState
}

// NewView finalizes a view change: agreed membership plus the merged sync.
type NewView struct {
	Epoch   uint64
	Coord   ring.ProcID
	Members []ring.ProcID
	T       int
	Sync    core.Sync
}

// JoinReq asks the coordinator to admit a new process. Incarnation
// distinguishes successive lives of one process ID (see Config): it lets
// the coordinator recognize a crash-restarted member that the failure
// detector never caught, and deduplicate retransmissions within one life.
type JoinReq struct {
	ID          ring.ProcID
	Incarnation uint64
}

// LeaveReq asks the coordinator to exclude a (still live) process.
type LeaveReq struct{ ID ring.ProcID }

// Suspicion forwards a failure-detector suspicion to the coordinator.
// Only the coordinator acts on suspicions (it drives the view change), so
// under an ASYMMETRIC fault — the suspected member silent toward the
// suspecting member but perfectly audible to the coordinator — the
// suspicion would otherwise die where it was observed and the ring edge
// through the silent pair would stay wedged forever (bug #16, found by the
// asym-partition chaos profile). A non-coordinator therefore reports what
// it saw; the coordinator treats the report exactly like a local
// suspicion.
type Suspicion struct{ ID ring.ProcID }

type writer struct{ buf []byte }

func (w *writer) u8(v byte)    { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *writer) members(ms []ring.ProcID) {
	w.u16(uint16(len(ms)))
	for _, m := range ms {
		w.u32(uint32(m))
	}
}

type creader struct {
	buf []byte
	off int
}

func (r *creader) rem() int { return len(r.buf) - r.off }
func (r *creader) u8() (byte, error) {
	if r.rem() < 1 {
		return 0, ErrBadControl
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}
func (r *creader) u16() (uint16, error) {
	if r.rem() < 2 {
		return 0, ErrBadControl
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}
func (r *creader) u32() (uint32, error) {
	if r.rem() < 4 {
		return 0, ErrBadControl
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}
func (r *creader) u64() (uint64, error) {
	if r.rem() < 8 {
		return 0, ErrBadControl
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}
func (r *creader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil || int(n) > r.rem() {
		return nil, ErrBadControl
	}
	v := r.buf[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return v, nil
}
func (r *creader) members() ([]ring.ProcID, error) {
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	ms := make([]ring.ProcID, n)
	for i := range ms {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		ms[i] = ring.ProcID(v)
	}
	return ms, nil
}

// EncodePrepare serializes a Prepare.
func EncodePrepare(p *Prepare) []byte {
	w := &writer{buf: []byte{wire.KindVSC, msgPrepare}}
	w.u64(p.Epoch)
	w.u32(uint32(p.Coord))
	w.members(p.Members)
	w.u16(uint16(p.T))
	return w.buf
}

// EncodeState serializes a State, including recovery bodies.
func EncodeState(s *State) []byte {
	w := &writer{buf: []byte{wire.KindVSC, msgState}}
	w.u64(s.Epoch)
	w.u32(uint32(s.From))
	if s.Joiner {
		w.u8(1)
	} else {
		w.u8(0)
	}
	encodeRecovery(w, &s.Recovery)
	return w.buf
}

// EncodeNewView serializes a NewView, including sync bodies.
func EncodeNewView(nv *NewView) []byte {
	w := &writer{buf: []byte{wire.KindVSC, msgNewView}}
	w.u64(nv.Epoch)
	w.u32(uint32(nv.Coord))
	w.members(nv.Members)
	w.u16(uint16(nv.T))
	w.u64(nv.Sync.StartSeq)
	w.u32(uint32(len(nv.Sync.Sequenced)))
	for i := range nv.Sync.Sequenced {
		encodeSequenced(w, &nv.Sync.Sequenced[i])
	}
	return w.buf
}

// EncodeJoinReq serializes a JoinReq.
func EncodeJoinReq(j *JoinReq) []byte {
	w := &writer{buf: []byte{wire.KindVSC, msgJoinReq}}
	w.u32(uint32(j.ID))
	w.u64(j.Incarnation)
	return w.buf
}

// EncodeLeaveReq serializes a LeaveReq.
func EncodeLeaveReq(l *LeaveReq) []byte {
	w := &writer{buf: []byte{wire.KindVSC, msgLeaveReq}}
	w.u32(uint32(l.ID))
	return w.buf
}

// EncodeSuspicion serializes a Suspicion.
func EncodeSuspicion(s *Suspicion) []byte {
	w := &writer{buf: []byte{wire.KindVSC, msgSuspicion}}
	w.u32(uint32(s.ID))
	return w.buf
}

func encodeRecovery(w *writer, rs *core.RecoveryState) {
	w.u64(rs.NextDeliver)
	w.u32(uint32(len(rs.Sequenced)))
	for i := range rs.Sequenced {
		encodeSequenced(w, &rs.Sequenced[i])
	}
	w.u32(uint32(len(rs.OwnPending)))
	for i := range rs.OwnPending {
		p := &rs.OwnPending[i]
		w.u32(uint32(p.ID.Origin))
		w.u64(p.ID.Local)
		w.u32(p.Part)
		w.u32(p.Parts)
		w.bytes(p.Body)
	}
}

func encodeSequenced(w *writer, m *core.SequencedMsg) {
	w.u32(uint32(m.ID.Origin))
	w.u64(m.ID.Local)
	w.u64(m.Seq)
	w.u32(m.Part)
	w.u32(m.Parts)
	w.bytes(m.Body)
}

func decodeSequenced(r *creader) (core.SequencedMsg, error) {
	var m core.SequencedMsg
	origin, err := r.u32()
	if err != nil {
		return m, err
	}
	m.ID.Origin = ring.ProcID(origin)
	if m.ID.Local, err = r.u64(); err != nil {
		return m, err
	}
	if m.Seq, err = r.u64(); err != nil {
		return m, err
	}
	if m.Part, err = r.u32(); err != nil {
		return m, err
	}
	if m.Parts, err = r.u32(); err != nil {
		return m, err
	}
	if m.Body, err = r.bytes(); err != nil {
		return m, err
	}
	return m, nil
}

func decodeRecovery(r *creader) (core.RecoveryState, error) {
	var rs core.RecoveryState
	var err error
	if rs.NextDeliver, err = r.u64(); err != nil {
		return rs, err
	}
	nSeq, err := r.u32()
	if err != nil {
		return rs, err
	}
	for range nSeq {
		m, err := decodeSequenced(r)
		if err != nil {
			return rs, err
		}
		rs.Sequenced = append(rs.Sequenced, m)
	}
	nOwn, err := r.u32()
	if err != nil {
		return rs, err
	}
	for range nOwn {
		var p core.PendingMsg
		origin, err := r.u32()
		if err != nil {
			return rs, err
		}
		p.ID.Origin = ring.ProcID(origin)
		if p.ID.Local, err = r.u64(); err != nil {
			return rs, err
		}
		if p.Part, err = r.u32(); err != nil {
			return rs, err
		}
		if p.Parts, err = r.u32(); err != nil {
			return rs, err
		}
		if p.Body, err = r.bytes(); err != nil {
			return rs, err
		}
		rs.OwnPending = append(rs.OwnPending, p)
	}
	return rs, nil
}

// Decode parses any KindVSC payload into one of the message structs.
func Decode(payload []byte) (any, error) {
	r := &creader{buf: payload}
	kind, err := r.u8()
	if err != nil || kind != wire.KindVSC {
		return nil, fmt.Errorf("%w: kind", ErrBadControl)
	}
	typ, err := r.u8()
	if err != nil {
		return nil, err
	}
	switch typ {
	case msgPrepare:
		var p Prepare
		if p.Epoch, err = r.u64(); err != nil {
			return nil, err
		}
		coord, err := r.u32()
		if err != nil {
			return nil, err
		}
		p.Coord = ring.ProcID(coord)
		if p.Members, err = r.members(); err != nil {
			return nil, err
		}
		t16, err := r.u16()
		if err != nil {
			return nil, err
		}
		p.T = int(t16)
		return &p, nil
	case msgState:
		var s State
		if s.Epoch, err = r.u64(); err != nil {
			return nil, err
		}
		from, err := r.u32()
		if err != nil {
			return nil, err
		}
		s.From = ring.ProcID(from)
		j, err := r.u8()
		if err != nil {
			return nil, err
		}
		s.Joiner = j != 0
		if s.Recovery, err = decodeRecovery(r); err != nil {
			return nil, err
		}
		return &s, nil
	case msgNewView:
		var nv NewView
		if nv.Epoch, err = r.u64(); err != nil {
			return nil, err
		}
		coord, err := r.u32()
		if err != nil {
			return nil, err
		}
		nv.Coord = ring.ProcID(coord)
		if nv.Members, err = r.members(); err != nil {
			return nil, err
		}
		t16, err := r.u16()
		if err != nil {
			return nil, err
		}
		nv.T = int(t16)
		if nv.Sync.StartSeq, err = r.u64(); err != nil {
			return nil, err
		}
		nMsgs, err := r.u32()
		if err != nil {
			return nil, err
		}
		for range nMsgs {
			m, err := decodeSequenced(r)
			if err != nil {
				return nil, err
			}
			nv.Sync.Sequenced = append(nv.Sync.Sequenced, m)
		}
		return &nv, nil
	case msgJoinReq:
		id, err := r.u32()
		if err != nil {
			return nil, err
		}
		inc, err := r.u64()
		if err != nil {
			return nil, err
		}
		return &JoinReq{ID: ring.ProcID(id), Incarnation: inc}, nil
	case msgLeaveReq:
		id, err := r.u32()
		if err != nil {
			return nil, err
		}
		return &LeaveReq{ID: ring.ProcID(id)}, nil
	case msgSuspicion:
		id, err := r.u32()
		if err != nil {
			return nil, err
		}
		return &Suspicion{ID: ring.ProcID(id)}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, typ)
	}
}
