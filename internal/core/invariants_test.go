package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fsr/internal/ring"
	"fsr/internal/wire"
)

// TestInvariantsQuick drives random rings with random broadcast schedules
// (interleaved with protocol rounds, so messages overlap arbitrarily) and
// checks the TO-broadcast specification: agreement, total order, integrity
// (no duplicates, only broadcast messages delivered), validity, per-origin
// FIFO, and complete state cleanup at quiescence.
func TestInvariantsQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		tol := rng.Intn(n)
		tr := newTestRing(t, n, tol)
		sink := make([][]Delivery, n)
		broadcasts := 0
		// Random schedule: interleave broadcasts and rounds.
		for step := 0; step < 60; step++ {
			if rng.Intn(2) == 0 {
				s := rng.Intn(n)
				payload := make([]byte, rng.Intn(64))
				rng.Read(payload)
				if _, err := tr.engines[s].Broadcast(payload); err != nil {
					return false
				}
				broadcasts++
			} else {
				tr.round()
				tr.drain(sink)
			}
		}
		for r := 0; r < 100000; r++ {
			if tr.round() == 0 {
				break
			}
			tr.drain(sink)
		}
		tr.drain(sink)
		// Agreement + total order + contiguity + FIFO.
		ref := sink[0]
		if len(ref) != broadcasts {
			return false
		}
		lastLocal := map[ring.ProcID]uint64{}
		for i, d := range ref {
			if d.Seq != uint64(i+1) {
				return false
			}
			if last, ok := lastLocal[d.ID.Origin]; ok && d.ID.Local <= last {
				return false
			}
			lastLocal[d.ID.Origin] = d.ID.Local
		}
		for pos := 1; pos < n; pos++ {
			if len(sink[pos]) != len(ref) {
				return false
			}
			for i := range ref {
				if sink[pos][i].ID != ref[i].ID || sink[pos][i].Seq != ref[i].Seq {
					return false
				}
			}
		}
		// Quiescent cleanup: every ack was accounted for.
		for _, e := range tr.engines {
			if len(e.pend) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestUniformityUnderCrash checks the uniform-agreement property directly:
// run with random crashes (within t) at a random time; any segment delivered
// by ANY process before the crash — including ones that then crash — must be
// delivered by all survivors. This is the property that distinguishes
// uniform TO-broadcast from the non-uniform variant.
func TestUniformityUnderCrash(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := range 60 {
		n := 3 + rng.Intn(6)
		tol := 1 + rng.Intn(n-2)
		tr := newTestRing(t, n, tol)
		for s := range n {
			for i := range 10 {
				if _, err := tr.engines[s].Broadcast([]byte{byte(s), byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
		}
		sink := make([][]Delivery, n)
		pre := 1 + rng.Intn(50)
		for range pre {
			tr.round()
			tr.drain(sink)
		}
		nCrash := 1 + rng.Intn(tol)
		crashed := map[int]bool{}
		for _, p := range rng.Perm(n)[:nCrash] {
			crashed[p] = true
		}
		// Everything delivered anywhere (even at about-to-crash processes).
		needed := map[string]bool{}
		for pos := range tr.engines {
			for _, d := range sink[pos] {
				needed[d.ID.String()] = true
			}
		}
		survivors := crashAndRecover(t, tr, crashed)
		got := make(map[ring.ProcID]map[string]bool)
		for _, e := range survivors {
			got[e.Self()] = map[string]bool{}
			// Deliveries recorded before the crash at survivors count too
			// (test ring IDs equal their original slot index).
			for _, d := range sink[int(e.Self())] {
				got[e.Self()][d.ID.String()] = true
			}
		}
		for r := 0; r < 200000; r++ {
			if tr.round() == 0 {
				break
			}
			for _, e := range tr.engines {
				for _, d := range e.Deliveries() {
					got[e.Self()][d.ID.String()] = true
				}
			}
		}
		for _, e := range tr.engines {
			for _, d := range e.Deliveries() {
				got[e.Self()][d.ID.String()] = true
			}
		}
		for _, e := range survivors {
			for id := range needed {
				if !got[e.Self()][id] {
					t.Fatalf("trial %d (n=%d t=%d crash=%v pre=%d): survivor %d missing %s delivered pre-crash",
						trial, n, tol, crashed, pre, e.Self(), id)
				}
			}
		}
	}
}

func benchRingThroughput(b *testing.B, n, tol, senders int) {
	members := make([]ring.ProcID, n)
	for i := range members {
		members[i] = ring.ProcID(i)
	}
	v := View{ID: 1, Ring: ring.MustNew(members, tol)}
	engines := make([]*Engine, n)
	for i, id := range members {
		e, err := NewEngine(Config{Self: id}, v)
		if err != nil {
			b.Fatal(err)
		}
		engines[i] = e
	}
	payload := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	sent := 0
	for sent < b.N {
		for s := 0; s < senders && sent < b.N; s++ {
			if _, err := engines[s].Broadcast(payload); err != nil {
				b.Fatal(err)
			}
			sent++
		}
		// One protocol round.
		for pos, e := range engines {
			if f, ok := e.NextFrame(); ok {
				if err := engines[(pos+1)%n].HandleFrame(f); err != nil {
					b.Fatal(err)
				}
			}
		}
		for _, e := range engines {
			e.Deliveries()
		}
	}
	// Drain.
	for {
		moved := 0
		for pos, e := range engines {
			if f, ok := e.NextFrame(); ok {
				moved++
				if err := engines[(pos+1)%n].HandleFrame(f); err != nil {
					b.Fatal(err)
				}
			}
			e.Deliveries()
		}
		if moved == 0 {
			break
		}
	}
}

func BenchmarkEngineRing5OneSender(b *testing.B)  { benchRingThroughput(b, 5, 1, 1) }
func BenchmarkEngineRing5AllSenders(b *testing.B) { benchRingThroughput(b, 5, 1, 5) }
func BenchmarkEngineRing10(b *testing.B)          { benchRingThroughput(b, 10, 2, 10) }

func BenchmarkEngineHandleFrameHotPath(b *testing.B) {
	// Measure the per-hop cost at a standard relay process.
	members := []ring.ProcID{0, 1, 2, 3, 4}
	v := View{ID: 1, Ring: ring.MustNew(members, 1)}
	relay, err := NewEngine(Config{Self: 3}, v)
	if err != nil {
		b.Fatal(err)
	}
	body := make([]byte, 8192)
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := &wire.Frame{
			ViewID: 1,
			Data:   []wire.DataItem{{ID: wire.MsgID{Origin: 4, Local: uint64(i)}, Parts: 1, Body: body}},
		}
		if err := relay.HandleFrame(f); err != nil {
			b.Fatal(err)
		}
		if _, ok := relay.NextFrame(); !ok {
			b.Fatal("no outbound")
		}
	}
}

// BenchmarkEngineRelayHotPath measures the complete per-hop frame pipeline
// at a standard relay process at steady state — pooled decode, HandleFrame,
// batched FillFrame, pooled append-encode, reused delivery drain — i.e.
// everything a loaded ring hop does per 8 KiB segment except the syscall.
// Pre-change baseline (single-segment NextFrame, fresh frame + encode
// buffer per hop): 1631 ns/op, 319 B/op, 3 allocs/op.
func BenchmarkEngineRelayHotPath(b *testing.B) {
	members := []ring.ProcID{0, 1, 2, 3, 4}
	v := View{ID: 1, Ring: ring.MustNew(members, 1)}
	relay, err := NewEngine(Config{Self: 3}, v)
	if err != nil {
		b.Fatal(err)
	}
	body := make([]byte, 8192)
	in := &wire.Frame{ViewID: 1}
	rx := wire.GetFrame()
	out := wire.GetFrame()
	inBuf := wire.GetBuf()
	outBuf := wire.GetBuf()
	defer wire.PutFrame(rx)
	defer wire.PutFrame(out)
	defer wire.PutBuf(inBuf)
	defer wire.PutBuf(outBuf)
	var deliveries []Delivery
	step := func(i int) {
		// Pass-B leader broadcast relayed through position 3: stored,
		// relayed onward, delivered (position >= t) and — once past the
		// recovery window — recycled, so the state maps stay flat.
		in.Data = append(in.Data[:0], wire.DataItem{
			ID:  wire.MsgID{Origin: 0, Local: uint64(i)},
			Seq: uint64(i + 1), Parts: 1, Body: body,
		})
		inBuf.B = wire.AppendFrame(inBuf.B[:0], in)
		if err := wire.DecodeFrameInto(rx, inBuf.B); err != nil {
			b.Fatal(err)
		}
		if err := relay.HandleFrame(rx); err != nil {
			b.Fatal(err)
		}
		if !relay.FillFrame(out) {
			b.Fatal("no outbound")
		}
		outBuf.B = wire.AppendFrame(outBuf.B[:0], out)
		deliveries = relay.DrainDeliveries(deliveries[:0])
	}
	// Fill the delivered-buffer window so recycling is active before the
	// measurement starts.
	warm := relay.cfg.DeliveredBuffer + 64
	for i := 0; i < warm; i++ {
		step(i)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(warm + i)
	}
}
