package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"fsr/internal/ring"
	"fsr/internal/wire"
)

// crashAndRecover stops the given positions mid-run, flushes the survivors,
// merges, installs view 2 on a ring of the survivors (original order kept),
// and re-broadcasts what the sync dropped. Returns the survivor engines in
// new ring order.
func crashAndRecover(t *testing.T, tr *testRing, crashed map[int]bool) []*Engine {
	t.Helper()
	var members []ring.ProcID
	var survivors []*Engine
	for pos, e := range tr.engines {
		if crashed[pos] {
			continue
		}
		members = append(members, e.Self())
		survivors = append(survivors, e)
	}
	tol := min(tr.view.Ring.T(), len(members)-1)
	newView := View{ID: tr.view.ID + 1, Ring: ring.MustNew(members, tol)}

	var states []RecoveryState
	for _, e := range survivors {
		states = append(states, e.Snapshot())
	}
	sync, err := MergeRecovery(states)
	if err != nil {
		t.Fatalf("MergeRecovery: %v", err)
	}
	for i, e := range survivors {
		if err := e.InstallView(newView, sync); err != nil {
			t.Fatalf("InstallView at %d: %v", e.Self(), err)
		}
		for _, m := range states[i].Rebroadcast(sync) {
			if err := e.ReBroadcast(m); err != nil {
				t.Fatalf("ReBroadcast at %d: %v", e.Self(), err)
			}
		}
	}
	tr.engines = survivors
	tr.view = newView
	return survivors
}

// runRecoveryScenario floods the ring, runs a few rounds, crashes a set of
// positions, recovers, drains to quiet and asserts agreement, total order,
// no duplicates, per-origin FIFO and no loss of anything delivered anywhere
// before the crash.
func runRecoveryScenario(t *testing.T, n, tol int, crashPos []int, preRounds int) {
	t.Helper()
	tr := newTestRing(t, n, tol)
	const perSender = 15
	for s := range n {
		for i := range perSender {
			payload := []byte(fmt.Sprintf("m-%d-%d", s, i))
			if _, err := tr.engines[s].Broadcast(payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	sink := make(map[ring.ProcID][]Delivery)
	drainAll := func() {
		for _, e := range tr.engines {
			sink[e.Self()] = append(sink[e.Self()], e.Deliveries()...)
		}
	}
	for range preRounds {
		tr.round()
		drainAll()
	}
	crashed := map[int]bool{}
	for _, p := range crashPos {
		crashed[p] = true
	}
	// Record what anyone delivered before the crash: all of it must survive.
	preDelivered := map[wire.MsgID]bool{}
	for pos, e := range tr.engines {
		if crashed[pos] {
			continue
		}
		for _, d := range sink[e.Self()] {
			preDelivered[d.ID] = true
		}
	}
	survivors := crashAndRecover(t, tr, crashed)
	drainAll()
	for r := 0; r < 200000; r++ {
		if tr.round() == 0 {
			break
		}
		drainAll()
	}
	drainAll()

	// Survivors must agree on one delivery order covering all survivor
	// messages plus everything delivered pre-crash.
	ref := sink[survivors[0].Self()]
	seen := map[wire.MsgID]int{}
	lastLocal := map[ring.ProcID]uint64{}
	for _, d := range ref {
		seen[d.ID]++
		if seen[d.ID] > 1 {
			t.Fatalf("duplicate delivery of %v", d.ID)
		}
		if last, ok := lastLocal[d.ID.Origin]; ok && d.ID.Local <= last {
			t.Fatalf("per-origin FIFO violated for origin %d", d.ID.Origin)
		}
		lastLocal[d.ID.Origin] = d.ID.Local
	}
	for id := range preDelivered {
		if seen[id] == 0 {
			t.Fatalf("message %v delivered pre-crash was lost", id)
		}
	}
	// Every survivor's own messages must be delivered (validity).
	for _, e := range survivors {
		for i := uint64(0); i < perSender; i++ {
			id := wire.MsgID{Origin: e.Self(), Local: i}
			if seen[id] == 0 {
				t.Fatalf("survivor %d's message %v lost", e.Self(), id)
			}
		}
	}
	for _, e := range survivors[1:] {
		got := sink[e.Self()]
		if len(got) != len(ref) {
			t.Fatalf("survivor %d delivered %d, survivor %d delivered %d",
				e.Self(), len(got), survivors[0].Self(), len(ref))
		}
		for i := range ref {
			if got[i].ID != ref[i].ID {
				t.Fatalf("order mismatch at %d: %v vs %v", i, got[i].ID, ref[i].ID)
			}
		}
	}
}

func TestRecoveryCrashLeader(t *testing.T)        { runRecoveryScenario(t, 5, 2, []int{0}, 7) }
func TestRecoveryCrashBackup(t *testing.T)        { runRecoveryScenario(t, 5, 2, []int{1}, 9) }
func TestRecoveryCrashStandard(t *testing.T)      { runRecoveryScenario(t, 5, 2, []int{4}, 11) }
func TestRecoveryCrashTwo(t *testing.T)           { runRecoveryScenario(t, 6, 2, []int{0, 3}, 8) }
func TestRecoveryCrashLeaderAndBack(t *testing.T) { runRecoveryScenario(t, 6, 2, []int{0, 1}, 13) }
func TestRecoveryEarlyCrash(t *testing.T)         { runRecoveryScenario(t, 4, 1, []int{2}, 1) }
func TestRecoveryLateCrash(t *testing.T)          { runRecoveryScenario(t, 4, 1, []int{0}, 60) }

// TestRecoveryRandomized fuzzes crash timing and victim sets.
func TestRecoveryRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := range 40 {
		n := 3 + rng.Intn(6)
		tol := 1 + rng.Intn(n-2)
		nCrash := 1 + rng.Intn(tol)
		perm := rng.Perm(n)[:nCrash]
		pre := 1 + rng.Intn(40)
		t.Run(fmt.Sprintf("trial%d_n%d_t%d", trial, n, tol), func(t *testing.T) {
			runRecoveryScenario(t, n, tol, perm, pre)
		})
	}
}

func TestMergeRecoveryValidation(t *testing.T) {
	if _, err := MergeRecovery(nil); err == nil {
		t.Error("empty merge accepted")
	}
	// Conflicting IDs at one seq must be rejected.
	a := RecoveryState{NextDeliver: 1, Sequenced: []SequencedMsg{{ID: wire.MsgID{Origin: 1, Local: 0}, Seq: 1, Parts: 1}}}
	b := RecoveryState{NextDeliver: 1, Sequenced: []SequencedMsg{{ID: wire.MsgID{Origin: 2, Local: 0}, Seq: 1, Parts: 1}}}
	if _, err := MergeRecovery([]RecoveryState{a, b}); err == nil {
		t.Error("conflicting recovery states accepted")
	}
	// A gap below someone's delivery cursor means a member lagged so far
	// behind that the middle was pruned everywhere: the sync rebases above
	// the gap (the laggard repairs via durable-log catch-up) instead of
	// wedging the change.
	c := RecoveryState{NextDeliver: 5}
	d := RecoveryState{NextDeliver: 1}
	sync, err := MergeRecovery([]RecoveryState{c, d})
	if err != nil {
		t.Fatalf("unsuppliable gap wedged the merge: %v", err)
	}
	if sync.StartSeq != 5 || len(sync.Sequenced) != 0 {
		t.Fatalf("sync = start %d, %d preserved; want rebase to 5 with none",
			sync.StartSeq, len(sync.Sequenced))
	}
	// A partially suppliable middle rebases the base but KEEPS the
	// available entries: they may have been delivered by the advanced
	// member, and losing them from the sync would make their origins
	// re-broadcast already-delivered messages (duplicates in the order).
	e := RecoveryState{NextDeliver: 6}
	f := RecoveryState{NextDeliver: 1, Sequenced: []SequencedMsg{
		{ID: wire.MsgID{Origin: 1, Local: 1}, Seq: 2, Parts: 1},
		{ID: wire.MsgID{Origin: 1, Local: 3}, Seq: 4, Parts: 1},
	}}
	sync, err = MergeRecovery([]RecoveryState{e, f})
	if err != nil {
		t.Fatal(err)
	}
	if sync.StartSeq != 6 || len(sync.Sequenced) != 2 {
		t.Fatalf("sync = start %d, %d preserved; want base 6 keeping both entries",
			sync.StartSeq, len(sync.Sequenced))
	}
	if !sync.Contains(wire.MsgID{Origin: 1, Local: 1}) || !sync.Contains(wire.MsgID{Origin: 1, Local: 3}) {
		t.Fatal("below-base entries lost from the sync (their origins would re-broadcast)")
	}
}

func TestMergeRecoveryDropsBeyondGap(t *testing.T) {
	mk := func(seq uint64) SequencedMsg {
		return SequencedMsg{ID: wire.MsgID{Origin: 1, Local: seq}, Seq: seq, Parts: 1, Body: []byte{1}}
	}
	a := RecoveryState{NextDeliver: 1, Sequenced: []SequencedMsg{mk(1), mk(2), mk(4)}}
	sync, err := MergeRecovery([]RecoveryState{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(sync.Sequenced) != 2 || sync.MaxSeq() != 2 {
		t.Fatalf("sync kept %d msgs, max %d; want 2, 2", len(sync.Sequenced), sync.MaxSeq())
	}
	if sync.Contains(wire.MsgID{Origin: 1, Local: 4}) {
		t.Error("segment beyond the gap preserved")
	}
}

func TestInstallViewNotMember(t *testing.T) {
	tr := newTestRing(t, 3, 1)
	v2 := View{ID: 2, Ring: ring.MustNew([]ring.ProcID{0, 1}, 1)}
	err := tr.engines[2].InstallView(v2, &Sync{StartSeq: 1})
	if err == nil {
		t.Fatal("InstallView for excluded member succeeded")
	}
}

// TestJoinerCatchesUp: a fresh process joins via InstallView and must
// deliver the preserved suffix plus all future traffic in agreement.
func TestJoinerCatchesUp(t *testing.T) {
	tr := newTestRing(t, 3, 1)
	for i := range 5 {
		if _, err := tr.engines[1].Broadcast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sink := make(map[ring.ProcID][]Delivery)
	drain := func() {
		for _, e := range tr.engines {
			sink[e.Self()] = append(sink[e.Self()], e.Deliveries()...)
		}
	}
	for range 6 {
		tr.round()
		drain()
	}
	// Join process 9.
	var states []RecoveryState
	for _, e := range tr.engines {
		states = append(states, e.Snapshot())
	}
	sync, err := MergeRecovery(states)
	if err != nil {
		t.Fatal(err)
	}
	members := []ring.ProcID{0, 1, 2, 9}
	v2 := View{ID: 2, Ring: ring.MustNew(members, 1)}
	joiner, err := NewEngine(Config{Self: 9}, View{ID: 0, Ring: ring.MustNew([]ring.ProcID{9}, 0)})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range tr.engines {
		if err := e.InstallView(v2, sync); err != nil {
			t.Fatal(err)
		}
		for _, m := range states[i].Rebroadcast(sync) {
			if err := e.ReBroadcast(m); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := joiner.InstallView(v2, sync); err != nil {
		t.Fatal(err)
	}
	tr.engines = append(tr.engines, joiner)
	tr.view = v2
	if _, err := joiner.Broadcast([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10000; r++ {
		if tr.round() == 0 {
			break
		}
		drain()
	}
	drain()
	// The joiner's deliveries must be a suffix of an old member's sequence.
	old := sink[0]
	nw := sink[9]
	if len(nw) == 0 {
		t.Fatal("joiner delivered nothing")
	}
	off := len(old) - len(nw)
	if off < 0 {
		t.Fatalf("joiner delivered more (%d) than an original member (%d)", len(nw), len(old))
	}
	for i := range nw {
		if nw[i].ID != old[off+i].ID {
			t.Fatalf("joiner order mismatch at %d: %v vs %v", i, nw[i].ID, old[off+i].ID)
		}
	}
	found := false
	for _, d := range nw {
		if d.ID.Origin == 9 && bytes.Equal(d.Body, []byte("hi")) {
			found = true
		}
	}
	if !found {
		t.Error("joiner's own broadcast not delivered")
	}
}
