package core

import (
	"testing"

	"fsr/internal/ring"
	"fsr/internal/wire"
)

// TestFairnessFigure5 reconstructs the paper's Figure 5 exactly: a process
// wants to initiate a TO-broadcast while its incoming buffer holds
// [m3(p2), m2(p4), m5(p3), m6(p3)] and its forward list is {p1, p4, p5}.
// The send order must be: m3(p2), m5(p3) (earliest message of each origin
// not yet in the list), then the own message, after which the list resets
// and m2(p4), m6(p3) follow.
func TestFairnessFigure5(t *testing.T) {
	members := []ring.ProcID{0, 1, 2, 3, 4, 5}
	v := View{ID: 1, Ring: ring.MustNew(members, 1)}
	e, err := NewEngine(Config{Self: 5}, v)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(origin ring.ProcID, local uint64) wire.DataItem {
		return wire.DataItem{ID: wire.MsgID{Origin: origin, Local: local}, Parts: 1, Body: []byte{byte(origin)}}
	}
	for _, d := range []wire.DataItem{mk(2, 3), mk(4, 2), mk(3, 5), mk(3, 6)} {
		e.relayQ.push(d)
	}
	for _, o := range []ring.ProcID{1, 4, 0} { // p5 is self; use p0 for the paper's p5
		e.relayQ.markForwarded(o, e.fwdEpoch)
	}
	if _, err := e.Broadcast([]byte("own")); err != nil {
		t.Fatal(err)
	}

	// Collect the data-slot sequence across however many (batched) frames
	// the engine emits; the per-slot fairness decisions must match the
	// paper's single-segment send order exactly.
	var got []wire.MsgID
	for {
		f, ok := e.NextFrame()
		if !ok {
			break
		}
		for i := range f.Data {
			got = append(got, f.Data[i].ID)
		}
	}
	want := []wire.MsgID{
		{Origin: 2, Local: 3}, // not in list
		{Origin: 3, Local: 5}, // not in list (earliest of p3)
		{Origin: 5, Local: 0}, // own message; list resets
		{Origin: 4, Local: 2}, // remaining relays in FIFO order
		{Origin: 3, Local: 6},
	}
	if len(got) != len(want) {
		t.Fatalf("sent %d items, want %d (full: %v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("send order[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
	if n := e.relayQ.forwardedCount(e.fwdEpoch); n != 2 { // p4 and p3 forwarded since the own send
		t.Errorf("forward list after own send has %d entries, want 2", n)
	}
}

// TestFairnessBatchedSlots reruns the Figure 5 vectors against a batching
// engine and checks the per-frame slot layout: the first frame batches the
// unforwarded relays and closes right after the own segment (own sends keep
// their one-per-frame cadence), the second batches the remaining relays.
func TestFairnessBatchedSlots(t *testing.T) {
	members := []ring.ProcID{0, 1, 2, 3, 4, 5}
	v := View{ID: 1, Ring: ring.MustNew(members, 1)}
	e, err := NewEngine(Config{Self: 5, MaxFrameData: 16}, v)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(origin ring.ProcID, local uint64) wire.DataItem {
		return wire.DataItem{ID: wire.MsgID{Origin: origin, Local: local}, Parts: 1, Body: []byte{byte(origin)}}
	}
	for _, d := range []wire.DataItem{mk(2, 3), mk(4, 2), mk(3, 5), mk(3, 6)} {
		e.relayQ.push(d)
	}
	for _, o := range []ring.ProcID{1, 4, 0} {
		e.relayQ.markForwarded(o, e.fwdEpoch)
	}
	if _, err := e.Broadcast([]byte("own")); err != nil {
		t.Fatal(err)
	}
	wantFrames := [][]wire.MsgID{
		{{Origin: 2, Local: 3}, {Origin: 3, Local: 5}, {Origin: 5, Local: 0}}, // relays, then own closes the frame
		{{Origin: 4, Local: 2}, {Origin: 3, Local: 6}},                        // remaining relays batch together
	}
	for fi, want := range wantFrames {
		f, ok := e.NextFrame()
		if !ok {
			t.Fatalf("no frame %d", fi)
		}
		if len(f.Data) != len(want) {
			t.Fatalf("frame %d batched %d segments, want %d: %+v", fi, len(f.Data), len(want), f.Data)
		}
		for i := range want {
			if f.Data[i].ID != want[i] {
				t.Fatalf("frame %d slot %d = %v, want %v", fi, i, f.Data[i].ID, want[i])
			}
		}
	}
	if e.Stats().MultiSegFrames != 2 {
		t.Errorf("MultiSegFrames = %d, want 2", e.Stats().MultiSegFrames)
	}
	if _, ok := e.NextFrame(); ok {
		t.Error("queues not drained by two batched frames")
	}
}

// TestFairnessBatchingMatchesUnbatched drives the same workload through a
// MaxFrameData=1 engine and a batching engine and checks the flattened
// data-slot sequences are identical.
func TestFairnessBatchingMatchesUnbatched(t *testing.T) {
	build := func(maxData int) *Engine {
		members := []ring.ProcID{0, 1, 2, 3, 4, 5}
		v := View{ID: 1, Ring: ring.MustNew(members, 1)}
		e, err := NewEngine(Config{Self: 4, MaxFrameData: maxData}, v)
		if err != nil {
			t.Fatal(err)
		}
		// Interleave relays from three origins with two own broadcasts.
		for i := range 9 {
			e.relayQ.push(wire.DataItem{
				ID:    wire.MsgID{Origin: ring.ProcID(1 + i%3), Local: uint64(i)},
				Parts: 1, Body: []byte{byte(i)},
			})
		}
		for i := range 2 {
			if _, err := e.Broadcast([]byte{byte(100 + i)}); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	flat := func(e *Engine) []wire.MsgID {
		var out []wire.MsgID
		for {
			f, ok := e.NextFrame()
			if !ok {
				return out
			}
			for i := range f.Data {
				out = append(out, f.Data[i].ID)
			}
		}
	}
	single, batched := flat(build(1)), flat(build(4))
	if len(single) != len(batched) {
		t.Fatalf("item counts differ: %d vs %d", len(single), len(batched))
	}
	for i := range single {
		if single[i] != batched[i] {
			t.Fatalf("slot %d differs: %v vs %v\nsingle: %v\nbatched: %v",
				i, single[i], batched[i], single, batched)
		}
	}
}

// TestFairnessEqualShares runs the paper's motivating scenario — two
// processes on opposite sides of the ring broadcasting bursts — and checks
// that over any prefix of the delivery order the two senders' counts stay
// balanced (the privilege-protocol pathology this design removes).
func TestFairnessEqualShares(t *testing.T) {
	tr := newTestRing(t, 6, 1)
	const perSender = 60
	a, b := tr.engines[2], tr.engines[5]
	for range perSender {
		if _, err := a.Broadcast([]byte("a")); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Broadcast([]byte("b")); err != nil {
			t.Fatal(err)
		}
	}
	tr.runQuiet(100000)
	ds := tr.engines[0].Deliveries()
	if len(ds) != 2*perSender {
		t.Fatalf("delivered %d, want %d", len(ds), 2*perSender)
	}
	counts := map[ring.ProcID]int{}
	for i, d := range ds {
		counts[d.ID.Origin]++
		// In any prefix the two senders may differ by a small constant
		// (ring distance), never drift apart.
		diff := counts[2] - counts[5]
		if diff < 0 {
			diff = -diff
		}
		if diff > 4 {
			t.Fatalf("after %d deliveries counts diverged: p2=%d p5=%d", i+1, counts[2], counts[5])
		}
	}
	if counts[2] != perSender || counts[5] != perSender {
		t.Errorf("final counts p2=%d p5=%d, want %d each", counts[2], counts[5], perSender)
	}
}

// TestFairnessAllSenders saturates every process and checks the interleaving
// stays balanced across all origins.
func TestFairnessAllSenders(t *testing.T) {
	const n, perSender = 5, 40
	tr := newTestRing(t, n, 1)
	for s := range n {
		for range perSender {
			if _, err := tr.engines[s].Broadcast([]byte{byte(s)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	tr.runQuiet(200000)
	ds := tr.engines[1].Deliveries()
	counts := map[ring.ProcID]int{}
	for _, d := range ds {
		counts[d.ID.Origin]++
		var lo, hi int
		lo = 1 << 30
		for s := range n {
			c := counts[ring.ProcID(s)]
			lo = min(lo, c)
			hi = max(hi, c)
		}
		if hi-lo > n+2 {
			t.Fatalf("origin counts diverged beyond ring distance: %v", counts)
		}
	}
	for s := range n {
		if counts[ring.ProcID(s)] != perSender {
			t.Errorf("origin %d delivered %d, want %d", s, counts[ring.ProcID(s)], perSender)
		}
	}
}

// TestNoSenderStarvation: one process floods while another sends a single
// message; the single message must be delivered within a bounded number of
// rounds, not after the flood drains.
func TestNoSenderStarvation(t *testing.T) {
	tr := newTestRing(t, 5, 1)
	flooder, quiet := tr.engines[1], tr.engines[3]
	const flood = 200
	for range flood {
		if _, err := flooder.Broadcast([]byte("flood")); err != nil {
			t.Fatal(err)
		}
	}
	// Let the flood get going.
	for range 10 {
		tr.round()
	}
	if _, err := quiet.Broadcast([]byte("urgent")); err != nil {
		t.Fatal(err)
	}
	deliveredAt := -1
	for r := 0; r < 100000; r++ {
		if tr.round() == 0 {
			break
		}
		for _, d := range tr.engines[0].Deliveries() {
			if d.ID.Origin == 3 && deliveredAt < 0 {
				deliveredAt = r
			}
		}
	}
	if deliveredAt < 0 {
		t.Fatal("urgent message never delivered")
	}
	// Bounded by a couple of ring traversals, not by the flood length.
	if deliveredAt > 60 {
		t.Errorf("urgent message waited %d rounds behind a %d-message flood", deliveredAt, flood)
	}
}
