// Package core implements the FSR protocol engine — the paper's primary
// contribution: a uniform total order broadcast combining a fixed sequencer
// (the ring leader) with ring dissemination (every process only sends to its
// ring successor).
//
// The engine is a pure state machine. It never touches the network or the
// clock; a runtime wrapper (realtime goroutine pump, or the discrete-event
// network simulator) feeds it inbound frames via HandleFrame and drains
// outbound frames via NextFrame whenever the link to the successor is free.
// This makes every protocol rule directly unit-testable and lets the exact
// same code run under goroutines, TCP, and the simulated cluster.
//
// Protocol recap (paper §4, DESIGN.md §3). A broadcast from ring position s
// proceeds in three passes, all clockwise:
//
//	pass A: raw body s -> 0 (skipped when the leader broadcasts)
//	pass B: leader assigns seq; (id, seq, body) 0 -> s-1;
//	        a receiver at position j >= t delivers immediately
//	pass C: small ack from p(s-1), hop budget ring.AckHops(s); a recipient
//	        delivers when the ack is stable (has passed pt)
//
// Deliveries always happen in strict sequence-number order through a cursor,
// so out-of-order eligibility can never violate total order.
package core

import (
	"errors"
	"fmt"

	"fsr/internal/deque"
	"fsr/internal/ring"
	"fsr/internal/wire"
)

// View is one installed membership epoch: an identifier plus the ring built
// from the agreed member order (position 0 is the leader).
type View struct {
	ID   uint64
	Ring *ring.Ring
}

// Delivery is one TO-delivered segment, reported in total order.
type Delivery struct {
	Seq   uint64     // global sequence number (contiguous from 1 per epoch)
	ID    wire.MsgID // segment identity (origin + origin-local counter)
	Part  uint32     // segment index within the logical message
	Parts uint32     // total segments of the logical message
	Body  []byte     // segment payload; owned by the receiver after delivery
}

// Config carries the per-process protocol parameters.
type Config struct {
	// Self is this process's ID. Must be a member of the initial view.
	Self ring.ProcID
	// SegmentSize is the maximum body size of one segment. Larger
	// application messages are split so that uniform segment sizes keep
	// big messages from stalling small ones (paper §4.1). Defaults to
	// DefaultSegmentSize.
	SegmentSize int
	// MaxPiggyback bounds how many acks ride on one outbound frame
	// (paper §4.2.2). Defaults to DefaultMaxPiggyback.
	MaxPiggyback int
	// MaxFrameData bounds how many data segments one outbound frame
	// carries. The fairness rule is applied per slot, so own/relay
	// interleaving within a batched frame is exactly the sequence the
	// single-segment engine would have sent; batching only amortizes the
	// per-frame overhead (headers, syscalls, per-hop fixed receive cost)
	// across segments. 1 reproduces the paper's one-segment-per-frame
	// behavior. Defaults to DefaultMaxFrameData.
	MaxFrameData int
	// DeliveredBuffer is how many recently delivered segments are retained
	// for view-change recovery (a survivor may need to re-supply segments
	// that slower members have not delivered yet). Defaults to
	// DefaultDeliveredBuffer.
	DeliveredBuffer int
	// StartDeliver, when > 0, is the first sequence number this process
	// will deliver. A fresh process starts at 1; a process restarted from
	// a durable log passes lastApplied+1 so the engine never re-delivers
	// what the application already holds (the gap below an installed
	// view's sync base is filled by the node's catch-up transfer, not by
	// the engine).
	StartDeliver uint64
	// StartLocal is the initial value of the origin-local segment counter
	// backing MsgIDs. A restarted process passes a fresh incarnation band
	// (derived from its durable generation counter) so segment IDs minted
	// after the crash can never collide with IDs the previous incarnation
	// used — some of which may still live in survivors' recovery buffers.
	StartLocal uint64
}

// Defaults for Config fields left zero.
const (
	DefaultSegmentSize     = 8192
	DefaultMaxPiggyback    = 64
	DefaultMaxFrameData    = 8
	DefaultDeliveredBuffer = 4096
)

func (c Config) withDefaults() Config {
	if c.SegmentSize <= 0 {
		c.SegmentSize = DefaultSegmentSize
	}
	if c.MaxPiggyback <= 0 {
		c.MaxPiggyback = DefaultMaxPiggyback
	}
	if c.MaxFrameData <= 0 {
		c.MaxFrameData = DefaultMaxFrameData
	}
	if c.DeliveredBuffer <= 0 {
		c.DeliveredBuffer = DefaultDeliveredBuffer
	}
	return c
}

// Errors reported by the engine.
var (
	// ErrNotMember is returned when Self is not in the installed view.
	ErrNotMember = errors.New("core: process is not a member of the view")
	// ErrStopped is returned by Broadcast after Stop.
	ErrStopped = errors.New("core: engine stopped")
)

// Stats counts engine activity; read via Engine.Stats for tests and metrics.
type Stats struct {
	FramesIn       uint64
	FramesOut      uint64
	DataIn         uint64
	AcksIn         uint64
	Sequenced      uint64 // leader only: segments assigned a sequence number
	Delivered      uint64
	StaleFrames    uint64 // frames dropped because of a view mismatch
	RelayedData    uint64
	OwnSent        uint64
	FairnessSkips  uint64 // relay items sent ahead of an own message by the fairness rule
	StandaloneAcks uint64 // frames that carried only acks (low-load path)
	MultiSegFrames uint64 // outbound frames that batched more than one data segment
}

// msgState is the per-segment protocol state at one process.
type msgState struct {
	id        wire.MsgID
	seq       uint64 // 0 while unknown at this process
	part      uint32
	parts     uint32
	body      []byte
	haveBody  bool
	eligible  bool // uniform-stability established; deliver when in order
	delivered bool
	own       bool // this process is the origin
	queued    bool // own segment currently waiting in ownQ
	acksSeen  int
}

// Engine is the FSR protocol state machine for one process. It is not
// goroutine-safe; the runtime wrapper serializes access.
type Engine struct {
	cfg  Config
	view View
	self int // ring position of cfg.Self in view

	nextLocal uint64 // origin-local counter for own segments
	nextSeq   uint64 // leader only: next sequence number to assign
	nextDel   uint64 // next sequence number to deliver

	pend   map[wire.MsgID]*msgState
	bySeq  map[uint64]*msgState
	oldest uint64      // lowest seq still retained (recovery buffer floor)
	free   []*msgState // recycled state records (single-goroutine freelist)

	relayQ   relayQueue
	ownQ     deque.Deque[wire.DataItem]
	ackQ     deque.Deque[wire.AckItem]
	fwdEpoch uint64 // fairness forward-list epoch (paper §4.2.3); bumping it clears the list

	out     []Delivery // pending deliveries; drained in place, backing array reused
	stats   Stats
	stopped bool
}

// maxFreeStates bounds the msgState freelist so an idle engine does not
// pin the high-water mark of a past burst.
const maxFreeStates = 512

// NewEngine builds an engine for cfg.Self in the given initial view.
func NewEngine(cfg Config, v View) (*Engine, error) {
	cfg = cfg.withDefaults()
	pos, ok := v.Ring.Position(cfg.Self)
	if !ok {
		return nil, fmt.Errorf("%w: id=%d", ErrNotMember, cfg.Self)
	}
	start := max(1, cfg.StartDeliver)
	return &Engine{
		cfg:       cfg,
		view:      v,
		self:      pos,
		nextLocal: cfg.StartLocal,
		nextSeq:   start,
		nextDel:   start,
		oldest:    start,
		pend:      make(map[wire.MsgID]*msgState),
		bySeq:     make(map[uint64]*msgState),
		fwdEpoch:  1,
	}, nil
}

// Self returns this process's ID.
func (e *Engine) Self() ring.ProcID { return e.cfg.Self }

// View returns the currently installed view.
func (e *Engine) View() View { return e.view }

// Position returns this process's ring position in the current view.
func (e *Engine) Position() int { return e.self }

// IsLeader reports whether this process is the fixed sequencer.
func (e *Engine) IsLeader() bool { return e.self == 0 }

// Stats returns a snapshot of the activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// NextDeliver returns the sequence number the next delivery will carry.
func (e *Engine) NextDeliver() uint64 { return e.nextDel }

// Stop puts the engine in a terminal state; Broadcast fails afterwards.
func (e *Engine) Stop() { e.stopped = true }

// Broadcast enqueues payload for TO-broadcast, segmenting it into uniform
// segments. It returns the MsgID of the first segment: the logical message
// identity (segment k of the same message has Local = first.Local + k).
func (e *Engine) Broadcast(payload []byte) (wire.MsgID, error) {
	if e.stopped {
		return wire.MsgID{}, ErrStopped
	}
	segSize := e.cfg.SegmentSize
	parts := (len(payload) + segSize - 1) / segSize
	if parts == 0 {
		parts = 1 // empty payload still occupies one slot in the order
	}
	first := wire.MsgID{Origin: e.cfg.Self, Local: e.nextLocal}
	e.nextLocal += uint64(parts)
	for p := 0; p < parts; p++ {
		lo := p * segSize
		hi := min(lo+segSize, len(payload))
		id := wire.MsgID{Origin: e.cfg.Self, Local: first.Local + uint64(p)}
		st := e.ensure(id)
		st.body = payload[lo:hi]
		st.haveBody = true
		st.own = true
		st.part = uint32(p)
		st.parts = uint32(parts)
		item := wire.DataItem{
			ID: id, Part: uint32(p), Parts: uint32(parts), Body: payload[lo:hi],
		}
		if e.view.Ring.N() == 1 {
			// Degenerate single-process group: sequence and deliver now.
			e.assignSeq(st)
			st.eligible = true
			e.tryDeliver()
			continue
		}
		st.queued = true
		e.ownQ.PushBack(item)
	}
	return first, nil
}

// PendingOwn returns how many own segments are still queued for initiation.
// The runtime uses it for backpressure decisions.
func (e *Engine) PendingOwn() int { return e.ownQ.Len() }

// HasOutbound reports whether NextFrame would produce a frame.
func (e *Engine) HasOutbound() bool {
	return e.relayQ.Len() > 0 || e.ownQ.Len() > 0 || e.ackQ.Len() > 0
}

// QueueDepths reports the engine's internal queue lengths (relay, own, ack)
// for diagnostics and load monitoring.
func (e *Engine) QueueDepths() (relay, own, acks int) {
	return e.relayQ.Len(), e.ownQ.Len(), e.ackQ.Len()
}

// PendingDeliveries reports how many TO-delivered segments await a
// Deliveries call. Runtimes that vouch for the completeness of their
// durable log (catch-up serving) must treat a non-empty buffer as
// in-flight work.
func (e *Engine) PendingDeliveries() int { return len(e.out) }

// Deliveries drains and returns the segments TO-delivered since the last
// call, in total order. The returned slice is owned by the caller; hot
// runtimes use DrainDeliveries to reuse one buffer across drains.
func (e *Engine) Deliveries() []Delivery {
	if len(e.out) == 0 {
		return nil
	}
	return e.DrainDeliveries(nil)
}

// DrainDeliveries appends the segments TO-delivered since the last drain to
// dst (in total order) and returns it. The engine's internal buffer is
// reset in place, so a caller that passes dst[:0] of its previous result
// drives the delivery path with zero allocations at steady state.
func (e *Engine) DrainDeliveries(dst []Delivery) []Delivery {
	dst = append(dst, e.out...)
	clear(e.out) // release Body references; the reused array must not pin buffers
	e.out = e.out[:0]
	return dst
}

// HandleFrame processes one inbound frame from the ring predecessor.
// Frames from other views are dropped (counted in Stats.StaleFrames).
func (e *Engine) HandleFrame(f *wire.Frame) error {
	e.stats.FramesIn++
	if f.ViewID != e.view.ID {
		e.stats.StaleFrames++
		return nil
	}
	for i := range f.Data {
		if err := e.handleData(&f.Data[i]); err != nil {
			return err
		}
	}
	for i := range f.Acks {
		if err := e.handleAck(f.Acks[i]); err != nil {
			return err
		}
	}
	e.tryDeliver()
	return nil
}

// handleData processes one data segment arriving from the predecessor.
func (e *Engine) handleData(d *wire.DataItem) error {
	e.stats.DataIn++
	r := e.view.Ring
	st := e.ensure(d.ID)
	if !st.haveBody {
		st.body = d.Body
		st.haveBody = true
		st.part = d.Part
		st.parts = d.Parts
	}

	if d.Seq == 0 {
		// Pass A: raw body heading for the sequencer.
		if e.self == 0 {
			// I am the leader: assign the next sequence number and turn
			// the segment into pass B (or straight into an ack when the
			// origin is my successor, i.e. pass B would have zero hops).
			e.assignSeq(st)
			e.afterSequencing(st, d)
			return nil
		}
		// Standard/backup process: relay pass A unchanged.
		e.relayQ.push(*d)
		return nil
	}

	// Pass B: sequenced body emitted by the leader.
	if st.seq == 0 {
		e.setSeq(st, d.Seq)
	}
	if e.self >= r.T() {
		// The frame physically transited p0..p(self-1), so the leader and
		// all t backups hold it: uniform stability (paper case 1).
		st.eligible = true
	}
	sPos, ok := r.Position(d.ID.Origin)
	if !ok {
		// The origin is not in this view: a preserved segment re-emitted
		// by the new leader after a view change that excluded (crashed,
		// departed) its origin. Route it as leader-originated — every
		// member computes the same substitute position, so the pass-B stop
		// and the ack hop budget stay consistent ring-wide.
		sPos = 0
	}
	if e.self == r.SeqStopPos(sPos) {
		// Pass B ends here: originate the acknowledgment (pass C).
		e.originateAck(st, sPos)
		return nil
	}
	e.relayQ.push(*d)
	return nil
}

// afterSequencing emits the leader-side continuation for a freshly
// sequenced segment: pass B toward the backups, or directly an ack when the
// pass-B hop count is zero (origin at position 1, or the leader itself in a
// two-process ring — never here, that case goes through nextOwnItem).
func (e *Engine) afterSequencing(st *msgState, d *wire.DataItem) {
	r := e.view.Ring
	sPos, _ := r.Position(st.id.Origin)
	if r.T() == 0 {
		// With no backups the sequencer alone establishes stability.
		st.eligible = true
	}
	if r.SeqStopPos(sPos) == 0 {
		// Pass B would not leave the leader (origin is position 1):
		// originate the ack immediately.
		e.originateAck(st, sPos)
		return
	}
	item := wire.DataItem{ID: st.id, Seq: st.seq, Part: st.part, Parts: st.parts, Body: st.body}
	if d != nil {
		item.Body = d.Body
	}
	e.relayQ.push(item)
}

// originateAck creates the pass-C acknowledgment for a segment whose pass B
// terminated at this process. sPos is the origin's ring position.
func (e *Engine) originateAck(st *msgState, sPos int) {
	r := e.view.Ring
	hops := r.AckHops(sPos)
	if hops == 0 {
		return // t == 0 leader broadcast: everyone already delivered
	}
	e.ackQ.PushBack(wire.AckItem{
		ID:     st.id,
		Seq:    st.seq,
		Hops:   uint32(hops),
		Stable: r.AckStartsStable(sPos),
	})
}

// handleAck processes one pass-C acknowledgment from the predecessor.
func (e *Engine) handleAck(a wire.AckItem) error {
	e.stats.AcksIn++
	st := e.pend[a.ID]
	if st == nil || !st.haveBody {
		// Within one view every ack recipient has stored the body via pass
		// A, pass B, or its own Broadcast; anything else is a protocol bug.
		return fmt.Errorf("core: ack for unknown segment %v at position %d", a.ID, e.self)
	}
	st.acksSeen++
	if st.seq == 0 {
		e.setSeq(st, a.Seq)
	}
	if e.self >= e.view.Ring.T() {
		// Reaching a position >= t means the sequenced segment has been
		// stored by the leader and all backups (paper case 2).
		a.Stable = true
	}
	if a.Stable {
		st.eligible = true
	}
	if a.Hops > 1 {
		a.Hops--
		e.ackQ.PushBack(a)
	}
	e.maybePrune(st)
	return nil
}

// NextFrame pops the next outbound frame for the ring successor, applying
// the fairness rule per data slot and ack piggybacking. It returns false
// when the engine has nothing to send. Hot runtimes use FillFrame to reuse
// one frame across sends.
func (e *Engine) NextFrame() (*wire.Frame, bool) {
	f := &wire.Frame{}
	if !e.FillFrame(f) {
		return nil, false
	}
	return f, true
}

// FillFrame assembles the next outbound frame into f, reusing f's Data and
// Acks capacity: up to Config.MaxFrameData data segments — each slot chosen
// by the §4.2.3 fairness rule, so the batched segment sequence is exactly
// what the single-segment engine would have sent across as many frames —
// plus up to Config.MaxPiggyback acknowledgments. It reports whether f
// holds a frame worth sending.
//
// A frame closes early after carrying one own segment: the fairness rule's
// guarantees lean on the transport pacing between a process's own sends (a
// frame boundary is where freshly relayed traffic gets its turn), so own
// initiation keeps its one-per-frame cadence while relayed traffic — the
// volume that actually bounds ring throughput — batches freely.
func (e *Engine) FillFrame(f *wire.Frame) bool {
	f.ViewID = e.view.ID
	f.Data = f.Data[:0]
	f.Acks = f.Acks[:0]
	for len(f.Data) < e.cfg.MaxFrameData {
		item, own, ok := e.nextDataItem()
		if !ok {
			break
		}
		f.Data = append(f.Data, item)
		if own {
			break
		}
	}
	if len(f.Data) == 0 && e.ackQ.Len() == 0 {
		return false
	}
	if len(f.Data) == 0 {
		e.stats.StandaloneAcks++
	} else if len(f.Data) > 1 {
		e.stats.MultiSegFrames++
	}
	k := min(e.cfg.MaxPiggyback, e.ackQ.Len())
	for range k {
		f.Acks = append(f.Acks, e.ackQ.PopFront())
	}
	e.stats.FramesOut++
	e.tryDeliver() // own t==0 leader sends may have become deliverable
	return true
}

// nextDataItem implements the paper's §4.2.3 fairness rule. When an own
// message is pending, the earliest buffered relay of every origin not yet in
// the forward list is sent first; only then does the own message go out, and
// the forward list resets (one epoch bump).
func (e *Engine) nextDataItem() (item wire.DataItem, own, ok bool) {
	if e.ownQ.Len() > 0 {
		if item, ok := e.relayQ.popUnforwarded(e.fwdEpoch); ok {
			e.stats.FairnessSkips++
			e.stats.RelayedData++
			return item, false, true
		}
		item := e.ownQ.PopFront()
		e.fwdEpoch++ // reset the forward list
		e.stats.OwnSent++
		if st := e.pend[item.ID]; st != nil {
			st.queued = false
		}
		if e.self == 0 {
			// The leader sequences its own segment at initiation time.
			st := e.pend[item.ID]
			e.assignSeq(st)
			item.Seq = st.seq
			if e.view.Ring.T() == 0 {
				st.eligible = true
			}
		}
		return item, true, true
	}
	if item, ok := e.relayQ.popOldest(e.fwdEpoch); ok {
		e.stats.RelayedData++
		return item, false, true
	}
	return wire.DataItem{}, false, false
}

// assignSeq gives st the next sequence number (leader only).
func (e *Engine) assignSeq(st *msgState) {
	e.setSeq(st, e.nextSeq)
	e.nextSeq++
	e.stats.Sequenced++
}

func (e *Engine) setSeq(st *msgState, seq uint64) {
	st.seq = seq
	e.bySeq[seq] = st
}

// ensure returns the state record for id, creating (or recycling) it if
// absent.
func (e *Engine) ensure(id wire.MsgID) *msgState {
	st := e.pend[id]
	if st == nil {
		if n := len(e.free); n > 0 {
			st = e.free[n-1]
			e.free[n-1] = nil
			e.free = e.free[:n-1]
			*st = msgState{}
		} else {
			st = &msgState{}
		}
		st.id = id
		e.pend[id] = st
	}
	return st
}

// recycle returns a state record to the freelist once neither index map
// references it anymore.
func (e *Engine) recycle(st *msgState) {
	if e.pend[st.id] == st {
		return
	}
	if s, ok := e.bySeq[st.seq]; ok && s == st {
		return
	}
	if len(e.free) < maxFreeStates {
		st.body = nil // drop the payload reference before pooling
		e.free = append(e.free, st)
	}
}

// tryDeliver delivers every contiguous eligible segment starting at the
// delivery cursor — the strict total-order gate.
func (e *Engine) tryDeliver() {
	for {
		st := e.bySeq[e.nextDel]
		if st == nil || !st.eligible || !st.haveBody || st.delivered {
			return
		}
		st.delivered = true
		e.stats.Delivered++
		e.out = append(e.out, Delivery{
			Seq: st.seq, ID: st.id, Part: st.part, Parts: st.parts, Body: st.body,
		})
		e.nextDel++
		e.maybePrune(st)
		e.gcDeliveredBuffer()
	}
}

// expectedAckReceptions returns how many times this process will receive the
// ack of a segment originated at ring position sPos (0, 1 or 2; see
// DESIGN.md §3 — positions in [s, t-1] see a backup-sender's ack twice).
func (e *Engine) expectedAckReceptions(sPos int) int {
	r := e.view.Ring
	start := r.SeqStopPos(sPos) // ack originator's position
	hops := r.AckHops(sPos)     // number of receptions
	if hops == 0 {
		return 0
	}
	d := r.Distance(start, e.self)
	n := r.N()
	count := 0
	if d == 0 {
		d = n // the originator can only re-receive after a full loop
	}
	if d <= hops {
		count++
	}
	if d+n <= hops {
		count++
	}
	return count
}

// maybePrune drops per-segment state once this process has delivered the
// segment and seen every ack reception it will ever see. Delivered bodies
// stay in bySeq for the recovery buffer until gcDeliveredBuffer evicts them.
func (e *Engine) maybePrune(st *msgState) {
	if !st.delivered {
		return
	}
	sPos, ok := e.view.Ring.Position(st.id.Origin)
	if !ok {
		return // origin left in a view change; recovery state handles it
	}
	if st.acksSeen >= e.expectedAckReceptions(sPos) {
		delete(e.pend, st.id)
		e.recycle(st)
	}
}

// gcDeliveredBuffer bounds how many delivered segments stay addressable by
// sequence number for view-change recovery.
func (e *Engine) gcDeliveredBuffer() {
	limit := uint64(e.cfg.DeliveredBuffer)
	for e.nextDel-e.oldest > limit {
		if st, ok := e.bySeq[e.oldest]; ok && st.delivered {
			delete(e.bySeq, e.oldest)
			e.recycle(st)
		}
		e.oldest++
	}
}
