// View-change recovery (paper §4.2.1).
//
// When the VSC layer installs a new view it runs a flush: every survivor
// contributes a RecoveryState snapshot; the coordinator merges them with
// MergeRecovery into an agreed synchronization (the contiguous run of
// sequenced segments that slower survivors still need, exactly as the paper
// prescribes: "the new leader must resend all message and sequence number
// pairs that have not yet been TO-delivered [and] an ack of the latest
// TO-delivered message"); and InstallView applies the result, after which
// every survivor re-broadcasts its own not-yet-sequenced segments ("all
// processes TO-broadcast any message … TO-broadcast in the view vr but not
// yet TO-delivered").

package core

import (
	"fmt"
	"slices"

	"fsr/internal/wire"
)

// SequencedMsg is one segment that already carries a sequence number,
// exchanged during the flush.
type SequencedMsg struct {
	ID    wire.MsgID
	Seq   uint64
	Part  uint32
	Parts uint32
	Body  []byte
}

// PendingMsg is one own segment that may not have been sequenced yet.
type PendingMsg struct {
	ID    wire.MsgID
	Part  uint32
	Parts uint32
	Body  []byte
}

// RecoveryState is one process's contribution to the view-change flush.
type RecoveryState struct {
	// NextDeliver is the first sequence number this process has not
	// delivered.
	NextDeliver uint64
	// Sequenced holds every segment this process knows with an assigned
	// sequence number that may still be undelivered somewhere (delivered
	// segments are included from the recovery buffer).
	Sequenced []SequencedMsg
	// OwnPending holds this process's own segments that it has broadcast
	// but not delivered.
	OwnPending []PendingMsg
}

// Snapshot captures this process's flush contribution. The engine must not
// receive further frames of the old view afterwards (the wrapper stops
// pumping before flushing; stale frames would be dropped anyway).
func (e *Engine) Snapshot() RecoveryState {
	rs := RecoveryState{NextDeliver: e.nextDel}
	for seq, st := range e.bySeq {
		if !st.haveBody {
			continue
		}
		rs.Sequenced = append(rs.Sequenced, SequencedMsg{
			ID: st.id, Seq: seq, Part: st.part, Parts: st.parts, Body: st.body,
		})
	}
	slices.SortFunc(rs.Sequenced, func(a, b SequencedMsg) int {
		switch {
		case a.Seq < b.Seq:
			return -1
		case a.Seq > b.Seq:
			return 1
		default:
			return 0
		}
	})
	for _, st := range e.pend {
		if st.own && !st.delivered {
			rs.OwnPending = append(rs.OwnPending, PendingMsg{
				ID: st.id, Part: st.part, Parts: st.parts, Body: st.body,
			})
		}
	}
	slices.SortFunc(rs.OwnPending, func(a, b PendingMsg) int {
		switch {
		case a.ID.Local < b.ID.Local:
			return -1
		case a.ID.Local > b.ID.Local:
			return 1
		default:
			return 0
		}
	})
	return rs
}

// Sync is the agreed view-change synchronization computed by the new
// coordinator from all survivors' RecoveryStates.
type Sync struct {
	// StartSeq is the sync base: every member's delivery cursor is at
	// least here after the install. Normally it is the lowest NextDeliver
	// among survivors (the first sequence number some survivor still
	// needs); when a member has fallen behind the group's pruning horizon
	// it is rebased above the last unsuppliable gap, and members below it
	// repair the difference from durable logs via catch-up.
	StartSeq uint64
	// Sequenced is the ascending run of preserved segments that survive
	// the change with their numbers. It is contiguous from StartSeq except
	// for entries below a rebased base (kept so their origins do not
	// re-broadcast — they may have been delivered by an advanced member).
	// Segments beyond the first gap at or above the group's delivery
	// frontier were provably undelivered everywhere (delivery is in-order,
	// and anything delivered was stable at t+1 processes of which at most
	// t crashed) and are dropped; their origins re-broadcast them in the
	// new view.
	Sequenced []SequencedMsg
}

// MaxSeq returns the highest sequence number preserved by the sync, or
// StartSeq-1 when none.
func (s *Sync) MaxSeq() uint64 {
	if len(s.Sequenced) == 0 {
		return s.StartSeq - 1
	}
	return s.Sequenced[len(s.Sequenced)-1].Seq
}

// Contains reports whether the sync preserves segment id.
func (s *Sync) Contains(id wire.MsgID) bool {
	for i := range s.Sequenced {
		if s.Sequenced[i].ID == id {
			return true
		}
	}
	return false
}

// MergeRecovery merges the survivors' flush contributions into the agreed
// Sync. It fails if two survivors disagree on the segment a sequence number
// names — impossible under the protocol, so it indicates corruption.
func MergeRecovery(states []RecoveryState) (*Sync, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("core: merging zero recovery states")
	}
	start := states[0].NextDeliver
	maxDelivered := states[0].NextDeliver
	for _, rs := range states[1:] {
		start = min(start, rs.NextDeliver)
		maxDelivered = max(maxDelivered, rs.NextDeliver)
	}
	bySeq := make(map[uint64]SequencedMsg)
	for _, rs := range states {
		for _, m := range rs.Sequenced {
			if m.Seq < start {
				continue // everyone already delivered it
			}
			if prev, ok := bySeq[m.Seq]; ok {
				if prev.ID != m.ID {
					return nil, fmt.Errorf("core: recovery conflict at seq %d: %v vs %v",
						m.Seq, prev.ID, m.ID)
				}
				continue
			}
			bySeq[m.Seq] = m
		}
	}
	sync := &Sync{StartSeq: start}
	for seq := start; ; seq++ {
		m, ok := bySeq[seq]
		if !ok {
			// A gap at or above maxDelivered ends the preserved run:
			// nothing beyond it was ever delivered anywhere, so origins
			// re-broadcast it. A gap BELOW maxDelivered means the segment
			// was delivered (and since pruned) by the advanced members
			// while some member sits so far behind that nobody can
			// re-disseminate the middle — it missed a view change and the
			// ring kept delivering without it. Rebase the sync above the
			// gap: members below it jump their cursor to the base at
			// install and repair the skipped range from their peers'
			// durable logs via catch-up (delivery is contiguous per
			// process, so the most advanced member's log covers everything
			// under its cursor; a member without a durable log accepts the
			// gap, like a joiner admitted without state transfer). The
			// entries already collected below the gap STAY in the sync:
			// they may have been delivered by an advanced member, and
			// dropping them would make their origins re-broadcast
			// (Rebroadcast keys on Contains) — re-sequencing an
			// already-delivered message, a duplicate in the total order.
			if seq < maxDelivered {
				sync.StartSeq = seq + 1
				continue
			}
			break
		}
		sync.Sequenced = append(sync.Sequenced, m)
	}
	return sync, nil
}

// Rebroadcast lists this process's own pending segments that the sync does
// not preserve: the caller must re-Broadcast their logical messages in the
// new view. Segments of one logical message are grouped and returned whole
// (re-segmentation happens in the new Broadcast call).
func (rs *RecoveryState) Rebroadcast(sync *Sync) []PendingMsg {
	var out []PendingMsg
	for _, m := range rs.OwnPending {
		if !sync.Contains(m.ID) {
			out = append(out, m)
		}
	}
	return out
}

// InstallView resets the engine onto a new view, applying the agreed sync.
// In-flight old-view traffic is discarded. Preserved sequenced segments are
// registered with their numbers but NOT delivered here: the flush proves
// some contributor held each of them, not that the new view's leader and t
// backups store them, so delivering at install could mint history no
// survivor repeats if this process crashed before others installed. The
// new leader instead re-emits the preserved run as pass-B traffic and the
// ordinary stability rules gate delivery (see the loop body). The caller
// then re-broadcasts what Rebroadcast returned.
func (e *Engine) InstallView(v View, sync *Sync) error {
	pos, ok := v.Ring.Position(e.cfg.Self)
	if !ok {
		return fmt.Errorf("%w: id=%d view=%d", ErrNotMember, e.cfg.Self, v.ID)
	}
	// Own undelivered segments that the sync does not preserve must survive
	// the wipe: the origin re-initiates them in the new view (validity).
	// This also covers broadcasts accepted after the flush snapshot was
	// taken — they never reached any snapshot, so only the engine itself
	// can carry them across.
	var preserve []PendingMsg
	for _, st := range e.pend {
		if st.own && !st.delivered && !sync.Contains(st.id) {
			preserve = append(preserve, PendingMsg{
				ID: st.id, Part: st.part, Parts: st.parts, Body: st.body,
			})
		}
	}
	slices.SortFunc(preserve, func(a, b PendingMsg) int {
		switch {
		case a.ID.Local < b.ID.Local:
			return -1
		case a.ID.Local > b.ID.Local:
			return 1
		default:
			return 0
		}
	})

	e.view = v
	e.self = pos
	e.relayQ.clear()
	e.ownQ.Clear()
	e.ackQ.Clear()
	e.fwdEpoch++
	e.pend = make(map[wire.MsgID]*msgState)
	e.bySeq = make(map[uint64]*msgState)

	// A joiner that has never delivered starts at the agreed base; the
	// node's durable-log catch-up (or, without one, the application layer)
	// is responsible for state transfer up to it. A rejoining process
	// restarted from its log may instead sit AHEAD of the base — it
	// delivered more before crashing than the slowest survivor has — so
	// nextDel only ever moves forward, and the sequencer floor must clear
	// both the preserved run and this process's own delivered prefix
	// (assigning a number below either would fork the durable history).
	if e.nextDel < sync.StartSeq {
		e.nextDel = sync.StartSeq
	}
	e.oldest = e.nextDel
	e.nextSeq = max(sync.MaxSeq()+1, e.nextDel)

	// Register the preserved segments. They are NOT made deliverable here:
	// the flush proves a preserved segment was held by SOME contributor,
	// not that the leader and t backups of the NEW view store it — a
	// coordinator that installed, delivered and crashed before its NEWVIEW
	// reached anyone would create deliveries no survivor ever repeats
	// (phantom history in its durable log; the chaos harness reproduces
	// this). Uniform stability is re-established in the new view instead,
	// exactly as the paper prescribes ("the new leader must resend all
	// message and sequence number pairs that have not yet been
	// TO-delivered"): the new leader re-emits the preserved run as pass-B
	// traffic with the original sequence numbers, and the ordinary
	// stability rules (position >= t on pass B, stable ack on pass C) gate
	// delivery. With T() == 0 stability IS leader storage, so registration
	// alone suffices and segments deliver immediately.
	for _, m := range sync.Sequenced {
		st := e.ensure(m.ID)
		st.seq = m.Seq
		st.part = m.Part
		st.parts = m.Parts
		st.body = m.Body
		st.haveBody = true
		st.own = m.ID.Origin == e.cfg.Self
		e.bySeq[m.Seq] = st
		if e.self == 0 {
			// The whole run is re-emitted — including segments this leader
			// already delivered: a slower member still needs their
			// stability signal.
			e.relayQ.push(wire.DataItem{
				ID: m.ID, Seq: m.Seq, Part: m.Part, Parts: m.Parts, Body: m.Body,
			})
		}
		if m.Seq < e.nextDel {
			// Already delivered here; keep the record so re-emitted pass-B
			// and ack traffic for it finds a home instead of erroring.
			st.delivered = true
			continue
		}
		if v.Ring.T() == 0 {
			st.eligible = true
		}
	}
	e.tryDeliver()
	for _, m := range preserve {
		if err := e.ReBroadcast(m); err != nil {
			return err
		}
	}
	return nil
}

// ReBroadcast re-enqueues an own segment that the view change dropped (it
// was not preserved by the sync, hence provably undelivered everywhere),
// keeping its original identity so that multi-segment logical messages
// reassemble correctly across views. The new leader assigns it a fresh
// sequence number. Idempotent: segments already delivered or already queued
// are left alone, so InstallView's automatic preservation and an explicit
// flush-driven rebroadcast never duplicate a message.
func (e *Engine) ReBroadcast(m PendingMsg) error {
	if e.stopped {
		return ErrStopped
	}
	st := e.ensure(m.ID)
	if st.delivered || st.queued {
		return nil
	}
	st.body = m.Body
	st.haveBody = true
	st.own = true
	st.part = m.Part
	st.parts = m.Parts
	if e.view.Ring.N() == 1 {
		e.assignSeq(st)
		st.eligible = true
		e.tryDeliver()
		return nil
	}
	st.queued = true
	e.ownQ.PushBack(wire.DataItem{ID: m.ID, Part: m.Part, Parts: m.Parts, Body: m.Body})
	return nil
}
