// View-change recovery (paper §4.2.1).
//
// When the VSC layer installs a new view it runs a flush: every survivor
// contributes a RecoveryState snapshot; the coordinator merges them with
// MergeRecovery into an agreed synchronization (the contiguous run of
// sequenced segments that slower survivors still need, exactly as the paper
// prescribes: "the new leader must resend all message and sequence number
// pairs that have not yet been TO-delivered [and] an ack of the latest
// TO-delivered message"); and InstallView applies the result, after which
// every survivor re-broadcasts its own not-yet-sequenced segments ("all
// processes TO-broadcast any message … TO-broadcast in the view vr but not
// yet TO-delivered").

package core

import (
	"fmt"
	"slices"

	"fsr/internal/wire"
)

// SequencedMsg is one segment that already carries a sequence number,
// exchanged during the flush.
type SequencedMsg struct {
	ID    wire.MsgID
	Seq   uint64
	Part  uint32
	Parts uint32
	Body  []byte
}

// PendingMsg is one own segment that may not have been sequenced yet.
type PendingMsg struct {
	ID    wire.MsgID
	Part  uint32
	Parts uint32
	Body  []byte
}

// RecoveryState is one process's contribution to the view-change flush.
type RecoveryState struct {
	// NextDeliver is the first sequence number this process has not
	// delivered.
	NextDeliver uint64
	// Sequenced holds every segment this process knows with an assigned
	// sequence number that may still be undelivered somewhere (delivered
	// segments are included from the recovery buffer).
	Sequenced []SequencedMsg
	// OwnPending holds this process's own segments that it has broadcast
	// but not delivered.
	OwnPending []PendingMsg
}

// Snapshot captures this process's flush contribution. The engine must not
// receive further frames of the old view afterwards (the wrapper stops
// pumping before flushing; stale frames would be dropped anyway).
func (e *Engine) Snapshot() RecoveryState {
	rs := RecoveryState{NextDeliver: e.nextDel}
	for seq, st := range e.bySeq {
		if !st.haveBody {
			continue
		}
		rs.Sequenced = append(rs.Sequenced, SequencedMsg{
			ID: st.id, Seq: seq, Part: st.part, Parts: st.parts, Body: st.body,
		})
	}
	slices.SortFunc(rs.Sequenced, func(a, b SequencedMsg) int {
		switch {
		case a.Seq < b.Seq:
			return -1
		case a.Seq > b.Seq:
			return 1
		default:
			return 0
		}
	})
	for _, st := range e.pend {
		if st.own && !st.delivered {
			rs.OwnPending = append(rs.OwnPending, PendingMsg{
				ID: st.id, Part: st.part, Parts: st.parts, Body: st.body,
			})
		}
	}
	slices.SortFunc(rs.OwnPending, func(a, b PendingMsg) int {
		switch {
		case a.ID.Local < b.ID.Local:
			return -1
		case a.ID.Local > b.ID.Local:
			return 1
		default:
			return 0
		}
	})
	return rs
}

// Sync is the agreed view-change synchronization computed by the new
// coordinator from all survivors' RecoveryStates.
type Sync struct {
	// StartSeq is the lowest NextDeliver among survivors: the first
	// sequence number some survivor still needs.
	StartSeq uint64
	// Sequenced is the contiguous run of segments with sequence numbers
	// StartSeq, StartSeq+1, ... that survive the change and keep their
	// numbers. Segments beyond the first gap were provably undelivered
	// everywhere (delivery is in-order, and anything delivered was stable
	// at t+1 processes of which at most t crashed) and are dropped; their
	// origins re-broadcast them in the new view.
	Sequenced []SequencedMsg
}

// MaxSeq returns the highest sequence number preserved by the sync, or
// StartSeq-1 when none.
func (s *Sync) MaxSeq() uint64 {
	if len(s.Sequenced) == 0 {
		return s.StartSeq - 1
	}
	return s.Sequenced[len(s.Sequenced)-1].Seq
}

// Contains reports whether the sync preserves segment id.
func (s *Sync) Contains(id wire.MsgID) bool {
	for i := range s.Sequenced {
		if s.Sequenced[i].ID == id {
			return true
		}
	}
	return false
}

// MergeRecovery merges the survivors' flush contributions into the agreed
// Sync. It fails if two survivors disagree on the segment a sequence number
// names — impossible under the protocol, so it indicates corruption.
func MergeRecovery(states []RecoveryState) (*Sync, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("core: merging zero recovery states")
	}
	start := states[0].NextDeliver
	maxDelivered := states[0].NextDeliver
	for _, rs := range states[1:] {
		start = min(start, rs.NextDeliver)
		maxDelivered = max(maxDelivered, rs.NextDeliver)
	}
	bySeq := make(map[uint64]SequencedMsg)
	for _, rs := range states {
		for _, m := range rs.Sequenced {
			if m.Seq < start {
				continue // everyone already delivered it
			}
			if prev, ok := bySeq[m.Seq]; ok {
				if prev.ID != m.ID {
					return nil, fmt.Errorf("core: recovery conflict at seq %d: %v vs %v",
						m.Seq, prev.ID, m.ID)
				}
				continue
			}
			bySeq[m.Seq] = m
		}
	}
	sync := &Sync{StartSeq: start}
	for seq := start; ; seq++ {
		m, ok := bySeq[seq]
		if !ok {
			// First gap. Anything at or above it was never delivered
			// anywhere; but a gap below maxDelivered-1 would mean some
			// survivor delivered past a hole, which is impossible.
			if seq < maxDelivered {
				return nil, fmt.Errorf("core: recovery gap at seq %d below delivered %d",
					seq, maxDelivered-1)
			}
			break
		}
		sync.Sequenced = append(sync.Sequenced, m)
	}
	return sync, nil
}

// Rebroadcast lists this process's own pending segments that the sync does
// not preserve: the caller must re-Broadcast their logical messages in the
// new view. Segments of one logical message are grouped and returned whole
// (re-segmentation happens in the new Broadcast call).
func (rs *RecoveryState) Rebroadcast(sync *Sync) []PendingMsg {
	var out []PendingMsg
	for _, m := range rs.OwnPending {
		if !sync.Contains(m.ID) {
			out = append(out, m)
		}
	}
	return out
}

// InstallView resets the engine onto a new view, applying the agreed sync.
// In-flight old-view traffic is discarded; preserved sequenced segments
// become deliverable immediately (the flush guarantees every new-view member
// holds them, which is stability in the strongest sense). The caller then
// re-broadcasts what Rebroadcast returned.
func (e *Engine) InstallView(v View, sync *Sync) error {
	pos, ok := v.Ring.Position(e.cfg.Self)
	if !ok {
		return fmt.Errorf("%w: id=%d view=%d", ErrNotMember, e.cfg.Self, v.ID)
	}
	// Own undelivered segments that the sync does not preserve must survive
	// the wipe: the origin re-initiates them in the new view (validity).
	// This also covers broadcasts accepted after the flush snapshot was
	// taken — they never reached any snapshot, so only the engine itself
	// can carry them across.
	var preserve []PendingMsg
	for _, st := range e.pend {
		if st.own && !st.delivered && !sync.Contains(st.id) {
			preserve = append(preserve, PendingMsg{
				ID: st.id, Part: st.part, Parts: st.parts, Body: st.body,
			})
		}
	}
	slices.SortFunc(preserve, func(a, b PendingMsg) int {
		switch {
		case a.ID.Local < b.ID.Local:
			return -1
		case a.ID.Local > b.ID.Local:
			return 1
		default:
			return 0
		}
	})

	e.view = v
	e.self = pos
	e.relayQ = nil
	e.ownQ = nil
	e.ackQ = nil
	clear(e.forward)
	e.pend = make(map[wire.MsgID]*msgState)
	e.bySeq = make(map[uint64]*msgState)

	// A joiner that has never delivered starts at the agreed base; the
	// node's durable-log catch-up (or, without one, the application layer)
	// is responsible for state transfer up to it. A rejoining process
	// restarted from its log may instead sit AHEAD of the base — it
	// delivered more before crashing than the slowest survivor has — so
	// nextDel only ever moves forward, and the sequencer floor must clear
	// both the preserved run and this process's own delivered prefix
	// (assigning a number below either would fork the durable history).
	if e.nextDel < sync.StartSeq {
		e.nextDel = sync.StartSeq
	}
	e.oldest = e.nextDel
	e.nextSeq = max(sync.MaxSeq()+1, e.nextDel)

	for _, m := range sync.Sequenced {
		if m.Seq < e.nextDel {
			continue // already delivered here
		}
		st := e.ensure(m.ID)
		st.seq = m.Seq
		st.part = m.Part
		st.parts = m.Parts
		st.body = m.Body
		st.haveBody = true
		st.eligible = true
		st.own = m.ID.Origin == e.cfg.Self
		e.bySeq[m.Seq] = st
	}
	e.tryDeliver()
	// No old-view acks will arrive for sync-installed segments; drop their
	// pending records as soon as they are delivered.
	for id, st := range e.pend {
		if st.delivered {
			delete(e.pend, id)
		}
	}
	for _, m := range preserve {
		if err := e.ReBroadcast(m); err != nil {
			return err
		}
	}
	return nil
}

// ReBroadcast re-enqueues an own segment that the view change dropped (it
// was not preserved by the sync, hence provably undelivered everywhere),
// keeping its original identity so that multi-segment logical messages
// reassemble correctly across views. The new leader assigns it a fresh
// sequence number. Idempotent: segments already delivered or already queued
// are left alone, so InstallView's automatic preservation and an explicit
// flush-driven rebroadcast never duplicate a message.
func (e *Engine) ReBroadcast(m PendingMsg) error {
	if e.stopped {
		return ErrStopped
	}
	st := e.ensure(m.ID)
	if st.delivered || st.queued {
		return nil
	}
	st.body = m.Body
	st.haveBody = true
	st.own = true
	st.part = m.Part
	st.parts = m.Parts
	if e.view.Ring.N() == 1 {
		e.assignSeq(st)
		st.eligible = true
		e.tryDeliver()
		return nil
	}
	st.queued = true
	e.ownQ = append(e.ownQ, wire.DataItem{ID: m.ID, Part: m.Part, Parts: m.Parts, Body: m.Body})
	return nil
}
