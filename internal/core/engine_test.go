package core

import (
	"bytes"
	"fmt"
	"testing"

	"fsr/internal/ring"
	"fsr/internal/wire"
)

// testRing drives a ring of engines in lockstep rounds: in each round every
// process emits at most one frame and receives at most one frame — exactly
// the paper's modified round-based model (Section 3), so round counts are
// directly comparable with the analytical latency formula.
type testRing struct {
	t       *testing.T
	engines []*Engine // indexed by ring position
	view    View
}

func newTestRing(t *testing.T, n, tol int) *testRing {
	t.Helper()
	members := make([]ring.ProcID, n)
	for i := range members {
		members[i] = ring.ProcID(i)
	}
	v := View{ID: 1, Ring: ring.MustNew(members, tol)}
	tr := &testRing{t: t, view: v}
	for _, id := range members {
		e, err := NewEngine(Config{Self: id}, v)
		if err != nil {
			t.Fatalf("NewEngine(%d): %v", id, err)
		}
		tr.engines = append(tr.engines, e)
	}
	return tr
}

// round moves one frame per process to its successor; returns frames moved.
func (tr *testRing) round() int {
	type hop struct {
		to int
		f  *wire.Frame
	}
	var hops []hop
	n := len(tr.engines)
	for pos, e := range tr.engines {
		if f, ok := e.NextFrame(); ok {
			hops = append(hops, hop{to: (pos + 1) % n, f: f})
		}
	}
	for _, h := range hops {
		if err := tr.engines[h.to].HandleFrame(h.f); err != nil {
			tr.t.Fatalf("HandleFrame at pos %d: %v", h.to, err)
		}
	}
	return len(hops)
}

// runQuiet runs rounds until no engine has outbound traffic.
func (tr *testRing) runQuiet(maxRounds int) int {
	for r := 1; r <= maxRounds; r++ {
		if tr.round() == 0 {
			return r - 1
		}
	}
	tr.t.Fatalf("ring not quiet after %d rounds", maxRounds)
	return 0
}

// drain collects pending deliveries per position.
func (tr *testRing) drain(sink [][]Delivery) {
	for pos, e := range tr.engines {
		sink[pos] = append(sink[pos], e.Deliveries()...)
	}
}

func TestNewEngineNotMember(t *testing.T) {
	v := View{ID: 1, Ring: ring.MustNew([]ring.ProcID{1, 2}, 0)}
	if _, err := NewEngine(Config{Self: 99}, v); err == nil {
		t.Fatal("non-member accepted")
	}
}

func TestBroadcastAfterStop(t *testing.T) {
	tr := newTestRing(t, 3, 1)
	tr.engines[0].Stop()
	if _, err := tr.engines[0].Broadcast([]byte("x")); err == nil {
		t.Fatal("Broadcast after Stop succeeded")
	}
}

func TestSingleProcessRing(t *testing.T) {
	tr := newTestRing(t, 1, 0)
	e := tr.engines[0]
	for i := range 3 {
		if _, err := e.Broadcast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ds := e.Deliveries()
	if len(ds) != 3 {
		t.Fatalf("delivered %d, want 3", len(ds))
	}
	for i, d := range ds {
		if d.Seq != uint64(i+1) || d.Body[0] != byte(i) {
			t.Errorf("delivery %d = %+v", i, d)
		}
	}
}

// TestSingleBroadcastAllPositions checks, for a sweep of ring shapes and
// every sender position, that one broadcast is delivered by every process
// exactly once with the right body, and that the number of rounds to
// completion equals the paper's L(i) = 2n + t - i - 1 (leader: n + t - 1).
func TestSingleBroadcastAllPositions(t *testing.T) {
	for n := 2; n <= 8; n++ {
		for tol := 0; tol < n; tol++ {
			for s := 0; s < n; s++ {
				tr := newTestRing(t, n, tol)
				body := []byte(fmt.Sprintf("msg-%d-%d-%d", n, tol, s))
				if _, err := tr.engines[s].Broadcast(body); err != nil {
					t.Fatal(err)
				}
				deliveredAt := make([]int, n) // round of delivery, 0 = none
				round := 0
				for ; round < 10*n+10; round++ {
					if tr.round() == 0 {
						break
					}
					for pos, e := range tr.engines {
						for _, d := range e.Deliveries() {
							if deliveredAt[pos] != 0 {
								t.Fatalf("n=%d t=%d s=%d: pos %d delivered twice", n, tol, s, pos)
							}
							if !bytes.Equal(d.Body, body) || d.Seq != 1 {
								t.Fatalf("n=%d t=%d s=%d: bad delivery %+v", n, tol, s, d)
							}
							deliveredAt[pos] = round + 1
						}
					}
				}
				last := 0
				for pos, r := range deliveredAt {
					if r == 0 {
						t.Fatalf("n=%d t=%d s=%d: pos %d never delivered", n, tol, s, pos)
					}
					last = max(last, r)
				}
				if want := tr.view.Ring.Latency(s); last != want {
					t.Errorf("n=%d t=%d s=%d: completed in %d rounds, want L=%d",
						n, tol, s, last, want)
				}
				// After quiescence every engine must have pruned all
				// per-segment state (ack accounting is exact).
				for pos, e := range tr.engines {
					if len(e.pend) != 0 {
						t.Errorf("n=%d t=%d s=%d: pos %d retains %d pend entries",
							n, tol, s, pos, len(e.pend))
					}
				}
			}
		}
	}
}

// TestThroughputEfficient reproduces §4.3.2: with a saturating sender, after
// the initial latency the ring completes one TO-broadcast per round
// (throughput >= 1 in the round model), independent of n, t and the number
// of senders.
func TestThroughputEfficient(t *testing.T) {
	cases := []struct{ n, tol, senders int }{
		{4, 1, 1}, {4, 1, 4}, {4, 1, 2},
		{8, 2, 1}, {8, 2, 3}, {8, 2, 8},
		{5, 0, 5}, {10, 4, 7},
	}
	for _, c := range cases {
		tr := newTestRing(t, c.n, c.tol)
		const perSender = 30
		for s := 0; s < c.senders; s++ {
			for range perSender {
				if _, err := tr.engines[s].Broadcast([]byte{byte(s)}); err != nil {
					t.Fatal(err)
				}
			}
		}
		total := c.senders * perSender
		rounds := tr.runQuiet(100 * total)
		// All broadcasts complete; the last engine to deliver defines
		// completion. Budget: initial latency + 1 round per message.
		budget := 2*c.n + c.tol + total + c.n // slack for ack drains
		if rounds > budget {
			t.Errorf("n=%d t=%d k=%d: %d messages took %d rounds, budget %d (throughput < 1)",
				c.n, c.tol, c.senders, total, rounds, budget)
		}
		for pos, e := range tr.engines {
			if got := e.Stats().Delivered; got != uint64(total) {
				t.Errorf("n=%d t=%d k=%d: pos %d delivered %d, want %d",
					c.n, c.tol, c.senders, pos, got, total)
			}
		}
	}
}

// TestTotalOrderAgreement floods several senders and checks the two core
// properties: agreement (same set everywhere) and total order (same order
// everywhere), plus contiguous sequence numbers and per-origin FIFO.
func TestTotalOrderAgreement(t *testing.T) {
	tr := newTestRing(t, 6, 2)
	const perSender = 40
	for s := range 6 {
		for i := range perSender {
			if _, err := tr.engines[s].Broadcast([]byte{byte(s), byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	sink := make([][]Delivery, 6)
	for r := 0; r < 20000; r++ {
		moved := tr.round()
		tr.drain(sink)
		if moved == 0 {
			break
		}
	}
	assertAgreement(t, sink, 6*perSender)
}

// assertAgreement checks agreement, total order, contiguous seqs, FIFO.
func assertAgreement(t *testing.T, sink [][]Delivery, wantTotal int) {
	t.Helper()
	ref := sink[0]
	if wantTotal >= 0 && len(ref) != wantTotal {
		t.Fatalf("pos 0 delivered %d, want %d", len(ref), wantTotal)
	}
	for i, d := range ref {
		if d.Seq != uint64(i+1) {
			t.Fatalf("pos 0 delivery %d has seq %d (not contiguous)", i, d.Seq)
		}
	}
	lastLocal := map[ring.ProcID]uint64{}
	for _, d := range ref {
		if last, ok := lastLocal[d.ID.Origin]; ok && d.ID.Local <= last {
			t.Fatalf("per-origin FIFO violated for %d: %d after %d",
				d.ID.Origin, d.ID.Local, last)
		}
		lastLocal[d.ID.Origin] = d.ID.Local
	}
	for pos := 1; pos < len(sink); pos++ {
		if len(sink[pos]) != len(ref) {
			t.Fatalf("pos %d delivered %d, pos 0 delivered %d (agreement)",
				pos, len(sink[pos]), len(ref))
		}
		for i := range ref {
			if sink[pos][i].ID != ref[i].ID || sink[pos][i].Seq != ref[i].Seq {
				t.Fatalf("pos %d delivery %d = %v/%d, pos 0 = %v/%d (total order)",
					pos, i, sink[pos][i].ID, sink[pos][i].Seq, ref[i].ID, ref[i].Seq)
			}
		}
	}
}

// TestSegmentation broadcasts a payload far above SegmentSize and checks the
// segment structure and in-order reassembly data.
func TestSegmentation(t *testing.T) {
	tr := newTestRing(t, 4, 1)
	e := tr.engines[2]
	payload := make([]byte, 100*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	id, err := e.Broadcast(payload)
	if err != nil {
		t.Fatal(err)
	}
	tr.runQuiet(10000)
	wantParts := (len(payload) + DefaultSegmentSize - 1) / DefaultSegmentSize
	for pos, eng := range tr.engines {
		ds := eng.Deliveries()
		if len(ds) != wantParts {
			t.Fatalf("pos %d delivered %d segments, want %d", pos, len(ds), wantParts)
		}
		var got []byte
		for i, d := range ds {
			if d.Part != uint32(i) || d.Parts != uint32(wantParts) {
				t.Fatalf("pos %d segment %d: Part=%d Parts=%d", pos, i, d.Part, d.Parts)
			}
			if d.ID.Origin != id.Origin || d.ID.Local != id.Local+uint64(i) {
				t.Fatalf("pos %d segment %d: ID=%v, first=%v", pos, i, d.ID, id)
			}
			got = append(got, d.Body...)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("pos %d reassembled payload differs", pos)
		}
	}
}

func TestEmptyPayloadBroadcast(t *testing.T) {
	tr := newTestRing(t, 3, 1)
	if _, err := tr.engines[1].Broadcast(nil); err != nil {
		t.Fatal(err)
	}
	tr.runQuiet(100)
	for pos, e := range tr.engines {
		ds := e.Deliveries()
		if len(ds) != 1 || len(ds[0].Body) != 0 || ds[0].Parts != 1 {
			t.Fatalf("pos %d: %+v", pos, ds)
		}
	}
}

// TestStaleViewFramesDropped feeds a frame from a different view epoch.
func TestStaleViewFramesDropped(t *testing.T) {
	tr := newTestRing(t, 3, 1)
	e := tr.engines[1]
	f := &wire.Frame{ViewID: 999, Data: []wire.DataItem{{ID: wire.MsgID{Origin: 0, Local: 0}, Body: []byte("x")}}}
	if err := e.HandleFrame(f); err != nil {
		t.Fatal(err)
	}
	if e.Stats().StaleFrames != 1 {
		t.Errorf("StaleFrames = %d, want 1", e.Stats().StaleFrames)
	}
	if e.HasOutbound() {
		t.Error("stale frame generated outbound traffic")
	}
}

// TestAckForUnknownSegmentErrors asserts the protocol-violation detector.
func TestAckForUnknownSegmentErrors(t *testing.T) {
	tr := newTestRing(t, 3, 1)
	f := &wire.Frame{ViewID: 1, Acks: []wire.AckItem{{ID: wire.MsgID{Origin: 0, Local: 7}, Seq: 1, Hops: 2}}}
	if err := tr.engines[1].HandleFrame(f); err == nil {
		t.Fatal("ack for unknown segment accepted")
	}
}

// TestPassBNonMemberOriginErrors covers the defensive membership check.
// TestSyncSegmentOrphanedOriginDelivers: a preserved segment whose origin
// is not in the new view — it crashed right after its broadcast was
// sequenced — is re-emitted by the new leader (routed as leader-originated)
// and delivers ring-wide through the ordinary stability rules.
func TestSyncSegmentOrphanedOriginDelivers(t *testing.T) {
	tr := newTestRing(t, 3, 1)
	sync := &Sync{StartSeq: 1, Sequenced: []SequencedMsg{
		{ID: wire.MsgID{Origin: 77, Local: 0}, Seq: 1, Parts: 1, Body: []byte("orphan")},
	}}
	v2 := View{ID: 2, Ring: tr.view.Ring}
	for i, e := range tr.engines {
		if err := e.InstallView(v2, sync); err != nil {
			t.Fatalf("InstallView at pos %d: %v", i, err)
		}
	}
	tr.runQuiet(1000)
	for i, e := range tr.engines {
		ds := e.Deliveries()
		if len(ds) != 1 || ds[0].Seq != 1 || !bytes.Equal(ds[0].Body, []byte("orphan")) {
			t.Fatalf("engine %d delivered %v, want the orphaned segment at seq 1", i, ds)
		}
	}
}

// TestSyncSegmentsNotDeliveredBeforeStability: preserved segments must NOT
// deliver at install time — the flush proves some contributor held them,
// not that the new view's leader and backups store them. Only the leader's
// re-emission round makes them deliverable.
func TestSyncSegmentsNotDeliveredBeforeStability(t *testing.T) {
	tr := newTestRing(t, 3, 1)
	sync := &Sync{StartSeq: 1, Sequenced: []SequencedMsg{
		{ID: wire.MsgID{Origin: 1, Local: 0}, Seq: 1, Parts: 1, Body: []byte("held")},
	}}
	v2 := View{ID: 2, Ring: tr.view.Ring}
	for i, e := range tr.engines {
		if err := e.InstallView(v2, sync); err != nil {
			t.Fatalf("InstallView at pos %d: %v", i, err)
		}
		if ds := e.Deliveries(); len(ds) != 0 {
			t.Fatalf("engine %d delivered %d segments at install, before stability", i, len(ds))
		}
	}
}

// TestLowLoadStandaloneAcks: a single quiet broadcast must push its ack out
// without waiting for data to piggyback on (paper: low-load latency).
func TestLowLoadStandaloneAcks(t *testing.T) {
	tr := newTestRing(t, 5, 1)
	if _, err := tr.engines[3].Broadcast([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	tr.runQuiet(1000)
	var standalone uint64
	for _, e := range tr.engines {
		standalone += e.Stats().StandaloneAcks
	}
	if standalone == 0 {
		t.Error("no standalone ack frames in a contention-free run")
	}
}

// TestHighLoadPiggybacksAcks: under saturation, acks should mostly ride on
// data frames rather than consuming send slots of their own.
func TestHighLoadPiggybacksAcks(t *testing.T) {
	tr := newTestRing(t, 5, 1)
	for s := range 5 {
		for range 50 {
			if _, err := tr.engines[s].Broadcast([]byte{byte(s)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	tr.runQuiet(200000)
	var frames, standalone uint64
	for _, e := range tr.engines {
		frames += e.Stats().FramesOut
		standalone += e.Stats().StandaloneAcks
	}
	if frac := float64(standalone) / float64(frames); frac > 0.25 {
		t.Errorf("standalone-ack frames are %.0f%% of traffic under load", frac*100)
	}
}

func TestStatsCounters(t *testing.T) {
	tr := newTestRing(t, 4, 1)
	if _, err := tr.engines[0].Broadcast([]byte("lead")); err != nil {
		t.Fatal(err)
	}
	tr.runQuiet(100)
	leader := tr.engines[0].Stats()
	if leader.Sequenced != 1 {
		t.Errorf("leader Sequenced = %d, want 1", leader.Sequenced)
	}
	if leader.OwnSent != 1 {
		t.Errorf("leader OwnSent = %d, want 1", leader.OwnSent)
	}
	for pos, e := range tr.engines {
		if e.Stats().Delivered != 1 {
			t.Errorf("pos %d Delivered = %d", pos, e.Stats().Delivered)
		}
	}
}
