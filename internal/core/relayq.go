package core

import (
	"fsr/internal/deque"
	"fsr/internal/ring"
	"fsr/internal/wire"
)

// relayQueue buffers relayed data segments awaiting transmission to the
// ring successor. It replaces the old flat slice (whose fairness scan was
// O(queue) and whose mid-queue removal was an O(queue) splice) with one
// ring-buffer deque per origin plus a global arrival index:
//
//   - per-origin FIFO is structural (a deque per origin),
//   - global arrival order is recovered by popping the origin whose head
//     carries the smallest arrival index,
//   - the paper's §4.2.3 fairness scan ("earliest buffered relay of every
//     origin not yet in the forward list") walks the origin set — bounded
//     by the group size — instead of the whole queue,
//   - the forward list itself is an epoch stamp per origin: resetting it
//     after an own send is one integer increment, not a map clear.
//
// All pops are therefore O(origins) with zero allocation, independent of
// how deep the queue is.
type relayQueue struct {
	byOrigin map[ring.ProcID]*originRelay
	origins  []*originRelay // every origin ever seen; stable, bounded by membership
	arrival  uint64         // global enqueue counter
	size     int
}

// relayEntry is one queued segment stamped with its global arrival index.
type relayEntry struct {
	item wire.DataItem
	idx  uint64
}

// originRelay is one origin's pending relay traffic plus its forward-list
// epoch stamp (fwd == current epoch means "already forwarded since the
// last own send").
type originRelay struct {
	origin ring.ProcID
	fwd    uint64
	q      deque.Deque[relayEntry]
}

// Len returns the total number of buffered segments.
func (rq *relayQueue) Len() int { return rq.size }

// ensure returns (creating if needed) the per-origin queue.
func (rq *relayQueue) ensure(origin ring.ProcID) *originRelay {
	if rq.byOrigin == nil {
		rq.byOrigin = make(map[ring.ProcID]*originRelay)
	}
	or := rq.byOrigin[origin]
	if or == nil {
		or = &originRelay{origin: origin}
		rq.byOrigin[origin] = or
		rq.origins = append(rq.origins, or)
	}
	return or
}

// push appends one segment in global arrival order.
func (rq *relayQueue) push(d wire.DataItem) {
	or := rq.ensure(d.ID.Origin)
	or.q.PushBack(relayEntry{item: d, idx: rq.arrival})
	rq.arrival++
	rq.size++
}

// popOldest removes and returns the globally earliest buffered segment,
// recording its origin in the forward list for the given epoch.
func (rq *relayQueue) popOldest(epoch uint64) (wire.DataItem, bool) {
	var best *originRelay
	for _, or := range rq.origins {
		if or.q.Len() == 0 {
			continue
		}
		if best == nil || or.q.Front().idx < best.q.Front().idx {
			best = or
		}
	}
	return rq.take(best, epoch)
}

// popUnforwarded removes and returns the earliest buffered segment whose
// origin is not yet in the forward list of the given epoch — the fairness
// rule's pick ahead of an own message.
func (rq *relayQueue) popUnforwarded(epoch uint64) (wire.DataItem, bool) {
	var best *originRelay
	for _, or := range rq.origins {
		if or.q.Len() == 0 || or.fwd == epoch {
			continue
		}
		if best == nil || or.q.Front().idx < best.q.Front().idx {
			best = or
		}
	}
	return rq.take(best, epoch)
}

func (rq *relayQueue) take(or *originRelay, epoch uint64) (wire.DataItem, bool) {
	if or == nil {
		return wire.DataItem{}, false
	}
	or.fwd = epoch
	rq.size--
	return or.q.PopFront().item, true
}

// markForwarded puts origin in the forward list of the given epoch without
// popping anything (view-change seeding and tests).
func (rq *relayQueue) markForwarded(origin ring.ProcID, epoch uint64) {
	rq.ensure(origin).fwd = epoch
}

// forwardedCount reports how many origins sit in the forward list of the
// given epoch.
func (rq *relayQueue) forwardedCount(epoch uint64) int {
	n := 0
	for _, or := range rq.origins {
		if or.fwd == epoch {
			n++
		}
	}
	return n
}

// clear drops all buffered segments, forward marks AND the per-origin
// entries themselves. It only runs at view installs, where membership may
// have changed: keeping entries for departed origins would make every
// hot-path scan O(origins ever seen) instead of O(current group) and pin
// their ring buffers forever.
func (rq *relayQueue) clear() {
	rq.byOrigin = nil // ensure() re-creates lazily
	clear(rq.origins)
	rq.origins = rq.origins[:0]
	rq.arrival, rq.size = 0, 0
}
