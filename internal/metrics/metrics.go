// Package metrics provides the small statistics toolkit used by the
// benchmark harness: duration summaries and labeled (x, y) series rendered
// as text tables, mirroring the paper's figures.
package metrics

import (
	"fmt"
	"slices"
	"strings"
	"time"
)

// Summary condenses a sample of durations.
type Summary struct {
	Count          int
	Min, Max, Mean time.Duration
	P50, P95, P99  time.Duration
}

// Summarize computes a Summary. An empty sample yields a zero Summary.
func Summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := slices.Clone(samples)
	slices.Sort(s)
	var total time.Duration
	for _, v := range s {
		total += v
	}
	return Summary{
		Count: len(s),
		Min:   s[0],
		Max:   s[len(s)-1],
		Mean:  total / time.Duration(len(s)),
		P50:   quantile(s, 0.50),
		P95:   quantile(s, 0.95),
		P99:   quantile(s, 0.99),
	}
}

// quantile returns the q-quantile of sorted samples (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Point is one (x, y) measurement, optionally labeled.
type Point struct {
	X     float64
	Y     float64
	Label string
}

// Series is one experiment's output: what a paper figure plots.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64, label string) {
	s.Points = append(s.Points, Point{X: x, Y: y, Label: label})
}

// String renders the series as an aligned text table.
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Name)
	fmt.Fprintf(&b, "%-24s %14s %14s\n", "label", s.XLabel, s.YLabel)
	for _, p := range s.Points {
		label := p.Label
		if label == "" {
			label = "-"
		}
		fmt.Fprintf(&b, "%-24s %14.2f %14.2f\n", label, p.X, p.Y)
	}
	return b.String()
}
