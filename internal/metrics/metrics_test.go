package metrics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 || s.P99 != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestSummarizeBasics(t *testing.T) {
	samples := []time.Duration{
		4 * time.Millisecond, 1 * time.Millisecond,
		3 * time.Millisecond, 2 * time.Millisecond,
	}
	s := Summarize(samples)
	if s.Count != 4 || s.Min != time.Millisecond || s.Max != 4*time.Millisecond {
		t.Fatalf("summary: %+v", s)
	}
	if s.Mean != 2500*time.Microsecond {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.P50 != 2*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	// Input must not be mutated (sorted copy).
	if samples[0] != 4*time.Millisecond {
		t.Error("Summarize mutated its input")
	}
}

func TestSummarizeQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		samples := make([]time.Duration, n)
		for i := range samples {
			samples[i] = time.Duration(rng.Intn(1_000_000))
		}
		s := Summarize(samples)
		// Invariants: min <= p50 <= p95 <= p99 <= max, min <= mean <= max.
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 &&
			s.P99 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Count == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSeriesRendering(t *testing.T) {
	s := &Series{Name: "Figure 8", XLabel: "processes", YLabel: "Mb/s"}
	s.Add(2, 78.9, "n=2")
	s.Add(10, 79.2, "n=10")
	out := s.String()
	for _, want := range []string{"Figure 8", "processes", "Mb/s", "n=2", "78.90", "79.20"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered series missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesEmptyLabel(t *testing.T) {
	s := &Series{Name: "x", XLabel: "a", YLabel: "b"}
	s.Add(1, 2, "")
	if !strings.Contains(s.String(), "-") {
		t.Error("empty label not rendered as dash")
	}
}
