// Workload driver and metrics for the round model: k-to-n broadcast
// patterns (paper §5.1) measured in completed TO-broadcasts per round.

package model

import (
	"fmt"
	"slices"
)

// Result summarizes one round-model run.
type Result struct {
	Protocol  string
	N         int
	Senders   []int
	PerSender int
	Rounds    int
	// Throughput is completed TO-broadcasts per round — the paper's
	// central metric; >= 1 is "throughput efficient".
	Throughput float64
	// Order is the common delivery order (ids), identical at every
	// process (verified).
	Order []int
}

// Run drives a k-to-n burst workload on sys: every listed sender enqueues
// perSender messages at round 0, then the system runs to quiescence.
// It verifies agreement, total order and completeness, and returns the
// metrics.
func Run(name string, sys System, n int, senders []int, perSender, maxRounds int) (*Result, error) {
	ids := make(map[int]bool)
	for _, p := range senders {
		for i := range perSender {
			id := p*1_000_000 + i
			ids[id] = true
			sys.Broadcast(p, id)
		}
	}
	delivered := make([][]int, n)
	for p := range n {
		delivered[p] = sys.Delivered(p) // single-process systems deliver inline
	}
	for sys.Busy() {
		if sys.Round() >= maxRounds {
			return nil, fmt.Errorf("model: %s not quiescent after %d rounds", name, maxRounds)
		}
		sys.Step()
		for p := range n {
			delivered[p] = append(delivered[p], sys.Delivered(p)...)
		}
	}
	total := len(senders) * perSender
	ref := delivered[0]
	if len(ref) != total {
		return nil, fmt.Errorf("model: %s delivered %d of %d at process 0", name, len(ref), total)
	}
	seen := make(map[int]bool, len(ref))
	for _, id := range ref {
		if !ids[id] {
			return nil, fmt.Errorf("model: %s delivered unknown id %d", name, id)
		}
		if seen[id] {
			return nil, fmt.Errorf("model: %s delivered id %d twice", name, id)
		}
		seen[id] = true
	}
	for p := 1; p < n; p++ {
		if !slices.Equal(delivered[p], ref) {
			return nil, fmt.Errorf("model: %s order differs between process 0 and %d", name, p)
		}
	}
	rounds := sys.Round()
	thr := 0.0
	if rounds > 0 {
		thr = float64(total) / float64(rounds)
	}
	return &Result{
		Protocol:   name,
		N:          n,
		Senders:    slices.Clone(senders),
		PerSender:  perSender,
		Rounds:     rounds,
		Throughput: thr,
		Order:      ref,
	}, nil
}

// SenderSet builds the canonical k-to-n sender lists used in the paper's
// benchmarks: the first k processes.
func SenderSet(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

// OppositeSenders places two senders half a ring apart — the paper's §2.3
// fairness stress for privilege-based protocols.
func OppositeSenders(n int) []int { return []int{0, n / 2} }
