// Package model implements the paper's modified round-based computation
// model (Section 3) and, on top of it, the five classes of total order
// broadcast protocols surveyed in Section 2 plus FSR itself.
//
// The model: in each round r every process (1) computes its message for the
// round, (2) unicasts or best-effort broadcasts it, and (3) receives a
// single message sent in some round <= r. A broadcast is one send that
// reaches every destination, but a destination still consumes its single
// per-round reception on it — this is exactly the constraint that makes
// moving-sequencer protocols unable to reach throughput 1 (the token
// competes with data for the receive slot, paper §2.2) and the fixed
// sequencer a bottleneck (n-1 acks serialize through one receive slot,
// §2.1).
//
// Throughput is measured as completed TO-broadcasts per round; a protocol
// is throughput efficient when that ratio reaches 1 (§1, §4.3.2).
//
// The baseline implementations are failure-free round-model renderings of
// each class's communication pattern — enough to reproduce the paper's
// comparative analysis; fault tolerance is modeled only by FSR (whose
// round-model adapter reuses the real engine from internal/core).
package model

import "fmt"

// Msg is one round-model message.
type Msg struct {
	From    int
	Kind    string // protocol-specific tag; for tracing and tests
	Payload any
}

// send is an outbox entry: one transmission, possibly to many destinations.
type send struct {
	to  []int
	msg Msg
}

// Net is the round-based network: per-process outboxes (one transmission
// leaves per round) and inboxes (one reception arrives per round).
type Net struct {
	n     int
	out   [][]send
	in    [][]Msg
	round int
}

// NewNet builds a network of n processes.
func NewNet(n int) *Net {
	return &Net{n: n, out: make([][]send, n), in: make([][]Msg, n)}
}

// N returns the process count.
func (nt *Net) N() int { return nt.n }

// Round returns the number of completed rounds.
func (nt *Net) Round() int { return nt.round }

// Unicast queues a message from -> to for the next available send slot.
func (nt *Net) Unicast(from, to int, m Msg) {
	m.From = from
	nt.out[from] = append(nt.out[from], send{to: []int{to}, msg: m})
}

// Broadcast queues a best-effort broadcast from -> every other process.
func (nt *Net) Broadcast(from int, m Msg) {
	m.From = from
	dsts := make([]int, 0, nt.n-1)
	for p := 0; p < nt.n; p++ {
		if p != from {
			dsts = append(dsts, p)
		}
	}
	nt.out[from] = append(nt.out[from], send{to: dsts, msg: m})
}

// Busy reports whether any message is still queued or in flight.
func (nt *Net) Busy() bool {
	for p := 0; p < nt.n; p++ {
		if len(nt.out[p]) > 0 || len(nt.in[p]) > 0 {
			return true
		}
	}
	return false
}

// Step runs one round: every process's first queued transmission leaves,
// then every process receives the single oldest queued inbound message.
// receive is invoked for each process that got a message this round.
func (nt *Net) Step(receive func(p int, m Msg)) {
	nt.round++
	// Sends first: messages sent in round r are receivable at its end.
	for p := 0; p < nt.n; p++ {
		if len(nt.out[p]) == 0 {
			continue
		}
		s := nt.out[p][0]
		nt.out[p] = nt.out[p][1:]
		for _, dst := range s.to {
			nt.in[dst] = append(nt.in[dst], s.msg)
		}
	}
	for p := 0; p < nt.n; p++ {
		if len(nt.in[p]) == 0 {
			continue
		}
		m := nt.in[p][0]
		nt.in[p] = nt.in[p][1:]
		receive(p, m)
	}
}

// System is one protocol instance on the round model.
type System interface {
	// Broadcast enqueues TO-broadcast of message id at process p. IDs are
	// arbitrary but unique per run.
	Broadcast(p int, id int)
	// Step executes one round.
	Step()
	// Delivered drains process p's TO-deliveries, in delivery order.
	Delivered(p int) []int
	// Busy reports whether protocol work is still pending.
	Busy() bool
	// Round returns the number of completed rounds.
	Round() int
}

// Protocol names a protocol class and builds instances of it.
type Protocol struct {
	Name string
	New  func(n int) System
}

// Protocols lists every implemented class, FSR last — the paper's Section 2
// taxonomy plus its contribution.
func Protocols() []Protocol {
	return []Protocol{
		{Name: "fixed-sequencer", New: func(n int) System { return NewFixedSeq(n) }},
		{Name: "moving-sequencer", New: func(n int) System { return NewMovingSeq(n) }},
		{Name: "privilege", New: func(n int) System { return NewPrivilege(n) }},
		{Name: "communication-history", New: func(n int) System { return NewCommHistory(n) }},
		{Name: "destination-agreement", New: func(n int) System { return NewDestAgreement(n) }},
		{Name: "fsr", New: func(n int) System { return NewFSR(n, 1) }},
	}
}

// ProtocolByName finds a protocol class.
func ProtocolByName(name string) (Protocol, error) {
	for _, p := range Protocols() {
		if p.Name == name {
			return p, nil
		}
	}
	return Protocol{}, fmt.Errorf("model: unknown protocol %q", name)
}

// deliverInOrder is the shared in-order delivery gate: out holds eligible
// (seq -> id) entries; ids are appended to dst in contiguous seq order.
type orderedDeliverer struct {
	next     int
	eligible map[int]int
	out      []int
}

func newOrderedDeliverer() *orderedDeliverer {
	return &orderedDeliverer{next: 1, eligible: make(map[int]int)}
}

func (o *orderedDeliverer) markEligible(seq, id int) {
	o.eligible[seq] = id
	for {
		id, ok := o.eligible[o.next]
		if !ok {
			return
		}
		delete(o.eligible, o.next)
		o.out = append(o.out, id)
		o.next++
	}
}

func (o *orderedDeliverer) drain() []int {
	d := o.out
	o.out = nil
	return d
}

func (o *orderedDeliverer) pendingEligible() bool { return len(o.eligible) > 0 }
