// FSR on the round model: a thin adapter over the real protocol engine
// (internal/core), so the analytical results measure the actual
// implementation, not a re-sketch. Per round each engine emits at most one
// frame to its ring successor and consumes at most one inbound frame —
// exactly the paper's model.

package model

import (
	"fmt"

	"fsr/internal/core"
	"fsr/internal/ring"
	"fsr/internal/wire"
)

// fsrSystem runs n core engines in lockstep rounds.
type fsrSystem struct {
	nt      *Net
	engines []*core.Engine
	del     [][]int
	ids     map[wire.MsgID]int // segment -> workload id
	pending int                // broadcasts not yet delivered everywhere
	dcount  map[int]int        // id -> processes that delivered it
}

// NewFSR builds an FSR instance with t backups on the round model.
func NewFSR(n, t int) System {
	members := make([]ring.ProcID, n)
	for i := range members {
		members[i] = ring.ProcID(i)
	}
	v := core.View{ID: 1, Ring: ring.MustNew(members, min(t, n-1))}
	s := &fsrSystem{
		nt:     NewNet(n),
		del:    make([][]int, n),
		ids:    make(map[wire.MsgID]int),
		dcount: make(map[int]int),
	}
	for _, id := range members {
		e, err := core.NewEngine(core.Config{Self: id}, v)
		if err != nil {
			panic(fmt.Sprintf("model: %v", err)) // static config, cannot fail
		}
		s.engines = append(s.engines, e)
	}
	return s
}

func (s *fsrSystem) Broadcast(p int, id int) {
	mid, err := s.engines[p].Broadcast([]byte{1}) // one segment per message
	if err != nil {
		panic(fmt.Sprintf("model: %v", err))
	}
	s.ids[mid] = id
	s.pending++
	s.collect(p) // single-process groups deliver inline
}

func (s *fsrSystem) Step() {
	// Sends happen at the start of the round, receptions at its end —
	// the paper's round structure, so completion counts match L(i).
	n := len(s.engines)
	for p, e := range s.engines {
		if f, ok := e.NextFrame(); ok {
			s.nt.Unicast(p, (p+1)%n, Msg{Kind: "frame", Payload: f})
		}
		s.collect(p)
	}
	s.nt.Step(func(p int, m Msg) {
		f := m.Payload.(*wire.Frame)
		if err := s.engines[p].HandleFrame(f); err != nil {
			panic(fmt.Sprintf("model: engine %d: %v", p, err))
		}
		s.collect(p)
	})
}

func (s *fsrSystem) collect(p int) {
	for _, d := range s.engines[p].Deliveries() {
		id := s.ids[d.ID]
		s.del[p] = append(s.del[p], id)
		s.dcount[id]++
		if s.dcount[id] == len(s.engines) {
			s.pending--
		}
	}
}

func (s *fsrSystem) Delivered(p int) []int {
	d := s.del[p]
	s.del[p] = nil
	return d
}

func (s *fsrSystem) Busy() bool {
	if s.pending > 0 || s.nt.Busy() {
		return true
	}
	for _, e := range s.engines {
		if e.HasOutbound() {
			return true
		}
	}
	return false
}

func (s *fsrSystem) Round() int { return s.nt.Round() }
