// Communication-history protocols (paper §2.4): sender-based ordering with
// logical clocks (Lamport-style, as in Newtop or Total). Processes may
// send at any time; every message carries the sender's logical clock, and a
// process TO-delivers message m once it has heard a clock >= m's from every
// other process — then no earlier message can still arrive, and (clock,
// origin) gives the total order. A process that has nothing to say must
// eventually emit an empty message so others can make progress, which is
// where the class's quadratic message complexity — and its poor throughput
// in the round model — comes from.

package model

import "sort"

type chMsg struct {
	lc     int
	origin int
	id     int // -1 for a heartbeat
}

type chProc struct {
	lc       int
	latest   []int   // highest clock heard per process
	stored   []chMsg // received, not yet delivered
	needBeat bool    // owe the group a clock bump
	queued   []int   // own ids waiting for a send slot
}

type commHistory struct {
	nt      *Net
	del     [][]int
	procs   []*chProc
	pending int
	dcount  map[int]int
}

// NewCommHistory builds a communication-history system.
func NewCommHistory(n int) System {
	s := &commHistory{
		nt:     NewNet(n),
		del:    make([][]int, n),
		dcount: make(map[int]int),
	}
	for range n {
		s.procs = append(s.procs, &chProc{latest: make([]int, n)})
	}
	return s
}

func (s *commHistory) Broadcast(p int, id int) {
	s.pending++
	s.procs[p].queued = append(s.procs[p].queued, id)
}

func (s *commHistory) Step() {
	// Send phase: every process with data sends its next message; a
	// process owing a clock bump heartbeats instead.
	for p, pr := range s.procs {
		switch {
		case len(pr.queued) > 0:
			pr.lc++
			id := pr.queued[0]
			pr.queued = pr.queued[1:]
			m := chMsg{lc: pr.lc, origin: p, id: id}
			pr.stored = append(pr.stored, m)
			pr.latest[p] = pr.lc
			s.nt.Broadcast(p, Msg{Kind: "ch", Payload: m})
			pr.needBeat = false
		case pr.needBeat:
			pr.lc++
			pr.latest[p] = pr.lc
			s.nt.Broadcast(p, Msg{Kind: "ch", Payload: chMsg{lc: pr.lc, origin: p, id: -1}})
			pr.needBeat = false
		}
	}
	s.nt.Step(func(p int, m Msg) {
		cm := m.Payload.(chMsg)
		pr := s.procs[p]
		if cm.lc > pr.lc {
			pr.lc = cm.lc
		}
		if cm.lc > pr.latest[cm.origin] {
			pr.latest[cm.origin] = cm.lc
		}
		if cm.id >= 0 {
			pr.stored = append(pr.stored, cm)
			// A data message obliges a clock response so the group can
			// establish its stability.
			if len(pr.queued) == 0 {
				pr.needBeat = true
			}
		}
		s.tryDeliver(p)
	})
	for p := range s.procs {
		s.tryDeliver(p)
	}
}

// tryDeliver releases every stored message whose clock every process has
// passed, in (clock, origin) order.
func (s *commHistory) tryDeliver(p int) {
	pr := s.procs[p]
	sort.Slice(pr.stored, func(i, j int) bool {
		if pr.stored[i].lc != pr.stored[j].lc {
			return pr.stored[i].lc < pr.stored[j].lc
		}
		return pr.stored[i].origin < pr.stored[j].origin
	})
	for len(pr.stored) > 0 {
		m := pr.stored[0]
		for q := range s.procs {
			if pr.latest[q] < m.lc {
				return // q may still have an earlier message in flight
			}
		}
		pr.stored = pr.stored[1:]
		s.del[p] = append(s.del[p], m.id)
		s.dcount[m.id]++
		if s.dcount[m.id] == len(s.procs) {
			s.pending--
		}
	}
}

func (s *commHistory) Delivered(p int) []int {
	d := s.del[p]
	s.del[p] = nil
	return d
}

func (s *commHistory) Busy() bool { return s.pending > 0 }

func (s *commHistory) Round() int { return s.nt.Round() }
