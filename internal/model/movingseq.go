// Moving sequencer (paper §2.2, Figure 2): senders best-effort broadcast
// their message to everyone; a token circulates on a logical ring; the
// token holder assigns sequence numbers to unsequenced messages it has
// stored. The token itself gathers the acknowledgments: once it has
// traveled n-1 hops past an assignment, every process has stored the
// sequenced message (uniform stability), and each process delivers it on
// its next token visit — i.e. during the token's second revolution.
//
// The class improves on the fixed sequencer by spreading sequencing load,
// but the paper's point shows up directly in the round model: the token
// competes with data broadcasts for each process's single receive slot, so
// the protocol cannot deliver one message per round (Figure 2).

package model

type msEntry struct {
	seq, id int
	hops    int // token hops since the assignment was made
}

type msToken struct {
	entries []*msEntry
}

type movingSeq struct {
	nt  *Net
	del []*orderedDeliverer

	unseq    [][]int // per process: stored raw messages awaiting a token visit
	assigned map[int]bool
	nextSeq  int
	pending  int
}

// NewMovingSeq builds a moving-sequencer system; the token starts at
// process 0.
func NewMovingSeq(n int) System {
	s := &movingSeq{nt: NewNet(n), unseq: make([][]int, n), assigned: make(map[int]bool)}
	for range n {
		s.del = append(s.del, newOrderedDeliverer())
	}
	s.nt.Unicast(0, 1%n, Msg{Kind: "token", Payload: &msToken{}})
	return s
}

func (s *movingSeq) Broadcast(p int, id int) {
	s.pending++
	s.unseq[p] = append(s.unseq[p], id)
	s.nt.Broadcast(p, Msg{Kind: "data", Payload: id})
}

func (s *movingSeq) Step() {
	n := s.nt.N()
	s.nt.Step(func(p int, m Msg) {
		switch m.Kind {
		case "data":
			s.unseq[p] = append(s.unseq[p], m.Payload.(int))
		case "token":
			tok := m.Payload.(*msToken)
			// Advance the ack window: each hop means one more process has
			// stored every carried assignment.
			live := tok.entries[:0]
			for _, e := range tok.entries {
				e.hops++
				// In the window [n-1, 2n-2] the token visits every process
				// exactly once: stability has been reached, deliver here.
				if e.hops >= n-1 {
					s.del[p].markEligible(e.seq, e.id)
				}
				if e.hops >= 2*(n-1) {
					s.pending-- // everyone has delivered
					continue
				}
				live = append(live, e)
			}
			tok.entries = live
			// Sequence this holder's stored raw messages. Every process
			// stores every broadcast, so skip what an earlier holder
			// already assigned (in the real protocol the assignment
			// broadcast purges the receive queues).
			for _, id := range s.unseq[p] {
				if s.assigned[id] {
					continue
				}
				s.assigned[id] = true
				s.nextSeq++
				tok.entries = append(tok.entries, &msEntry{seq: s.nextSeq, id: id})
			}
			s.unseq[p] = nil
			s.nt.Unicast(p, (p+1)%n, Msg{Kind: "token", Payload: tok})
		}
	})
}

func (s *movingSeq) Delivered(p int) []int { return s.del[p].drain() }

// Busy ignores the perpetually circulating token: work remains only while
// some broadcast has not been delivered everywhere.
func (s *movingSeq) Busy() bool { return s.pending > 0 }

func (s *movingSeq) Round() int { return s.nt.Round() }
