// Destination-agreement protocols (paper §2.5): the delivery order results
// from an agreement — a consensus instance — among the destinations. This
// models the classic Chandra-Toueg-style reduction in its failure-free fast
// path: the sender broadcasts its message; a coordinator proposes the next
// position in the order; every destination votes; the coordinator announces
// the decision. Even without failures that is two broadcast phases plus a
// vote-collection phase per message, with all n-1 votes serializing through
// the coordinator's single receive slot — the paper's "relatively bad
// performance because of the high number of messages" made concrete.

package model

type destAgreement struct {
	nt  *Net
	del []*orderedDeliverer

	nextSeq int
	votes   map[int]int // seq -> votes received (coordinator)
	open    map[int]int // seq -> id, agreement in progress
}

type daPayload struct{ seq, id int }

// NewDestAgreement builds a destination-agreement system; process 0
// coordinates every instance (the failure-free fast path of a rotating-
// coordinator consensus).
func NewDestAgreement(n int) System {
	s := &destAgreement{
		nt:    NewNet(n),
		votes: make(map[int]int),
		open:  make(map[int]int),
	}
	for range n {
		s.del = append(s.del, newOrderedDeliverer())
	}
	return s
}

func (s *destAgreement) Broadcast(p int, id int) {
	if p == 0 {
		s.propose(id)
		return
	}
	s.nt.Unicast(p, 0, Msg{Kind: "submit", Payload: id})
}

func (s *destAgreement) propose(id int) {
	s.nextSeq++
	seq := s.nextSeq
	if s.nt.N() == 1 {
		s.del[0].markEligible(seq, id)
		return
	}
	s.open[seq] = id
	s.votes[seq] = 0
	s.nt.Broadcast(0, Msg{Kind: "propose", Payload: daPayload{seq: seq, id: id}})
}

func (s *destAgreement) Step() {
	s.nt.Step(func(p int, m Msg) {
		switch m.Kind {
		case "submit": // at the coordinator
			s.propose(m.Payload.(int))
		case "propose":
			s.nt.Unicast(p, 0, Msg{Kind: "vote", Payload: m.Payload})
		case "vote": // at the coordinator
			pl := m.Payload.(daPayload)
			s.votes[pl.seq]++
			if s.votes[pl.seq] == s.nt.N()-1 {
				delete(s.votes, pl.seq)
				delete(s.open, pl.seq)
				s.del[0].markEligible(pl.seq, pl.id)
				s.nt.Broadcast(0, Msg{Kind: "decide", Payload: pl})
			}
		case "decide":
			pl := m.Payload.(daPayload)
			s.del[p].markEligible(pl.seq, pl.id)
		}
	})
}

func (s *destAgreement) Delivered(p int) []int { return s.del[p].drain() }

func (s *destAgreement) Busy() bool {
	if s.nt.Busy() || len(s.open) > 0 {
		return true
	}
	for _, d := range s.del {
		if d.pendingEligible() {
			return true
		}
	}
	return false
}

func (s *destAgreement) Round() int { return s.nt.Round() }
