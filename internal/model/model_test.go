package model

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestAllProtocolsCorrectness checks the TO-broadcast specification —
// agreement, total order, integrity, completeness (all verified inside
// Run) — for every protocol class on a sweep of k-to-n workloads.
func TestAllProtocolsCorrectness(t *testing.T) {
	for _, proto := range Protocols() {
		for _, n := range []int{1, 2, 3, 5, 8} {
			for _, k := range []int{1, 2, n} {
				if k > n {
					continue
				}
				name := fmt.Sprintf("%s/n%d/k%d", proto.Name, n, k)
				t.Run(name, func(t *testing.T) {
					sys := proto.New(n)
					if _, err := Run(proto.Name, sys, n, SenderSet(k), 6, 1_000_000); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestAllProtocolsRandomWorkloads fuzzes sender sets and message counts.
func TestAllProtocolsRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, proto := range Protocols() {
		for trial := range 10 {
			n := 2 + rng.Intn(7)
			k := 1 + rng.Intn(n)
			per := 1 + rng.Intn(10)
			senders := rng.Perm(n)[:k]
			name := fmt.Sprintf("%s/trial%d", proto.Name, trial)
			t.Run(name, func(t *testing.T) {
				sys := proto.New(n)
				if _, err := Run(proto.Name, sys, n, senders, per, 1_000_000); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// mustRun is a helper returning the throughput of a workload.
func mustRun(t *testing.T, proto Protocol, n int, senders []int, per int) *Result {
	t.Helper()
	res, err := Run(proto.Name, proto.New(n), n, senders, per, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func proto(t *testing.T, name string) Protocol {
	t.Helper()
	p, err := ProtocolByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFSRThroughputEfficient reproduces §4.3.2: FSR completes at least one
// broadcast per round on average, for every broadcast pattern, independent
// of n, t and the number of senders.
func TestFSRThroughputEfficient(t *testing.T) {
	fsr := proto(t, "fsr")
	const per = 300
	for _, n := range []int{3, 5, 10} {
		for _, k := range []int{1, 2, n} {
			res := mustRun(t, fsr, n, SenderSet(k), per)
			if res.Throughput < 0.95 {
				t.Errorf("FSR n=%d k=%d: throughput %.3f < 1 (rounds=%d)",
					n, k, res.Throughput, res.Rounds)
			}
		}
	}
}

// TestFSRLatencyFormula verifies L(i) = 2n + t - i - 1 on the round model
// through the public workload driver (the engine-level test checks the
// same thing; this pins the adapter's round accounting).
func TestFSRLatencyFormula(t *testing.T) {
	for _, n := range []int{2, 5, 9} {
		for _, s := range []int{0, 1, n - 1} {
			sys := NewFSR(n, 1)
			res, err := Run("fsr", sys, n, []int{s}, 1, 100000)
			if err != nil {
				t.Fatal(err)
			}
			want := 2*n + 1 - s - 1
			if s == 0 {
				want = n + 1 - 1
			}
			if res.Rounds != want {
				t.Errorf("n=%d s=%d: completed in %d rounds, want %d", n, s, res.Rounds, want)
			}
		}
	}
}

// TestFixedSequencerBottleneck reproduces §2.1: the sequencer's single
// receive slot serializes payloads and n-1 acks, so throughput falls
// roughly as 1/n.
func TestFixedSequencerBottleneck(t *testing.T) {
	fs := proto(t, "fixed-sequencer")
	const per = 200
	for _, n := range []int{4, 8} {
		res := mustRun(t, fs, n, SenderSet(1), per)
		limit := 1.5 / float64(n)
		if res.Throughput > limit {
			t.Errorf("fixed sequencer n=%d: throughput %.3f, expected sequencer-bound <= %.3f",
				n, res.Throughput, limit)
		}
	}
	// And it degrades with n — the scalability failure FSR avoids.
	small := mustRun(t, fs, 4, SenderSet(1), per)
	large := mustRun(t, fs, 8, SenderSet(1), per)
	if large.Throughput >= small.Throughput {
		t.Errorf("fixed sequencer should degrade with n: n=4 %.3f vs n=8 %.3f",
			small.Throughput, large.Throughput)
	}
}

// TestMovingSequencerBelowOne reproduces §2.2 / Figure 2: better than the
// fixed sequencer, but in the 1-to-n pattern the token competes with the
// data broadcasts for each process's single receive slot, so the protocol
// cannot deliver one message per round ("it is impossible for the moving
// sequencer protocol to deliver one message per round").
func TestMovingSequencerBelowOne(t *testing.T) {
	ms := proto(t, "moving-sequencer")
	fs := proto(t, "fixed-sequencer")
	const n, per = 5, 200
	resMS := mustRun(t, ms, n, SenderSet(1), per)
	resFS := mustRun(t, fs, n, SenderSet(1), per)
	if resMS.Throughput >= 0.99 {
		t.Errorf("moving sequencer 1-to-n throughput %.3f, must stay below 1", resMS.Throughput)
	}
	if resMS.Throughput <= resFS.Throughput {
		t.Errorf("moving sequencer (%.3f) should beat fixed sequencer (%.3f)",
			resMS.Throughput, resFS.Throughput)
	}
	// FSR reaches 1 on the same pattern — the paper's core improvement.
	resFSR := mustRun(t, proto(t, "fsr"), n, SenderSet(1), per)
	if resFSR.Throughput <= resMS.Throughput {
		t.Errorf("FSR (%.3f) should beat the moving sequencer (%.3f) on 1-to-n",
			resFSR.Throughput, resMS.Throughput)
	}
}

// TestPrivilegeTradeoff reproduces §2.3: the fair variant (quantum 1)
// collapses when two senders sit on opposite sides of the ring — the token
// commutes — while the unfair variant keeps throughput by starving one
// sender. FSR gets both: throughput AND fairness.
func TestPrivilegeTradeoff(t *testing.T) {
	const n, per = 8, 200
	// 1-to-n: privilege is fine (the token parks at the only sender).
	fair, err := Run("privilege", NewPrivilegeQuantum(n, 1), n, SenderSet(1), per, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if fair.Throughput < 0.9 {
		t.Errorf("privilege 1-to-n: throughput %.3f, want ~1", fair.Throughput)
	}
	// 2 opposite senders, fair quantum: the token commutes, throughput
	// collapses well below 1.
	opp, err := Run("privilege", NewPrivilegeQuantum(n, 1), n, OppositeSenders(n), per, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if opp.Throughput > 0.6 {
		t.Errorf("fair privilege with opposite senders: throughput %.3f, expected collapse", opp.Throughput)
	}
	// Unbounded quantum restores throughput (sender 0 hogs the token) —
	// that is the unfairness half of the trade-off.
	unfair, err := Run("privilege", NewPrivilegeQuantum(n, 0), n, OppositeSenders(n), per, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if unfair.Throughput < 0.9 {
		t.Errorf("unfair privilege: throughput %.3f, want ~1", unfair.Throughput)
	}
	// FSR: same workload, no trade-off (throughput ~1 with fairness built
	// in; fairness itself is asserted in the core package tests).
	fsrRes := mustRun(t, proto(t, "fsr"), n, OppositeSenders(n), per)
	if fsrRes.Throughput < 0.95 {
		t.Errorf("FSR with opposite senders: throughput %.3f, want ~1", fsrRes.Throughput)
	}
	if fsrRes.Throughput < 1.5*opp.Throughput {
		t.Errorf("FSR (%.3f) should dominate fair privilege (%.3f) on opposite senders",
			fsrRes.Throughput, opp.Throughput)
	}
}

// TestCommHistoryQuadratic reproduces §2.4: the class needs a quadratic
// number of messages — every data message obliges every other process to
// answer with a clock-bearing message. With a single sender the receive
// slots fill with those answers and throughput collapses to ~1/(n-1).
// (With all n broadcasting constantly the clocks ride the data and the
// class does fine — which is why the paper calls out the pattern
// dependence, not the n-to-n case.)
func TestCommHistoryQuadratic(t *testing.T) {
	ch := proto(t, "communication-history")
	const per = 120
	for _, n := range []int{4, 8} {
		res := mustRun(t, ch, n, SenderSet(1), per)
		limit := 2.0 / float64(n-1)
		if res.Throughput > limit {
			t.Errorf("communication history n=%d 1-to-n: throughput %.3f, expected <= %.3f",
				n, res.Throughput, limit)
		}
	}
}

// TestDestAgreementExpensive reproduces §2.5: per-message agreement is the
// most expensive pattern of all the classes.
func TestDestAgreementExpensive(t *testing.T) {
	da := proto(t, "destination-agreement")
	fs := proto(t, "fixed-sequencer")
	const n, per = 5, 150
	resDA := mustRun(t, da, n, SenderSet(2), per)
	resFS := mustRun(t, fs, n, SenderSet(2), per)
	if resDA.Throughput > resFS.Throughput {
		t.Errorf("destination agreement (%.3f) should not beat fixed sequencer (%.3f)",
			resDA.Throughput, resFS.Throughput)
	}
	if resDA.Throughput > 0.4 {
		t.Errorf("destination agreement throughput %.3f, expected far below 1", resDA.Throughput)
	}
}

// TestFSRDominatesAllClasses is the paper's headline comparison (§1, §2):
// on the mixed k-to-n pattern, FSR beats every surveyed class.
func TestFSRDominatesAllClasses(t *testing.T) {
	const n, k, per = 6, 3, 150
	fsrRes := mustRun(t, proto(t, "fsr"), n, SenderSet(k), per)
	for _, p := range Protocols() {
		if p.Name == "fsr" {
			continue
		}
		res := mustRun(t, p, n, SenderSet(k), per)
		if res.Throughput > fsrRes.Throughput*1.02 {
			t.Errorf("%s throughput %.3f exceeds FSR %.3f on %d-to-%d",
				p.Name, res.Throughput, fsrRes.Throughput, k, n)
		}
	}
}

func TestProtocolByName(t *testing.T) {
	if _, err := ProtocolByName("fsr"); err != nil {
		t.Fatal(err)
	}
	if _, err := ProtocolByName("nope"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestSenderHelpers(t *testing.T) {
	if got := SenderSet(3); len(got) != 3 || got[2] != 2 {
		t.Errorf("SenderSet: %v", got)
	}
	if got := OppositeSenders(8); got[0] != 0 || got[1] != 4 {
		t.Errorf("OppositeSenders: %v", got)
	}
}

func BenchmarkRoundModelFSR(b *testing.B) {
	sys := NewFSR(5, 1)
	delivered := 0
	for i := 0; delivered < b.N; i++ {
		sys.Broadcast(i%5, i)
		sys.Step()
		for p := range 5 {
			if p == 0 {
				delivered += len(sys.Delivered(p))
			} else {
				sys.Delivered(p)
			}
		}
	}
}
