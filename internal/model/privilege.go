// Privilege-based protocols (paper §2.3, Figure 3): a token circulates on a
// logical ring and only its holder may broadcast (and order) messages. The
// holder stamps each message with the token's sequence counter and
// broadcasts it with the token hand-off piggybacked; processes deliver
// sequenced broadcasts in sequence order (sender-side ordering — the
// non-uniform core of Totem-style protocols; the uniform upgrade adds a
// token revolution before delivery and changes none of the throughput
// conclusions).
//
// Quantum is the fairness knob the paper discusses: how many messages a
// holder may broadcast per token tenure. An infinite quantum gives maximal
// throughput and starves other senders; quantum 1 is fair but forces the
// token to commute between distant senders — the §2.3 trade-off ("either
// one of the processes keeps the token, which is unfair, or the token is
// constantly passed ... which drastically reduces the throughput"). FSR's
// whole point is removing this trade-off.

package model

type privilege struct {
	nt      *Net
	del     []*orderedDeliverer
	quantum int

	own      [][]int // per process: queued own messages
	sent     []int   // per process: sends in the current token tenure
	holder   int     // the token's position (meaningful when hasToken)
	hasToken bool    // token resident at holder (not in flight)
	nextSeq  int
	pending  int
	dcount   map[int]int
}

type privData struct {
	seq, id   int
	tokenNext int // -1: no token piggybacked; else the next holder
}

// NewPrivilege builds the fair variant (quantum 1); process 0 starts with
// the token.
func NewPrivilege(n int) System { return NewPrivilegeQuantum(n, 1) }

// NewPrivilegeQuantum builds a privilege system with the given tenure
// quantum (<= 0 means unbounded — the unfair variant).
func NewPrivilegeQuantum(n, quantum int) System {
	s := &privilege{
		nt:      NewNet(n),
		quantum: quantum,
		own:     make([][]int, n),
		sent:    make([]int, n),
		dcount:  make(map[int]int),
	}
	for range n {
		s.del = append(s.del, newOrderedDeliverer())
	}
	s.holder = 0
	s.hasToken = true
	return s
}

// privToken is the bare token hand-off (no data to piggyback on).
type privToken struct{}

func (s *privilege) Broadcast(p int, id int) {
	s.pending++
	s.own[p] = append(s.own[p], id)
}

func (s *privilege) Step() {
	// A resident token acts at the start of the round: the holder
	// broadcasts its next message (token piggybacked if the quantum is
	// spent) or forwards the token if it has nothing to send.
	if s.hasToken {
		s.act()
	}
	s.nt.Step(func(p int, m Msg) {
		switch m.Kind {
		case "data":
			d := m.Payload.(*privData)
			s.deliver(p, d)
			if d.tokenNext == p {
				s.hasToken = true
				s.holder = p
			}
		case "token":
			s.hasToken = true
			s.holder = p
		}
	})
}

// act performs the holder's one send for this round. The token moves only
// when some other process is waiting for it (demand is signalled by
// request messages in real implementations; the model reads it directly).
func (s *privilege) act() {
	p := s.holder
	n := s.nt.N()
	demand := false
	for q := range n {
		if q != p && len(s.own[q]) > 0 {
			demand = true
			break
		}
	}
	if len(s.own[p]) == 0 {
		if demand {
			s.hasToken = false
			s.sent[p] = 0
			s.nt.Unicast(p, (p+1)%n, Msg{Kind: "token", Payload: privToken{}})
		}
		return
	}
	id := s.own[p][0]
	s.own[p] = s.own[p][1:]
	s.sent[p]++
	s.nextSeq++
	d := &privData{seq: s.nextSeq, id: id, tokenNext: -1}
	// Hand the token off (piggybacked on the data broadcast) when the
	// fairness quantum is spent — or the queue drained — and someone is
	// waiting.
	if demand && ((s.quantum > 0 && s.sent[p] >= s.quantum) || len(s.own[p]) == 0) {
		d.tokenNext = (p + 1) % n
		s.sent[p] = 0
		s.hasToken = false
	}
	s.nt.Broadcast(p, Msg{Kind: "data", Payload: d})
	// The sender delivers its own message immediately (it holds the order).
	s.deliver(p, d)
}

func (s *privilege) deliver(p int, d *privData) {
	s.del[p].markEligible(d.seq, d.id)
	s.dcount[d.id]++
	if s.dcount[d.id] == s.nt.N() {
		s.pending--
	}
}

func (s *privilege) Delivered(p int) []int { return s.del[p].drain() }

func (s *privilege) Busy() bool { return s.pending > 0 }

func (s *privilege) Round() int { return s.nt.Round() }
