// Fixed sequencer (paper §2.1, Figure 1), uniform variant: the sender
// unicasts its message to the sequencer; the sequencer assigns the next
// sequence number and broadcasts (m, seq); every process unicasts an ack
// back to the sequencer; once all n-1 acks are in, the sequencer broadcasts
// "stable" and everyone delivers in sequence order.
//
// The round model exposes the class's weakness directly: the sequencer can
// receive only one message per round, so the n-1 acks (which cannot be
// piggybacked unless everyone broadcasts all the time, paper footnote 2)
// plus every payload serialize through its single receive slot — throughput
// collapses to roughly 1/n.

package model

type fixedSeq struct {
	nt  *Net
	del []*orderedDeliverer

	nextSeq int
	acks    map[int]int // seq -> acks received (sequencer)
	pending map[int]int // seq -> id, not yet stable (sequencer view)
	done    int         // messages known fully delivered
	issued  int
}

type fsPayload struct{ seq, id int }

// NewFixedSeq builds a fixed-sequencer system; process 0 is the sequencer.
func NewFixedSeq(n int) System {
	s := &fixedSeq{
		nt:      NewNet(n),
		acks:    make(map[int]int),
		pending: make(map[int]int),
	}
	for range n {
		s.del = append(s.del, newOrderedDeliverer())
	}
	return s
}

func (s *fixedSeq) Broadcast(p int, id int) {
	s.issued++
	if p == 0 {
		s.sequence(id)
		return
	}
	s.nt.Unicast(p, 0, Msg{Kind: "data", Payload: id})
}

// sequence runs the sequencer-side assignment for one message.
func (s *fixedSeq) sequence(id int) {
	s.nextSeq++
	seq := s.nextSeq
	if s.nt.N() == 1 {
		s.del[0].markEligible(seq, id)
		s.done++
		return
	}
	s.pending[seq] = id
	s.acks[seq] = 0
	s.nt.Broadcast(0, Msg{Kind: "seq", Payload: fsPayload{seq: seq, id: id}})
}

func (s *fixedSeq) Step() {
	s.nt.Step(func(p int, m Msg) {
		switch m.Kind {
		case "data": // at the sequencer
			s.sequence(m.Payload.(int))
		case "seq":
			pl := m.Payload.(fsPayload)
			// Store and ack; delivery waits for stability.
			s.nt.Unicast(p, 0, Msg{Kind: "ack", Payload: pl})
		case "ack": // at the sequencer
			pl := m.Payload.(fsPayload)
			s.acks[pl.seq]++
			if s.acks[pl.seq] == s.nt.N()-1 {
				delete(s.acks, pl.seq)
				delete(s.pending, pl.seq)
				s.del[0].markEligible(pl.seq, pl.id)
				s.nt.Broadcast(0, Msg{Kind: "stable", Payload: pl})
				s.done++
			}
		case "stable":
			pl := m.Payload.(fsPayload)
			s.del[p].markEligible(pl.seq, pl.id)
		}
	})
}

func (s *fixedSeq) Delivered(p int) []int { return s.del[p].drain() }

func (s *fixedSeq) Busy() bool {
	if s.nt.Busy() || len(s.pending) > 0 {
		return true
	}
	for _, d := range s.del {
		if d.pendingEligible() {
			return true
		}
	}
	return false
}

func (s *fixedSeq) Round() int { return s.nt.Round() }
