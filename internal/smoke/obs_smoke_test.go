package smoke

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fsr/admin"
)

// TestObservabilitySmoke builds the real binaries and runs the deploy/
// topology — three durable members, one edge replica, a publisher — with
// every process exposing /metrics, /healthz and /readyz. It then does what
// an operator (or an orchestrator's probes) would: scrapes metrics, sweeps
// fsr-admin status, kill -9s a member, asserts its probe endpoint dies and
// the survivors stay ready on a new view, restarts it with -join and
// asserts /readyz recovers with the member caught up. Gated on
// FSR_OBS_SMOKE=1.
func TestObservabilitySmoke(t *testing.T) {
	if os.Getenv("FSR_OBS_SMOKE") != "1" {
		t.Skip("set FSR_OBS_SMOKE=1 to run the process-level observability smoke test")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := t.TempDir()
	for _, cmd := range []string{"fsr-node", "fsr-edge", "fsr-pub", "fsr-admin"} {
		build := exec.Command("go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd)
		build.Dir = root
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", cmd, err, out)
		}
	}

	memberAddrs := []string{freeAddr(t), freeAddr(t), freeAddr(t)}
	obsAddrs := []string{freeAddr(t), freeAddr(t), freeAddr(t)}
	edgeAddr, edgeObs := freeAddr(t), freeAddr(t)
	data := t.TempDir()
	var peers []string
	for id, addr := range memberAddrs {
		peers = append(peers, fmt.Sprintf("%d=%s", id, addr))
	}
	peerSpec := strings.Join(peers, ",")

	procs := make(map[string]*exec.Cmd)
	stopAll := func() {
		for _, p := range procs {
			if p.Process != nil {
				_ = p.Process.Signal(os.Interrupt)
			}
		}
		for _, p := range procs {
			waitProc(p, 5*time.Second)
		}
	}
	defer stopAll()
	start := func(key, name string, args ...string) *exec.Cmd {
		t.Helper()
		p := exec.Command(filepath.Join(bin, name), args...)
		log, err := os.OpenFile(filepath.Join(bin, key+".log"),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		p.Stdout, p.Stderr = log, log
		if err := p.Start(); err != nil {
			t.Fatalf("start %s: %v", key, err)
		}
		procs[key] = p
		return p
	}
	nodeArgs := func(id int, join bool) []string {
		args := []string{
			"-id", fmt.Sprint(id), "-peers", peerSpec,
			"-durable", filepath.Join(data, fmt.Sprintf("node%d", id)),
			"-obs", obsAddrs[id], "-log", "json",
		}
		if join {
			args = append(args, "-join")
		}
		return args
	}
	for id := range memberAddrs {
		start(fmt.Sprintf("node%d", id), "fsr-node", nodeArgs(id, false)...)
	}
	start("edge", "fsr-edge",
		"-listen", edgeAddr, "-members", strings.Join(memberAddrs, ","),
		"-durable", filepath.Join(data, "edge"), "-obs", edgeObs, "-log", "json")

	// Everyone answers their probes once the ring forms and the edge tails.
	allObs := append(append([]string(nil), obsAddrs...), edgeObs)
	for _, addr := range allObs {
		awaitHTTP(t, addr, "/readyz", http.StatusOK, 30*time.Second)
		awaitHTTP(t, addr, "/healthz", http.StatusOK, 5*time.Second)
	}

	// Commit real traffic, then assert the scrape reflects it.
	pub := start("pub", "fsr-pub",
		"-addrs", strings.Join(memberAddrs, ","), "-every", "10ms", "-count", "30", "-quiet")
	waitProc(pub, 30*time.Second)
	delete(procs, "pub")
	body := scrape(t, obsAddrs[0], "/metrics")
	for _, want := range []string{
		"# TYPE fsr_applied_seq gauge",
		"# TYPE fsr_session_publishes_total counter",
		"# TYPE fsr_publish_latency_seconds histogram",
		"# TYPE fsr_wal_fsyncs_total counter",
		"fsr_view_epoch{",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("member /metrics missing %q; scrape:\n%s", want, body)
		}
	}
	if !strings.Contains(scrape(t, edgeObs, "/metrics"), "fsr_edge_tail_connected") {
		t.Fatal("edge /metrics missing fsr_edge_tail_connected")
	}

	// fsr-admin sweeps the mixed member/edge list.
	sweep := append(append([]string(nil), memberAddrs...), edgeAddr)
	status := exec.Command(filepath.Join(bin, "fsr-admin"),
		"-addrs", strings.Join(sweep, ","), "status")
	out, err := status.CombinedOutput()
	if err != nil {
		t.Fatalf("fsr-admin status: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "member*") || !strings.Contains(string(out), "edge") {
		t.Fatalf("fsr-admin status output incomplete:\n%s", out)
	}
	t.Logf("fsr-admin status:\n%s", out)

	// Library-level admin query against one member, for the applied bound
	// the recovery check below compares against.
	ac, err := admin.Dial(memberAddrs[0], 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ac.Status()
	ac.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied < 30 {
		t.Fatalf("member 0 applied %d, want >= 30 after 30 publishes", st.Applied)
	}

	// Kill -9 a follower: its probe endpoint must die (the process-level
	// readyz flip), the survivors must stay ready and install a view
	// without it.
	victim := 1
	if err := procs[fmt.Sprintf("node%d", victim)].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	waitProc(procs[fmt.Sprintf("node%d", victim)], 5*time.Second)
	awaitDown(t, obsAddrs[victim], 10*time.Second)
	awaitMetric(t, obsAddrs[0], "fsr_view_members{", " 2", 15*time.Second)
	for _, id := range []int{0, 2} {
		if code, _ := probe(obsAddrs[id], "/readyz"); code != http.StatusOK {
			t.Fatalf("survivor node%d /readyz = %d after victim kill", id, code)
		}
	}

	// More traffic while the victim is down, so its restart has history to
	// catch up on.
	pub = start("pub2", "fsr-pub",
		"-addrs", memberAddrs[0]+","+memberAddrs[2], "-every", "10ms", "-count", "20", "-quiet")
	waitProc(pub, 30*time.Second)
	delete(procs, "pub2")

	// Restart the victim as a joiner: the evicted member re-enters through
	// its peers, catches up, and its /readyz recovers.
	start(fmt.Sprintf("node%d", victim), "fsr-node", nodeArgs(victim, true)...)
	awaitHTTP(t, obsAddrs[victim], "/readyz", http.StatusOK, 30*time.Second)
	awaitMetric(t, obsAddrs[victim], "fsr_view_members{", " 3", 15*time.Second)

	// Recovery is real only if the rejoined member holds the full order.
	ac, err = admin.Dial(memberAddrs[victim], 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st2, err := ac.Status()
		if err != nil {
			t.Fatal(err)
		}
		if st2.Applied >= st.Applied+20 && st2.Ready {
			t.Logf("rejoined member: epoch=%d applied=%d ready=%v", st2.Epoch, st2.Applied, st2.Ready)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejoined member never caught up: applied=%d (want >= %d) ready=%v err=%q",
				st2.Applied, st.Applied+20, st2.Ready, st2.ReadyErr)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// probe GETs one path and returns the status code and body.
func probe(addr, path string) (int, string) {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// scrape fetches one path, failing the test on transport errors.
func scrape(t *testing.T, addr, path string) string {
	t.Helper()
	code, body := probe(addr, path)
	if code != http.StatusOK {
		t.Fatalf("GET %s%s = %d: %s", addr, path, code, body)
	}
	return body
}

// awaitHTTP polls one path until it answers with the wanted status.
func awaitHTTP(t *testing.T, addr, path string, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, body := probe(addr, path)
		if code == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s%s never reached %d (last: %d %s)", addr, path, want, code, body)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// awaitDown polls until the endpoint stops answering at all.
func awaitDown(t *testing.T, addr string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if code, _ := probe(addr, "/healthz"); code == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("endpoint %s still answering after kill", addr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// awaitMetric polls /metrics until a line with the given prefix carries the
// wanted suffix (e.g. fsr_view_members{...} 2).
func awaitMetric(t *testing.T, addr, prefix, suffix string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last string
	for {
		_, body := probe(addr, "/metrics")
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, prefix) {
				last = line
				if strings.HasSuffix(line, suffix) {
					return
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("metric %s* never reached %q on %s (last: %q)", prefix, suffix, addr, last)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// waitProc reaps one process, force-killing it at the timeout.
func waitProc(p *exec.Cmd, timeout time.Duration) {
	done := make(chan struct{})
	go func() { _ = p.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		_ = p.Process.Kill()
		<-done
	}
}
