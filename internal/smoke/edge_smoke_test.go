// Package smoke holds end-to-end process-level smoke tests: real binaries,
// real sockets, gated behind environment flags so the ordinary test pass
// stays hermetic.
package smoke

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fsr"
	"fsr/client"
)

// TestEdgeTopologySmoke builds fsr-node and fsr-edge and runs the full
// deployment shape: a three-member ring, one edge replica tailing it, and
// a real TCP client that publishes THROUGH the edge (bounced to a writable
// member by the NOT-WRITABLE redirect) and then streams the committed
// order back from the edge. Gated on FSR_EDGE_SMOKE=1.
func TestEdgeTopologySmoke(t *testing.T) {
	if os.Getenv("FSR_EDGE_SMOKE") != "1" {
		t.Skip("set FSR_EDGE_SMOKE=1 to run the process-level smoke test")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := t.TempDir()
	for _, cmd := range []string{"fsr-node", "fsr-edge"} {
		build := exec.Command("go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd)
		build.Dir = root
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", cmd, err, out)
		}
	}

	memberAddrs := []string{freeAddr(t), freeAddr(t), freeAddr(t)}
	edgeAddr := freeAddr(t)
	var peers []string
	for id, addr := range memberAddrs {
		peers = append(peers, fmt.Sprintf("%d=%s", id, addr))
	}
	peerSpec := strings.Join(peers, ",")

	procs := make([]*exec.Cmd, 0, 4)
	stop := func() {
		for _, p := range procs {
			_ = p.Process.Signal(os.Interrupt)
		}
		for _, p := range procs {
			done := make(chan struct{})
			go func(p *exec.Cmd) { _ = p.Wait(); close(done) }(p)
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				_ = p.Process.Kill()
				<-done
			}
		}
	}
	defer stop()
	start := func(name string, args ...string) {
		t.Helper()
		p := exec.Command(filepath.Join(bin, name), args...)
		log, err := os.Create(filepath.Join(bin, fmt.Sprintf("%s-%d.log", name, len(procs))))
		if err != nil {
			t.Fatal(err)
		}
		p.Stdout, p.Stderr = log, log
		if err := p.Start(); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		procs = append(procs, p)
	}
	for id := range memberAddrs {
		start("fsr-node", "-id", fmt.Sprint(id), "-peers", peerSpec)
	}
	start("fsr-edge", "-listen", edgeAddr, "-members", strings.Join(memberAddrs, ","))

	// The client session is pinned to the edge alone: its publishes must
	// commit via the NOT-WRITABLE redirect to the members, and its
	// subscription is served from the edge's replica of the order.
	sess := dialRetry(t, edgeAddr)
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const total = 25
	for i := 0; i < total; i++ {
		r, err := sess.Publish(ctx, fmt.Appendf(nil, "smoke-%d", i))
		if err != nil {
			t.Fatalf("publish %d through edge: %v", i, err)
		}
		if err := r.Wait(ctx); err != nil {
			t.Fatalf("publish %d never committed: %v", i, err)
		}
	}
	var got int
	for _, m := range sess.Subscribe(ctx, 1) {
		if m.Snapshot {
			continue
		}
		if want := fmt.Sprintf("smoke-%d", got); string(m.Payload) != want {
			t.Fatalf("message %d through edge: got %q want %q", got, m.Payload, want)
		}
		if got++; got == total {
			break
		}
	}
	if got != total {
		t.Fatalf("streamed %d of %d messages back through the edge (session err: %v)", got, total, sess.Err())
	}
	t.Logf("ring+edge smoke: %d messages published and streamed through %s", total, edgeAddr)
}

// freeAddr reserves one loopback TCP address.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

// dialRetry dials the edge until its listener (and the ring behind it) is
// up.
func dialRetry(t *testing.T, addr string) fsr.Session {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		sess, err := client.Dial(client.Config{Addrs: []string{addr}, DialTimeout: time.Second})
		if err == nil {
			return sess
		}
		if time.Now().After(deadline) {
			t.Fatalf("edge at %s never came up: %v", addr, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}
