package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// Config parameterizes Serve.
type Config struct {
	// Addr is the HTTP listen address (":9100", "127.0.0.1:0", ...).
	// Required.
	Addr string
	// Metrics renders the process's metric families to w. Required.
	Metrics func(w io.Writer) error
	// Ready reports nil when the process can serve (see Node.Ready /
	// Edge.Ready); /readyz answers 503 with the error text otherwise.
	// Nil means always ready.
	Ready func() error
	// Health reports nil when the process is alive at all; /healthz
	// answers 503 otherwise. Nil means alive — the default, since a
	// process that answers HTTP is alive by definition; supply it only
	// to surface a fatal background error (e.g. Node.Err).
	Health func() error
}

// Server is one running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability HTTP endpoint: GET /metrics (Prometheus
// text), GET /healthz (liveness), GET /readyz (readiness). It serves until
// Close.
func Serve(cfg Config) (*Server, error) {
	if cfg.Addr == "" || cfg.Metrics == nil {
		return nil, fmt.Errorf("obs: Addr and Metrics are required")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", cfg.Addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = cfg.Metrics(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		probe(w, cfg.Health)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		probe(w, cfg.Ready)
	})
	s := &Server{ln: ln, srv: &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

func probe(w http.ResponseWriter, check func() error) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if check != nil {
		if err := check(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	fmt.Fprintln(w, "ok")
}

// Addr returns the bound listen address (resolving an ephemeral port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint immediately.
func (s *Server) Close() error { return s.srv.Close() }
