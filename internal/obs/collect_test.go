package obs

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"fsr"
	"fsr/edge"
)

// sampleNodeMetrics is a fully-populated snapshot, so the lint below sees
// every family the exporter can emit.
func sampleNodeMetrics() fsr.Metrics {
	m := fsr.Metrics{
		View:     fsr.ViewInfo{ID: 4, Members: []fsr.ProcID{2, 0, 1}, T: 1},
		IsLeader: true,
		FramesIn: 10, FramesOut: 11, DataIn: 12, AcksIn: 13,
		Sequenced: 14, Delivered: 15, StaleFrames: 1,
		RelayedData: 16, OwnSent: 17, FairnessSkips: 2, StandaloneAcks: 3,
		MultiSegFrames: 4, RelayQueue: 1, OwnQueue: 2, AckQueue: 3,
		PendingReceipts: 1, Applied: 15, CatchingUp: true,
		SessionPublishes: 5, SessionDuplicates: 1, SessionSubscribers: 2,
		TailAttached: 2, TailFrames: 6, TailDetaches: 1, EdgeClients: 1,
		SessionBounded: 1,
		WAL: fsr.WALMetrics{
			Segments: 2, Bytes: 4096, Appends: 15, Fsyncs: 15, Rotations: 1,
			Snapshots: 1, SnapshotSeq: 10, SnapshotAge: 3 * time.Second, Repairs: 1,
		},
	}
	m.PublishLatency.Observe(200 * time.Microsecond)
	m.PublishLatency.Observe(3 * time.Millisecond)
	m.PublishLatency.Observe(10 * time.Second) // lands only in +Inf
	return m
}

func sampleEdgeMetrics() edge.Metrics {
	return edge.Metrics{
		Applied: 20, StoreBase: 5, StoreEntries: 15, SnapshotSeq: 5,
		TailConnected: true, TailLag: 120 * time.Millisecond,
		Clients: 3, Subs: 3, TailAttached: 2, TailFrames: 9, TailDetaches: 1,
		NotWritable: 2,
		WAL: fsr.WALMetrics{
			Segments: 1, Bytes: 512, Appends: 20, Fsyncs: 20,
			Snapshots: 1, SnapshotSeq: 5, SnapshotAge: time.Second,
		},
	}
}

var (
	nameRE  = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	labelRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	// sampleRE splits a sample line into name, optional label block, value.
	sampleRE = regexp.MustCompile(`^([a-zA-Z0-9_:]+)(\{[^}]*\})? (\S+)$`)
	lblPair  = regexp.MustCompile(`([a-zA-Z0-9_]+)="((?:[^"\\]|\\.)*)"`)
)

// lintExposition runs promlint-style checks over one exposition document:
// name and label hygiene, HELP/TYPE presence and order, counter/_total
// suffix agreement, histogram series completeness, no duplicate families,
// and a mandatory identity label on every sample.
func lintExposition(t *testing.T, doc, identityLabel string) {
	t.Helper()
	types := map[string]string{} // family -> declared type
	helped := map[string]bool{}
	samples := map[string]int{} // family -> sample count
	for _, line := range strings.Split(strings.TrimRight(doc, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Errorf("HELP without text: %q", line)
			}
			if helped[parts[0]] {
				t.Errorf("duplicate HELP for %s", parts[0])
			}
			helped[parts[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(line[len("# TYPE "):], " ", 2)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, typ := parts[0], parts[1]
			if !nameRE.MatchString(name) {
				t.Errorf("metric name %q violates naming convention", name)
			}
			if _, dup := types[name]; dup {
				t.Errorf("duplicate family %s", name)
			}
			if !helped[name] {
				t.Errorf("family %s has TYPE before/without HELP", name)
			}
			switch typ {
			case "counter":
				if !strings.HasSuffix(name, "_total") {
					t.Errorf("counter %s must end in _total", name)
				}
			case "gauge":
				if strings.HasSuffix(name, "_total") {
					t.Errorf("gauge %s must not end in _total", name)
				}
			case "histogram":
				if !strings.Contains(name, "_seconds") {
					t.Errorf("histogram %s should carry a base unit suffix", name)
				}
			default:
				t.Errorf("family %s has unexpected type %q", name, typ)
			}
			types[name] = typ
		case line == "":
			t.Error("blank line in exposition output")
		default:
			m := sampleRE.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("malformed sample line: %q", line)
				continue
			}
			name, lbl := m[1], m[2]
			family := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if typ, ok := types[strings.TrimSuffix(name, suf)]; ok && typ == "histogram" {
					family = strings.TrimSuffix(name, suf)
				}
			}
			typ, ok := types[family]
			if !ok {
				t.Errorf("sample %s has no TYPE declaration", name)
				continue
			}
			if typ == "histogram" && family == name {
				t.Errorf("histogram %s emitted a bare sample", name)
			}
			samples[family]++
			hasIdentity := false
			for _, kv := range lblPair.FindAllStringSubmatch(lbl, -1) {
				if !labelRE.MatchString(kv[1]) && kv[1] != "le" {
					t.Errorf("label name %q on %s violates naming convention", kv[1], name)
				}
				if kv[1] == identityLabel {
					hasIdentity = true
				}
			}
			if !hasIdentity {
				t.Errorf("sample %s missing identity label %q: %q", name, identityLabel, line)
			}
		}
	}
	for name := range types {
		if samples[name] == 0 {
			t.Errorf("family %s declared but emitted no samples", name)
		}
	}
}

func TestNodeExpositionLint(t *testing.T) {
	var b bytes.Buffer
	if err := WriteNodeMetrics(&b, 3, sampleNodeMetrics()); err != nil {
		t.Fatal(err)
	}
	doc := b.String()
	lintExposition(t, doc, "node")
	// The histogram must be internally consistent: +Inf bucket == count,
	// and the sample above the largest bound appears only there.
	for _, want := range []string{
		`fsr_publish_latency_seconds_bucket{node="3",le="+Inf"} 3`,
		`fsr_publish_latency_seconds_count{node="3"} 3`,
		`fsr_view_info{node="3",epoch="4",leader="2"} 1`,
		`fsr_wal_snapshot_age_seconds{node="3"} 3`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("node exposition missing %q\n%s", want, doc)
		}
	}
}

func TestEdgeExpositionLint(t *testing.T) {
	var b bytes.Buffer
	if err := WriteEdgeMetrics(&b, 9, sampleEdgeMetrics()); err != nil {
		t.Fatal(err)
	}
	doc := b.String()
	lintExposition(t, doc, "edge")
	for _, want := range []string{
		`fsr_edge_tail_connected{edge="9"} 1`,
		`fsr_edge_tail_lag_seconds{edge="9"} 0.12`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("edge exposition missing %q\n%s", want, doc)
		}
	}
}

// TestServeEndpoints exercises the HTTP surface: content type, probe
// semantics, and the 200→503→200 readiness transition an orchestrator
// keys off.
func TestServeEndpoints(t *testing.T) {
	var mu sync.Mutex
	var readyErr, healthErr error
	srv, err := Serve(Config{
		Addr:    "127.0.0.1:0",
		Metrics: func(w io.Writer) error { return WriteNodeMetrics(w, 0, sampleNodeMetrics()) },
		Ready:   func() error { mu.Lock(); defer mu.Unlock(); return readyErr },
		Health:  func() error { mu.Lock(); defer mu.Unlock(); return healthErr },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (int, string, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b), resp.Header.Get("Content-Type")
	}

	code, body, ct := get("/metrics")
	if code != http.StatusOK || ct != ContentType {
		t.Fatalf("/metrics = %d %q", code, ct)
	}
	if !strings.Contains(body, "fsr_view_epoch") {
		t.Fatalf("/metrics body missing families:\n%s", body)
	}
	if code, body, _ := get("/readyz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/readyz = %d %q, want 200 ok", code, body)
	}
	if code, _, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}

	mu.Lock()
	readyErr = fmt.Errorf("fsr: catching up on missed history")
	mu.Unlock()
	if code, body, _ := get("/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "catching up") {
		t.Fatalf("/readyz while not ready = %d %q, want 503 with reason", code, body)
	}
	if code, _, _ := get("/healthz"); code != http.StatusOK {
		t.Fatal("liveness must not follow readiness down")
	}
	mu.Lock()
	readyErr = nil
	mu.Unlock()
	if code, _, _ := get("/readyz"); code != http.StatusOK {
		t.Fatal("/readyz did not recover")
	}

	if code, _, _ := get("/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", code)
	}
	resp, err := http.Post("http://"+srv.Addr()+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", resp.StatusCode)
	}
}

// TestScrapeUnderLoad runs a live cluster under figure-7-style sustained
// broadcast load while several goroutines scrape every member's /metrics
// over HTTP — the exporter must race cleanly with the event loop (the
// snapshot channel) and never emit a malformed document.
func TestScrapeUnderLoad(t *testing.T) {
	cluster, err := fsr.NewCluster(fsr.ClusterConfig{N: 3, T: 1}, fsr.MemTransport(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	servers := make([]*Server, 3)
	for i := range servers {
		node := cluster.Node(i)
		srv, err := Serve(Config{
			Addr: "127.0.0.1:0",
			Metrics: func(w io.Writer) error {
				return WriteNodeMetrics(w, uint32(node.Self()), node.Metrics())
			},
			Ready:  node.Ready,
			Health: node.Err,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		servers[i] = srv
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	// Load: every member broadcasts as fast as the ring admits.
	for i := range 3 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := cluster.Node(i)
			for j := 0; ctx.Err() == nil; j++ {
				if _, err := node.Broadcast(ctx, fmt.Appendf(nil, "n%d-m%d", i, j)); err != nil {
					return
				}
			}
		}()
	}
	// Drain deliveries so the load loop is not throttled by full channels.
	for i := range 3 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case _, ok := <-cluster.Node(i).Messages():
					if !ok {
						return
					}
				}
			}
		}()
	}

	// Scrape: two workers per member, hammering /metrics and /readyz.
	var scrapes int
	var smu sync.Mutex
	for _, srv := range servers {
		for range 2 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					resp, err := http.Get("http://" + srv.Addr() + "/metrics")
					if err != nil {
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("scrape = %d", resp.StatusCode)
						return
					}
					if !bytes.Contains(body, []byte("fsr_delivered_total")) {
						t.Errorf("malformed scrape:\n%s", body)
						return
					}
					smu.Lock()
					scrapes++
					smu.Unlock()
				}
			}()
		}
	}

	time.Sleep(2 * time.Second)
	cancel()
	wg.Wait()
	smu.Lock()
	defer smu.Unlock()
	if scrapes == 0 {
		t.Fatal("no successful scrapes under load")
	}
	t.Logf("%d scrapes completed under load", scrapes)
}
