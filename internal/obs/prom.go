// Package obs is the operator-facing observability surface of the FSR
// stack: a hand-rolled Prometheus text-format exporter over the public
// Metrics snapshots, plus a tiny HTTP endpoint serving /metrics, /healthz
// and /readyz for members and edges alike.
//
// The exporter is deliberately dependency-free — the repo vendors nothing —
// and deliberately pull-based: a scrape calls Node.Metrics()/Edge.Metrics(),
// which snapshot coherently off the frame hot path (the node assembles its
// snapshot on the event loop; the scrape only formats it). Nothing in this
// package runs unless an operator asked for a listener, and nothing here
// adds a single allocation to the frame path.
package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ContentType is the Prometheus text exposition format version this
// package writes.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Writer emits Prometheus text-format metric families. Families must be
// written one at a time (HELP/TYPE header, then samples); the per-metric
// helpers below write a whole single-series family at once, which is all
// this exporter needs.
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter wraps w for metric emission.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first underlying write error.
func (p *Writer) Err() error { return p.err }

func (p *Writer) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// labels formats a {k="v",...} block from alternating key/value pairs, or
// "" when none are given.
func labels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (p *Writer) family(typ, name, help, lbl, value string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n%s%s %s\n", name, escapeHelp(help), name, typ, name, lbl, value)
}

// Counter writes one cumulative counter family. kv are alternating label
// key/value pairs.
func (p *Writer) Counter(name, help string, v uint64, kv ...string) {
	p.family("counter", name, help, labels(kv), strconv.FormatUint(v, 10))
}

// Gauge writes one gauge family.
func (p *Writer) Gauge(name, help string, v float64, kv ...string) {
	p.family("gauge", name, help, labels(kv), fmtFloat(v))
}

// GaugeBool writes a 0/1 gauge family.
func (p *Writer) GaugeBool(name, help string, v bool, kv ...string) {
	val := "0"
	if v {
		val = "1"
	}
	p.family("gauge", name, help, labels(kv), val)
}

// Histogram writes one cumulative histogram family in seconds: bounds are
// the bucket upper bounds, counts[i] the (already cumulative) count of
// samples <= bounds[i], and count includes the implicit +Inf bucket. kv
// are alternating label key/value pairs shared by every series; the bucket
// series add le to them.
func (p *Writer) Histogram(name, help string, bounds []time.Duration, counts []uint64, sum time.Duration, count uint64, kv ...string) {
	lbl := labels(kv)
	p.printf("# HELP %s %s\n# TYPE %s histogram\n", name, escapeHelp(help), name)
	for i, le := range bounds {
		p.printf("%s_bucket%s %d\n", name, labels(append(kv, "le", fmtFloat(le.Seconds()))), counts[i])
	}
	p.printf("%s_bucket%s %d\n", name, labels(append(kv, "le", "+Inf")), count)
	p.printf("%s_sum%s %s\n", name, lbl, fmtFloat(sum.Seconds()))
	p.printf("%s_count%s %d\n", name, lbl, count)
}
