package obs

import (
	"io"
	"strconv"

	"fsr"
	"fsr/edge"
)

// WriteNodeMetrics renders one member's Metrics snapshot as Prometheus
// text. self is the member's process ID; every series carries it as the
// "node" label, and the view series carry the epoch/leader pair.
func WriteNodeMetrics(w io.Writer, self uint32, m fsr.Metrics) error {
	p := NewWriter(w)
	node := strconv.FormatUint(uint64(self), 10)
	epoch := strconv.FormatUint(m.View.ID, 10)
	leader := ""
	if len(m.View.Members) > 0 {
		leader = strconv.FormatUint(uint64(m.View.Members[0]), 10)
	}

	p.Gauge("fsr_view_epoch", "Installed membership view epoch.", float64(m.View.ID), "node", node)
	p.Gauge("fsr_view_info", "Installed view identity; value is always 1.", 1,
		"node", node, "epoch", epoch, "leader", leader)
	p.Gauge("fsr_view_members", "Member count of the installed view.", float64(len(m.View.Members)), "node", node)
	p.GaugeBool("fsr_is_leader", "Whether this member is the fixed sequencer.", m.IsLeader, "node", node)

	p.Counter("fsr_frames_in_total", "Protocol frames received from ring neighbors.", m.FramesIn, "node", node)
	p.Counter("fsr_frames_out_total", "Protocol frames sent to ring neighbors.", m.FramesOut, "node", node)
	p.Counter("fsr_data_in_total", "Data segments received.", m.DataIn, "node", node)
	p.Counter("fsr_acks_in_total", "Acknowledgment items received.", m.AcksIn, "node", node)
	p.Counter("fsr_sequenced_total", "Segments this member assigned a sequence number to.", m.Sequenced, "node", node)
	p.Counter("fsr_delivered_total", "Segments TO-delivered.", m.Delivered, "node", node)
	p.Counter("fsr_stale_frames_total", "Frames dropped on a view-epoch mismatch.", m.StaleFrames, "node", node)
	p.Counter("fsr_relayed_data_total", "Data segments relayed for other members.", m.RelayedData, "node", node)
	p.Counter("fsr_own_sent_total", "This member's own data segments sent.", m.OwnSent, "node", node)
	p.Counter("fsr_fairness_skips_total", "Relay items sent ahead of own traffic by the fairness rule.", m.FairnessSkips, "node", node)
	p.Counter("fsr_standalone_acks_total", "Frames carrying only acknowledgments.", m.StandaloneAcks, "node", node)
	p.Counter("fsr_multiseg_frames_total", "Outbound frames batching more than one data segment.", m.MultiSegFrames, "node", node)
	p.Counter("fsr_skipped_version_total", "Payloads dropped for an incompatible wire protocol version.", m.SkippedVersion, "node", node)
	p.Counter("fsr_skipped_unknown_total", "Payloads of an unknown channel kind or control type skipped.", m.SkippedUnknown, "node", node)

	p.Gauge("fsr_relay_queue_depth", "Relay queue depth.", float64(m.RelayQueue), "node", node)
	p.Gauge("fsr_own_queue_depth", "Own-message queue depth.", float64(m.OwnQueue), "node", node)
	p.Gauge("fsr_ack_queue_depth", "Acknowledgment queue depth.", float64(m.AckQueue), "node", node)
	p.Gauge("fsr_pending_receipts", "Own broadcasts accepted but not yet uniformly delivered.", float64(m.PendingReceipts), "node", node)
	p.Gauge("fsr_applied_seq", "Highest sequence number persisted and applied.", float64(m.Applied), "node", node)
	p.GaugeBool("fsr_catching_up", "Whether the member is fetching missed history.", m.CatchingUp, "node", node)

	p.Counter("fsr_session_publishes_total", "Client publishes committed through this member.", m.SessionPublishes, "node", node)
	p.Counter("fsr_session_duplicates_total", "Duplicate client publishes filtered out of the order.", m.SessionDuplicates, "node", node)
	p.Counter("fsr_session_bounded_total", "Client publishes dropped by the per-client in-flight bound.", m.SessionBounded, "node", node)
	p.Gauge("fsr_session_subscribers", "Remote subscriptions currently served.", float64(m.SessionSubscribers), "node", node)
	p.Gauge("fsr_tail_attached", "Subscriptions fed by the shared encode-once tail.", float64(m.TailAttached), "node", node)
	p.Counter("fsr_tail_frames_total", "Encode-once fan-out frames published.", m.TailFrames, "node", node)
	p.Counter("fsr_tail_detaches_total", "Slow subscribers demoted from the shared tail.", m.TailDetaches, "node", node)
	p.Gauge("fsr_edge_clients", "Connected links announced as edge replicas.", float64(m.EdgeClients), "node", node)

	p.Gauge("fsr_wal_segments", "Durable-log segment files retained.", float64(m.WAL.Segments), "node", node)
	p.Gauge("fsr_wal_bytes", "Durable-log bytes retained.", float64(m.WAL.Bytes), "node", node)
	p.Counter("fsr_wal_appends_total", "Entries appended to the durable log.", m.WAL.Appends, "node", node)
	p.Counter("fsr_wal_fsyncs_total", "Durable-log fsync calls.", m.WAL.Fsyncs, "node", node)
	p.Counter("fsr_wal_rotations_total", "Durable-log segment rotations.", m.WAL.Rotations, "node", node)
	p.Counter("fsr_wal_snapshots_total", "State-machine snapshots written this incarnation.", m.WAL.Snapshots, "node", node)
	p.Gauge("fsr_wal_snapshot_seq", "Sequence number the latest snapshot covers.", float64(m.WAL.SnapshotSeq), "node", node)
	p.Gauge("fsr_wal_snapshot_age_seconds", "Seconds since the latest snapshot was written.", m.WAL.SnapshotAge.Seconds(), "node", node)
	p.Counter("fsr_wal_repairs_total", "Torn tails truncated during recovery.", m.WAL.Repairs, "node", node)
	p.GaugeBool("fsr_wal_poisoned", "Whether a storage failure froze the durable log (member fail-stops).", m.WAL.Poisoned, "node", node)

	p.Histogram("fsr_publish_latency_seconds",
		"Session Publish accept-to-acknowledgment latency.",
		fsr.LatencyBuckets, m.PublishLatency.Buckets[:], m.PublishLatency.Sum, m.PublishLatency.Count,
		"node", node)
	return p.Err()
}

// WriteEdgeMetrics renders one edge replica's Metrics snapshot as
// Prometheus text; every series carries the edge's client-space ID as the
// "edge" label.
func WriteEdgeMetrics(w io.Writer, self uint32, m edge.Metrics) error {
	p := NewWriter(w)
	id := strconv.FormatUint(uint64(self), 10)

	p.Gauge("fsr_edge_applied_seq", "Highest offset replicated from upstream.", float64(m.Applied), "edge", id)
	p.Gauge("fsr_edge_store_base_seq", "Store horizon; offsets at or below it are not held as entries.", float64(m.StoreBase), "edge", id)
	p.Gauge("fsr_edge_store_entries", "Entries held in the replica tail.", float64(m.StoreEntries), "edge", id)
	p.Gauge("fsr_edge_snapshot_seq", "Offset the held application snapshot covers.", float64(m.SnapshotSeq), "edge", id)
	p.GaugeBool("fsr_edge_tail_connected", "Whether the upstream tail has spoken at least once.", m.TailConnected, "edge", id)
	p.Gauge("fsr_edge_tail_lag_seconds", "Seconds since the upstream tail last spoke.", m.TailLag.Seconds(), "edge", id)

	p.Gauge("fsr_edge_serving_clients", "Connected subscriber links.", float64(m.Clients), "edge", id)
	p.Gauge("fsr_edge_subscribers", "Live subscriptions served.", float64(m.Subs), "edge", id)
	p.Gauge("fsr_edge_tail_attached", "Subscriptions fed by the shared encode-once tail.", float64(m.TailAttached), "edge", id)
	p.Counter("fsr_edge_tail_frames_total", "Encode-once fan-out frames published.", m.TailFrames, "edge", id)
	p.Counter("fsr_edge_tail_detaches_total", "Slow subscribers demoted from the shared tail.", m.TailDetaches, "edge", id)
	p.Counter("fsr_edge_not_writable_total", "Publishes bounced to the members with a redirect.", m.NotWritable, "edge", id)

	p.Gauge("fsr_edge_wal_segments", "Durable-store segment files retained.", float64(m.WAL.Segments), "edge", id)
	p.Gauge("fsr_edge_wal_bytes", "Durable-store bytes retained.", float64(m.WAL.Bytes), "edge", id)
	p.Counter("fsr_edge_wal_appends_total", "Entries appended to the durable store.", m.WAL.Appends, "edge", id)
	p.Counter("fsr_edge_wal_fsyncs_total", "Durable-store fsync calls.", m.WAL.Fsyncs, "edge", id)
	p.Counter("fsr_edge_wal_rotations_total", "Durable-store segment rotations.", m.WAL.Rotations, "edge", id)
	p.Counter("fsr_edge_wal_snapshots_total", "Replicated snapshots persisted this incarnation.", m.WAL.Snapshots, "edge", id)
	p.Gauge("fsr_edge_wal_snapshot_seq", "Offset the latest persisted snapshot covers.", float64(m.WAL.SnapshotSeq), "edge", id)
	p.Gauge("fsr_edge_wal_snapshot_age_seconds", "Seconds since the latest snapshot was persisted.", m.WAL.SnapshotAge.Seconds(), "edge", id)
	p.Counter("fsr_edge_wal_repairs_total", "Torn tails truncated during recovery.", m.WAL.Repairs, "edge", id)
	p.GaugeBool("fsr_edge_wal_poisoned", "Whether a storage failure froze the durable store.", m.WAL.Poisoned, "edge", id)
	return p.Err()
}
