package obs

import (
	"strings"
	"testing"
	"time"
)

// TestWriterGolden pins the exact text the Writer emits for each family
// kind — the exposition format is a wire contract with the scraper, so a
// formatting drift is a real break, not a cosmetic one.
func TestWriterGolden(t *testing.T) {
	var b strings.Builder
	p := NewWriter(&b)
	p.Counter("x_frames_total", "Frames seen.", 42, "node", "3")
	p.Gauge("x_depth", "Queue depth.", 7, "node", "3")
	p.GaugeBool("x_leader", "Leader flag.", true, "node", "3")
	p.Gauge("x_free", "No labels.", 0.5)
	p.Counter("x_escaped_total", `Back\slash and`+"\nnewline.", 1, "lbl", `q"uo\te`+"\nline")
	p.Histogram("x_lat_seconds", "Latency.",
		[]time.Duration{time.Millisecond, time.Second},
		[]uint64{2, 5}, 1500*time.Millisecond, 6, "node", "3")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP x_frames_total Frames seen.
# TYPE x_frames_total counter
x_frames_total{node="3"} 42
# HELP x_depth Queue depth.
# TYPE x_depth gauge
x_depth{node="3"} 7
# HELP x_leader Leader flag.
# TYPE x_leader gauge
x_leader{node="3"} 1
# HELP x_free No labels.
# TYPE x_free gauge
x_free 0.5
# HELP x_escaped_total Back\\slash and\nnewline.
# TYPE x_escaped_total counter
x_escaped_total{lbl="q\"uo\\te\nline"} 1
# HELP x_lat_seconds Latency.
# TYPE x_lat_seconds histogram
x_lat_seconds_bucket{node="3",le="0.001"} 2
x_lat_seconds_bucket{node="3",le="1"} 5
x_lat_seconds_bucket{node="3",le="+Inf"} 6
x_lat_seconds_sum{node="3"} 1.5
x_lat_seconds_count{node="3"} 6
`
	if got := b.String(); got != want {
		t.Errorf("writer output drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
