// Package netsim is the discrete-event model of the paper's testbed: a
// cluster of homogeneous machines on a fully switched 100 Mbit/s Ethernet.
// It stands in for the Itanium cluster of Section 5 (see DESIGN.md,
// "Substitutions").
//
// Physical model, matching the paper's Section 3 assumptions:
//
//   - Fully switched: every directed pair is a separate collision domain,
//     so transmissions never interfere across links.
//   - Full duplex: a node's transmit and receive paths are independent.
//   - Store and forward: a frame arrives at the receiver one wire time
//     plus PropDelay after its transmission starts.
//   - Processing cost: the testbed machines are dual-processor, so each
//     node is modeled with two serial pipelines. The network CPU charges
//     RxFixed + wireBytes*RxPerByte per received frame before the engine
//     reacts (forwarding path). The delivery CPU charges DeliverFixed +
//     payloadBytes*DeliverPerByte per TO-delivered segment — the full
//     middleware upcall: deserialize, order, copy to the application.
//     Delivery dominates, and every process TO-delivers every segment
//     exactly once, so the saturated throughput it induces is independent
//     of both the ring size n and the sender count k — precisely the
//     paper's Figures 8 and 9. The calibrated delivery constants
//     reproduce the gap between raw Ethernet goodput (~94 Mb/s, Table 1)
//     and FSR's measured 79 Mb/s — the paper's own gap comes from the
//     per-message cost of its Java/DREAM stack (DESIGN.md §4).
//
// FSR rides a ring, so each node receives from exactly one predecessor;
// receive-side link contention therefore never occurs and is not modeled.
package netsim

import (
	"fmt"
	"time"

	"fsr/internal/core"
	"fsr/internal/ring"
	"fsr/internal/sim"
	"fsr/internal/wire"
)

// Defaults modeling the paper's testbed.
const (
	// DefaultBandwidth is Fast Ethernet: 100 Mbit/s.
	DefaultBandwidth = 100e6
	// DefaultPropDelay covers wire plus one switch hop.
	DefaultPropDelay = 30 * time.Microsecond
	// DefaultFrameOverhead is the physical per-frame cost in bytes beyond
	// the FSR payload: Ethernet header+FCS (18) + preamble (8) + interframe
	// gap (12) + IP (20) + UDP (8) and a little framing slack.
	DefaultFrameOverhead = 74
	// DefaultRxFixed is the fixed cost of receiving one frame (interrupt,
	// syscall, dispatch).
	DefaultRxFixed = 30 * time.Microsecond
	// DefaultRxPerByte is the per-byte receive cost (copy out of the
	// socket).
	DefaultRxPerByte = 10 * time.Nanosecond
	// DefaultDeliverFixed is the fixed cost of TO-delivering one segment
	// (ordering bookkeeping, upcall into the application layer).
	DefaultDeliverFixed = 40 * time.Microsecond
	// DefaultDeliverPerByte is the per-byte delivery cost ((de)serialization
	// and copying in the middleware stack — the dominant cost in the
	// paper's Java/DREAM implementation). Together with DefaultDeliverFixed
	// it is calibrated so a saturated ring delivers ~79 Mb/s of payload
	// with 8 KiB segments — the paper's headline number, and the single
	// tuned quantity in the whole reproduction (DESIGN.md §4). Because
	// every process TO-delivers every segment exactly once, a delivery-
	// dominated CPU makes the saturated throughput independent of both the
	// ring size n and the sender count k — precisely the paper's Figures 8
	// and 9.
	DefaultDeliverPerByte = 96 * time.Nanosecond
)

// Config parameterizes the simulated cluster.
type Config struct {
	// Bandwidth is the link speed in bits per second.
	Bandwidth float64
	// PropDelay is the one-way propagation (wire + switch) delay.
	PropDelay time.Duration
	// RxFixed is the fixed per-received-frame processing cost.
	RxFixed time.Duration
	// RxPerByte is the per-wire-byte receive processing cost.
	RxPerByte time.Duration
	// DeliverFixed is the fixed per-delivered-segment cost.
	DeliverFixed time.Duration
	// DeliverPerByte is the per-payload-byte delivery cost.
	DeliverPerByte time.Duration
	// FrameOverhead is added to every frame's encoded size on the wire.
	FrameOverhead int
	// SegmentSize configures the engines' segmentation.
	SegmentSize int
	// MaxFrameData configures the engines' per-frame segment batching.
	// The default of 1 models the paper's stack, which sent exactly one
	// segment per frame; the modern profile raises it so per-frame costs
	// (RxFixed, FrameOverhead) amortize across a batch.
	MaxFrameData int
	// T is the number of tolerated failures (backup processes).
	T int
}

func (c Config) withDefaults() Config {
	if c.Bandwidth <= 0 {
		c.Bandwidth = DefaultBandwidth
	}
	if c.PropDelay <= 0 {
		c.PropDelay = DefaultPropDelay
	}
	if c.RxFixed <= 0 {
		c.RxFixed = DefaultRxFixed
	}
	if c.RxPerByte <= 0 {
		c.RxPerByte = DefaultRxPerByte
	}
	if c.DeliverFixed <= 0 {
		c.DeliverFixed = DefaultDeliverFixed
	}
	if c.DeliverPerByte <= 0 {
		c.DeliverPerByte = DefaultDeliverPerByte
	}
	if c.FrameOverhead <= 0 {
		c.FrameOverhead = DefaultFrameOverhead
	}
	if c.SegmentSize <= 0 {
		c.SegmentSize = core.DefaultSegmentSize
	}
	if c.MaxFrameData <= 0 {
		c.MaxFrameData = 1
	}
	return c
}

// Modern testbed constants: the same protocol on hardware and software we
// actually have. The link steps up to gigabit Ethernet, and the per-segment
// middleware costs are re-measured against this repository's Go stack after
// the hot-path overhaul (pooled zero-alloc codec, batched frames, reused
// delivery buffers) instead of the paper's Java/DREAM stack:
// BenchmarkEngineRelayHotPath clocks the full per-hop pipeline — decode,
// protocol handling, batched frame assembly, encode — at ~0.5 µs and
// 0 allocs per 8 KiB segment, and the delivery pump adds a bounded
// dispatch cost per segment. The constants below round those measurements
// up generously (5 µs fixed + 2 ns/byte per delivered segment) so the
// model stays pessimistic about the software while the receive path keeps
// the paper's kernel costs (30 µs per frame + 10 ns per wire byte) — with
// 16-segment frames those amortize to ~2 µs and the receive copy becomes
// the bottleneck the simulation reports.
const (
	// ModernBandwidth is gigabit Ethernet.
	ModernBandwidth = 1e9
	// ModernMaxFrameData is the frame batching depth of the modern stack.
	ModernMaxFrameData = 16
	// ModernDeliverFixed is the measured-and-rounded fixed cost of
	// TO-delivering one segment through the overhauled Go stack.
	ModernDeliverFixed = 5 * time.Microsecond
	// ModernDeliverPerByte is the per-byte delivery cost of the zero-copy
	// path (bodies alias the receive buffer; one copy into the app).
	ModernDeliverPerByte = 2 * time.Nanosecond
)

// ModernConfig models the overhauled stack on gigabit hardware. The paper
// figures keep the zero-value Config (paper calibration); Figure 7x runs
// this one.
func ModernConfig() Config {
	return Config{
		Bandwidth:      ModernBandwidth,
		MaxFrameData:   ModernMaxFrameData,
		DeliverFixed:   ModernDeliverFixed,
		DeliverPerByte: ModernDeliverPerByte,
	}
}

// Cluster is a simulated FSR ring: n protocol engines wired through the
// timed network model onto one event loop.
type Cluster struct {
	Loop *sim.Loop
	cfg  Config

	nodes []*Node
	// OnDeliver, when set, observes every TO-delivery (node ring position,
	// delivery, virtual time).
	OnDeliver func(pos int, d core.Delivery, now time.Duration)
	err       error
}

// Node is one simulated machine: two serial CPU pipelines (network
// receive path, delivery upcall path) plus the transmitter.
type Node struct {
	c           *Cluster
	pos         int
	engine      *core.Engine
	sending     bool
	cpuFree     time.Duration // network CPU: receive processing
	deliverFree time.Duration // delivery CPU: TO-delivery upcalls
}

// NewCluster builds an n-node simulated ring (IDs 0..n-1, leader 0).
func NewCluster(n int, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if n <= 0 {
		return nil, fmt.Errorf("netsim: cluster size %d", n)
	}
	members := make([]ring.ProcID, n)
	for i := range members {
		members[i] = ring.ProcID(i)
	}
	r, err := ring.New(members, min(cfg.T, n-1))
	if err != nil {
		return nil, err
	}
	view := core.View{ID: 1, Ring: r}
	c := &Cluster{Loop: &sim.Loop{}, cfg: cfg}
	for i := range members {
		engine, err := core.NewEngine(core.Config{
			Self:         members[i],
			SegmentSize:  cfg.SegmentSize,
			MaxFrameData: cfg.MaxFrameData,
		}, view)
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, &Node{c: c, pos: i, engine: engine})
	}
	return c, nil
}

// N returns the cluster size.
func (c *Cluster) N() int { return len(c.nodes) }

// Node returns the node at ring position pos.
func (c *Cluster) Node(pos int) *Node { return c.nodes[pos] }

// Engine exposes a node's protocol engine (for stats in tests).
func (c *Cluster) Engine(pos int) *core.Engine { return c.nodes[pos].engine }

// Err returns the first protocol error raised inside the simulation.
func (c *Cluster) Err() error { return c.err }

// Broadcast submits a payload at the node at ring position pos, at the
// current virtual time.
func (c *Cluster) Broadcast(pos int, payload []byte) (wire.MsgID, error) {
	id, err := c.nodes[pos].engine.Broadcast(payload)
	if err != nil {
		return id, err
	}
	c.nodes[pos].drainDeliveries() // single-node rings deliver inline
	c.nodes[pos].trySend()
	return id, nil
}

// PendingOwn reports how many own segments a node still has queued.
func (c *Cluster) PendingOwn(pos int) int { return c.nodes[pos].engine.PendingOwn() }

// Run drives the simulation until quiescence or the virtual-time horizon.
func (c *Cluster) Run(until time.Duration) { c.Loop.Run(until) }

// wireBytes returns a frame's size on the wire.
func (c *Cluster) wireBytes(encodedSize int) int { return encodedSize + c.cfg.FrameOverhead }

// txTime returns the wire occupancy of a frame.
func (c *Cluster) txTime(wireBytes int) time.Duration {
	return time.Duration(float64(wireBytes) * 8 / c.cfg.Bandwidth * float64(time.Second))
}

// rxCPU returns the protocol-CPU cost of receiving a frame.
func (c *Cluster) rxCPU(wireBytes int) time.Duration {
	return c.cfg.RxFixed + time.Duration(wireBytes)*c.cfg.RxPerByte
}

// deliverCPU returns the protocol-CPU cost of TO-delivering a segment.
func (c *Cluster) deliverCPU(payloadBytes int) time.Duration {
	return c.cfg.DeliverFixed + time.Duration(payloadBytes)*c.cfg.DeliverPerByte
}

// trySend starts transmitting the node's next frame if the transmitter is
// idle and the engine has output.
func (n *Node) trySend() {
	if n.sending || n.c.err != nil {
		return
	}
	f, ok := n.engine.NextFrame()
	if !ok {
		return
	}
	n.drainDeliveries() // a leader's own send may deliver at t=0
	wire := n.c.wireBytes(f.EncodedSize())
	now := n.c.Loop.Now()
	tx := n.c.txTime(wire)
	n.sending = true
	succ := n.c.nodes[(n.pos+1)%len(n.c.nodes)]
	loop := n.c.Loop
	loop.At(now+tx, func() {
		n.sending = false
		n.trySend()
	})
	loop.At(now+tx+n.c.cfg.PropDelay, func() {
		succ.receive(f)
	})
}

// receive runs the frame through the node's serial protocol CPU, then the
// engine.
func (n *Node) receive(f *wire.Frame) {
	loop := n.c.Loop
	start := max(loop.Now(), n.cpuFree)
	done := start + n.c.rxCPU(n.c.wireBytes(f.EncodedSize()))
	n.cpuFree = done
	loop.At(done, func() {
		if n.c.err != nil {
			return
		}
		if err := n.engine.HandleFrame(f); err != nil {
			n.c.err = fmt.Errorf("netsim: node %d: %w", n.pos, err)
			return
		}
		n.drainDeliveries()
		n.trySend()
	})
}

// drainDeliveries routes fresh engine deliveries through the node's
// delivery CPU: each TO-delivery is a full middleware upcall (deserialize,
// order, copy to the application) and is reported — and counted by the
// benchmarks — only when that pipeline completes it.
func (n *Node) drainDeliveries() {
	ds := n.engine.Deliveries()
	if len(ds) == 0 {
		return
	}
	now := n.c.Loop.Now()
	for _, d := range ds {
		d := d
		done := max(n.deliverFree, now) + n.c.deliverCPU(len(d.Body))
		n.deliverFree = done
		n.c.Loop.At(done, func() {
			if n.c.OnDeliver != nil {
				n.c.OnDeliver(n.pos, d, done)
			}
		})
	}
}

// RawGoodput simulates a netperf-style unidirectional stream over one link
// of the modeled network: back-to-back frames of mssPayload bytes with
// perFrameOverhead wire bytes each, for the given duration. It returns the
// application goodput in bits per second — the Table 1 experiment.
func RawGoodput(bandwidth float64, mssPayload, perFrameOverhead int, duration time.Duration) float64 {
	var loop sim.Loop
	frameTime := time.Duration(float64(mssPayload+perFrameOverhead) * 8 / bandwidth * float64(time.Second))
	var received int
	var send func()
	send = func() {
		if loop.Now()+frameTime > duration {
			return
		}
		loop.After(frameTime, func() {
			received += mssPayload
			send()
		})
	}
	send()
	loop.Run(duration)
	elapsed := loop.Now()
	if elapsed <= 0 {
		return 0
	}
	return float64(received) * 8 / elapsed.Seconds()
}

// Framing constants for the Table 1 raw-network experiment.
const (
	// TCPSegmentPayload is the MSS with timestamps on 1500-byte MTU.
	TCPSegmentPayload = 1448
	// TCPFrameOverhead is TCP(20)+options(12)+IP(20)+Ethernet(18)+
	// preamble(8)+IFG(12).
	TCPFrameOverhead = 90
	// UDPDatagramPayload fills the MTU: 1500 - 20 (IP) - 8 (UDP).
	UDPDatagramPayload = 1472
	// UDPFrameOverhead is UDP(8)+IP(20)+Ethernet(18)+preamble(8)+IFG(12).
	UDPFrameOverhead = 66
)
