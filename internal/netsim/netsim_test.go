package netsim

import (
	"testing"
	"time"

	"fsr/internal/core"
)

func TestSingleBroadcastDeliversEverywhere(t *testing.T) {
	c, err := NewCluster(5, Config{T: 1})
	if err != nil {
		t.Fatal(err)
	}
	delivered := map[int]int{}
	c.OnDeliver = func(pos int, d core.Delivery, now time.Duration) {
		delivered[pos]++
	}
	payload := make([]byte, 1000)
	if _, err := c.Broadcast(2, payload); err != nil {
		t.Fatal(err)
	}
	c.Run(0)
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	for pos := range 5 {
		if delivered[pos] != 1 {
			t.Errorf("pos %d delivered %d times", pos, delivered[pos])
		}
	}
}

func TestLatencyScalesLinearlyWithHops(t *testing.T) {
	// Contention-free latency of one small message should grow linearly in
	// the number of processes — the simulated Figure 6 shape.
	var lat []time.Duration
	for _, n := range []int{2, 4, 6, 8, 10} {
		c, err := NewCluster(n, Config{T: 1})
		if err != nil {
			t.Fatal(err)
		}
		var last time.Duration
		c.OnDeliver = func(pos int, d core.Delivery, now time.Duration) {
			last = max(last, now)
		}
		if _, err := c.Broadcast(1, make([]byte, 1000)); err != nil {
			t.Fatal(err)
		}
		c.Run(0)
		if c.Err() != nil {
			t.Fatal(c.Err())
		}
		lat = append(lat, last)
	}
	for i := 1; i < len(lat); i++ {
		if lat[i] <= lat[i-1] {
			t.Fatalf("latency not increasing: %v", lat)
		}
	}
	// Linearity: the increment per 2 extra processes stays within 2x of
	// the first increment.
	d0 := lat[1] - lat[0]
	for i := 2; i < len(lat); i++ {
		d := lat[i] - lat[i-1]
		if d > 2*d0 || d0 > 2*d {
			t.Fatalf("increments not roughly constant: %v", lat)
		}
	}
}

func TestSaturatedRingReaches79Mbps(t *testing.T) {
	// The calibration target: a saturated 5-node ring delivers ~79 Mb/s of
	// application payload at every process (paper Figure 8).
	c, err := NewCluster(5, Config{T: 1})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100*1024)
	var bytesAt0 int
	const warmup = 500 * time.Millisecond
	c.OnDeliver = func(pos int, d core.Delivery, now time.Duration) {
		if pos == 0 && now > warmup {
			bytesAt0 += len(d.Body)
		}
		// Closed-loop saturating source: keep every sender topped up.
		if d.Part == uint32(d.Parts-1) {
			for s := range 5 {
				if c.PendingOwn(s) < 4 {
					if _, err := c.Broadcast(s, payload); err != nil {
						t.Error(err)
					}
				}
			}
		}
	}
	for s := range 5 {
		if _, err := c.Broadcast(s, payload); err != nil {
			t.Fatal(err)
		}
	}
	const horizon = 3 * time.Second
	c.Run(horizon)
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	mbps := float64(bytesAt0) * 8 / (horizon - warmup).Seconds() / 1e6
	if mbps < 74 || mbps > 84 {
		t.Fatalf("saturated throughput = %.1f Mb/s, want ~79", mbps)
	}
}

func TestThroughputIndependentOfSenderCount(t *testing.T) {
	// Figure 9 shape: k senders, k = 1 and k = 5, same aggregate rate.
	rate := func(k int) float64 {
		c, err := NewCluster(5, Config{T: 1})
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 100*1024)
		var bytes int
		const warmup = 500 * time.Millisecond
		c.OnDeliver = func(pos int, d core.Delivery, now time.Duration) {
			if pos == 4 && now > warmup {
				bytes += len(d.Body)
			}
			if d.Part == uint32(d.Parts-1) {
				for s := range k {
					if c.PendingOwn(s) < 4 {
						if _, err := c.Broadcast(s, payload); err != nil {
							t.Error(err)
						}
					}
				}
			}
		}
		for s := range k {
			if _, err := c.Broadcast(s, payload); err != nil {
				t.Fatal(err)
			}
		}
		const horizon = 2 * time.Second
		c.Run(horizon)
		if c.Err() != nil {
			t.Fatal(c.Err())
		}
		return float64(bytes) * 8 / (horizon - warmup).Seconds() / 1e6
	}
	r1, r5 := rate(1), rate(5)
	if r1 < 70 || r5 < 70 {
		t.Fatalf("rates too low: k=1 %.1f, k=5 %.1f", r1, r5)
	}
	if diff := r1 - r5; diff > 8 || diff < -8 {
		t.Fatalf("throughput depends on k: k=1 %.1f vs k=5 %.1f Mb/s", r1, r5)
	}
}

func TestRawGoodputMatchesTable1(t *testing.T) {
	tcp := RawGoodput(DefaultBandwidth, TCPSegmentPayload, TCPFrameOverhead, time.Second) / 1e6
	udp := RawGoodput(DefaultBandwidth, UDPDatagramPayload, UDPFrameOverhead, time.Second) / 1e6
	if tcp < 92 || tcp > 96 {
		t.Errorf("TCP goodput %.1f Mb/s, want ~94 (Table 1)", tcp)
	}
	if udp < 92 || udp > 97 {
		t.Errorf("UDP goodput %.1f Mb/s, want ~93-96 (Table 1)", udp)
	}
	if udp <= tcp {
		t.Errorf("UDP (%.1f) should exceed TCP (%.1f): less header overhead", udp, tcp)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, Config{}); err == nil {
		t.Error("zero-size cluster accepted")
	}
	if c, err := NewCluster(1, Config{}); err != nil || c.N() != 1 {
		t.Errorf("singleton cluster: %v", err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Bandwidth != DefaultBandwidth || cfg.RxFixed != DefaultRxFixed || cfg.DeliverPerByte != DefaultDeliverPerByte {
		t.Errorf("defaults: %+v", cfg)
	}
}
