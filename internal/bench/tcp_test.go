package bench

import (
	"testing"
	"time"
)

// TestFigure7TCPSmoke: the loopback-TCP experiment must run and deliver a
// sane non-zero rate (short horizons; the committed BENCH numbers use the
// full ones).
func TestFigure7TCPSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP bench smoke")
	}
	mbps, err := tcpSaturatedThroughput(1, 800*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if mbps <= 0 {
		t.Fatalf("no throughput measured: %v Mb/s", mbps)
	}
	cm, err := tcpClientThroughput(800 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if cm <= 0 {
		t.Fatalf("no client throughput measured: %v Mb/s", cm)
	}
	t.Logf("member k=1: %.1f Mb/s; client: %.1f Mb/s", mbps, cm)
}
