package bench

import (
	"testing"
	"time"
)

func TestTable1(t *testing.T) {
	s := Table1()
	if len(s.Points) != 2 {
		t.Fatalf("points: %v", s.Points)
	}
	tcp, udp := s.Points[0].Y, s.Points[1].Y
	if tcp < 92 || tcp > 96 {
		t.Errorf("TCP goodput %.1f, want ~94 (paper Table 1)", tcp)
	}
	if udp < 92 || udp > 97 {
		t.Errorf("UDP goodput %.1f, want ~93-96 (paper Table 1)", udp)
	}
}

func TestFigure6Linear(t *testing.T) {
	s, err := Figure6([]int{2, 4, 6, 8, 10})
	if err != nil {
		t.Fatal(err)
	}
	// Shape: strictly increasing, roughly constant increments (linear).
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y <= s.Points[i-1].Y {
			t.Fatalf("latency not increasing: %+v", s.Points)
		}
	}
	d0 := s.Points[1].Y - s.Points[0].Y
	for i := 2; i < len(s.Points); i++ {
		d := s.Points[i].Y - s.Points[i-1].Y
		if d > 2*d0 || d0 > 2*d {
			t.Fatalf("latency increments not linear: %+v", s.Points)
		}
	}
}

func TestFigure7Knee(t *testing.T) {
	s, err := Figure7([]float64{20, 60, 95})
	if err != nil {
		t.Fatal(err)
	}
	low, mid, over := s.Points[0], s.Points[1], s.Points[2]
	// Below saturation latency stays in the same ballpark; past the knee
	// it blows up (queueing) while achieved throughput caps near 79.
	if mid.Y > 4*low.Y {
		t.Errorf("latency not flat below saturation: %.2fms @%.0f vs %.2fms @%.0f",
			low.Y, low.X, mid.Y, mid.X)
	}
	if over.Y < 5*low.Y {
		t.Errorf("no queueing blow-up past saturation: %.2fms vs %.2fms", low.Y, over.Y)
	}
	if over.X < 70 || over.X > 86 {
		t.Errorf("achieved throughput past saturation = %.1f Mb/s, want ~79", over.X)
	}
}

// TestFigure7XSaturation guards the overhaul's headline: on the modern
// testbed model the batched zero-alloc stack must saturate at no less than
// twice the pre-overhaul 79 Mb/s ceiling recorded in
// BENCH_2026-07-27_pr3.json, with the same flat-then-blow-up shape.
func TestFigure7XSaturation(t *testing.T) {
	s, err := Figure7X([]float64{200, 800})
	if err != nil {
		t.Fatal(err)
	}
	low, over := s.Points[0], s.Points[1]
	if low.X < 190 || low.X > 210 {
		t.Errorf("below saturation achieved %.1f Mb/s for 200 offered", low.X)
	}
	if over.X < 2*79 {
		t.Errorf("saturation goodput %.1f Mb/s, want >= %.0f (2x the pre-overhaul ceiling)", over.X, 2*79.0)
	}
	if over.Y < 5*low.Y {
		t.Errorf("no queueing blow-up past saturation: %.2fms vs %.2fms", low.Y, over.Y)
	}
}

func TestFigure8Flat79(t *testing.T) {
	s, err := Figure8([]int{2, 5, 8, 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.Y < 73 || p.Y > 85 {
			t.Errorf("%s: throughput %.1f Mb/s, want ~79 (paper Figure 8)", p.Label, p.Y)
		}
	}
	// Independence from n: spread bounded.
	lo, hi := s.Points[0].Y, s.Points[0].Y
	for _, p := range s.Points {
		lo, hi = min(lo, p.Y), max(hi, p.Y)
	}
	if hi-lo > 8 {
		t.Errorf("throughput varies with n by %.1f Mb/s: %+v", hi-lo, s.Points)
	}
}

func TestFigure9FlatInSenders(t *testing.T) {
	s, err := Figure9([]int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := s.Points[0].Y, s.Points[0].Y
	for _, p := range s.Points {
		if p.Y < 72 || p.Y > 86 {
			t.Errorf("%s: throughput %.1f Mb/s, want ~79 (paper Figure 9)", p.Label, p.Y)
		}
		lo, hi = min(lo, p.Y), max(hi, p.Y)
	}
	if hi-lo > 9 {
		t.Errorf("throughput varies with k by %.1f Mb/s: %+v", hi-lo, s.Points)
	}
}

func TestClassesFSRWins(t *testing.T) {
	s, err := Classes(6, 3, 80)
	if err != nil {
		t.Fatal(err)
	}
	var fsrY float64
	for _, p := range s.Points {
		if p.Label == "fsr" {
			fsrY = p.Y
		}
	}
	if fsrY < 0.9 {
		t.Fatalf("FSR round-model throughput %.3f, want ~1", fsrY)
	}
	for _, p := range s.Points {
		if p.Label != "fsr" && p.Y > fsrY*1.02 {
			t.Errorf("%s (%.3f) beats FSR (%.3f)", p.Label, p.Y, fsrY)
		}
	}
}

func TestPrivilegeTradeoffSeries(t *testing.T) {
	s, err := PrivilegeTradeoff(8, 120)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for _, p := range s.Points {
		byLabel[p.Label] = p.Y
	}
	if byLabel["privilege-fair(q=1)"] > 0.6 {
		t.Errorf("fair privilege should collapse: %.3f", byLabel["privilege-fair(q=1)"])
	}
	if byLabel["fsr"] < 0.95 {
		t.Errorf("FSR should stay at ~1: %.3f", byLabel["fsr"])
	}
}

func TestLatencyFormulaSeries(t *testing.T) {
	const n, tol = 6, 2
	s, err := LatencyFormula(n, tol)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range s.Points {
		want := 2*n + tol - i - 1
		if i == 0 {
			want = n + tol - 1
		}
		if int(p.Y) != want {
			t.Errorf("L(%d) = %.0f rounds, want %d", i, p.Y, want)
		}
	}
}

func TestThrottledRunSanity(t *testing.T) {
	mbps, lat, err := throttledRun(5, 30e6, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if mbps < 24 || mbps > 36 {
		t.Errorf("achieved %.1f Mb/s for 30 offered", mbps)
	}
	if lat <= 0 || lat > 500*time.Millisecond {
		t.Errorf("latency %v out of range", lat)
	}
}
