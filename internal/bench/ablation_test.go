package bench

import (
	"testing"

	"fsr/internal/core"
)

// TestAblationSegmentSizeMonotone: throughput grows with segment size (the
// fixed per-frame cost amortizes), and the default 8 KiB sits at the
// calibrated ~79 Mb/s.
func TestAblationSegmentSizeMonotone(t *testing.T) {
	s, err := AblationSegmentSize([]int{1024, 4096, 8192})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y <= s.Points[i-1].Y {
			t.Fatalf("throughput not increasing with segment size: %+v", s.Points)
		}
	}
	last := s.Points[len(s.Points)-1]
	if last.Y < 73 || last.Y > 85 {
		t.Errorf("8 KiB segment throughput %.1f, want ~79", last.Y)
	}
}

// TestAblationSegmentationStall: the §4.1 claim. Without segmentation a
// 1 MB bulk stream must inflate sporadic small-message latency severely;
// with uniform 8 KiB segments the small messages interleave.
func TestAblationSegmentationStall(t *testing.T) {
	s, err := AblationSegmentationStall()
	if err != nil {
		t.Fatal(err)
	}
	var segmented, unsegmented float64
	for _, p := range s.Points {
		switch p.Label {
		case "segmented":
			segmented = p.Y
		case "unsegmented":
			unsegmented = p.Y
		}
	}
	if segmented <= 0 || unsegmented <= 0 {
		t.Fatalf("missing points: %+v", s.Points)
	}
	if unsegmented < 3*segmented {
		t.Errorf("segmentation should cut small-message latency by >=3x under bulk load: segmented %.1fms vs unsegmented %.1fms",
			segmented, unsegmented)
	}
	_ = core.DefaultSegmentSize
}
