package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fsr"
	"fsr/client"
	"fsr/edge"
	"fsr/internal/metrics"
)

const (
	fanBenchN       = 3
	fanBenchHorizon = 2 * time.Second
	// fanBenchPayload is a typical feed-style message: small enough that
	// fan-out cost is dominated by per-message serving work (encode,
	// queueing, wakeups), not raw bandwidth.
	fanBenchPayload = 1 << 10
	fanBenchWindow  = 256
)

// Figure7Fan measures subscriber fan-out: one pipelined publisher floods a
// 3-member loopback TCP cluster while S independent client sessions stream
// the live tail, and the series reports the aggregate payload rate
// delivered across all subscribers. Each count is measured twice — the
// subscribers dialing a ring member directly, then dialing a read-only
// edge replica that itself holds ONE upstream subscription — so the two
// curves show what the edge tier buys: the member's serving cost stays
// that of a single subscriber no matter how wide the edge fans out, and
// the encode-once tail keeps aggregate delivery scaling with S on both.
func Figure7Fan(subCounts []int) (*metrics.Series, error) {
	s := &metrics.Series{
		Name: fmt.Sprintf("Figure 7fan: subscriber fan-out over loopback TCP (n=%d, %d B payloads)",
			fanBenchN, fanBenchPayload),
		XLabel: "subscribers",
		YLabel: "aggregate delivered (Mb/s)",
	}
	for _, viaEdge := range []bool{false, true} {
		mode := "member-direct"
		if viaEdge {
			mode = "via-edge"
		}
		for _, n := range subCounts {
			mbps, err := fanThroughput(n, viaEdge, fanBenchHorizon)
			if err != nil {
				return nil, fmt.Errorf("%s S=%d: %w", mode, n, err)
			}
			s.Add(float64(n), mbps, fmt.Sprintf("%s S=%d", mode, n))
		}
	}
	return s, nil
}

// fanThroughput runs one fan-out point: a publisher saturating the ring
// with fanBenchWindow in-flight publishes, nSubs live-tail subscribers
// dialing either member 0 or an edge replica replicating from the ring.
func fanThroughput(nSubs int, viaEdge bool, horizon time.Duration) (float64, error) {
	cluster, ct, err := tcpBenchCluster(fanBenchN)
	if err != nil {
		return 0, err
	}
	defer cluster.Stop()

	subAddr := ct.Addrs()[0]
	if viaEdge {
		e, err := edge.New(edge.Config{Listen: "127.0.0.1:0", Members: ct.Addrs()})
		if err != nil {
			return 0, err
		}
		defer e.Stop()
		subAddr = e.Addr()
	}

	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	var bytes atomic.Int64
	var counting atomic.Bool
	var subs sync.WaitGroup
	sessions := make([]fsr.Session, 0, nSubs)
	defer func() {
		for _, s := range sessions {
			_ = s.Close()
		}
	}()
	for range nSubs {
		sess, err := client.Dial(client.Config{Addrs: []string{subAddr}})
		if err != nil {
			return 0, err
		}
		sessions = append(sessions, sess)
		subs.Add(1)
		go func(sess fsr.Session) {
			defer subs.Done()
			// From 0: the live tail from the serving process's frontier —
			// steady-state fan-out, no history replay.
			for _, m := range sess.Subscribe(ctx, 0) {
				if counting.Load() {
					bytes.Add(int64(len(m.Payload)))
				}
			}
		}(sess)
	}

	pub, err := client.Dial(client.Config{Addrs: ct.Addrs(), Window: fanBenchWindow})
	if err != nil {
		return 0, err
	}
	defer pub.Close()
	payload := make([]byte, fanBenchPayload)
	var pubWg sync.WaitGroup
	pubWg.Add(1)
	go func() {
		defer pubWg.Done()
		inflight := make(chan *fsr.Receipt, fanBenchWindow)
		var drain sync.WaitGroup
		drain.Add(1)
		go func() {
			defer drain.Done()
			for r := range inflight {
				<-r.Delivered()
			}
		}()
		for ctx.Err() == nil {
			r, err := pub.Publish(ctx, payload)
			if err != nil {
				break
			}
			inflight <- r
		}
		close(inflight)
		drain.Wait()
	}()

	warmup := horizon / 4
	time.Sleep(warmup)
	counting.Store(true)
	start := time.Now()
	time.Sleep(horizon - warmup)
	counting.Store(false)
	elapsed := time.Since(start)
	stop()
	pubWg.Wait()
	subs.Wait()
	return float64(bytes.Load()) * 8 / elapsed.Seconds() / 1e6, nil
}
