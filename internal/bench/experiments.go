// Package bench regenerates every table and figure of the paper's
// evaluation (Section 5) plus the Section 2 protocol-class comparison, on
// the simulated cluster (internal/netsim) and the round model
// (internal/model). Each experiment returns a metrics.Series whose rows
// correspond to the points the paper plots; EXPERIMENTS.md records the
// side-by-side numbers.
package bench

import (
	"fmt"
	"time"

	"fsr/internal/core"
	"fsr/internal/metrics"
	"fsr/internal/model"
	"fsr/internal/netsim"
	"fsr/internal/wire"
)

// MessageSize is the paper's benchmark payload: 100 KB application
// messages (§5.1).
const MessageSize = 100 * 1024

// Table1 measures raw point-to-point goodput of the simulated 100 Mb/s
// link under netperf-style TCP and UDP streaming — the paper's Table 1
// (TCP 94 Mb/s, UDP 93 Mb/s).
func Table1() *metrics.Series {
	s := &metrics.Series{Name: "Table 1: raw network performance (Netperf)",
		XLabel: "MSS (bytes)", YLabel: "goodput (Mb/s)"}
	tcp := netsim.RawGoodput(netsim.DefaultBandwidth, netsim.TCPSegmentPayload,
		netsim.TCPFrameOverhead, time.Second)
	udp := netsim.RawGoodput(netsim.DefaultBandwidth, netsim.UDPDatagramPayload,
		netsim.UDPFrameOverhead, time.Second)
	s.Add(netsim.TCPSegmentPayload, tcp/1e6, "TCP")
	s.Add(netsim.UDPDatagramPayload, udp/1e6, "UDP")
	return s
}

// singleMessageLatency runs one 100 KB broadcast from `sender` on an
// otherwise idle n-process ring and returns the time until the last
// process delivers the last segment.
func singleMessageLatency(n, t, sender int, size int) (time.Duration, error) {
	c, err := netsim.NewCluster(n, netsim.Config{T: t})
	if err != nil {
		return 0, err
	}
	var last time.Duration
	c.OnDeliver = func(pos int, d core.Delivery, now time.Duration) {
		if now > last {
			last = now
		}
	}
	if _, err := c.Broadcast(sender, make([]byte, size)); err != nil {
		return 0, err
	}
	c.Run(0)
	if c.Err() != nil {
		return 0, c.Err()
	}
	return last, nil
}

// Figure6 reproduces "latency as a function of the number of processes":
// contention-free 100 KB broadcasts, n = 2..10, latency averaged over the
// sender's ring position (the paper averages the latencies observed at
// each sender). Expected shape: linear in n.
func Figure6(ns []int) (*metrics.Series, error) {
	s := &metrics.Series{Name: "Figure 6: latency vs number of processes",
		XLabel: "processes", YLabel: "latency (ms)"}
	for _, n := range ns {
		var total time.Duration
		for sender := 0; sender < n; sender++ {
			lat, err := singleMessageLatency(n, 1, sender, MessageSize)
			if err != nil {
				return nil, err
			}
			total += lat
		}
		avg := total / time.Duration(n)
		s.Add(float64(n), float64(avg.Microseconds())/1000, fmt.Sprintf("n=%d", n))
	}
	return s, nil
}

// throttledRun drives an n-to-n workload where each sender offers
// aggregate/n bits per second of 100 KB messages for the given horizon.
// It returns the achieved delivered throughput (Mb/s, at the last ring
// position) and the mean completion latency of the messages that finished.
func throttledRun(n int, aggregate float64, horizon time.Duration) (float64, time.Duration, error) {
	return throttledRunCfg(n, netsim.Config{T: 1}, aggregate, horizon)
}

// throttledRunCfg is throttledRun on an explicit cluster model (paper
// calibration vs the modern profile).
func throttledRunCfg(n int, cfg netsim.Config, aggregate float64, horizon time.Duration) (float64, time.Duration, error) {
	c, err := netsim.NewCluster(n, cfg)
	if err != nil {
		return 0, 0, err
	}
	type key struct {
		origin wire.MsgID
	}
	sentAt := make(map[key]time.Duration)
	remaining := make(map[key]int) // deliveries of the final segment left
	var latencies []time.Duration
	var bytes int
	warmup := horizon / 4
	c.OnDeliver = func(pos int, d core.Delivery, now time.Duration) {
		if pos == n-1 && now > warmup {
			bytes += len(d.Body)
		}
		if d.Part != d.Parts-1 {
			return
		}
		k := key{origin: wire.MsgID{Origin: d.ID.Origin, Local: d.ID.Local - uint64(d.Part)}}
		if _, ok := sentAt[k]; !ok {
			return
		}
		remaining[k]--
		if remaining[k] == 0 {
			latencies = append(latencies, now-sentAt[k])
			delete(remaining, k)
			delete(sentAt, k)
		}
	}
	perSender := aggregate / float64(n)
	interval := time.Duration(float64(MessageSize*8) / perSender * float64(time.Second))
	payload := make([]byte, MessageSize)
	for sender := 0; sender < n; sender++ {
		sender := sender
		var send func()
		send = func() {
			if c.Loop.Now() >= horizon {
				return
			}
			id, err := c.Broadcast(sender, payload)
			if err != nil {
				return
			}
			sentAt[key{origin: id}] = c.Loop.Now()
			remaining[key{origin: id}] = n
			c.Loop.After(interval, send)
		}
		// Stagger starts so senders do not phase-lock.
		c.Loop.At(time.Duration(sender)*interval/time.Duration(n), send)
	}
	c.Run(horizon)
	if c.Err() != nil {
		return 0, 0, c.Err()
	}
	mbps := float64(bytes) * 8 / (horizon - warmup).Seconds() / 1e6
	return mbps, metrics.Summarize(latencies).Mean, nil
}

// Figure7 reproduces "latency as a function of the throughput": 5
// processes, n-to-n 100 KB broadcasts, senders throttled to a sweep of
// offered loads. Expected shape: flat latency until the ~79 Mb/s
// saturation point, then a sharp queueing blow-up.
func Figure7(offeredMbps []float64) (*metrics.Series, error) {
	s := &metrics.Series{Name: "Figure 7: latency vs throughput (n=5)",
		XLabel: "throughput (Mb/s)", YLabel: "latency (ms)"}
	for _, load := range offeredMbps {
		mbps, lat, err := throttledRun(5, load*1e6, 4*time.Second)
		if err != nil {
			return nil, err
		}
		s.Add(mbps, float64(lat.Microseconds())/1000, fmt.Sprintf("offered=%.0f", load))
	}
	return s, nil
}

// Figure7X is the Figure 7 sweep on the modern testbed model (gigabit
// link, netsim.ModernConfig): same protocol, same workload shape, but the
// per-segment middleware costs re-measured against this repository's
// overhauled Go hot path (multi-segment frames, pooled zero-alloc codec,
// batched delivery) instead of the paper's 2006 Java/DREAM stack. On this
// model the pre-overhaul stack still saturates at the paper's ~79 Mb/s —
// its calibrated per-segment delivery cost, not the wire, is the ceiling,
// which is exactly what BENCH_2026-07-27_pr3.json recorded — while the
// batched stack pushes the knee to where the receive path maxes out.
func Figure7X(offeredMbps []float64) (*metrics.Series, error) {
	s := &metrics.Series{Name: "Figure 7x: latency vs throughput, overhauled hot path (n=5, 1 Gb/s)",
		XLabel: "throughput (Mb/s)", YLabel: "latency (ms)"}
	for _, load := range offeredMbps {
		mbps, lat, err := throttledRunCfg(5, netsim.ModernConfig(), load*1e6, 4*time.Second)
		if err != nil {
			return nil, err
		}
		s.Add(mbps, float64(lat.Microseconds())/1000, fmt.Sprintf("offered=%.0f", load))
	}
	return s, nil
}

// saturatedThroughput measures delivered payload rate with k saturating
// senders on an n-process ring: a periodic source keeps every sender's
// own-queue topped up, so the ring runs at capacity and the delivered
// rate is pinned by the per-node delivery pipeline.
func saturatedThroughput(n, k int, horizon time.Duration) (float64, error) {
	c, err := netsim.NewCluster(n, netsim.Config{T: 1})
	if err != nil {
		return 0, err
	}
	payload := make([]byte, MessageSize)
	warmup := horizon / 4
	var bytes int
	c.OnDeliver = func(pos int, d core.Delivery, now time.Duration) {
		if pos == n-1 && now > warmup {
			bytes += len(d.Body)
		}
	}
	SaturateSenders(c, SaturationSenders(n, k), payload)
	c.Run(horizon)
	if c.Err() != nil {
		return 0, c.Err()
	}
	return float64(bytes) * 8 / (horizon - warmup).Seconds() / 1e6, nil
}

// SaturationSenders picks the sender positions for a k-to-n saturation
// run: every position when k = n, otherwise positions 1..k. The leader is
// excluded from partial sender sets because its broadcasts skip pass A and
// are paced only by the wire, so a saturating leader can overdrive the
// ring and starve the other origins' pass-A progress — a regime the
// paper's round model (one send per process per round) cannot enter, and
// for which the paper's own remedy is leader rotation (§4.3.1).
// EXPERIMENTS.md discusses the effect.
func SaturationSenders(n, k int) []int {
	out := make([]int, k)
	for i := range out {
		if k == n {
			out[i] = i
		} else {
			out[i] = 1 + i
		}
	}
	return out
}

// SaturateSenders installs a periodic source at each listed ring position
// that keeps its engine's own-queue topped up.
func SaturateSenders(c *netsim.Cluster, senders []int, payload []byte) {
	const topUpEvery = 2 * time.Millisecond
	for _, s := range senders {
		s := s
		var top func()
		top = func() {
			for c.PendingOwn(s) < 8 {
				if _, err := c.Broadcast(s, payload); err != nil {
					return
				}
			}
			c.Loop.After(topUpEvery, top)
		}
		top()
	}
}

// Figure8 reproduces "throughput as a function of the number of
// processes": n-to-n saturating 100 KB broadcasts, n = 2..10. Expected
// shape: flat at ~79 Mb/s, independent of n.
func Figure8(ns []int) (*metrics.Series, error) {
	s := &metrics.Series{Name: "Figure 8: throughput vs number of processes",
		XLabel: "processes", YLabel: "throughput (Mb/s)"}
	for _, n := range ns {
		mbps, err := saturatedThroughput(n, n, 3*time.Second)
		if err != nil {
			return nil, err
		}
		s.Add(float64(n), mbps, fmt.Sprintf("n=%d", n))
	}
	return s, nil
}

// Figure9 reproduces "throughput as a function of the number of senders":
// k-to-5 saturating 100 KB broadcasts, k = 1..5. Expected shape: flat at
// ~79 Mb/s, independent of k.
func Figure9(ks []int) (*metrics.Series, error) {
	s := &metrics.Series{Name: "Figure 9: throughput vs number of senders (n=5)",
		XLabel: "senders", YLabel: "throughput (Mb/s)"}
	for _, k := range ks {
		mbps, err := saturatedThroughput(5, k, 3*time.Second)
		if err != nil {
			return nil, err
		}
		s.Add(float64(k), mbps, fmt.Sprintf("k=%d", k))
	}
	return s, nil
}

// Classes reproduces the Section 2 comparison (Figures 1-3 made
// quantitative): round-model throughput of every protocol class on the
// k-to-n pattern. FSR is the only class that reaches one completed
// broadcast per round on every pattern.
func Classes(n, k, perSender int) (*metrics.Series, error) {
	s := &metrics.Series{Name: fmt.Sprintf("Protocol classes: %d-to-%d round-model throughput", k, n),
		XLabel: "class#", YLabel: "broadcasts/round"}
	for i, p := range model.Protocols() {
		res, err := model.Run(p.Name, p.New(n), n, model.SenderSet(k), perSender, 50_000_000)
		if err != nil {
			return nil, err
		}
		s.Add(float64(i), res.Throughput, p.Name)
	}
	return s, nil
}

// PrivilegeTradeoff quantifies the §2.3 fairness/throughput trade-off that
// FSR eliminates: two senders half a ring apart, fair (quantum 1) and
// unfair (unbounded quantum) privilege vs FSR.
func PrivilegeTradeoff(n, perSender int) (*metrics.Series, error) {
	s := &metrics.Series{Name: fmt.Sprintf("Privilege trade-off: 2 opposite senders, n=%d", n),
		XLabel: "variant#", YLabel: "broadcasts/round"}
	senders := model.OppositeSenders(n)
	runs := []struct {
		label string
		sys   model.System
	}{
		{"privilege-fair(q=1)", model.NewPrivilegeQuantum(n, 1)},
		{"privilege-unfair(q=inf)", model.NewPrivilegeQuantum(n, 0)},
		{"fsr", model.NewFSR(n, 1)},
	}
	for i, r := range runs {
		res, err := model.Run(r.label, r.sys, n, senders, perSender, 50_000_000)
		if err != nil {
			return nil, err
		}
		s.Add(float64(i), res.Throughput, r.label)
	}
	return s, nil
}

// LatencyFormula tabulates §4.3.1's L(i) = 2n + t - i - 1 as measured on
// the round model against the closed form.
func LatencyFormula(n, t int) (*metrics.Series, error) {
	s := &metrics.Series{Name: fmt.Sprintf("Latency formula L(i)=2n+t-i-1 (n=%d t=%d)", n, t),
		XLabel: "sender position", YLabel: "rounds"}
	for i := 0; i < n; i++ {
		sys := model.NewFSR(n, t)
		res, err := model.Run("fsr", sys, n, []int{i}, 1, 100000)
		if err != nil {
			return nil, err
		}
		s.Add(float64(i), float64(res.Rounds), fmt.Sprintf("i=%d", i))
	}
	return s, nil
}
