package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fsr"
	"fsr/client"
	"fsr/internal/metrics"
)

// Figure7TCP is the hardware counterpart of the simulated Figure 7x sweep:
// saturated end-to-end throughput over real loopback TCP sockets. An
// n-member cluster runs in one process, each member on its own TCP
// endpoint (identical wire traffic to n separate processes); k members
// flood pipelined 8 KiB broadcasts and the series reports the payload rate
// TO-delivered at the last follower. A final point measures the same flood
// issued by a remote client.Dial session (PUBLISH/PUBACK over the wire,
// window-pipelined) — the non-member path this repository's Session API
// adds.
func Figure7TCP(ks []int) (*metrics.Series, error) {
	s := &metrics.Series{
		Name:   fmt.Sprintf("Figure 7tcp: saturated throughput over loopback TCP (n=%d, %d B payloads)", tcpBenchN, tcpBenchPayload),
		XLabel: "concurrent senders",
		YLabel: "delivered (Mb/s)",
	}
	for _, k := range ks {
		mbps, err := tcpSaturatedThroughput(k, tcpBenchHorizon)
		if err != nil {
			return nil, err
		}
		s.Add(float64(k), mbps, fmt.Sprintf("k=%d members", k))
	}
	mbps, err := tcpClientThroughput(tcpBenchHorizon)
	if err != nil {
		return nil, err
	}
	s.Add(1, mbps, "k=1 remote client session")
	return s, nil
}

const (
	tcpBenchN       = 5
	tcpBenchHorizon = 3 * time.Second
	// tcpBenchPayload matches the modern (figure7x) regime: one 8 KiB
	// segment per message, the shape the batched hot path is built for.
	tcpBenchPayload = 8 << 10
	// tcpBenchWindow bounds each sender's in-flight broadcasts, mirroring
	// a pipelined producer.
	tcpBenchWindow = 256
)

// tcpBenchCluster builds the n-member loopback cluster every TCP
// measurement runs on. The failure timeout is raised well above the
// default: a fully saturated event loop delays heartbeats by tens of
// milliseconds, and this experiment measures steady-state throughput, not
// recovery churn (the chaos harness owns that).
func tcpBenchCluster(n int) (*fsr.Cluster, *fsr.TCPClusterTransport, error) {
	ct := fsr.TCPTransport(nil)
	cluster, err := fsr.NewCluster(fsr.ClusterConfig{
		N: n, T: 1,
		NodeConfig: fsr.Config{
			HeartbeatInterval: 50 * time.Millisecond,
			FailureTimeout:    3 * time.Second,
			ChangeTimeout:     3 * time.Second,
		},
	}, ct)
	if err != nil {
		return nil, nil, err
	}
	return cluster, ct, nil
}

// tcpSaturatedThroughput floods from k non-leader members and counts
// payload bytes delivered at the last member. Warmup is a quarter of the
// horizon.
func tcpSaturatedThroughput(k int, horizon time.Duration) (float64, error) {
	cluster, _, err := tcpBenchCluster(tcpBenchN)
	if err != nil {
		return 0, err
	}
	defer cluster.Stop()

	var bytes atomic.Int64
	var counting atomic.Bool
	cancel := cluster.Node(tcpBenchN - 1).Subscribe(func(m fsr.Message) {
		if counting.Load() {
			bytes.Add(int64(len(m.Payload)))
		}
	})
	defer cancel()

	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	payload := make([]byte, tcpBenchPayload)
	var wg sync.WaitGroup
	for i := range k {
		// Skip the leader, as in the simulated saturation runs: its sends
		// skip pass A and can overdrive the ring (§4.3.1).
		node := cluster.Node(1 + i%(tcpBenchN-1))
		wg.Add(1)
		go func(nd *fsr.Node) {
			defer wg.Done()
			inflight := make(chan *fsr.Receipt, tcpBenchWindow)
			var drain sync.WaitGroup
			drain.Add(1)
			go func() {
				defer drain.Done()
				for r := range inflight {
					<-r.Delivered()
				}
			}()
			for ctx.Err() == nil {
				r, err := nd.Broadcast(ctx, payload)
				if err != nil {
					break
				}
				inflight <- r
			}
			close(inflight)
			drain.Wait()
		}(node)
	}
	warmup := horizon / 4
	time.Sleep(warmup)
	counting.Store(true)
	start := time.Now()
	time.Sleep(horizon - warmup)
	counting.Store(false)
	elapsed := time.Since(start)
	stop()
	wg.Wait()
	return float64(bytes.Load()) * 8 / elapsed.Seconds() / 1e6, nil
}

// tcpClientThroughput floods from one remote client session (client.Dial
// over loopback TCP) and counts committed (acked) payload bytes.
func tcpClientThroughput(horizon time.Duration) (float64, error) {
	cluster, ct, err := tcpBenchCluster(tcpBenchN)
	if err != nil {
		return 0, err
	}
	defer cluster.Stop()
	sess, err := client.Dial(client.Config{Addrs: ct.Addrs(), Window: tcpBenchWindow})
	if err != nil {
		return 0, err
	}
	defer sess.Close()

	var bytes atomic.Int64
	var counting atomic.Bool
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	payload := make([]byte, tcpBenchPayload)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		inflight := make(chan *fsr.Receipt, tcpBenchWindow)
		var drain sync.WaitGroup
		drain.Add(1)
		go func() {
			defer drain.Done()
			for r := range inflight {
				<-r.Delivered()
				if counting.Load() {
					bytes.Add(int64(len(payload)))
				}
			}
		}()
		for ctx.Err() == nil {
			r, err := sess.Publish(ctx, payload)
			if err != nil {
				break
			}
			inflight <- r
		}
		close(inflight)
		drain.Wait()
	}()
	warmup := horizon / 4
	time.Sleep(warmup)
	counting.Store(true)
	start := time.Now()
	time.Sleep(horizon - warmup)
	counting.Store(false)
	elapsed := time.Since(start)
	stop()
	wg.Wait()
	return float64(bytes.Load()) * 8 / elapsed.Seconds() / 1e6, nil
}
