// Ablations for the design choices the paper calls out: segment size
// (§4.1: "uniform message size is necessary in order to avoid that large
// messages stall the smaller messages") and the throughput effect of the
// per-frame overhead amortization that segmentation trades against.

package bench

import (
	"fmt"
	"time"

	"fsr/internal/core"
	"fsr/internal/metrics"
	"fsr/internal/netsim"
	"fsr/internal/wire"
)

// AblationSegmentSize measures saturated throughput as a function of the
// segment size: small segments waste per-frame fixed costs, large segments
// amortize them — the upward curve that motivates sizable (but uniform)
// segments.
func AblationSegmentSize(sizes []int) (*metrics.Series, error) {
	s := &metrics.Series{Name: "Ablation: saturated throughput vs segment size (n=5)",
		XLabel: "segment (bytes)", YLabel: "throughput (Mb/s)"}
	for _, size := range sizes {
		c, err := netsim.NewCluster(5, netsim.Config{T: 1, SegmentSize: size})
		if err != nil {
			return nil, err
		}
		const horizon = 3 * time.Second
		warmup := horizon / 4
		var bytes int
		c.OnDeliver = func(pos int, d core.Delivery, now time.Duration) {
			if pos == 4 && now > warmup {
				bytes += len(d.Body)
			}
		}
		SaturateSenders(c, SaturationSenders(5, 5), make([]byte, MessageSize))
		c.Run(horizon)
		if c.Err() != nil {
			return nil, c.Err()
		}
		mbps := float64(bytes) * 8 / (horizon - warmup).Seconds() / 1e6
		s.Add(float64(size), mbps, fmt.Sprintf("seg=%d", size))
	}
	return s, nil
}

// AblationSegmentationStall reproduces the §4.1 rationale directly: one
// process streams 1 MB messages while another sends sporadic 1 KB
// messages. With uniform 8 KiB segments the small messages interleave into
// the ring and keep a low latency; without segmentation (segment size >=
// message size) each giant frame stalls everything behind it.
func AblationSegmentationStall() (*metrics.Series, error) {
	s := &metrics.Series{Name: "Ablation: small-message latency vs segmentation (n=5)",
		XLabel: "segment (bytes)", YLabel: "small-msg latency (ms)"}
	const big = 1 << 20
	for _, segSize := range []int{core.DefaultSegmentSize, big} {
		lat, err := smallMessageLatencyUnderBulk(segSize, big)
		if err != nil {
			return nil, err
		}
		label := "segmented"
		if segSize >= big {
			label = "unsegmented"
		}
		s.Add(float64(segSize), float64(lat.Microseconds())/1000, label)
	}
	return s, nil
}

// smallMessageLatencyUnderBulk measures the mean completion latency of
// sporadic 1 KB broadcasts from one sender while another floods bulk
// messages of the given size.
func smallMessageLatencyUnderBulk(segSize, bulkSize int) (time.Duration, error) {
	c, err := netsim.NewCluster(5, netsim.Config{T: 1, SegmentSize: segSize})
	if err != nil {
		return 0, err
	}
	const horizon = 4 * time.Second
	bulk := make([]byte, bulkSize)
	small := make([]byte, 1024)

	type msgKey struct{ id wire.MsgID }
	sentAt := map[msgKey]time.Duration{}
	remaining := map[msgKey]int{}
	var latencies []time.Duration
	c.OnDeliver = func(pos int, d core.Delivery, now time.Duration) {
		if d.Part != d.Parts-1 {
			return
		}
		k := msgKey{id: wire.MsgID{Origin: d.ID.Origin, Local: d.ID.Local - uint64(d.Part)}}
		if _, ok := sentAt[k]; !ok {
			return
		}
		remaining[k]--
		if remaining[k] == 0 {
			latencies = append(latencies, now-sentAt[k])
			delete(sentAt, k)
			delete(remaining, k)
		}
	}
	// Bulk stream at position 1, throttled to ~60% of ring capacity so
	// queueing delay does not mask the head-of-line effect under test.
	var flood func()
	flood = func() {
		if c.Loop.Now() >= horizon {
			return
		}
		if _, err := c.Broadcast(1, bulk); err != nil {
			return
		}
		c.Loop.After(170*time.Millisecond, flood)
	}
	flood()
	// Sporadic small sender at position 3.
	var ping func()
	ping = func() {
		if c.Loop.Now() >= horizon-500*time.Millisecond {
			return
		}
		id, err := c.Broadcast(3, small)
		if err != nil {
			return
		}
		k := msgKey{id: id}
		sentAt[k] = c.Loop.Now()
		remaining[k] = 5
		c.Loop.After(100*time.Millisecond, ping)
	}
	c.Loop.At(200*time.Millisecond, ping)
	c.Run(horizon)
	if c.Err() != nil {
		return 0, c.Err()
	}
	if len(latencies) == 0 {
		return 0, fmt.Errorf("bench: no small messages completed (segSize=%d)", segSize)
	}
	return metrics.Summarize(latencies).Mean, nil
}
