// Package ring provides the ring-topology arithmetic used by the FSR
// protocol: member positions relative to the leader, successor/predecessor
// lookup, clockwise distances, and the acknowledgment hop budget derived in
// the paper's Section 4.
//
// A Ring is an immutable ordered list of process IDs. Position 0 is the
// leader (the fixed sequencer); positions 1..T are the backup processes;
// the rest are standard processes. All protocol traffic flows "clockwise",
// i.e. from position j to position (j+1) mod n.
package ring

import (
	"fmt"
	"slices"
)

// ProcID uniquely identifies a process in the group.
type ProcID uint32

// Ring is an immutable ring of processes. The zero value is an empty ring.
type Ring struct {
	members []ProcID
	pos     map[ProcID]int
	t       int // number of backup processes (tolerated failures)
}

// New builds a ring from an ordered member list. members[0] is the leader.
// t is the number of tolerated failures (and therefore backups); it must
// satisfy 0 <= t < len(members). The slice is copied.
func New(members []ProcID, t int) (*Ring, error) {
	n := len(members)
	if n == 0 {
		return nil, fmt.Errorf("ring: empty member list")
	}
	if t < 0 || t >= n {
		return nil, fmt.Errorf("ring: t=%d out of range [0,%d)", t, n)
	}
	pos := make(map[ProcID]int, n)
	for i, id := range members {
		if _, dup := pos[id]; dup {
			return nil, fmt.Errorf("ring: duplicate member %d", id)
		}
		pos[id] = i
	}
	return &Ring{members: slices.Clone(members), pos: pos, t: t}, nil
}

// MustNew is New but panics on invalid input. For tests and literals.
func MustNew(members []ProcID, t int) *Ring {
	r, err := New(members, t)
	if err != nil {
		panic(err)
	}
	return r
}

// N returns the number of processes in the ring.
func (r *Ring) N() int { return len(r.members) }

// T returns the number of tolerated failures (backup processes).
func (r *Ring) T() int { return r.t }

// Members returns a copy of the ordered member list.
func (r *Ring) Members() []ProcID { return slices.Clone(r.members) }

// Leader returns the fixed sequencer (position 0).
func (r *Ring) Leader() ProcID { return r.members[0] }

// Contains reports whether id is a member of the ring.
func (r *Ring) Contains(id ProcID) bool {
	_, ok := r.pos[id]
	return ok
}

// Position returns the ring position of id relative to the leader
// (leader = 0). The second result is false if id is not a member.
func (r *Ring) Position(id ProcID) (int, bool) {
	p, ok := r.pos[id]
	return p, ok
}

// At returns the process at ring position j (taken modulo n, negatives
// allowed).
func (r *Ring) At(j int) ProcID {
	n := len(r.members)
	j %= n
	if j < 0 {
		j += n
	}
	return r.members[j]
}

// Successor returns the clockwise neighbor of id, i.e. the only process id
// ever sends protocol messages to.
func (r *Ring) Successor(id ProcID) (ProcID, bool) {
	p, ok := r.pos[id]
	if !ok {
		return 0, false
	}
	return r.At(p + 1), true
}

// Predecessor returns the counter-clockwise neighbor of id.
func (r *Ring) Predecessor(id ProcID) (ProcID, bool) {
	p, ok := r.pos[id]
	if !ok {
		return 0, false
	}
	return r.At(p - 1), true
}

// Distance returns the number of clockwise hops needed to travel from
// position `from` to position `to` (both modulo n). Distance(x, x) == 0.
func (r *Ring) Distance(from, to int) int {
	n := len(r.members)
	d := (to - from) % n
	if d < 0 {
		d += n
	}
	return d
}

// IsBackup reports whether position j (0-based from the leader) denotes one
// of the t backup processes. The leader itself is not a backup.
func (r *Ring) IsBackup(j int) bool { return j >= 1 && j <= r.t }

// SeqStopPos returns the ring position at which pass B (the sequenced
// message emitted by the leader) stops for a broadcast originated at
// position s: the sender's predecessor. For a leader broadcast (s = 0) this
// is position n-1, i.e. pass B travels the whole ring.
func (r *Ring) SeqStopPos(s int) int {
	return r.Distance(0, s-1+len(r.members))
}

// AckHops returns the ack hop budget — the number of ack *receptions* that
// occur after the pass-B endpoint originates the acknowledgment — for a
// broadcast whose sender sits at position s. Derived in DESIGN.md §3 from
// the paper's two cases so that the ack terminates at p(t-1) after having
// passed pt, reproducing L(i) = 2n + t - i - 1 (and n + t - 1 for the
// leader):
//
//	s == 0: hops = t
//	s >= 1: hops = n + t - s
func (r *Ring) AckHops(s int) int {
	if s == 0 {
		return r.t
	}
	return len(r.members) + r.t - s
}

// AckStartsStable reports whether the ack for a broadcast from position s is
// already "stable" when originated at the pass-B endpoint p(s-1): true iff
// that endpoint's position is >= t, meaning the sequenced message has
// already transited the leader and all t backups.
func (r *Ring) AckStartsStable(s int) bool {
	return r.SeqStopPos(s) >= r.t
}

// Latency returns the analytical number of rounds from TO-broadcast at
// position s until the last process TO-delivers, in a contention-free run:
// the paper's L(i) = 2n + t - i - 1 for i in [1, n-1], and n + t - 1 for the
// leader (the paper's formula evaluated at i = n).
func (r *Ring) Latency(s int) int {
	n := len(r.members)
	if s == 0 {
		return n + r.t - 1
	}
	return 2*n + r.t - s - 1
}
