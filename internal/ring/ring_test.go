package ring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustRing(t *testing.T, n, tol int) *Ring {
	t.Helper()
	members := make([]ProcID, n)
	for i := range members {
		members[i] = ProcID(100 + i)
	}
	r, err := New(members, tol)
	if err != nil {
		t.Fatalf("New(n=%d,t=%d): %v", n, tol, err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := New([]ProcID{1, 2}, 2); err == nil {
		t.Error("t == n accepted")
	}
	if _, err := New([]ProcID{1, 2}, -1); err == nil {
		t.Error("negative t accepted")
	}
	if _, err := New([]ProcID{1, 2, 1}, 0); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := New([]ProcID{1}, 0); err != nil {
		t.Errorf("singleton ring rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on invalid input")
		}
	}()
	MustNew(nil, 0)
}

func TestBasicAccessors(t *testing.T) {
	r := mustRing(t, 5, 2)
	if r.N() != 5 || r.T() != 2 {
		t.Fatalf("N=%d T=%d, want 5, 2", r.N(), r.T())
	}
	if r.Leader() != 100 {
		t.Errorf("Leader = %d, want 100", r.Leader())
	}
	if !r.Contains(103) || r.Contains(99) {
		t.Error("Contains wrong")
	}
	if p, ok := r.Position(102); !ok || p != 2 {
		t.Errorf("Position(102) = %d,%v want 2,true", p, ok)
	}
	if _, ok := r.Position(1); ok {
		t.Error("Position of non-member reported ok")
	}
	got := r.Members()
	got[0] = 9999 // must not alias internal state
	if r.Leader() != 100 {
		t.Error("Members() aliases internal slice")
	}
}

func TestSuccessorPredecessor(t *testing.T) {
	r := mustRing(t, 4, 1)
	cases := []struct {
		id   ProcID
		succ ProcID
		pred ProcID
	}{
		{100, 101, 103},
		{101, 102, 100},
		{103, 100, 102},
	}
	for _, c := range cases {
		if s, ok := r.Successor(c.id); !ok || s != c.succ {
			t.Errorf("Successor(%d) = %d,%v want %d", c.id, s, ok, c.succ)
		}
		if p, ok := r.Predecessor(c.id); !ok || p != c.pred {
			t.Errorf("Predecessor(%d) = %d,%v want %d", c.id, p, ok, c.pred)
		}
	}
	if _, ok := r.Successor(55); ok {
		t.Error("Successor of non-member ok")
	}
	if _, ok := r.Predecessor(55); ok {
		t.Error("Predecessor of non-member ok")
	}
}

func TestAtModulo(t *testing.T) {
	r := mustRing(t, 3, 0)
	if r.At(3) != 100 || r.At(-1) != 102 || r.At(4) != 101 {
		t.Errorf("At modulo arithmetic wrong: At(3)=%d At(-1)=%d At(4)=%d",
			r.At(3), r.At(-1), r.At(4))
	}
}

func TestDistance(t *testing.T) {
	r := mustRing(t, 5, 1)
	if d := r.Distance(0, 0); d != 0 {
		t.Errorf("Distance(0,0)=%d", d)
	}
	if d := r.Distance(4, 0); d != 1 {
		t.Errorf("Distance(4,0)=%d want 1", d)
	}
	if d := r.Distance(1, 4); d != 3 {
		t.Errorf("Distance(1,4)=%d want 3", d)
	}
	if d := r.Distance(3, 2); d != 4 {
		t.Errorf("Distance(3,2)=%d want 4", d)
	}
}

func TestIsBackup(t *testing.T) {
	r := mustRing(t, 6, 2)
	want := map[int]bool{0: false, 1: true, 2: true, 3: false, 5: false}
	for j, w := range want {
		if got := r.IsBackup(j); got != w {
			t.Errorf("IsBackup(%d) = %v want %v", j, got, w)
		}
	}
}

func TestSeqStopPos(t *testing.T) {
	r := mustRing(t, 5, 1)
	// Sender at position s: pass B stops at s-1 mod n.
	for s := range 5 {
		want := (s - 1 + 5) % 5
		if got := r.SeqStopPos(s); got != want {
			t.Errorf("SeqStopPos(%d) = %d want %d", s, got, want)
		}
	}
}

// TestAckHopsPaperCases walks the worked examples from DESIGN.md §3 (derived
// from the paper's Section 4.1 cases) and checks both the hop budget and the
// stability flag at ack origination.
func TestAckHopsPaperCases(t *testing.T) {
	cases := []struct {
		n, tol, s  int
		hops       int
		startsStab bool
	}{
		{4, 1, 2, 3, true},  // standard sender: ack p1->p2,p3,p0
		{4, 2, 1, 5, false}, // backup sender: ack loops past pt
		{4, 1, 0, 1, true},  // leader: ack p3->p0
		{2, 1, 1, 2, false}, // minimal uniform pair
		{4, 0, 2, 2, true},  // t=0 standard sender
		{4, 0, 0, 0, true},  // t=0 leader: no ack at all
		{10, 3, 7, 6, true}, // larger ring
		{10, 3, 2, 11, false},
	}
	for _, c := range cases {
		members := make([]ProcID, c.n)
		for i := range members {
			members[i] = ProcID(i)
		}
		r := MustNew(members, c.tol)
		if got := r.AckHops(c.s); got != c.hops {
			t.Errorf("n=%d t=%d s=%d: AckHops=%d want %d", c.n, c.tol, c.s, got, c.hops)
		}
		if got := r.AckStartsStable(c.s); got != c.startsStab {
			t.Errorf("n=%d t=%d s=%d: AckStartsStable=%v want %v", c.n, c.tol, c.s, got, c.startsStab)
		}
	}
}

// TestLatencyFormula checks L(i) = 2n + t - i - 1 (and the leader case
// n + t - 1) for a sweep of ring shapes, and cross-checks it against the
// sum of the three pass lengths: pass A (n-s hops, 0 for the leader),
// pass B (distance p0 -> p(s-1)) and the ack hop budget.
func TestLatencyFormula(t *testing.T) {
	for n := 1; n <= 12; n++ {
		for tol := 0; tol < n; tol++ {
			members := make([]ProcID, n)
			for i := range members {
				members[i] = ProcID(i * 7)
			}
			r := MustNew(members, tol)
			for s := 0; s < n; s++ {
				want := 2*n + tol - s - 1
				if s == 0 {
					want = n + tol - 1
				}
				if got := r.Latency(s); got != want {
					t.Fatalf("n=%d t=%d s=%d: Latency=%d want %d", n, tol, s, got, want)
				}
				if n == 1 {
					continue // degenerate: no passes at all
				}
				passA := 0
				if s != 0 {
					passA = r.Distance(s, 0)
				}
				passB := r.Distance(0, r.SeqStopPos(s))
				total := passA + passB + r.AckHops(s)
				if total != want {
					t.Fatalf("n=%d t=%d s=%d: passes sum %d+%d+%d=%d want %d",
						n, tol, s, passA, passB, r.AckHops(s), total, want)
				}
			}
		}
	}
}

// TestRingAlgebraQuick property-checks successor/predecessor inverses and
// distance additivity on random rings.
func TestRingAlgebraQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		members := make([]ProcID, n)
		used := map[ProcID]bool{}
		for i := range members {
			for {
				id := ProcID(rng.Intn(1000))
				if !used[id] {
					used[id] = true
					members[i] = id
					break
				}
			}
		}
		r := MustNew(members, rng.Intn(n))
		for _, id := range members {
			s, _ := r.Successor(id)
			back, _ := r.Predecessor(s)
			if back != id {
				return false
			}
		}
		a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		// Distance additivity modulo n.
		if (r.Distance(a, b)+r.Distance(b, c))%n != r.Distance(a, c) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
