package fsr

import "context"

// Receipt tracks one Broadcast through to uniform delivery. It resolves
// exactly once: either the node TO-delivers the message locally — which, by
// the protocol's stability rule, can only happen after the message is stored
// by the leader and all backups, i.e. it survives any T crashes and every
// live member will deliver it — or the broadcast fails permanently (the node
// stopped, was evicted, or hit a fatal protocol error).
//
// A Receipt is what makes the paper's uniformity guarantee observable:
// request/reply and synchronous-write callers block on Delivered (or Wait)
// before acknowledging upstream, knowing the operation is durable in the
// group even across a leader crash.
type Receipt struct {
	done chan struct{}
	seq  uint64
	err  error
}

func newReceipt() *Receipt { return &Receipt{done: make(chan struct{})} }

// Delivered returns a channel that is closed once the broadcast resolves —
// uniform delivery or permanent failure. Check Err to distinguish.
func (r *Receipt) Delivered() <-chan struct{} { return r.done }

// Seq blocks until the broadcast resolves and returns the total-order
// sequence number the message was delivered at (its final segment's
// position), or 0 if the broadcast failed.
func (r *Receipt) Seq() uint64 {
	<-r.done
	return r.seq
}

// Err blocks until the broadcast resolves. Nil means the message was
// uniformly delivered; ErrStopped means the node stopped or was evicted
// before delivery (the message may or may not survive in the group).
func (r *Receipt) Err() error {
	<-r.done
	return r.err
}

// Wait blocks until the broadcast resolves or ctx is done, returning the
// resolution error (nil on uniform delivery) or ctx.Err. Canceling ctx
// abandons the wait only — the broadcast itself is not withdrawn.
func (r *Receipt) Wait(ctx context.Context) error {
	select {
	case <-r.done:
		return r.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// resolve and fail are called from the node's event loop only, exactly once.

func (r *Receipt) resolve(seq uint64) {
	r.seq = seq
	close(r.done)
}

func (r *Receipt) fail(err error) {
	r.err = err
	close(r.done)
}
