module fsr

go 1.24
