package fsr

import (
	"context"
	"encoding/binary"
	"iter"
	"slices"
	"sync"
	"time"

	"fsr/internal/serve"
	"fsr/internal/wire"
)

// This file is the member half of the Session API: the broadcast-payload
// envelope that carries client identity through the ring, the deterministic
// publish-dedup index that makes client retries idempotent, and the glue
// binding the node to the shared serving engine (internal/serve), which
// owns subscriptions, per-client transmit queues and the encode-once
// fan-out for both ring members and edge replicas.

// --- Broadcast payload envelope ------------------------------------------
//
// Every payload handed to the protocol engine is enveloped with one byte of
// provenance. Member broadcasts are envRaw (the byte plus the application
// payload); client publishes are envClient and additionally carry the
// client's ID and publish ID — the identity every member needs at apply
// time to filter duplicate publishes out of the order deterministically.
// The envelope exists only inside the ring: it is stripped before anything
// reaches a WAL entry, a StateMachine, or a consumer.

const (
	envRaw    byte = 0
	envClient byte = 1
)

const envClientHeader = 1 + 4 + 8 // kind + client ID + pub ID

func wrapRaw(payload []byte) []byte {
	buf := make([]byte, 1+len(payload))
	buf[0] = envRaw
	copy(buf[1:], payload)
	return buf
}

func wrapClient(cid ProcID, pubID uint64, payload []byte) []byte {
	buf := make([]byte, envClientHeader+len(payload))
	buf[0] = envClient
	binary.LittleEndian.PutUint32(buf[1:], uint32(cid))
	binary.LittleEndian.PutUint64(buf[5:], pubID)
	copy(buf[envClientHeader:], payload)
	return buf
}

// openEnvelope splits one enveloped engine payload. Unknown leading bytes
// are treated as a raw payload (defense in depth; every in-tree producer
// envelopes).
func openEnvelope(p []byte) (inner []byte, cid ProcID, pubID uint64, isClient bool) {
	if len(p) >= envClientHeader && p[0] == envClient {
		return p[envClientHeader:], ProcID(binary.LittleEndian.Uint32(p[1:])),
			binary.LittleEndian.Uint64(p[5:]), true
	}
	if len(p) >= 1 && p[0] == envRaw {
		return p[1:], 0, 0, false
	}
	return p, 0, 0, false
}

// --- Publish dedup index --------------------------------------------------

// pubRecall is how many sequence-number recalls per client the index keeps
// below its contiguous floor: a duplicate publish that old still acks as
// committed, but with Seq 0 (position no longer remembered).
const pubRecall = 1024

// pubIndex records which (client, pubID) pairs are committed, and at what
// offset. It is a pure function of the applied prefix of the total order —
// every member evolves an identical index, which is what makes the
// duplicate filter deterministic — and it rides inside snapshots so a
// state transfer is as complete as a WAL replay.
type pubIndex struct {
	clients map[ProcID]*clientPubs
}

type clientPubs struct {
	floor    uint64            // every pubID <= floor is committed
	prunedTo uint64            // seqs at or below this were discarded
	seqs     map[uint64]uint64 // committed pubID -> offset, above prunedTo
}

// committed reports whether (cid, pubID) is in the applied order, and at
// which offset (0 when the position has been pruned from recall).
func (x *pubIndex) committed(cid ProcID, pubID uint64) (uint64, bool) {
	st := x.clients[cid]
	if st == nil {
		return 0, false
	}
	if seq, ok := st.seqs[pubID]; ok {
		return seq, true
	}
	if pubID <= st.floor {
		return 0, true
	}
	return 0, false
}

// add records a commit; it reports false (and changes nothing) when the
// pair was already committed.
func (x *pubIndex) add(cid ProcID, pubID, seq uint64) bool {
	if _, dup := x.committed(cid, pubID); dup {
		return false
	}
	if x.clients == nil {
		x.clients = make(map[ProcID]*clientPubs)
	}
	st := x.clients[cid]
	if st == nil {
		st = &clientPubs{seqs: make(map[uint64]uint64)}
		x.clients[cid] = st
	}
	st.seqs[pubID] = seq
	for {
		if _, ok := st.seqs[st.floor+1]; !ok {
			break
		}
		st.floor++
	}
	for st.floor > pubRecall && st.prunedTo < st.floor-pubRecall {
		st.prunedTo++
		delete(st.seqs, st.prunedTo)
	}
	return true
}

// encode serializes the index (sorted, so equal indexes encode equally).
func (x *pubIndex) encode() []byte {
	cids := make([]ProcID, 0, len(x.clients))
	for cid := range x.clients {
		cids = append(cids, cid)
	}
	slices.Sort(cids)
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(cids)))
	for _, cid := range cids {
		st := x.clients[cid]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(cid))
		buf = binary.LittleEndian.AppendUint64(buf, st.floor)
		buf = binary.LittleEndian.AppendUint64(buf, st.prunedTo)
		ids := make([]uint64, 0, len(st.seqs))
		for id := range st.seqs {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
		for _, id := range ids {
			buf = binary.LittleEndian.AppendUint64(buf, id)
			buf = binary.LittleEndian.AppendUint64(buf, st.seqs[id])
		}
	}
	return buf
}

// decodePubIndex rebuilds an index from encode's output.
func decodePubIndex(buf []byte) (pubIndex, bool) {
	var x pubIndex
	if len(buf) < 4 {
		return x, false
	}
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	for range n {
		if len(buf) < 4+8+8+4 {
			return x, false
		}
		cid := ProcID(binary.LittleEndian.Uint32(buf))
		st := &clientPubs{
			floor:    binary.LittleEndian.Uint64(buf[4:]),
			prunedTo: binary.LittleEndian.Uint64(buf[12:]),
			seqs:     make(map[uint64]uint64),
		}
		cnt := binary.LittleEndian.Uint32(buf[20:])
		buf = buf[24:]
		if uint64(len(buf)) < uint64(cnt)*16 {
			return x, false
		}
		for range cnt {
			st.seqs[binary.LittleEndian.Uint64(buf)] = binary.LittleEndian.Uint64(buf[8:])
			buf = buf[16:]
		}
		if x.clients == nil {
			x.clients = make(map[ProcID]*clientPubs)
		}
		x.clients[cid] = st
	}
	return x, len(buf) == 0
}

// --- Snapshot wrapper -----------------------------------------------------
//
// Durable snapshots are node-level: the publish index followed by the
// application StateMachine snapshot, so a member rebuilt by state transfer
// filters duplicates exactly like one that replayed the whole order.

var snapMagic = [4]byte{'F', 'S', 'R', '1'}

func wrapSnapshot(index, app []byte) []byte {
	buf := make([]byte, 0, 4+4+len(index)+len(app))
	buf = append(buf, snapMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(index)))
	buf = append(buf, index...)
	return append(buf, app...)
}

// openSnapshot splits a node-level snapshot; data without the wrapper is
// treated as a bare application snapshot with an empty index.
func openSnapshot(data []byte) (index, app []byte) {
	if len(data) < 8 || [4]byte(data[:4]) != snapMagic {
		return nil, data
	}
	n := binary.LittleEndian.Uint32(data[4:])
	if uint64(len(data)-8) < uint64(n) {
		return nil, data
	}
	return data[8 : 8+n], data[8+n:]
}

// --- In-memory order tail (non-durable members) ---------------------------

// memLogCap bounds how much of the applied order a member without a
// durable log retains for subscribers. Offsets that have fallen off (or
// predate the first subscription) are below the member's horizon — it
// answers RedirectCannotServe and the client tries another member.
const memLogCap = 4096

type memLog struct {
	base    uint64 // offsets <= base are below the horizon
	entries []Message
}

// append retains one applied message, evicting the oldest quarter when
// capacity is reached (chunked, so the compaction memmove amortizes to
// O(1) per append).
func (l *memLog) append(m Message) {
	if len(l.entries) >= memLogCap {
		drop := memLogCap / 4
		l.base = l.entries[drop-1].Seq
		l.entries = append(l.entries[:0], l.entries[drop:]...)
	}
	l.entries = append(l.entries, m)
}

// read returns up to max entries with Seq > after.
func (l *memLog) read(after uint64, max int) (entries []Message, belowHorizon bool) {
	if after < l.base {
		return nil, true
	}
	i, _ := slices.BinarySearchFunc(l.entries, after, func(m Message, seq uint64) int {
		switch {
		case m.Seq <= seq:
			return -1
		default:
			return 1
		}
	})
	end := min(len(l.entries), i+max)
	return l.entries[i:end:end], false
}

// --- Session serving ------------------------------------------------------

// Local paging bounds (in-process subscriptions; remote serving pages
// with internal/serve's own, identical bounds).
const (
	srvSubMaxEntries = 256
	srvSubMaxBytes   = 1 << 20
	// maxParkedClientPubs bounds client publishes parked while the member
	// cannot broadcast (joining, view change, catch-up, own-queue full).
	// Beyond it publishes are dropped; the client's ack-timeout retry is
	// the backpressure.
	maxParkedClientPubs = 8192
	// maxInflightClientPubs bounds what ONE client may have in flight
	// (broadcast or parked, not yet applied) — a publisher that never
	// waits for acks cannot monopolize the parked queue or the ring's
	// bandwidth. Past the bound its publishes are dropped; the ack-timeout
	// retry is, again, the backpressure.
	maxInflightClientPubs = 1024
)

// sessSrv is the member-specific half of session serving: the publish
// dedup index, in-flight and parked publish tracking, and the ephemeral
// order tail. The protocol-facing half (clients, subscriptions, transmit
// queues, fan-out) lives in Node.srv, the shared serving engine. The
// index and counters are written by the delivery pump (apply time) and
// read by the event loop (publish dedup). Lock ordering: sessSrv.mu may
// be held while taking Node.outMu (via Node.Applied), never the reverse.
type sessSrv struct {
	n *Node

	mu        sync.Mutex
	index     pubIndex
	inflight  map[pubKey]time.Time // broadcast issued, not yet applied; value = accept time
	perClient map[ProcID]int       // in-flight publish count per client
	parked    []parkedPub
	// gates maps a client to the lowest pubID this member dropped while
	// it remains uncommitted. Until that publish commits (possibly
	// through another member) or is re-offered by the client's sorted
	// retry, no HIGHER pubID from the client may be accepted: committing
	// a successor first would leave an interior hole in the per-origin
	// FIFO stream that the retry then fills out of order. A crash only
	// ever costs a client stream a suffix; backpressure drops must not
	// cost it an interior hole. Member-local and ephemeral (not part of
	// the deterministic index): it shapes what this member admits, not
	// what the order contains.
	gates  map[ProcID]uint64
	memlog *memLog       // non-durable members only
	signal chan struct{} // closed and replaced at every applied batch

	pubsAccepted uint64 // client publishes committed through this member
	dupsFiltered uint64 // duplicate publishes filtered at apply time
	pubsBounded  uint64 // publishes dropped by the per-client bound
	// pubLatency histograms the accept→PUBACK latency of publishes
	// committed through this member — the client-facing commit latency
	// (receipts only cover the member's own broadcasts).
	pubLatency LatencyHistogram
}

type pubKey struct {
	cid ProcID
	pub uint64
}

type parkedPub struct {
	cid     ProcID
	pub     uint64
	payload []byte
}

// pubAck is one acknowledgment owed after the current batch is durable.
type pubAck struct {
	cid ProcID
	pub uint64
	seq uint64
}

func newSessSrv(n *Node) *sessSrv {
	return &sessSrv{
		n:         n,
		inflight:  make(map[pubKey]time.Time),
		perClient: make(map[ProcID]int),
		gates:     make(map[ProcID]uint64),
		signal:    make(chan struct{}),
	}
}

// addInflight records a publish as in flight, stamping its accept time.
// Callers hold s.mu.
func (s *sessSrv) addInflight(key pubKey) {
	s.inflight[key] = time.Now()
	s.perClient[key.cid]++
}

// removeInflight clears an in-flight record, returning its accept time so
// the apply path can histogram accept→ack latency (drop and error paths
// discard it). Callers hold s.mu.
func (s *sessSrv) removeInflight(key pubKey) (time.Time, bool) {
	accepted, ok := s.inflight[key]
	if !ok {
		return time.Time{}, false
	}
	delete(s.inflight, key)
	if n := s.perClient[key.cid] - 1; n > 0 {
		s.perClient[key.cid] = n
	} else {
		delete(s.perClient, key.cid)
	}
	return accepted, true
}

// gateDrop arms (or lowers) cid's FIFO gate after dropping pubID
// uncommitted. Callers hold s.mu.
func (s *sessSrv) gateDrop(cid ProcID, pubID uint64) {
	if g, ok := s.gates[cid]; !ok || pubID < g {
		s.gates[cid] = pubID
	}
}

// gateAllows reports whether cid's FIFO gate admits pubID, first resolving
// a gate whose publish has since committed (through this member or any
// other — the index is global). Admitting the gated pubID itself lifts the
// gate; if this very call then drops it again, gateDrop re-arms. Callers
// hold s.mu.
func (s *sessSrv) gateAllows(cid ProcID, pubID uint64) bool {
	g, ok := s.gates[cid]
	if !ok {
		return true
	}
	if _, committed := s.index.committed(cid, g); committed {
		delete(s.gates, cid)
		return true
	}
	if pubID > g {
		return false
	}
	if pubID == g {
		delete(s.gates, cid)
	}
	return true
}

// watch returns a channel closed at the next applied batch.
func (s *sessSrv) watch() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.signal
}

// restoreIndex replaces the publish index from snapshot bytes (state
// transfer / startup).
func (s *sessSrv) restoreIndex(data []byte) {
	idx, ok := decodePubIndex(data)
	if !ok {
		return // pre-index snapshot: start empty
	}
	s.mu.Lock()
	s.index = idx
	s.mu.Unlock()
}

// classify resolves one message about to be applied: the envelope is
// opened, client publishes are checked against (and folded into) the
// index, and the caller learns whether the message is a duplicate to be
// filtered from the order. Pump goroutine (or NewNode, before sharing).
func (s *sessSrv) classify(m Message, enveloped bool) (final Message, dup bool, ack *pubAck) {
	if !enveloped {
		// Recovered history (catch-up) is already in final form and comes
		// from a peer's filtered log; fold client identities into the
		// index, and ack only a client actually waiting on this member
		// (anyone else re-requests and gets the immediate index ack).
		if m.Origin >= ClientIDBase {
			s.mu.Lock()
			s.index.add(m.Origin, m.LogicalID, m.Seq)
			key := pubKey{cid: m.Origin, pub: m.LogicalID}
			if accepted, ok := s.removeInflight(key); ok {
				s.pubLatency.Observe(time.Since(accepted))
				ack = &pubAck{cid: m.Origin, pub: m.LogicalID, seq: m.Seq}
			}
			s.mu.Unlock()
		}
		return m, false, ack
	}
	inner, cid, pubID, isClient := openEnvelope(m.Payload)
	if !isClient {
		m.Payload = inner
		return m, false, nil
	}
	key := pubKey{cid: cid, pub: pubID}
	s.mu.Lock()
	if seq, committed := s.index.committed(cid, pubID); committed {
		if accepted, ok := s.removeInflight(key); ok {
			s.pubLatency.Observe(time.Since(accepted))
		}
		s.dupsFiltered++
		s.mu.Unlock()
		return Message{Seq: m.Seq}, true, &pubAck{cid: cid, pub: pubID, seq: seq}
	}
	if accepted, ok := s.removeInflight(key); ok {
		s.pubLatency.Observe(time.Since(accepted))
	}
	s.index.add(cid, pubID, m.Seq)
	s.pubsAccepted++
	s.mu.Unlock()
	final = Message{Seq: m.Seq, Origin: cid, LogicalID: pubID, Payload: inner}
	return final, false, &pubAck{cid: cid, pub: pubID, seq: m.Seq}
}

// retainBatch keeps a pump batch in the ephemeral order tail (no-op on
// durable members, whose WAL is the retention). It runs before the applied
// frontier advances over the batch, so a subscription pager can never
// observe the new frontier without the entries behind it.
func (s *sessSrv) retainBatch(finals []Message) {
	s.mu.Lock()
	if s.memlog != nil {
		for _, m := range finals {
			s.memlog.append(m)
		}
	}
	s.mu.Unlock()
}

// commitBatch runs after a pump batch is durable and covered by the
// applied frontier: wake subscription pagers and queue the batch's
// PUBACKs (transmitted by the per-client writers, never blocking the
// pump).
func (s *sessSrv) commitBatch(acks []pubAck) {
	s.mu.Lock()
	close(s.signal)
	s.signal = make(chan struct{})
	s.mu.Unlock()
	for _, a := range acks {
		s.n.srv.Ack(a.cid, a.pub, a.seq)
	}
}

// snapshotIndex serializes the index for inclusion in a durable snapshot.
func (s *sessSrv) snapshotIndex() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.index.encode()
}

// raiseHorizon marks everything at or below seq as unservable by this
// member (an ephemeral joiner's missed prefix, or a hole the assembler
// had to drop): subscribers wanting older offsets are redirected to a
// member that retains them.
func (s *sessSrv) raiseHorizon(seq uint64) {
	s.mu.Lock()
	if l := s.memlog; l != nil && seq > l.base {
		l.base = seq
		i := 0
		for i < len(l.entries) && l.entries[i].Seq <= seq {
			i++
		}
		l.entries = append(l.entries[:0], l.entries[i:]...)
	}
	s.mu.Unlock()
}

// --- Node: serving client frames (event loop) -----------------------------

// nodeSource adapts the member's committed order to the serving engine.
type nodeSource struct{ n *Node }

func (s nodeSource) Applied() uint64        { return s.n.Applied() }
func (s nodeSource) Watch() <-chan struct{} { return s.n.sess.watch() }
func (s nodeSource) ReadCommitted(cursor, applied uint64, maxEntries, maxBytes int) (serve.Page, error) {
	return s.n.readCommitted(cursor, applied, maxEntries, maxBytes)
}

// newServe builds the member's serving engine: publishes run through the
// dedup/broadcast path on the event loop (Handle is only called there),
// redirects carry the current view.
func (n *Node) newServe() *serve.Server {
	return serve.New(serve.Config{
		Transport: n.tr,
		Source:    nodeSource{n: n},
		Publish:   n.handleClientPublish,
		Redirect: func() (members []ProcID, addrs []string, applied uint64) {
			return n.CurrentView().Members, nil, n.Applied()
		},
		Logger: n.log,
	})
}

// publishTail fans one applied batch out to the attached subscribers:
// one encode-once EVENT frame for every attached client. A snapshot
// transfer has no entry stream for the range it covers, so it demotes
// every attached subscription to pager catch-up (which serves the
// snapshot) before the tail resumes. Pump goroutine only.
func (n *Node) publishTail(finals []Message, snapJump bool) {
	if snapJump {
		n.srv.DetachAll()
	}
	if len(finals) == 0 {
		return
	}
	n.fanScratch = n.fanScratch[:0]
	for i := range finals {
		m := &finals[i]
		n.fanScratch = append(n.fanScratch, wire.ClientEventEntry{
			Seq:     m.Seq,
			Origin:  m.Origin,
			Logical: m.LogicalID,
			Payload: m.Payload,
		})
	}
	n.srv.PublishTail(n.fanScratch)
}

// clientPubBlocked reports whether the member can broadcast on behalf of a
// client right now — mirroring Broadcast's backpressure gate. Event loop.
func (n *Node) clientPubBlocked() bool {
	n.mu.Lock()
	joined, evicted := n.joined, n.evicted
	n.mu.Unlock()
	return evicted || !joined || n.mgr.Changing() || n.catch != nil ||
		n.engine.PendingOwn() >= n.cfg.MaxPendingOwn
}

// handleClientPublish dedups one publish against the committed order and
// the in-flight table, then broadcasts it (or parks it under
// backpressure). Runs on the event loop, via the serving engine's Publish
// hook.
func (n *Node) handleClientPublish(from ProcID, p *wire.ClientPublish) {
	s := n.sess
	blocked := n.clientPubBlocked()
	s.mu.Lock()
	if seq, ok := s.index.committed(from, p.PubID); ok {
		s.mu.Unlock()
		// Already committed (a retry after a lost ack): re-ack, off the
		// event loop.
		n.srv.Ack(from, p.PubID, seq)
		return
	}
	key := pubKey{cid: from, pub: p.PubID}
	if _, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		return // retry of an in-flight publish: the apply-time ack covers it
	}
	if !s.gateAllows(from, p.PubID) {
		// An earlier publish from this client was dropped here and is
		// still uncommitted; admitting this one would commit the
		// client's stream out of FIFO order once the sorted retry
		// re-offers the dropped one. Refuse both — the retry re-offers
		// them lowest-first.
		s.pubsBounded++
		s.mu.Unlock()
		return
	}
	if s.perClient[from] >= maxInflightClientPubs {
		// One client may not monopolize the ring: drop, the client's
		// ack-timeout retry (paced by its window) is the backpressure.
		s.gateDrop(from, p.PubID)
		s.pubsBounded++
		s.mu.Unlock()
		return
	}
	s.addInflight(key)
	// Queue behind the parked backlog even when broadcasting just
	// unblocked: a publish parked during the blocked window must reach
	// the engine before anything that arrived after it, or the ring
	// sequences the client's stream out of FIFO order (the parked-queue
	// overtake twin of the gate above).
	if blocked || len(s.parked) > 0 {
		if len(s.parked) < maxParkedClientPubs {
			s.parked = append(s.parked, parkedPub{cid: from, pub: p.PubID, payload: p.Payload})
		} else {
			s.removeInflight(key) // dropped: the client's retry is the backpressure
			s.gateDrop(from, p.PubID)
		}
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	n.broadcastClientPub(from, p.PubID, p.Payload)
}

// broadcastClientPub submits one deduplicated client publish to the
// engine. Event loop only.
func (n *Node) broadcastClientPub(cid ProcID, pubID uint64, payload []byte) {
	if _, err := n.engine.Broadcast(wrapClient(cid, pubID, payload)); err != nil {
		s := n.sess
		s.mu.Lock()
		s.removeInflight(pubKey{cid: cid, pub: pubID})
		s.gateDrop(cid, pubID)
		s.mu.Unlock()
	}
}

// drainClientPubs broadcasts publishes parked during backpressure. Called
// from the event loop whenever broadcasting is unblocked.
func (n *Node) drainClientPubs() {
	s := n.sess
	for {
		if n.clientPubBlocked() {
			return
		}
		s.mu.Lock()
		if len(s.parked) == 0 {
			s.mu.Unlock()
			return
		}
		p := s.parked[0]
		s.parked = s.parked[1:]
		s.mu.Unlock()
		n.broadcastClientPub(p.cid, p.pub, p.payload)
	}
}

// --- Reading the committed order (shared by remote and local sessions) ----

// readCommitted pages the committed order in (cursor, applied]. On a
// durable member it reads the WAL, falling back to the latest snapshot
// when the cursor lies below the retained entries (the WAL was truncated
// behind a snapshot); on an ephemeral member it reads the bounded
// in-memory tail. Safe from any goroutine.
func (n *Node) readCommitted(cursor, applied uint64, maxEntries, maxBytes int) (serve.Page, error) {
	if n.wlog == nil {
		s := n.sess
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.memlog == nil {
			return serve.Page{BelowHorizon: true}, nil
		}
		entries, below := s.memlog.read(cursor, maxEntries)
		if below {
			return serve.Page{BelowHorizon: true}, nil
		}
		page := serve.Page{Cursor: applied}
		for i := range entries {
			m := &entries[i]
			page.Entries = append(page.Entries, wire.ClientEventEntry{
				Seq:     m.Seq,
				Origin:  m.Origin,
				Logical: m.LogicalID,
				Payload: m.Payload,
			})
		}
		if len(entries) > 0 {
			if last := entries[len(entries)-1].Seq; len(entries) == maxEntries {
				page.Cursor = last
			} else if last > page.Cursor {
				// The tail ran past the sampled applied frontier; never let
				// the cursor fall behind what was served.
				page.Cursor = last
			}
		}
		return page, nil
	}
	if snap, ok := n.wlog.LatestSnapshot(); ok && snap.Seq > cursor {
		if first, _ := n.wlog.Bounds(); first == 0 || first > cursor+1 {
			// The entries the subscriber needs are truncated behind the
			// snapshot: hand over the application state instead.
			_, app := openSnapshot(snap.Data)
			return serve.Page{Snap: app, SnapSeq: snap.Seq, Cursor: snap.Seq}, nil
		}
	}
	entries, more, err := n.wlog.ReadFrom(cursor, applied, maxEntries, maxBytes)
	if err != nil {
		return serve.Page{}, err
	}
	page := serve.Page{Cursor: applied}
	for i := range entries {
		e := &entries[i]
		page.Entries = append(page.Entries, wire.ClientEventEntry{
			Seq:     e.Seq,
			Origin:  ProcID(e.Origin),
			Logical: e.LogicalID,
			Payload: e.Payload,
		})
	}
	if more {
		page.Cursor = entries[len(entries)-1].Seq
	}
	return page, nil
}

// --- In-process sessions --------------------------------------------------

// Session returns this member's in-process Session: the same interface a
// remote client gets from client.Dial or Cluster.Dial, served without the
// wire. Publish is Broadcast (member identity, member backpressure);
// Subscribe streams the committed order from any offset through the same
// durable-log paging as remote subscriptions. Sessions share the node —
// closing one is a no-op; stopping the node ends them all.
func (n *Node) Session() Session { return nodeSession{n: n} }

type nodeSession struct{ n *Node }

func (s nodeSession) Publish(ctx context.Context, payload []byte) (*Receipt, error) {
	return s.n.Broadcast(ctx, payload)
}

func (s nodeSession) Subscribe(ctx context.Context, from Offset) iter.Seq2[Offset, Message] {
	return s.n.subscribeLocal(ctx, from)
}

func (s nodeSession) Err() error { return s.n.Err() }

func (s nodeSession) Close() error { return nil }

// subscribeLocal is the in-process subscription stream: identical paging
// and snapshot-fallback semantics to remote serving, yielding directly.
func (n *Node) subscribeLocal(ctx context.Context, from Offset) iter.Seq2[Offset, Message] {
	return func(yield func(Offset, Message) bool) {
		var cursor uint64
		if from == 0 {
			cursor = n.Applied()
		} else {
			cursor = from - 1
		}
		for {
			if ctx.Err() != nil || n.stopping() {
				return
			}
			applied := n.Applied()
			if cursor >= applied {
				watch := n.sess.watch()
				select {
				case <-watch:
				case <-ctx.Done():
					return
				case <-n.stop:
					return
				}
				continue
			}
			page, err := n.readCommitted(cursor, applied, srvSubMaxEntries, srvSubMaxBytes)
			if err != nil || page.BelowHorizon {
				return // node failing, or the offset predates this member's horizon
			}
			if page.Snap != nil {
				if !yield(page.SnapSeq, Message{Seq: page.SnapSeq, Snapshot: true, Payload: page.Snap}) {
					return
				}
			}
			for i := range page.Entries {
				e := &page.Entries[i]
				m := Message{Seq: e.Seq, Origin: e.Origin, LogicalID: e.Logical, Payload: e.Payload}
				if !yield(m.Seq, m) {
					return
				}
			}
			cursor = page.Cursor
		}
	}
}
