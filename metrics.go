package fsr

import (
	"time"

	"fsr/internal/metrics"
)

// LatencySummary condenses a window of broadcast latencies — the time from
// Broadcast acceptance to local uniform delivery, as observed through
// receipts on this node's own messages.
type LatencySummary struct {
	Count          int
	Min, Max, Mean time.Duration
	P50, P95, P99  time.Duration
}

// Metrics is a point-in-time snapshot of one node's protocol activity,
// taken coherently on the event loop. Counters are cumulative since the
// node started; queue depths are instantaneous.
type Metrics struct {
	// View is the currently installed membership epoch.
	View ViewInfo
	// IsLeader reports whether this node is the fixed sequencer.
	IsLeader bool

	// FramesIn / FramesOut count protocol frames exchanged with the ring
	// neighbors.
	FramesIn, FramesOut uint64
	// DataIn and AcksIn count received data segments and acknowledgments.
	DataIn, AcksIn uint64
	// Sequenced counts segments this node assigned a sequence number to
	// (leader only).
	Sequenced uint64
	// Delivered counts TO-delivered segments.
	Delivered uint64
	// StaleFrames counts frames dropped because of a view mismatch.
	StaleFrames uint64
	// RelayedData and OwnSent split outbound data traffic into relayed
	// segments and this node's own.
	RelayedData, OwnSent uint64
	// FairnessSkips counts relay items sent ahead of an own message by the
	// paper's §4.2.3 fairness rule; StandaloneAcks counts frames that
	// carried only acknowledgments.
	FairnessSkips, StandaloneAcks uint64
	// MultiSegFrames counts outbound frames that batched more than one
	// data segment (the hot-path batching introduced with MaxFrameData).
	MultiSegFrames uint64
	// SkippedVersion counts inbound payloads dropped for an incompatible
	// (different-major) wire protocol version; SkippedUnknown counts
	// payloads of an unknown channel kind or control type. Both are skips,
	// not faults — see the compat policy in internal/wire/version.go. A
	// steadily climbing SkippedVersion means a mis-versioned peer is
	// attached — page on this during upgrades.
	SkippedVersion uint64
	SkippedUnknown uint64

	// RelayQueue, OwnQueue and AckQueue are the engine's current queue
	// depths (load indicators; OwnQueue >= MaxPendingOwn means Broadcast
	// is applying backpressure).
	RelayQueue, OwnQueue, AckQueue int
	// PendingReceipts is the number of own broadcasts accepted but not yet
	// uniformly delivered.
	PendingReceipts int

	// Applied is the highest message sequence number persisted and folded
	// into the state machine (see Node.Applied); CatchingUp reports that
	// the node is currently fetching missed history from its peers, with
	// the live stream held back.
	Applied    uint64
	CatchingUp bool

	// SessionPublishes counts client publishes committed through this
	// member; SessionDuplicates counts duplicate publishes (retries after
	// crashes or lost acks) this member filtered out of the order at apply
	// time; SessionSubscribers is the number of remote subscriptions
	// currently being served.
	SessionPublishes   uint64
	SessionDuplicates  uint64
	SessionSubscribers int

	// Encode-once fan-out (see internal/serve): TailAttached counts
	// subscriptions currently fed by the shared tail, TailFrames the
	// encode-once frames published, TailDetaches the slow clients demoted
	// back to catch-up paging by a full transmit queue. EdgeClients counts
	// connected links that announced themselves as edge replicas.
	// SessionBounded counts publishes dropped by the per-client in-flight
	// bound.
	TailAttached   int
	TailFrames     uint64
	TailDetaches   uint64
	EdgeClients    int
	SessionBounded uint64

	// BroadcastLatency summarizes the last broadcasts' acceptance-to-
	// uniform-delivery latency on this node.
	BroadcastLatency LatencySummary

	// PublishLatency is the cumulative histogram of session Publish
	// accept→PUBACK latency on this member — the client-facing commit
	// latency, as opposed to BroadcastLatency's member-local view.
	PublishLatency LatencyHistogram

	// WAL is the storage layer's slice of the snapshot; zero when the node
	// runs without a durable directory.
	WAL WALMetrics
}

// WALMetrics is the durability substrate's counter snapshot.
type WALMetrics struct {
	// Segments and Bytes size the retained log (including the active
	// segment's buffered tail).
	Segments int
	Bytes    int64
	// Appends and Fsyncs count entries written and fsync calls; Rotations
	// counts segment rolls.
	Appends, Fsyncs, Rotations uint64
	// Snapshots counts snapshots written this incarnation, SnapshotSeq the
	// seq the latest one covers, SnapshotAge how long ago it was taken
	// (0 when none has been taken yet this incarnation).
	Snapshots   uint64
	SnapshotSeq uint64
	SnapshotAge time.Duration
	// Repairs counts torn tails truncated during recovery at Open.
	Repairs uint64
	// Poisoned reports a log frozen by a storage failure (failed write,
	// flush or fsync): the member has stopped acking and is about to
	// fail-stop — page on this.
	Poisoned bool
}

// LatencyBuckets are the upper bounds of LatencyHistogram's cumulative
// buckets, chosen to straddle the paper's LAN-scale commit latencies
// (sub-millisecond) through degraded multi-second tails.
var LatencyBuckets = []time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2500 * time.Millisecond,
}

// LatencyHistogram is a fixed-bucket cumulative histogram in the
// Prometheus style: Buckets[i] counts samples <= LatencyBuckets[i], and
// Count includes the implicit +Inf bucket.
type LatencyHistogram struct {
	Count   uint64
	Sum     time.Duration
	Buckets [14]uint64
}

// Observe folds one sample into the histogram.
func (h *LatencyHistogram) Observe(d time.Duration) {
	h.Count++
	h.Sum += d
	for i, le := range LatencyBuckets {
		if d <= le {
			h.Buckets[i]++
		}
	}
}

// summarizeLatency converts an internal/metrics summary of the node's
// latency window into the public shape.
func summarizeLatency(samples []time.Duration) LatencySummary {
	s := metrics.Summarize(samples)
	return LatencySummary{
		Count: s.Count,
		Min:   s.Min, Max: s.Max, Mean: s.Mean,
		P50: s.P50, P95: s.P95, P99: s.P99,
	}
}
