package fsr

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fsr/internal/core"
	"fsr/internal/fd"
	"fsr/internal/ring"
	"fsr/internal/transport"
	"fsr/internal/vsc"
	"fsr/internal/wire"
)

// ViewInfo describes one installed membership epoch.
type ViewInfo struct {
	// ID is the view epoch.
	ID uint64
	// Members is the agreed ring order; Members[0] is the leader.
	Members []ProcID
	// T is the number of failures this view tolerates.
	T int
}

// Node is one FSR group member: it owns the protocol engine, the failure
// detector and the view-change manager, and drives them over a transport.
//
// All protocol work happens on one event-loop goroutine; the public methods
// communicate with it through channels, so a Node is safe for concurrent
// use.
type Node struct {
	cfg Config
	tr  transport.Transport

	engine *core.Engine
	mgr    *vsc.Manager
	fdet   *fd.Detector

	inbox  chan inboundPayload
	bcast  chan bcastReq
	joinc  chan []ProcID
	leave  chan struct{}
	rotate chan struct{}
	stop   chan struct{}

	msgs  chan Message
	views chan ViewInfo

	outMu    sync.Mutex
	outCond  *sync.Cond
	outBuf   []Message
	outDone  bool
	asmState *assembler

	wg sync.WaitGroup

	mu      sync.Mutex
	joined  bool
	stopped bool
	evicted bool
	err     error
}

type inboundPayload struct {
	from    ProcID
	payload []byte
}

type bcastReq struct {
	payload []byte
	done    chan error
}

// NewNode builds and starts a node on the given transport. The transport's
// Self must match cfg.Self.
func NewNode(cfg Config, tr transport.Transport) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if tr.Self() != cfg.Self {
		return nil, fmt.Errorf("fsr: transport self %d != config self %d", tr.Self(), cfg.Self)
	}
	view, err := cfg.initialView()
	if err != nil {
		return nil, err
	}
	engine, err := core.NewEngine(core.Config{
		Self:         cfg.Self,
		SegmentSize:  cfg.SegmentSize,
		MaxPiggyback: cfg.MaxPiggyback,
	}, view)
	if err != nil {
		return nil, err
	}

	n := &Node{
		cfg:    cfg,
		tr:     tr,
		engine: engine,
		inbox:  make(chan inboundPayload, 4096),
		bcast:  make(chan bcastReq),
		joinc:  make(chan []ProcID, 1),
		leave:  make(chan struct{}, 1),
		rotate: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		msgs:   make(chan Message, 256),
		views:  make(chan ViewInfo, 64),
		joined: !cfg.Joiner,
	}
	n.outCond = sync.NewCond(&n.outMu)

	n.fdet, err = fd.New(fd.Config{
		Self:     cfg.Self,
		Interval: cfg.HeartbeatInterval,
		Timeout:  cfg.FailureTimeout,
		Send: func(to ring.ProcID, payload []byte) {
			_ = n.tr.Send(to, payload) // silence is what the FD detects
		},
		Suspect: func(p ring.ProcID) {
			// Called from within the loop's fdet.Tick.
			n.mgr.OnSuspect(p, time.Now())
		},
	})
	if err != nil {
		return nil, err
	}

	n.mgr, err = vsc.NewManager(vsc.Config{
		Self:          cfg.Self,
		T:             cfg.T,
		ChangeTimeout: cfg.ChangeTimeout,
		Joiner:        cfg.Joiner,
		Callbacks: vsc.Callbacks{
			Send: func(to ring.ProcID, payload []byte) {
				_ = n.tr.Send(to, payload)
			},
			Snapshot: func() core.RecoveryState { return n.engine.Snapshot() },
			Install:  n.install,
			Evicted:  n.onEvicted,
		},
	}, view)
	if err != nil {
		return nil, err
	}
	if !cfg.Joiner {
		n.fdet.SetPeers(cfg.Members, time.Now())
	}

	tr.SetHandler(func(from ring.ProcID, payload []byte) {
		select {
		case n.inbox <- inboundPayload{from: from, payload: payload}:
		case <-n.stop:
		}
	})

	n.wg.Add(2)
	go n.loop()
	go n.deliveryPump()
	return n, nil
}

// Self returns this node's process ID.
func (n *Node) Self() ProcID { return n.cfg.Self }

// Messages returns the TO-delivered message stream, in total order. The
// channel closes when the node stops. Consumers must drain it; the node
// buffers internally, so slow consumers never stall the protocol.
func (n *Node) Messages() <-chan Message { return n.msgs }

// Views returns installed-view notifications (advisory: entries are dropped
// if the consumer lags).
func (n *Node) Views() <-chan ViewInfo { return n.views }

// Err returns the fatal error that halted the node, if any.
func (n *Node) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}

// Broadcast submits payload for uniform total order broadcast and returns
// once the protocol engine has accepted it (not once delivered). It blocks
// while the node's own-queue is at MaxPendingOwn (backpressure) and honors
// ctx cancellation while blocked.
func (n *Node) Broadcast(ctx context.Context, payload []byte) error {
	req := bcastReq{payload: payload, done: make(chan error, 1)}
	select {
	case n.bcast <- req:
	case <-n.stop:
		return ErrStopped
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-req.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Join asks the group for admission (Joiner nodes only); contacts are the
// known members. Delivery of the join is confirmed by a ViewInfo on Views
// that includes this node. Join retries internally until admitted.
func (n *Node) Join(contacts []ProcID) {
	select {
	case n.joinc <- contacts:
	default:
	}
}

// Leave announces a graceful departure; the node stops once the view change
// excluding it completes (Stop is then unnecessary but harmless).
func (n *Node) Leave() {
	select {
	case n.leave <- struct{}{}:
	default:
	}
}

// RotateLeader asks for a view change that shifts the ring order by one,
// moving the sequencer role to the next process — the paper's §4.3.1
// device for evenly distributing latency across senders. Only honored when
// this node currently coordinates the group (it is the leader); otherwise
// it is a no-op.
func (n *Node) RotateLeader() {
	select {
	case n.rotate <- struct{}{}:
	default:
	}
}

// Stop halts the node and closes Messages. Safe to call more than once.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.mu.Unlock()
	close(n.stop)
	n.wg.Wait()
	_ = n.tr.Close()
}

// fail records a fatal protocol error and halts (fail-stop).
func (n *Node) fail(err error) {
	n.mu.Lock()
	if n.err == nil {
		n.err = err
	}
	n.mu.Unlock()
}

// onEvicted handles exclusion from the group.
func (n *Node) onEvicted() {
	n.mu.Lock()
	n.evicted = true
	n.mu.Unlock()
}

// install applies an agreed view: engine first, then rebroadcasts, then the
// failure detector, then the advisory notification.
func (n *Node) install(v core.View, sync *core.Sync, rebroadcast []core.PendingMsg) {
	if err := n.engine.InstallView(v, sync); err != nil {
		n.fail(err)
		return
	}
	for _, m := range rebroadcast {
		if err := n.engine.ReBroadcast(m); err != nil {
			n.fail(err)
			return
		}
	}
	n.fdet.SetPeers(v.Ring.Members(), time.Now())
	n.mu.Lock()
	n.joined = true
	n.mu.Unlock()
	info := ViewInfo{ID: v.ID, Members: v.Ring.Members(), T: v.Ring.T()}
	select {
	case n.views <- info:
	default:
	}
}

// loop is the single event-loop goroutine owning all protocol state.
//
// Each iteration first drains all queued inbound payloads (so the engine
// sees the current ring state), then transmits at most one frame. The
// transport's pacing — NIC serialization, socket-buffer backpressure —
// therefore throttles the loop between frames, which is exactly what lets
// the paper's fairness rule interleave relayed traffic with own messages
// instead of flushing whole own-queues in one burst.
func (n *Node) loop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.HeartbeatInterval / 2)
	defer tick.Stop()
	var joinContacts []ProcID
	lastJoin := time.Time{}
	for {
	drain:
		for {
			select {
			case in := <-n.inbox:
				n.handlePayload(in)
			default:
				break drain
			}
		}
		n.deliver()
		if n.sendOne() {
			select {
			case <-n.stop:
				n.engine.Stop()
				n.closeDeliveries()
				return
			default:
				continue
			}
		}

		// Backpressure: stop accepting broadcasts while the own-queue is
		// full, the node has not joined yet, or a view change is in
		// flight. An evicted node keeps accepting so it can reject with
		// an error instead of blocking.
		bc := n.bcast
		n.mu.Lock()
		joined, evicted := n.joined, n.evicted
		n.mu.Unlock()
		if !evicted && (n.engine.PendingOwn() >= n.cfg.MaxPendingOwn || !joined || n.mgr.Changing()) {
			bc = nil
		}

		select {
		case <-n.stop:
			n.engine.Stop()
			n.closeDeliveries()
			return

		case in := <-n.inbox:
			n.handlePayload(in)

		case req := <-bc:
			if evicted {
				req.done <- ErrStopped
				break
			}
			_, err := n.engine.Broadcast(req.payload)
			req.done <- err

		case contacts := <-n.joinc:
			joinContacts = contacts
			n.mgr.RequestJoin(contacts)
			lastJoin = time.Now()

		case <-n.leave:
			n.mgr.RequestLeave()

		case <-n.rotate:
			n.mgr.RotateLeader(time.Now())

		case now := <-tick.C:
			n.fdet.Tick(now)
			n.mgr.Tick(now)
			n.mu.Lock()
			joined := n.joined
			n.mu.Unlock()
			if !joined && joinContacts != nil && now.Sub(lastJoin) > n.cfg.ChangeTimeout {
				n.mgr.RequestJoin(joinContacts)
				lastJoin = now
			}
		}
	}
}

// sendOne transmits at most one outbound frame; it reports whether it did.
func (n *Node) sendOne() bool {
	if n.mgr.Changing() {
		return false
	}
	r := n.mgr.View().Ring
	succ, ok := r.Successor(n.cfg.Self)
	if !ok || succ == n.cfg.Self {
		return false
	}
	f, ok := n.engine.NextFrame()
	if !ok {
		return false
	}
	if err := n.tr.Send(succ, wire.EncodeFrame(f)); err != nil {
		return false // successor unreachable: the FD takes it from here
	}
	n.deliver()
	return true
}

// handlePayload dispatches one transport payload by channel kind.
func (n *Node) handlePayload(in inboundPayload) {
	if len(in.payload) == 0 {
		return
	}
	switch in.payload[0] {
	case wire.KindFSR:
		f, err := wire.DecodeFrame(in.payload)
		if err != nil {
			n.fail(err)
			return
		}
		if err := n.engine.HandleFrame(f); err != nil {
			n.fail(err)
			return
		}
	case wire.KindVSC:
		if err := n.mgr.HandlePayload(in.from, in.payload, time.Now()); err != nil {
			n.fail(err)
			return
		}
	case wire.KindFD:
		from, err := fd.Decode(in.payload)
		if err != nil {
			return // malformed heartbeat: ignore
		}
		n.fdet.HandleHeartbeat(from, time.Now())
	}
}

// deliver moves fresh engine deliveries to the assembler queue.
func (n *Node) deliver() {
	ds := n.engine.Deliveries()
	if len(ds) == 0 {
		return
	}
	n.outMu.Lock()
	asm := n.asm()
	for _, d := range ds {
		if msg, done := asm.add(d); done {
			n.outBuf = append(n.outBuf, msg)
		}
	}
	n.outCond.Signal()
	n.outMu.Unlock()
}

// asm lazily allocates the assembler (guarded by outMu).
func (n *Node) asm() *assembler {
	if n.asmState == nil {
		n.asmState = newAssembler()
	}
	return n.asmState
}

// closeDeliveries wakes the delivery pump for shutdown.
func (n *Node) closeDeliveries() {
	n.outMu.Lock()
	n.outDone = true
	n.outCond.Signal()
	n.outMu.Unlock()
}

// deliveryPump moves reassembled messages from the unbounded buffer to the
// public channel so slow consumers cannot stall the protocol loop.
func (n *Node) deliveryPump() {
	defer n.wg.Done()
	defer close(n.msgs)
	for {
		n.outMu.Lock()
		for len(n.outBuf) == 0 && !n.outDone {
			n.outCond.Wait()
		}
		if len(n.outBuf) == 0 && n.outDone {
			n.outMu.Unlock()
			return
		}
		batch := n.outBuf
		n.outBuf = nil
		n.outMu.Unlock()
		for _, m := range batch {
			select {
			case n.msgs <- m:
			case <-n.stop:
				// Drain silently on shutdown.
			}
		}
	}
}
